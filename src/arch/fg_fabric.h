#pragma once
/// \file fg_fabric.h
/// Fine-grained reconfigurable fabric: an embedded FPGA (Virtex-4-like,
/// 100 MHz) partitioned into Partially Reconfigurable Containers (PRCs).
/// Each PRC can hold one data-path instance at a time; loading a new one
/// streams a partial bitstream over the single reconfiguration port.

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/data_path.h"
#include "util/types.h"

namespace mrts {

class SnapshotWriter;
class SnapshotReader;

/// State of one Partially Reconfigurable Container.
struct Prc {
  /// Data path currently mapped onto this PRC (or being loaded).
  DataPathId occupant = kInvalidDataPath;
  /// Cycle at which the occupant becomes usable; 0 for "since ever",
  /// kNeverCycles for an empty PRC.
  Cycles ready_at = kNeverCycles;

  bool empty() const { return occupant == kInvalidDataPath; }
  bool usable_at(Cycles t) const { return !empty() && ready_at <= t; }
};

/// The FG fabric as a set of PRCs with bookkeeping for placement queries.
/// Reconfiguration *scheduling* (the serialized port) lives in
/// ReconfigController; this class only stores the resulting placement.
class FgFabric {
 public:
  explicit FgFabric(unsigned num_prcs);

  unsigned num_prcs() const { return static_cast<unsigned>(prcs_.size()); }

  const Prc& prc(unsigned index) const;

  /// Number of PRCs whose occupant is not pinned (i.e. candidates for
  /// eviction) plus empty PRCs — the selector treats the whole fabric as
  /// available because old contents may always be overwritten.
  unsigned free_or_evictable(const std::vector<bool>& pinned) const;

  /// Places \p dp on PRC \p index, becoming usable at \p ready_at.
  /// Any previous occupant is evicted instantly (partial reconfiguration
  /// overwrites the region).
  void place(unsigned index, DataPathId dp, Cycles ready_at);

  /// Clears PRC \p index.
  void evict(unsigned index);

  /// Finds a PRC currently holding \p dp that is usable at \p t and not
  /// already claimed in \p claimed (bitmap sized num_prcs). Returns its index.
  std::optional<unsigned> find_instance(DataPathId dp, Cycles t,
                                        const std::vector<bool>& claimed) const;

  /// Finds an unclaimed PRC to overwrite: prefers empty PRCs, then the
  /// occupant with the oldest ready_at (pseudo-LRU).
  std::optional<unsigned> find_victim(const std::vector<bool>& claimed) const;

  /// Ready times of all instances of \p dp currently placed (including ones
  /// still being loaded), sorted ascending.
  std::vector<Cycles> instance_ready_times(DataPathId dp) const;

  /// Placement-exact capture/restore (rts/snapshot.h). load_state validates
  /// the stored PRC count against the live fabric before mutating.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  std::vector<Prc> prcs_;
};

}  // namespace mrts
