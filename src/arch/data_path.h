#pragma once
/// \file data_path.h
/// Data paths are the atomic hardware building blocks of Instruction Set
/// Extensions (ISEs). A data path is implemented either on the fine-grained
/// fabric (one or more Partially Reconfigurable Containers, PRCs, of the
/// embedded FPGA) or on the coarse-grained fabric (one CG ALU-array element).
///
/// Reconfiguration cost is derived from the architecture constants of
/// Section 5.1 of the paper:
///   * FG: bitstream bytes streamed at 67584 KB/s over the (single, shared)
///     reconfiguration port -> ~1.2 ms for a default ~81 KB PRC bitstream.
///   * CG: context instructions streamed into the context memory at
///     2 cycles/instruction -> ~0.15 us.

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace mrts {

/// Default bitstream size of one FG data path; chosen such that the
/// reconfiguration time at 67584 KB/s matches the paper's 1.2 ms figure
/// (1.2 ms * 67584 KiB/s = ~83 KiB).
inline constexpr std::uint64_t kDefaultFgBitstreamBytes = 83047;

/// Maximum number of instructions in a CG context memory (Section 5.1).
inline constexpr unsigned kCgContextMemoryInstructions = 32;

/// Cycles to stream one 80-bit CG instruction into the context memory.
inline constexpr Cycles kCgCyclesPerContextInstruction = 2;

/// Static description of one data path type.
struct DataPathDesc {
  DataPathId id = kInvalidDataPath;
  std::string name;
  Grain grain = Grain::kFine;

  /// Resource demand: number of PRCs (FG) or CG fabrics (CG) one instance
  /// occupies. Almost always 1.
  unsigned units = 1;

  /// FG only: partial bitstream size in bytes (per occupied PRC).
  std::uint64_t bitstream_bytes = kDefaultFgBitstreamBytes;

  /// CG only: number of 80-bit instructions in the context program.
  unsigned context_instructions = kCgContextMemoryInstructions;

  /// Reconfiguration time of one instance of this data path in core cycles.
  Cycles reconfig_cycles() const;
};

/// Flat registry of all data path types of an ISE library. DataPathId is an
/// index into this table.
class DataPathTable {
 public:
  /// Registers a data path; assigns and returns its id. Name must be unique
  /// within the table (checked).
  DataPathId add(DataPathDesc desc);

  const DataPathDesc& operator[](DataPathId id) const;
  std::size_t size() const { return paths_.size(); }
  bool contains(DataPathId id) const { return raw(id) < paths_.size(); }

  /// Lookup by name; returns kInvalidDataPath if absent.
  DataPathId find(const std::string& name) const;

  auto begin() const { return paths_.begin(); }
  auto end() const { return paths_.end(); }

 private:
  std::vector<DataPathDesc> paths_;
};

}  // namespace mrts
