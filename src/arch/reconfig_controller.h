#pragma once
/// \file reconfig_controller.h
/// Reconfiguration scheduling. The FG fabric has a single reconfiguration
/// port: partial bitstreams are streamed one at a time (this serialization is
/// what makes FG reconfiguration the dominant latency, ~1.2 ms per data
/// path). CG context programs are streamed through a separate, much faster
/// port (~0.15 us per context).
///
/// The controller models each port as a FIFO queue of jobs. Jobs that have
/// not started yet may be cancelled (e.g. when a new functional-block
/// selection evicts a data path that was still waiting to be loaded); the
/// queue is then re-timed.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/types.h"

namespace mrts {

class SnapshotWriter;
class SnapshotReader;

/// Identifier of a queued reconfiguration job.
using ReconfigJobId = std::uint64_t;

/// One queued (or completed) reconfiguration.
struct ReconfigJob {
  ReconfigJobId id = 0;
  DataPathId dp = kInvalidDataPath;
  /// Container index: PRC index for FG jobs, CG fabric index for CG jobs.
  unsigned container = 0;
  Cycles enqueued_at = 0;
  Cycles duration = 0;
  Cycles starts_at = 0;
  Cycles completes_at = 0;

  /// True when the job has begun streaming strictly before \p now. A started
  /// job cannot be cancelled and keeps blocking the port until it completes;
  /// a job with starts_at == now has *not* started by now (it would begin on
  /// this very cycle) and is still cancellable. This single predicate is the
  /// authoritative started/not-started boundary for both cancel_pending()
  /// and the queue re-timing.
  bool started_before(Cycles now) const { return starts_at < now; }
};

/// FIFO port that processes reconfiguration jobs back to back.
class ReconfigPort {
 public:
  /// Enqueues a job; returns its completion time given the current backlog.
  const ReconfigJob& enqueue(DataPathId dp, unsigned container,
                             Cycles duration, Cycles now);

  /// Cancels all jobs that have not started by \p now and match \p predicate,
  /// then re-times the remaining not-yet-started jobs. "Not started by now"
  /// includes the boundary case starts_at == now — the immediate successor of
  /// a job completing exactly at \p now is still cancellable (see
  /// ReconfigJob::started_before). Returns the number of cancelled jobs.
  std::size_t cancel_pending(Cycles now,
                             const std::function<bool(const ReconfigJob&)>&
                                 predicate);

  /// Cycle until which the port is busy with jobs enqueued so far (>= now).
  Cycles busy_until(Cycles now) const;

  /// Completion time of job \p id; nullopt if unknown (e.g. cancelled).
  std::optional<Cycles> completion(ReconfigJobId id) const;

  /// Jobs still queued or running at \p now.
  std::vector<ReconfigJob> pending(Cycles now) const;

  /// Drops bookkeeping for jobs completed before \p now (memory hygiene).
  void compact(Cycles now);

  std::uint64_t total_jobs() const { return next_id_; }
  Cycles total_busy_cycles() const { return total_busy_; }

  /// Queue-exact capture/restore (rts/snapshot.h): the FIFO backlog, the
  /// job-id counter and the busy-cycle tally all resume where they were.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  void retime(Cycles now);

  std::vector<ReconfigJob> jobs_;  // FIFO order
  ReconfigJobId next_id_ = 0;
  Cycles total_busy_ = 0;
};

/// Both ports of the reconfigurable processor.
class ReconfigController {
 public:
  ReconfigPort& fg_port() { return fg_; }
  const ReconfigPort& fg_port() const { return fg_; }
  ReconfigPort& cg_port() { return cg_; }
  const ReconfigPort& cg_port() const { return cg_; }

  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  ReconfigPort fg_;
  ReconfigPort cg_;
};

}  // namespace mrts
