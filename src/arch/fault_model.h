#pragma once
/// \file fault_model.h
/// Deterministic fault injection for the reconfigurable fabric. Real FG/CG
/// fabrics fail in three characteristic ways, and each maps to one axis of
/// this model:
///
///  (a) bitstream/context *load failures*: a streamed partial bitstream is
///      corrupted in flight and the CRC check at completion rejects it. The
///      reconfiguration controller retries the stream (bounded attempts,
///      exponential cycle backoff on the port); when the retry budget is
///      exhausted the data path stays unloadable for that selection round.
///  (b) *transient configuration upsets* (SEU-style bit flips) in loaded
///      PRCs / resident CG contexts: a periodic scrubbing pass detects them
///      and re-enqueues a repair load, during which the affected ISE
///      degrades to its best intermediate implementation (ECU ladder).
///  (c) *permanent container faults* that quarantine a PRC or CG fabric:
///      its capacity disappears, the selector re-plans with the reduced
///      budget and the FabricManager never places data paths there again.
///
/// Everything is driven by one util/rng generator seeded from the config, so
/// a given (seed, rate) pair reproduces the identical fault timeline — the
/// same determinism contract as the workload models. The model is consumed
/// in simulator call order by exactly one FabricManager; like every other
/// mutable simulation object it is per sweep point, never shared across
/// threads (docs/ARCHITECTURE.md, "Parallel sweep engine").

#include <cstdint>

#include "util/rng.h"
#include "util/types.h"

namespace mrts {

class SnapshotWriter;
class SnapshotReader;

/// Probabilities and policy knobs of the injector. All probabilities are
/// per-event Bernoulli parameters in [0, 1]; the default config injects
/// nothing (any_faults() == false), which is the zero-overhead fast path.
struct FaultModelConfig {
  std::uint64_t seed = 0x5eedull;
  /// P(one FG bitstream streaming attempt fails its CRC check).
  double fg_load_failure_prob = 0.0;
  /// P(one CG context streaming attempt fails its CRC check).
  double cg_load_failure_prob = 0.0;
  /// P(a loaded container suffers a configuration upset during one scrub
  /// epoch) — evaluated per occupied PRC / resident CG context per epoch.
  double transient_upset_prob = 0.0;
  /// P(an injected fault is permanent), evaluated at each detection point:
  /// a permanent fault quarantines the container instead of being repaired.
  double permanent_fault_prob = 0.0;
  /// Failed loads are retried at most this many times before the data path
  /// is declared unloadable for the selection round.
  unsigned max_retries = 3;
  /// Port backoff before the first retry; doubles with every further retry
  /// (10 us at the 400 MHz core clock).
  Cycles retry_backoff_cycles = 4000;
  /// Period of the configuration scrubbing pass (5 ms at 400 MHz). 0
  /// disables scrubbing (upsets are then never injected).
  Cycles scrub_interval_cycles = 2'000'000;

  /// True when any probability axis can fire. A FabricManager without an
  /// attached model — or with an all-zero config — behaves exactly like the
  /// fault-free machine.
  bool any_faults() const {
    return fg_load_failure_prob > 0.0 || cg_load_failure_prob > 0.0 ||
           transient_upset_prob > 0.0;
  }

  /// One-knob config for sweeps: \p rate drives every probability axis
  /// (load failures on both ports, upsets, permanence). At rate 1.0 every
  /// load fails and every detection quarantines — the machine degrades to
  /// pure RISC execution.
  static FaultModelConfig uniform(double rate, std::uint64_t seed,
                                  unsigned max_retries = 3);
};

/// Outcome of planning one (possibly retried) load stream.
struct LoadFaultOutcome {
  bool success = true;     ///< the final attempt passed its CRC check
  unsigned retries = 0;    ///< failed attempts that were retried
  Cycles port_cycles = 0;  ///< total port occupancy incl. retries + backoff
  /// The exhausted load was diagnosed as a permanent container fault; the
  /// caller must quarantine the target container.
  bool quarantine = false;
};

/// Cumulative injection statistics since construction.
struct FaultStats {
  std::uint64_t injected = 0;         ///< faults of any kind injected
  std::uint64_t load_failures = 0;    ///< CRC-rejected streaming attempts
  std::uint64_t retries = 0;          ///< retry streams scheduled
  std::uint64_t failed_loads = 0;     ///< loads abandoned after max_retries
  std::uint64_t transient_upsets = 0; ///< upsets caught by scrubbing
  std::uint64_t scrub_repairs = 0;    ///< repair loads enqueued by scrubbing
  std::uint64_t quarantined_prcs = 0;
  std::uint64_t quarantined_cg = 0;
};

/// The seeded injector. Pure decision logic: it owns no fabric state — the
/// FabricManager asks it what happens and applies the consequences (retry
/// timing, eviction, quarantine) itself.
class FaultModel {
 public:
  explicit FaultModel(const FaultModelConfig& config);

  const FaultModelConfig& config() const { return config_; }

  /// Plans one load stream of nominal \p duration cycles for a container of
  /// grain \p grain: draws per-attempt CRC failures until an attempt
  /// succeeds or max_retries is exhausted, and accounts the total port time
  /// (every attempt streams the full bitstream; retries pay backoff first).
  LoadFaultOutcome plan_load(Grain grain, Cycles duration);

  /// One Bernoulli upset draw for a loaded container during one scrub epoch.
  bool upset();

  /// Whether a just-detected fault is permanent (container quarantine).
  bool permanent();

  /// Port backoff before retry number \p retry (0-based): exponential,
  /// shift-clamped so it never overflows.
  Cycles backoff(unsigned retry) const;

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

  /// Captures/restores the RNG stream position and the cumulative stats so
  /// a restored run draws exactly the faults the uninterrupted one would
  /// have, and its final fault table resumes from the checkpointed values
  /// (rts/snapshot.h). The config itself travels in the snapshot meta
  /// header — the restoring process reconstructs the model from it first.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  FaultModelConfig config_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace mrts
