#pragma once
/// \file interconnect.h
/// Communication-timing model between fabric elements (Section 5.1):
///   * point-to-point links between CG fabrics: 2 cycles per hop,
///   * communication within the FG fabric (between PRCs): 1 cycle.
/// The model is a static topology with hop counting; it is consulted when
/// composing multi-data-path ISEs to charge transfer cycles between the data
/// paths mapped to different fabric elements.

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace mrts {

/// Kinds of endpoints connected by the interconnect.
enum class NodeKind : std::uint8_t { kCore, kCgFabric, kPrc };

struct InterconnectParams {
  Cycles cg_hop_cycles = 2;     ///< CG <-> CG point-to-point link
  Cycles prc_hop_cycles = 1;    ///< PRC <-> PRC inside the FG fabric
  Cycles core_link_cycles = 2;  ///< core <-> any fabric
  Cycles cross_grain_cycles = 3;  ///< CG <-> FG (via shared scratch pad)
};

/// Endpoint address: kind plus index within the kind.
struct NodeAddr {
  NodeKind kind = NodeKind::kCore;
  unsigned index = 0;

  friend bool operator==(const NodeAddr&, const NodeAddr&) = default;
};

/// Computes transfer latencies between nodes. CG fabrics form a linear
/// point-to-point chain (hop count = index distance); PRCs share an intra-FPGA
/// network (1 cycle between any two).
class Interconnect {
 public:
  explicit Interconnect(InterconnectParams params = {});

  const InterconnectParams& params() const { return params_; }

  /// Latency of moving one operand (register-sized word) from \p src to
  /// \p dst. Zero when src == dst.
  Cycles transfer_cycles(const NodeAddr& src, const NodeAddr& dst) const;

  /// Total transfer cycles along a pipeline of nodes (sum of adjacent
  /// transfers).
  Cycles pipeline_cycles(const std::vector<NodeAddr>& chain) const;

 private:
  InterconnectParams params_;
};

}  // namespace mrts
