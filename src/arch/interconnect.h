#pragma once
/// \file interconnect.h
/// Communication-timing model between fabric elements (Section 5.1):
///   * point-to-point links between CG fabrics: 2 cycles per hop,
///   * communication within the FG fabric (between PRCs): 1 cycle.
/// The model is a static topology with hop counting; it is consulted when
/// composing multi-data-path ISEs to charge transfer cycles between the data
/// paths mapped to different fabric elements, and by the CMP scheduler
/// (sim/cmp.h) to charge per-core operand transfers to the shared fabric.
///
/// Cores form a linear chain hanging off the fabric complex (the same shape
/// as the CG chain): core c sits `core_hop_distance[c]` hops away from the
/// fabric, so a core<->fabric transfer costs `core_link_cycles * distance`.
/// An empty distance vector puts every core at distance 1, which reproduces
/// the historical flat `core_link_cycles` cost exactly — the single-core
/// degenerate case, pinned by tests/test_scratchpad_interconnect.cpp.

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace mrts {

/// Kinds of endpoints connected by the interconnect.
enum class NodeKind : std::uint8_t { kCore, kCgFabric, kPrc };

struct InterconnectParams {
  Cycles cg_hop_cycles = 2;     ///< CG <-> CG point-to-point link
  Cycles prc_hop_cycles = 1;    ///< PRC <-> PRC inside the FG fabric
  Cycles core_link_cycles = 2;  ///< core <-> any fabric, per core hop
  Cycles cross_grain_cycles = 3;  ///< CG <-> FG (via shared scratch pad)
  /// Hop distance of each core to the fabric complex (index = core index).
  /// Empty = every core at distance 1 (the legacy flat model). Cores beyond
  /// the vector continue the chain at one extra hop per index, so a partial
  /// vector still yields a well-defined topology. All entries must be >= 1
  /// (the Interconnect constructor validates).
  std::vector<unsigned> core_hop_distance;

  /// A linear chain of \p cores cores with \p stride extra hops per index:
  /// core c at distance 1 + c * stride. stride 0 is the flat/degenerate
  /// topology (every core at distance 1).
  static InterconnectParams linear_chain(unsigned cores, unsigned stride) {
    InterconnectParams p;
    p.core_hop_distance.reserve(cores);
    for (unsigned c = 0; c < cores; ++c) {
      p.core_hop_distance.push_back(1 + c * stride);
    }
    return p;
  }
};

/// Endpoint address: kind plus index within the kind.
struct NodeAddr {
  NodeKind kind = NodeKind::kCore;
  unsigned index = 0;

  friend bool operator==(const NodeAddr&, const NodeAddr&) = default;
};

/// Computes transfer latencies between nodes. CG fabrics form a linear
/// point-to-point chain (hop count = index distance); PRCs share an intra-FPGA
/// network (1 cycle between any two); cores hang off the fabric complex on a
/// linear chain with per-core hop distances.
class Interconnect {
 public:
  /// Throws std::invalid_argument when a core hop distance is zero.
  explicit Interconnect(InterconnectParams params = {});

  const InterconnectParams& params() const { return params_; }

  /// Hop distance of \p core to the fabric complex (>= 1). Cores beyond the
  /// configured vector continue the chain one hop further per index.
  unsigned core_distance(unsigned core) const;

  /// Extra cycles one core<->fabric transfer costs for \p core compared to
  /// the flat (distance-1) model: core_link_cycles * (distance - 1). Zero
  /// for every core in the degenerate topology — the CMP scheduler charges
  /// exactly this on top of the legacy timeline, so zero extra hops
  /// reproduce run_multi_tenant bit-exactly.
  Cycles core_extra_cycles(unsigned core) const;

  /// Latency of moving one operand (register-sized word) from \p src to
  /// \p dst. Zero when src == dst.
  Cycles transfer_cycles(const NodeAddr& src, const NodeAddr& dst) const;

  /// Total transfer cycles along a pipeline of nodes (sum of adjacent
  /// transfers).
  Cycles pipeline_cycles(const std::vector<NodeAddr>& chain) const;

 private:
  InterconnectParams params_;
};

}  // namespace mrts
