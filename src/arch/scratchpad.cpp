#include "arch/scratchpad.h"

#include <stdexcept>

namespace mrts {

Scratchpad::Scratchpad(ScratchpadParams params)
    : params_(params), data_(params.size_bytes, 0) {
  if (params.size_bytes == 0) {
    throw std::invalid_argument("Scratchpad: zero size");
  }
  if (params.port_width_bits % 8 != 0 || params.port_width_bits == 0) {
    throw std::invalid_argument("Scratchpad: port width must be whole bytes");
  }
}

void Scratchpad::check(std::size_t addr, std::size_t bytes) const {
  if (addr + bytes > data_.size() || addr + bytes < addr) {
    throw std::out_of_range("Scratchpad: access out of range");
  }
}

std::uint8_t Scratchpad::read8(std::size_t addr) const {
  check(addr, 1);
  ++reads_;
  return data_[addr];
}

void Scratchpad::write8(std::size_t addr, std::uint8_t value) {
  check(addr, 1);
  ++writes_;
  data_[addr] = value;
}

std::uint32_t Scratchpad::read32(std::size_t addr) const {
  check(addr, 4);
  ++reads_;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[addr + static_cast<std::size_t>(i)];
  return v;
}

void Scratchpad::write32(std::size_t addr, std::uint32_t value) {
  check(addr, 4);
  ++writes_;
  for (std::size_t i = 0; i < 4; ++i) {
    data_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

Cycles Scratchpad::access_cycles(std::size_t bytes) const {
  const std::size_t width_bytes = params_.port_width_bits / 8;
  const std::size_t beats = (bytes + width_bytes - 1) / width_bytes;
  return static_cast<Cycles>(beats) * params_.access_cycles;
}

void Scratchpad::reset() {
  std::fill(data_.begin(), data_.end(), 0);
  reads_ = writes_ = 0;
}

}  // namespace mrts
