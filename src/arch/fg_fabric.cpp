#include "arch/fg_fabric.h"

#include <algorithm>
#include <stdexcept>

namespace mrts {

FgFabric::FgFabric(unsigned num_prcs) : prcs_(num_prcs) {}

const Prc& FgFabric::prc(unsigned index) const {
  if (index >= prcs_.size()) throw std::out_of_range("FgFabric::prc");
  return prcs_[index];
}

unsigned FgFabric::free_or_evictable(const std::vector<bool>& pinned) const {
  unsigned n = 0;
  for (unsigned i = 0; i < prcs_.size(); ++i) {
    if (i >= pinned.size() || !pinned[i]) ++n;
  }
  return n;
}

void FgFabric::place(unsigned index, DataPathId dp, Cycles ready_at) {
  if (index >= prcs_.size()) throw std::out_of_range("FgFabric::place");
  prcs_[index].occupant = dp;
  prcs_[index].ready_at = ready_at;
}

void FgFabric::evict(unsigned index) {
  if (index >= prcs_.size()) throw std::out_of_range("FgFabric::evict");
  prcs_[index] = Prc{};
}

std::optional<unsigned> FgFabric::find_instance(
    DataPathId dp, Cycles t, const std::vector<bool>& claimed) const {
  for (unsigned i = 0; i < prcs_.size(); ++i) {
    if (claimed.size() > i && claimed[i]) continue;
    if (prcs_[i].occupant == dp && prcs_[i].ready_at <= t) return i;
  }
  return std::nullopt;
}

std::optional<unsigned> FgFabric::find_victim(
    const std::vector<bool>& claimed) const {
  std::optional<unsigned> best;
  for (unsigned i = 0; i < prcs_.size(); ++i) {
    if (claimed.size() > i && claimed[i]) continue;
    if (prcs_[i].empty()) return i;
    if (!best || prcs_[i].ready_at < prcs_[*best].ready_at) best = i;
  }
  return best;
}

std::vector<Cycles> FgFabric::instance_ready_times(DataPathId dp) const {
  std::vector<Cycles> out;
  for (const auto& prc : prcs_) {
    if (prc.occupant == dp) out.push_back(prc.ready_at);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mrts
