#include "arch/fg_fabric.h"

#include <algorithm>
#include <stdexcept>

#include "util/snapshot_io.h"

namespace mrts {

FgFabric::FgFabric(unsigned num_prcs) : prcs_(num_prcs) {}

const Prc& FgFabric::prc(unsigned index) const {
  if (index >= prcs_.size()) throw std::out_of_range("FgFabric::prc");
  return prcs_[index];
}

unsigned FgFabric::free_or_evictable(const std::vector<bool>& pinned) const {
  unsigned n = 0;
  for (unsigned i = 0; i < prcs_.size(); ++i) {
    if (i >= pinned.size() || !pinned[i]) ++n;
  }
  return n;
}

void FgFabric::place(unsigned index, DataPathId dp, Cycles ready_at) {
  if (index >= prcs_.size()) throw std::out_of_range("FgFabric::place");
  prcs_[index].occupant = dp;
  prcs_[index].ready_at = ready_at;
}

void FgFabric::evict(unsigned index) {
  if (index >= prcs_.size()) throw std::out_of_range("FgFabric::evict");
  prcs_[index] = Prc{};
}

std::optional<unsigned> FgFabric::find_instance(
    DataPathId dp, Cycles t, const std::vector<bool>& claimed) const {
  for (unsigned i = 0; i < prcs_.size(); ++i) {
    if (claimed.size() > i && claimed[i]) continue;
    if (prcs_[i].occupant == dp && prcs_[i].ready_at <= t) return i;
  }
  return std::nullopt;
}

std::optional<unsigned> FgFabric::find_victim(
    const std::vector<bool>& claimed) const {
  std::optional<unsigned> best;
  for (unsigned i = 0; i < prcs_.size(); ++i) {
    if (claimed.size() > i && claimed[i]) continue;
    if (prcs_[i].empty()) return i;
    if (!best || prcs_[i].ready_at < prcs_[*best].ready_at) best = i;
  }
  return best;
}

std::vector<Cycles> FgFabric::instance_ready_times(DataPathId dp) const {
  std::vector<Cycles> out;
  for (const auto& prc : prcs_) {
    if (prc.occupant == dp) out.push_back(prc.ready_at);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FgFabric::save_state(SnapshotWriter& w) const {
  w.u64(prcs_.size());
  for (const auto& prc : prcs_) {
    w.u32(raw(prc.occupant));
    w.u64(prc.ready_at);
  }
}

void FgFabric::load_state(SnapshotReader& r) {
  const std::size_t at = r.pos();
  const std::uint64_t n = r.u64();
  if (n != prcs_.size()) {
    throw SnapshotError("snapshot PRC count does not match this fabric", at);
  }
  for (auto& prc : prcs_) {
    prc.occupant = DataPathId{r.u32()};
    prc.ready_at = r.u64();
  }
}

}  // namespace mrts
