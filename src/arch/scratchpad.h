#pragma once
/// \file scratchpad.h
/// Scratch-pad memory model. Both fabrics have dedicated scratch pads
/// connected to the memory hierarchy (Fig. 3) used for fast data access and
/// intermediate results. The model provides byte-addressed storage with a
/// simple fixed-latency timing model; it backs the RISC/CG instruction-set
/// simulators that derive kernel latencies.

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace mrts {

/// Timing/geometry parameters of a scratch pad port.
struct ScratchpadParams {
  std::size_t size_bytes = 64 * 1024;
  unsigned port_width_bits = 32;   ///< 32 for CG fabrics, 128 for FG fabrics
  Cycles access_cycles = 1;        ///< latency of one aligned access
  Cycles miss_penalty_cycles = 20; ///< refill from the memory hierarchy
};

/// Byte-addressed scratch pad with access counting. Out-of-range accesses
/// throw (they indicate a broken kernel program, not a recoverable state).
class Scratchpad {
 public:
  explicit Scratchpad(ScratchpadParams params = {});

  const ScratchpadParams& params() const { return params_; }
  std::size_t size() const { return data_.size(); }

  std::uint8_t read8(std::size_t addr) const;
  void write8(std::size_t addr, std::uint8_t value);

  std::uint32_t read32(std::size_t addr) const;
  void write32(std::size_t addr, std::uint32_t value);

  /// Cycles for one access of \p bytes bytes through the port: ceil division
  /// over the port width times the access latency.
  Cycles access_cycles(std::size_t bytes) const;

  /// Zero-fills the memory and resets counters.
  void reset();

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  void check(std::size_t addr, std::size_t bytes) const;

  ScratchpadParams params_;
  std::vector<std::uint8_t> data_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace mrts
