#include "arch/data_path.h"

#include <stdexcept>

namespace mrts {

Cycles DataPathDesc::reconfig_cycles() const {
  if (grain == Grain::kFine) {
    return fg_reconfig_cycles_for_bytes(bitstream_bytes) * units;
  }
  return static_cast<Cycles>(context_instructions) *
         kCgCyclesPerContextInstruction * units;
}

DataPathId DataPathTable::add(DataPathDesc desc) {
  if (desc.name.empty()) {
    throw std::invalid_argument("DataPathTable::add: empty name");
  }
  if (find(desc.name) != kInvalidDataPath) {
    throw std::invalid_argument("DataPathTable::add: duplicate name " +
                                desc.name);
  }
  if (desc.units == 0) {
    throw std::invalid_argument("DataPathTable::add: zero units for " +
                                desc.name);
  }
  if (desc.grain == Grain::kCoarse &&
      desc.context_instructions > kCgContextMemoryInstructions) {
    throw std::invalid_argument(
        "DataPathTable::add: CG context program exceeds context memory for " +
        desc.name);
  }
  desc.id = DataPathId{static_cast<std::uint32_t>(paths_.size())};
  paths_.push_back(std::move(desc));
  return paths_.back().id;
}

const DataPathDesc& DataPathTable::operator[](DataPathId id) const {
  if (!contains(id)) {
    throw std::out_of_range("DataPathTable: invalid data path id");
  }
  return paths_[raw(id)];
}

DataPathId DataPathTable::find(const std::string& name) const {
  for (const auto& dp : paths_) {
    if (dp.name == name) return dp.id;
  }
  return kInvalidDataPath;
}

}  // namespace mrts
