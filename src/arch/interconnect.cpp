#include "arch/interconnect.h"

#include <cstdlib>

namespace mrts {

Interconnect::Interconnect(InterconnectParams params) : params_(params) {}

Cycles Interconnect::transfer_cycles(const NodeAddr& src,
                                     const NodeAddr& dst) const {
  if (src == dst) return 0;
  if (src.kind == NodeKind::kCore || dst.kind == NodeKind::kCore) {
    return params_.core_link_cycles;
  }
  if (src.kind == NodeKind::kCgFabric && dst.kind == NodeKind::kCgFabric) {
    const unsigned lo = std::min(src.index, dst.index);
    const unsigned hi = std::max(src.index, dst.index);
    return params_.cg_hop_cycles * static_cast<Cycles>(hi - lo);
  }
  if (src.kind == NodeKind::kPrc && dst.kind == NodeKind::kPrc) {
    return params_.prc_hop_cycles;
  }
  // CG <-> FG crossing.
  return params_.cross_grain_cycles;
}

Cycles Interconnect::pipeline_cycles(const std::vector<NodeAddr>& chain) const {
  Cycles total = 0;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    total += transfer_cycles(chain[i - 1], chain[i]);
  }
  return total;
}

}  // namespace mrts
