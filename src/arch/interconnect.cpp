#include "arch/interconnect.h"

#include <cstdlib>
#include <stdexcept>

namespace mrts {

Interconnect::Interconnect(InterconnectParams params)
    : params_(std::move(params)) {
  for (const unsigned d : params_.core_hop_distance) {
    if (d == 0) {
      throw std::invalid_argument(
          "Interconnect: core hop distances must be >= 1");
    }
  }
}

unsigned Interconnect::core_distance(unsigned core) const {
  const auto& hops = params_.core_hop_distance;
  if (core < hops.size()) return hops[core];
  // Past the configured prefix the chain keeps growing one hop per core, so
  // a partially specified topology stays monotone instead of snapping back
  // to distance 1.
  if (hops.empty()) return 1;
  return hops.back() + (core - static_cast<unsigned>(hops.size()) + 1);
}

Cycles Interconnect::core_extra_cycles(unsigned core) const {
  return params_.core_link_cycles *
         static_cast<Cycles>(core_distance(core) - 1);
}

Cycles Interconnect::transfer_cycles(const NodeAddr& src,
                                     const NodeAddr& dst) const {
  if (src == dst) return 0;
  if (src.kind == NodeKind::kCore && dst.kind == NodeKind::kCore) {
    // Core-to-core traffic routes through the fabric complex the chain hangs
    // off: both chain segments are traversed.
    return params_.core_link_cycles *
           static_cast<Cycles>(core_distance(src.index) +
                               core_distance(dst.index));
  }
  if (src.kind == NodeKind::kCore || dst.kind == NodeKind::kCore) {
    const unsigned core =
        src.kind == NodeKind::kCore ? src.index : dst.index;
    return params_.core_link_cycles * static_cast<Cycles>(core_distance(core));
  }
  if (src.kind == NodeKind::kCgFabric && dst.kind == NodeKind::kCgFabric) {
    const unsigned lo = std::min(src.index, dst.index);
    const unsigned hi = std::max(src.index, dst.index);
    return params_.cg_hop_cycles * static_cast<Cycles>(hi - lo);
  }
  if (src.kind == NodeKind::kPrc && dst.kind == NodeKind::kPrc) {
    return params_.prc_hop_cycles;
  }
  // CG <-> FG crossing.
  return params_.cross_grain_cycles;
}

Cycles Interconnect::pipeline_cycles(const std::vector<NodeAddr>& chain) const {
  Cycles total = 0;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    total += transfer_cycles(chain[i - 1], chain[i]);
  }
  return total;
}

}  // namespace mrts
