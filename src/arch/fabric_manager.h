#pragma once
/// \file fabric_manager.h
/// FabricManager owns the placement state of the whole reconfigurable
/// processor: one FG fabric (a pool of PRCs), an array of CG fabrics and the
/// reconfiguration controller. It installs functional-block selections
/// (evicting/reusing data paths), realizes monoCG-Extensions at run time and
/// answers availability queries for the Execution Control Unit.
///
/// With an attached FaultModel (arch/fault_model.h) the manager also applies
/// the machine's fault semantics: load streams may fail their CRC check and
/// are retried with backoff on the port, periodic scrubbing repairs
/// transient configuration upsets, and permanent faults quarantine a
/// container — it is removed from the usable capacity and never hosts a data
/// path again (quarantine survives reset(), like real broken silicon).

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/cg_fabric.h"
#include "arch/data_path.h"
#include "arch/fg_fabric.h"
#include "arch/reconfig_controller.h"
#include "arch/tenant.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
struct TraceEvent;
class CounterRegistry;
class FaultModel;
class SnapshotWriter;
class SnapshotReader;

/// A request to realize one ISE: its data-path instances in reconfiguration
/// order (repeats allowed — an ISE may use several instances of a data path).
struct IsePlacementRequest {
  IseId ise = kInvalidIse;
  KernelId kernel = kInvalidKernel;
  std::vector<DataPathId> data_paths;
};

/// Result of installing one ISE: when each data-path instance becomes usable.
/// prefix_ready[i] = cycle at which the first (i+1) instances are all usable,
/// i.e. when the (i+1)-th intermediate ISE becomes executable.
struct IsePlacement {
  IseId ise = kInvalidIse;
  KernelId kernel = kInvalidKernel;
  std::vector<Cycles> instance_ready;
  std::vector<Cycles> prefix_ready;
  /// Number of instances that were reused from the previous configuration
  /// (no reconfiguration needed).
  unsigned reused_instances = 0;
};

/// Aggregate capacity/occupancy snapshot. Reserved counts never include
/// quarantined containers, so usable - reserved is the free budget.
struct FabricUsage {
  unsigned total_prcs = 0;
  unsigned total_cg = 0;
  unsigned reserved_prcs = 0;  ///< claimed by the current selection
  unsigned reserved_cg = 0;
  unsigned quarantined_prcs = 0;  ///< permanently faulted containers
  unsigned quarantined_cg = 0;

  unsigned usable_prcs() const { return total_prcs - quarantined_prcs; }
  unsigned usable_cg() const { return total_cg - quarantined_cg; }
};

/// Cumulative reconfiguration-traffic counters since construction/reset.
struct ReconfigStats {
  std::uint64_t fg_loads = 0;         ///< partial bitstreams streamed
  std::uint64_t cg_loads = 0;         ///< context programs streamed
  std::uint64_t fg_bytes = 0;         ///< bitstream bytes moved
  std::uint64_t cg_bytes = 0;         ///< context bytes moved
  std::uint64_t cancelled_loads = 0;  ///< pending loads evicted before start
  std::uint64_t reused_instances = 0; ///< loads avoided by reuse
};

/// Outcome of one live-migration attempt (migrate_prc / migrate_cg).
enum class MigrationStatus : std::uint8_t {
  kMigrated = 0,         ///< context copied; source released, target loading
  kNothingToMigrate,     ///< the source container holds no configuration
  kTargetUnavailable,    ///< target occupied/quarantined/inaccessible/same
  kSourceQuarantined,    ///< source quarantined before the drain completed;
                         ///< nothing was mutated — retry from another source
  kCopyFailed,           ///< the copy stream exhausted its CRC retries; the
                         ///< source stays intact (the target may have been
                         ///< quarantined by the failed stream's diagnosis)
};

const char* to_string(MigrationStatus status);

struct MigrationResult {
  MigrationStatus status = MigrationStatus::kNothingToMigrate;
  DataPathId dp = kInvalidDataPath;  ///< data path that was (to be) moved
  Cycles drained_at = 0;    ///< drain point: when the copy stream could start
  Cycles ready_at = kNeverCycles;  ///< usable-on-target cycle (on success)

  bool migrated() const { return status == MigrationStatus::kMigrated; }
};

class FabricManager {
 public:
  /// \param table data-path registry (not owned; must outlive the manager).
  FabricManager(unsigned num_cg_fabrics, unsigned num_prcs,
                const DataPathTable* table, CgFabricParams cg_params = {});

  unsigned num_prcs() const { return fg_.num_prcs(); }
  unsigned num_cg_fabrics() const { return static_cast<unsigned>(cg_.size()); }

  /// Physical capacity minus quarantined containers — the budget the ISE
  /// selector may plan with.
  unsigned usable_prcs() const;
  unsigned usable_cg_fabrics() const;

  bool prc_quarantined(unsigned index) const;
  bool cg_quarantined(unsigned index) const;

  /// Permanently removes a container from service at cycle \p at: its
  /// contents are evicted, its reservation is released and no data path is
  /// ever placed there again. Idempotent. Exposed for tests / scripted
  /// fault scenarios; the fault model calls it on permanent faults.
  void quarantine_prc(unsigned index, Cycles at);
  void quarantine_cg(unsigned index, Cycles at);

  const FgFabric& fg_fabric() const { return fg_; }
  const CgFabric& cg_fabric(unsigned i) const;
  const ReconfigController& reconfig() const { return reconfig_; }

  /// Installs a new functional-block selection at cycle \p now.
  /// Data paths already on the fabric (possibly still loading) are reused;
  /// everything else is loaded into evicted containers, FG loads serialized
  /// on the reconfiguration port. Pending loads of evicted data paths are
  /// cancelled. Throws std::invalid_argument if the selection does not fit.
  std::vector<IsePlacement> install(
      const std::vector<IsePlacementRequest>& selection, Cycles now);

  /// Speculatively loads data paths for a *future* selection into fabric the
  /// current selection does not reserve (cross-block reconfiguration
  /// lookahead). Data paths already placed anywhere are skipped; nothing
  /// reserved/pinned by the current selection is touched, and no
  /// reservations are taken for the speculative loads (the next install()
  /// will claim them via reuse). Returns the number of loads started.
  std::size_t prefetch(const std::vector<IsePlacementRequest>& future,
                       Cycles now);

  /// Live ISE migration (Mestra-style, PAPERS.md): moves the configuration
  /// of PRC \p from onto the empty, non-quarantined PRC \p to. The move
  /// first drains the source — the copy stream cannot start before the
  /// source's configuration is fully loaded (max(now, ready_at)) — then
  /// streams the context through the regular FG reconfiguration port (same
  /// per-byte cost model and fault semantics as any load, including CRC
  /// retries and permanent-fault quarantine of the *target*). On success the
  /// source is released and its reservation/ownership transfer to the
  /// target; on a failed copy the source stays intact so the caller can
  /// retry onto another container. Bumps state_epoch() on any mutation.
  MigrationResult migrate_prc(unsigned from, unsigned to, Cycles now);

  /// CG counterpart: moves the oldest resident context of CG fabric \p from
  /// into a free context slot of fabric \p to (live contexts on the target
  /// are never evicted by a migration). Same drain/copy/fault semantics as
  /// migrate_prc, on the fast CG port.
  MigrationResult migrate_cg(unsigned from, unsigned to, Cycles now);

  /// Realizes (or re-activates) a monoCG-Extension \p mono_dp on a CG fabric
  /// that is not reserved by the current selection. Returns the cycle at
  /// which it is executable (includes context load / switch penalty), or
  /// nullopt when no free CG fabric exists.
  std::optional<Cycles> acquire_mono_cg(DataPathId mono_dp, Cycles now);

  /// Activates \p dp's context on the CG fabric where it resides, returning
  /// the context-switch penalty (0 if already active or not CG-resident).
  Cycles activate_cg_context(DataPathId dp, Cycles now);

  /// Number of instances of \p dp usable at \p t anywhere on the fabric.
  unsigned available_instances(DataPathId dp, Cycles t) const;

  /// Ready times (ascending) of all placed instances of \p dp, including
  /// instances still being loaded.
  std::vector<Cycles> instance_ready_times(DataPathId dp) const;

  /// Allocation-free variant of instance_ready_times: clears \p out and
  /// fills it with the same ascending ready times, reusing its capacity.
  /// The result is a pure function of the fabric state — callers may cache
  /// it keyed on state_epoch().
  void append_instance_ready_times(DataPathId dp,
                                   std::vector<Cycles>& out) const;

  /// Whole-fabric variant: one pass over every PRC and CG context slot,
  /// bucketing ready times into \p out[raw(dp)] (each bucket sorted
  /// ascending). Equivalent to calling append_instance_ready_times for
  /// every table entry, but O(fabric) instead of O(table x fabric) — the
  /// planner snapshots the full table on every selector trigger.
  /// \p out must be pre-sized to the data-path table size.
  void snapshot_instance_ready_times(
      std::vector<std::vector<Cycles>>& out) const;

  /// CG fabrics not reserved by the current selection (hosts for monoCG).
  unsigned free_cg_fabrics() const;

  FabricUsage usage() const;
  const ReconfigStats& reconfig_stats() const { return reconfig_stats_; }

  /// Monotonic fabric-state epoch: incremented by every operation that can
  /// change placement state, port backlogs or usable capacity (install,
  /// prefetch, monoCG acquisition, context switches, scrubbing that did
  /// work, quarantines, reset, fault-model attachment). Two planner
  /// snapshots taken at the same epoch *and* the same cycle observe an
  /// identical fabric, which is what makes the selector's profit
  /// memoization (rts/profit_cache.h) exact. Over-counting is harmless
  /// (only costs cache hits); under-counting would be a correctness bug, so
  /// every mutator bumps unconditionally.
  std::uint64_t state_epoch() const { return state_epoch_; }

  /// Earliest cycle >= now at which the FG reconfiguration port is idle.
  Cycles fg_port_free_at(Cycles now) const;

  /// Runs all configuration-scrubbing epochs due by \p now: every loaded
  /// container draws a transient-upset trial per epoch; upsets are either
  /// repaired (a re-load on the reconfiguration port, during which the ISE
  /// degrades to its best intermediate implementation) or — when diagnosed
  /// permanent — quarantine the container. The run-time system calls this at
  /// every trigger *before* planning, so the selector always sees the
  /// post-fault capacity. No-op without an attached fault model.
  void scrub(Cycles now);

  /// Attaches the deterministic fault injector (nullptr = fault-free
  /// machine, the default). The model must outlive this object and — like
  /// the fabric itself — must not be shared across threads.
  ///
  /// Attachment contract (explicit, replacing the old "last attachment
  /// wins"): a fabric has at most one fault model. Attaching a *different*
  /// non-null model while one is attached throws std::logic_error — on a
  /// shared fabric two tasks silently fighting over the injector would make
  /// the fault timeline depend on construction order. Re-attaching the same
  /// model is a no-op; nullptr detaches.
  void attach_fault_model(FaultModel* model);
  const FaultModel* fault_model() const { return fault_; }

  /// Attaches the arbitration policy hook (sim/arbiter.h implements it) and
  /// enables tenant-aware placement: accessibility masks, quota-preferred
  /// eviction, and the tenant.eviction / tenant.quota_hit observability.
  /// Same single-owner contract as attach_fault_model: attaching a
  /// different non-null hook over an existing one throws std::logic_error;
  /// nullptr detaches. With no hook attached (the default) every tenant
  /// query short-circuits and behavior is bit-identical to the
  /// pre-arbitration fabric.
  void attach_arbitration(FabricArbitration* arbitration);
  const FabricArbitration* arbitration() const { return arbitration_; }

  /// Sets the tenant on whose behalf subsequent install/prefetch/monoCG
  /// calls act. Tenant-bound run-time systems call this on entry to every
  /// fabric-touching operation; kUnownedTenant (the default) is the
  /// single-app / unmanaged mode. Bumps the state epoch only when the
  /// active tenant actually changes while arbitration is attached (the
  /// placement policy observably changed).
  void set_active_tenant(TenantId tenant);
  TenantId active_tenant() const { return active_tenant_; }

  /// Owner of a container: the tenant whose placement last targeted it
  /// (kUnownedTenant for empty containers or unmanaged placements).
  TenantId prc_owner(unsigned index) const;
  TenantId cg_owner(unsigned index) const;

  /// Containers currently owned by \p tenant (used by the arbiter's
  /// soft-quota accounting).
  unsigned owned_prcs(TenantId tenant) const;
  unsigned owned_cg(TenantId tenant) const;

  /// Clears all placement state (power-on reset). Quarantined containers
  /// stay quarantined — permanent faults are broken silicon, not state.
  void reset();

  /// Attaches the flight recorder / counter registry (either may be null).
  /// Records reconfiguration start/completion per data path (one track per
  /// PRC and per CG fabric), CG context switches, load cancellations and an
  /// occupancy sample per install. With a shared fabric, one attachment
  /// observes the installations of every task using it.
  ///
  /// Attachment contract: one observer per fabric. Replacing an attached
  /// non-null recorder/registry with a *different* non-null one throws
  /// std::logic_error (on a shared fabric that would silently drop another
  /// task's events); re-attaching the same pointers is a no-op and nullptr
  /// detaches that stream. MRts arbitrates this per tenant: the first
  /// tenant to attach claims the shared fabric's stream.
  void attach_observability(TraceRecorder* trace, CounterRegistry* counters);
  bool observability_attached() const {
    return trace_ != nullptr || counters_ != nullptr;
  }

  /// Whole-fabric capture/restore (rts/snapshot.h): placement, port
  /// backlogs, reservations/pins, owners, quarantine set, reconfig stats,
  /// scrub schedule and the state epoch. The attached fault model, the
  /// arbitration hook and the observability streams are *not* part of the
  /// fabric's state — the restoring process reconstructs and re-attaches
  /// them before calling load_state. load_state validates the stored shape
  /// against this fabric and throws SnapshotError before mutating anything
  /// on mismatch.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  /// Forwards one event to the attached recorder, stamping the currently
  /// active tenant onto it (unless the site already stamped one). Keeps
  /// shared-fabric traces per-tenant attributable without threading a
  /// TenantId through every instrumented call site.
  void trace_record(TraceEvent event) const;

  /// Records one scheduled load (start span + completion instant).
  void trace_load(const ReconfigJob& job, Grain grain) const;

  /// Result of one (possibly retried) load stream on a port.
  struct StreamedLoad {
    Cycles ready = kNeverCycles;  ///< completion of the successful stream
    bool success = false;
  };

  /// Enqueues one load of \p dp into \p container, consulting the fault
  /// model for CRC failures/retries, and emits the load + fault
  /// observability events. On retry exhaustion the load fails; a permanent
  /// diagnosis additionally quarantines the container.
  StreamedLoad stream_load(DataPathId dp, unsigned container, Grain grain,
                           Cycles now, const char* load_counter);

  /// One scrubbing pass over every loaded container at epoch time \p at.
  void scrub_epoch(Cycles at);

  struct Claim {
    Grain grain;
    unsigned container;  // PRC index or CG fabric index
  };

  std::optional<unsigned> claim_existing_fg(DataPathId dp,
                                            std::vector<bool>& claimed) const;
  std::optional<unsigned> claim_existing_cg(DataPathId dp,
                                            std::vector<bool>& claimed) const;

  /// Victim selection with arbitration. Both start from the fabric's native
  /// choice (FG: empty-first then oldest ready_at; CG: first unclaimed) and
  /// redirect only when that choice would evict a live foreign data path
  /// whose owner is *not* a preferred victim while a preferred victim (an
  /// over-quota or best-effort tenant's coldest container) exists. With no
  /// arbitration attached — or when the policy reports no preference, e.g.
  /// all-equal weights — the native choice is returned untouched, which is
  /// what keeps the legacy scheduler bit-exact as the degenerate case.
  std::optional<unsigned> pick_fg_victim(std::vector<bool>& claimed,
                                         Cycles now);
  std::optional<unsigned> pick_cg_victim(std::vector<bool>& claimed,
                                         Cycles now);

  /// True when \p tenant may place into the container (no hook = may).
  bool placeable_prc(unsigned index) const;
  bool placeable_cg(unsigned index) const;
  /// Usable capacity restricted to containers the active tenant may use.
  unsigned accessible_prcs() const;
  unsigned accessible_cg_fabrics() const;

  /// Records a cross-tenant eviction about to happen in \p container (trace
  /// event + counter + arbiter stats). No-op for empty/own/unowned victims.
  void note_tenant_eviction(Grain grain, unsigned container, Cycles now);

  const DataPathTable* table_;
  FgFabric fg_;
  std::vector<CgFabric> cg_;
  ReconfigController reconfig_;

  /// Fabrics/PRCs reserved by the currently installed selection.
  std::vector<bool> prc_reserved_;
  std::vector<bool> cg_reserved_;
  /// Claim/blocked scratch reused across install()/prefetch() calls (one
  /// install per trigger makes the four per-call allocations measurable).
  /// Only valid within a single call; install and prefetch never nest.
  std::vector<bool> scratch_prc_claimed_;
  std::vector<bool> scratch_cg_claimed_;
  std::vector<bool> scratch_prc_blocked_;
  std::vector<bool> scratch_cg_blocked_;
  /// Data path the selection pinned on each reserved CG fabric (protected
  /// from monoCG context eviction).
  std::vector<DataPathId> cg_pinned_;
  ReconfigStats reconfig_stats_;
  TraceRecorder* trace_ = nullptr;
  CounterRegistry* counters_ = nullptr;

  /// Multi-tenant state (all inert while arbitration_ == nullptr; owners
  /// are still tracked so tests can inspect unmanaged sharing).
  FabricArbitration* arbitration_ = nullptr;
  TenantId active_tenant_ = kUnownedTenant;
  std::vector<TenantId> prc_owner_;
  std::vector<TenantId> cg_owner_;

  /// Fault state (all inert while fault_ == nullptr).
  FaultModel* fault_ = nullptr;
  std::vector<bool> prc_quarantined_;
  std::vector<bool> cg_quarantined_;
  /// Incrementally maintained counts (containers minus quarantined) so the
  /// usable_* queries are O(1) on the ECU's per-execution hot path.
  unsigned usable_prcs_ = 0;
  unsigned usable_cg_ = 0;
  Cycles next_scrub_ = 0;  ///< next scrub epoch; 0 = not armed yet

  /// See state_epoch().
  std::uint64_t state_epoch_ = 0;
};

}  // namespace mrts
