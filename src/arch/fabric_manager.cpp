#include "arch/fabric_manager.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "arch/fault_model.h"
#include "util/counters.h"
#include "util/logging.h"
#include "util/snapshot_io.h"
#include "util/trace.h"

namespace mrts {

FabricManager::FabricManager(unsigned num_cg_fabrics, unsigned num_prcs,
                             const DataPathTable* table,
                             CgFabricParams cg_params)
    : table_(table), fg_(num_prcs) {
  if (table_ == nullptr) {
    throw std::invalid_argument("FabricManager: null data path table");
  }
  cg_.reserve(num_cg_fabrics);
  for (unsigned i = 0; i < num_cg_fabrics; ++i) cg_.emplace_back(cg_params);
  prc_reserved_.assign(num_prcs, false);
  cg_reserved_.assign(num_cg_fabrics, false);
  cg_pinned_.assign(num_cg_fabrics, kInvalidDataPath);
  prc_quarantined_.assign(num_prcs, false);
  cg_quarantined_.assign(num_cg_fabrics, false);
  usable_prcs_ = num_prcs;
  usable_cg_ = num_cg_fabrics;
  prc_owner_.assign(num_prcs, kUnownedTenant);
  cg_owner_.assign(num_cg_fabrics, kUnownedTenant);
}

void FabricManager::attach_fault_model(FaultModel* model) {
  if (model != nullptr && fault_ != nullptr && model != fault_) {
    throw std::logic_error(
        "FabricManager::attach_fault_model: a different fault model is "
        "already attached to this fabric (detach it first)");
  }
  if (model == fault_) return;
  fault_ = model;
  next_scrub_ = 0;  // re-arm lazily from the model's scrub interval
  ++state_epoch_;   // fault semantics change future load outcomes
}

void FabricManager::attach_arbitration(FabricArbitration* arbitration) {
  if (arbitration != nullptr && arbitration_ != nullptr &&
      arbitration != arbitration_) {
    throw std::logic_error(
        "FabricManager::attach_arbitration: a different arbitration hook is "
        "already attached to this fabric (detach it first)");
  }
  if (arbitration == arbitration_) return;
  arbitration_ = arbitration;
  ++state_epoch_;  // accessibility masks change future placements
}

void FabricManager::attach_observability(TraceRecorder* trace,
                                         CounterRegistry* counters) {
  if (trace != nullptr && trace_ != nullptr && trace != trace_) {
    throw std::logic_error(
        "FabricManager::attach_observability: a different trace recorder is "
        "already attached to this fabric (detach it first)");
  }
  if (counters != nullptr && counters_ != nullptr && counters != counters_) {
    throw std::logic_error(
        "FabricManager::attach_observability: a different counter registry "
        "is already attached to this fabric (detach it first)");
  }
  trace_ = trace;
  counters_ = counters;
}

void FabricManager::trace_record(TraceEvent event) const {
  if (trace_ == nullptr) return;
  if (event.tenant == 0) event.tenant = active_tenant_;
  trace_->record(event);
}

void FabricManager::set_active_tenant(TenantId tenant) {
  if (tenant == active_tenant_) return;
  active_tenant_ = tenant;
  // Placement policy (accessibility/quota masks) observably changed; without
  // arbitration the tenant id only labels owners and planning is unaffected.
  if (arbitration_ != nullptr) ++state_epoch_;
}

TenantId FabricManager::prc_owner(unsigned index) const {
  return index < prc_owner_.size() ? prc_owner_[index] : kUnownedTenant;
}

TenantId FabricManager::cg_owner(unsigned index) const {
  return index < cg_owner_.size() ? cg_owner_[index] : kUnownedTenant;
}

unsigned FabricManager::owned_prcs(TenantId tenant) const {
  unsigned n = 0;
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    if (prc_owner_[i] == tenant && !fg_.prc(i).empty()) ++n;
  }
  return n;
}

unsigned FabricManager::owned_cg(TenantId tenant) const {
  unsigned n = 0;
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (cg_owner_[i] == tenant && cg_[i].resident_count() > 0) ++n;
  }
  return n;
}

bool FabricManager::placeable_prc(unsigned index) const {
  return arbitration_ == nullptr ||
         arbitration_->may_place(active_tenant_, Grain::kFine, index);
}

bool FabricManager::placeable_cg(unsigned index) const {
  return arbitration_ == nullptr ||
         arbitration_->may_place(active_tenant_, Grain::kCoarse, index);
}

unsigned FabricManager::accessible_prcs() const {
  unsigned n = 0;
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    if (!prc_quarantined_[i] && placeable_prc(i)) ++n;
  }
  return n;
}

unsigned FabricManager::accessible_cg_fabrics() const {
  unsigned n = 0;
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (!cg_quarantined_[i] && placeable_cg(i)) ++n;
  }
  return n;
}

void FabricManager::note_tenant_eviction(Grain grain, unsigned container,
                                         Cycles now) {
  const bool fine = grain == Grain::kFine;
  const TenantId owner =
      fine ? prc_owner_[container] : cg_owner_[container];
  // An FG placement always destroys the occupant; a CG load only evicts a
  // context when the fabric's context memory is full.
  const bool destroys =
      fine ? !fg_.prc(container).empty()
           : cg_[container].resident_count() >= cg_[container].capacity();
  if (!destroys || owner == kUnownedTenant || owner == active_tenant_) return;
  trace_record({TraceEventKind::kTenantEviction,
                (fine ? kTrackFgBase : kTrackCgBase) +
                    static_cast<std::int32_t>(container),
                now, 0, owner, static_cast<std::uint32_t>(grain),
                static_cast<double>(active_tenant_), 0.0});
  if (counters_ != nullptr) counters_->add("tenant.eviction");
  if (arbitration_ != nullptr) {
    arbitration_->note_eviction(active_tenant_, owner, grain, now);
  }
}

std::optional<unsigned> FabricManager::pick_fg_victim(
    std::vector<bool>& claimed, Cycles now) {
  const auto native = fg_.find_victim(claimed);
  if (arbitration_ == nullptr || !native) return native;
  const TenantId owner = prc_owner_[*native];
  if (fg_.prc(*native).empty() || owner == kUnownedTenant ||
      owner == active_tenant_ ||
      arbitration_->prefer_evict(active_tenant_, owner, Grain::kFine)) {
    return native;
  }
  // The native victim is a within-entitlement foreign tenant's live data
  // path; redirect onto the coldest preferred (over-quota / best-effort)
  // victim when one exists, else keep the native choice.
  std::vector<bool> restricted = claimed;
  bool any_preferred = false;
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    if (restricted[i]) continue;
    const TenantId candidate = prc_owner_[i];
    const bool preferred =
        !fg_.prc(i).empty() && candidate != kUnownedTenant &&
        candidate != active_tenant_ &&
        arbitration_->prefer_evict(active_tenant_, candidate, Grain::kFine);
    if (preferred) {
      any_preferred = true;
    } else {
      restricted[i] = true;
    }
  }
  if (!any_preferred) return native;
  const auto redirect = fg_.find_victim(restricted);
  if (!redirect) return native;
  const TenantId victim_owner = prc_owner_[*redirect];
  trace_record({TraceEventKind::kTenantQuotaHit,
                kTrackFgBase + static_cast<std::int32_t>(*redirect), now,
                0, victim_owner,
                static_cast<std::uint32_t>(Grain::kFine),
                static_cast<double>(active_tenant_), 0.0});
  if (counters_ != nullptr) counters_->add("tenant.quota_hit");
  arbitration_->note_quota_redirect(active_tenant_, victim_owner, Grain::kFine,
                                    now);
  return redirect;
}

std::optional<unsigned> FabricManager::pick_cg_victim(
    std::vector<bool>& claimed, Cycles now) {
  // Native CG choice: the first unclaimed fabric (stale contexts there are
  // evicted lazily by CgFabric::load when the context memory fills up).
  std::optional<unsigned> native;
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (!claimed[i]) {
      native = i;
      break;
    }
  }
  if (arbitration_ == nullptr || !native) return native;
  const TenantId owner = cg_owner_[*native];
  if (cg_[*native].resident_count() == 0 || owner == kUnownedTenant ||
      owner == active_tenant_ ||
      arbitration_->prefer_evict(active_tenant_, owner, Grain::kCoarse)) {
    return native;
  }
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (claimed[i] || cg_[i].resident_count() == 0) continue;
    const TenantId candidate = cg_owner_[i];
    if (candidate == kUnownedTenant || candidate == active_tenant_) continue;
    if (!arbitration_->prefer_evict(active_tenant_, candidate,
                                    Grain::kCoarse)) {
      continue;
    }
    trace_record({TraceEventKind::kTenantQuotaHit,
                  kTrackCgBase + static_cast<std::int32_t>(i), now, 0,
                  candidate, static_cast<std::uint32_t>(Grain::kCoarse),
                  static_cast<double>(active_tenant_), 0.0});
    if (counters_ != nullptr) counters_->add("tenant.quota_hit");
    arbitration_->note_quota_redirect(active_tenant_, candidate,
                                      Grain::kCoarse, now);
    return i;
  }
  return native;
}

unsigned FabricManager::usable_prcs() const {
  // O(1): quarantine is the only way a container leaves service and it is
  // permanent, so the counts are maintained incrementally (hot path — the
  // ECU consults the CG count on every RISC-mode execution decision).
  return usable_prcs_;
}

unsigned FabricManager::usable_cg_fabrics() const { return usable_cg_; }

bool FabricManager::prc_quarantined(unsigned index) const {
  return index < prc_quarantined_.size() && prc_quarantined_[index];
}

bool FabricManager::cg_quarantined(unsigned index) const {
  return index < cg_quarantined_.size() && cg_quarantined_[index];
}

void FabricManager::quarantine_prc(unsigned index, Cycles at) {
  if (index >= prc_quarantined_.size() || prc_quarantined_[index]) return;
  ++state_epoch_;
  const TenantId owner = prc_owner_[index];
  prc_quarantined_[index] = true;
  --usable_prcs_;
  fg_.evict(index);
  prc_reserved_[index] = false;
  prc_owner_[index] = kUnownedTenant;
  if (fault_ != nullptr) ++fault_->stats().quarantined_prcs;
  // v0 = the tenant that lost the container (0 = unowned/single-app).
  trace_record({TraceEventKind::kQuarantine,
                kTrackFgBase + static_cast<std::int32_t>(index), at, 0,
                index, static_cast<std::uint32_t>(Grain::kFine),
                static_cast<double>(owner), 0.0});
  if (counters_ != nullptr) counters_->add("prc.quarantined");
  if (arbitration_ != nullptr) {
    arbitration_->note_quarantine(owner, Grain::kFine, at);
  }
}

void FabricManager::quarantine_cg(unsigned index, Cycles at) {
  if (index >= cg_quarantined_.size() || cg_quarantined_[index]) return;
  ++state_epoch_;
  const TenantId owner = cg_owner_[index];
  cg_quarantined_[index] = true;
  --usable_cg_;
  cg_[index].clear();
  cg_reserved_[index] = false;
  cg_pinned_[index] = kInvalidDataPath;
  cg_owner_[index] = kUnownedTenant;
  if (fault_ != nullptr) ++fault_->stats().quarantined_cg;
  trace_record({TraceEventKind::kQuarantine,
                kTrackCgBase + static_cast<std::int32_t>(index), at, 0,
                index, static_cast<std::uint32_t>(Grain::kCoarse),
                static_cast<double>(owner), 0.0});
  if (counters_ != nullptr) counters_->add("cg.quarantined");
  if (arbitration_ != nullptr) {
    arbitration_->note_quarantine(owner, Grain::kCoarse, at);
  }
}

const CgFabric& FabricManager::cg_fabric(unsigned i) const {
  if (i >= cg_.size()) throw std::out_of_range("FabricManager::cg_fabric");
  return cg_[i];
}

void FabricManager::trace_load(const ReconfigJob& job, Grain grain) const {
  if (trace_ == nullptr) return;
  const std::int32_t track =
      (grain == Grain::kFine ? kTrackFgBase : kTrackCgBase) +
      static_cast<std::int32_t>(job.container);
  const auto grain_arg = static_cast<std::uint32_t>(grain);
  // Scheduled times at enqueue; a later install() may cancel pending loads
  // (recorded as kReconfigCancel) before they start.
  trace_record({TraceEventKind::kReconfigStart, track, job.starts_at,
                job.completes_at - job.starts_at, raw(job.dp), grain_arg,
                0.0, 0.0});
  trace_record({TraceEventKind::kReconfigComplete, track, job.completes_at,
                0, raw(job.dp), grain_arg, 0.0, 0.0});
}

FabricManager::StreamedLoad FabricManager::stream_load(
    DataPathId dp, unsigned container, Grain grain, Cycles now,
    const char* load_counter) {
  const auto& desc = (*table_)[dp];
  const Cycles duration = desc.reconfig_cycles();
  LoadFaultOutcome outcome;
  outcome.port_cycles = duration;
  if (fault_ != nullptr) outcome = fault_->plan_load(grain, duration);

  ReconfigPort& port =
      grain == Grain::kFine ? reconfig_.fg_port() : reconfig_.cg_port();
  const ReconfigJob job =
      port.enqueue(dp, container, outcome.port_cycles, now);
  // Every attempt streams the full image, so retries move real bytes.
  const std::uint64_t attempts = outcome.retries + 1;
  if (grain == Grain::kFine) {
    ++reconfig_stats_.fg_loads;
    reconfig_stats_.fg_bytes += desc.bitstream_bytes * desc.units * attempts;
  } else {
    ++reconfig_stats_.cg_loads;
    reconfig_stats_.cg_bytes +=
        static_cast<std::uint64_t>(desc.context_instructions) * 10 *
        desc.units * attempts;
  }
  trace_load(job, grain);
  if (counters_ != nullptr) counters_->add(load_counter);

  const unsigned failed_attempts =
      outcome.retries + (outcome.success ? 0u : 1u);
  if (failed_attempts > 0) {
    const std::int32_t track =
        (grain == Grain::kFine ? kTrackFgBase : kTrackCgBase) +
        static_cast<std::int32_t>(container);
    const auto grain_arg = static_cast<std::uint32_t>(grain);
    // Reconstruct the attempt timeline inside the enqueued job: attempt k
    // streams for `duration` cycles and fails its CRC check at the end;
    // retry k then waits out the exponential backoff before re-streaming.
    Cycles attempt_start = job.starts_at;
    for (unsigned k = 0; k < failed_attempts; ++k) {
      const Cycles detect = attempt_start + duration;
      trace_record({TraceEventKind::kFaultInject, track, detect, 0,
                    raw(dp), grain_arg, static_cast<double>(k), 0.0});
      if (counters_ != nullptr) counters_->add("fault.inject");
      if (k < outcome.retries) {
        const Cycles retry_start = detect + fault_->backoff(k);
        trace_record({TraceEventKind::kReconfigRetry, track, retry_start,
                      duration, raw(dp), k + 1, 0.0, 0.0});
        if (counters_ != nullptr) counters_->add("reconfig.retry");
        attempt_start = retry_start;
      }
    }
  }

  StreamedLoad result;
  result.success = outcome.success;
  if (outcome.success) {
    result.ready = job.completes_at;
  } else if (outcome.quarantine) {
    // Retry exhaustion diagnosed a permanent container fault at the final
    // CRC check.
    if (grain == Grain::kFine) {
      quarantine_prc(container, job.completes_at);
    } else {
      quarantine_cg(container, job.completes_at);
    }
  }
  return result;
}

void FabricManager::scrub(Cycles now) {
  if (fault_ == nullptr) return;
  const Cycles interval = fault_->config().scrub_interval_cycles;
  if (interval == 0) return;
  if (next_scrub_ == 0) next_scrub_ = interval;  // arm on first use
  while (next_scrub_ <= now) {
    const Cycles at = next_scrub_;
    next_scrub_ += interval;
    if (fault_->config().transient_upset_prob > 0.0) {
      // A scrub epoch consumes fault-RNG draws and may re-enqueue repair
      // loads, so the fabric state observably changed even when every trial
      // came back clean.
      ++state_epoch_;
      scrub_epoch(at);
    }
  }
}

void FabricManager::scrub_epoch(Cycles at) {
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    if (prc_quarantined_[i]) continue;
    const Prc prc = fg_.prc(i);  // copy: repair/quarantine mutates the slot
    if (prc.empty() || prc.ready_at > at) continue;
    if (!fault_->upset()) continue;
    if (fault_->permanent()) {
      quarantine_prc(i, at);
      continue;
    }
    // Transient upset: scrubbing found corrupted configuration bits and
    // re-streams the bitstream. Until the repair completes the data path is
    // not usable, so affected ISEs degrade to their best intermediate.
    const StreamedLoad repair =
        stream_load(prc.occupant, i, Grain::kFine, at, "fabric.fg_loads");
    ++fault_->stats().scrub_repairs;
    trace_record({TraceEventKind::kScrubRepair,
                  kTrackFgBase + static_cast<std::int32_t>(i), at, 0,
                  raw(prc.occupant),
                  static_cast<std::uint32_t>(Grain::kFine),
                  repair.success ? static_cast<double>(repair.ready) : 0.0,
                  0.0});
    if (counters_ != nullptr) counters_->add("scrub.repair");
    if (repair.success) {
      fg_.place(i, prc.occupant, repair.ready);
    } else if (!prc_quarantined_[i]) {
      fg_.evict(i);  // repair failed: the PRC stays empty for this round
      prc_owner_[i] = kUnownedTenant;
    }
  }
  for (unsigned f = 0; f < static_cast<unsigned>(cg_.size()); ++f) {
    for (unsigned slot = 0; slot < cg_[f].capacity(); ++slot) {
      if (cg_quarantined_[f]) break;
      const CgContext ctx = cg_[f].context(slot);
      if (ctx.empty() || ctx.ready_at > at) continue;
      if (!fault_->upset()) continue;
      if (fault_->permanent()) {
        quarantine_cg(f, at);
        break;
      }
      const StreamedLoad repair =
          stream_load(ctx.occupant, f, Grain::kCoarse, at, "fabric.cg_loads");
      ++fault_->stats().scrub_repairs;
      trace_record({TraceEventKind::kScrubRepair,
                    kTrackCgBase + static_cast<std::int32_t>(f), at, 0,
                    raw(ctx.occupant),
                    static_cast<std::uint32_t>(Grain::kCoarse),
                    repair.success ? static_cast<double>(repair.ready)
                                   : 0.0,
                    0.0});
      if (counters_ != nullptr) counters_->add("scrub.repair");
      if (cg_quarantined_[f]) break;  // the repair load itself went permanent
      cg_[f].evict(slot);
      if (repair.success) cg_[f].load(ctx.occupant, repair.ready);
    }
  }
}

std::optional<unsigned> FabricManager::claim_existing_fg(
    DataPathId dp, std::vector<bool>& claimed) const {
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    if (claimed[i]) continue;
    if (fg_.prc(i).occupant == dp) {
      claimed[i] = true;
      return i;
    }
  }
  return std::nullopt;
}

std::optional<unsigned> FabricManager::claim_existing_cg(
    DataPathId dp, std::vector<bool>& claimed) const {
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (claimed[i]) continue;
    if (cg_[i].slot_of(dp)) {
      claimed[i] = true;
      return i;
    }
  }
  return std::nullopt;
}

std::vector<IsePlacement> FabricManager::install(
    const std::vector<IsePlacementRequest>& selection, Cycles now) {
  ++state_epoch_;
  // Consume any scrub epochs the run-time system has not drained yet, so
  // upsets/quarantines are applied before placement decisions.
  scrub(now);

  // --- 1. Check capacity. -------------------------------------------------
  // Quarantined containers are not capacity. If a quarantine shrank the
  // fabric after the selector planned, degrade gracefully instead of
  // crashing: trailing ISEs of the selection are dropped (their kernels fall
  // down the ECU ladder to monoCG/RISC). Without a fault model the strict
  // contract stays: an oversized selection is a caller bug.
  std::vector<unsigned> req_prcs(selection.size(), 0);
  std::vector<unsigned> req_cg(selection.size(), 0);
  unsigned need_prcs = 0;
  unsigned need_cg = 0;
  for (std::size_t s = 0; s < selection.size(); ++s) {
    for (DataPathId dp : selection[s].data_paths) {
      const auto& desc = (*table_)[dp];
      if (desc.grain == Grain::kFine) {
        req_prcs[s] += desc.units;
      } else {
        req_cg[s] += desc.units;
      }
    }
    need_prcs += req_prcs[s];
    need_cg += req_cg[s];
  }
  // With arbitration attached the active tenant plans against the capacity
  // it may actually place into (pool + own partition), not the whole
  // machine; an arbitrated overflow degrades like a post-quarantine one
  // (the tenant-bound selector plans with visible capacity, so drops only
  // happen on races it could not see).
  const unsigned cap_prcs =
      arbitration_ != nullptr ? accessible_prcs() : usable_prcs();
  const unsigned cap_cg =
      arbitration_ != nullptr ? accessible_cg_fabrics() : usable_cg_fabrics();
  std::size_t accepted = selection.size();
  while (accepted > 0 && (need_prcs > cap_prcs || need_cg > cap_cg)) {
    --accepted;
    need_prcs -= req_prcs[accepted];
    need_cg -= req_cg[accepted];
  }
  if (accepted != selection.size()) {
    if (fault_ == nullptr && arbitration_ == nullptr) {
      throw std::invalid_argument(
          "FabricManager::install: selection exceeds fabric capacity");
    }
    if (counters_ != nullptr) {
      counters_->add("fabric.dropped_selections", selection.size() - accepted);
    }
  }

  // --- 2. Match needed instances against what is already placed. ----------
  // Quarantined containers start out claimed: they are never reused (their
  // contents were evicted at quarantine time) and never picked as victims.
  // With arbitration, containers the active tenant may not place into
  // (other tenants' partitions) are pre-claimed the same way.
  std::vector<bool>& prc_claimed = scratch_prc_claimed_;
  std::vector<bool>& cg_claimed = scratch_cg_claimed_;
  prc_claimed.assign(prc_quarantined_.begin(), prc_quarantined_.end());
  cg_claimed.assign(cg_quarantined_.begin(), cg_quarantined_.end());
  if (arbitration_ != nullptr) {
    for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
      if (!placeable_prc(i)) prc_claimed[i] = true;
    }
    for (unsigned i = 0; i < cg_.size(); ++i) {
      if (!placeable_cg(i)) cg_claimed[i] = true;
    }
  }
  // Pre-claimed containers must not end up reserved by this selection.
  const std::vector<bool>& prc_blocked =
      (scratch_prc_blocked_ = prc_claimed);
  const std::vector<bool>& cg_blocked = (scratch_cg_blocked_ = cg_claimed);

  struct PendingLoad {
    std::size_t ise_index;
    std::size_t instance_index;
    DataPathId dp;
  };
  std::vector<PendingLoad> loads;
  std::vector<IsePlacement> result(selection.size());

  for (std::size_t s = 0; s < selection.size(); ++s) {
    const auto& req = selection[s];
    auto& placement = result[s];
    placement.ise = req.ise;
    placement.kernel = req.kernel;
    placement.instance_ready.assign(req.data_paths.size(), kNeverCycles);
    if (s >= accepted) continue;  // dropped: every instance stays kNever
    for (std::size_t k = 0; k < req.data_paths.size(); ++k) {
      const DataPathId dp = req.data_paths[k];
      const auto& desc = (*table_)[dp];
      if (desc.grain == Grain::kFine) {
        if (auto prc = claim_existing_fg(dp, prc_claimed)) {
          placement.instance_ready[k] = fg_.prc(*prc).ready_at;
          ++placement.reused_instances;
          // The claimer's live selection now depends on this container.
          prc_owner_[*prc] = active_tenant_;
          continue;
        }
      } else {
        if (auto fab = claim_existing_cg(dp, cg_claimed)) {
          placement.instance_ready[k] =
              cg_[*fab].context(*cg_[*fab].slot_of(dp)).ready_at;
          ++placement.reused_instances;
          cg_owner_[*fab] = active_tenant_;
          continue;
        }
      }
      loads.push_back({s, k, dp});
    }
  }

  // --- 3. Cancel pending loads of data paths the new selection evicts. ----
  // A queued FG job is kept only if its target PRC was claimed (its data path
  // is reused by this selection).
  const std::size_t fg_cancelled = reconfig_.fg_port().cancel_pending(
      now, [&prc_claimed](const ReconfigJob& job) {
        return job.container >= prc_claimed.size() ||
               !prc_claimed[job.container];
      });
  const std::size_t cg_cancelled = reconfig_.cg_port().cancel_pending(
      now, [&cg_claimed](const ReconfigJob& job) {
        return job.container >= cg_claimed.size() || !cg_claimed[job.container];
      });
  const std::size_t cancelled = fg_cancelled + cg_cancelled;
  reconfig_stats_.cancelled_loads += cancelled;
  // One cancel event per port so analysis can attribute evicted loads to a
  // reconfiguration unit (arg1 = grain) instead of one blended count.
  if (fg_cancelled > 0) {
    trace_record({TraceEventKind::kReconfigCancel, kTrackApp, now, 0, 0,
                  static_cast<std::uint32_t>(Grain::kFine),
                  static_cast<double>(fg_cancelled), 0.0});
  }
  if (cg_cancelled > 0) {
    trace_record({TraceEventKind::kReconfigCancel, kTrackApp, now, 0, 0,
                  static_cast<std::uint32_t>(Grain::kCoarse),
                  static_cast<double>(cg_cancelled), 0.0});
  }
  if (cancelled > 0 && counters_ != nullptr) {
    counters_->add("fabric.cancelled_loads", cancelled);
  }

  // --- 4. Schedule loads for the unmatched instances. ----------------------
  // A load whose CRC retries are exhausted leaves the instance at
  // kNeverCycles: the data path is unloadable for this selection round and
  // the ECU executes the best prefix/intermediate instead.
  for (const auto& load : loads) {
    const auto& desc = (*table_)[load.dp];
    auto& placement = result[load.ise_index];
    if (desc.grain == Grain::kFine) {
      auto victim = pick_fg_victim(prc_claimed, now);
      if (!victim) {
        throw std::logic_error("FabricManager::install: no PRC victim");
      }
      prc_claimed[*victim] = true;
      note_tenant_eviction(Grain::kFine, *victim, now);
      const StreamedLoad res =
          stream_load(load.dp, *victim, Grain::kFine, now, "fabric.fg_loads");
      if (res.success) {
        fg_.place(*victim, load.dp, res.ready);
        prc_owner_[*victim] = active_tenant_;
        placement.instance_ready[load.instance_index] = res.ready;
      } else if (!prc_quarantined_[*victim]) {
        fg_.evict(*victim);
        prc_owner_[*victim] = kUnownedTenant;
      }
    } else {
      auto victim = pick_cg_victim(cg_claimed, now);
      if (!victim) {
        throw std::logic_error("FabricManager::install: no CG victim");
      }
      cg_claimed[*victim] = true;
      note_tenant_eviction(Grain::kCoarse, *victim, now);
      const StreamedLoad res = stream_load(load.dp, *victim, Grain::kCoarse,
                                           now, "fabric.cg_loads");
      if (res.success) {
        cg_[*victim].load(load.dp, res.ready);
        cg_owner_[*victim] = active_tenant_;
        placement.instance_ready[load.instance_index] = res.ready;
      }
    }
  }

  // --- 5. Reservations + prefix ready times. -------------------------------
  // Containers quarantined while scheduling this round's loads must not end
  // up reserved.
  prc_reserved_ = prc_claimed;
  cg_reserved_ = cg_claimed;
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    // Containers that started out blocked (quarantined or another tenant's
    // partition) were only pre-claimed, never used by this selection.
    if (prc_quarantined_[i] || prc_blocked[i]) prc_reserved_[i] = false;
  }
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (cg_quarantined_[i] || cg_blocked[i]) cg_reserved_[i] = false;
  }
  cg_pinned_.assign(cg_.size(), kInvalidDataPath);
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (!cg_reserved_[i]) continue;
    // The claimed context of this fabric is the one the selection uses; it
    // must survive monoCG context churn.
    for (const auto& req : selection) {
      for (DataPathId dp : req.data_paths) {
        if ((*table_)[dp].grain == Grain::kCoarse && cg_[i].slot_of(dp)) {
          cg_pinned_[i] = dp;
        }
      }
    }
  }
  for (auto& placement : result) {
    placement.prefix_ready.resize(placement.instance_ready.size());
    Cycles prefix = 0;
    for (std::size_t i = 0; i < placement.instance_ready.size(); ++i) {
      prefix = std::max(prefix, placement.instance_ready[i]);
      placement.prefix_ready[i] = prefix;
    }
  }
  for (const auto& placement : result) {
    reconfig_stats_.reused_instances += placement.reused_instances;
  }
  if (trace_ != nullptr) {
    const FabricUsage u = usage();
    trace_record({TraceEventKind::kOccupancy, kTrackApp, now, 0,
                  u.total_prcs, u.total_cg,
                  static_cast<double>(u.reserved_prcs),
                  static_cast<double>(u.reserved_cg)});
  }
  if (counters_ != nullptr) {
    counters_->add("fabric.installs");
    std::uint64_t reused = 0;
    for (const auto& placement : result) reused += placement.reused_instances;
    counters_->add("fabric.reused_instances", reused);
  }
  reconfig_.fg_port().compact(now);
  reconfig_.cg_port().compact(now);
  return result;
}

std::size_t FabricManager::prefetch(
    const std::vector<IsePlacementRequest>& future, Cycles now) {
  ++state_epoch_;
  std::size_t started = 0;
  // Containers already claimed during this prefetch round (quarantined ones
  // count as claimed: speculation never targets broken silicon).
  std::vector<bool>& prc_claimed = (scratch_prc_claimed_ = prc_reserved_);
  std::vector<bool>& cg_claimed = (scratch_cg_claimed_ = cg_reserved_);
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    if (prc_quarantined_[i] || !placeable_prc(i)) prc_claimed[i] = true;
  }
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (cg_quarantined_[i] || !placeable_cg(i)) cg_claimed[i] = true;
  }

  for (const auto& req : future) {
    for (DataPathId dp : req.data_paths) {
      const auto& desc = (*table_)[dp];
      // Placed (or loading) anywhere already: nothing to do. Instance
      // multiplicity is intentionally ignored for speculation — the goal is
      // warming the fabric, not exactness.
      if (!instance_ready_times(dp).empty()) continue;
      if (desc.grain == Grain::kFine) {
        const auto victim = pick_fg_victim(prc_claimed, now);
        if (!victim) continue;  // no unreserved PRC left
        prc_claimed[*victim] = true;
        note_tenant_eviction(Grain::kFine, *victim, now);
        const StreamedLoad res = stream_load(dp, *victim, Grain::kFine, now,
                                             "fabric.prefetch_loads");
        if (res.success) {
          fg_.place(*victim, dp, res.ready);
          prc_owner_[*victim] = active_tenant_;
        }
        ++started;
      } else {
        // Use a free context slot of any fabric (the speculative context
        // must not evict live contexts).
        std::optional<unsigned> target;
        for (unsigned i = 0; i < cg_.size(); ++i) {
          if (cg_quarantined_[i] || !placeable_cg(i)) continue;
          if (!cg_claimed[i] || cg_[i].resident_count() < cg_[i].capacity()) {
            target = i;
            break;
          }
        }
        if (!target) continue;
        const StreamedLoad res = stream_load(dp, *target, Grain::kCoarse, now,
                                             "fabric.prefetch_loads");
        if (res.success) {
          const DataPathId keep = *target < cg_pinned_.size()
                                      ? cg_pinned_[*target]
                                      : kInvalidDataPath;
          cg_[*target].load(dp, res.ready, keep);
          cg_owner_[*target] = active_tenant_;
        }
        ++started;
      }
    }
  }
  return started;
}

const char* to_string(MigrationStatus status) {
  switch (status) {
    case MigrationStatus::kMigrated: return "migrated";
    case MigrationStatus::kNothingToMigrate: return "nothing-to-migrate";
    case MigrationStatus::kTargetUnavailable: return "target-unavailable";
    case MigrationStatus::kSourceQuarantined: return "source-quarantined";
    case MigrationStatus::kCopyFailed: return "copy-failed";
  }
  return "?";
}

MigrationResult FabricManager::migrate_prc(unsigned from, unsigned to,
                                           Cycles now) {
  MigrationResult res;
  if (from >= fg_.num_prcs() || to >= fg_.num_prcs()) {
    res.status = MigrationStatus::kTargetUnavailable;
    return res;
  }
  if (prc_quarantined_[from]) {
    // The source died before the drain completed: abort with nothing
    // mutated so the caller can pick another source.
    res.status = MigrationStatus::kSourceQuarantined;
    return res;
  }
  const Prc src = fg_.prc(from);
  if (src.empty()) {
    res.status = MigrationStatus::kNothingToMigrate;
    return res;
  }
  if (to == from || prc_quarantined_[to] || !fg_.prc(to).empty() ||
      !placeable_prc(to)) {
    res.status = MigrationStatus::kTargetUnavailable;
    return res;
  }

  ++state_epoch_;
  res.dp = src.occupant;
  // Drain: in-flight executions bind the source until its configuration is
  // fully streamed/usable; the context copy starts no earlier.
  const Cycles start = std::max(now, src.ready_at);
  res.drained_at = start;
  trace_record({TraceEventKind::kMigrationStart,
                kTrackFgBase + static_cast<std::int32_t>(from), start, 0,
                raw(src.occupant), static_cast<std::uint32_t>(Grain::kFine),
                static_cast<double>(from), static_cast<double>(to)});
  if (counters_ != nullptr) counters_->add("migration.started");

  const StreamedLoad copy =
      stream_load(src.occupant, to, Grain::kFine, start, "fabric.fg_loads");
  if (!copy.success) {
    // CRC retries exhausted (the stream may have quarantined the target);
    // the source keeps serving, the caller retries elsewhere.
    res.status = MigrationStatus::kCopyFailed;
    if (counters_ != nullptr) counters_->add("migration.failed");
    return res;
  }

  fg_.place(to, src.occupant, copy.ready);
  prc_owner_[to] = prc_owner_[from];
  fg_.evict(from);
  prc_owner_[from] = kUnownedTenant;
  if (prc_reserved_[from]) {
    prc_reserved_[from] = false;
    prc_reserved_[to] = true;
  }
  trace_record({TraceEventKind::kMigrationComplete,
                kTrackFgBase + static_cast<std::int32_t>(to), copy.ready,
                copy.ready - start, raw(src.occupant),
                static_cast<std::uint32_t>(Grain::kFine),
                static_cast<double>(from), static_cast<double>(to)});
  if (counters_ != nullptr) counters_->add("migration.completed");
  res.status = MigrationStatus::kMigrated;
  res.ready_at = copy.ready;
  return res;
}

MigrationResult FabricManager::migrate_cg(unsigned from, unsigned to,
                                          Cycles now) {
  MigrationResult res;
  if (from >= cg_.size() || to >= cg_.size()) {
    res.status = MigrationStatus::kTargetUnavailable;
    return res;
  }
  if (cg_quarantined_[from]) {
    res.status = MigrationStatus::kSourceQuarantined;
    return res;
  }
  // Oldest resident context (lowest ready_at; ties to the lowest slot).
  std::optional<unsigned> slot;
  for (unsigned s = 0; s < cg_[from].capacity(); ++s) {
    const CgContext& ctx = cg_[from].context(s);
    if (ctx.empty()) continue;
    if (!slot || ctx.ready_at < cg_[from].context(*slot).ready_at) slot = s;
  }
  if (!slot) {
    res.status = MigrationStatus::kNothingToMigrate;
    return res;
  }
  if (to == from || cg_quarantined_[to] || !placeable_cg(to) ||
      cg_[to].resident_count() >= cg_[to].capacity()) {
    // Migration never evicts live contexts on the target.
    res.status = MigrationStatus::kTargetUnavailable;
    return res;
  }

  ++state_epoch_;
  const CgContext ctx = cg_[from].context(*slot);
  res.dp = ctx.occupant;
  const Cycles start = std::max(now, ctx.ready_at);
  res.drained_at = start;
  trace_record({TraceEventKind::kMigrationStart,
                kTrackCgBase + static_cast<std::int32_t>(from), start, 0,
                raw(ctx.occupant), static_cast<std::uint32_t>(Grain::kCoarse),
                static_cast<double>(from), static_cast<double>(to)});
  if (counters_ != nullptr) counters_->add("migration.started");

  const StreamedLoad copy =
      stream_load(ctx.occupant, to, Grain::kCoarse, start, "fabric.cg_loads");
  if (!copy.success) {
    res.status = MigrationStatus::kCopyFailed;
    if (counters_ != nullptr) counters_->add("migration.failed");
    return res;
  }

  cg_[to].load(ctx.occupant, copy.ready);
  cg_owner_[to] = cg_owner_[from];
  cg_[from].evict(*slot);
  if (cg_pinned_[from] == ctx.occupant) {
    cg_pinned_[to] = ctx.occupant;
    cg_pinned_[from] = kInvalidDataPath;
  }
  if (cg_reserved_[from] && cg_[from].resident_count() == 0) {
    cg_reserved_[from] = false;
    cg_reserved_[to] = true;
  }
  if (cg_[from].resident_count() == 0) cg_owner_[from] = kUnownedTenant;
  trace_record({TraceEventKind::kMigrationComplete,
                kTrackCgBase + static_cast<std::int32_t>(to), copy.ready,
                copy.ready - start, raw(ctx.occupant),
                static_cast<std::uint32_t>(Grain::kCoarse),
                static_cast<double>(from), static_cast<double>(to)});
  if (counters_ != nullptr) counters_->add("migration.completed");
  res.status = MigrationStatus::kMigrated;
  res.ready_at = copy.ready;
  return res;
}

std::optional<Cycles> FabricManager::acquire_mono_cg(DataPathId mono_dp,
                                                     Cycles now) {
  ++state_epoch_;
  const auto& desc = (*table_)[mono_dp];
  if (desc.grain != Grain::kCoarse) {
    throw std::invalid_argument(
        "FabricManager::acquire_mono_cg: monoCG must be a CG data path");
  }
  // Already resident somewhere? Just (re-)activate it (2-cycle switch).
  for (unsigned i = 0; i < cg_.size(); ++i) {
    CgFabric& fabric = cg_[i];
    if (auto slot = fabric.slot_of(mono_dp)) {
      const Cycles ready = fabric.context(*slot).ready_at;
      const Cycles switch_cost = fabric.activate(*slot);
      if (switch_cost > 0) {
        trace_record({TraceEventKind::kCgContextSwitch,
                      kTrackCgBase + static_cast<std::int32_t>(i),
                      std::max(now, ready), switch_cost, raw(mono_dp), 0,
                      0.0, 0.0});
        if (counters_ != nullptr) counters_->add("fabric.cg_context_switches");
      }
      return std::max(now, ready) + switch_cost;
    }
  }
  // Pick a host. A CG fabric stores multiple contexts, so a "free" fabric
  // in the Fig. 7 sense is one that can take another context without
  // disturbing the current selection: prefer unreserved fabrics (stale
  // contexts there may be evicted), otherwise use a free context slot of a
  // reserved fabric — execution is serialized, only the 2-cycle context
  // switch is paid.
  std::optional<unsigned> target;
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (cg_reserved_[i] || cg_quarantined_[i] || !placeable_cg(i)) continue;
    if (!target) target = i;
    if (cg_[i].resident_count() < cg_[i].capacity()) {
      target = i;
      break;
    }
  }
  if (!target) {
    // Reserved fabrics host monoCG contexts too (the context memory stores
    // multiple contexts); the selection's own context is pinned. Prefer a
    // fabric with a free slot, else evict the oldest stale/mono context
    // (capacity permitting).
    for (unsigned i = 0; i < cg_.size(); ++i) {
      if (cg_quarantined_[i] || !placeable_cg(i)) continue;
      if (cg_[i].resident_count() < cg_[i].capacity()) {
        target = i;
        break;
      }
    }
    if (!target) {
      for (unsigned i = 0; i < cg_.size(); ++i) {
        if (!cg_quarantined_[i] && placeable_cg(i) && cg_[i].capacity() > 1) {
          target = i;
          break;
        }
      }
    }
  }
  if (!target) return std::nullopt;  // incl. the all-CG-quarantined machine
  note_tenant_eviction(Grain::kCoarse, *target, now);
  const StreamedLoad res =
      stream_load(mono_dp, *target, Grain::kCoarse, now,
                  "fabric.mono_cg_loads");
  if (!res.success) return std::nullopt;  // CRC retries exhausted
  const DataPathId keep = *target < cg_pinned_.size()
                              ? cg_pinned_[*target]
                              : kInvalidDataPath;
  const unsigned slot = cg_[*target].load(mono_dp, res.ready, keep);
  cg_owner_[*target] = active_tenant_;
  const Cycles switch_cost = cg_[*target].activate(slot);
  if (switch_cost > 0) {
    trace_record({TraceEventKind::kCgContextSwitch,
                  kTrackCgBase + static_cast<std::int32_t>(*target),
                  res.ready, switch_cost, raw(mono_dp), 0, 0.0, 0.0});
    if (counters_ != nullptr) counters_->add("fabric.cg_context_switches");
  }
  return res.ready + switch_cost;
}

Cycles FabricManager::activate_cg_context(DataPathId dp, Cycles now) {
  for (unsigned i = 0; i < cg_.size(); ++i) {
    CgFabric& fabric = cg_[i];
    if (auto slot = fabric.slot_of(dp)) {
      if (fabric.context(*slot).ready_at > now) return 0;
      ++state_epoch_;
      const Cycles switch_cost = fabric.activate(*slot);
      if (switch_cost > 0) {
        trace_record({TraceEventKind::kCgContextSwitch,
                      kTrackCgBase + static_cast<std::int32_t>(i), now,
                      switch_cost, raw(dp), 0, 0.0, 0.0});
        if (counters_ != nullptr) counters_->add("fabric.cg_context_switches");
      }
      return switch_cost;
    }
  }
  return 0;
}

unsigned FabricManager::available_instances(DataPathId dp, Cycles t) const {
  unsigned n = 0;
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    const auto& prc = fg_.prc(i);
    if (prc.occupant == dp && prc.ready_at <= t) ++n;
  }
  for (const auto& fabric : cg_) {
    if (fabric.holds(dp, t)) ++n;
  }
  return n;
}

std::vector<Cycles> FabricManager::instance_ready_times(DataPathId dp) const {
  std::vector<Cycles> out;
  append_instance_ready_times(dp, out);
  return out;
}

void FabricManager::append_instance_ready_times(DataPathId dp,
                                                std::vector<Cycles>& out) const {
  out.clear();
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    const auto& prc = fg_.prc(i);
    if (prc.occupant == dp) out.push_back(prc.ready_at);
  }
  for (const auto& fabric : cg_) fabric.append_instance_ready_times(dp, out);
  std::sort(out.begin(), out.end());
}

void FabricManager::snapshot_instance_ready_times(
    std::vector<std::vector<Cycles>>& out) const {
  for (auto& bucket : out) bucket.clear();
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    const auto& prc = fg_.prc(i);
    if (!prc.empty() && raw(prc.occupant) < out.size()) {
      out[raw(prc.occupant)].push_back(prc.ready_at);
    }
  }
  for (const auto& fabric : cg_) {
    for (unsigned s = 0; s < fabric.capacity(); ++s) {
      const CgContext& ctx = fabric.context(s);
      if (!ctx.empty() && raw(ctx.occupant) < out.size()) {
        out[raw(ctx.occupant)].push_back(ctx.ready_at);
      }
    }
  }
  for (auto& bucket : out) {
    if (bucket.size() > 1) std::sort(bucket.begin(), bucket.end());
  }
}

unsigned FabricManager::free_cg_fabrics() const {
  unsigned n = 0;
  for (unsigned i = 0; i < cg_reserved_.size(); ++i) {
    if (!cg_reserved_[i] && !cg_quarantined_[i]) ++n;
  }
  return n;
}

FabricUsage FabricManager::usage() const {
  FabricUsage u;
  u.total_prcs = fg_.num_prcs();
  u.total_cg = static_cast<unsigned>(cg_.size());
  u.reserved_prcs = static_cast<unsigned>(
      std::count(prc_reserved_.begin(), prc_reserved_.end(), true));
  u.reserved_cg = static_cast<unsigned>(
      std::count(cg_reserved_.begin(), cg_reserved_.end(), true));
  u.quarantined_prcs = fg_.num_prcs() - usable_prcs();
  u.quarantined_cg = static_cast<unsigned>(cg_.size()) - usable_cg_fabrics();
  return u;
}

Cycles FabricManager::fg_port_free_at(Cycles now) const {
  return reconfig_.fg_port().busy_until(now);
}

void FabricManager::reset() {
  ++state_epoch_;
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) fg_.evict(i);
  for (auto& fabric : cg_) fabric.clear();
  prc_reserved_.assign(fg_.num_prcs(), false);
  cg_reserved_.assign(cg_.size(), false);
  cg_pinned_.assign(cg_.size(), kInvalidDataPath);
  prc_owner_.assign(fg_.num_prcs(), kUnownedTenant);
  cg_owner_.assign(cg_.size(), kUnownedTenant);
  reconfig_ = ReconfigController{};
  reconfig_stats_ = ReconfigStats{};
  // Quarantine bitmaps and the fault model's RNG deliberately survive:
  // permanent faults are physical damage, and the injector's stream is one
  // deterministic timeline per simulator instance.
  next_scrub_ = 0;
}

namespace {

void save_bool_vector(SnapshotWriter& w, const std::vector<bool>& v) {
  w.u64(v.size());
  for (bool b : v) w.boolean(b);
}

void load_bool_vector(SnapshotReader& r, std::vector<bool>& v,
                      const char* what) {
  const std::size_t n = r.length(1u << 20, what);
  if (n != v.size()) {
    throw SnapshotError(std::string("snapshot ") + what +
                            " size does not match this fabric",
                        r.pos());
  }
  for (std::size_t i = 0; i < n; ++i) v[i] = r.boolean();
}

void save_tenant_vector(SnapshotWriter& w, const std::vector<TenantId>& v) {
  w.u64(v.size());
  for (TenantId t : v) w.u32(t);
}

void load_tenant_vector(SnapshotReader& r, std::vector<TenantId>& v,
                        const char* what) {
  const std::size_t n = r.length(1u << 20, what);
  if (n != v.size()) {
    throw SnapshotError(std::string("snapshot ") + what +
                            " size does not match this fabric",
                        r.pos());
  }
  for (std::size_t i = 0; i < n; ++i) v[i] = r.u32();
}

}  // namespace

void FabricManager::save_state(SnapshotWriter& w) const {
  // Shape header first so a mismatched restore fails before any payload is
  // even parsed.
  w.u32(fg_.num_prcs());
  w.u32(static_cast<std::uint32_t>(cg_.size()));
  fg_.save_state(w);
  for (const auto& fabric : cg_) fabric.save_state(w);
  reconfig_.save_state(w);
  save_bool_vector(w, prc_reserved_);
  save_bool_vector(w, cg_reserved_);
  w.u64(cg_pinned_.size());
  for (DataPathId dp : cg_pinned_) w.u32(raw(dp));
  w.u64(reconfig_stats_.fg_loads);
  w.u64(reconfig_stats_.cg_loads);
  w.u64(reconfig_stats_.fg_bytes);
  w.u64(reconfig_stats_.cg_bytes);
  w.u64(reconfig_stats_.cancelled_loads);
  w.u64(reconfig_stats_.reused_instances);
  w.u32(active_tenant_);
  save_tenant_vector(w, prc_owner_);
  save_tenant_vector(w, cg_owner_);
  save_bool_vector(w, prc_quarantined_);
  save_bool_vector(w, cg_quarantined_);
  w.u32(usable_prcs_);
  w.u32(usable_cg_);
  w.u64(next_scrub_);
  w.u64(state_epoch_);
}

void FabricManager::load_state(SnapshotReader& r) {
  const std::uint32_t prcs = r.u32();
  const std::uint32_t cgs = r.u32();
  if (prcs != fg_.num_prcs() || cgs != cg_.size()) {
    throw SnapshotError(
        "snapshot fabric shape does not match this fabric", r.pos());
  }
  fg_.load_state(r);
  for (auto& fabric : cg_) fabric.load_state(r);
  reconfig_.load_state(r);
  load_bool_vector(r, prc_reserved_, "PRC reservation set");
  load_bool_vector(r, cg_reserved_, "CG reservation set");
  const std::size_t pins = r.length(1u << 20, "CG pin set");
  if (pins != cg_pinned_.size()) {
    throw SnapshotError("snapshot CG pin set size does not match this fabric",
                        r.pos());
  }
  for (std::size_t i = 0; i < pins; ++i) cg_pinned_[i] = DataPathId{r.u32()};
  reconfig_stats_.fg_loads = r.u64();
  reconfig_stats_.cg_loads = r.u64();
  reconfig_stats_.fg_bytes = r.u64();
  reconfig_stats_.cg_bytes = r.u64();
  reconfig_stats_.cancelled_loads = r.u64();
  reconfig_stats_.reused_instances = r.u64();
  active_tenant_ = r.u32();
  load_tenant_vector(r, prc_owner_, "PRC owner table");
  load_tenant_vector(r, cg_owner_, "CG owner table");
  load_bool_vector(r, prc_quarantined_, "PRC quarantine set");
  load_bool_vector(r, cg_quarantined_, "CG quarantine set");
  usable_prcs_ = r.u32();
  usable_cg_ = r.u32();
  next_scrub_ = r.u64();
  state_epoch_ = r.u64();
}

}  // namespace mrts
