#include "arch/fabric_manager.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/counters.h"
#include "util/logging.h"
#include "util/trace.h"

namespace mrts {

FabricManager::FabricManager(unsigned num_cg_fabrics, unsigned num_prcs,
                             const DataPathTable* table,
                             CgFabricParams cg_params)
    : table_(table), fg_(num_prcs) {
  if (table_ == nullptr) {
    throw std::invalid_argument("FabricManager: null data path table");
  }
  cg_.reserve(num_cg_fabrics);
  for (unsigned i = 0; i < num_cg_fabrics; ++i) cg_.emplace_back(cg_params);
  prc_reserved_.assign(num_prcs, false);
  cg_reserved_.assign(num_cg_fabrics, false);
  cg_pinned_.assign(num_cg_fabrics, kInvalidDataPath);
}

const CgFabric& FabricManager::cg_fabric(unsigned i) const {
  if (i >= cg_.size()) throw std::out_of_range("FabricManager::cg_fabric");
  return cg_[i];
}

void FabricManager::trace_load(const ReconfigJob& job, Grain grain) const {
  if (trace_ == nullptr) return;
  const std::int32_t track =
      (grain == Grain::kFine ? kTrackFgBase : kTrackCgBase) +
      static_cast<std::int32_t>(job.container);
  const auto grain_arg = static_cast<std::uint32_t>(grain);
  // Scheduled times at enqueue; a later install() may cancel pending loads
  // (recorded as kReconfigCancel) before they start.
  trace_->record({TraceEventKind::kReconfigStart, track, job.starts_at,
                  job.completes_at - job.starts_at, raw(job.dp), grain_arg,
                  0.0, 0.0});
  trace_->record({TraceEventKind::kReconfigComplete, track, job.completes_at,
                  0, raw(job.dp), grain_arg, 0.0, 0.0});
}

std::optional<unsigned> FabricManager::claim_existing_fg(
    DataPathId dp, std::vector<bool>& claimed) const {
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    if (claimed[i]) continue;
    if (fg_.prc(i).occupant == dp) {
      claimed[i] = true;
      return i;
    }
  }
  return std::nullopt;
}

std::optional<unsigned> FabricManager::claim_existing_cg(
    DataPathId dp, std::vector<bool>& claimed) const {
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (claimed[i]) continue;
    if (cg_[i].slot_of(dp)) {
      claimed[i] = true;
      return i;
    }
  }
  return std::nullopt;
}

std::vector<IsePlacement> FabricManager::install(
    const std::vector<IsePlacementRequest>& selection, Cycles now) {
  // --- 1. Check capacity. -------------------------------------------------
  unsigned need_prcs = 0;
  unsigned need_cg = 0;
  for (const auto& req : selection) {
    for (DataPathId dp : req.data_paths) {
      const auto& desc = (*table_)[dp];
      if (desc.grain == Grain::kFine) {
        need_prcs += desc.units;
      } else {
        need_cg += desc.units;
      }
    }
  }
  if (need_prcs > fg_.num_prcs() || need_cg > cg_.size()) {
    throw std::invalid_argument(
        "FabricManager::install: selection exceeds fabric capacity");
  }

  // --- 2. Match needed instances against what is already placed. ----------
  std::vector<bool> prc_claimed(fg_.num_prcs(), false);
  std::vector<bool> cg_claimed(cg_.size(), false);

  struct PendingLoad {
    std::size_t ise_index;
    std::size_t instance_index;
    DataPathId dp;
  };
  std::vector<PendingLoad> loads;
  std::vector<IsePlacement> result(selection.size());

  for (std::size_t s = 0; s < selection.size(); ++s) {
    const auto& req = selection[s];
    auto& placement = result[s];
    placement.ise = req.ise;
    placement.kernel = req.kernel;
    placement.instance_ready.assign(req.data_paths.size(), kNeverCycles);
    for (std::size_t k = 0; k < req.data_paths.size(); ++k) {
      const DataPathId dp = req.data_paths[k];
      const auto& desc = (*table_)[dp];
      if (desc.grain == Grain::kFine) {
        if (auto prc = claim_existing_fg(dp, prc_claimed)) {
          placement.instance_ready[k] = fg_.prc(*prc).ready_at;
          ++placement.reused_instances;
          continue;
        }
      } else {
        if (auto fab = claim_existing_cg(dp, cg_claimed)) {
          placement.instance_ready[k] =
              cg_[*fab].context(*cg_[*fab].slot_of(dp)).ready_at;
          ++placement.reused_instances;
          continue;
        }
      }
      loads.push_back({s, k, dp});
    }
  }

  // --- 3. Cancel pending loads of data paths the new selection evicts. ----
  // A queued FG job is kept only if its target PRC was claimed (its data path
  // is reused by this selection).
  std::size_t cancelled = reconfig_.fg_port().cancel_pending(
      now, [&prc_claimed](const ReconfigJob& job) {
        return job.container >= prc_claimed.size() ||
               !prc_claimed[job.container];
      });
  cancelled += reconfig_.cg_port().cancel_pending(
      now, [&cg_claimed](const ReconfigJob& job) {
        return job.container >= cg_claimed.size() || !cg_claimed[job.container];
      });
  reconfig_stats_.cancelled_loads += cancelled;
  if (cancelled > 0) {
    if (trace_ != nullptr) {
      trace_->record({TraceEventKind::kReconfigCancel, kTrackApp, now, 0, 0, 0,
                      static_cast<double>(cancelled), 0.0});
    }
    if (counters_ != nullptr) {
      counters_->add("fabric.cancelled_loads", cancelled);
    }
  }

  // --- 4. Schedule loads for the unmatched instances. ----------------------
  for (const auto& load : loads) {
    const auto& desc = (*table_)[load.dp];
    auto& placement = result[load.ise_index];
    if (desc.grain == Grain::kFine) {
      auto victim = fg_.find_victim(prc_claimed);
      if (!victim) {
        throw std::logic_error("FabricManager::install: no PRC victim");
      }
      prc_claimed[*victim] = true;
      const auto& job = reconfig_.fg_port().enqueue(load.dp, *victim,
                                                    desc.reconfig_cycles(), now);
      ++reconfig_stats_.fg_loads;
      reconfig_stats_.fg_bytes += desc.bitstream_bytes * desc.units;
      trace_load(job, Grain::kFine);
      if (counters_ != nullptr) counters_->add("fabric.fg_loads");
      fg_.place(*victim, load.dp, job.completes_at);
      placement.instance_ready[load.instance_index] = job.completes_at;
    } else {
      // Pick the first unclaimed CG fabric (its stale contexts are evicted
      // lazily by CgFabric::load when the context memory fills up).
      std::optional<unsigned> victim;
      for (unsigned i = 0; i < cg_.size(); ++i) {
        if (!cg_claimed[i]) {
          victim = i;
          break;
        }
      }
      if (!victim) {
        throw std::logic_error("FabricManager::install: no CG victim");
      }
      cg_claimed[*victim] = true;
      const auto& job = reconfig_.cg_port().enqueue(load.dp, *victim,
                                                    desc.reconfig_cycles(), now);
      ++reconfig_stats_.cg_loads;
      reconfig_stats_.cg_bytes +=
          static_cast<std::uint64_t>(desc.context_instructions) * 10 *
          desc.units;
      trace_load(job, Grain::kCoarse);
      if (counters_ != nullptr) counters_->add("fabric.cg_loads");
      cg_[*victim].load(load.dp, job.completes_at);
      placement.instance_ready[load.instance_index] = job.completes_at;
    }
  }

  // --- 5. Reservations + prefix ready times. -------------------------------
  prc_reserved_ = prc_claimed;
  cg_reserved_ = cg_claimed;
  cg_pinned_.assign(cg_.size(), kInvalidDataPath);
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (!cg_reserved_[i]) continue;
    // The claimed context of this fabric is the one the selection uses; it
    // must survive monoCG context churn.
    for (const auto& req : selection) {
      for (DataPathId dp : req.data_paths) {
        if ((*table_)[dp].grain == Grain::kCoarse && cg_[i].slot_of(dp)) {
          cg_pinned_[i] = dp;
        }
      }
    }
  }
  for (auto& placement : result) {
    placement.prefix_ready.resize(placement.instance_ready.size());
    Cycles prefix = 0;
    for (std::size_t i = 0; i < placement.instance_ready.size(); ++i) {
      prefix = std::max(prefix, placement.instance_ready[i]);
      placement.prefix_ready[i] = prefix;
    }
  }
  for (const auto& placement : result) {
    reconfig_stats_.reused_instances += placement.reused_instances;
  }
  if (trace_ != nullptr) {
    const FabricUsage u = usage();
    trace_->record({TraceEventKind::kOccupancy, kTrackApp, now, 0,
                    u.total_prcs, u.total_cg,
                    static_cast<double>(u.reserved_prcs),
                    static_cast<double>(u.reserved_cg)});
  }
  if (counters_ != nullptr) {
    counters_->add("fabric.installs");
    std::uint64_t reused = 0;
    for (const auto& placement : result) reused += placement.reused_instances;
    counters_->add("fabric.reused_instances", reused);
  }
  reconfig_.fg_port().compact(now);
  reconfig_.cg_port().compact(now);
  return result;
}

std::size_t FabricManager::prefetch(
    const std::vector<IsePlacementRequest>& future, Cycles now) {
  std::size_t started = 0;
  // Containers already claimed during this prefetch round.
  std::vector<bool> prc_claimed = prc_reserved_;
  std::vector<bool> cg_claimed = cg_reserved_;

  for (const auto& req : future) {
    for (DataPathId dp : req.data_paths) {
      const auto& desc = (*table_)[dp];
      // Placed (or loading) anywhere already: nothing to do. Instance
      // multiplicity is intentionally ignored for speculation — the goal is
      // warming the fabric, not exactness.
      if (!instance_ready_times(dp).empty()) continue;
      if (desc.grain == Grain::kFine) {
        const auto victim = fg_.find_victim(prc_claimed);
        if (!victim) continue;  // no unreserved PRC left
        prc_claimed[*victim] = true;
        const auto& job = reconfig_.fg_port().enqueue(
            dp, *victim, desc.reconfig_cycles(), now);
        ++reconfig_stats_.fg_loads;
        reconfig_stats_.fg_bytes += desc.bitstream_bytes * desc.units;
        trace_load(job, Grain::kFine);
        if (counters_ != nullptr) counters_->add("fabric.prefetch_loads");
        fg_.place(*victim, dp, job.completes_at);
        ++started;
      } else {
        // Use a free context slot of any fabric (the speculative context
        // must not evict live contexts).
        std::optional<unsigned> target;
        for (unsigned i = 0; i < cg_.size(); ++i) {
          if (!cg_claimed[i] || cg_[i].resident_count() < cg_[i].capacity()) {
            target = i;
            break;
          }
        }
        if (!target) continue;
        const auto& job = reconfig_.cg_port().enqueue(
            dp, *target, desc.reconfig_cycles(), now);
        ++reconfig_stats_.cg_loads;
        reconfig_stats_.cg_bytes +=
            static_cast<std::uint64_t>(desc.context_instructions) * 10 *
            desc.units;
        trace_load(job, Grain::kCoarse);
        if (counters_ != nullptr) counters_->add("fabric.prefetch_loads");
        const DataPathId keep = *target < cg_pinned_.size()
                                    ? cg_pinned_[*target]
                                    : kInvalidDataPath;
        cg_[*target].load(dp, job.completes_at, keep);
        ++started;
      }
    }
  }
  return started;
}

std::optional<Cycles> FabricManager::acquire_mono_cg(DataPathId mono_dp,
                                                     Cycles now) {
  const auto& desc = (*table_)[mono_dp];
  if (desc.grain != Grain::kCoarse) {
    throw std::invalid_argument(
        "FabricManager::acquire_mono_cg: monoCG must be a CG data path");
  }
  // Already resident somewhere? Just (re-)activate it (2-cycle switch).
  for (unsigned i = 0; i < cg_.size(); ++i) {
    CgFabric& fabric = cg_[i];
    if (auto slot = fabric.slot_of(mono_dp)) {
      const Cycles ready = fabric.context(*slot).ready_at;
      const Cycles switch_cost = fabric.activate(*slot);
      if (switch_cost > 0) {
        if (trace_ != nullptr) {
          trace_->record({TraceEventKind::kCgContextSwitch,
                          kTrackCgBase + static_cast<std::int32_t>(i),
                          std::max(now, ready), switch_cost, raw(mono_dp), 0,
                          0.0, 0.0});
        }
        if (counters_ != nullptr) counters_->add("fabric.cg_context_switches");
      }
      return std::max(now, ready) + switch_cost;
    }
  }
  // Pick a host. A CG fabric stores multiple contexts, so a "free" fabric
  // in the Fig. 7 sense is one that can take another context without
  // disturbing the current selection: prefer unreserved fabrics (stale
  // contexts there may be evicted), otherwise use a free context slot of a
  // reserved fabric — execution is serialized, only the 2-cycle context
  // switch is paid.
  std::optional<unsigned> target;
  for (unsigned i = 0; i < cg_.size(); ++i) {
    if (cg_reserved_[i]) continue;
    if (!target) target = i;
    if (cg_[i].resident_count() < cg_[i].capacity()) {
      target = i;
      break;
    }
  }
  if (!target) {
    // Reserved fabrics host monoCG contexts too (the context memory stores
    // multiple contexts); the selection's own context is pinned. Prefer a
    // fabric with a free slot, else evict the oldest stale/mono context
    // (capacity permitting).
    for (unsigned i = 0; i < cg_.size(); ++i) {
      if (cg_[i].resident_count() < cg_[i].capacity()) {
        target = i;
        break;
      }
    }
    if (!target && !cg_.empty() && cg_[0].capacity() > 1) {
      target = 0;
    }
  }
  if (!target) return std::nullopt;
  const DataPathId keep = *target < cg_pinned_.size()
                              ? cg_pinned_[*target]
                              : kInvalidDataPath;
  const auto& job =
      reconfig_.cg_port().enqueue(mono_dp, *target, desc.reconfig_cycles(), now);
  ++reconfig_stats_.cg_loads;
  reconfig_stats_.cg_bytes +=
      static_cast<std::uint64_t>(desc.context_instructions) * 10 * desc.units;
  trace_load(job, Grain::kCoarse);
  if (counters_ != nullptr) counters_->add("fabric.mono_cg_loads");
  const unsigned slot = cg_[*target].load(mono_dp, job.completes_at, keep);
  const Cycles switch_cost = cg_[*target].activate(slot);
  if (switch_cost > 0) {
    if (trace_ != nullptr) {
      trace_->record({TraceEventKind::kCgContextSwitch,
                      kTrackCgBase + static_cast<std::int32_t>(*target),
                      job.completes_at, switch_cost, raw(mono_dp), 0, 0.0,
                      0.0});
    }
    if (counters_ != nullptr) counters_->add("fabric.cg_context_switches");
  }
  return job.completes_at + switch_cost;
}

Cycles FabricManager::activate_cg_context(DataPathId dp, Cycles now) {
  for (unsigned i = 0; i < cg_.size(); ++i) {
    CgFabric& fabric = cg_[i];
    if (auto slot = fabric.slot_of(dp)) {
      if (fabric.context(*slot).ready_at > now) return 0;
      const Cycles switch_cost = fabric.activate(*slot);
      if (switch_cost > 0) {
        if (trace_ != nullptr) {
          trace_->record({TraceEventKind::kCgContextSwitch,
                          kTrackCgBase + static_cast<std::int32_t>(i), now,
                          switch_cost, raw(dp), 0, 0.0, 0.0});
        }
        if (counters_ != nullptr) counters_->add("fabric.cg_context_switches");
      }
      return switch_cost;
    }
  }
  return 0;
}

unsigned FabricManager::available_instances(DataPathId dp, Cycles t) const {
  unsigned n = 0;
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) {
    const auto& prc = fg_.prc(i);
    if (prc.occupant == dp && prc.ready_at <= t) ++n;
  }
  for (const auto& fabric : cg_) {
    if (fabric.holds(dp, t)) ++n;
  }
  return n;
}

std::vector<Cycles> FabricManager::instance_ready_times(DataPathId dp) const {
  std::vector<Cycles> out = fg_.instance_ready_times(dp);
  for (const auto& fabric : cg_) {
    for (Cycles t : fabric.instance_ready_times(dp)) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

unsigned FabricManager::free_cg_fabrics() const {
  unsigned n = 0;
  for (bool reserved : cg_reserved_) {
    if (!reserved) ++n;
  }
  return n;
}

FabricUsage FabricManager::usage() const {
  FabricUsage u;
  u.total_prcs = fg_.num_prcs();
  u.total_cg = static_cast<unsigned>(cg_.size());
  u.reserved_prcs = static_cast<unsigned>(
      std::count(prc_reserved_.begin(), prc_reserved_.end(), true));
  u.reserved_cg = static_cast<unsigned>(
      std::count(cg_reserved_.begin(), cg_reserved_.end(), true));
  return u;
}

Cycles FabricManager::fg_port_free_at(Cycles now) const {
  return reconfig_.fg_port().busy_until(now);
}

void FabricManager::reset() {
  for (unsigned i = 0; i < fg_.num_prcs(); ++i) fg_.evict(i);
  for (auto& fabric : cg_) fabric.clear();
  prc_reserved_.assign(fg_.num_prcs(), false);
  cg_reserved_.assign(cg_.size(), false);
  cg_pinned_.assign(cg_.size(), kInvalidDataPath);
  reconfig_ = ReconfigController{};
  reconfig_stats_ = ReconfigStats{};
}

}  // namespace mrts
