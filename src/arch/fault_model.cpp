#include "arch/fault_model.h"

#include <algorithm>

#include "util/snapshot_io.h"

namespace mrts {

FaultModelConfig FaultModelConfig::uniform(double rate, std::uint64_t seed,
                                           unsigned max_retries) {
  const double p = std::clamp(rate, 0.0, 1.0);
  FaultModelConfig config;
  config.seed = seed;
  config.fg_load_failure_prob = p;
  config.cg_load_failure_prob = p;
  config.transient_upset_prob = p;
  config.permanent_fault_prob = p;
  config.max_retries = max_retries;
  return config;
}

FaultModel::FaultModel(const FaultModelConfig& config)
    : config_(config), rng_(config.seed) {}

Cycles FaultModel::backoff(unsigned retry) const {
  // Clamp the shift: beyond 2^20 * base the backoff is already astronomical
  // relative to any load duration, and larger shifts would overflow.
  const unsigned shift = std::min(retry, 20u);
  return config_.retry_backoff_cycles << shift;
}

LoadFaultOutcome FaultModel::plan_load(Grain grain, Cycles duration) {
  LoadFaultOutcome out;
  out.port_cycles = duration;
  const double p = grain == Grain::kFine ? config_.fg_load_failure_prob
                                         : config_.cg_load_failure_prob;
  if (p <= 0.0) return out;
  for (unsigned attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (!rng_.bernoulli(p)) return out;  // this attempt passed its CRC
    ++stats_.injected;
    ++stats_.load_failures;
    if (attempt < config_.max_retries) {
      out.port_cycles += backoff(out.retries) + duration;
      ++out.retries;
      ++stats_.retries;
    } else {
      out.success = false;
      ++stats_.failed_loads;
      out.quarantine = permanent();
    }
  }
  return out;
}

bool FaultModel::upset() {
  if (!rng_.bernoulli(config_.transient_upset_prob)) return false;
  ++stats_.injected;
  ++stats_.transient_upsets;
  return true;
}

bool FaultModel::permanent() {
  return rng_.bernoulli(config_.permanent_fault_prob);
}

void FaultModel::save_state(SnapshotWriter& w) const {
  rng_.save_state(w);
  w.u64(stats_.injected);
  w.u64(stats_.load_failures);
  w.u64(stats_.retries);
  w.u64(stats_.failed_loads);
  w.u64(stats_.transient_upsets);
  w.u64(stats_.scrub_repairs);
  w.u64(stats_.quarantined_prcs);
  w.u64(stats_.quarantined_cg);
}

void FaultModel::load_state(SnapshotReader& r) {
  rng_.load_state(r);
  stats_.injected = r.u64();
  stats_.load_failures = r.u64();
  stats_.retries = r.u64();
  stats_.failed_loads = r.u64();
  stats_.transient_upsets = r.u64();
  stats_.scrub_repairs = r.u64();
  stats_.quarantined_prcs = r.u64();
  stats_.quarantined_cg = r.u64();
}

}  // namespace mrts
