#pragma once
/// \file cg_fabric.h
/// Coarse-grained reconfigurable fabric element (CG-EDPE): a reconfigurable
/// ALU-array element with two ALUs, two 32x32-bit register files, a 32-bit
/// load/store unit and a context memory that stores up to 32 instructions of
/// 80 bits each (Section 5.1). A CG fabric can store multiple *contexts*
/// (loaded data-path programs) and switches between them in 2 cycles.

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/data_path.h"
#include "util/types.h"

namespace mrts {

class SnapshotWriter;
class SnapshotReader;

/// Architectural constants of one CG fabric (Section 5.1 of the paper).
struct CgFabricParams {
  unsigned instruction_bits = 80;
  unsigned context_memory_instructions = kCgContextMemoryInstructions;
  unsigned register_files = 2;
  unsigned registers_per_file = 32;
  unsigned register_width_bits = 32;
  Cycles context_switch_cycles = 2;
  Cycles alu_op_cycles = 1;       ///< add, sub, or, ...
  Cycles mul_cycles = 2;
  Cycles div_cycles = 10;
  Cycles load_store_cycles = 1;   ///< 32-bit LSU, virtually available
  Cycles inter_fabric_hop_cycles = 2;  ///< point-to-point CG<->CG link
  unsigned max_resident_contexts = 4;  ///< "can store multiple contexts"
};

/// One loaded context (a CG data-path program resident in context memory).
struct CgContext {
  DataPathId occupant = kInvalidDataPath;
  Cycles ready_at = kNeverCycles;

  bool empty() const { return occupant == kInvalidDataPath; }
  bool usable_at(Cycles t) const { return !empty() && ready_at <= t; }
};

/// State of one CG fabric: resident contexts plus the active one.
/// Like FgFabric this is pure placement state; scheduling of the (cheap)
/// context loads is done by ReconfigController.
class CgFabric {
 public:
  explicit CgFabric(CgFabricParams params = {});

  const CgFabricParams& params() const { return params_; }
  unsigned capacity() const { return params_.max_resident_contexts; }
  unsigned resident_count() const;

  const CgContext& context(unsigned slot) const;

  /// Loads \p dp into a context slot (reusing its existing slot, else an
  /// empty slot, else evicting the oldest context other than \p keep).
  /// Returns the slot used; throws std::logic_error when every slot holds
  /// \p keep (cannot happen with capacity > 1).
  unsigned load(DataPathId dp, Cycles ready_at,
                DataPathId keep = kInvalidDataPath);

  /// Removes the context in \p slot (e.g. a configuration upset whose repair
  /// load failed). Clears the active marker if that context was active.
  void evict(unsigned slot);

  /// Removes every resident context (fabric reset).
  void clear();

  /// True if \p dp is resident and usable at \p t.
  bool holds(DataPathId dp, Cycles t) const;

  /// Slot of \p dp if resident (usable or still loading).
  std::optional<unsigned> slot_of(DataPathId dp) const;

  /// Activates the context in \p slot; returns the switch penalty in cycles
  /// (0 when it is already active).
  Cycles activate(unsigned slot);

  std::optional<unsigned> active_slot() const { return active_; }

  /// Ready times of resident instances of \p dp (0 or 1 entries — the same
  /// data path is never loaded into two slots of one fabric).
  std::vector<Cycles> instance_ready_times(DataPathId dp) const;

  /// Allocation-free variant: appends the same ready times to \p out.
  void append_instance_ready_times(DataPathId dp,
                                   std::vector<Cycles>& out) const;

  /// Slot-exact capture/restore (rts/snapshot.h), including the active
  /// context marker — load() is policy-driven, so restore bypasses it.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  CgFabricParams params_;
  std::vector<CgContext> contexts_;
  std::optional<unsigned> active_;
};

}  // namespace mrts
