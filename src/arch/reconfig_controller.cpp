#include "arch/reconfig_controller.h"

#include <algorithm>

#include "util/snapshot_io.h"

namespace mrts {

const ReconfigJob& ReconfigPort::enqueue(DataPathId dp, unsigned container,
                                         Cycles duration, Cycles now) {
  ReconfigJob job;
  job.id = next_id_++;
  job.dp = dp;
  job.container = container;
  job.enqueued_at = now;
  job.duration = duration;
  job.starts_at = std::max(now, busy_until(now));
  job.completes_at = job.starts_at + duration;
  total_busy_ += duration;
  jobs_.push_back(job);
  return jobs_.back();
}

std::size_t ReconfigPort::cancel_pending(
    Cycles now, const std::function<bool(const ReconfigJob&)>& predicate) {
  std::size_t cancelled = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (!it->started_before(now) && predicate(*it)) {
      total_busy_ -= it->duration;
      it = jobs_.erase(it);
      ++cancelled;
    } else {
      ++it;
    }
  }
  if (cancelled) retime(now);
  return cancelled;
}

void ReconfigPort::retime(Cycles now) {
  Cycles cursor = now;
  for (auto& job : jobs_) {
    if (job.started_before(now)) {
      // Already started (or finished): keep its timing, it blocks the port
      // until it completes.
      cursor = std::max(cursor, job.completes_at);
      continue;
    }
    job.starts_at = cursor;
    job.completes_at = cursor + job.duration;
    cursor = job.completes_at;
  }
}

Cycles ReconfigPort::busy_until(Cycles now) const {
  Cycles busy = now;
  for (const auto& job : jobs_) busy = std::max(busy, job.completes_at);
  return busy;
}

std::optional<Cycles> ReconfigPort::completion(ReconfigJobId id) const {
  for (const auto& job : jobs_) {
    if (job.id == id) return job.completes_at;
  }
  return std::nullopt;
}

std::vector<ReconfigJob> ReconfigPort::pending(Cycles now) const {
  std::vector<ReconfigJob> out;
  for (const auto& job : jobs_) {
    if (job.completes_at > now) out.push_back(job);
  }
  return out;
}

void ReconfigPort::compact(Cycles now) {
  jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                             [now](const ReconfigJob& j) {
                               return j.completes_at <= now;
                             }),
              jobs_.end());
}

void ReconfigPort::save_state(SnapshotWriter& w) const {
  w.u64(jobs_.size());
  for (const auto& job : jobs_) {
    w.u64(job.id);
    w.u32(raw(job.dp));
    w.u32(job.container);
    w.u64(job.enqueued_at);
    w.u64(job.duration);
    w.u64(job.starts_at);
    w.u64(job.completes_at);
  }
  w.u64(next_id_);
  w.u64(total_busy_);
}

void ReconfigPort::load_state(SnapshotReader& r) {
  std::vector<ReconfigJob> jobs;
  const std::size_t n = r.length(1u << 24, "reconfig job queue");
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ReconfigJob job;
    job.id = r.u64();
    job.dp = DataPathId{r.u32()};
    job.container = r.u32();
    job.enqueued_at = r.u64();
    job.duration = r.u64();
    job.starts_at = r.u64();
    job.completes_at = r.u64();
    jobs.push_back(job);
  }
  next_id_ = r.u64();
  total_busy_ = r.u64();
  jobs_ = std::move(jobs);
}

void ReconfigController::save_state(SnapshotWriter& w) const {
  fg_.save_state(w);
  cg_.save_state(w);
}

void ReconfigController::load_state(SnapshotReader& r) {
  fg_.load_state(r);
  cg_.load_state(r);
}

}  // namespace mrts
