#include "arch/cg_fabric.h"

#include <stdexcept>

#include "util/snapshot_io.h"

namespace mrts {

CgFabric::CgFabric(CgFabricParams params)
    : params_(params), contexts_(params.max_resident_contexts) {
  if (params.max_resident_contexts == 0) {
    throw std::invalid_argument("CgFabric: need at least one context slot");
  }
}

unsigned CgFabric::resident_count() const {
  unsigned n = 0;
  for (const auto& c : contexts_) {
    if (!c.empty()) ++n;
  }
  return n;
}

const CgContext& CgFabric::context(unsigned slot) const {
  if (slot >= contexts_.size()) throw std::out_of_range("CgFabric::context");
  return contexts_[slot];
}

unsigned CgFabric::load(DataPathId dp, Cycles ready_at, DataPathId keep) {
  // Reuse the slot if the data path is already resident (refresh).
  if (auto slot = slot_of(dp)) {
    contexts_[*slot].ready_at = std::min(contexts_[*slot].ready_at, ready_at);
    return *slot;
  }
  // Else first empty slot.
  for (unsigned i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i].empty()) {
      contexts_[i] = CgContext{dp, ready_at};
      return i;
    }
  }
  // Else evict the context with the oldest ready time (pseudo-LRU), never
  // the protected one and not the active one if avoidable.
  std::optional<unsigned> victim;
  for (unsigned i = 0; i < contexts_.size(); ++i) {
    if (keep != kInvalidDataPath && contexts_[i].occupant == keep) continue;
    if (active_ && *active_ == i && contexts_.size() > 1) continue;
    if (!victim || contexts_[i].ready_at < contexts_[*victim].ready_at) {
      victim = i;
    }
  }
  if (!victim) {
    // Every other slot is active/protected; fall back to any non-protected.
    for (unsigned i = 0; i < contexts_.size(); ++i) {
      if (keep != kInvalidDataPath && contexts_[i].occupant == keep) continue;
      victim = i;
      break;
    }
  }
  if (!victim) throw std::logic_error("CgFabric::load: all slots protected");
  if (active_ && *active_ == *victim) active_.reset();
  contexts_[*victim] = CgContext{dp, ready_at};
  return *victim;
}

void CgFabric::evict(unsigned slot) {
  if (slot >= contexts_.size()) throw std::out_of_range("CgFabric::evict");
  contexts_[slot] = CgContext{};
  if (active_ && *active_ == slot) active_.reset();
}

void CgFabric::clear() {
  for (auto& c : contexts_) c = CgContext{};
  active_.reset();
}

bool CgFabric::holds(DataPathId dp, Cycles t) const {
  for (const auto& c : contexts_) {
    if (c.occupant == dp && c.ready_at <= t) return true;
  }
  return false;
}

std::optional<unsigned> CgFabric::slot_of(DataPathId dp) const {
  for (unsigned i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i].occupant == dp) return i;
  }
  return std::nullopt;
}

Cycles CgFabric::activate(unsigned slot) {
  if (slot >= contexts_.size()) throw std::out_of_range("CgFabric::activate");
  if (contexts_[slot].empty()) {
    throw std::invalid_argument("CgFabric::activate: empty context");
  }
  if (active_ && *active_ == slot) return 0;
  active_ = slot;
  return params_.context_switch_cycles;
}

std::vector<Cycles> CgFabric::instance_ready_times(DataPathId dp) const {
  std::vector<Cycles> out;
  append_instance_ready_times(dp, out);
  return out;
}

void CgFabric::append_instance_ready_times(DataPathId dp,
                                           std::vector<Cycles>& out) const {
  for (const auto& c : contexts_) {
    if (c.occupant == dp) out.push_back(c.ready_at);
  }
}

void CgFabric::save_state(SnapshotWriter& w) const {
  w.u64(contexts_.size());
  for (const auto& c : contexts_) {
    w.u32(raw(c.occupant));
    w.u64(c.ready_at);
  }
  w.boolean(active_.has_value());
  w.u32(active_.value_or(0));
}

void CgFabric::load_state(SnapshotReader& r) {
  const std::size_t at = r.pos();
  const std::uint64_t n = r.u64();
  if (n != contexts_.size()) {
    throw SnapshotError("snapshot CG context count does not match this fabric",
                        at);
  }
  for (auto& c : contexts_) {
    c.occupant = DataPathId{r.u32()};
    c.ready_at = r.u64();
  }
  const bool has_active = r.boolean();
  const std::size_t slot_at = r.pos();
  const std::uint32_t slot = r.u32();
  if (has_active && slot >= contexts_.size()) {
    throw SnapshotError("snapshot active CG slot out of range", slot_at);
  }
  active_ = has_active ? std::optional<unsigned>(slot) : std::nullopt;
}

}  // namespace mrts
