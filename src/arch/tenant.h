#pragma once
/// \file tenant.h
/// Multi-tenant arbitration contract of the reconfigurable fabric.
///
/// The paper's Section 1 scenario — "available fabric shared among various
/// tasks" — needs more than a shared FabricManager: a production runtime
/// arbitrates *who* may place data paths *where*. This header defines the
/// architecture-level half of that contract: tenant identities, share
/// policies, and the FabricArbitration hook the FabricManager consults at
/// every placement/eviction decision. The policy engine implementing the
/// hook (FabricArbiter) lives a layer up in sim/arbiter.h — arch code never
/// depends on sim code.
///
/// Scope of arbitration: *placement* (install/prefetch/monoCG loads and the
/// evictions they cause) is arbitrated; execution-time reads of already
/// configured data paths and CG context activation are not — configured
/// silicon is shareable, destroying another tenant's configuration is not.

#include <cstdint>

#include "util/types.h"

namespace mrts {

/// Identity of one fabric tenant. 0 (kUnownedTenant) means "nobody": the
/// single-app default, and the owner of every empty container.
using TenantId = std::uint32_t;
inline constexpr TenantId kUnownedTenant = 0;

/// How a tenant shares the fabric.
enum class TenantShare : std::uint8_t {
  /// Hard partition: the tenant is confined to its reserved containers and
  /// no other tenant may ever place into (or evict from) them.
  kReserved = 0,
  /// Soft quota proportional to weight. When weights differ, eviction
  /// prefers over-quota tenants' coldest data paths; with all-equal weights
  /// the fabric's native victim policy applies unchanged (the legacy
  /// free-for-all is the degenerate case of the arbitrated system).
  kWeighted,
  /// No entitlement: uses whatever is idle, evicted first.
  kBestEffort,
};

inline const char* to_string(TenantShare share) {
  switch (share) {
    case TenantShare::kReserved: return "reserved";
    case TenantShare::kWeighted: return "weighted";
    case TenantShare::kBestEffort: return "best-effort";
  }
  return "?";
}

/// Registration-time policy of one tenant.
struct TenantPolicy {
  TenantShare share = TenantShare::kWeighted;
  /// Soft-quota weight (kWeighted only, >= 1).
  unsigned weight = 1;
  /// Hard partition size (kReserved only).
  unsigned reserved_prcs = 0;
  unsigned reserved_cg = 0;
  /// Scheduling priority for run_multi_tenant (higher runs first).
  unsigned priority = 0;
};

/// Arbitration hook the FabricManager consults while placing data paths.
/// All queries are const and re-entrant: the implementation may read back
/// const state of the fabric that is calling it.
class FabricArbitration {
 public:
  virtual ~FabricArbitration() = default;

  /// May \p tenant place a data path into container \p index of \p grain?
  /// (Pool containers: yes for pool tenants; partition containers: owner
  /// only.)
  virtual bool may_place(TenantId tenant, Grain grain,
                         unsigned index) const = 0;

  /// Should an eviction on behalf of \p tenant prefer victims owned by
  /// \p owner (an over-quota or best-effort tenant)? Never called for empty
  /// containers, \p owner == kUnownedTenant, or \p owner == \p tenant.
  virtual bool prefer_evict(TenantId tenant, TenantId owner,
                            Grain grain) const = 0;

  /// Capacity (post-quarantine) that \p tenant's selector may plan with.
  virtual unsigned visible_prcs(TenantId tenant) const = 0;
  virtual unsigned visible_cg(TenantId tenant) const = 0;

  /// Stats feedback from the fabric (the fabric also emits the
  /// tenant.eviction / tenant.quota_hit trace events and counters itself).
  virtual void note_eviction(TenantId tenant, TenantId owner, Grain grain,
                             Cycles at) = 0;
  virtual void note_quota_redirect(TenantId tenant, TenantId owner,
                                   Grain grain, Cycles at) = 0;
  virtual void note_quarantine(TenantId owner, Grain grain, Cycles at) = 0;
};

class FabricManager;

/// Binding of one run-time-system instance to a tenant slot of a shared
/// fabric — the explicit replacement for the old "pass a bare FabricManager&
/// and hope" shared-fabric construction. Obtained from
/// FabricArbiter::binding() after registering the tenant.
struct TenantBinding {
  FabricManager* fabric = nullptr;
  TenantId tenant = kUnownedTenant;
};

}  // namespace mrts
