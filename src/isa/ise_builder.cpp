#include "isa/ise_builder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mrts {
namespace {

/// Part speedup with completeness rho in [0,1]: linear interpolation between
/// no acceleration (1x) and the maximal speedup sigma.
double part_speedup(double sigma, double rho) {
  return 1.0 + (sigma - 1.0) * rho;
}

/// Registers (or finds) a data path by name.
DataPathId intern_dp(IseLibrary& lib, const std::string& name, Grain grain,
                     std::uint64_t fg_bitstream_bytes) {
  DataPathId existing = lib.data_paths().find(name);
  if (existing != kInvalidDataPath) {
    if (lib.data_paths()[existing].grain != grain) {
      throw std::invalid_argument("ise_builder: data path " + name +
                                  " reused with a different grain");
    }
    return existing;
  }
  DataPathDesc desc;
  desc.name = name;
  desc.grain = grain;
  if (grain == Grain::kFine && fg_bitstream_bytes != 0) {
    desc.bitstream_bytes = fg_bitstream_bytes;
  }
  return lib.data_paths().add(desc);
}

}  // namespace

Cycles model_latency(Cycles sw_latency, double control_fraction,
                     double sigma_ctrl, double rho_ctrl, double sigma_data,
                     double rho_data, Cycles comm_overhead) {
  const double l = static_cast<double>(sw_latency);
  const double ctrl = l * control_fraction / part_speedup(sigma_ctrl, rho_ctrl);
  const double data =
      l * (1.0 - control_fraction) / part_speedup(sigma_data, rho_data);
  const double total = ctrl + data + static_cast<double>(comm_overhead);
  return std::max<Cycles>(1, static_cast<Cycles>(total + 0.5));
}

KernelId build_kernel_ises(IseLibrary& lib, const IseBuildSpec& spec) {
  if (spec.control_fraction < 0.0 || spec.control_fraction > 1.0) {
    throw std::invalid_argument("ise_builder: control_fraction out of [0,1]");
  }
  if (spec.fg_data_path_names.empty() && spec.cg_data_path_names.empty()) {
    throw std::invalid_argument("ise_builder: kernel " + spec.kernel_name +
                                " has no data paths at all");
  }

  const KernelId kid = lib.add_kernel(spec.kernel_name, spec.sw_latency);

  std::vector<DataPathId> fg_dps;
  fg_dps.reserve(spec.fg_data_path_names.size());
  for (const auto& name : spec.fg_data_path_names) {
    fg_dps.push_back(
        intern_dp(lib, name, Grain::kFine, spec.fg_bitstream_bytes));
  }
  std::vector<DataPathId> cg_dps;
  cg_dps.reserve(spec.cg_data_path_names.size());
  for (const auto& name : spec.cg_data_path_names) {
    cg_dps.push_back(intern_dp(lib, name, Grain::kCoarse, 0));
  }

  const auto n_fg = static_cast<double>(fg_dps.size());
  const auto n_cg = static_cast<double>(cg_dps.size());

  // --- FG-only variants: FG-k uses the first k FG data paths. -------------
  for (std::size_t k = 1; k <= fg_dps.size(); ++k) {
    IseVariant v;
    v.kernel = kid;
    v.name = spec.kernel_name + ".FG" + std::to_string(k);
    v.data_paths.assign(fg_dps.begin(),
                        fg_dps.begin() + static_cast<std::ptrdiff_t>(k));
    v.latency_after.resize(k + 1);
    for (std::size_t i = 0; i <= k; ++i) {
      const double rho =
          std::pow(static_cast<double>(i) / n_fg, spec.diminishing_returns);
      v.latency_after[i] =
          model_latency(spec.sw_latency, spec.control_fraction,
                        spec.fg_control_speedup, rho, spec.fg_data_speedup,
                        rho, /*comm_overhead=*/i ? 1 : 0);
      if (i > 0) {
        v.latency_after[i] = std::min(v.latency_after[i], v.latency_after[i - 1]);
      }
    }
    v.latency_after[0] = spec.sw_latency;
    lib.add_ise(std::move(v));
  }

  // --- CG-only variants. ---------------------------------------------------
  for (std::size_t k = 1; k <= cg_dps.size(); ++k) {
    IseVariant v;
    v.kernel = kid;
    v.name = spec.kernel_name + ".CG" + std::to_string(k);
    v.data_paths.assign(cg_dps.begin(),
                        cg_dps.begin() + static_cast<std::ptrdiff_t>(k));
    v.latency_after.resize(k + 1);
    for (std::size_t i = 0; i <= k; ++i) {
      const double rho =
          std::pow(static_cast<double>(i) / n_cg, spec.diminishing_returns);
      v.latency_after[i] =
          model_latency(spec.sw_latency, spec.control_fraction,
                        spec.cg_control_speedup, rho, spec.cg_data_speedup,
                        rho, /*comm_overhead=*/i ? 1 : 0);
      if (i > 0) {
        v.latency_after[i] = std::min(v.latency_after[i], v.latency_after[i - 1]);
      }
    }
    v.latency_after[0] = spec.sw_latency;
    lib.add_ise(std::move(v));
  }

  // --- MG variants: c CG data paths (listed first: they reconfigure in us
  // and provide early intermediate ISEs) plus f FG data paths. The data part
  // runs on the CG fabric, the control part on the FG fabric; the sub-design
  // sizes make MG area-efficient (full part-speedups with few units). ------
  if (spec.build_mg_variants && !fg_dps.empty() && !cg_dps.empty()) {
    const std::size_t n_ctrl_fg =
        spec.fg_control_dps != 0
            ? std::min<std::size_t>(spec.fg_control_dps, fg_dps.size())
            : (fg_dps.size() + 1) / 2;
    const std::size_t n_data_cg =
        spec.cg_data_dps != 0
            ? std::min<std::size_t>(spec.cg_data_dps, cg_dps.size())
            : (cg_dps.size() + 1) / 2;
    for (std::size_t f = 1; f <= n_ctrl_fg; ++f) {
      for (std::size_t c = 1; c <= n_data_cg; ++c) {
        IseVariant v;
        v.kernel = kid;
        v.name = spec.kernel_name + ".MG" + std::to_string(f) + "c" +
                 std::to_string(c);
        v.data_paths.assign(cg_dps.begin(),
                            cg_dps.begin() + static_cast<std::ptrdiff_t>(c));
        v.data_paths.insert(v.data_paths.end(), fg_dps.begin(),
                            fg_dps.begin() + static_cast<std::ptrdiff_t>(f));
        const std::size_t n = f + c;
        v.latency_after.resize(n + 1);
        for (std::size_t j = 0; j <= n; ++j) {
          const std::size_t c_j = std::min(j, c);
          const std::size_t f_j = j > c ? j - c : 0;
          const double rho_ctrl =
              std::pow(static_cast<double>(f_j) / static_cast<double>(n_ctrl_fg),
                       spec.diminishing_returns);
          const double rho_data =
              std::pow(static_cast<double>(c_j) / static_cast<double>(n_data_cg),
                       spec.diminishing_returns);
          const Cycles comm =
              (c_j > 0 && f_j > 0) ? spec.mg_comm_overhead : Cycles{0};
          v.latency_after[j] = model_latency(
              spec.sw_latency, spec.control_fraction, spec.fg_control_speedup,
              rho_ctrl, spec.cg_data_speedup, rho_data, comm);
          if (j > 0) {
            v.latency_after[j] =
                std::min(v.latency_after[j], v.latency_after[j - 1]);
          }
        }
        v.latency_after[0] = spec.sw_latency;
        lib.add_ise(std::move(v));
      }
    }
  }

  // --- monoCG-Extension: the whole kernel as one CG context program. ------
  if (spec.mono_cg_speedup > 1.0) {
    IseVariant v;
    v.kernel = kid;
    v.name = spec.kernel_name + ".monoCG";
    v.is_mono_cg = true;
    v.data_paths.push_back(
        intern_dp(lib, spec.kernel_name + ".mono", Grain::kCoarse, 0));
    const auto lat = static_cast<Cycles>(
        static_cast<double>(spec.sw_latency) / spec.mono_cg_speedup + 0.5);
    v.latency_after = {spec.sw_latency, std::max<Cycles>(1, lat)};
    lib.add_ise(std::move(v));
  }

  return kid;
}

}  // namespace mrts
