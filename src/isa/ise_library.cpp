#include "isa/ise_library.h"

#include <stdexcept>

namespace mrts {

KernelId IseLibrary::add_kernel(std::string name, Cycles sw_latency) {
  if (name.empty()) throw std::invalid_argument("IseLibrary: empty kernel name");
  if (find_kernel(name) != kInvalidKernel) {
    throw std::invalid_argument("IseLibrary: duplicate kernel " + name);
  }
  if (sw_latency == 0) {
    throw std::invalid_argument("IseLibrary: kernel " + name +
                                " needs a positive RISC-mode latency");
  }
  Kernel k;
  k.id = KernelId{static_cast<std::uint32_t>(kernels_.size())};
  k.name = std::move(name);
  k.sw_latency = sw_latency;
  kernels_.push_back(std::move(k));
  return kernels_.back().id;
}

IseId IseLibrary::add_ise(IseVariant variant) {
  if (raw(variant.kernel) >= kernels_.size()) {
    throw std::invalid_argument("IseLibrary::add_ise: unknown kernel");
  }
  if (find_ise(variant.name) != kInvalidIse) {
    throw std::invalid_argument("IseLibrary::add_ise: duplicate ISE " +
                                variant.name);
  }
  // Fill the resource-demand cache before validation so fits() is usable.
  variant.fg_units = 0;
  variant.cg_units = 0;
  for (DataPathId dp : variant.data_paths) {
    const auto& desc = table_[dp];
    if (desc.grain == Grain::kFine) {
      variant.fg_units += desc.units;
    } else {
      variant.cg_units += desc.units;
    }
  }
  variant.validate(table_);
  Kernel& k = kernels_[raw(variant.kernel)];
  if (variant.latency_after.front() != k.sw_latency) {
    throw std::invalid_argument(
        "IseLibrary::add_ise: latency_after[0] of " + variant.name +
        " must equal the kernel RISC-mode latency");
  }
  variant.id = IseId{static_cast<std::uint32_t>(ises_.size())};
  ises_.push_back(std::move(variant));
  const IseVariant& stored = ises_.back();
  if (stored.is_mono_cg) {
    if (k.mono_cg != kInvalidIse) {
      throw std::invalid_argument("IseLibrary::add_ise: kernel " + k.name +
                                  " already has a monoCG-Extension");
    }
    k.mono_cg = stored.id;
  } else {
    k.ises.push_back(stored.id);
  }
  return stored.id;
}

const Kernel& IseLibrary::kernel(KernelId id) const {
  if (raw(id) >= kernels_.size()) {
    throw std::out_of_range("IseLibrary::kernel: invalid id");
  }
  return kernels_[raw(id)];
}

const IseVariant& IseLibrary::ise(IseId id) const {
  if (raw(id) >= ises_.size()) {
    throw std::out_of_range("IseLibrary::ise: invalid id");
  }
  return ises_[raw(id)];
}

KernelId IseLibrary::find_kernel(const std::string& name) const {
  for (const auto& k : kernels_) {
    if (k.name == name) return k.id;
  }
  return kInvalidKernel;
}

IseId IseLibrary::find_ise(const std::string& name) const {
  for (const auto& v : ises_) {
    if (v.name == name) return v.id;
  }
  return kInvalidIse;
}

std::vector<IseId> IseLibrary::fitting_ises(KernelId kernel_id,
                                            unsigned total_prcs,
                                            unsigned total_cg) const {
  std::vector<IseId> out;
  for (IseId id : kernel(kernel_id).ises) {
    if (ise(id).fits(total_prcs, total_cg)) out.push_back(id);
  }
  return out;
}

}  // namespace mrts
