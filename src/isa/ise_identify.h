#pragma once
/// \file ise_identify.h
/// Toy compile-time ISE identification pass — a stand-in for the proprietary
/// tool chains the paper builds on ([18] Mitra et al., [19] Pozzi/Ienne).
/// Given a kernel's RISC micro-program, it profiles one representative run
/// on the core-processor simulator and derives an IseBuildSpec:
///
///   * the measured cycle count becomes the RISC-mode latency,
///   * the dynamic operation mix (weighted by per-op cycle costs) splits the
///     work into a control part (branches, compares, bit logic, byte
///     accesses) and a data part (word arithmetic, multiply/divide, word
///     accesses),
///   * part speedups and data-path counts follow simple rules of thumb
///     (bit-level work maps superbly to FG LUT logic and terribly to word
///     ALUs; heavy multiply/divide work favours the CG fabric's hard
///     multipliers).
///
/// The result feeds straight into build_kernel_ises(), closing the loop
/// from assembly to a multi-grained ISE family.

#include <string>

#include "isa/ise_builder.h"
#include "riscsim/cpu.h"

namespace mrts {

/// Profile summary of one kernel run (exposed for tests/inspection).
struct KernelProfile {
  Cycles cycles = 0;
  std::uint64_t instructions = 0;
  double control_cycle_fraction = 0.0;  ///< control-ish share of exec cycles
  double mul_div_cycle_fraction = 0.0;  ///< multiplier/divider share
  double memory_cycle_fraction = 0.0;   ///< load/store share
};

/// Classifies and weighs the dynamic op mix of a finished run.
KernelProfile profile_kernel_run(const riscsim::RunResult& run);

/// Derives an ISE build specification for \p kernel_name by executing
/// \p program on \p cpu (the caller preloads representative input data).
/// Throws std::runtime_error if the program does not halt within the step
/// limit.
IseBuildSpec identify_ise_spec(const std::string& kernel_name,
                               const riscsim::Program& program,
                               riscsim::Cpu& cpu);

}  // namespace mrts
