#pragma once
/// \file ise_builder.h
/// Programmatic ISE-library generator. It stands in for the paper's
/// proprietary compile-time tool chain: given a per-kernel acceleration
/// specification it emits a family of FG-only, CG-only and multi-grained
/// (MG) ISE variants plus a monoCG-Extension, with a two-component latency
/// model:
///
/// A kernel's work is split into a *control-dominant* part (bit/byte-level,
/// FG-friendly) and a *data-dominant* part (sub-word arithmetic,
/// CG-friendly). Each fabric accelerates each part with a different maximal
/// speedup; partially configured variants accelerate proportionally to the
/// configured data paths. This reproduces exactly the trade-off structure
/// of the motivational case study (Section 2): CG variants reconfigure in
/// microseconds but saturate at lower speedups, FG variants pay ~1.2 ms per
/// data path but run fastest once loaded, and MG variants sit in between.

#include <string>
#include <vector>

#include "isa/ise_library.h"
#include "util/types.h"

namespace mrts {

/// Per-kernel acceleration characteristics.
struct IseBuildSpec {
  std::string kernel_name;
  Cycles sw_latency = 0;

  /// Fraction of the RISC-mode work that is control-dominant; the rest is
  /// data-dominant. Must be in [0, 1].
  double control_fraction = 0.5;

  /// Maximal speedups of each part on each fabric (>= 1). Custom FG logic is
  /// fast for both parts (its price is the 1.2 ms reconfiguration and PRC
  /// area); the CG ALU array is good at word-level data processing but
  /// nearly useless for bit-level control logic — this asymmetry is the
  /// premise of the whole paper.
  double fg_control_speedup = 10.0;
  double fg_data_speedup = 7.0;
  double cg_control_speedup = 1.2;
  double cg_data_speedup = 5.0;

  /// Data paths of the complete single-grain designs. Variant FG-k uses the
  /// first k FG data paths (so smaller variants are prefixes of larger ones,
  /// enabling coverage/reuse); same for CG.
  /// Ordering convention: the FG list starts with the control-part data
  /// paths, the CG list with the data-part data paths.
  std::vector<std::string> fg_data_path_names;
  std::vector<std::string> cg_data_path_names;

  /// Size of the sub-designs used by multi-grained variants: the first
  /// `fg_control_dps` FG data paths implement the complete control part, the
  /// first `cg_data_dps` CG data paths the complete data part. MG(f, c)
  /// reaches rho_ctrl = f/fg_control_dps and rho_data = c/cg_data_dps — this
  /// is what makes MG-ISEs area-efficient: one PRC plus one CG fabric can
  /// carry the full part-speedups. 0 = half of the respective list
  /// (rounded up).
  unsigned fg_control_dps = 0;
  unsigned cg_data_dps = 0;

  /// monoCG-Extension speedup over RISC mode (0 disables the extension).
  double mono_cg_speedup = 1.8;

  /// Diminishing returns across the data paths of a design: the completeness
  /// rho = i/n is warped to rho^diminishing_returns before interpolating the
  /// part speedup. Values < 1 mean the first data path of a design carries
  /// most of the acceleration (the main pipeline first, helper units later),
  /// which is what makes small/intermediate variants attractive.
  double diminishing_returns = 0.6;

  /// Cross-grain communication overhead charged per execution of a
  /// multi-grained intermediate/full ISE that has both grains active.
  Cycles mg_comm_overhead = 6;

  /// Generate MG variants? (FG+CG mixes; requires both name lists nonempty.)
  bool build_mg_variants = true;

  /// FG bitstream size override (bytes); 0 keeps the default (~1.2 ms).
  std::uint64_t fg_bitstream_bytes = 0;
};

/// Builds the kernel and all its ISE variants into \p lib; returns the
/// kernel id. Data-path names shared between kernels map to the same
/// DataPathId (cross-kernel data-path sharing).
KernelId build_kernel_ises(IseLibrary& lib, const IseBuildSpec& spec);

/// The latency model used by the builder, exposed for tests and the
/// case-study bench: execution latency when the control part is accelerated
/// with completeness rho_ctrl on speedup sigma_ctrl and the data part with
/// rho_data on sigma_data.
Cycles model_latency(Cycles sw_latency, double control_fraction,
                     double sigma_ctrl, double rho_ctrl, double sigma_data,
                     double rho_data, Cycles comm_overhead);

}  // namespace mrts
