#include "isa/trigger.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mrts {

std::string to_string(const TriggerInstruction& ti) {
  std::ostringstream os;
  os << "TI(fb=" << raw(ti.functional_block) << ")[";
  for (std::size_t i = 0; i < ti.entries.size(); ++i) {
    const auto& e = ti.entries[i];
    if (i) os << ", ";
    os << "{K" << raw(e.kernel) << " e=" << e.expected_executions
       << " tf=" << e.time_to_first << " tb=" << e.time_between << "}";
  }
  os << "]";
  return os.str();
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint32_t>(in[at]) |
         (static_cast<std::uint32_t>(in[at + 1]) << 8) |
         (static_cast<std::uint32_t>(in[at + 2]) << 16) |
         (static_cast<std::uint32_t>(in[at + 3]) << 24);
}

std::uint32_t saturate_u32(double v) {
  if (v <= 0.0) return 0;
  const double max = static_cast<double>(std::numeric_limits<std::uint32_t>::max());
  return v >= max ? std::numeric_limits<std::uint32_t>::max()
                  : static_cast<std::uint32_t>(v);
}

std::uint32_t saturate_u32(Cycles v) {
  return v >= std::numeric_limits<std::uint32_t>::max()
             ? std::numeric_limits<std::uint32_t>::max()
             : static_cast<std::uint32_t>(v);
}

}  // namespace

std::vector<std::uint8_t> encode_trigger(const TriggerInstruction& ti) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 16 * ti.entries.size());
  put_u32(out, raw(ti.functional_block));
  put_u32(out, static_cast<std::uint32_t>(ti.entries.size()));
  for (const auto& entry : ti.entries) {
    put_u32(out, raw(entry.kernel));
    put_u32(out, saturate_u32(entry.expected_executions));
    put_u32(out, saturate_u32(entry.time_to_first));
    put_u32(out, saturate_u32(entry.time_between));
  }
  return out;
}

TriggerInstruction decode_trigger(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 8) {
    throw std::invalid_argument("decode_trigger: truncated header");
  }
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{get_u32(bytes, 0)};
  const std::uint32_t count = get_u32(bytes, 4);
  if (bytes.size() != 8 + static_cast<std::size_t>(count) * 16) {
    throw std::invalid_argument("decode_trigger: size does not match count");
  }
  ti.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 8 + static_cast<std::size_t>(i) * 16;
    TriggerEntry entry;
    entry.kernel = KernelId{get_u32(bytes, at)};
    entry.expected_executions = static_cast<double>(get_u32(bytes, at + 4));
    entry.time_to_first = get_u32(bytes, at + 8);
    entry.time_between = get_u32(bytes, at + 12);
    ti.entries.push_back(entry);
  }
  return ti;
}

}  // namespace mrts
