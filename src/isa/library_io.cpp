#include "isa/library_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mrts {
namespace {

[[noreturn]] void fail(unsigned line, const std::string& message) {
  throw std::invalid_argument("library_io, line " + std::to_string(line) +
                              ": " + message);
}

std::string strip(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t\r");
  std::size_t end = text.find_last_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Parses "key=value"; returns empty optional-ish pair on mismatch.
bool key_value(const std::string& tok, const std::string& key,
               std::string* value) {
  if (tok.size() <= key.size() + 1 || tok.compare(0, key.size(), key) != 0 ||
      tok[key.size()] != '=') {
    return false;
  }
  *value = tok.substr(key.size() + 1);
  return true;
}

std::uint64_t parse_u64(const std::string& text, unsigned line) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    fail(line, "bad number '" + text + "'");
  }
}

}  // namespace

std::string serialize_library(const IseLibrary& lib) {
  std::ostringstream os;
  os << "# mRTS ISE library (" << lib.data_paths().size() << " data paths, "
     << lib.num_kernels() << " kernels, " << lib.num_ises() << " ISEs)\n";
  for (const auto& dp : lib.data_paths()) {
    os << "datapath " << dp.name << ' ' << to_string(dp.grain)
       << " units=" << dp.units;
    if (dp.grain == Grain::kFine) {
      os << " bitstream=" << dp.bitstream_bytes;
    } else {
      os << " ctx=" << dp.context_instructions;
    }
    os << '\n';
  }
  for (const auto& kernel : lib.kernels()) {
    os << "kernel " << kernel.name << " sw=" << kernel.sw_latency << '\n';
  }
  for (const auto& ise : lib.ises()) {
    os << "ise " << ise.name << " kernel="
       << lib.kernel(ise.kernel).name;
    if (ise.is_mono_cg) os << " mono";
    os << " dps=";
    for (std::size_t i = 0; i < ise.data_paths.size(); ++i) {
      if (i) os << ',';
      os << lib.data_paths()[ise.data_paths[i]].name;
    }
    os << " lat=";
    for (std::size_t i = 0; i < ise.latency_after.size(); ++i) {
      if (i) os << ',';
      os << ise.latency_after[i];
    }
    os << '\n';
  }
  return os.str();
}

IseLibrary parse_library(const std::string& text) {
  IseLibrary lib;
  std::istringstream stream(text);
  std::string raw_line;
  unsigned line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const std::size_t comment = raw_line.find('#');
    const std::string line =
        strip(comment == std::string::npos ? raw_line
                                           : raw_line.substr(0, comment));
    if (line.empty()) continue;
    const std::vector<std::string> toks = tokens(line);

    if (toks[0] == "datapath") {
      if (toks.size() < 3) fail(line_no, "datapath needs a name and a grain");
      DataPathDesc dp;
      dp.name = toks[1];
      if (toks[2] == "FG") {
        dp.grain = Grain::kFine;
      } else if (toks[2] == "CG") {
        dp.grain = Grain::kCoarse;
      } else {
        fail(line_no, "grain must be FG or CG, got '" + toks[2] + "'");
      }
      for (std::size_t i = 3; i < toks.size(); ++i) {
        std::string value;
        if (key_value(toks[i], "units", &value)) {
          dp.units = static_cast<unsigned>(parse_u64(value, line_no));
        } else if (key_value(toks[i], "bitstream", &value)) {
          dp.bitstream_bytes = parse_u64(value, line_no);
        } else if (key_value(toks[i], "ctx", &value)) {
          dp.context_instructions =
              static_cast<unsigned>(parse_u64(value, line_no));
        } else {
          fail(line_no, "unknown datapath attribute '" + toks[i] + "'");
        }
      }
      try {
        lib.data_paths().add(dp);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (toks[0] == "kernel") {
      if (toks.size() != 3) fail(line_no, "kernel needs a name and sw=");
      std::string value;
      if (!key_value(toks[2], "sw", &value)) {
        fail(line_no, "kernel needs sw=<cycles>");
      }
      try {
        lib.add_kernel(toks[1], parse_u64(value, line_no));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (toks[0] == "ise") {
      if (toks.size() < 4) fail(line_no, "ise needs name/kernel/dps/lat");
      IseVariant ise;
      ise.name = toks[1];
      for (std::size_t i = 2; i < toks.size(); ++i) {
        std::string value;
        if (toks[i] == "mono") {
          ise.is_mono_cg = true;
        } else if (key_value(toks[i], "kernel", &value)) {
          ise.kernel = lib.find_kernel(value);
          if (ise.kernel == kInvalidKernel) {
            fail(line_no, "unknown kernel '" + value + "'");
          }
        } else if (key_value(toks[i], "dps", &value)) {
          for (const std::string& name : split(value, ',')) {
            const DataPathId dp = lib.data_paths().find(name);
            if (dp == kInvalidDataPath) {
              fail(line_no, "unknown data path '" + name + "'");
            }
            ise.data_paths.push_back(dp);
          }
        } else if (key_value(toks[i], "lat", &value)) {
          for (const std::string& lat : split(value, ',')) {
            ise.latency_after.push_back(parse_u64(lat, line_no));
          }
        } else {
          fail(line_no, "unknown ise attribute '" + toks[i] + "'");
        }
      }
      try {
        lib.add_ise(std::move(ise));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive '" + toks[0] + "'");
    }
  }
  return lib;
}

void save_library(const IseLibrary& lib, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_library: cannot open " + path);
  out << serialize_library(lib);
  if (!out) throw std::runtime_error("save_library: write failed for " + path);
}

IseLibrary load_library(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_library: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_library(buffer.str());
}

}  // namespace mrts
