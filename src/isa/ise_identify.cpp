#include "isa/ise_identify.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mrts {
namespace {

using riscsim::Op;

/// Control-dominant operations: decisions, bit/byte manipulation.
bool is_control_op(Op op) {
  switch (op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kJmp:
    case Op::kCmpLt:
    case Op::kCmpEq:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kAndi:
    case Op::kOri:
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kLdb:
    case Op::kStb:
      return true;
    default:
      return false;
  }
}

bool is_mul_div(Op op) { return op == Op::kMul || op == Op::kDiv; }

bool is_memory(Op op) { return riscsim::is_memory_op(op); }

}  // namespace

KernelProfile profile_kernel_run(const riscsim::RunResult& run) {
  KernelProfile profile;
  profile.cycles = run.cycles;
  profile.instructions = run.instructions;

  double total = 0.0;
  double control = 0.0;
  double mul_div = 0.0;
  double memory = 0.0;
  for (std::size_t i = 0; i < riscsim::kNumOpcodes; ++i) {
    const Op op = static_cast<Op>(i);
    const double cycles = static_cast<double>(run.op_counts[i]) *
                          static_cast<double>(riscsim::base_cycles(op));
    total += cycles;
    if (is_control_op(op)) control += cycles;
    if (is_mul_div(op)) mul_div += cycles;
    if (is_memory(op)) memory += cycles;
  }
  if (total > 0.0) {
    profile.control_cycle_fraction = control / total;
    profile.mul_div_cycle_fraction = mul_div / total;
    profile.memory_cycle_fraction = memory / total;
  }
  return profile;
}

IseBuildSpec identify_ise_spec(const std::string& kernel_name,
                               const riscsim::Program& program,
                               riscsim::Cpu& cpu) {
  const riscsim::RunResult run = cpu.run(program);
  if (!run.halted) {
    throw std::runtime_error("identify_ise_spec: kernel '" + kernel_name +
                             "' did not halt within the step limit");
  }
  const KernelProfile profile = profile_kernel_run(run);

  IseBuildSpec spec;
  spec.kernel_name = kernel_name;
  spec.sw_latency = std::max<Cycles>(1, profile.cycles);
  spec.control_fraction = std::clamp(profile.control_cycle_fraction, 0.05, 0.95);

  // Rules of thumb for the part speedups:
  //  * custom FG logic collapses decision/bit work almost entirely; the more
  //    control-dominant the kernel, the deeper the specialized pipeline.
  spec.fg_control_speedup = 8.0 + 6.0 * spec.control_fraction;
  //  * FG data speedup suffers when the kernel is multiply/divide heavy
  //    (DSP-style work is what the CG fabric's hard multipliers are for).
  spec.fg_data_speedup = 8.0 - 3.0 * profile.mul_div_cycle_fraction;
  //  * word ALUs barely help control work, and memory-bound kernels cap the
  //    CG data speedup (the 32-bit LSU becomes the bottleneck).
  spec.cg_control_speedup = 1.1 + 0.3 * (1.0 - spec.control_fraction);
  spec.cg_data_speedup =
      std::max(2.0, 6.0 - 3.0 * profile.memory_cycle_fraction +
                        2.0 * profile.mul_div_cycle_fraction);

  // Data-path counts: larger kernels decompose into more data paths.
  const auto size_class =
      static_cast<unsigned>(std::min<std::uint64_t>(
          2, program.code.size() / 16));
  const unsigned n_fg = 2 + size_class;   // 2..4
  const unsigned n_cg = 1 + size_class / 2;  // 1..2
  for (unsigned i = 0; i < n_fg; ++i) {
    spec.fg_data_path_names.push_back(
        kernel_name + (i == 0 ? "_ctrl_fg" : "_dp" + std::to_string(i) + "_fg"));
  }
  for (unsigned i = 0; i < n_cg; ++i) {
    spec.cg_data_path_names.push_back(kernel_name + "_dp" + std::to_string(i) +
                                      "_cg");
  }
  spec.fg_control_dps = 1;
  spec.cg_data_dps = n_cg;

  // A monoCG context program helps most when the kernel has word-level meat.
  spec.mono_cg_speedup = 1.4 + 0.6 * (1.0 - spec.control_fraction);
  return spec;
}

}  // namespace mrts
