#pragma once
/// \file ise_library.h
/// The compile-time prepared ISE library: the data-path registry, all
/// kernels and all ISE variants of an application. The library is immutable
/// input to every run-time system (mRTS and the baselines); it corresponds
/// to the output of the proprietary compile-time tool chain the paper refers
/// to ([18], [19]).
///
/// Concurrency contract (audited for the parallel sweep runner): once
/// construction is finished, a library — including its DataPathTable — is
/// never mutated by any run-time system or simulator; all const queries are
/// pure reads with no internal caching, so one library instance may be
/// shared read-only by any number of concurrent sweep workers. The
/// non-const accessors exist for the build phase only.

#include <string>
#include <vector>

#include "arch/data_path.h"
#include "isa/ise.h"
#include "isa/kernel.h"
#include "util/types.h"

namespace mrts {

class IseLibrary {
 public:
  // --- construction -------------------------------------------------------

  DataPathTable& data_paths() { return table_; }
  const DataPathTable& data_paths() const { return table_; }

  /// Registers a kernel; name must be unique.
  KernelId add_kernel(std::string name, Cycles sw_latency);

  /// Registers an ISE variant (validated). Fills the resource-demand cache,
  /// assigns an id and links the variant to its kernel.
  IseId add_ise(IseVariant variant);

  // --- queries -------------------------------------------------------------

  const Kernel& kernel(KernelId id) const;
  const IseVariant& ise(IseId id) const;

  std::size_t num_kernels() const { return kernels_.size(); }
  std::size_t num_ises() const { return ises_.size(); }

  KernelId find_kernel(const std::string& name) const;
  IseId find_ise(const std::string& name) const;

  /// Candidate ISEs of a kernel that fit the *total* machine capacity;
  /// non-fitting variants are filtered out at compile time (Section 4).
  std::vector<IseId> fitting_ises(KernelId kernel, unsigned total_prcs,
                                  unsigned total_cg) const;

  const std::vector<Kernel>& kernels() const { return kernels_; }
  const std::vector<IseVariant>& ises() const { return ises_; }

 private:
  DataPathTable table_;
  std::vector<Kernel> kernels_;
  std::vector<IseVariant> ises_;
};

}  // namespace mrts
