#pragma once
/// \file trigger.h
/// Trigger Instructions. The application programmer embeds them into the
/// binary ahead of each functional block; they forecast the kernels of the
/// upcoming block as 4-tuples {K_i, e_i, tf_i, tb_i} (Section 4.1):
///   K_i  - kernel id,
///   e_i  - expected number of executions in this block,
///   tf_i - time until the first execution (cycles after the trigger),
///   tb_i - average time between two consecutive executions (gap cycles).

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace mrts {

struct TriggerEntry {
  KernelId kernel = kInvalidKernel;
  double expected_executions = 0.0;
  Cycles time_to_first = 0;    ///< tf
  Cycles time_between = 0;     ///< tb

  friend bool operator==(const TriggerEntry&, const TriggerEntry&) = default;
};

struct TriggerInstruction {
  FunctionalBlockId functional_block = kInvalidFunctionalBlock;
  std::vector<TriggerEntry> entries;

  const TriggerEntry* find(KernelId k) const {
    for (const auto& e : entries) {
      if (e.kernel == k) return &e;
    }
    return nullptr;
  }
};

/// Debug/log rendering of a trigger instruction.
std::string to_string(const TriggerInstruction& ti);

/// Binary encoding, i.e. what the application programmer actually embeds in
/// the binary "incorporated as assembler instructions" (Section 4): an
/// 8-byte header (functional block id, entry count) followed by one 16-byte
/// word per kernel entry {kernel id, e, tf, tb} with 32-bit saturating
/// fields. decode_trigger throws std::invalid_argument on truncated or
/// malformed input.
std::vector<std::uint8_t> encode_trigger(const TriggerInstruction& ti);
TriggerInstruction decode_trigger(const std::vector<std::uint8_t>& bytes);

}  // namespace mrts
