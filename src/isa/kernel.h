#pragma once
/// \file kernel.h
/// A kernel is a compute-intensive loop of the application. Each kernel has
/// a RISC-mode (software) latency and a family of compile-time prepared ISE
/// variants that accelerate it, plus (optionally) a monoCG-Extension used by
/// the Execution Control Unit to bridge FG reconfiguration delays.

#include <string>
#include <vector>

#include "util/types.h"

namespace mrts {

struct Kernel {
  KernelId id = kInvalidKernel;
  std::string name;

  /// Per-execution latency in RISC mode (core instruction set only).
  Cycles sw_latency = 0;

  /// Candidate ISEs for the selector (excludes the monoCG-Extension).
  std::vector<IseId> ises;

  /// monoCG-Extension (kInvalidIse when the kernel has none).
  IseId mono_cg = kInvalidIse;

  bool has_mono_cg() const { return mono_cg != kInvalidIse; }
};

}  // namespace mrts
