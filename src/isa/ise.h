#pragma once
/// \file ise.h
/// Instruction Set Extension (ISE) variants. An ISE accelerates one kernel
/// and consists of an ordered list of data-path instances (the order is the
/// reconfiguration order). While only a prefix of the data paths is
/// configured, the ISE is usable as an *intermediate ISE* with a reduced
/// speedup; `latency_after[i]` gives the kernel execution latency once the
/// first i instances are usable (`latency_after[0]` is the RISC-mode
/// latency, `latency_after[n]` the fully-configured latency).

#include <cstdint>
#include <string>
#include <vector>

#include "arch/data_path.h"
#include "util/types.h"

namespace mrts {

struct IseVariant {
  IseId id = kInvalidIse;
  KernelId kernel = kInvalidKernel;
  std::string name;

  /// Data-path instances in reconfiguration order (repeats allowed).
  std::vector<DataPathId> data_paths;

  /// Kernel execution latency (cycles) after the first i instances are
  /// configured; size data_paths.size() + 1, non-increasing.
  std::vector<Cycles> latency_after;

  /// monoCG-Extensions are realized by the Execution Control Unit on a free
  /// CG fabric; they never take part in the selector's candidate list.
  bool is_mono_cg = false;

  /// Cached resource demand (filled by IseLibrary::add_ise).
  unsigned fg_units = 0;  ///< PRCs
  unsigned cg_units = 0;  ///< CG fabrics

  std::size_t num_data_paths() const { return data_paths.size(); }
  Cycles risc_latency() const { return latency_after.front(); }
  Cycles full_latency() const { return latency_after.back(); }

  bool is_fg_only() const { return cg_units == 0 && fg_units > 0; }
  bool is_cg_only() const { return fg_units == 0 && cg_units > 0; }
  bool is_multi_grained() const { return fg_units > 0 && cg_units > 0; }

  /// Fits into the given remaining fabric budget?
  bool fits(unsigned free_prcs, unsigned free_cg) const {
    return fg_units <= free_prcs && cg_units <= free_cg;
  }

  /// Total reconfiguration time if nothing is preloaded and the FG port is
  /// free (FG loads serialized, CG loads serialized on their own port).
  Cycles worst_case_reconfig_cycles(const DataPathTable& table) const;

  /// Throws std::invalid_argument when the variant is malformed.
  void validate(const DataPathTable& table) const;
};

}  // namespace mrts
