#include "isa/ise.h"

#include <stdexcept>

namespace mrts {

Cycles IseVariant::worst_case_reconfig_cycles(const DataPathTable& table) const {
  Cycles fg = 0;
  Cycles cg = 0;
  for (DataPathId dp : data_paths) {
    const auto& desc = table[dp];
    if (desc.grain == Grain::kFine) {
      fg += desc.reconfig_cycles();
    } else {
      cg += desc.reconfig_cycles();
    }
  }
  return std::max(fg, cg);
}

void IseVariant::validate(const DataPathTable& table) const {
  if (name.empty()) throw std::invalid_argument("IseVariant: empty name");
  if (kernel == kInvalidKernel) {
    throw std::invalid_argument("IseVariant " + name + ": no kernel");
  }
  if (latency_after.size() != data_paths.size() + 1) {
    throw std::invalid_argument("IseVariant " + name +
                                ": latency_after size must be #dps + 1");
  }
  if (data_paths.empty()) {
    throw std::invalid_argument("IseVariant " + name + ": no data paths");
  }
  for (DataPathId dp : data_paths) {
    if (!table.contains(dp)) {
      throw std::invalid_argument("IseVariant " + name +
                                  ": unknown data path");
    }
  }
  for (std::size_t i = 1; i < latency_after.size(); ++i) {
    if (latency_after[i] > latency_after[i - 1]) {
      throw std::invalid_argument(
          "IseVariant " + name +
          ": latency_after must be non-increasing (more configured data "
          "paths can never slow a kernel down)");
    }
  }
  if (latency_after.back() == 0) {
    throw std::invalid_argument("IseVariant " + name +
                                ": zero execution latency");
  }
  if (is_mono_cg) {
    for (DataPathId dp : data_paths) {
      if (table[dp].grain != Grain::kCoarse) {
        throw std::invalid_argument(
            "IseVariant " + name +
            ": monoCG-Extensions live entirely on a CG fabric");
      }
    }
  }
}

}  // namespace mrts
