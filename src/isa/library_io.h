#pragma once
/// \file library_io.h
/// Text serialization of ISE libraries. The format is line-oriented and
/// diff-friendly, intended as the interchange point between an external
/// compile-time ISE tool chain (the paper's [18][19]) and this run-time
/// system:
///
///     # comment
///     datapath <name> FG units=1 bitstream=83047
///     datapath <name> CG units=1 ctx=32
///     kernel   <name> sw=520
///     ise      <name> kernel=<kernel> dps=<dp1,dp2,...> lat=<l0,l1,...,ln>
///     ise      <name> kernel=<kernel> mono dps=<dp> lat=<l0,l1>
///
/// All validation of IseLibrary/IseVariant applies on load (latencies
/// non-increasing, monoCG CG-only, sizes consistent, ...).

#include <iosfwd>
#include <string>

#include "isa/ise_library.h"

namespace mrts {

/// Renders the whole library (data paths, kernels, ISEs incl. monoCG).
std::string serialize_library(const IseLibrary& lib);

/// Parses a library from text; throws std::invalid_argument with a line
/// number on malformed input.
IseLibrary parse_library(const std::string& text);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_library(const IseLibrary& lib, const std::string& path);
IseLibrary load_library(const std::string& path);

}  // namespace mrts
