#include "serve/serve_core.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "isa/ise_builder.h"
#include "obs/report_io.h"
#include "obs/run_report.h"
#include "rts/mrts.h"
#include "sim/multi_app.h"
#include "util/rng.h"
#include "workload/workload_gen.h"

namespace mrts::serve {

namespace {

constexpr std::uint32_t kMaxWeight = 1000;
constexpr std::uint32_t kMaxPriority = 1000000;
constexpr std::size_t kMaxTenantName = 64;

bool valid_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '-';
}

TenantShare to_share(std::uint8_t wire_share) {
  switch (static_cast<WireShare>(wire_share)) {
    case WireShare::kWeighted:
      return TenantShare::kWeighted;
    case WireShare::kReserved:
      return TenantShare::kReserved;
    case WireShare::kBestEffort:
      return TenantShare::kBestEffort;
  }
  return TenantShare::kBestEffort;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kDone:
      return "done";
    case JobState::kBounced:
      return "bounced";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

WireJobState to_wire(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return WireJobState::kQueued;
    case JobState::kDone:
      return WireJobState::kDone;
    case JobState::kBounced:
      return WireJobState::kBounced;
    case JobState::kCancelled:
      return WireJobState::kCancelled;
  }
  return WireJobState::kQueued;
}

ServeCore::ServeCore(const ServeConfig& config) : config_(config) {
  // One synthetic kernel per job class, with per-class acceleration
  // characteristics so classes genuinely differ in FG/CG/MG trade-offs
  // (same construction as `mrts_cli run-multi`, parameter-swept per class).
  for (unsigned k = 0; k < config_.job_classes; ++k) {
    const std::string tag = "jc" + std::to_string(k);
    IseBuildSpec build;
    build.kernel_name = tag;
    build.sw_latency = 600 + 120 * k;
    build.control_fraction = 0.25 + 0.1 * (k % 5);
    build.fg_data_path_names = {tag + "_ctrl_fg", tag + "_dp_fg"};
    build.cg_data_path_names = {tag + "_mac_cg"};
    build.fg_control_dps = 1;
    build.cg_data_dps = 1;
    kernels_.push_back(build_kernel_ises(library_, build));
  }
  MachineConfig machine_config;
  machine_config.prcs = config_.prcs;
  machine_config.cg_fabrics = config_.cg;
  machine_config.tenancy = Tenancy::kArbitrated;
  machine_ = std::make_unique<Machine>(library_, machine_config);

  std::ostringstream header;
  header << "mrts.joblog.v1 prcs=" << config_.prcs << " cg=" << config_.cg
         << " job_classes=" << config_.job_classes
         << " max_blocks=" << config_.max_blocks
         << " macroblocks=" << config_.macroblocks
         << " max_queue=" << config_.max_queue
         << " retain_jobs=" << config_.retain_jobs;
  log_.push_back(header.str());
}

ServeCore::~ServeCore() {
  // The machine's fabric holds recorder_/counters_ pointers once a job
  // attached them; the machine destroys arbiter-then-fabric itself. Member
  // order (recorder_/counters_ before machine_... reversed on destruction)
  // keeps every raw pointer valid until its holder is gone.
}

bool ServeCore::validate_spec(const SubmitFrame& spec, std::string* err) const {
  auto fail = [err](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  if (spec.name.empty() || spec.name.size() > kMaxTenantName) {
    return fail("tenant name must be 1..64 characters");
  }
  for (char c : spec.name) {
    if (!valid_name_char(c)) {
      return fail("tenant name may only contain [A-Za-z0-9_.-]");
    }
  }
  if (spec.share > static_cast<std::uint8_t>(WireShare::kBestEffort)) {
    return fail("share must be 0 (weighted), 1 (reserved) or 2 (best-effort)");
  }
  if (static_cast<WireShare>(spec.share) == WireShare::kWeighted &&
      (spec.weight == 0 || spec.weight > kMaxWeight)) {
    return fail("weight must be in [1, 1000]");
  }
  if (spec.priority > kMaxPriority) {
    return fail("priority must be <= 1000000");
  }
  if (spec.job_class >= config_.job_classes) {
    return fail("job_class must be < " + std::to_string(config_.job_classes));
  }
  if (spec.blocks == 0 || spec.blocks > config_.max_blocks) {
    return fail("blocks must be in [1, " + std::to_string(config_.max_blocks) +
                "]");
  }
  return true;
}

void ServeCore::log_submit(const JobRecord& job) {
  std::ostringstream line;
  line << "submit " << job.id << ' ' << job.spec.name << ' '
       << static_cast<unsigned>(job.spec.share) << ' ' << job.spec.weight
       << ' ' << job.spec.reserved_prcs << ' ' << job.spec.reserved_cg << ' '
       << job.spec.priority << ' ' << job.spec.job_class << ' '
       << job.spec.blocks << ' ' << job.spec.seed;
  log_.push_back(line.str());
}

std::uint64_t ServeCore::submit(std::uint32_t owner, const SubmitFrame& spec) {
  if (draining_ || queue_.size() >= config_.max_queue) return 0;

  const std::uint64_t id = next_job_id_++;
  JobRecord& job = jobs_[id];
  job.id = id;
  job.owner = owner;
  job.spec = spec;
  log_submit(job);

  TenantPolicy policy;
  policy.share = to_share(spec.share);
  policy.weight = spec.weight;
  policy.reserved_prcs = spec.reserved_prcs;
  policy.reserved_cg = spec.reserved_cg;
  policy.priority = spec.priority;
  const FabricArbiter::Registration reg =
      machine_->register_tenant(spec.name, policy);
  job.tenant = reg.id;
  if (!reg.admitted) {
    job.state = JobState::kBounced;
    job.reason = reg.reason;
    ++bounced_;
    machine_->arbiter().release_tenant(reg.id);
    return id;
  }
  queue_.push_back(id);
  return id;
}

struct ServeCore::JobWorkload {
  ApplicationTrace trace;
};

void ServeCore::run_job(JobRecord& job) {
  // Each job gets its own trace slice: the recorder restarts empty, so the
  // report is a function of this job alone (plus whatever residual fabric
  // state previous tenants left — that is the point of a resident fabric).
  recorder_.clear();
  const auto counters_before = counters_.counters();

  JobWorkload w;
  Rng rng(job.spec.seed);
  for (std::uint32_t b = 0; b < job.spec.blocks; ++b) {
    FunctionalBlockInstance inst = make_block_instance(
        FunctionalBlockId{0}, config_.macroblocks,
        {{kernels_[job.spec.job_class], 8.0, 25, 0.1}},
        /*entry_gap=*/200, /*tail_gap=*/200, rng);
    stamp_programmed_trigger(inst, library_);
    w.trace.blocks.push_back(std::move(inst));
  }

  // Caller-owned machine build (sim/machine.h make_rts): the instance dies
  // with this job, exactly like the hand-constructed MRts it replaces.
  const std::unique_ptr<MRts> rts = machine_->make_rts(job.tenant, {});
  rts->attach_observability(&recorder_, &counters_);

  Task task;
  task.name = job.spec.name;
  task.rts = rts.get();
  task.trace = &w.trace;
  task.recorder = &recorder_;
  task.priority = job.spec.priority;
  task.tenant = job.tenant;
  const MultiTenantResult result =
      run_multi_tenant({task}, &machine_->arbiter(), clock_);
  clock_ += result.total_cycles;

  const MultiTenantTaskResult& tr = result.tasks.front();
  if (!tr.admitted) {
    // Admission revoked between submit and run (e.g. quarantine shrank a
    // reservation): surfaced exactly like a submit-time bounce.
    job.state = JobState::kBounced;
    job.reason = tr.admission_reason;
    ++bounced_;
    machine_->arbiter().release_tenant(job.tenant);
    return;
  }

  job.admitted_at = tr.admitted_at;
  job.finished_at = tr.run.finished_at;

  obs::AnalysisConfig analysis;
  analysis.num_prcs = config_.prcs;
  analysis.num_cg = config_.cg;
  const obs::RunReport report =
      obs::analyze_trace(recorder_.events(), analysis);
  std::ostringstream json;
  obs::write_report_json(json, report);
  job.report_json = json.str();

  std::ostringstream delta;
  for (const auto& [name, value] : counters_.counters()) {
    const auto it = counters_before.find(name);
    const std::uint64_t before = it == counters_before.end() ? 0 : it->second;
    if (value != before) delta << name << " +" << (value - before) << '\n';
  }
  job.counters_delta = delta.str();

  machine_->arbiter().release_tenant(job.tenant);
  job.state = JobState::kDone;
  ++done_;
}

bool ServeCore::run_next() {
  if (queue_.empty()) return false;
  const std::uint64_t id = queue_.front();
  queue_.pop_front();
  log_.push_back("run " + std::to_string(id));
  run_job(jobs_.at(id));
  return true;
}

void ServeCore::run_all() {
  while (run_next()) {
  }
}

bool ServeCore::cancel(std::uint64_t job_id, std::uint32_t owner,
                       bool* cancelled, WireError* error) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    if (error != nullptr) *error = WireError::kUnknownJob;
    return false;
  }
  JobRecord& job = it->second;
  if (owner != 0 && job.owner != owner) {
    if (error != nullptr) *error = WireError::kForeignJob;
    return false;
  }
  if (job.state != JobState::kQueued) {
    if (cancelled != nullptr) *cancelled = false;  // too late
    return true;
  }
  queue_.erase(std::find(queue_.begin(), queue_.end(), job_id));
  machine_->arbiter().release_tenant(job.tenant);
  job.state = JobState::kCancelled;
  ++cancelled_;
  job.reason = "cancelled by client";
  log_.push_back("cancel " + std::to_string(job_id));
  if (cancelled != nullptr) *cancelled = true;
  return true;
}

std::uint64_t ServeCore::cancel_all(std::uint32_t owner) {
  std::vector<std::uint64_t> owned;
  for (std::uint64_t id : queue_) {
    if (jobs_.at(id).owner == owner) owned.push_back(id);
  }
  for (std::uint64_t id : owned) {
    bool was_cancelled = false;
    cancel(id, owner, &was_cancelled, nullptr);
  }
  return owned.size();
}

const JobRecord* ServeCore::job(std::uint64_t job_id) const {
  const auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : &it->second;
}

std::uint64_t ServeCore::queue_position(std::uint64_t job_id) const {
  const auto it = std::find(queue_.begin(), queue_.end(), job_id);
  return it == queue_.end()
             ? 0
             : static_cast<std::uint64_t>(it - queue_.begin());
}

bool ServeCore::status(std::uint64_t job_id, JobStatusFrame* out) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  JobRecord& job = it->second;
  *out = JobStatusFrame{};
  out->job_id = job_id;
  out->state = static_cast<std::uint8_t>(to_wire(job.state));
  out->reason = job.reason;
  switch (job.state) {
    case JobState::kQueued:
      out->queue_position = queue_position(job_id);
      break;
    case JobState::kDone:
      out->admitted_at = job.admitted_at;
      out->finished_at = job.finished_at;
      out->latency_cycles = job.finished_at - job.admitted_at;
      if (!job.report_delivered) {
        out->report_included = 1;
        out->report_json = std::move(job.report_json);
        out->counters_delta = std::move(job.counters_delta);
        job.report_json.clear();
        job.counters_delta.clear();
        job.report_delivered = true;
      }
      break;
    case JobState::kBounced:
    case JobState::kCancelled:
      break;
  }
  // The poll has now seen the record's final state (for done jobs that
  // includes the report payload, delivered just above): mark it for FIFO
  // reclaim. May erase `job` itself when retain_jobs is 0 — nothing below
  // touches it.
  if (job.state != JobState::kQueued && !job.retired &&
      (job.state != JobState::kDone || job.report_delivered)) {
    retire(job);
  }
  return true;
}

void ServeCore::retire(JobRecord& job) {
  job.retired = true;
  retired_.push_back(job.id);
  while (retired_.size() > config_.retain_jobs) {
    jobs_.erase(retired_.front());
    retired_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Job-log replay
// ---------------------------------------------------------------------------

namespace {

/// Parses "key=value" with an unsigned value; false on mismatch.
bool parse_kv(const std::string& token, const std::string& key,
              std::uint64_t* out) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  const std::string value = token.substr(prefix.size());
  if (value.empty()) return false;
  std::uint64_t n = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = n;
  return true;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool parse_u64(const std::string& tok, std::uint64_t* out) {
  return parse_kv("x=" + tok, "x", out);
}

}  // namespace

ReplayResult replay_job_log(std::istream& in) {
  ReplayResult result;
  auto fail = [&result](std::size_t line_no, const std::string& why) {
    result.ok = false;
    result.error = "joblog line " + std::to_string(line_no) + ": " + why;
    return result;
  };

  std::string line;
  if (!std::getline(in, line)) return fail(1, "empty log");
  const std::vector<std::string> header = split_ws(line);
  if (header.empty() || header[0] != "mrts.joblog.v1") {
    return fail(1, "expected mrts.joblog.v1 header");
  }
  std::uint64_t prcs = 0, cg = 0, classes = 0, max_blocks = 0,
                macroblocks = 0, max_queue = 0;
  // Optional field: logs written before the retention GC existed omit it.
  // Replays never poll status(), so the value is config-only here anyway.
  std::uint64_t retain_jobs = ServeConfig{}.retain_jobs;
  for (std::size_t i = 1; i < header.size(); ++i) {
    const std::string& tok = header[i];
    if (!parse_kv(tok, "prcs", &prcs) && !parse_kv(tok, "cg", &cg) &&
        !parse_kv(tok, "job_classes", &classes) &&
        !parse_kv(tok, "max_blocks", &max_blocks) &&
        !parse_kv(tok, "macroblocks", &macroblocks) &&
        !parse_kv(tok, "max_queue", &max_queue) &&
        !parse_kv(tok, "retain_jobs", &retain_jobs)) {
      return fail(1, "unknown header field '" + tok + "'");
    }
  }
  if (prcs == 0 || cg == 0 || classes == 0 || max_blocks == 0 ||
      macroblocks == 0 || max_queue == 0) {
    return fail(1, "incomplete header");
  }
  ServeConfig config;
  config.prcs = static_cast<unsigned>(prcs);
  config.cg = static_cast<unsigned>(cg);
  config.job_classes = static_cast<unsigned>(classes);
  config.max_blocks = static_cast<unsigned>(max_blocks);
  config.macroblocks = static_cast<unsigned>(macroblocks);
  config.max_queue = static_cast<std::size_t>(max_queue);
  config.retain_jobs = static_cast<std::size_t>(retain_jobs);
  result.config = config;

  ServeCore core(config);
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> tok = split_ws(line);
    if (tok[0] == "submit") {
      if (tok.size() != 11) return fail(line_no, "submit needs 10 fields");
      SubmitFrame spec;
      std::uint64_t id = 0, share = 0, weight = 0, rp = 0, rcg = 0, prio = 0,
                    klass = 0, blocks = 0, seed = 0;
      if (!parse_u64(tok[1], &id) || !parse_u64(tok[3], &share) ||
          !parse_u64(tok[4], &weight) || !parse_u64(tok[5], &rp) ||
          !parse_u64(tok[6], &rcg) || !parse_u64(tok[7], &prio) ||
          !parse_u64(tok[8], &klass) || !parse_u64(tok[9], &blocks) ||
          !parse_u64(tok[10], &seed)) {
        return fail(line_no, "bad submit field");
      }
      spec.name = tok[2];
      spec.share = static_cast<std::uint8_t>(share);
      spec.weight = static_cast<std::uint32_t>(weight);
      spec.reserved_prcs = static_cast<std::uint32_t>(rp);
      spec.reserved_cg = static_cast<std::uint32_t>(rcg);
      spec.priority = static_cast<std::uint32_t>(prio);
      spec.job_class = static_cast<std::uint32_t>(klass);
      spec.blocks = static_cast<std::uint32_t>(blocks);
      spec.seed = seed;
      std::string why;
      if (!core.validate_spec(spec, &why)) return fail(line_no, why);
      const std::uint64_t got = core.submit(0, spec);
      if (got != id) {
        return fail(line_no, "job id mismatch (log " + std::to_string(id) +
                                 ", replay " + std::to_string(got) + ")");
      }
    } else if (tok[0] == "run") {
      std::uint64_t id = 0;
      if (tok.size() != 2 || !parse_u64(tok[1], &id)) {
        return fail(line_no, "bad run line");
      }
      if (core.queue_depth() == 0) return fail(line_no, "run with empty queue");
      const std::uint64_t head =
          core.queue_position(id) == 0 && core.job(id) != nullptr &&
                  core.job(id)->state == JobState::kQueued
              ? id
              : 0;
      if (head != id) return fail(line_no, "run order mismatch");
      core.run_next();
    } else if (tok[0] == "cancel") {
      std::uint64_t id = 0;
      if (tok.size() != 2 || !parse_u64(tok[1], &id)) {
        return fail(line_no, "bad cancel line");
      }
      bool cancelled = false;
      WireError err = WireError::kNone;
      if (!core.cancel(id, 0, &cancelled, &err) || !cancelled) {
        return fail(line_no, "cancel failed in replay");
      }
    } else {
      return fail(line_no, "unknown op '" + tok[0] + "'");
    }
  }

  for (std::uint64_t id = 1; id <= core.jobs_created(); ++id) {
    const JobRecord* job = core.job(id);
    if (job == nullptr) continue;
    ReplayJob out;
    out.id = id;
    out.state = job->state;
    out.reason = job->reason;
    out.admitted_at = job->admitted_at;
    out.finished_at = job->finished_at;
    out.report_json = job->report_json;
    out.counters_delta = job->counters_delta;
    result.jobs.push_back(std::move(out));
  }
  result.ok = true;
  return result;
}

void write_replay_record(std::ostream& os, const ReplayJob& job) {
  os << "== job " << job.id << ' ' << to_string(job.state) << '\n';
  if (!job.reason.empty()) os << "reason: " << job.reason << '\n';
  if (job.state == JobState::kDone) {
    os << job.report_json;
    if (!job.report_json.empty() && job.report_json.back() != '\n') os << '\n';
    os << "-- counters\n" << job.counters_delta;
  }
}

}  // namespace mrts::serve
