#include "serve/session.h"

#include <string>

namespace mrts::serve {

namespace {

void append(std::vector<std::uint8_t>* out,
            const std::vector<std::uint8_t>& frame) {
  out->insert(out->end(), frame.begin(), frame.end());
}

}  // namespace

Session::Session(std::uint32_t id, ServeCore* core) : id_(id), core_(core) {}

bool Session::consume(const std::uint8_t* data, std::size_t size,
                      std::vector<std::uint8_t>* out) {
  if (closed_) return false;
  decoder_.feed(data, size);
  Frame frame;
  for (;;) {
    const FrameDecoder::Result r = decoder_.next(&frame);
    if (r == FrameDecoder::Result::kNeedMore) return !closed_;
    if (r == FrameDecoder::Result::kError) {
      // Framing violations poison the byte stream: one ERROR, then close.
      send_error(decoder_.error(), "framing error, closing connection", out);
      abort();
      return false;
    }
    handle_frame(frame, out);
    if (closed_) return false;
  }
}

void Session::abort() {
  if (state_ != State::kClosed) core_->cancel_all(id_);
  state_ = State::kClosed;
  closed_ = true;
}

void Session::send_error(WireError code, const std::string& detail,
                         std::vector<std::uint8_t>* out) {
  ErrorFrame err;
  err.code = static_cast<std::uint16_t>(code);
  err.fatal = wire_error_fatal(code) ? 1 : 0;
  err.detail = detail;
  append(out, encode(err));
}

void Session::handle_frame(const Frame& frame, std::vector<std::uint8_t>* out) {
  if (!frame_type_known(frame.type)) {
    send_error(WireError::kUnknownType,
               "unknown frame type " + std::to_string(frame.type), out);
    return;
  }
  const FrameType type = static_cast<FrameType>(frame.type);
  switch (type) {
    case FrameType::kHello: {
      if (state_ != State::kAwaitHello) {
        send_error(WireError::kProtocolState, "HELLO already exchanged", out);
        return;
      }
      HelloFrame hello;
      if (!decode(frame, &hello)) {
        send_error(WireError::kBadPayload, "malformed HELLO payload", out);
        return;
      }
      if (hello.client_version != kWireVersion) {
        // Version negotiation is an application-level reject: the *frame*
        // was well-formed v1, the client just wants a generation we do not
        // speak. Unlike a kBadVersion in a frame header (fatal), the
        // connection survives and the client may retry with v1.
        ErrorFrame err;
        err.code = static_cast<std::uint16_t>(WireError::kBadVersion);
        err.fatal = 0;
        err.detail = "server speaks mrts.wire.v1 only";
        append(out, encode(err));
        return;
      }
      HelloOkFrame ok;
      ok.session_id = id_;
      ok.prcs = core_->config().prcs;
      ok.cg = core_->config().cg;
      ok.job_classes = core_->config().job_classes;
      ok.banner = "mrts_serve";
      append(out, encode(ok));
      state_ = State::kReady;
      return;
    }
    case FrameType::kSubmit: {
      if (state_ != State::kReady) {
        send_error(WireError::kProtocolState, "SUBMIT before HELLO", out);
        return;
      }
      SubmitFrame submit;
      if (!decode(frame, &submit)) {
        send_error(WireError::kBadPayload, "malformed SUBMIT payload", out);
        return;
      }
      std::string why;
      if (!core_->validate_spec(submit, &why)) {
        send_error(WireError::kBadSpec, why, out);
        return;
      }
      if (core_->draining()) {
        send_error(WireError::kShuttingDown, "server is draining", out);
        return;
      }
      const std::uint64_t id = core_->submit(id_, submit);
      if (id == 0) {
        send_error(WireError::kQueueFull, "job queue at capacity", out);
        return;
      }
      ++jobs_submitted_;
      const JobRecord* job = core_->job(id);
      SubmitOkFrame ok;
      ok.job_id = id;
      ok.tenant = job->tenant;
      ok.admitted = job->state == JobState::kBounced ? 0 : 1;
      ok.bounce_reason = job->reason;
      append(out, encode(ok));
      return;
    }
    case FrameType::kPoll: {
      if (state_ != State::kReady) {
        send_error(WireError::kProtocolState, "POLL before HELLO", out);
        return;
      }
      PollFrame poll;
      if (!decode(frame, &poll)) {
        send_error(WireError::kBadPayload, "malformed POLL payload", out);
        return;
      }
      const JobRecord* job = core_->job(poll.job_id);
      if (job == nullptr) {
        send_error(WireError::kUnknownJob,
                   "no job " + std::to_string(poll.job_id), out);
        return;
      }
      if (job->owner != id_) {
        send_error(WireError::kForeignJob,
                   "job " + std::to_string(poll.job_id) +
                       " belongs to another session",
                   out);
        return;
      }
      JobStatusFrame status;
      core_->status(poll.job_id, &status);
      append(out, encode(status));
      return;
    }
    case FrameType::kCancel: {
      if (state_ != State::kReady) {
        send_error(WireError::kProtocolState, "CANCEL before HELLO", out);
        return;
      }
      CancelFrame cancel;
      if (!decode(frame, &cancel)) {
        send_error(WireError::kBadPayload, "malformed CANCEL payload", out);
        return;
      }
      bool cancelled = false;
      WireError err = WireError::kNone;
      if (!core_->cancel(cancel.job_id, id_, &cancelled, &err)) {
        send_error(err, "cannot cancel job " + std::to_string(cancel.job_id),
                   out);
        return;
      }
      CancelOkFrame ok;
      ok.job_id = cancel.job_id;
      ok.cancelled = cancelled ? 1 : 0;
      append(out, encode(ok));
      return;
    }
    case FrameType::kDisconnect: {
      DisconnectFrame bye_req;
      if (!decode(frame, &bye_req)) {
        send_error(WireError::kBadPayload, "DISCONNECT carries no payload",
                   out);
        return;
      }
      ByeFrame bye;
      bye.jobs_submitted = jobs_submitted_;
      bye.jobs_auto_cancelled = core_->cancel_all(id_);
      append(out, encode(bye));
      state_ = State::kClosed;
      closed_ = true;
      return;
    }
    case FrameType::kHelloOk:
    case FrameType::kSubmitOk:
    case FrameType::kJobStatus:
    case FrameType::kCancelOk:
    case FrameType::kBye:
    case FrameType::kError:
      // Server-to-client frame types arriving at the server: well-framed
      // but nonsensical in this direction.
      send_error(WireError::kProtocolState,
                 std::string(to_string(type)) + " is a server-side frame",
                 out);
      return;
  }
}

}  // namespace mrts::serve
