#include "serve/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cstring>

namespace mrts::serve {

namespace {

void sleep_ms(unsigned ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000;
  nanosleep(&ts, nullptr);
}

}  // namespace

Client::~Client() { close_now(); }

void Client::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect_to(const std::string& socket_path, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "socket path empty or too long";
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  // The server may still be binding its socket: retry for ~2 s.
  for (int attempt = 0; attempt < 100; ++attempt) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      if (err != nullptr) *err = std::strerror(errno);
      return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return true;
    }
    close_now();
    sleep_ms(20);
  }
  if (err != nullptr) *err = "cannot connect to " + socket_path;
  return false;
}

bool Client::request(const std::vector<std::uint8_t>& frame, FrameType expect,
                     Frame* response, std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + sent, frame.size() - sent);
    if (n <= 0) {
      if (err != nullptr) *err = "write failed: " + std::string(std::strerror(errno));
      close_now();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::uint8_t buf[4096];
  for (;;) {
    const FrameDecoder::Result r = decoder_.next(response);
    if (r == FrameDecoder::Result::kFrame) break;
    if (r == FrameDecoder::Result::kError) {
      if (err != nullptr) *err = "server sent a malformed frame";
      close_now();
      return false;
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n <= 0) {
      if (err != nullptr) *err = "connection closed by server";
      close_now();
      return false;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }

  if (response->type == static_cast<std::uint8_t>(FrameType::kError)) {
    if (!decode(*response, &last_error_)) {
      if (err != nullptr) *err = "malformed ERROR frame";
      close_now();
      return false;
    }
    if (err != nullptr) *err = last_error_.detail;
    if (last_error_.fatal != 0) close_now();
    return false;
  }
  if (response->type != static_cast<std::uint8_t>(expect)) {
    if (err != nullptr) {
      *err = std::string("unexpected response frame ") +
             std::to_string(response->type);
    }
    return false;
  }
  return true;
}

bool Client::hello(HelloOkFrame* out, std::string* err) {
  HelloFrame frame;
  frame.client_name = "mrts_client";
  Frame response;
  if (!request(encode(frame), FrameType::kHelloOk, &response, err)) {
    return false;
  }
  if (!decode(response, out)) {
    if (err != nullptr) *err = "malformed HELLO_OK payload";
    return false;
  }
  return true;
}

bool Client::submit(const SubmitFrame& spec, SubmitOkFrame* out,
                    std::string* err) {
  Frame response;
  if (!request(encode(spec), FrameType::kSubmitOk, &response, err)) {
    return false;
  }
  if (!decode(response, out)) {
    if (err != nullptr) *err = "malformed SUBMIT_OK payload";
    return false;
  }
  return true;
}

bool Client::poll_job(std::uint64_t job_id, JobStatusFrame* out,
                      std::string* err) {
  PollFrame frame;
  frame.job_id = job_id;
  Frame response;
  if (!request(encode(frame), FrameType::kJobStatus, &response, err)) {
    return false;
  }
  if (!decode(response, out)) {
    if (err != nullptr) *err = "malformed JOB_STATUS payload";
    return false;
  }
  return true;
}

bool Client::poll_until_final(std::uint64_t job_id, JobStatusFrame* out,
                              std::string* err) {
  for (;;) {
    if (!poll_job(job_id, out, err)) return false;
    if (static_cast<WireJobState>(out->state) != WireJobState::kQueued) {
      return true;
    }
    sleep_ms(1);
  }
}

bool Client::cancel(std::uint64_t job_id, CancelOkFrame* out,
                    std::string* err) {
  CancelFrame frame;
  frame.job_id = job_id;
  Frame response;
  if (!request(encode(frame), FrameType::kCancelOk, &response, err)) {
    return false;
  }
  if (!decode(response, out)) {
    if (err != nullptr) *err = "malformed CANCEL_OK payload";
    return false;
  }
  return true;
}

bool Client::disconnect(ByeFrame* out, std::string* err) {
  DisconnectFrame frame;
  Frame response;
  const bool ok = request(encode(frame), FrameType::kBye, &response, err);
  if (ok && out != nullptr && !decode(response, out)) {
    if (err != nullptr) *err = "malformed BYE payload";
    close_now();
    return false;
  }
  close_now();
  return ok;
}

}  // namespace mrts::serve
