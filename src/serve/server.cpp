#include "serve/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace mrts::serve {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), core_(config_.core) {}

Server::~Server() {
  for (Connection& conn : connections_) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
      ++stats_.fds_closed;
    }
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
  }
}

bool Server::start(std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "socket path empty or too long";
    return false;
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (err != nullptr) *err = std::strerror(errno);
    return false;
  }
  ::unlink(config_.socket_path.c_str());  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_)) {
    if (err != nullptr) *err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void Server::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: nothing to accept
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.session = std::make_unique<Session>(next_session_id_++, &core_);
    connections_.push_back(std::move(conn));
    ++stats_.sessions_opened;
    ++stats_.fds_opened;
  }
}

void Server::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  conn.session->abort();  // no-op when the session already closed cleanly
  ::close(conn.fd);
  conn.fd = -1;
  ++stats_.fds_closed;
  ++stats_.sessions_closed;
}

bool Server::service(Connection& conn, short revents) {
  if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !conn.closing) {
    // Peer vanished without DISCONNECT; POLLHUP may still accompany final
    // readable bytes, so try one last drain before tearing down.
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n <= 0) break;
      conn.session->consume(buf, static_cast<std::size_t>(n), &conn.outbound);
    }
    close_connection(conn);
    return false;
  }

  if ((revents & POLLIN) != 0) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        if (!conn.session->consume(buf, static_cast<std::size_t>(n),
                                   &conn.outbound)) {
          conn.closing = true;  // flush pending responses, then close
        }
        continue;
      }
      if (n == 0) {  // orderly EOF from the peer
        conn.closing = true;
      }
      break;  // EAGAIN or EOF
    }
  }

  while (!conn.outbound.empty()) {
    const ssize_t n =
        ::write(conn.fd, conn.outbound.data(), conn.outbound.size());
    if (n <= 0) break;  // EAGAIN: POLLOUT will resume the flush
    conn.outbound.erase(conn.outbound.begin(), conn.outbound.begin() + n);
  }

  if (conn.closing && conn.outbound.empty()) {
    close_connection(conn);
    return false;
  }
  return true;
}

int Server::run(const volatile std::sig_atomic_t* stop_flag) {
  while ((stop_flag == nullptr || *stop_flag == 0) &&
         (config_.exit_after_sessions == 0 ||
          stats_.sessions_closed < config_.exit_after_sessions ||
          !connections_.empty())) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Connection& conn : connections_) {
      short events = POLLIN;
      if (!conn.outbound.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) break;

    if (ready > 0) {
      // Service existing connections first: they map one-to-one onto the
      // pollfd array built above. Accepting before this would grow
      // connections_ past the fds array and mis-index revents.
      std::size_t i = 0;
      std::erase_if(connections_, [&](Connection& conn) {
        const short revents = fds[++i].revents;
        return revents != 0 && !service(conn, revents);
      });
      if ((fds[0].revents & POLLIN) != 0) accept_clients();
    }
    // Sim work happens between I/O rounds: the queue drains while clients
    // sit in poll loops, so submit -> first poll usually sees kDone.
    core_.run_all();
  }

  // Drain: no new submissions, run what is queued, drop the connections.
  core_.begin_drain();
  core_.run_all();
  for (Connection& conn : connections_) close_connection(conn);
  connections_.clear();
  write_job_log();
  print_summary();
  return 0;
}

void Server::write_job_log() const {
  if (config_.job_log_path.empty()) return;
  std::ofstream out(config_.job_log_path);
  for (const std::string& line : core_.job_log()) out << line << '\n';
}

void Server::print_summary() const {
  if (config_.quiet) return;
  // Lifetime counters, not a record walk: the retention GC (ServeConfig::
  // retain_jobs) may have reclaimed old records by now.
  const std::uint64_t done = core_.jobs_done();
  const std::uint64_t bounced = core_.jobs_bounced();
  const std::uint64_t cancelled = core_.jobs_cancelled();
  std::printf("mrts_serve: shutdown clean\n");
  std::printf("sessions opened=%llu closed=%llu leaked=%llu\n",
              static_cast<unsigned long long>(stats_.sessions_opened),
              static_cast<unsigned long long>(stats_.sessions_closed),
              static_cast<unsigned long long>(stats_.sessions_opened -
                                              stats_.sessions_closed));
  std::printf("fds opened=%llu closed=%llu leaked=%llu\n",
              static_cast<unsigned long long>(stats_.fds_opened),
              static_cast<unsigned long long>(stats_.fds_closed),
              static_cast<unsigned long long>(stats_.fds_opened -
                                              stats_.fds_closed));
  std::printf(
      "jobs submitted=%llu done=%llu bounced=%llu cancelled=%llu "
      "queued_left=%llu\n",
      static_cast<unsigned long long>(core_.jobs_created()),
      static_cast<unsigned long long>(done),
      static_cast<unsigned long long>(bounced),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(core_.queue_depth()));
}

}  // namespace mrts::serve
