#include "serve/wire.h"
#include <algorithm>

#include <cstring>
#include <stdexcept>

namespace mrts::serve {

namespace {

/// Little-endian field helpers over raw frame bytes.
std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Shared tail of every payload decoder: decode via \p fn, require that the
/// reader consumed the payload exactly, and map any SnapshotError (truncated
/// field, implausible string length) to a clean false.
template <typename Fn>
bool decode_payload(const Frame& f, Fn&& fn) {
  SnapshotReader r(f.payload.data(), f.payload.size());
  try {
    fn(r);
    r.expect_end();
  } catch (const SnapshotError&) {
    return false;
  }
  return true;
}

/// Strings inside frames are length-prefixed; cap them at the payload
/// ceiling so a corrupt length fails fast instead of allocating.
std::string read_string(SnapshotReader& r) {
  return r.str();  // SnapshotReader::str() is bounds-checked already
}

}  // namespace

bool frame_type_known(std::uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kHelloOk:
    case FrameType::kSubmit:
    case FrameType::kSubmitOk:
    case FrameType::kPoll:
    case FrameType::kJobStatus:
    case FrameType::kCancel:
    case FrameType::kCancelOk:
    case FrameType::kDisconnect:
    case FrameType::kBye:
    case FrameType::kError:
      return true;
  }
  return false;
}

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloOk: return "HELLO_OK";
    case FrameType::kSubmit: return "SUBMIT";
    case FrameType::kSubmitOk: return "SUBMIT_OK";
    case FrameType::kPoll: return "POLL";
    case FrameType::kJobStatus: return "JOB_STATUS";
    case FrameType::kCancel: return "CANCEL";
    case FrameType::kCancelOk: return "CANCEL_OK";
    case FrameType::kDisconnect: return "DISCONNECT";
    case FrameType::kBye: return "BYE";
    case FrameType::kError: return "ERROR";
  }
  return "?";
}

const char* to_string(WireError code) {
  switch (code) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadLength: return "bad-length";
    case WireError::kBadCrc: return "bad-crc";
    case WireError::kBadPayload: return "bad-payload";
    case WireError::kUnknownType: return "unknown-type";
    case WireError::kProtocolState: return "protocol-state";
    case WireError::kUnknownJob: return "unknown-job";
    case WireError::kForeignJob: return "foreign-job";
    case WireError::kBadSpec: return "bad-spec";
    case WireError::kQueueFull: return "queue-full";
    case WireError::kShuttingDown: return "shutting-down";
  }
  return "?";
}

bool wire_error_fatal(WireError code) {
  switch (code) {
    case WireError::kBadMagic:
    case WireError::kBadVersion:
    case WireError::kBadLength:
    case WireError::kBadCrc:
      return true;
    default:
      return false;
  }
}

const char* to_string(WireJobState state) {
  switch (state) {
    case WireJobState::kQueued: return "queued";
    case WireJobState::kRunning: return "running";
    case WireJobState::kDone: return "done";
    case WireJobState::kBounced: return "bounced";
    case WireJobState::kCancelled: return "cancelled";
  }
  return "?";
}

std::uint32_t frame_crc(const std::uint8_t* frame, std::size_t payload_len) {
  // Coverage: header bytes [4, 12) plus the payload — two regions split by
  // the CRC field itself, joined into one buffer for the one-shot
  // snapshot_crc32 (frames are small; kMaxPayload bounds the copy).
  std::vector<std::uint8_t> covered;
  covered.reserve(8 + payload_len);
  covered.insert(covered.end(), frame + 4, frame + 12);
  covered.insert(covered.end(), frame + kFrameHeaderSize,
                 frame + kFrameHeaderSize + payload_len);
  return snapshot_crc32(covered.data(), covered.size());
}

std::vector<std::uint8_t> encode_frame(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload) {
    throw std::invalid_argument("mrts.wire.v1 payload exceeds kMaxPayload");
  }
  std::vector<std::uint8_t> frame(kFrameHeaderSize + payload.size(), 0);
  for (std::size_t i = 0; i < 4; ++i) frame[i] = kWireMagic[i];
  frame[4] = static_cast<std::uint8_t>(kWireVersion & 0xFF);
  frame[5] = static_cast<std::uint8_t>(kWireVersion >> 8);
  frame[6] = static_cast<std::uint8_t>(type);
  frame[7] = 0;  // flags
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (std::size_t i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  // Bytes 12..15 stay 0 until the CRC is patched in below.
  std::copy(payload.begin(), payload.end(), frame.begin() + kFrameHeaderSize);
  const std::uint32_t crc = frame_crc(frame.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    frame[12 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return frame;
}

// --- encoders --------------------------------------------------------------

std::vector<std::uint8_t> encode(const HelloFrame& f) {
  SnapshotWriter w;
  w.u8(static_cast<std::uint8_t>(f.client_version & 0xFF));
  w.u8(static_cast<std::uint8_t>(f.client_version >> 8));
  w.str(f.client_name);
  return encode_frame(FrameType::kHello, w.bytes());
}

std::vector<std::uint8_t> encode(const HelloOkFrame& f) {
  SnapshotWriter w;
  w.u8(static_cast<std::uint8_t>(f.server_version & 0xFF));
  w.u8(static_cast<std::uint8_t>(f.server_version >> 8));
  w.u32(f.session_id);
  w.u32(f.prcs);
  w.u32(f.cg);
  w.u32(f.job_classes);
  w.str(f.banner);
  return encode_frame(FrameType::kHelloOk, w.bytes());
}

std::vector<std::uint8_t> encode(const SubmitFrame& f) {
  SnapshotWriter w;
  w.str(f.name);
  w.u8(f.share);
  w.u32(f.weight);
  w.u32(f.reserved_prcs);
  w.u32(f.reserved_cg);
  w.u32(f.priority);
  w.u32(f.job_class);
  w.u32(f.blocks);
  w.u64(f.seed);
  return encode_frame(FrameType::kSubmit, w.bytes());
}

std::vector<std::uint8_t> encode(const SubmitOkFrame& f) {
  SnapshotWriter w;
  w.u64(f.job_id);
  w.u32(f.tenant);
  w.u8(f.admitted);
  w.str(f.bounce_reason);
  return encode_frame(FrameType::kSubmitOk, w.bytes());
}

std::vector<std::uint8_t> encode(const PollFrame& f) {
  SnapshotWriter w;
  w.u64(f.job_id);
  return encode_frame(FrameType::kPoll, w.bytes());
}

std::vector<std::uint8_t> encode(const JobStatusFrame& f) {
  SnapshotWriter w;
  w.u64(f.job_id);
  w.u8(f.state);
  w.u64(f.queue_position);
  w.u64(f.admitted_at);
  w.u64(f.finished_at);
  w.u64(f.latency_cycles);
  w.u8(f.report_included);
  w.str(f.report_json);
  w.str(f.counters_delta);
  w.str(f.reason);
  return encode_frame(FrameType::kJobStatus, w.bytes());
}

std::vector<std::uint8_t> encode(const CancelFrame& f) {
  SnapshotWriter w;
  w.u64(f.job_id);
  return encode_frame(FrameType::kCancel, w.bytes());
}

std::vector<std::uint8_t> encode(const CancelOkFrame& f) {
  SnapshotWriter w;
  w.u64(f.job_id);
  w.u8(f.cancelled);
  return encode_frame(FrameType::kCancelOk, w.bytes());
}

std::vector<std::uint8_t> encode(const DisconnectFrame&) {
  return encode_frame(FrameType::kDisconnect, {});
}

std::vector<std::uint8_t> encode(const ByeFrame& f) {
  SnapshotWriter w;
  w.u64(f.jobs_submitted);
  w.u64(f.jobs_auto_cancelled);
  return encode_frame(FrameType::kBye, w.bytes());
}

std::vector<std::uint8_t> encode(const ErrorFrame& f) {
  SnapshotWriter w;
  w.u8(static_cast<std::uint8_t>(f.code & 0xFF));
  w.u8(static_cast<std::uint8_t>(f.code >> 8));
  w.u8(f.fatal);
  w.str(f.detail);
  return encode_frame(FrameType::kError, w.bytes());
}

// --- payload decoders ------------------------------------------------------

bool decode(const Frame& f, HelloFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kHello)) return false;
  return decode_payload(f, [out](SnapshotReader& r) {
    const std::uint8_t lo = r.u8();
    const std::uint8_t hi = r.u8();
    out->client_version = static_cast<std::uint16_t>(lo | (hi << 8));
    out->client_name = read_string(r);
  });
}

bool decode(const Frame& f, HelloOkFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kHelloOk)) return false;
  return decode_payload(f, [out](SnapshotReader& r) {
    const std::uint8_t lo = r.u8();
    const std::uint8_t hi = r.u8();
    out->server_version = static_cast<std::uint16_t>(lo | (hi << 8));
    out->session_id = r.u32();
    out->prcs = r.u32();
    out->cg = r.u32();
    out->job_classes = r.u32();
    out->banner = read_string(r);
  });
}

bool decode(const Frame& f, SubmitFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kSubmit)) return false;
  if (!decode_payload(f, [out](SnapshotReader& r) {
        out->name = read_string(r);
        out->share = r.u8();
        out->weight = r.u32();
        out->reserved_prcs = r.u32();
        out->reserved_cg = r.u32();
        out->priority = r.u32();
        out->job_class = r.u32();
        out->blocks = r.u32();
        out->seed = r.u64();
      })) {
    return false;
  }
  return out->share <= static_cast<std::uint8_t>(WireShare::kBestEffort);
}

bool decode(const Frame& f, SubmitOkFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kSubmitOk)) return false;
  if (!decode_payload(f, [out](SnapshotReader& r) {
        out->job_id = r.u64();
        out->tenant = r.u32();
        out->admitted = r.u8();
        out->bounce_reason = read_string(r);
      })) {
    return false;
  }
  return out->admitted <= 1;
}

bool decode(const Frame& f, PollFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kPoll)) return false;
  return decode_payload(f, [out](SnapshotReader& r) { out->job_id = r.u64(); });
}

bool decode(const Frame& f, JobStatusFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kJobStatus)) return false;
  if (!decode_payload(f, [out](SnapshotReader& r) {
        out->job_id = r.u64();
        out->state = r.u8();
        out->queue_position = r.u64();
        out->admitted_at = r.u64();
        out->finished_at = r.u64();
        out->latency_cycles = r.u64();
        out->report_included = r.u8();
        out->report_json = read_string(r);
        out->counters_delta = read_string(r);
        out->reason = read_string(r);
      })) {
    return false;
  }
  return out->state <= static_cast<std::uint8_t>(WireJobState::kCancelled) &&
         out->report_included <= 1;
}

bool decode(const Frame& f, CancelFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kCancel)) return false;
  return decode_payload(f, [out](SnapshotReader& r) { out->job_id = r.u64(); });
}

bool decode(const Frame& f, CancelOkFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kCancelOk)) return false;
  if (!decode_payload(f, [out](SnapshotReader& r) {
        out->job_id = r.u64();
        out->cancelled = r.u8();
      })) {
    return false;
  }
  return out->cancelled <= 1;
}

bool decode(const Frame& f, DisconnectFrame* out) {
  (void)out;
  return f.type == static_cast<std::uint8_t>(FrameType::kDisconnect) &&
         f.payload.empty();
}

bool decode(const Frame& f, ByeFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kBye)) return false;
  return decode_payload(f, [out](SnapshotReader& r) {
    out->jobs_submitted = r.u64();
    out->jobs_auto_cancelled = r.u64();
  });
}

bool decode(const Frame& f, ErrorFrame* out) {
  if (f.type != static_cast<std::uint8_t>(FrameType::kError)) return false;
  if (!decode_payload(f, [out](SnapshotReader& r) {
        const std::uint8_t lo = r.u8();
        const std::uint8_t hi = r.u8();
        out->code = static_cast<std::uint16_t>(lo | (hi << 8));
        out->fatal = r.u8();
        out->detail = read_string(r);
      })) {
    return false;
  }
  return out->fatal <= 1;
}

// --- incremental decoder ---------------------------------------------------

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned()) return;  // a poisoned stream is never re-interpreted
  // Compact lazily: drop consumed bytes before appending once they dominate
  // the buffer, keeping feed() amortized O(n) over a whole session.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameDecoder::Result FrameDecoder::next(Frame* out) {
  if (poisoned()) return Result::kError;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderSize) return Result::kNeedMore;
  const std::uint8_t* h = buffer_.data() + consumed_;
  if (std::memcmp(h, kWireMagic, 4) != 0) {
    error_ = WireError::kBadMagic;
    return Result::kError;
  }
  const std::uint16_t version = read_u16(h + 4);
  if (version != kWireVersion) {
    error_ = WireError::kBadVersion;
    return Result::kError;
  }
  const std::uint32_t length = read_u32(h + 8);
  if (length > kMaxPayload) {
    error_ = WireError::kBadLength;
    return Result::kError;
  }
  if (avail < kFrameHeaderSize + length) return Result::kNeedMore;
  const std::uint32_t stated = read_u32(h + 12);
  if (stated != frame_crc(h, length)) {
    error_ = WireError::kBadCrc;
    return Result::kError;
  }
  out->type = h[6];
  out->payload.assign(h + kFrameHeaderSize, h + kFrameHeaderSize + length);
  consumed_ += kFrameHeaderSize + length;
  return Result::kFrame;
}

}  // namespace mrts::serve
