#pragma once
/// \file client.h
/// Client: a small blocking mrts.wire.v1 client over AF_UNIX, used by
/// `mrts_loadgen` and `bench_serve_latency` (and a worked example of
/// writing a client from docs/PROTOCOL.md alone). One request frame out,
/// one response frame back; an ERROR response surfaces through
/// last_error() and a false return.

#include <cstdint>
#include <string>

#include "serve/wire.h"

namespace mrts::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the server's AF_UNIX socket; retries briefly while the
  /// server is still starting up. False (with \p err) on failure.
  bool connect_to(const std::string& socket_path, std::string* err);
  bool connected() const { return fd_ >= 0; }
  /// Drops the connection without DISCONNECT (simulates a crashed client).
  void close_now();

  bool hello(HelloOkFrame* out, std::string* err);
  bool submit(const SubmitFrame& spec, SubmitOkFrame* out, std::string* err);
  bool poll_job(std::uint64_t job_id, JobStatusFrame* out, std::string* err);
  /// Polls until the job leaves the queue (done/bounced/cancelled).
  bool poll_until_final(std::uint64_t job_id, JobStatusFrame* out,
                        std::string* err);
  bool cancel(std::uint64_t job_id, CancelOkFrame* out, std::string* err);
  /// DISCONNECT/BYE exchange; closes the socket either way.
  bool disconnect(ByeFrame* out, std::string* err);

  /// The most recent ERROR frame the server answered with (code kNone when
  /// no request ever failed with a protocol error).
  const ErrorFrame& last_error() const { return last_error_; }

 private:
  /// Sends \p frame and reads one response. True when the response has
  /// type \p expect; an ERROR response lands in last_error_.
  bool request(const std::vector<std::uint8_t>& frame, FrameType expect,
               Frame* response, std::string* err);

  int fd_ = -1;
  FrameDecoder decoder_;
  ErrorFrame last_error_;
};

}  // namespace mrts::serve
