#pragma once
/// \file server.h
/// Server: the I/O shell of `mrts_serve`. A single-threaded poll() loop
/// over one AF_UNIX listening socket moves bytes between client
/// connections and their Session state machines, and drains the ServeCore
/// job queue between I/O rounds — the sim core itself never sees a socket
/// (docs/SERVING.md describes the boundary and the threading model). This
/// header is the only part of serve/ that touches POSIX sockets.

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/serve_core.h"
#include "serve/session.h"

namespace mrts::serve {

struct ServerConfig {
  std::string socket_path;    ///< AF_UNIX path; unlinked on startup+shutdown
  ServeConfig core;
  /// Exit once this many sessions have fully closed (0 = run until a stop
  /// is requested). CI's serve-smoke uses it for bounded runs.
  std::uint64_t exit_after_sessions = 0;
  std::string job_log_path;   ///< mrts.joblog.v1 written at shutdown ("" = none)
  bool quiet = false;         ///< suppress the per-shutdown accounting print
};

/// Lifetime accounting printed at shutdown and asserted by serve-smoke:
/// `leaked` numbers must be zero after any churn pattern.
struct ServerStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t fds_opened = 0;   ///< accepted connection fds
  std::uint64_t fds_closed = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens on config.socket_path. False (with \p err) on failure.
  bool start(std::string* err);

  /// Runs the event loop until \p stop_flag becomes nonzero (typically set
  /// by a SIGINT/SIGTERM handler) or the exit_after_sessions budget is
  /// spent. On exit the core drains (queued jobs of still-open sessions
  /// run to completion), connections close, the job log is written, and
  /// the accounting summary prints. Returns 0 on a clean shutdown.
  int run(const volatile std::sig_atomic_t* stop_flag);

  const ServerStats& stats() const { return stats_; }
  ServeCore& core() { return core_; }

 private:
  struct Connection {
    int fd = -1;
    std::unique_ptr<Session> session;
    std::vector<std::uint8_t> outbound;  ///< bytes awaiting the socket
    bool closing = false;  ///< flush outbound, then close
  };

  void accept_clients();
  /// Reads/writes one ready connection; returns false when it was closed.
  bool service(Connection& conn, short revents);
  void close_connection(Connection& conn);
  void write_job_log() const;
  void print_summary() const;

  ServerConfig config_;
  ServeCore core_;
  int listen_fd_ = -1;
  std::vector<Connection> connections_;
  std::uint32_t next_session_id_ = 1;
  ServerStats stats_;
};

}  // namespace mrts::serve
