#pragma once
/// \file wire.h
/// `mrts.wire.v1` — the length-framed request/response protocol spoken by
/// `mrts_serve` and its clients over a local stream socket. This header is
/// the *codec only*: frame layout, payload structs and an incremental
/// decoder. It has zero socket, thread or wall-clock dependencies, so the
/// whole protocol round-trips in plain unit tests (tests/test_wire.cpp) and
/// the normative spec in docs/PROTOCOL.md can be checked field by field
/// against this file.
///
/// Frame layout (all multi-byte fields little-endian):
///
///   offset  size  field
///   0       4     magic "mRTW" (0x6D 0x52 0x54 0x57)
///   4       2     wire version (u16) — this header implements 1
///   6       1     frame type (FrameType)
///   7       1     flags (u8) — reserved, must be 0 in v1
///   8       4     payload length N (u32), at most kMaxPayload
///   12      4     CRC-32 (IEEE 802.3 reflected, util/snapshot_io.h's
///                 snapshot_crc32) over bytes [4, 12) of the header plus the
///                 N payload bytes — everything after the magic except the
///                 CRC field itself
///   16      N     payload (frame-type specific, see the payload structs)
///
/// Malformed bytes never crash the decoder and never partially apply a
/// frame: header/framing violations (bad magic, unknown wire version,
/// implausible length, CRC mismatch) poison the decoder — the byte stream
/// can no longer be trusted, the session sends one ERROR frame and closes —
/// while payload-level violations (trailing bytes, truncated fields,
/// out-of-range enums) reject only that frame and the session survives.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/tenant.h"
#include "util/snapshot_io.h"

namespace mrts::serve {

/// First bytes of every frame: 'm' 'R' 'T' 'W'.
inline constexpr std::uint8_t kWireMagic[4] = {0x6D, 0x52, 0x54, 0x57};
/// The protocol generation this codec implements (`mrts.wire.v1`).
inline constexpr std::uint16_t kWireVersion = 1;
/// Frame header size in bytes (magic..crc inclusive).
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Hard ceiling on the payload length field: longer frames are rejected
/// before any allocation (a corrupt length must not OOM the server).
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

/// Frame types of mrts.wire.v1. Client-to-server requests are odd,
/// server-to-client responses are even (kError is the catch-all response).
enum class FrameType : std::uint8_t {
  kHello = 0x01,       ///< c->s: version negotiation, first frame
  kHelloOk = 0x02,     ///< s->c: negotiated version + fabric shape
  kSubmit = 0x03,      ///< c->s: tenant job submission
  kSubmitOk = 0x04,    ///< s->c: job id + admission verdict
  kPoll = 0x05,        ///< c->s: job status query
  kJobStatus = 0x06,   ///< s->c: job state, final report when done
  kCancel = 0x07,      ///< c->s: cancel a queued job
  kCancelOk = 0x08,    ///< s->c: cancel verdict
  kDisconnect = 0x09,  ///< c->s: graceful goodbye
  kBye = 0x0A,         ///< s->c: goodbye + session accounting
  kError = 0x0F,       ///< s->c: protocol error report
};

/// True for type bytes that name a v1 frame.
bool frame_type_known(std::uint8_t type);
const char* to_string(FrameType type);

/// Protocol error codes carried by ERROR frames (docs/PROTOCOL.md lists the
/// client-visible meaning and whether the connection survives each one).
enum class WireError : std::uint16_t {
  kNone = 0,
  kBadMagic = 1,       ///< fatal: frame did not start with "mRTW"
  kBadVersion = 2,     ///< fatal: unsupported wire version in a header
  kBadLength = 3,      ///< fatal: length field exceeds kMaxPayload
  kBadCrc = 4,         ///< fatal: header+payload CRC mismatch
  kBadPayload = 5,     ///< frame rejected: payload malformed for its type
  kUnknownType = 6,    ///< frame rejected: unknown frame type byte
  kProtocolState = 7,  ///< frame rejected: e.g. SUBMIT before HELLO
  kUnknownJob = 8,     ///< request rejected: no such job id
  kForeignJob = 9,     ///< request rejected: job owned by another session
  kBadSpec = 10,       ///< SUBMIT rejected: invalid job specification
  kQueueFull = 11,     ///< SUBMIT rejected: job queue at capacity
  kShuttingDown = 12,  ///< request rejected: server is draining
};

const char* to_string(WireError code);
/// Fatal errors poison the byte stream: the server sends ERROR and closes.
bool wire_error_fatal(WireError code);

// ---------------------------------------------------------------------------
// Payload structs. Field order in the struct == field order on the wire.
// ---------------------------------------------------------------------------

/// HELLO (client -> server): the first frame of every session.
struct HelloFrame {
  std::uint16_t client_version = kWireVersion;
  std::string client_name;  ///< informational, <= 64 chars
};

/// HELLO_OK (server -> client).
struct HelloOkFrame {
  std::uint16_t server_version = kWireVersion;
  std::uint32_t session_id = 0;
  std::uint32_t prcs = 0;         ///< resident fabric: PRC count
  std::uint32_t cg = 0;           ///< resident fabric: CG fabric count
  std::uint32_t job_classes = 0;  ///< valid SUBMIT job_class range [0, n)
  std::string banner;
};

/// Job share policy on the wire (mirrors TenantShare, pinned values).
enum class WireShare : std::uint8_t {
  kWeighted = 0,
  kReserved = 1,
  kBestEffort = 2,
};

/// SUBMIT (client -> server): one tenant job.
struct SubmitFrame {
  std::string name;  ///< tenant name, [A-Za-z0-9_.-]{1,64}
  std::uint8_t share = 0;          ///< WireShare
  std::uint32_t weight = 1;        ///< weighted only, [1, 1000]
  std::uint32_t reserved_prcs = 0; ///< reserved only
  std::uint32_t reserved_cg = 0;   ///< reserved only
  std::uint32_t priority = 0;      ///< scheduler priority, <= 1000000
  std::uint32_t job_class = 0;     ///< kernel class, < HelloOk.job_classes
  std::uint32_t blocks = 1;        ///< functional blocks, [1, max_blocks]
  std::uint64_t seed = 0;          ///< workload-generation seed
};

/// SUBMIT_OK (server -> client).
struct SubmitOkFrame {
  std::uint64_t job_id = 0;
  std::uint32_t tenant = 0;     ///< arbiter tenant id
  std::uint8_t admitted = 0;    ///< 1 = queued; 0 = bounced by admission
  std::string bounce_reason;    ///< FabricArbiter's reason when bounced
};

/// POLL (client -> server).
struct PollFrame {
  std::uint64_t job_id = 0;
};

/// Job lifecycle states on the wire (pinned values).
enum class WireJobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,  ///< reserved for concurrent shells; v1 never emits it
  kDone = 2,
  kBounced = 3,
  kCancelled = 4,
};

const char* to_string(WireJobState state);

/// JOB_STATUS (server -> client). The final report is delivered exactly
/// once: the first done-poll carries report_json/counters_delta and the
/// server then frees them (report_included = 0 on later polls).
struct JobStatusFrame {
  std::uint64_t job_id = 0;
  std::uint8_t state = 0;           ///< WireJobState
  std::uint64_t queue_position = 0; ///< 0 = next to run (queued only)
  std::uint64_t admitted_at = 0;    ///< sim cycle the job became eligible
  std::uint64_t finished_at = 0;    ///< sim cycle the job completed
  std::uint64_t latency_cycles = 0; ///< finished_at - admitted_at
  std::uint8_t report_included = 0; ///< 1 = report_json/counters_delta valid
  std::string report_json;          ///< mrts.run_report.v1 (done only)
  std::string counters_delta;       ///< "name +delta" lines (done only)
  std::string reason;               ///< bounce/cancel reason
};

/// CANCEL (client -> server).
struct CancelFrame {
  std::uint64_t job_id = 0;
};

/// CANCEL_OK (server -> client).
struct CancelOkFrame {
  std::uint64_t job_id = 0;
  std::uint8_t cancelled = 0;  ///< 1 = removed from queue; 0 = too late
};

/// DISCONNECT (client -> server): empty payload.
struct DisconnectFrame {};

/// BYE (server -> client).
struct ByeFrame {
  std::uint64_t jobs_submitted = 0;      ///< SUBMITs accepted this session
  std::uint64_t jobs_auto_cancelled = 0; ///< queued jobs cancelled at close
};

/// ERROR (server -> client).
struct ErrorFrame {
  std::uint16_t code = 0;   ///< WireError
  std::uint8_t fatal = 0;   ///< 1 = the server closes after this frame
  std::string detail;
};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Wraps \p payload in a v1 frame header (magic, version, type, flags,
/// length, CRC). Throws std::invalid_argument when payload > kMaxPayload.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode(const HelloFrame& f);
std::vector<std::uint8_t> encode(const HelloOkFrame& f);
std::vector<std::uint8_t> encode(const SubmitFrame& f);
std::vector<std::uint8_t> encode(const SubmitOkFrame& f);
std::vector<std::uint8_t> encode(const PollFrame& f);
std::vector<std::uint8_t> encode(const JobStatusFrame& f);
std::vector<std::uint8_t> encode(const CancelFrame& f);
std::vector<std::uint8_t> encode(const CancelOkFrame& f);
std::vector<std::uint8_t> encode(const DisconnectFrame& f);
std::vector<std::uint8_t> encode(const ByeFrame& f);
std::vector<std::uint8_t> encode(const ErrorFrame& f);

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// One successfully framed (but not yet payload-decoded) frame.
struct Frame {
  std::uint8_t type = 0;  ///< raw type byte; may be unknown to this codec
  std::vector<std::uint8_t> payload;
};

/// Payload decoders: false on malformed payloads (truncated fields,
/// out-of-range enum values, trailing bytes) — the caller answers with
/// WireError::kBadPayload. Never throws, never partially fills \p out
/// observable state on failure paths that matter (a false return means
/// "discard \p out").
bool decode(const Frame& f, HelloFrame* out);
bool decode(const Frame& f, HelloOkFrame* out);
bool decode(const Frame& f, SubmitFrame* out);
bool decode(const Frame& f, SubmitOkFrame* out);
bool decode(const Frame& f, PollFrame* out);
bool decode(const Frame& f, JobStatusFrame* out);
bool decode(const Frame& f, CancelFrame* out);
bool decode(const Frame& f, CancelOkFrame* out);
bool decode(const Frame& f, DisconnectFrame* out);
bool decode(const Frame& f, ByeFrame* out);
bool decode(const Frame& f, ErrorFrame* out);

/// Incremental frame decoder over an untrusted byte stream. Feed bytes as
/// they arrive; next() yields complete frames. The first framing violation
/// (bad magic / version / length / CRC) poisons the decoder: next() returns
/// kError with the same code forever and no further bytes are interpreted.
class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< *out holds the next complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< framing violation; error() names it; decoder is poisoned
  };

  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const std::vector<std::uint8_t>& bytes) {
    feed(bytes.data(), bytes.size());
  }

  /// Extracts the next complete frame, if any.
  Result next(Frame* out);

  WireError error() const { return error_; }
  bool poisoned() const { return error_ != WireError::kNone; }
  /// Bytes buffered but not yet consumed (0 after a clean end-of-stream).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  WireError error_ = WireError::kNone;
};

/// CRC over the covered region of an already-assembled frame buffer
/// (header bytes [4, 12) + payload). \p frame must hold at least
/// kFrameHeaderSize + length bytes.
std::uint32_t frame_crc(const std::uint8_t* frame, std::size_t payload_len);

}  // namespace mrts::serve
