#pragma once
/// \file session.h
/// Session: the per-connection protocol state machine of `mrts_serve`.
/// Pure bytes-in / bytes-out over a ServeCore — no sockets, no threads —
/// so the whole request/response surface (HELLO negotiation, SUBMIT
/// admission, POLL report delivery, CANCEL, DISCONNECT accounting, every
/// error path of docs/PROTOCOL.md) is unit-testable by feeding byte
/// strings (tests/test_serve.cpp). The I/O shell (serve/server.h) owns one
/// Session per accepted connection and moves bytes between it and the
/// socket.

#include <cstdint>
#include <vector>

#include "serve/serve_core.h"
#include "serve/wire.h"

namespace mrts::serve {

class Session {
 public:
  /// \p id is the nonzero session id (job-ownership tag in the core);
  /// \p core must outlive this object.
  Session(std::uint32_t id, ServeCore* core);

  /// Feeds received bytes through the frame decoder and appends every
  /// response frame to \p out. Returns false when the connection must
  /// close after flushing \p out: a fatal framing error (poisoned
  /// decoder), or a completed DISCONNECT/BYE exchange.
  bool consume(const std::uint8_t* data, std::size_t size,
               std::vector<std::uint8_t>* out);
  bool consume(const std::vector<std::uint8_t>& bytes,
               std::vector<std::uint8_t>* out) {
    return consume(bytes.data(), bytes.size(), out);
  }

  /// Abrupt teardown (peer hung up without DISCONNECT): auto-cancels the
  /// session's queued jobs, exactly like the DISCONNECT path, so a crashed
  /// client cannot leak queue entries. Idempotent.
  void abort();

  bool closed() const { return closed_; }
  std::uint32_t id() const { return id_; }
  std::uint64_t jobs_submitted() const { return jobs_submitted_; }

 private:
  enum class State {
    kAwaitHello,  ///< nothing but HELLO is legal yet
    kReady,       ///< negotiated; SUBMIT/POLL/CANCEL/DISCONNECT accepted
    kClosed,      ///< BYE sent or fatal error; no further frames
  };

  void handle_frame(const Frame& frame, std::vector<std::uint8_t>* out);
  /// Appends an ERROR frame; fatal errors also close the session.
  void send_error(WireError code, const std::string& detail,
                  std::vector<std::uint8_t>* out);

  std::uint32_t id_;
  ServeCore* core_;
  FrameDecoder decoder_;
  State state_ = State::kAwaitHello;
  bool closed_ = false;
  std::uint64_t jobs_submitted_ = 0;
};

}  // namespace mrts::serve
