#pragma once
/// \file serve_core.h
/// ServeCore: the deterministic sim side of `mrts_serve`. One resident
/// fabric + FabricArbiter + ISE library serve an unbounded stream of tenant
/// jobs: submit() runs admission control and queues the job, run_next()
/// executes the FIFO head through the event-driven multi-tenant scheduler
/// (sim/multi_app.h) and turns its trace slice into a RunReport JSON plus a
/// counter delta. The core has zero socket, thread or wall-clock
/// dependencies — everything it produces is a deterministic function of the
/// (submit, run, cancel) operation sequence, which it also records as a
/// replayable job log (`mrts.joblog.v1`, see docs/SERVING.md). The I/O
/// shell (serve/server.h) is a thin untrusted-bytes frontend over this
/// class; tests drive the core directly.

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/fabric_manager.h"
#include "isa/ise_library.h"
#include "serve/wire.h"
#include "sim/arbiter.h"
#include "sim/machine.h"
#include "util/counters.h"
#include "util/trace.h"
#include "util/types.h"

namespace mrts::serve {

/// Shape of the resident service. The defaults are the documented
/// `mrts_serve` defaults (docs/SERVING.md); the job log header pins them so
/// replays reconstruct the same core.
struct ServeConfig {
  unsigned prcs = 6;          ///< resident fabric: FG containers
  unsigned cg = 2;            ///< resident fabric: CG fabrics
  unsigned job_classes = 4;   ///< synthetic kernel classes, SUBMIT job_class < this
  unsigned max_blocks = 64;   ///< SUBMIT blocks must be in [1, max_blocks]
  unsigned macroblocks = 24;  ///< macroblock loop length per functional block
  std::size_t max_queue = 256;  ///< queued-job ceiling (kQueueFull beyond)
  /// Finished job records kept around for late polls after their payload
  /// was delivered. A record is retired once a status() poll has seen its
  /// final state (for done jobs: once the report-carrying poll happened);
  /// the oldest retired records beyond this bound are reclaimed FIFO, after
  /// which their id polls as kUnknownJob. Bounds resident memory under an
  /// unbounded job stream; never reclaims undelivered reports or queued
  /// jobs, and never fires during a job-log replay (replays do not poll).
  std::size_t retain_jobs = 1024;
};

/// Job lifecycle inside the core. v1 runs jobs one at a time, so there is
/// no resident kRunning state — a job goes kQueued -> kDone atomically from
/// the client's point of view (WireJobState::kRunning stays reserved).
enum class JobState : std::uint8_t {
  kQueued = 0,
  kDone = 1,
  kBounced = 2,
  kCancelled = 3,
};

const char* to_string(JobState state);
WireJobState to_wire(JobState state);

/// One accepted job and everything the protocol can ask about it.
struct JobRecord {
  std::uint64_t id = 0;
  std::uint32_t owner = 0;  ///< opaque session tag (0 in replays)
  SubmitFrame spec;
  JobState state = JobState::kQueued;
  TenantId tenant = kUnownedTenant;
  std::string reason;        ///< bounce/cancel reason ("" otherwise)
  Cycles admitted_at = 0;    ///< absolute sim cycle (done jobs)
  Cycles finished_at = 0;    ///< absolute sim cycle (done jobs)
  /// Final report, delivered exactly once: the first status() after
  /// completion carries them, then they are freed (report_delivered).
  std::string report_json;     ///< obs/report_io.h JSON of the job's trace
  std::string counters_delta;  ///< "name +delta" lines, sorted by name
  bool report_delivered = false;
  /// Queued for FIFO reclaim (ServeConfig::retain_jobs): the record's final
  /// state has been polled and it holds no undelivered payload.
  bool retired = false;
};

class ServeCore {
 public:
  explicit ServeCore(const ServeConfig& config = {});
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  const ServeConfig& config() const { return config_; }

  /// Validates a SUBMIT payload against the documented field ranges
  /// (docs/PROTOCOL.md): tenant-name charset/length, share enum, weight
  /// [1, 1000], priority <= 1000000, job_class < config.job_classes,
  /// blocks [1, config.max_blocks]. False fills \p err with the
  /// client-visible kBadSpec detail.
  bool validate_spec(const SubmitFrame& spec, std::string* err) const;

  /// Admission + enqueue. \p spec must have passed validate_spec. Returns
  /// the job id (ids start at 1 and are never reused). The job is either
  /// kQueued (admitted) or kBounced immediately (record's reason carries
  /// the arbiter's verdict). Returns 0 without creating a job when the
  /// queue is full or the core is draining — the caller maps that to
  /// kQueueFull / kShuttingDown.
  std::uint64_t submit(std::uint32_t owner, const SubmitFrame& spec);

  /// Executes the FIFO head job to completion on the resident fabric and
  /// builds its report. Returns false when the queue is empty.
  bool run_next();
  /// Drains the whole queue.
  void run_all();

  /// Cancels a queued job. Ownership is enforced when \p owner is nonzero
  /// (a job may only be cancelled by the session that submitted it; replay
  /// cancels with owner 0 bypass the check). Sets \p error to kUnknownJob /
  /// kForeignJob on rejection; returns true with *cancelled = false when
  /// the job exists but already left the queue ("too late").
  bool cancel(std::uint64_t job_id, std::uint32_t owner, bool* cancelled,
              WireError* error);

  /// Cancels every queued job owned by \p owner (session teardown); returns
  /// how many were cancelled.
  std::uint64_t cancel_all(std::uint32_t owner);

  /// Job lookup (nullptr for unknown ids).
  const JobRecord* job(std::uint64_t job_id) const;
  /// Queue position of a queued job: 0 = next to run.
  std::uint64_t queue_position(std::uint64_t job_id) const;

  /// Builds the JOB_STATUS answer for a poll. The first poll of a finished
  /// job carries the report (report_included = 1) and frees it; later polls
  /// repeat the metadata only. False when the job id is unknown.
  bool status(std::uint64_t job_id, JobStatusFrame* out);

  /// Stops accepting submissions (kShuttingDown); queued jobs still run.
  void begin_drain() { draining_ = true; }
  bool draining() const { return draining_; }

  std::size_t queue_depth() const { return queue_.size(); }
  /// Ids handed out so far (ids are dense from 1, never reused). Counts
  /// records even after the retention GC reclaimed them.
  std::size_t jobs_created() const {
    return static_cast<std::size_t>(next_job_id_ - 1);
  }
  /// Records currently resident in memory; bounded by the queue depth plus
  /// undelivered results plus ServeConfig::retain_jobs retired records.
  std::size_t resident_jobs() const { return jobs_.size(); }
  /// Lifetime per-final-state tallies (survive record reclamation).
  std::uint64_t jobs_done() const { return done_; }
  std::uint64_t jobs_bounced() const { return bounced_; }
  std::uint64_t jobs_cancelled() const { return cancelled_; }
  Cycles clock() const { return clock_; }
  const FabricArbiter& arbiter() const { return machine_->arbiter(); }

  /// The operation log: header line plus one line per submit/run/cancel, in
  /// execution order (`mrts.joblog.v1`, docs/SERVING.md). Feeding it to
  /// replay_job_log() reproduces every report byte-identically.
  const std::vector<std::string>& job_log() const { return log_; }

 private:
  struct JobWorkload;

  void run_job(JobRecord& job);
  void log_submit(const JobRecord& job);
  /// Marks a polled terminal record for FIFO reclaim and evicts the oldest
  /// retired records beyond ServeConfig::retain_jobs.
  void retire(JobRecord& job);

  ServeConfig config_;
  bool draining_ = false;
  Cycles clock_ = 0;  ///< logical sim clock, advances by each job's span

  IseLibrary library_;
  std::vector<KernelId> kernels_;  ///< one per job class
  // recorder_/counters_ before machine_: the machine's fabric holds
  // pointers to them once the first job attaches observability.
  TraceRecorder recorder_;
  CounterRegistry counters_;
  /// The resident topology (sim/machine.h, arbitrated tenancy): owns the
  /// shared fabric + arbiter and builds the per-job MRts instances.
  std::unique_ptr<Machine> machine_;

  std::map<std::uint64_t, JobRecord> jobs_;
  std::deque<std::uint64_t> queue_;
  std::deque<std::uint64_t> retired_;  ///< reclaim order (oldest first)
  std::uint64_t next_job_id_ = 1;
  std::uint64_t done_ = 0;
  std::uint64_t bounced_ = 0;
  std::uint64_t cancelled_ = 0;
  std::vector<std::string> log_;
};

/// One job's outcome as seen by a replay consumer.
struct ReplayJob {
  std::uint64_t id = 0;
  JobState state = JobState::kDone;
  std::string reason;
  Cycles admitted_at = 0;
  Cycles finished_at = 0;
  std::string report_json;
  std::string counters_delta;
};

struct ReplayResult {
  bool ok = false;
  std::string error;  ///< parse/config error when !ok
  ServeConfig config;
  std::vector<ReplayJob> jobs;  ///< ascending job id
};

/// Replays a `mrts.joblog.v1` stream through a fresh ServeCore built from
/// the log's header config and returns every job's final state + report.
/// Deterministic: the same log produces byte-identical reports, which is
/// what the serve-smoke CI job asserts against the reports the live server
/// streamed to its clients.
ReplayResult replay_job_log(std::istream& in);

/// Canonical one-job-per-record text form used to compare live-served
/// reports against a replay (CI's byte-identity check): a "== job <id>
/// <state>" header line, the bounce/cancel reason when present, then the
/// report JSON and counter-delta blocks.
void write_replay_record(std::ostream& os, const ReplayJob& job);

}  // namespace mrts::serve
