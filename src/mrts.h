#pragma once
/// \file mrts.h
/// Umbrella header: the whole public API of the mRTS library.
/// Fine-grained includes (e.g. "rts/mrts.h") keep compile times lower; this
/// header is for quick starts and example code.

// Architecture model
#include "arch/cg_fabric.h"
#include "arch/data_path.h"
#include "arch/fabric_manager.h"
#include "arch/fg_fabric.h"
#include "arch/interconnect.h"
#include "arch/reconfig_controller.h"
#include "arch/scratchpad.h"
#include "arch/tenant.h"

// Instruction-set simulators
#include "cgsim/cg_assembler.h"
#include "cgsim/cg_executor.h"
#include "cgsim/cg_kernel_programs.h"
#include "riscsim/assembler.h"
#include "riscsim/cpu.h"
#include "riscsim/kernel_programs.h"

// ISE model
#include "isa/ise.h"
#include "isa/ise_builder.h"
#include "isa/ise_identify.h"
#include "isa/ise_library.h"
#include "isa/kernel.h"
#include "isa/library_io.h"
#include "isa/trigger.h"

// Run-time systems
#include "baselines/morpheus4s_rts.h"
#include "baselines/offline_optimal_rts.h"
#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "rts/ecu.h"
#include "rts/migration.h"
#include "rts/mpu.h"
#include "rts/mrts.h"
#include "rts/snapshot.h"
#include "rts/profit.h"
#include "rts/reconfig_plan.h"
#include "rts/rts_interface.h"
#include "rts/selector_heuristic.h"
#include "rts/selector_optimal.h"

// Simulation & workloads
#include "sim/app_simulator.h"
#include "sim/arbiter.h"
#include "sim/cmp.h"
#include "sim/energy.h"
#include "sim/fb_simulator.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/iss_bridge.h"
#include "sim/multi_app.h"
#include "sim/schedule.h"
#include "workload/content_model.h"
#include "workload/deblocking_case_study.h"
#include "workload/h264_app.h"
#include "workload/sdr_app.h"
#include "workload/workload_gen.h"

// Observability (flight recorder + counters + trace analysis)
#include "obs/analysis.h"
#include "obs/critical_path.h"
#include "obs/cycle_accounting.h"
#include "obs/occupancy.h"
#include "obs/report_io.h"
#include "obs/run_report.h"
#include "util/counters.h"
#include "util/trace.h"
