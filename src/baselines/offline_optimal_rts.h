#pragma once
/// \file offline_optimal_rts.h
/// Offline-optimal baseline (Section 5.2): optimal ISE selection for the
/// tightly coupled multi-grained fabric, computed *offline* per functional
/// block from profiled average trigger values. The fabric is reconfigured
/// when the application enters a block (so run-time replacement between
/// blocks still happens and intermediate ISEs are usable while loading),
/// but the selection never adapts to the actual per-instance execution
/// counts and there is no monoCG-Extension. This is the strongest static
/// competitor: the paper reports mRTS is on average 1.45x faster because it
/// reacts to the run-time variation the profile averages away.

#include <string>
#include <unordered_map>
#include <vector>

#include "arch/fabric_manager.h"
#include "isa/ise_library.h"
#include "rts/ecu.h"
#include "rts/rts_interface.h"
#include "rts/selector_optimal.h"
#include "util/types.h"

namespace mrts {

class OfflineOptimalRts final : public RuntimeSystem {
 public:
  OfflineOptimalRts(const IseLibrary& lib, unsigned num_cg_fabrics,
                    unsigned num_prcs, std::vector<BlockProfile> profile);

  std::string name() const override { return "Offline-optimal"; }
  SelectionOutcome on_trigger(const TriggerInstruction& programmed,
                              Cycles now) override;
  ExecOutcome execute_kernel(KernelId k, Cycles now) override;
  Cycles execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                     std::size_t n, Cycles gap_total,
                     std::uint64_t* impl_executions, Cycles* impl_cycles,
                     Cycles* first_exec_start) override;
  Cycles execute_events(const ExecEvent* events, const ExecRun* runs,
                        std::size_t num_runs, Cycles cursor,
                        std::uint64_t* impl_executions, Cycles* impl_cycles,
                        ObservationSink& obs) override;
  void on_block_end(const BlockObservation& observed, Cycles now) override;
  void reset() override;

  /// Precomputed selection of one block (empty vector if unknown block).
  const std::vector<IsePlacementRequest>& selection_for(
      FunctionalBlockId fb) const;

  /// Unified lifecycle API: fans out to the ECU and fabric.
  void attach_observability(TraceRecorder* trace,
                            CounterRegistry* counters) override {
    ecu_.attach_observability(trace, counters);
    fabric_.attach_observability(trace, counters);
  }
  bool attach_fault_model(FaultModel* model) override {
    fabric_.attach_fault_model(model);
    return true;
  }

  const FabricManager& fabric() const { return fabric_; }

 private:
  const IseLibrary* lib_;
  FabricManager fabric_;
  Ecu ecu_;
  std::unordered_map<std::uint32_t, std::vector<IsePlacementRequest>>
      per_block_;
  std::vector<IsePlacementRequest> empty_;
};

}  // namespace mrts
