#include "baselines/risc_only_rts.h"

// RiscOnlyRts is fully inline; this translation unit anchors the vtable.

namespace mrts {}  // namespace mrts
