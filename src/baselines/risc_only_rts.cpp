#include "baselines/risc_only_rts.h"

#include "sim/schedule.h"

namespace mrts {

Cycles RiscOnlyRts::execute_run(KernelId k, Cycles cursor,
                                const ExecEvent* events, std::size_t n,
                                Cycles gap_total,
                                std::uint64_t* impl_executions,
                                Cycles* impl_cycles,
                                Cycles* first_exec_start) {
  const Cycles latency = lib_->kernel(k).sw_latency;
  const auto risc = static_cast<std::size_t>(ImplKind::kRisc);
  *first_exec_start = cursor + events[0].gap_before;
  impl_executions[risc] += n;
  impl_cycles[risc] += static_cast<Cycles>(n) * latency;
  return cursor + gap_total + static_cast<Cycles>(n) * latency;
}

}  // namespace mrts
