#pragma once
/// \file rispp_rts.h
/// RISPP-like run-time system [6], extended to CG fabrics for a direct
/// comparison (Section 5.2). Like mRTS it selects per functional block and
/// exploits intermediate ISEs, but
///
///  * its cost function is tuned to the ms-scale reconfiguration of the FG
///    fabric: every data path — CG included — is priced at the FG
///    reconfiguration cost, so the microsecond availability of CG/MG
///    variants is invisible to the selection;
///  * it has no monoCG-Extension (the concept is introduced by mRTS).

#include <string>

#include "arch/fabric_manager.h"
#include "isa/ise_library.h"
#include "rts/ecu.h"
#include "rts/mpu.h"
#include "rts/rts_interface.h"
#include "rts/selector_heuristic.h"
#include "util/types.h"

namespace mrts {

struct RisppConfig {
  Mpu::Config mpu;  ///< RISPP is self-adaptive as well [12]
  SelectorCostModel selector_cost;
  /// Per-data-path reconfiguration cost assumed by the cost function
  /// (defaults to the FG data-path cost, ~1.2 ms).
  Cycles assumed_reconfig_cycles =
      fg_reconfig_cycles_for_bytes(kDefaultFgBitstreamBytes);
};

class RisppRts final : public RuntimeSystem {
 public:
  RisppRts(const IseLibrary& lib, unsigned num_cg_fabrics, unsigned num_prcs,
           RisppConfig config = {});

  std::string name() const override { return "RISPP-like"; }
  SelectionOutcome on_trigger(const TriggerInstruction& programmed,
                              Cycles now) override;
  ExecOutcome execute_kernel(KernelId k, Cycles now) override;
  Cycles execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                     std::size_t n, Cycles gap_total,
                     std::uint64_t* impl_executions, Cycles* impl_cycles,
                     Cycles* first_exec_start) override;
  Cycles execute_events(const ExecEvent* events, const ExecRun* runs,
                        std::size_t num_runs, Cycles cursor,
                        std::uint64_t* impl_executions, Cycles* impl_cycles,
                        ObservationSink& obs) override;
  void on_block_end(const BlockObservation& observed, Cycles now) override;
  void reset() override;

  /// Unified lifecycle API: fans out to the MPU, selector, ECU and fabric.
  void attach_observability(TraceRecorder* trace,
                            CounterRegistry* counters) override {
    mpu_.attach_observability(trace, counters);
    selector_.attach_observability(trace, counters);
    ecu_.attach_observability(trace, counters);
    fabric_.attach_observability(trace, counters);
  }
  bool attach_fault_model(FaultModel* model) override {
    fabric_.attach_fault_model(model);
    return true;
  }

  const FabricManager& fabric() const { return fabric_; }
  const Ecu& ecu() const { return ecu_; }

 private:
  const IseLibrary* lib_;
  RisppConfig config_;
  FabricManager fabric_;
  Mpu mpu_;
  HeuristicSelector selector_;
  Ecu ecu_;
};

}  // namespace mrts
