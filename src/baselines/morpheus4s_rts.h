#pragma once
/// \file morpheus4s_rts.h
/// Morpheus [8] / 4S [7]-like baseline (Section 5.2): loosely coupled
/// multi-grained architectures whose fabric-assignment decision is made at
/// *compile/task* time:
///
///  * one combined offline selection for all functional blocks of the
///    application (computed from a profiling run),
///  * each kernel is mapped entirely to either the CG or the FG fabric —
///    no multi-grained ISE within a functional block,
///  * no run-time replacement, no intermediate ISEs (a kernel only runs
///    accelerated once its complete ISE is configured), no monoCG.
///
/// The offline selection itself is optimal for its restricted model: a
/// two-resource knapsack over per-kernel single-grain options, solved by
/// dynamic programming over the (PRC, CG-fabric) budget.

#include <string>
#include <vector>

#include "arch/fabric_manager.h"
#include "isa/ise_library.h"
#include "rts/ecu.h"
#include "rts/rts_interface.h"
#include "util/types.h"

namespace mrts {

class Morpheus4sRts final : public RuntimeSystem {
 public:
  Morpheus4sRts(const IseLibrary& lib, unsigned num_cg_fabrics,
                unsigned num_prcs, std::vector<BlockProfile> profile);

  std::string name() const override { return "Morpheus+4S-like"; }
  SelectionOutcome on_trigger(const TriggerInstruction& programmed,
                              Cycles now) override;
  ExecOutcome execute_kernel(KernelId k, Cycles now) override;
  Cycles execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                     std::size_t n, Cycles gap_total,
                     std::uint64_t* impl_executions, Cycles* impl_cycles,
                     Cycles* first_exec_start) override;
  Cycles execute_events(const ExecEvent* events, const ExecRun* runs,
                        std::size_t num_runs, Cycles cursor,
                        std::uint64_t* impl_executions, Cycles* impl_cycles,
                        ObservationSink& obs) override;
  void on_block_end(const BlockObservation& observed, Cycles now) override;
  void reset() override;

  /// The static kernel -> ISE mapping chosen offline (for tests).
  const std::vector<IsePlacementRequest>& static_selection() const {
    return static_selection_;
  }

  /// Unified lifecycle API: fans out to the ECU and fabric.
  void attach_observability(TraceRecorder* trace,
                            CounterRegistry* counters) override {
    ecu_.attach_observability(trace, counters);
    fabric_.attach_observability(trace, counters);
  }
  bool attach_fault_model(FaultModel* model) override {
    fabric_.attach_fault_model(model);
    return true;
  }

  const FabricManager& fabric() const { return fabric_; }

 private:
  void compute_static_selection(const std::vector<BlockProfile>& profile);

  const IseLibrary* lib_;
  FabricManager fabric_;
  Ecu ecu_;
  std::vector<IsePlacementRequest> static_selection_;
  std::vector<IsePlacement> placements_;
  bool installed_ = false;
};

}  // namespace mrts
