#pragma once
/// \file risc_only_rts.h
/// Reference "system": every kernel executes in RISC mode on the core
/// processor. This is the first bar of Fig. 8 and the denominator of every
/// speedup in Fig. 10; it is also used as the deterministic profiling
/// vehicle for the offline baselines.

#include <string>

#include "isa/ise_library.h"
#include "rts/rts_interface.h"
#include "util/types.h"

namespace mrts {

class RiscOnlyRts final : public RuntimeSystem {
 public:
  explicit RiscOnlyRts(const IseLibrary& lib) : lib_(&lib) {}

  std::string name() const override { return "RISC-only"; }

  SelectionOutcome on_trigger(const TriggerInstruction& programmed,
                              Cycles now) override {
    (void)programmed;
    (void)now;
    return SelectionOutcome{};
  }

  ExecOutcome execute_kernel(KernelId k, Cycles now) override {
    (void)now;
    return ExecOutcome{lib_->kernel(k).sw_latency, ImplKind::kRisc};
  }

  /// RISC latency is a per-kernel constant, so a whole run commits in O(1).
  Cycles execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                     std::size_t n, Cycles gap_total,
                     std::uint64_t* impl_executions, Cycles* impl_cycles,
                     Cycles* first_exec_start) override;

  void on_block_end(const BlockObservation& observed, Cycles now) override {
    (void)observed;
    (void)now;
  }

  void reset() override {}

 private:
  const IseLibrary* lib_;
};

}  // namespace mrts
