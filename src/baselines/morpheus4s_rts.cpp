#include "baselines/morpheus4s_rts.h"

#include <algorithm>
#include <map>

namespace mrts {

Morpheus4sRts::Morpheus4sRts(const IseLibrary& lib, unsigned num_cg_fabrics,
                             unsigned num_prcs,
                             std::vector<BlockProfile> profile)
    : lib_(&lib),
      fabric_(num_cg_fabrics, num_prcs, &lib.data_paths()),
      ecu_(lib, fabric_,
           Ecu::Config{/*use_intermediates=*/false,
                       /*use_cross_coverage=*/false,
                       /*use_mono_cg=*/false}) {
  compute_static_selection(profile);
}

void Morpheus4sRts::compute_static_selection(
    const std::vector<BlockProfile>& profile) {
  // Total expected executions of each kernel over the whole application.
  std::map<std::uint32_t, double> weight;
  for (const auto& block : profile) {
    for (const auto& entry : block.average.entries) {
      weight[raw(entry.kernel)] +=
          entry.expected_executions * block.invocations;
    }
  }

  // Per-kernel single-grain options: (ise, gain, fg units, cg units).
  struct Option {
    IseId ise;
    double gain;
    unsigned fg;
    unsigned cg;
  };
  struct KernelChoices {
    KernelId kernel;
    std::vector<Option> options;
  };
  std::vector<KernelChoices> kernels;
  for (const auto& [kid, w] : weight) {
    const Kernel& k = lib_->kernel(KernelId{kid});
    KernelChoices choices;
    choices.kernel = k.id;
    for (IseId ise_id : k.ises) {
      const IseVariant& v = lib_->ise(ise_id);
      if (v.is_multi_grained()) continue;  // loosely coupled: no MG-ISE
      if (!v.fits(fabric_.num_prcs(), fabric_.num_cg_fabrics())) continue;
      const double gain =
          w * static_cast<double>(v.risc_latency() - v.full_latency());
      choices.options.push_back({ise_id, gain, v.fg_units, v.cg_units});
    }
    if (!choices.options.empty()) kernels.push_back(std::move(choices));
  }

  // Two-resource knapsack by dynamic programming over (prc, cg) budgets.
  const unsigned P = fabric_.num_prcs();
  const unsigned C = fabric_.num_cg_fabrics();
  const std::size_t states = static_cast<std::size_t>(P + 1) * (C + 1);
  auto idx = [C](unsigned p, unsigned c) {
    return static_cast<std::size_t>(p) * (C + 1) + c;
  };
  std::vector<double> best(states, 0.0);
  // choice[k][state]: option index + 1 chosen for kernel k at this state
  // (0 = none).
  std::vector<std::vector<std::uint16_t>> choice(
      kernels.size(), std::vector<std::uint16_t>(states, 0));

  for (std::size_t k = 0; k < kernels.size(); ++k) {
    std::vector<double> next = best;  // option "none" keeps the value
    for (unsigned p = 0; p <= P; ++p) {
      for (unsigned c = 0; c <= C; ++c) {
        for (std::size_t o = 0; o < kernels[k].options.size(); ++o) {
          const Option& opt = kernels[k].options[o];
          if (opt.fg > p || opt.cg > c) continue;
          const double candidate =
              best[idx(p - opt.fg, c - opt.cg)] + opt.gain;
          if (candidate > next[idx(p, c)]) {
            next[idx(p, c)] = candidate;
            choice[k][idx(p, c)] = static_cast<std::uint16_t>(o + 1);
          }
        }
      }
    }
    best = std::move(next);
  }

  // Backtrack from the full budget.
  unsigned p = P;
  unsigned c = C;
  for (std::size_t k = kernels.size(); k > 0; --k) {
    const std::uint16_t picked = choice[k - 1][idx(p, c)];
    if (picked == 0) continue;
    const Option& opt = kernels[k - 1].options[picked - 1];
    const IseVariant& v = lib_->ise(opt.ise);
    static_selection_.push_back({opt.ise, kernels[k - 1].kernel, v.data_paths});
    p -= opt.fg;
    c -= opt.cg;
  }
  std::reverse(static_selection_.begin(), static_selection_.end());
}

SelectionOutcome Morpheus4sRts::on_trigger(const TriggerInstruction& programmed,
                                           Cycles now) {
  (void)programmed;
  if (!installed_) {
    // Task-level decision: the fabric is configured once, at task start.
    placements_ = fabric_.install(static_selection_, now);
    installed_ = true;
  }
  ecu_.begin_block(placements_, now);
  SelectionOutcome outcome;  // decision was made offline: no overhead
  for (const auto& req : static_selection_) {
    SelectedIse sel;
    sel.kernel = req.kernel;
    sel.ise = req.ise;
    outcome.selection.selected.push_back(std::move(sel));
  }
  return outcome;
}

ExecOutcome Morpheus4sRts::execute_kernel(KernelId k, Cycles now) {
  return ecu_.execute(k, now);
}

Cycles Morpheus4sRts::execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                                  std::size_t n, Cycles gap_total,
                                  std::uint64_t* impl_executions,
                                  Cycles* impl_cycles,
                                  Cycles* first_exec_start) {
  return ecu_.execute_run(k, cursor, events, n, gap_total, impl_executions,
                          impl_cycles, first_exec_start);
}

Cycles Morpheus4sRts::execute_events(const ExecEvent* events, const ExecRun* runs,
                                   std::size_t num_runs, Cycles cursor,
                                   std::uint64_t* impl_executions,
                                   Cycles* impl_cycles, ObservationSink& obs) {
  return ecu_.execute_events(events, runs, num_runs, cursor, impl_executions,
                             impl_cycles, obs);
}

void Morpheus4sRts::on_block_end(const BlockObservation& observed,
                                 Cycles now) {
  (void)observed;
  (void)now;  // no run-time monitoring in this baseline
}

void Morpheus4sRts::reset() {
  fabric_.reset();
  ecu_.reset();
  installed_ = false;
  placements_.clear();
}

}  // namespace mrts
