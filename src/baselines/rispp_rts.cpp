#include "baselines/rispp_rts.h"

#include "rts/reconfig_plan.h"

namespace mrts {

RisppRts::RisppRts(const IseLibrary& lib, unsigned num_cg_fabrics,
                   unsigned num_prcs, RisppConfig config)
    : lib_(&lib),
      config_(config),
      fabric_(num_cg_fabrics, num_prcs, &lib.data_paths()),
      mpu_(config.mpu),
      selector_(lib, config.selector_cost),
      ecu_(lib, fabric_,
           Ecu::Config{/*use_intermediates=*/true,
                       /*use_cross_coverage=*/true,
                       /*use_mono_cg=*/false}) {}

SelectionOutcome RisppRts::on_trigger(const TriggerInstruction& programmed,
                                      Cycles now) {
  const TriggerInstruction refined = mpu_.refine(programmed);

  // The FG-tuned cost function: the planner prices every data path at the
  // FG reconfiguration cost, hiding the microsecond CG loads from the
  // profit estimation. (The *hardware* still reconfigures at real speed —
  // only the decision model is skewed.)
  ReconfigPlanner planner(lib_->data_paths(), fabric_, now);
  planner.set_uniform_reconfig_cycles(config_.assumed_reconfig_cycles);
  SelectionResult selection = selector_.select(refined, planner);

  std::vector<IsePlacementRequest> requests;
  requests.reserve(selection.selected.size());
  for (const auto& sel : selection.selected) {
    requests.push_back({sel.ise, sel.kernel, lib_->ise(sel.ise).data_paths});
  }
  const std::vector<IsePlacement> placements = fabric_.install(requests, now);
  ecu_.begin_block(placements, now);

  SelectionOutcome outcome;
  outcome.blocking_overhead = config_.selector_cost.cost(
      selection.first_round_evaluations, selection.first_round_scans);
  outcome.selection = std::move(selection);
  return outcome;
}

ExecOutcome RisppRts::execute_kernel(KernelId k, Cycles now) {
  return ecu_.execute(k, now);
}

Cycles RisppRts::execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                             std::size_t n, Cycles gap_total,
                             std::uint64_t* impl_executions,
                             Cycles* impl_cycles,
                             Cycles* first_exec_start) {
  return ecu_.execute_run(k, cursor, events, n, gap_total, impl_executions,
                          impl_cycles, first_exec_start);
}

Cycles RisppRts::execute_events(const ExecEvent* events, const ExecRun* runs,
                              std::size_t num_runs, Cycles cursor,
                              std::uint64_t* impl_executions,
                              Cycles* impl_cycles, ObservationSink& obs) {
  return ecu_.execute_events(events, runs, num_runs, cursor, impl_executions,
                             impl_cycles, obs);
}

void RisppRts::on_block_end(const BlockObservation& observed, Cycles now) {
  (void)now;
  mpu_.observe(observed);
}

void RisppRts::reset() {
  fabric_.reset();
  mpu_.reset();
  ecu_.reset();
}

}  // namespace mrts
