#include "baselines/offline_optimal_rts.h"

#include "rts/reconfig_plan.h"

namespace mrts {

OfflineOptimalRts::OfflineOptimalRts(const IseLibrary& lib,
                                     unsigned num_cg_fabrics,
                                     unsigned num_prcs,
                                     std::vector<BlockProfile> profile)
    : lib_(&lib),
      fabric_(num_cg_fabrics, num_prcs, &lib.data_paths()),
      ecu_(lib, fabric_,
           Ecu::Config{/*use_intermediates=*/true,
                       /*use_cross_coverage=*/true,
                       /*use_mono_cg=*/false}) {
  // Offline phase: optimal selection per block against an empty fabric with
  // the machine's capacities (the profile cannot know what happens to be
  // loaded at run time).
  OptimalSelector optimal(lib);
  for (const auto& block : profile) {
    ReconfigPlanner planner(lib.data_paths(), num_prcs, num_cg_fabrics,
                            /*now=*/0);
    const SelectionResult result = optimal.select(block.average, planner);
    std::vector<IsePlacementRequest> requests;
    requests.reserve(result.selected.size());
    for (const auto& sel : result.selected) {
      requests.push_back({sel.ise, sel.kernel, lib.ise(sel.ise).data_paths});
    }
    per_block_[raw(block.functional_block)] = std::move(requests);
  }
}

const std::vector<IsePlacementRequest>& OfflineOptimalRts::selection_for(
    FunctionalBlockId fb) const {
  const auto it = per_block_.find(raw(fb));
  return it == per_block_.end() ? empty_ : it->second;
}

SelectionOutcome OfflineOptimalRts::on_trigger(
    const TriggerInstruction& programmed, Cycles now) {
  const auto& requests = selection_for(programmed.functional_block);
  const std::vector<IsePlacement> placements = fabric_.install(requests, now);
  ecu_.begin_block(placements, now);

  SelectionOutcome outcome;  // decision was made offline: no overhead
  for (const auto& req : requests) {
    SelectedIse sel;
    sel.kernel = req.kernel;
    sel.ise = req.ise;
    outcome.selection.selected.push_back(std::move(sel));
  }
  return outcome;
}

ExecOutcome OfflineOptimalRts::execute_kernel(KernelId k, Cycles now) {
  return ecu_.execute(k, now);
}

Cycles OfflineOptimalRts::execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                                      std::size_t n, Cycles gap_total,
                                      std::uint64_t* impl_executions,
                                      Cycles* impl_cycles,
                                      Cycles* first_exec_start) {
  return ecu_.execute_run(k, cursor, events, n, gap_total, impl_executions,
                          impl_cycles, first_exec_start);
}

Cycles OfflineOptimalRts::execute_events(const ExecEvent* events, const ExecRun* runs,
                                       std::size_t num_runs, Cycles cursor,
                                       std::uint64_t* impl_executions,
                                       Cycles* impl_cycles, ObservationSink& obs) {
  return ecu_.execute_events(events, runs, num_runs, cursor, impl_executions,
                             impl_cycles, obs);
}

void OfflineOptimalRts::on_block_end(const BlockObservation& observed,
                                     Cycles now) {
  (void)observed;
  (void)now;  // static scheme: nothing to learn
}

void OfflineOptimalRts::reset() {
  fabric_.reset();
  ecu_.reset();
}

}  // namespace mrts
