#include "rts/selector_heuristic.h"

#include <algorithm>

#include "util/trace.h"

namespace mrts {

HeuristicSelector::HeuristicSelector(const IseLibrary& lib,
                                     SelectorCostModel cost,
                                     SelectionPolicy policy,
                                     ProfitModel profit_model)
    : lib_(&lib), cost_(cost), policy_(policy), profit_model_(profit_model) {}

ProfitResult evaluate_candidate(const IseLibrary& lib, IseId ise_id,
                                const TriggerEntry& entry,
                                const ReconfigPlanner& planner,
                                const ProfitModel& model) {
  const IseVariant& ise = lib.ise(ise_id);
  const std::vector<Cycles> ready_abs = planner.plan(ise.data_paths);
  ProfitInputs in;
  in.ise = &ise;
  in.model = model;
  in.expected_executions = entry.expected_executions;
  in.time_to_first = entry.time_to_first;
  in.time_between = entry.time_between;
  in.ready_rel.reserve(ready_abs.size());
  for (Cycles t : ready_abs) {
    in.ready_rel.push_back(t > planner.now() ? t - planner.now() : 0);
  }
  return compute_profit(in);
}

double evaluate_candidate_profit(const IseLibrary& lib, IseId ise_id,
                                 const TriggerEntry& entry,
                                 const ReconfigPlanner& planner,
                                 const ProfitModel& model, ProfitCache* cache,
                                 EvalScratch& scratch) {
  const IseVariant& ise = lib.ise(ise_id);
  ProfitCache::Key key;
  const bool cacheable =
      cache != nullptr &&
      ProfitCache::make_key(key, ise_id, ise, entry, planner, model);
  if (cacheable) {
    if (const double* hit = cache->lookup(key)) return *hit;
  } else if (cache != nullptr) {
    cache->note_uncacheable();
  }

  planner.plan_into(ise.data_paths, scratch.ready_abs);
  ProfitInputs& in = scratch.inputs;
  in.ise = &ise;
  in.model = model;
  in.expected_executions = entry.expected_executions;
  in.time_to_first = entry.time_to_first;
  in.time_between = entry.time_between;
  in.ready_rel.clear();
  in.ready_rel.reserve(scratch.ready_abs.size());
  for (Cycles t : scratch.ready_abs) {
    in.ready_rel.push_back(t > planner.now() ? t - planner.now() : 0);
  }
  const double profit = compute_profit_value(in);
  if (cacheable) cache->insert(key, profit);
  return profit;
}

SelectionResult HeuristicSelector::select(const TriggerInstruction& ti,
                                          ReconfigPlanner planner) const {
  return select_impl(ti, std::move(planner), nullptr);
}

SelectionResult HeuristicSelector::select_with_trace(
    const TriggerInstruction& ti, ReconfigPlanner planner,
    std::string& trace) const {
  return select_impl(ti, std::move(planner), &trace);
}

SelectionResult HeuristicSelector::select_impl(const TriggerInstruction& ti,
                                               ReconfigPlanner planner,
                                               std::string* trace) const {
  SelectionResult result;
  unsigned round = 0;
  ProfitCache* cache = tuning_.memoize_profits ? cache_ : nullptr;
  if (cache != nullptr) cache->begin_select();
  // Baseline tuning (the bench's A/B reference) keeps the historical
  // allocate-per-candidate evaluation; any enabled optimization switches to
  // the scratch-buffer fast path. The profits are bit-identical either way.
  const bool fast_eval =
      cache != nullptr || tuning_.incremental_planner;
  EvalScratch scratch;
  // The log lambda is only ever invoked behind `if (trace != nullptr)` —
  // the guard must sit at the call site so the argument's string
  // concatenation is never evaluated on the (hot) untraced path.
  auto log = [trace](const std::string& line) {
    trace->append(line);
    trace->push_back('\n');
  };

  // Step-1: candidate list.
  struct Candidate {
    KernelId kernel;
    IseId ise;
    const TriggerEntry* entry;
  };
  std::vector<Candidate> candidates;
  for (const auto& entry : ti.entries) {
    const Kernel& k = lib_->kernel(entry.kernel);
    for (IseId ise : k.ises) candidates.push_back({k.id, ise, &entry});
  }

  if (trace != nullptr)
    log("candidate list: " + std::to_string(candidates.size()) + " ISEs of " +
      std::to_string(ti.entries.size()) + " kernels, budget " +
      std::to_string(planner.free_prcs()) + " PRC + " +
      std::to_string(planner.free_cg()) + " CG");

  bool first_round = true;
  while (!candidates.empty()) {
    ++round;
    if (trace != nullptr) log("round " + std::to_string(round) + ":");
    // Step-2: prune non-fitting and covered candidates (in place — the
    // survivors keep their relative order and no per-round vector is
    // allocated).
    std::size_t keep = 0;
    for (const auto& c : candidates) {
      ++result.candidates_scanned;
      if (first_round) ++result.first_round_scans;
      const IseVariant& v = lib_->ise(c.ise);
      // (b) before (a): an ISE fully covered by already-selected data paths
      // needs no fabric of its own, so it is free regardless of the budget.
      if (planner.covered_by_committed(v.data_paths)) {
        result.covered.emplace_back(c.kernel, c.ise);
        if (trace != nullptr)
          log("  " + v.name + ": covered by selected data paths (free)");
        continue;
      }
      if (!planner.fits(v.fg_units, v.cg_units)) {
        if (trace != nullptr)
          log("  " + v.name + ": does not fit remaining fabric");
        continue;
      }
      candidates[keep++] = c;
    }
    candidates.resize(keep);
    if (candidates.empty()) break;

    // Step-3: profit of each candidate; pick the maximum of the policy's
    // ranking key. Ties go to the variant with the smaller fabric demand,
    // then the smaller id (the deterministic order keeps experiments
    // reproducible).
    std::size_t best = 0;
    double best_profit = -1.0;
    double best_key = -1.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double profit =
          fast_eval
              ? evaluate_candidate_profit(*lib_, candidates[i].ise,
                                          *candidates[i].entry, planner,
                                          profit_model_, cache, scratch)
              : evaluate_candidate(*lib_, candidates[i].ise,
                                   *candidates[i].entry, planner,
                                   profit_model_)
                    .profit;
      ++result.profit_evaluations;
      if (first_round) ++result.first_round_evaluations;
      if (trace_ != nullptr) {
        trace_->record({TraceEventKind::kSelectorEval, kTrackSelector,
                        planner.now(), 0, raw(candidates[i].kernel),
                        raw(candidates[i].ise), profit,
                        static_cast<double>(round)});
      }
      const IseVariant& v = lib_->ise(candidates[i].ise);
      const IseVariant& b = lib_->ise(candidates[best].ise);
      double key = profit;
      if (policy_ == SelectionPolicy::kMaxProfitDensity) {
        key = profit / static_cast<double>(v.fg_units + v.cg_units);
      }
      const bool better =
          key > best_key ||
          (key == best_key &&
           (v.fg_units + v.cg_units < b.fg_units + b.cg_units ||
            (v.fg_units + v.cg_units == b.fg_units + b.cg_units &&
             raw(candidates[i].ise) < raw(candidates[best].ise))));
      if (better) {
        best = i;
        best_key = key;
        best_profit = profit;
      }
      if (trace != nullptr)
        log("  " + v.name + ": profit " +
          std::to_string(static_cast<long long>(profit)) + " (" +
          std::to_string(v.fg_units) + " PRC + " + std::to_string(v.cg_units) +
          " CG)");
    }

    // An ISE whose expected profit is not positive can never pay for its
    // reconfiguration within the forecast horizon; installing it would only
    // occupy fabric and clog the (serialized) FG reconfiguration port for
    // the following functional blocks. Since the maximum is non-positive,
    // every remaining candidate is equally hopeless: stop.
    if (best_profit <= 0.0) {
      if (trace != nullptr)
        log("  all remaining candidates have non-positive profit: stop");
      break;
    }

    // Step-4: commit the winner, drop all other ISEs of that kernel.
    const Candidate chosen = candidates[best];
    const IseVariant& v = lib_->ise(chosen.ise);
    SelectedIse sel;
    sel.kernel = chosen.kernel;
    sel.ise = chosen.ise;
    sel.profit = best_profit;
    sel.instance_ready = planner.commit(v.data_paths);
    result.total_profit += best_profit;
    if (trace_ != nullptr) {
      trace_->record({TraceEventKind::kSelectorPick, kTrackSelector,
                      planner.now(), 0, raw(chosen.kernel), raw(chosen.ise),
                      best_profit, static_cast<double>(round)});
    }
    if (trace != nullptr)
      log("  -> selected " + lib_->ise(chosen.ise).name + " for kernel " +
        lib_->kernel(chosen.kernel).name);
    result.selected.push_back(std::move(sel));

    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&chosen](const Candidate& c) {
                         return c.kernel == chosen.kernel;
                       }),
        candidates.end());
    first_round = false;
  }

  if (cache != nullptr) cache->flush(counters_, trace_, planner.now());
  result.overhead_cycles =
      cost_.cost(result.profit_evaluations, result.candidates_scanned);
  return result;
}

}  // namespace mrts
