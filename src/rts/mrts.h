#pragma once
/// \file mrts.h
/// The mRTS run-time system (Section 4, Fig. 4): Monitoring & Prediction
/// Unit + ISE selector + Execution Control Unit, bound to one multi-grained
/// reconfigurable processor (FabricManager). This is the paper's primary
/// contribution; the configuration switches expose every design choice for
/// the ablation benches.

#include <memory>
#include <unordered_map>
#include <string>

#include "arch/fabric_manager.h"
#include "arch/fault_model.h"
#include "isa/ise_library.h"
#include "rts/ecu.h"
#include "rts/migration.h"
#include "rts/mpu.h"
#include "rts/profit_cache.h"
#include "rts/rts_interface.h"
#include "rts/selector_heuristic.h"
#include "rts/selector_optimal.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
class CounterRegistry;

struct MRtsConfig {
  Mpu::Config mpu;
  Ecu::Config ecu;
  SelectorCostModel selector_cost;
  SelectionPolicy selector_policy = SelectionPolicy::kMaxProfit;
  /// Profit-computation variant (ablation of the Eq. 3/4 reconstruction).
  ProfitModel profit_model;
  /// Use the optimal (branch & bound) selector instead of the Fig. 6
  /// heuristic — the "online optimal" competitor of Fig. 9.
  bool use_optimal_selector = false;
  /// Charge the blocking part of the selection overhead to the core
  /// (Section 5.4). Disable to measure the idealized zero-overhead system.
  bool charge_selection_overhead = true;
  /// Cross-block reconfiguration lookahead (an extension beyond the paper):
  /// after installing a block's selection, predict the *next* functional
  /// block (last-successor predictor), run a speculative selection for it on
  /// the leftover fabric and start loading its data paths early. Wrong
  /// predictions only waste fabric that was idle anyway.
  bool enable_lookahead = false;
  /// Deterministic fault injection (arch/fault_model.h). The default injects
  /// nothing; with any_faults() the MRts seeds a FaultModel and attaches it
  /// to its fabric — load CRC failures with retry/backoff, scrubbed
  /// transient upsets and permanent container quarantines then exercise the
  /// ECU degradation ladder.
  FaultModelConfig fault;
  /// Selector hot-path switches (rts/profit_cache.h): profit memoization and
  /// the incremental (commit/rollback) planner. Pure optimizations — every
  /// selection and output byte is identical at any setting; baseline()
  /// reproduces the pre-optimization implementation for A/B timing.
  SelectorTuning selector_tuning;
  /// Migration-based self-healing (rts/migration.h): after a scrub that
  /// quarantined additional containers, compact the surviving FG
  /// configurations so the free space stays contiguous. Default-off keeps
  /// fault-free and legacy fault runs bit-identical.
  DefragConfig defrag;
};

/// Aggregated run statistics of one mRTS instance.
struct MRtsRunStats {
  std::uint64_t triggers = 0;
  std::uint64_t profit_evaluations = 0;
  Cycles total_selection_cycles = 0;   ///< full selector work (Sec. 5.4)
  Cycles total_blocking_cycles = 0;    ///< part that stalls the core
  std::uint64_t selected_ises = 0;
  std::uint64_t selected_mg_ises = 0;
  std::uint64_t selected_fg_ises = 0;
  std::uint64_t selected_cg_ises = 0;
  std::uint64_t reused_instances = 0;
  std::uint64_t lookahead_prefetches = 0;  ///< speculative loads started
  std::uint64_t defrag_passes = 0;         ///< recovery passes triggered
  std::uint64_t defrag_migrations = 0;     ///< completed live migrations
};

class MRts final : public RuntimeSystem {
 public:
  MRts(const IseLibrary& lib, unsigned num_cg_fabrics, unsigned num_prcs,
       MRtsConfig config = {});

  /// Binds the run-time system to an externally owned fabric, enabling
  /// several tasks (each with its own MRts instance) to share one
  /// reconfigurable processor: their installations evict each other's data
  /// paths exactly like the "fabric shared among various tasks" scenario of
  /// Section 1. \p shared_fabric must outlive this object; reset() leaves
  /// it untouched (other tasks may still use it). This is the *unmanaged*
  /// sharing mode (tenant id kUnownedTenant, no arbitration); production
  /// multi-tenant setups use the TenantBinding constructor below.
  MRts(const IseLibrary& lib, FabricManager& shared_fabric,
       MRtsConfig config = {});

  /// Tenant-bound shared-fabric construction (arch/tenant.h): binds this
  /// instance to a tenant slot of an arbitrated fabric, as handed out by
  /// FabricArbiter::binding() after registering the tenant. Every fabric
  /// operation of this instance then runs as that tenant: placements are
  /// confined to accessible containers, the selector plans with the
  /// tenant-visible capacity, and evictions it causes are attributed to it.
  /// Throws std::invalid_argument when the binding has no fabric (e.g. the
  /// tenant was not admitted).
  MRts(const IseLibrary& lib, const TenantBinding& binding,
       MRtsConfig config = {});

  std::string name() const override;
  SelectionOutcome on_trigger(const TriggerInstruction& programmed,
                              Cycles now) override;
  ExecOutcome execute_kernel(KernelId k, Cycles now) override;
  Cycles execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                     std::size_t n, Cycles gap_total,
                     std::uint64_t* impl_executions, Cycles* impl_cycles,
                     Cycles* first_exec_start) override;
  Cycles execute_events(const ExecEvent* events, const ExecRun* runs,
                        std::size_t num_runs, Cycles cursor,
                        std::uint64_t* impl_executions, Cycles* impl_cycles,
                        ObservationSink& obs) override;
  void on_block_end(const BlockObservation& observed, Cycles now) override;
  void reset() override;

  /// Attaches a flight recorder and counter registry (util/trace.h,
  /// util/counters.h) to every unit of this run-time system: MPU forecast
  /// errors, selector rounds, ECU decisions and the fabric's
  /// reconfiguration/occupancy timeline all land in one event stream.
  /// Either pointer may be null; passing both null detaches. The recorder
  /// must outlive this object (or be detached first) and — like the MRts
  /// itself — must not be shared across threads.
  ///
  /// Shared-fabric contract (explicit, replacing the old "last attachment
  /// wins"): the fabric's event stream has exactly one observer. The first
  /// instance to attach claims it (its recorder then sees the fabric-side
  /// events of *every* task on that fabric); later instances observe only
  /// their own units. Attaching a different recorder directly over the
  /// fabric's existing one throws std::logic_error
  /// (FabricManager::attach_observability).
  void attach_observability(TraceRecorder* trace,
                            CounterRegistry* counters) override;

  /// Unified lifecycle API: attaches \p model to this instance's fabric.
  /// Throws std::logic_error when a different model is already attached
  /// (e.g. by another task sharing the fabric, or by a fault-enabled
  /// MRtsConfig) — the fault timeline of one fabric has one owner.
  bool attach_fault_model(FaultModel* model) override;

  /// Tenant this instance acts as on its fabric (kUnownedTenant unless
  /// constructed from a TenantBinding).
  TenantId tenant() const { return tenant_; }

  const FabricManager& fabric() const { return *fabric_; }
  bool owns_fabric() const { return owned_fabric_ != nullptr; }
  /// The fault injector driving this instance's fabric (nullptr when the
  /// fault config is all-zero, i.e. the fault-free machine).
  const FaultModel* fault_model() const { return fault_model_.get(); }
  const Ecu& ecu() const { return ecu_; }
  const Mpu& mpu() const { return mpu_; }
  const MRtsRunStats& run_stats() const { return stats_; }
  const MRtsConfig& config() const { return config_; }

  /// Whole-instance state capture/restore (rts/snapshot.h): fabric +
  /// reconfiguration ports, fault injector RNG/stats, MPU forecasts, ECU
  /// block-boundary state, run stats, lookahead predictor and the
  /// self-healing watermark. The restoring process must construct this
  /// instance from the *same* MRtsConfig/library/fabric shape first (the
  /// snapshot meta header carries those); load_state validates what it can
  /// (fabric shape, fault-model presence) and throws SnapshotError before
  /// mutating on mismatch. The profit cache needs no state — every select()
  /// clears it.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  const IseLibrary* lib_;
  MRtsConfig config_;
  std::unique_ptr<FabricManager> owned_fabric_;  ///< null in shared mode
  FabricManager* fabric_;
  /// Tenant identity on fabric_ (kUnownedTenant = single-app/unmanaged).
  TenantId tenant_ = kUnownedTenant;
  /// True when this instance claimed the shared fabric's observability
  /// stream (first attachment wins; see attach_observability).
  bool fabric_observer_ = false;
  /// Owned injector, attached to fabric_ when config_.fault.any_faults().
  /// Construction throws if the (shared) fabric already has a different
  /// model attached — see attach_fault_model.
  std::unique_ptr<FaultModel> fault_model_;
  Mpu mpu_;
  HeuristicSelector heuristic_;
  OptimalSelector optimal_;
  /// Profit memo shared by both selectors (each select() clears it; see
  /// rts/profit_cache.h for the exactness argument).
  ProfitCache profit_cache_;
  Ecu ecu_;
  MRtsRunStats stats_;
  /// Self-healing policy + the quarantine count it last acted on (recovery
  /// runs only when a scrub *grew* the set). Part of the snapshot state.
  DefragPolicy defrag_;
  unsigned seen_quarantined_ = 0;

  // Lookahead state: block-successor predictor + programmed-trigger cache.
  std::unordered_map<std::uint32_t, std::uint32_t> successor_;
  std::unordered_map<std::uint32_t, TriggerInstruction> trigger_cache_;
  FunctionalBlockId last_block_ = kInvalidFunctionalBlock;
};

}  // namespace mrts
