#include "rts/profit.h"

#include <algorithm>
#include <stdexcept>

namespace mrts {

namespace {

void check_inputs(const ProfitInputs& in, std::size_t n) {
  if (in.ise == nullptr) {
    throw std::invalid_argument("compute_profit: null ISE");
  }
  if (n == 0) {
    throw std::invalid_argument("compute_profit: ISE without data paths");
  }
  if (in.ready_rel.size() != n) {
    throw std::invalid_argument(
        "compute_profit: ready_rel size must equal #data paths");
  }
}

/// Shared Eqs. 2-4 evaluation. recT(i) (completion of the i-th intermediate
/// ISE) is the prefix maximum of the instance ready times, computed as a
/// running value — the selector hot loop calls this thousands of times per
/// trigger, so it must not allocate. \p out may be null (profit-value-only
/// fast path); the arithmetic and its order are identical either way, which
/// keeps the returned double bit-identical between the two entry points.
double profit_impl(const ProfitInputs& in, ProfitResult* out) {
  const IseVariant& ise = *in.ise;
  const std::size_t n = ise.num_data_paths();

  const double e = std::max(0.0, in.expected_executions);
  const double latency_rm = static_cast<double>(ise.risc_latency());
  const double tf = static_cast<double>(in.time_to_first);
  const double tb =
      in.model.include_tb ? static_cast<double>(in.time_between) : 0.0;

  double profit = 0.0;
  double remaining = e;
  Cycles rec_prev = in.ready_rel[0];  // recT(1) so far

  // NoE_RM (Fig. 5): executions in RISC mode before the first data path is
  // ready. Eq. 4 as printed omits this term, but without it a slow-loading
  // ISE would be credited for executions that in fact happen unaccelerated;
  // the authors' own Fig. 1 amortization clearly accounts for it.
  if (in.model.account_risc_window) {
    const double rec_1 = static_cast<double>(rec_prev);
    double noe_rm = 0.0;
    if (rec_1 > tf) noe_rm = (rec_1 - tf) / (latency_rm + tb);
    noe_rm = std::clamp(noe_rm, 0.0, remaining);
    remaining -= noe_rm;
    if (out != nullptr) out->risc_executions = noe_rm;
  }

  // Intermediate ISEs i = 1..n-1 live in the window [recT(i), recT(i+1)).
  for (std::size_t i = 1; i < n; ++i) {
    const Cycles rec_cur = std::max(rec_prev, in.ready_rel[i]);
    const double rec_i = static_cast<double>(rec_prev);
    const double rec_next = static_cast<double>(rec_cur);
    const double latency_i = static_cast<double>(ise.latency_after[i]);
    double noe = 0.0;
    if (rec_next <= tf) {
      noe = 0.0;  // the next level is ready before the kernel even starts
    } else if (rec_i <= tf) {
      noe = (rec_next - tf) / (latency_i + tb);
    } else {
      noe = (rec_next - rec_i) / (latency_i + tb);
    }
    noe = std::clamp(noe, 0.0, remaining);
    remaining -= noe;
    if (out != nullptr) {
      out->noe.push_back(noe);
      out->noe_sum += noe;
    }
    profit += noe * (latency_rm - latency_i);
    rec_prev = rec_cur;
  }

  // The complete ISE serves whatever executions are left (Eq. 4).
  const double latency_full = static_cast<double>(ise.full_latency());
  if (out != nullptr) out->full_executions = remaining;
  profit += remaining * (latency_rm - latency_full);
  return profit;
}

}  // namespace

ProfitResult compute_profit(const ProfitInputs& in) {
  check_inputs(in, in.ise != nullptr ? in.ise->num_data_paths() : 0);
  ProfitResult out;
  out.noe.reserve(in.ise->num_data_paths() - 1);
  out.profit = profit_impl(in, &out);
  return out;
}

double compute_profit_value(const ProfitInputs& in) {
  check_inputs(in, in.ise != nullptr ? in.ise->num_data_paths() : 0);
  return profit_impl(in, nullptr);
}

double performance_improvement_factor(Cycles sw_time, Cycles hw_time,
                                      Cycles reconfig_latency,
                                      double executions) {
  const double numerator = static_cast<double>(sw_time) * executions;
  const double denominator = static_cast<double>(reconfig_latency) +
                             static_cast<double>(hw_time) * executions;
  if (denominator <= 0.0) return 0.0;
  return numerator / denominator;
}

}  // namespace mrts
