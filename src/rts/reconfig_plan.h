#pragma once
/// \file reconfig_plan.h
/// Predicts *when* the data paths of a candidate ISE would become usable if
/// it were selected now. Both the ISE selector (hypothetical evaluation of
/// candidates) and the profit function consume these predictions; the
/// FabricManager later performs the real installation with the same rules:
///
///  * data-path instances already placed on the fabric (possibly still
///    loading) are reused — their ready time is whatever it already is;
///  * new FG loads are serialized behind the FG reconfiguration port's
///    backlog; new CG loads stream through the (fast) CG port;
///  * instances claimed by previously committed ISEs of the same selection
///    round cannot be reused again.
///
/// The planner is a value type: the optimal selector copies it while
/// enumerating combinations.

#include <unordered_map>
#include <vector>

#include "arch/data_path.h"
#include "arch/fabric_manager.h"
#include "util/types.h"

namespace mrts {

class ReconfigPlanner {
 public:
  /// Snapshots the fabric state at cycle \p now.
  ReconfigPlanner(const DataPathTable& table, const FabricManager& fabric,
                  Cycles now);

  /// Planner with an empty fabric and idle ports (used for optimistic upper
  /// bounds and for compile-time/offline selection).
  ReconfigPlanner(const DataPathTable& table, unsigned total_prcs,
                  unsigned total_cg, Cycles now);

  /// Predicted absolute ready time of each data-path instance of \p dps if
  /// the ISE were committed now, without changing the planner state.
  std::vector<Cycles> plan(const std::vector<DataPathId>& dps) const;

  /// Like plan() but consumes reused instances, advances the port cursors
  /// and deducts the fabric budget.
  std::vector<Cycles> commit(const std::vector<DataPathId>& dps);

  /// Remaining fabric budget (total minus units of committed ISEs).
  unsigned free_prcs() const { return free_prcs_; }
  unsigned free_cg() const { return free_cg_; }

  /// Does an ISE with the given demand still fit?
  bool fits(unsigned fg_units, unsigned cg_units) const {
    return fg_units <= free_prcs_ && cg_units <= free_cg_;
  }

  /// Multiset of data paths committed so far (for the selector's step-2b
  /// coverage pruning).
  const std::unordered_map<std::uint32_t, unsigned>& committed_paths() const {
    return committed_;
  }

  /// True if every instance of \p dps is covered by the committed multiset.
  bool covered_by_committed(const std::vector<DataPathId>& dps) const;

  Cycles now() const { return now_; }

  /// Override the per-FG-data-path reconfiguration time used for *new* loads
  /// (0 = use the real per-data-path value). The RISPP-like baseline uses
  /// this to model a cost function tuned for ms-scale reconfiguration: it
  /// prices every data path, CG included, at this FG-scale cost.
  void set_uniform_reconfig_cycles(Cycles cycles) { uniform_reconfig_ = cycles; }

 private:
  struct PlanState {
    std::unordered_map<std::uint32_t, unsigned> claimed;  // dp -> #instances
    Cycles fg_cursor;
    Cycles cg_cursor;
  };

  std::vector<Cycles> plan_impl(const std::vector<DataPathId>& dps,
                                PlanState& state) const;

  const DataPathTable* table_;
  Cycles now_;
  Cycles fg_cursor_;  ///< FG port free-at cycle (absolute)
  Cycles cg_cursor_;
  unsigned free_prcs_;
  unsigned free_cg_;
  Cycles uniform_reconfig_ = 0;

  /// Ready times of instances currently on the fabric, per data path.
  std::unordered_map<std::uint32_t, std::vector<Cycles>> existing_;
  /// Instances of existing_ already consumed by committed ISEs.
  std::unordered_map<std::uint32_t, unsigned> claimed_;
  /// Multiset of committed data paths.
  std::unordered_map<std::uint32_t, unsigned> committed_;
};

}  // namespace mrts
