#pragma once
/// \file reconfig_plan.h
/// Predicts *when* the data paths of a candidate ISE would become usable if
/// it were selected now. Both the ISE selector (hypothetical evaluation of
/// candidates) and the profit function consume these predictions; the
/// FabricManager later performs the real installation with the same rules:
///
///  * data-path instances already placed on the fabric (possibly still
///    loading) are reused — their ready time is whatever it already is;
///  * new FG loads are serialized behind the FG reconfiguration port's
///    backlog; new CG loads stream through the (fast) CG port;
///  * instances claimed by previously committed ISEs of the same selection
///    round cannot be reused again.
///
/// The planner is a value type (copyable), but the branch-and-bound selector
/// no longer copies it per search node: commit() records an undo log, and
/// mark()/rollback() restore any earlier state in O(#commits undone) without
/// touching the (potentially large) existing-instance snapshot.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/data_path.h"
#include "arch/fabric_manager.h"
#include "util/types.h"

namespace mrts {

class ReconfigPlanner {
 public:
  /// Snapshots the fabric state at cycle \p now.
  ReconfigPlanner(const DataPathTable& table, const FabricManager& fabric,
                  Cycles now);

  /// Planner with an empty fabric and idle ports (used for optimistic upper
  /// bounds and for compile-time/offline selection).
  ReconfigPlanner(const DataPathTable& table, unsigned total_prcs,
                  unsigned total_cg, Cycles now);

  /// Predicted absolute ready time of each data-path instance of \p dps if
  /// the ISE were committed now, without changing the planner state.
  std::vector<Cycles> plan(const std::vector<DataPathId>& dps) const;

  /// Allocation-free plan(): fills \p ready (cleared first) so the selector
  /// inner loop can reuse one scratch buffer across candidates.
  void plan_into(const std::vector<DataPathId>& dps,
                 std::vector<Cycles>& ready) const;

  /// Like plan() but consumes reused instances, advances the port cursors
  /// and deducts the fabric budget.
  std::vector<Cycles> commit(const std::vector<DataPathId>& dps);

  /// Allocation-free commit() (same scratch-buffer contract as plan_into).
  void commit_into(const std::vector<DataPathId>& dps,
                   std::vector<Cycles>& ready);

  /// Snapshot of the mutable planner state, O(1) to take. Checkpoints nest:
  /// roll back in LIFO order (rolling back an outer checkpoint discards any
  /// inner ones taken after it).
  struct Checkpoint {
    Cycles fg_cursor = 0;
    Cycles cg_cursor = 0;
    unsigned free_prcs = 0;
    unsigned free_cg = 0;
    std::size_t undo_mark = 0;  ///< undo-log length at mark() time
  };

  Checkpoint mark() const {
    return {fg_cursor_, cg_cursor_, free_prcs_, free_cg_, undo_log_.size()};
  }

  /// Undoes every commit() made since \p cp was taken. The branch-and-bound
  /// selector uses mark()/commit_into()/rollback() instead of copying the
  /// whole planner per search node.
  void rollback(const Checkpoint& cp);

  /// Remaining fabric budget (total minus units of committed ISEs).
  unsigned free_prcs() const { return free_prcs_; }
  unsigned free_cg() const { return free_cg_; }

  /// Restricts the budget to what a fabric tenant may actually place into
  /// (FabricArbitration::visible_prcs/visible_cg). Call right after
  /// construction, before any commit(): the tenant-bound selector then
  /// never plans a selection its arbiter would make install() degrade.
  /// plan()'s *output* does not depend on the budget, so the profit-cache
  /// key (which omits it) stays exact.
  void clamp_budget(unsigned max_prcs, unsigned max_cg) {
    free_prcs_ = std::min(free_prcs_, max_prcs);
    free_cg_ = std::min(free_cg_, max_cg);
  }

  /// Does an ISE with the given demand still fit?
  bool fits(unsigned fg_units, unsigned cg_units) const {
    return fg_units <= free_prcs_ && cg_units <= free_cg_;
  }

  /// Multiset of data paths committed so far (for the selector's step-2b
  /// coverage pruning), as dense per-data-path counts indexed by raw id.
  const std::vector<unsigned>& committed_paths() const { return committed_; }

  /// True if every instance of \p dps is covered by the committed multiset.
  bool covered_by_committed(const std::vector<DataPathId>& dps) const;

  Cycles now() const { return now_; }

  /// Plan-relevant state exposed for the profit cache key (rts/profit_cache.h):
  /// plan()'s output for a data-path list is a pure function of (the fabric
  /// snapshot = fabric_epoch+now, the port cursors, the per-dp claim counts,
  /// the uniform-reconfig override and the immutable table).
  Cycles fg_cursor() const { return fg_cursor_; }
  Cycles cg_cursor() const { return cg_cursor_; }
  Cycles uniform_reconfig_cycles() const { return uniform_reconfig_; }
  unsigned claimed_count(DataPathId dp) const { return claimed_[raw(dp)]; }
  /// FabricManager::state_epoch() at snapshot time; kIdleEpoch for the
  /// empty-fabric constructor (whose existing-instance set is always empty,
  /// so the sentinel is exact, not approximate).
  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};
  std::uint64_t fabric_epoch() const { return fabric_epoch_; }

  /// Override the per-FG-data-path reconfiguration time used for *new* loads
  /// (0 = use the real per-data-path value). The RISPP-like baseline uses
  /// this to model a cost function tuned for ms-scale reconfiguration: it
  /// prices every data path, CG included, at this FG-scale cost.
  void set_uniform_reconfig_cycles(Cycles cycles) { uniform_reconfig_ = cycles; }

 private:
  const DataPathTable* table_;
  Cycles now_;
  Cycles fg_cursor_;  ///< FG port free-at cycle (absolute)
  Cycles cg_cursor_;
  unsigned free_prcs_;
  unsigned free_cg_;
  Cycles uniform_reconfig_ = 0;
  std::uint64_t fabric_epoch_ = kIdleEpoch;

  /// Ready times of instances currently on the fabric, per data path —
  /// dense vectors indexed by raw DataPathId (ids are 0..table.size()-1 by
  /// construction of the table), so the per-node lookups in the selector's
  /// search are indexed loads instead of hash probes. existing_ is
  /// immutable after construction — mark()/rollback() never touch it, which
  /// is what makes checkpoints O(1).
  std::vector<std::vector<Cycles>> existing_;
  /// Instances of existing_ already consumed by committed ISEs.
  std::vector<unsigned> claimed_;
  /// Multiset of committed data paths.
  std::vector<unsigned> committed_;

  /// One entry per data-path instance committed since construction, in
  /// commit order: rollback() replays it backwards.
  struct UndoEntry {
    std::uint32_t dp = 0;
    bool reused = false;  ///< claimed_ was incremented (not a fresh load)
  };
  std::vector<UndoEntry> undo_log_;
};

}  // namespace mrts
