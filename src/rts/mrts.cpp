#include "rts/mrts.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/snapshot_io.h"
#include "util/trace.h"

namespace mrts {
namespace {

FabricManager& checked_binding_fabric(const TenantBinding& binding) {
  if (binding.fabric == nullptr) {
    throw std::invalid_argument(
        "MRts: tenant binding has no fabric (tenant not admitted?)");
  }
  return *binding.fabric;
}

}  // namespace

MRts::MRts(const IseLibrary& lib, unsigned num_cg_fabrics, unsigned num_prcs,
           MRtsConfig config)
    : lib_(&lib),
      config_(config),
      owned_fabric_(std::make_unique<FabricManager>(num_cg_fabrics, num_prcs,
                                                    &lib.data_paths())),
      fabric_(owned_fabric_.get()),
      mpu_(config.mpu),
      heuristic_(lib, config.selector_cost, config.selector_policy,
                 config.profit_model),
      optimal_(lib),
      ecu_(lib, *fabric_, config.ecu) {
  heuristic_.set_tuning(config_.selector_tuning);
  optimal_.set_tuning(config_.selector_tuning);
  heuristic_.attach_profit_cache(&profit_cache_);
  optimal_.attach_profit_cache(&profit_cache_);
  defrag_ = DefragPolicy(config_.defrag);
  if (config_.fault.any_faults()) {
    fault_model_ = std::make_unique<FaultModel>(config_.fault);
    fabric_->attach_fault_model(fault_model_.get());
  }
}

MRts::MRts(const IseLibrary& lib, FabricManager& shared_fabric,
           MRtsConfig config)
    : lib_(&lib),
      config_(config),
      fabric_(&shared_fabric),
      mpu_(config.mpu),
      heuristic_(lib, config.selector_cost, config.selector_policy,
                 config.profit_model),
      optimal_(lib),
      ecu_(lib, *fabric_, config.ecu) {
  heuristic_.set_tuning(config_.selector_tuning);
  optimal_.set_tuning(config_.selector_tuning);
  heuristic_.attach_profit_cache(&profit_cache_);
  optimal_.attach_profit_cache(&profit_cache_);
  defrag_ = DefragPolicy(config_.defrag);
  if (config_.fault.any_faults()) {
    fault_model_ = std::make_unique<FaultModel>(config_.fault);
    fabric_->attach_fault_model(fault_model_.get());
  }
}

MRts::MRts(const IseLibrary& lib, const TenantBinding& binding,
           MRtsConfig config)
    : MRts(lib, checked_binding_fabric(binding), config) {
  tenant_ = binding.tenant;
}

std::string MRts::name() const {
  return config_.use_optimal_selector ? "mRTS(optimal)" : "mRTS";
}

void MRts::attach_observability(TraceRecorder* trace,
                                CounterRegistry* counters) {
  // A tenant-bound instance attributes every event it records — ECU / MPU /
  // selector sites don't carry an explicit tenant, so they inherit it from
  // the recorder; the shared fabric stamps its own active tenant per event.
  if (trace != nullptr && tenant_ != kUnownedTenant) {
    trace->set_default_tenant(tenant_);
  }
  mpu_.attach_observability(trace, counters);
  ecu_.attach_observability(trace, counters);
  heuristic_.attach_observability(trace, counters);
  optimal_.attach_observability(trace, counters);
  const bool attaching = trace != nullptr || counters != nullptr;
  if (owned_fabric_ != nullptr || fabric_observer_) {
    // Own fabric, or this instance already holds the shared stream: forward
    // (detaching with nulls releases the claim).
    fabric_->attach_observability(trace, counters);
    fabric_observer_ = owned_fabric_ == nullptr && attaching;
  } else if (attaching && !fabric_->observability_attached()) {
    // First tenant to attach claims the shared fabric's event stream; later
    // tenants observe only their own units.
    fabric_->attach_observability(trace, counters);
    fabric_observer_ = true;
  }
}

bool MRts::attach_fault_model(FaultModel* model) {
  fabric_->attach_fault_model(model);
  return true;
}

SelectionOutcome MRts::on_trigger(const TriggerInstruction& programmed,
                                  Cycles now) {
  // From here on the fabric acts on behalf of this instance's tenant.
  fabric_->set_active_tenant(tenant_);

  // Drain due scrub epochs first: upsets and quarantines must land before
  // the selector snapshots capacity, so it re-plans with the post-fault
  // fabric instead of tripping install()'s capacity check.
  fabric_->scrub(now);

  // Self-healing (rts/migration.h): when that scrub quarantined additional
  // containers, compact the survivors before the selector snapshots the
  // fabric — it then plans against the defragmented free space.
  if (config_.defrag.enabled) {
    const FabricUsage usage = fabric_->usage();
    const unsigned quarantined = usage.quarantined_prcs + usage.quarantined_cg;
    if (quarantined > seen_quarantined_) {
      const DefragReport rep = defrag_.recover(*fabric_, now);
      ++stats_.defrag_passes;
      stats_.defrag_migrations += rep.migrated;
    }
    seen_quarantined_ = quarantined;
  }

  // MPU: replace the programmer's offline forecasts with monitored values.
  const TriggerInstruction refined = mpu_.refine(programmed);

  // ISE selector, on a snapshot of the current fabric state. On an
  // arbitrated fabric the budget is the tenant-visible capacity (own
  // partition + pool share), so the selection never exceeds what install()
  // would accept.
  ReconfigPlanner planner(lib_->data_paths(), *fabric_, now);
  if (const FabricArbitration* arb = fabric_->arbitration()) {
    planner.clamp_budget(arb->visible_prcs(tenant_), arb->visible_cg(tenant_));
  }
  SelectionResult selection = config_.use_optimal_selector
                                  ? optimal_.select(refined, planner)
                                  : heuristic_.select(refined, planner);

  // Install the selected set; the reconfiguration controller manages the
  // actual loading process.
  std::vector<IsePlacementRequest> requests;
  requests.reserve(selection.selected.size());
  for (const auto& sel : selection.selected) {
    requests.push_back(
        {sel.ise, sel.kernel, lib_->ise(sel.ise).data_paths});
  }
  const std::vector<IsePlacement> placements = fabric_->install(requests, now);
  ecu_.begin_block(placements, now);

  // Bookkeeping.
  ++stats_.triggers;
  stats_.profit_evaluations += selection.profit_evaluations;
  stats_.total_selection_cycles += selection.overhead_cycles;
  for (const auto& sel : selection.selected) {
    const IseVariant& v = lib_->ise(sel.ise);
    ++stats_.selected_ises;
    if (v.is_multi_grained()) {
      ++stats_.selected_mg_ises;
    } else if (v.is_fg_only()) {
      ++stats_.selected_fg_ises;
    } else {
      ++stats_.selected_cg_ises;
    }
  }
  for (const auto& p : placements) stats_.reused_instances += p.reused_instances;

  // Cross-block lookahead: remember this block's programmed trigger and the
  // block-transition edge; then warm the leftover fabric for the block the
  // predictor expects next.
  trigger_cache_[raw(programmed.functional_block)] = programmed;
  if (last_block_ != kInvalidFunctionalBlock) {
    successor_[raw(last_block_)] = raw(programmed.functional_block);
  }
  last_block_ = programmed.functional_block;
  if (config_.enable_lookahead) {
    const auto next_it = successor_.find(raw(programmed.functional_block));
    if (next_it != successor_.end() &&
        next_it->second != raw(programmed.functional_block)) {
      const auto cached = trigger_cache_.find(next_it->second);
      if (cached != trigger_cache_.end()) {
        const TriggerInstruction next_refined = mpu_.refine(cached->second);
        const FabricUsage usage = fabric_->usage();
        ReconfigPlanner leftover(lib_->data_paths(),
                                 usage.usable_prcs() - usage.reserved_prcs,
                                 usage.usable_cg() - usage.reserved_cg, now);
        if (const FabricArbitration* arb = fabric_->arbitration()) {
          const unsigned vis_prcs = arb->visible_prcs(tenant_);
          const unsigned vis_cg = arb->visible_cg(tenant_);
          leftover.clamp_budget(
              vis_prcs > usage.reserved_prcs ? vis_prcs - usage.reserved_prcs
                                             : 0,
              vis_cg > usage.reserved_cg ? vis_cg - usage.reserved_cg : 0);
        }
        const SelectionResult speculative =
            heuristic_.select(next_refined, leftover);
        std::vector<IsePlacementRequest> future;
        future.reserve(speculative.selected.size());
        for (const auto& sel : speculative.selected) {
          future.push_back(
              {sel.ise, sel.kernel, lib_->ise(sel.ise).data_paths});
        }
        stats_.lookahead_prefetches += fabric_->prefetch(future, now);
      }
    }
  }

  SelectionOutcome outcome;
  outcome.selection = std::move(selection);
  if (config_.charge_selection_overhead) {
    // Only selecting the first ISE stalls the core; the remaining rounds are
    // hidden behind the reconfiguration of the first selection (Sec. 5.4).
    outcome.blocking_overhead = config_.selector_cost.cost(
        outcome.selection.first_round_evaluations,
        outcome.selection.first_round_scans);
  }
  stats_.total_blocking_cycles += outcome.blocking_overhead;
  return outcome;
}

ExecOutcome MRts::execute_kernel(KernelId k, Cycles now) {
  // The ECU may touch the fabric (monoCG realization, context switches).
  fabric_->set_active_tenant(tenant_);
  return ecu_.execute(k, now);
}

Cycles MRts::execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                         std::size_t n, Cycles gap_total,
                         std::uint64_t* impl_executions, Cycles* impl_cycles,
                         Cycles* first_exec_start) {
  // One tenant activation covers the whole run — the block is executed by
  // this task alone, so the tenant cannot change between its events.
  fabric_->set_active_tenant(tenant_);
  return ecu_.execute_run(k, cursor, events, n, gap_total, impl_executions,
                          impl_cycles, first_exec_start);
}

Cycles MRts::execute_events(const ExecEvent* events, const ExecRun* runs,
                          std::size_t num_runs, Cycles cursor,
                          std::uint64_t* impl_executions,
                          Cycles* impl_cycles, ObservationSink& obs) {
  // One tenant activation covers the whole block (see execute_run).
  fabric_->set_active_tenant(tenant_);
  return ecu_.execute_events(events, runs, num_runs, cursor, impl_executions,
                             impl_cycles, obs);
}

void MRts::on_block_end(const BlockObservation& observed, Cycles now) {
  mpu_.observe(observed, now);
}

void MRts::save_state(SnapshotWriter& w) const {
  fabric_->save_state(w);
  w.boolean(fault_model_ != nullptr);
  if (fault_model_ != nullptr) fault_model_->save_state(w);
  mpu_.save_state(w);
  ecu_.save_state(w);
  w.u64(stats_.triggers);
  w.u64(stats_.profit_evaluations);
  w.u64(stats_.total_selection_cycles);
  w.u64(stats_.total_blocking_cycles);
  w.u64(stats_.selected_ises);
  w.u64(stats_.selected_mg_ises);
  w.u64(stats_.selected_fg_ises);
  w.u64(stats_.selected_cg_ises);
  w.u64(stats_.reused_instances);
  w.u64(stats_.lookahead_prefetches);
  w.u64(stats_.defrag_passes);
  w.u64(stats_.defrag_migrations);
  // Lookahead predictor state, in ascending key order so the byte stream is
  // independent of unordered_map iteration order.
  std::vector<std::uint32_t> keys;
  keys.reserve(successor_.size());
  for (const auto& [from, to] : successor_) keys.push_back(from);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (std::uint32_t from : keys) {
    w.u32(from);
    w.u32(successor_.at(from));
  }
  keys.clear();
  for (const auto& [fb, ti] : trigger_cache_) keys.push_back(fb);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (std::uint32_t fb : keys) {
    const TriggerInstruction& ti = trigger_cache_.at(fb);
    w.u32(fb);
    w.u32(raw(ti.functional_block));
    w.u64(ti.entries.size());
    for (const TriggerEntry& e : ti.entries) {
      w.u32(raw(e.kernel));
      w.f64(e.expected_executions);
      w.u64(e.time_to_first);
      w.u64(e.time_between);
    }
  }
  w.u32(raw(last_block_));
  w.u32(seen_quarantined_);
}

void MRts::load_state(SnapshotReader& r) {
  fabric_->load_state(r);
  const bool has_fault = r.boolean();
  if (has_fault != (fault_model_ != nullptr)) {
    throw SnapshotError(
        "snapshot fault-model presence does not match this runtime", r.pos());
  }
  if (fault_model_ != nullptr) fault_model_->load_state(r);
  mpu_.load_state(r);
  ecu_.load_state(r);
  stats_.triggers = r.u64();
  stats_.profit_evaluations = r.u64();
  stats_.total_selection_cycles = r.u64();
  stats_.total_blocking_cycles = r.u64();
  stats_.selected_ises = r.u64();
  stats_.selected_mg_ises = r.u64();
  stats_.selected_fg_ises = r.u64();
  stats_.selected_cg_ises = r.u64();
  stats_.reused_instances = r.u64();
  stats_.lookahead_prefetches = r.u64();
  stats_.defrag_passes = r.u64();
  stats_.defrag_migrations = r.u64();
  std::unordered_map<std::uint32_t, std::uint32_t> successor;
  const std::size_t ns = r.length(1u << 20, "successor table");
  successor.reserve(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    const std::uint32_t from = r.u32();
    successor[from] = r.u32();
  }
  std::unordered_map<std::uint32_t, TriggerInstruction> triggers;
  const std::size_t nt = r.length(1u << 20, "trigger cache");
  triggers.reserve(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    const std::uint32_t fb = r.u32();
    TriggerInstruction ti;
    ti.functional_block = FunctionalBlockId{r.u32()};
    const std::size_t ne = r.length(1u << 20, "trigger entry list");
    ti.entries.reserve(ne);
    for (std::size_t j = 0; j < ne; ++j) {
      TriggerEntry e;
      e.kernel = KernelId{r.u32()};
      e.expected_executions = r.f64();
      e.time_to_first = r.u64();
      e.time_between = r.u64();
      ti.entries.push_back(e);
    }
    triggers.emplace(fb, std::move(ti));
  }
  last_block_ = FunctionalBlockId{r.u32()};
  seen_quarantined_ = r.u32();
  successor_ = std::move(successor);
  trigger_cache_ = std::move(triggers);
}

void MRts::reset() {
  // A shared fabric belongs to the whole processor (other tasks may still
  // hold configurations on it); only reset hardware this instance owns.
  if (owned_fabric_) owned_fabric_->reset();
  mpu_.reset();
  ecu_.reset();
  stats_ = MRtsRunStats{};
  successor_.clear();
  trigger_cache_.clear();
  last_block_ = kInvalidFunctionalBlock;
}

}  // namespace mrts
