#pragma once
/// \file selector_optimal.h
/// Optimal ISE selection by exhaustive enumeration with branch-and-bound
/// pruning (Section 4.1). The paper uses this algorithm only to evaluate the
/// quality of the heuristic (it is O(M^N) — more than 78 million
/// combinations for six kernels of the H.264 encoder — and therefore not
/// feasible at run time); we use it for the Fig. 9 comparison and for the
/// offline-optimal baseline.
///
/// Enumeration fixes the reconfiguration order to trigger-instruction order
/// (the same order the installer uses); each combination is scored as the
/// sum of the Eq. 4 profits of its members evaluated against the shared
/// reconfiguration-port backlog. A per-kernel "no ISE" option guarantees
/// feasibility when the fabric cannot host every kernel.

#include <cstdint>

#include "rts/selector_heuristic.h"

namespace mrts {

class OptimalSelector {
 public:
  /// \param node_budget hard cap on explored search nodes; when exceeded the
  ///        best combination found so far is returned (never triggered at
  ///        the paper's problem sizes, it guards against pathological
  ///        libraries).
  explicit OptimalSelector(const IseLibrary& lib,
                           std::uint64_t node_budget = 200'000'000);

  SelectionResult select(const TriggerInstruction& ti,
                         ReconfigPlanner planner) const;

  /// Number of complete combinations evaluated in the last select() call.
  std::uint64_t last_combinations() const { return last_combinations_; }

  /// Attaches the flight recorder (null detaches): the final picks of each
  /// select() call are recorded (the search itself is too fine-grained).
  void attach_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Recorder + counter registry in one call (selector.cache.{hit,miss}
  /// deltas land in the registry once per select()).
  void attach_observability(TraceRecorder* trace, CounterRegistry* counters) {
    trace_ = trace;
    counters_ = counters;
  }

  /// Attaches the profit memo shared with the heuristic (null detaches).
  void attach_profit_cache(ProfitCache* cache) { cache_ = cache; }

  void set_tuning(SelectorTuning tuning) { tuning_ = tuning; }
  SelectorTuning tuning() const { return tuning_; }

 private:
  const IseLibrary* lib_;
  std::uint64_t node_budget_;
  SelectorTuning tuning_;
  mutable std::uint64_t last_combinations_ = 0;
  TraceRecorder* trace_ = nullptr;
  CounterRegistry* counters_ = nullptr;
  ProfitCache* cache_ = nullptr;
};

}  // namespace mrts
