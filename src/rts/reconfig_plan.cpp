#include "rts/reconfig_plan.h"

#include <algorithm>

namespace mrts {
namespace {

/// Occurrences of dps[i] in dps[0..i). The data-path lists of an ISE are a
/// handful of entries, so the quadratic scan beats any hash map — and it
/// keeps plan() allocation-free.
unsigned earlier_occurrences(const std::vector<DataPathId>& dps,
                             std::size_t i) {
  unsigned count = 0;
  for (std::size_t j = 0; j < i; ++j) {
    if (dps[j] == dps[i]) ++count;
  }
  return count;
}

}  // namespace

ReconfigPlanner::ReconfigPlanner(const DataPathTable& table,
                                 const FabricManager& fabric, Cycles now)
    : table_(&table),
      now_(now),
      fg_cursor_(fabric.fg_port_free_at(now)),
      cg_cursor_(fabric.reconfig().cg_port().busy_until(now)),
      free_prcs_(fabric.usable_prcs()),
      free_cg_(fabric.usable_cg_fabrics()),
      fabric_epoch_(fabric.state_epoch()),
      existing_(table.size()),
      claimed_(table.size(), 0),
      committed_(table.size(), 0) {
  // Snapshot all placed instances (including ones still loading). Note: the
  // whole *usable* fabric counts as free budget because old contents may be
  // evicted — quarantined containers are gone for good, so the selector
  // re-plans with the reduced capacity; reuse only affects the predicted
  // ready times.
  fabric.snapshot_instance_ready_times(existing_);
}

ReconfigPlanner::ReconfigPlanner(const DataPathTable& table,
                                 unsigned total_prcs, unsigned total_cg,
                                 Cycles now)
    : table_(&table),
      now_(now),
      fg_cursor_(now),
      cg_cursor_(now),
      free_prcs_(total_prcs),
      free_cg_(total_cg),
      existing_(table.size()),
      claimed_(table.size(), 0),
      committed_(table.size(), 0) {}

void ReconfigPlanner::plan_into(const std::vector<DataPathId>& dps,
                                std::vector<Cycles>& ready) const {
  ready.clear();
  ready.reserve(dps.size());
  Cycles fg = fg_cursor_;
  Cycles cg = cg_cursor_;
  for (std::size_t i = 0; i < dps.size(); ++i) {
    const DataPathId dp = dps[i];
    const auto& desc = (*table_)[dp];
    // Try to reuse an existing, unclaimed instance. Reuses form a prefix of
    // a data path's occurrences (once the existing instances run out no
    // later occurrence can reuse), so "claims so far" within this
    // hypothetical plan equals the number of earlier occurrences in dps.
    const std::vector<Cycles>& ex = existing_[raw(dp)];
    if (!ex.empty()) {
      const unsigned used = claimed_count(dp) + earlier_occurrences(dps, i);
      if (used < ex.size()) {
        ready.push_back(ex[used]);
        continue;
      }
    }
    // Schedule a fresh load.
    Cycles duration = desc.reconfig_cycles();
    if (uniform_reconfig_ != 0) duration = uniform_reconfig_ * desc.units;
    if (desc.grain == Grain::kFine) {
      fg = std::max(fg, now_) + duration;
      ready.push_back(fg);
    } else {
      cg = std::max(cg, now_) + duration;
      ready.push_back(cg);
    }
  }
}

std::vector<Cycles> ReconfigPlanner::plan(
    const std::vector<DataPathId>& dps) const {
  std::vector<Cycles> ready;
  plan_into(dps, ready);
  return ready;
}

void ReconfigPlanner::commit_into(const std::vector<DataPathId>& dps,
                                  std::vector<Cycles>& ready) {
  ready.clear();
  ready.reserve(dps.size());
  undo_log_.reserve(undo_log_.size() + dps.size());
  for (DataPathId dp : dps) {
    const auto& desc = (*table_)[dp];
    const std::vector<Cycles>& ex = existing_[raw(dp)];
    bool reused = false;
    if (!ex.empty()) {
      unsigned& used = claimed_[raw(dp)];
      if (used < ex.size()) {
        ready.push_back(ex[used]);
        ++used;
        reused = true;
      }
    }
    if (!reused) {
      Cycles duration = desc.reconfig_cycles();
      if (uniform_reconfig_ != 0) duration = uniform_reconfig_ * desc.units;
      if (desc.grain == Grain::kFine) {
        fg_cursor_ = std::max(fg_cursor_, now_) + duration;
        ready.push_back(fg_cursor_);
      } else {
        cg_cursor_ = std::max(cg_cursor_, now_) + duration;
        ready.push_back(cg_cursor_);
      }
    }
    ++committed_[raw(dp)];
    undo_log_.push_back({raw(dp), reused});
    if (desc.grain == Grain::kFine) {
      free_prcs_ = free_prcs_ >= desc.units ? free_prcs_ - desc.units : 0;
    } else {
      free_cg_ = free_cg_ >= desc.units ? free_cg_ - desc.units : 0;
    }
  }
}

std::vector<Cycles> ReconfigPlanner::commit(
    const std::vector<DataPathId>& dps) {
  std::vector<Cycles> ready;
  commit_into(dps, ready);
  return ready;
}

void ReconfigPlanner::rollback(const Checkpoint& cp) {
  // The cursors/budgets are restored from the snapshot (budget deduction
  // saturates at 0, so it is not invertible from the log alone); the claim
  // and committed multisets are replayed backwards from the undo log.
  while (undo_log_.size() > cp.undo_mark) {
    const UndoEntry entry = undo_log_.back();
    undo_log_.pop_back();
    --committed_[entry.dp];
    if (entry.reused) --claimed_[entry.dp];
  }
  fg_cursor_ = cp.fg_cursor;
  cg_cursor_ = cp.cg_cursor;
  free_prcs_ = cp.free_prcs;
  free_cg_ = cp.free_cg;
}

bool ReconfigPlanner::covered_by_committed(
    const std::vector<DataPathId>& dps) const {
  for (std::size_t i = 0; i < dps.size(); ++i) {
    if (earlier_occurrences(dps, i) != 0) continue;  // counted at first one
    unsigned need = 1;
    for (std::size_t j = i + 1; j < dps.size(); ++j) {
      if (dps[j] == dps[i]) ++need;
    }
    if (committed_[raw(dps[i])] < need) return false;
  }
  return true;
}

}  // namespace mrts
