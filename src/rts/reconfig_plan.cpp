#include "rts/reconfig_plan.h"

#include <algorithm>

namespace mrts {

ReconfigPlanner::ReconfigPlanner(const DataPathTable& table,
                                 const FabricManager& fabric, Cycles now)
    : table_(&table),
      now_(now),
      fg_cursor_(fabric.fg_port_free_at(now)),
      cg_cursor_(fabric.reconfig().cg_port().busy_until(now)),
      free_prcs_(fabric.usable_prcs()),
      free_cg_(fabric.usable_cg_fabrics()) {
  // Snapshot all placed instances (including ones still loading). Note: the
  // whole *usable* fabric counts as free budget because old contents may be
  // evicted — quarantined containers are gone for good, so the selector
  // re-plans with the reduced capacity; reuse only affects the predicted
  // ready times.
  for (std::size_t i = 0; i < table.size(); ++i) {
    const DataPathId dp{static_cast<std::uint32_t>(i)};
    auto ready = fabric.instance_ready_times(dp);
    if (!ready.empty()) existing_[raw(dp)] = std::move(ready);
  }
}

ReconfigPlanner::ReconfigPlanner(const DataPathTable& table,
                                 unsigned total_prcs, unsigned total_cg,
                                 Cycles now)
    : table_(&table),
      now_(now),
      fg_cursor_(now),
      cg_cursor_(now),
      free_prcs_(total_prcs),
      free_cg_(total_cg) {}

std::vector<Cycles> ReconfigPlanner::plan_impl(
    const std::vector<DataPathId>& dps, PlanState& state) const {
  std::vector<Cycles> ready;
  ready.reserve(dps.size());
  for (DataPathId dp : dps) {
    const auto& desc = (*table_)[dp];
    // Try to reuse an existing, unclaimed instance.
    const auto it = existing_.find(raw(dp));
    unsigned& used = state.claimed[raw(dp)];
    if (it != existing_.end() && used < it->second.size()) {
      ready.push_back(it->second[used]);
      ++used;
      continue;
    }
    // Schedule a fresh load.
    Cycles duration = desc.reconfig_cycles();
    if (uniform_reconfig_ != 0) duration = uniform_reconfig_ * desc.units;
    if (desc.grain == Grain::kFine) {
      state.fg_cursor = std::max(state.fg_cursor, now_) + duration;
      ready.push_back(state.fg_cursor);
    } else {
      state.cg_cursor = std::max(state.cg_cursor, now_) + duration;
      ready.push_back(state.cg_cursor);
    }
  }
  return ready;
}

std::vector<Cycles> ReconfigPlanner::plan(
    const std::vector<DataPathId>& dps) const {
  PlanState state{claimed_, fg_cursor_, cg_cursor_};
  return plan_impl(dps, state);
}

std::vector<Cycles> ReconfigPlanner::commit(
    const std::vector<DataPathId>& dps) {
  PlanState state{claimed_, fg_cursor_, cg_cursor_};
  auto ready = plan_impl(dps, state);
  claimed_ = std::move(state.claimed);
  fg_cursor_ = state.fg_cursor;
  cg_cursor_ = state.cg_cursor;
  for (DataPathId dp : dps) {
    const auto& desc = (*table_)[dp];
    ++committed_[raw(dp)];
    if (desc.grain == Grain::kFine) {
      free_prcs_ = free_prcs_ >= desc.units ? free_prcs_ - desc.units : 0;
    } else {
      free_cg_ = free_cg_ >= desc.units ? free_cg_ - desc.units : 0;
    }
  }
  return ready;
}

bool ReconfigPlanner::covered_by_committed(
    const std::vector<DataPathId>& dps) const {
  std::unordered_map<std::uint32_t, unsigned> need;
  for (DataPathId dp : dps) ++need[raw(dp)];
  for (const auto& [dp, count] : need) {
    const auto it = committed_.find(dp);
    if (it == committed_.end() || it->second < count) return false;
  }
  return true;
}

}  // namespace mrts
