#include "rts/snapshot.h"

#include <cstdio>
#include <cstring>

#include "rts/mrts.h"
#include "util/counters.h"
#include "util/snapshot_io.h"
#include "util/trace.h"

namespace mrts {

namespace {

constexpr char kMagic[8] = {'M', 'R', 'T', 'S', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;

void save_meta(SnapshotWriter& w, const CheckpointMeta& meta) {
  w.str(meta.app);
  w.u32(meta.prcs);
  w.u32(meta.cg);
  w.u32(meta.frames);
  w.u64(meta.fault.seed);
  w.f64(meta.fault.fg_load_failure_prob);
  w.f64(meta.fault.cg_load_failure_prob);
  w.f64(meta.fault.transient_upset_prob);
  w.f64(meta.fault.permanent_fault_prob);
  w.u32(meta.fault.max_retries);
  w.u64(meta.fault.retry_backoff_cycles);
  w.u64(meta.fault.scrub_interval_cycles);
  w.str(meta.trace_path);
  w.str(meta.report_path);
  w.u64(meta.checkpoint_every);
  w.str(meta.checkpoint_path);
  w.u64(meta.sequence);
}

CheckpointMeta load_meta(SnapshotReader& r) {
  CheckpointMeta meta;
  meta.app = r.str();
  meta.prcs = r.u32();
  meta.cg = r.u32();
  meta.frames = r.u32();
  meta.fault.seed = r.u64();
  meta.fault.fg_load_failure_prob = r.f64();
  meta.fault.cg_load_failure_prob = r.f64();
  meta.fault.transient_upset_prob = r.f64();
  meta.fault.permanent_fault_prob = r.f64();
  meta.fault.max_retries = r.u32();
  meta.fault.retry_backoff_cycles = r.u64();
  meta.fault.scrub_interval_cycles = r.u64();
  meta.trace_path = r.str();
  meta.report_path = r.str();
  meta.checkpoint_every = r.u64();
  meta.checkpoint_path = r.str();
  meta.sequence = r.u64();
  return meta;
}

void save_progress(SnapshotWriter& w, const AppRunProgress& p) {
  w.u64(p.next_block);
  w.u64(p.cursor);
  w.str(p.partial.rts_name);
  w.u64(p.partial.total_cycles);
  w.u64(p.partial.blocking_overhead);
  w.u64(p.partial.block_cycles.size());
  for (Cycles c : p.partial.block_cycles) w.u64(c);
  for (auto e : p.partial.impl_executions) w.u64(e);
  for (auto c : p.partial.impl_cycles) w.u64(c);
}

AppRunProgress load_progress(SnapshotReader& r) {
  AppRunProgress p;
  p.next_block = r.u64();
  p.cursor = r.u64();
  p.partial.rts_name = r.str();
  p.partial.total_cycles = r.u64();
  p.partial.blocking_overhead = r.u64();
  const std::size_t n = r.length(1u << 24, "block cycle list");
  p.partial.block_cycles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) p.partial.block_cycles.push_back(r.u64());
  for (auto& e : p.partial.impl_executions) e = r.u64();
  for (auto& c : p.partial.impl_cycles) c = r.u64();
  return p;
}

void save_trace_events(SnapshotWriter& w, const TraceRecorder& recorder) {
  w.u32(recorder.default_tenant());
  w.u64(recorder.size());
  for (const TraceEvent& e : recorder.events()) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.i32(e.track);
    w.u64(e.at);
    w.u64(e.duration);
    w.u32(e.arg0);
    w.u32(e.arg1);
    w.f64(e.v0);
    w.f64(e.v1);
    w.u32(e.tenant);
  }
}

void load_trace_events(SnapshotReader& r, TraceRecorder& recorder) {
  const std::uint32_t default_tenant = r.u32();
  const std::size_t n = r.length(1u << 26, "trace event list");
  std::vector<TraceEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t at = r.pos();
    TraceEvent e;
    const std::uint8_t kind = r.u8();
    if (kind >= kNumTraceEventKinds) {
      throw SnapshotError("snapshot trace event kind out of range", at);
    }
    e.kind = static_cast<TraceEventKind>(kind);
    e.track = r.i32();
    e.at = r.u64();
    e.duration = r.u64();
    e.arg0 = r.u32();
    e.arg1 = r.u32();
    e.v0 = r.f64();
    e.v1 = r.f64();
    e.tenant = r.u32();
    events.push_back(e);
  }
  recorder.clear();
  recorder.set_default_tenant(default_tenant);
  // record() stamps tenant-0 events with the default tenant; the stored
  // events are post-stamp, so replaying them through record() is exact.
  for (const TraceEvent& e : events) recorder.record(e);
}

/// Validates header + CRC and returns a reader positioned at the payload.
SnapshotReader validated_payload(const std::vector<std::uint8_t>& bytes) {
  SnapshotReader r(bytes);
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    if (r.remaining() == 0 ||
        r.u8() != static_cast<std::uint8_t>(kMagic[i])) {
      throw SnapshotError("not an mrts.snapshot file (bad magic)", i);
    }
  }
  const std::size_t version_at = r.pos();
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion) {
    throw SnapshotError("unsupported snapshot version " +
                            std::to_string(version) + " (expected " +
                            std::to_string(kFormatVersion) + ")",
                        version_at);
  }
  const std::size_t size_at = r.pos();
  const std::uint64_t payload_size = r.u64();
  const std::uint32_t stored_crc = r.u32();
  if (payload_size != bytes.size() - kHeaderSize) {
    throw SnapshotError("snapshot payload size does not match the file",
                        size_at);
  }
  const std::uint32_t crc =
      snapshot_crc32(bytes.data() + kHeaderSize, bytes.size() - kHeaderSize);
  if (crc != stored_crc) {
    throw SnapshotError("snapshot payload CRC mismatch (corrupt bytes)",
                        kHeaderSize);
  }
  return r;  // positioned at the payload start
}

}  // namespace

std::vector<std::uint8_t> build_snapshot(const CheckpointMeta& meta,
                                         const MRts& rts,
                                         const AppRunProgress& progress,
                                         const TraceRecorder* recorder,
                                         const CounterRegistry* counters) {
  SnapshotWriter w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kFormatVersion);
  const std::size_t size_pos = w.size();
  w.u64(0);  // payload size, backpatched
  const std::size_t crc_pos = w.size();
  w.u32(0);  // payload CRC, backpatched

  save_meta(w, meta);
  save_progress(w, progress);
  rts.save_state(w);
  w.boolean(recorder != nullptr);
  if (recorder != nullptr) save_trace_events(w, *recorder);
  w.boolean(counters != nullptr);
  if (counters != nullptr) counters->save_state(w);

  const std::size_t payload_size = w.size() - kHeaderSize;
  w.patch_u64(size_pos, payload_size);
  w.patch_u32(crc_pos,
              snapshot_crc32(w.bytes().data() + kHeaderSize, payload_size));
  return w.take();
}

CheckpointMeta read_snapshot_meta(const std::vector<std::uint8_t>& bytes) {
  SnapshotReader r = validated_payload(bytes);
  return load_meta(r);
}

void apply_snapshot(const std::vector<std::uint8_t>& bytes, MRts& rts,
                    AppRunProgress& progress, TraceRecorder* recorder,
                    CounterRegistry* counters, TraceRecorder* marker) {
  SnapshotReader r = validated_payload(bytes);
  const CheckpointMeta meta = load_meta(r);
  AppRunProgress loaded = load_progress(r);
  rts.load_state(r);
  const bool has_trace = r.boolean();
  if (has_trace != (recorder != nullptr)) {
    throw SnapshotError(
        "snapshot trace stream does not match the runtime's (attach the "
        "recorder the original run had, or none)",
        r.pos());
  }
  if (recorder != nullptr) load_trace_events(r, *recorder);
  const bool has_counters = r.boolean();
  if (has_counters != (counters != nullptr)) {
    throw SnapshotError(
        "snapshot counter stream does not match the runtime's", r.pos());
  }
  if (counters != nullptr) counters->load_state(r);
  r.expect_end();
  progress = std::move(loaded);
  if (marker != nullptr) {
    marker->record({TraceEventKind::kSnapshotRestore, kTrackApp,
                    progress.cursor, 0,
                    static_cast<std::uint32_t>(meta.sequence), 0,
                    static_cast<double>(bytes.size()), 0.0});
  }
}

bool write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool written =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_snapshot_file(const std::string& path,
                        std::vector<std::uint8_t>* bytes, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  bytes->clear();
  std::uint8_t buf[1 << 16];
  while (true) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    bytes->insert(bytes->end(), buf, buf + n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && error != nullptr) *error = "read error on '" + path + "'";
  return ok;
}

}  // namespace mrts
