#include "rts/selector_optimal.h"

#include <algorithm>

#include "util/trace.h"

namespace mrts {
namespace {

struct KernelOptions {
  const TriggerEntry* entry;
  std::vector<IseId> ises;  // candidate ISEs (a "none" option is implicit)
  double upper_bound = 0.0; // optimistic max profit of this kernel
};

struct SearchState {
  const IseLibrary* lib;
  const std::vector<KernelOptions>* kernels;
  std::uint64_t node_budget;
  std::uint64_t nodes = 0;
  std::uint64_t combinations = 0;
  std::uint64_t profit_evals = 0;

  double best_profit = -1.0;
  std::vector<SelectedIse> best_selection;

  /// Suffix sums of per-kernel upper bounds for pruning.
  std::vector<double> ub_suffix;

  std::vector<SelectedIse> current;
  double current_profit = 0.0;

  /// Hot-path tuning (see rts/profit_cache.h). The search order, the bound
  /// tests and every committed schedule are identical in both modes; only
  /// the work per node differs.
  bool incremental = false;
  ProfitCache* cache = nullptr;
  EvalScratch* scratch = nullptr;
  /// Retired instance_ready vectors, reused (capacity intact) by the next
  /// push — the incremental path's only per-node heap traffic would
  /// otherwise be this vector.
  std::vector<std::vector<Cycles>> spare;
};

void dfs(SearchState& st, std::size_t depth, ReconfigPlanner& planner) {
  if (st.nodes++ > st.node_budget) return;
  if (depth == st.kernels->size()) {
    ++st.combinations;
    if (st.current_profit > st.best_profit) {
      st.best_profit = st.current_profit;
      st.best_selection = st.current;
    }
    return;
  }
  // Bound: even with optimistic profits for all remaining kernels we cannot
  // beat the incumbent.
  if (st.current_profit + st.ub_suffix[depth] <= st.best_profit) return;

  const KernelOptions& opt = (*st.kernels)[depth];

  // Option "no ISE for this kernel".
  dfs(st, depth + 1, planner);

  for (IseId ise_id : opt.ises) {
    const IseVariant& v = st.lib->ise(ise_id);
    if (!planner.fits(v.fg_units, v.cg_units)) continue;
    const double profit =
        st.incremental || st.cache != nullptr
            ? evaluate_candidate_profit(*st.lib, ise_id, *opt.entry, planner,
                                        ProfitModel{}, st.cache, *st.scratch)
            : evaluate_candidate(*st.lib, ise_id, *opt.entry, planner).profit;
    ++st.profit_evals;
    SelectedIse sel;
    sel.kernel = opt.entry->kernel;
    sel.ise = ise_id;
    sel.profit = profit;
    if (st.incremental) {
      // Extend the shared planner in place and undo on the way out instead
      // of copying its whole state (three hash maps) per node.
      const ReconfigPlanner::Checkpoint cp = planner.mark();
      if (!st.spare.empty()) {
        sel.instance_ready = std::move(st.spare.back());
        st.spare.pop_back();
      }
      planner.commit_into(v.data_paths, sel.instance_ready);
      st.current.push_back(std::move(sel));
      st.current_profit += profit;
      dfs(st, depth + 1, planner);
      st.current_profit -= profit;
      st.spare.push_back(std::move(st.current.back().instance_ready));
      st.current.pop_back();
      planner.rollback(cp);
    } else {
      ReconfigPlanner child = planner;
      sel.instance_ready = child.commit(v.data_paths);
      st.current.push_back(std::move(sel));
      st.current_profit += profit;
      dfs(st, depth + 1, child);
      st.current_profit -= profit;
      st.current.pop_back();
    }
  }
}

}  // namespace

OptimalSelector::OptimalSelector(const IseLibrary& lib,
                                 std::uint64_t node_budget)
    : lib_(&lib), node_budget_(node_budget) {}

SelectionResult OptimalSelector::select(const TriggerInstruction& ti,
                                        ReconfigPlanner planner) const {
  ProfitCache* cache = tuning_.memoize_profits ? cache_ : nullptr;
  if (cache != nullptr) cache->begin_select();
  const bool fast_eval = cache != nullptr || tuning_.incremental_planner;
  EvalScratch scratch;

  std::vector<KernelOptions> kernels;
  kernels.reserve(ti.entries.size());
  std::uint64_t ub_evals = 0;
  for (const auto& entry : ti.entries) {
    KernelOptions opt;
    opt.entry = &entry;
    const Kernel& k = lib_->kernel(entry.kernel);
    for (IseId ise : k.ises) {
      const IseVariant& v = lib_->ise(ise);
      if (!v.fits(planner.free_prcs(), planner.free_cg())) continue;
      opt.ises.push_back(ise);
      // Optimistic bound: the root planner has the shortest port backlog and
      // the fullest set of reusable instances any node will ever see, so no
      // deeper evaluation of this ISE can exceed this profit. With the memo
      // attached these evaluations seed it: the search re-meets the root
      // planner state along the all-"no ISE" DFS prefix of every kernel.
      const double profit =
          fast_eval ? evaluate_candidate_profit(*lib_, ise, entry, planner,
                                                ProfitModel{}, cache, scratch)
                    : evaluate_candidate(*lib_, ise, entry, planner).profit;
      ++ub_evals;
      opt.upper_bound = std::max(opt.upper_bound, profit);
    }
    kernels.push_back(std::move(opt));
  }

  // Search kernels with the largest upper bound first: tightens the bound
  // early and prunes more of the tree.
  std::sort(kernels.begin(), kernels.end(),
            [](const KernelOptions& a, const KernelOptions& b) {
              return a.upper_bound > b.upper_bound;
            });

  SearchState st;
  st.lib = lib_;
  st.kernels = &kernels;
  st.node_budget = node_budget_;
  st.ub_suffix.assign(kernels.size() + 1, 0.0);
  for (std::size_t i = kernels.size(); i > 0; --i) {
    st.ub_suffix[i - 1] = st.ub_suffix[i] + kernels[i - 1].upper_bound;
  }
  st.incremental = tuning_.incremental_planner;
  st.cache = cache;
  st.scratch = &scratch;

  dfs(st, 0, planner);
  last_combinations_ = st.combinations;

  SelectionResult result;
  result.selected = std::move(st.best_selection);
  result.total_profit = std::max(0.0, st.best_profit);
  result.profit_evaluations = st.profit_evals + ub_evals;
  result.candidates_scanned = st.nodes;
  result.overhead_cycles = 0;  // not meaningful: this algorithm is offline
  if (cache != nullptr) cache->flush(counters_, trace_, planner.now());
  if (trace_ != nullptr) {
    for (std::size_t i = 0; i < result.selected.size(); ++i) {
      const SelectedIse& sel = result.selected[i];
      trace_->record({TraceEventKind::kSelectorPick, kTrackSelector,
                      planner.now(), 0, raw(sel.kernel), raw(sel.ise),
                      sel.profit, static_cast<double>(i + 1)});
    }
  }
  return result;
}

}  // namespace mrts
