#include "rts/selector_optimal.h"

#include <algorithm>

#include "util/trace.h"

namespace mrts {
namespace {

struct KernelOptions {
  const TriggerEntry* entry;
  std::vector<IseId> ises;  // candidate ISEs (a "none" option is implicit)
  double upper_bound = 0.0; // optimistic max profit of this kernel
};

struct SearchState {
  const IseLibrary* lib;
  const std::vector<KernelOptions>* kernels;
  std::uint64_t node_budget;
  std::uint64_t nodes = 0;
  std::uint64_t combinations = 0;
  std::uint64_t profit_evals = 0;

  double best_profit = -1.0;
  std::vector<SelectedIse> best_selection;

  /// Suffix sums of per-kernel upper bounds for pruning.
  std::vector<double> ub_suffix;

  std::vector<SelectedIse> current;
  double current_profit = 0.0;
};

void dfs(SearchState& st, std::size_t depth, const ReconfigPlanner& planner) {
  if (st.nodes++ > st.node_budget) return;
  if (depth == st.kernels->size()) {
    ++st.combinations;
    if (st.current_profit > st.best_profit) {
      st.best_profit = st.current_profit;
      st.best_selection = st.current;
    }
    return;
  }
  // Bound: even with optimistic profits for all remaining kernels we cannot
  // beat the incumbent.
  if (st.current_profit + st.ub_suffix[depth] <= st.best_profit) return;

  const KernelOptions& opt = (*st.kernels)[depth];

  // Option "no ISE for this kernel".
  dfs(st, depth + 1, planner);

  for (IseId ise_id : opt.ises) {
    const IseVariant& v = st.lib->ise(ise_id);
    if (!planner.fits(v.fg_units, v.cg_units)) continue;
    const ProfitResult pr =
        evaluate_candidate(*st.lib, ise_id, *opt.entry, planner);
    ++st.profit_evals;
    ReconfigPlanner child = planner;
    SelectedIse sel;
    sel.kernel = opt.entry->kernel;
    sel.ise = ise_id;
    sel.profit = pr.profit;
    sel.instance_ready = child.commit(v.data_paths);
    st.current.push_back(std::move(sel));
    st.current_profit += pr.profit;
    dfs(st, depth + 1, child);
    st.current_profit -= pr.profit;
    st.current.pop_back();
  }
}

}  // namespace

OptimalSelector::OptimalSelector(const IseLibrary& lib,
                                 std::uint64_t node_budget)
    : lib_(&lib), node_budget_(node_budget) {}

SelectionResult OptimalSelector::select(const TriggerInstruction& ti,
                                        ReconfigPlanner planner) const {
  std::vector<KernelOptions> kernels;
  kernels.reserve(ti.entries.size());
  std::uint64_t ub_evals = 0;
  for (const auto& entry : ti.entries) {
    KernelOptions opt;
    opt.entry = &entry;
    const Kernel& k = lib_->kernel(entry.kernel);
    for (IseId ise : k.ises) {
      const IseVariant& v = lib_->ise(ise);
      if (!v.fits(planner.free_prcs(), planner.free_cg())) continue;
      opt.ises.push_back(ise);
      // Optimistic bound: the root planner has the shortest port backlog and
      // the fullest set of reusable instances any node will ever see, so no
      // deeper evaluation of this ISE can exceed this profit.
      const ProfitResult pr = evaluate_candidate(*lib_, ise, entry, planner);
      ++ub_evals;
      opt.upper_bound = std::max(opt.upper_bound, pr.profit);
    }
    kernels.push_back(std::move(opt));
  }

  // Search kernels with the largest upper bound first: tightens the bound
  // early and prunes more of the tree.
  std::sort(kernels.begin(), kernels.end(),
            [](const KernelOptions& a, const KernelOptions& b) {
              return a.upper_bound > b.upper_bound;
            });

  SearchState st;
  st.lib = lib_;
  st.kernels = &kernels;
  st.node_budget = node_budget_;
  st.ub_suffix.assign(kernels.size() + 1, 0.0);
  for (std::size_t i = kernels.size(); i > 0; --i) {
    st.ub_suffix[i - 1] = st.ub_suffix[i] + kernels[i - 1].upper_bound;
  }

  dfs(st, 0, planner);
  last_combinations_ = st.combinations;

  SelectionResult result;
  result.selected = std::move(st.best_selection);
  result.total_profit = std::max(0.0, st.best_profit);
  result.profit_evaluations = st.profit_evals + ub_evals;
  result.candidates_scanned = st.nodes;
  result.overhead_cycles = 0;  // not meaningful: this algorithm is offline
  if (trace_ != nullptr) {
    for (std::size_t i = 0; i < result.selected.size(); ++i) {
      const SelectedIse& sel = result.selected[i];
      trace_->record({TraceEventKind::kSelectorPick, kTrackSelector,
                      planner.now(), 0, raw(sel.kernel), raw(sel.ise),
                      sel.profit, static_cast<double>(i + 1)});
    }
  }
  return result;
}

}  // namespace mrts
