#include "rts/profit_cache.h"

#include <cstring>

#include "util/counters.h"
#include "util/trace.h"

namespace mrts {

std::size_t ProfitCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the key fields. The key is pure value state, so hashing the
  // members directly (no padding bytes) is both portable and fast.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(k.epoch);
  mix(k.now);
  mix(k.fg_cursor);
  mix(k.cg_cursor);
  mix(k.uniform_reconfig);
  mix(k.claims);
  mix(k.e_bits);
  mix(k.tf);
  mix(k.tb);
  mix((std::uint64_t{k.ise} << 8) | k.model_bits);
  return static_cast<std::size_t>(h);
}

bool ProfitCache::make_key(Key& key, IseId ise, const IseVariant& variant,
                          const TriggerEntry& entry,
                          const ReconfigPlanner& planner,
                          const ProfitModel& model) {
  // Claim signature: one byte per *distinct* data path of the ISE, in order
  // of first occurrence (a fixed order per ISE, so equal planner states
  // always produce equal signatures). plan() consults exactly these counts,
  // nothing else, of the claim multiset.
  const auto& dps = variant.data_paths;
  std::uint64_t claims = 0;
  unsigned distinct = 0;
  for (std::size_t i = 0; i < dps.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (dps[j] == dps[i]) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const unsigned count = planner.claimed_count(dps[i]);
    if (distinct == 8 || count > 0xff) return false;
    claims |= std::uint64_t{count} << (8 * distinct);
    ++distinct;
  }

  key.epoch = planner.fabric_epoch();
  key.now = planner.now();
  key.fg_cursor = planner.fg_cursor();
  key.cg_cursor = planner.cg_cursor();
  key.uniform_reconfig = planner.uniform_reconfig_cycles();
  key.claims = claims;
  static_assert(sizeof(key.e_bits) == sizeof(entry.expected_executions));
  std::memcpy(&key.e_bits, &entry.expected_executions, sizeof(key.e_bits));
  key.tf = entry.time_to_first;
  key.tb = entry.time_between;
  key.ise = raw(ise);
  key.model_bits = (model.account_risc_window ? 1u : 0u) |
                   (model.include_tb ? 2u : 0u);
  return true;
}

void ProfitCache::begin_select() {
  map_.clear();
  select_hits_ = 0;
  select_misses_ = 0;
}

const double* ProfitCache::lookup(const Key& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++select_misses_;
    ++total_misses_;
    return nullptr;
  }
  ++select_hits_;
  ++total_hits_;
  return &it->second;
}

void ProfitCache::flush(CounterRegistry* counters, TraceRecorder* trace,
                        Cycles now) {
  if (select_hits_ + select_misses_ != 0) {
    if (counters != nullptr) {
      counters->add("selector.cache.hit", select_hits_);
      counters->add("selector.cache.miss", select_misses_);
    }
    if (trace != nullptr) {
      trace->record({TraceEventKind::kSelectorCacheStats, kTrackSelector, now,
                     0, 0, 0, static_cast<double>(select_hits_),
                     static_cast<double>(select_misses_)});
    }
  }
  select_hits_ = 0;
  select_misses_ = 0;
}

}  // namespace mrts
