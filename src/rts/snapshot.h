#pragma once
/// \file snapshot.h
/// Whole-runtime checkpoint/restore for crash-resilient runs (format
/// `mrts.snapshot.v1`). A snapshot captures everything that determines the
/// remainder of an mRTS application run: the run's identity (workload,
/// fabric shape, fault config — the meta header), the application progress
/// (next block, cycle cursor, partial aggregates), the complete MRts state
/// (fabric placement + port backlogs + quarantine set, fault RNG/stats, MPU
/// forecasts, ECU state, run stats, lookahead predictor) and — when the run
/// is observed — the flight-recorder events and counter values accumulated
/// so far. Restoring into a fresh process resumes the run *bit-identically*:
/// cycles, counters, fault tables and the trace suffix all match the
/// uninterrupted run (tests/test_snapshot.cpp pins this).
///
/// File layout (all little-endian):
///   [0..8)   magic "MRTSSNAP"
///   [8..12)  u32 format version (1)
///   [12..20) u64 payload size in bytes
///   [20..24) u32 CRC-32 (IEEE) of the payload
///   [24.. )  payload: meta, progress, MRts state, observability streams
///
/// Integrity contract: the CRC is validated over the *whole* payload before
/// any runtime object is touched, so truncated/corrupt bytes can never
/// partially mutate a live runtime — they fail in read_snapshot_meta /
/// apply_snapshot with a SnapshotError naming the offending byte offset
/// (util/snapshot_io.h), which the CLI maps to exit code 2.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/fault_model.h"
#include "sim/app_simulator.h"
#include "util/types.h"

namespace mrts {

class MRts;
class TraceRecorder;
class CounterRegistry;

/// Everything needed to rebuild the run before state can be applied: the
/// restoring process constructs the workload, the MRts (same fabric shape
/// and fault config) and the observability streams from this header, then
/// calls apply_snapshot. Decodable without any runtime via
/// read_snapshot_meta — cheap enough for `mrts_cli restore` to bootstrap
/// from the file alone.
struct CheckpointMeta {
  std::string app;            ///< workload builder ("h264" | "sdr")
  std::uint32_t prcs = 0;     ///< FG fabric shape
  std::uint32_t cg = 0;       ///< number of CG fabrics
  std::uint32_t frames = 0;   ///< frames/bursts of the workload builder
  FaultModelConfig fault;     ///< reconstructs the injector (seed included)
  std::string trace_path;     ///< --trace of the original run ("" = none)
  std::string report_path;    ///< --report of the original run ("" = none)
  /// Periodic-checkpoint cadence of the original run in cycles (0 = the
  /// snapshot came from a one-shot `checkpoint` invocation). A restored run
  /// keeps checkpointing on the same absolute-cycle grid, so a run that is
  /// killed and restored repeatedly still converges to the same end state.
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path;  ///< file the periodic snapshots overwrite
  std::uint64_t sequence = 0;   ///< ordinal of this snapshot within the run
};

/// Serializes the complete runtime into an `mrts.snapshot.v1` byte image.
/// \p recorder / \p counters may be null for unobserved runs (their absence
/// is recorded; apply_snapshot then requires null streams too).
std::vector<std::uint8_t> build_snapshot(const CheckpointMeta& meta,
                                         const MRts& rts,
                                         const AppRunProgress& progress,
                                         const TraceRecorder* recorder,
                                         const CounterRegistry* counters);

/// Validates magic/version/size/CRC and decodes the meta header only.
/// Throws SnapshotError (with the failing offset) on any malformation.
CheckpointMeta read_snapshot_meta(const std::vector<std::uint8_t>& bytes);

/// Full restore: validates the image exactly like read_snapshot_meta, then
/// loads progress, MRts state and the observability streams. \p rts must
/// have been constructed to the meta's shape (fabric size, fault config) —
/// mismatches throw SnapshotError. \p marker (optional, normally null)
/// receives one kSnapshotRestore event; the *resumed* recorder deliberately
/// gets no marker, so a restored run's trace stays byte-identical to the
/// uninterrupted one.
void apply_snapshot(const std::vector<std::uint8_t>& bytes, MRts& rts,
                    AppRunProgress& progress, TraceRecorder* recorder,
                    CounterRegistry* counters,
                    TraceRecorder* marker = nullptr);

/// Atomically writes \p bytes to \p path (temp file + rename), so a crash
/// mid-checkpoint can never leave a half-written snapshot behind.
bool write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& bytes);

/// Reads a snapshot file whole. Returns false (with \p error set) when the
/// file cannot be opened/read; content validation happens in
/// read_snapshot_meta / apply_snapshot.
bool read_snapshot_file(const std::string& path,
                        std::vector<std::uint8_t>* bytes, std::string* error);

}  // namespace mrts
