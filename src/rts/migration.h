#pragma once
/// \file migration.h
/// Migration-based FG defragmentation (Mestra direction, PAPERS.md).
/// Permanent faults quarantine PRCs at arbitrary positions, and failed
/// repairs punch holes into the middle of the fabric; both scatter the free
/// space that future selections must fit into. obs/occupancy measures the
/// damage post-hoc (fragmentation_index, compaction_opportunity); this
/// policy *repairs* it live: after a quarantine it migrates surviving
/// configurations into the low end of the PRC array (FabricManager::
/// migrate_prc — real drain + copy streams on the reconfiguration port, same
/// per-byte cost and fault semantics as any load) until the remaining free
/// space is one contiguous run.
///
/// The policy is deliberately mechanism-free: it owns no fabric state and
/// every mutation goes through the public migration API, so a pass is
/// exactly as expensive — and exactly as fallible — as the loads it issues.

#include <cstdint>

#include "util/types.h"

namespace mrts {

class FabricManager;

/// Knobs of the defragmentation policy. Default-off: an MRts with the
/// default config never migrates, keeping existing runs bit-identical.
struct DefragConfig {
  /// Master switch: run a compaction pass after every scrub that
  /// quarantined at least one additional container.
  bool enabled = false;
  /// Skip the pass while the live fragmentation (fg_fragmentation) is below
  /// this threshold — a single solid free block needs no compaction.
  double min_fragmentation = 0.0;
  /// Upper bound on migrations per pass (port-pressure guard). 0 = no bound.
  unsigned max_migrations_per_pass = 0;
};

/// Outcome of one compaction pass.
struct DefragReport {
  unsigned attempted = 0;  ///< migrations issued (incl. failed copies)
  unsigned migrated = 0;   ///< migrations that completed
  double fragmentation_before = 0.0;
  double fragmentation_after = 0.0;
  /// Completion of the last successful copy stream (now when none ran).
  Cycles ready_at = 0;
};

/// Instantaneous FG fragmentation of the *live* placement — the same
/// 1 - r/f metric obs/occupancy integrates over the trace, evaluated on the
/// current fabric state: f free (empty, non-quarantined) PRCs whose largest
/// contiguous free run is r give 1 - r/f; 0.0 when f == 0. Quarantined
/// containers are not free and break runs.
double fg_fragmentation(const FabricManager& fabric);

/// Scattered free PRCs a compaction pass could fold into the largest run
/// (the live counterpart of OccupancyAnalysis::compaction_opportunity).
unsigned fg_compaction_opportunity(const FabricManager& fabric);

/// Lower bound a compaction pass can reach: the fragmentation of the same
/// fabric with every surviving configuration packed into the lowest
/// non-quarantined PRCs. Usually 0.0, but a quarantined container between
/// the top free slots splits the packed tail and no migration can merge it —
/// compaction is complete when fg_fragmentation == fg_fragmentation_floor.
double fg_fragmentation_floor(const FabricManager& fabric);

class DefragPolicy {
 public:
  explicit DefragPolicy(DefragConfig config = {}) : config_(config) {}

  const DefragConfig& config() const { return config_; }

  /// One greedy compaction pass at cycle \p now: repeatedly moves the
  /// occupant of the highest occupied PRC into the lowest free one below it
  /// until the free space is contiguous, the migration budget is exhausted
  /// or a copy fails twice in a row (the port keeps its backlog either way).
  /// Copy failures skip the target (it may just have been quarantined by
  /// the failed stream's diagnosis) and retry the source elsewhere.
  DefragReport compact(FabricManager& fabric, Cycles now) const;

  /// Fault-path entry: runs compact() only when enabled and the live
  /// fragmentation has reached the configured threshold. Called by MRts
  /// right after a scrub that grew the quarantine set.
  DefragReport recover(FabricManager& fabric, Cycles now) const;

 private:
  DefragConfig config_;
};

}  // namespace mrts
