#pragma once
/// \file ecu.h
/// Execution Control Unit (Section 4.2, Fig. 7). For every kernel execution
/// the ECU picks the implementation, in priority order:
///
///   a) the selected ISE, if all of its data paths are reconfigured;
///   b) the best available intermediate ISE — either a configured prefix of
///      the selected ISE, or another ISE of the kernel whose data paths
///      happen to be configured (shared data paths of other selections);
///   c) a monoCG-Extension: the whole kernel on one *free* CG fabric. Its
///      reconfiguration takes only microseconds, so it bridges the long
///      delay until the first FG data path arrives;
///   d) plain RISC-mode execution on the core processor.
///
/// The same ladder is the machine's graceful-degradation path under faults
/// (arch/fault_model.h): an unloadable data path (CRC retries exhausted) or
/// a container under scrub repair simply never reaches its timeline step, so
/// execution falls to the best intermediate / monoCG / RISC — and with every
/// container quarantined, everything runs in RISC mode.
///
/// Implementation note: within one functional block the set of configured
/// data paths only grows (installs happen at block boundaries), so each
/// kernel's decision is a monotone timeline of (time, latency) improvements.
/// begin_block() precomputes that timeline once; execute() is then O(1)
/// amortized — this is what makes simulating hundreds of thousands of kernel
/// executions per second feasible. The one approximation: a monoCG context
/// load that evicts a stale leftover context mid-block is not reflected in
/// already-built timelines of *other* kernels (the stale context would
/// almost never be their best option anyway).

#include <array>
#include <unordered_map>
#include <vector>

#include "arch/fabric_manager.h"
#include "isa/ise_library.h"
#include "rts/rts_interface.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
class CounterRegistry;

/// Per-implementation execution counters.
struct EcuStats {
  std::array<std::uint64_t, kNumImplKinds> executions{};
  std::array<Cycles, kNumImplKinds> cycles{};
  Cycles saved_vs_risc = 0;  ///< total cycles saved compared to RISC mode
  Cycles context_switch_cycles = 0;

  std::uint64_t total_executions() const {
    std::uint64_t n = 0;
    for (auto e : executions) n += e;
    return n;
  }
};

class Ecu {
 public:
  struct Config {
    bool use_intermediates = true;   ///< step (b), prefix part
    bool use_cross_coverage = true;  ///< step (b), shared-data-path part
    bool use_mono_cg = true;         ///< step (c)
  };

  Ecu(const IseLibrary& lib, FabricManager& fabric)
      : Ecu(lib, fabric, Config{}) {}
  Ecu(const IseLibrary& lib, FabricManager& fabric, Config config);

  /// Installs the per-kernel assignments of a new functional block and
  /// precomputes each kernel's implementation timeline.
  /// \p placements comes from FabricManager::install (real ready times).
  void begin_block(const std::vector<IsePlacement>& placements, Cycles now);

  /// Decides and accounts one execution of kernel \p k at cycle \p now.
  /// \p now must be non-decreasing across calls within one block.
  ExecOutcome execute(KernelId k, Cycles now);

  const EcuStats& stats() const { return stats_; }
  void reset();

  /// Attaches the flight recorder / counter registry (either may be null).
  /// Detached (the default) the per-execution instrumentation is a single
  /// test of the cached observing_ flag.
  void attach_observability(TraceRecorder* trace, CounterRegistry* counters) {
    trace_ = trace;
    counters_ = counters;
    observing_ = trace != nullptr || counters != nullptr;
  }

 private:
  /// One point where a (possibly better) implementation becomes available.
  struct Option {
    Cycles at = 0;
    Cycles latency = 0;
    ImplKind kind = ImplKind::kRisc;
    bool uses_cg = false;
  };

  struct KernelState {
    std::vector<Option> timeline;  ///< sorted by `at`
    std::size_t next = 0;
    Cycles current_latency = 0;
    ImplKind current_kind = ImplKind::kRisc;
    bool current_uses_cg = false;
    bool mono_attempted = false;
    Cycles mono_ready = kNeverCycles;
    /// Last ImplKind reported to the flight recorder (0xff = none yet);
    /// execute() emits a decision event only when the kind changes.
    std::uint8_t traced_impl = 0xff;
  };

  /// Appends the availability steps of \p ise (levels reachable from the
  /// fabric's instance-ready times) to \p timeline.
  void append_ise_options(const IseVariant& ise, bool is_selected,
                          const std::vector<Cycles>* installed_prefix,
                          std::vector<Option>& timeline) const;

  KernelState& state_for(KernelId k, Cycles now);
  void rebuild_kernel(KernelId k, KernelState& st, const IsePlacement* placed,
                      Cycles now) const;
  /// Cold tail of execute(): records the decision event / counters. Kept out
  /// of the hot path so the untraced run pays one branch, not code bloat.
  void note_execution(KernelState& st, KernelId k, ImplKind kind,
                      Cycles latency, Cycles now);

  const IseLibrary* lib_;
  FabricManager* fabric_;
  Config config_;
  std::unordered_map<std::uint32_t, KernelState> state_;
  KernelId last_executed_ = kInvalidKernel;
  EcuStats stats_;
  TraceRecorder* trace_ = nullptr;
  CounterRegistry* counters_ = nullptr;
  bool observing_ = false;  ///< trace_ != nullptr || counters_ != nullptr
};

}  // namespace mrts
