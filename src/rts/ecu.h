#pragma once
/// \file ecu.h
/// Execution Control Unit (Section 4.2, Fig. 7). For every kernel execution
/// the ECU picks the implementation, in priority order:
///
///   a) the selected ISE, if all of its data paths are reconfigured;
///   b) the best available intermediate ISE — either a configured prefix of
///      the selected ISE, or another ISE of the kernel whose data paths
///      happen to be configured (shared data paths of other selections);
///   c) a monoCG-Extension: the whole kernel on one *free* CG fabric. Its
///      reconfiguration takes only microseconds, so it bridges the long
///      delay until the first FG data path arrives;
///   d) plain RISC-mode execution on the core processor.
///
/// The same ladder is the machine's graceful-degradation path under faults
/// (arch/fault_model.h): an unloadable data path (CRC retries exhausted) or
/// a container under scrub repair simply never reaches its timeline step, so
/// execution falls to the best intermediate / monoCG / RISC — and with every
/// container quarantined, everything runs in RISC mode.
///
/// Implementation note: within one functional block the set of configured
/// data paths only grows (installs happen at block boundaries), so each
/// kernel's decision is a monotone timeline of (time, latency) improvements.
/// begin_block() precomputes that timeline once; execute() is then O(1)
/// amortized — this is what makes simulating hundreds of thousands of kernel
/// executions per second feasible. The one approximation: a monoCG context
/// load that evicts a stale leftover context mid-block is not reflected in
/// already-built timelines of *other* kernels (the stale context would
/// almost never be their best option anyway).

#include <array>
#include <vector>

#include "arch/fabric_manager.h"
#include "isa/ise_library.h"
#include "rts/rts_interface.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
class CounterRegistry;
struct ExecEvent;       // sim/schedule.h
class ObservationSink;  // sim/obs_accum.h
class SnapshotWriter;
class SnapshotReader;

/// Per-implementation execution counters.
struct EcuStats {
  std::array<std::uint64_t, kNumImplKinds> executions{};
  std::array<Cycles, kNumImplKinds> cycles{};
  Cycles saved_vs_risc = 0;  ///< total cycles saved compared to RISC mode
  Cycles context_switch_cycles = 0;

  std::uint64_t total_executions() const {
    std::uint64_t n = 0;
    for (auto e : executions) n += e;
    return n;
  }
};

class Ecu {
 public:
  struct Config {
    bool use_intermediates = true;   ///< step (b), prefix part
    bool use_cross_coverage = true;  ///< step (b), shared-data-path part
    bool use_mono_cg = true;         ///< step (c)
  };

  Ecu(const IseLibrary& lib, FabricManager& fabric)
      : Ecu(lib, fabric, Config{}) {}
  Ecu(const IseLibrary& lib, FabricManager& fabric, Config config);

  /// Installs the per-kernel assignments of a new functional block and
  /// precomputes each kernel's implementation timeline.
  /// \p placements comes from FabricManager::install (real ready times).
  void begin_block(const std::vector<IsePlacement>& placements, Cycles now);

  /// Decides and accounts one execution of kernel \p k at cycle \p now.
  /// \p now must be non-decreasing across calls within one block.
  ExecOutcome execute(KernelId k, Cycles now);

  /// Batched execution of a run of \p n back-to-back executions of \p k
  /// (contract of RuntimeSystem::execute_run). Executes events through the
  /// full execute() path until the kernel's decision is *steady* — its
  /// timeline holds no option arriving before the run's last execution and
  /// no monoCG transition is pending — then commits the remaining events in
  /// O(1): within one run no fabric mutation can occur (block execution is
  /// single threaded) and instance availability is monotone in time at a
  /// fixed fabric state, so the decided (kind, latency) provably repeats.
  /// Stats, ECU state and the returned cursor are bit-identical to n
  /// execute() calls; with observability attached it *is* n execute() calls
  /// (the trace/counter stream stays exact).
  Cycles execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                     std::size_t n, Cycles gap_total,
                     std::uint64_t* impl_executions, Cycles* impl_cycles,
                     Cycles* first_exec_start);

  /// Whole-block batched execution (contract of
  /// RuntimeSystem::execute_events): one non-virtual loop over the block's
  /// runs. Each kernel's first run derives a *steady-decision memo*
  /// ((kind, latency, uses_cg) plus the cycle horizon it provably holds to
  /// and the fabric state epoch it was taken at); later runs that fit the
  /// horizon at an unchanged epoch commit in O(1) — including the
  /// context-switch penalty of their first execution — without touching
  /// the timeline or the fabric. Any epoch bump, horizon crossing or
  /// attached observability falls back to the exact per-event path.
  Cycles execute_events(const ExecEvent* events, const ExecRun* runs,
                        std::size_t num_runs, Cycles cursor,
                        std::uint64_t* impl_executions, Cycles* impl_cycles,
                        ObservationSink& obs);

  const EcuStats& stats() const { return stats_; }
  void reset();

  /// Block-boundary state capture/restore (rts/snapshot.h). Checkpoints are
  /// taken between blocks, where the only ECU state that can influence the
  /// remainder of the run is: the cumulative stats, each kernel's monoCG
  /// knowledge (mono_ready survives blocks — a loaded context may still be
  /// resident), the last ImplKind reported to the flight recorder (gates
  /// kEcuDecision emission, so the resumed trace suffix stays identical)
  /// and the last-executed kernel. Timelines/steady memos are *not* stored:
  /// restore marks every kernel needs-rebuild, and rebuilds are pure
  /// functions of (library, fabric state, now) — exactly how begin_block
  /// re-derives them in the uninterrupted run.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

  /// Attaches the flight recorder / counter registry (either may be null).
  /// Detached (the default) the per-execution instrumentation is a single
  /// test of the cached observing_ flag.
  void attach_observability(TraceRecorder* trace, CounterRegistry* counters) {
    trace_ = trace;
    counters_ = counters;
    observing_ = trace != nullptr || counters != nullptr;
  }

 private:
  /// One point where a (possibly better) implementation becomes available.
  struct Option {
    Cycles at = 0;
    Cycles latency = 0;
    ImplKind kind = ImplKind::kRisc;
    bool uses_cg = false;
  };

  struct KernelState {
    std::vector<Option> timeline;  ///< sorted by `at`
    std::size_t next = 0;
    Cycles current_latency = 0;
    ImplKind current_kind = ImplKind::kRisc;
    bool current_uses_cg = false;
    bool mono_attempted = false;
    /// A full rebuild has run at least once (states live in a dense vector,
    /// so a default-constructed entry is not yet meaningful).
    bool built = false;
    Cycles mono_ready = kNeverCycles;
    /// Last ImplKind reported to the flight recorder (0xff = none yet);
    /// execute() emits a decision event only when the kind changes.
    std::uint8_t traced_impl = 0xff;
    Cycles sw_latency = 0;  ///< cached kernel sw_latency (set by rebuild)

    // Steady-decision memo (see execute_events). Valid only while
    // steady_epoch matches the fabric's state epoch; covers executions whose
    // start cycle is <= steady_until.
    bool steady_valid = false;
    bool steady_uses_cg = false;
    ImplKind steady_kind = ImplKind::kRisc;
    Cycles steady_latency = 0;
    Cycles steady_until = 0;
    std::uint64_t steady_epoch = 0;
  };

  /// Appends the availability steps of \p ise (levels reachable from the
  /// fabric's instance-ready times) to \p timeline.
  void append_ise_options(const IseVariant& ise, bool is_selected,
                          const std::vector<Cycles>* installed_prefix,
                          std::vector<Option>& timeline) const;

  KernelState& state_for(KernelId k, Cycles now);
  void rebuild_kernel(KernelId k, KernelState& st, const IsePlacement* placed,
                      Cycles now) const;
  /// Tries to derive the steady-decision memo for \p st right after a full
  /// execution at cycle \p now. Returns false while the decision is still in
  /// flux (a monoCG acquisition attempt is due or a reservation is pending
  /// beyond \p now with no usable horizon).
  bool derive_steady(const Kernel& kernel, KernelState& st, Cycles now);
  /// Cold tail of execute(): records the decision event / counters. Kept out
  /// of the hot path so the untraced run pays one branch, not code bloat.
  void note_execution(KernelState& st, KernelId k, ImplKind kind,
                      Cycles latency, Cycles now);

  const IseLibrary* lib_;
  FabricManager* fabric_;
  Config config_;
  /// Per-data-path ready-time cache for timeline rebuilds, keyed on the
  /// fabric's state epoch (stamp stores epoch + 1; 0 = never filled). The
  /// epoch is monotone for the fabric's lifetime and an Ecu is bound to one
  /// fabric, so a stamp hit proves the cached times are current. Mutable:
  /// filled lazily from the const rebuild path.
  mutable std::vector<std::vector<Cycles>> ready_cache_;
  mutable std::vector<std::uint64_t> ready_stamp_;
  /// Per-call occurrence counters of append_ise_options (how many times a
  /// data path repeats within one ISE prefix), stamped per invocation so
  /// they never need clearing.
  mutable std::vector<unsigned> occurrence_;
  mutable std::vector<std::uint64_t> occurrence_stamp_;
  mutable std::uint64_t occurrence_call_ = 0;
  /// Dense per-kernel state, indexed by raw KernelId (kernel ids are dense
  /// 0..num_kernels-1 by construction of the ISE library). A vector keeps
  /// the per-execution lookup a single indexed load instead of a hash probe.
  std::vector<KernelState> state_;
  KernelId last_executed_ = kInvalidKernel;
  EcuStats stats_;
  TraceRecorder* trace_ = nullptr;
  CounterRegistry* counters_ = nullptr;
  bool observing_ = false;  ///< trace_ != nullptr || counters_ != nullptr
};

}  // namespace mrts
