#pragma once
/// \file mpu.h
/// Monitoring & Prediction Unit (Section 4). Trigger instructions carry
/// forecasts {e, tf, tb} obtained from offline profiling; because the real
/// numbers drift with the input data, the MPU monitors the actual values of
/// every functional-block instance and updates the forecasts with a
/// lightweight error back-propagation scheme [12]: each prediction moves
/// toward the observation by a fraction alpha of the prediction error.

#include <optional>
#include <unordered_map>

#include "isa/trigger.h"
#include "rts/rts_interface.h"
#include "util/stats.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
class CounterRegistry;
class SnapshotWriter;
class SnapshotReader;

class Mpu {
 public:
  struct Config {
    bool enabled = true;   ///< disabled -> trigger forecasts pass through
    double alpha = 0.5;    ///< back-propagation correction gain
  };

  Mpu() : Mpu(Config{}) {}
  explicit Mpu(Config config);

  /// Replaces the programmed forecasts with the learned ones where
  /// observations exist.
  TriggerInstruction refine(const TriggerInstruction& programmed) const;

  /// Feeds the observed statistics of a finished block instance. \p now is
  /// the block-end cycle, used only to timestamp forecast-error trace
  /// events; it does not influence the forecasts.
  void observe(const BlockObservation& observed, Cycles now = 0);

  /// Learned forecast for (block, kernel); nullopt if never observed.
  std::optional<TriggerEntry> forecast(FunctionalBlockId fb, KernelId k) const;

  std::uint64_t observations() const { return observations_; }

  void reset();

  /// Exact forecast-table capture/restore (rts/snapshot.h). Entries are
  /// written in ascending key order so the byte stream is independent of
  /// unordered_map iteration order (snapshot determinism contract).
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

  /// Attaches the flight recorder / counter registry (either may be null).
  void attach_observability(TraceRecorder* trace, CounterRegistry* counters) {
    trace_ = trace;
    counters_ = counters;
  }

 private:
  struct KernelForecast {
    Ewma executions;
    Ewma time_to_first;
    Ewma time_between;
  };

  static std::uint64_t key(FunctionalBlockId fb, KernelId k) {
    return (static_cast<std::uint64_t>(raw(fb)) << 32) | raw(k);
  }

  Config config_;
  std::unordered_map<std::uint64_t, KernelForecast> forecasts_;
  std::uint64_t observations_ = 0;
  TraceRecorder* trace_ = nullptr;
  CounterRegistry* counters_ = nullptr;
};

}  // namespace mrts
