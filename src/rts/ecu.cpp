#include "rts/ecu.h"

#include <algorithm>

#include "sim/obs_accum.h"
#include "sim/schedule.h"
#include "util/counters.h"
#include "util/snapshot_io.h"
#include "util/trace.h"

namespace mrts {

namespace {
/// Counter names per ImplKind (same order as the enum).
constexpr std::array<const char*, kNumImplKinds> kExecCounterNames = {
    "ecu.executions.risc", "ecu.executions.mono_cg",
    "ecu.executions.intermediate", "ecu.executions.full_ise",
    "ecu.executions.covered_ise"};
}  // namespace

const char* to_string(ImplKind kind) {
  switch (kind) {
    case ImplKind::kRisc: return "RISC";
    case ImplKind::kMonoCg: return "monoCG";
    case ImplKind::kIntermediate: return "intermediate";
    case ImplKind::kFullIse: return "full-ISE";
    case ImplKind::kCoveredIse: return "covered-ISE";
  }
  return "?";
}

Ecu::Ecu(const IseLibrary& lib, FabricManager& fabric, Config config)
    : lib_(&lib), fabric_(&fabric), config_(config) {}

void Ecu::append_ise_options(const IseVariant& ise, bool is_selected,
                             const std::vector<Cycles>* installed_prefix,
                             std::vector<Option>& timeline) const {
  const std::size_t n = ise.num_data_paths();

  // Availability of each prefix level from the live fabric state: the r-th
  // occurrence of a data path in the prefix maps to the r-th placed instance
  // (sorted by ready time). Ready times are cached per data path keyed on
  // the fabric's state epoch — they are a pure function of fabric state, so
  // the cache stays valid across kernels and even blocks until the next
  // mutation; occurrence counters are stamped per call instead of cleared.
  const std::uint64_t ready_stamp = fabric_->state_epoch() + 1;
  const std::uint64_t occ_stamp = ++occurrence_call_;
  Cycles prefix = 0;
  bool uses_cg = false;
  for (std::size_t i = 0; i < n; ++i) {
    const DataPathId dp = ise.data_paths[i];
    const std::size_t di = raw(dp);
    if (di >= ready_cache_.size()) {
      ready_cache_.resize(di + 1);
      ready_stamp_.resize(di + 1, 0);
      occurrence_.resize(di + 1, 0);
      occurrence_stamp_.resize(di + 1, 0);
    }
    if (ready_stamp_[di] != ready_stamp) {
      fabric_->append_instance_ready_times(dp, ready_cache_[di]);
      ready_stamp_[di] = ready_stamp;
    }
    if (occurrence_stamp_[di] != occ_stamp) {
      occurrence_[di] = 0;
      occurrence_stamp_[di] = occ_stamp;
    }
    const std::vector<Cycles>& times = ready_cache_[di];
    const unsigned r = occurrence_[di]++;
    Cycles ready_live = kNeverCycles;
    if (r < times.size()) ready_live = times[r];

    Cycles ready = ready_live;
    if (installed_prefix != nullptr) {
      // The installer's own claim is authoritative for the selected ISE;
      // the live view can only improve it (shared instances ready earlier).
      ready = std::min(ready, (*installed_prefix)[i]);
    } else if (!config_.use_cross_coverage) {
      continue;
    }
    if (ready == kNeverCycles) break;  // this and later levels never arrive
    prefix = std::max(prefix, ready);
    uses_cg = uses_cg || lib_->data_paths()[dp].grain == Grain::kCoarse;

    const std::size_t level = i + 1;
    const bool full = level == n;
    if (!config_.use_intermediates && !full) continue;

    Option opt;
    opt.at = prefix;
    opt.latency = ise.latency_after[level];
    opt.kind = full ? (is_selected ? ImplKind::kFullIse : ImplKind::kCoveredIse)
                    : (is_selected ? ImplKind::kIntermediate
                                   : ImplKind::kCoveredIse);
    opt.uses_cg = uses_cg;
    timeline.push_back(opt);
  }
}

void Ecu::rebuild_kernel(KernelId k, KernelState& st, const IsePlacement* placed,
                         Cycles now) const {
  const Kernel& kernel = lib_->kernel(k);
  st.timeline.clear();
  st.next = 0;
  st.current_latency = kernel.sw_latency;
  st.current_kind = ImplKind::kRisc;
  st.current_uses_cg = false;
  st.mono_attempted = false;
  st.built = true;
  st.sw_latency = kernel.sw_latency;
  st.steady_valid = false;

  if (placed != nullptr && placed->ise != kInvalidIse) {
    append_ise_options(lib_->ise(placed->ise), /*is_selected=*/true,
                       &placed->prefix_ready, st.timeline);
  }
  if (config_.use_cross_coverage) {
    for (IseId other : kernel.ises) {
      if (placed != nullptr && other == placed->ise) continue;
      append_ise_options(lib_->ise(other), /*is_selected=*/false, nullptr,
                         st.timeline);
    }
  }
  std::sort(st.timeline.begin(), st.timeline.end(),
            [](const Option& a, const Option& b) { return a.at < b.at; });

  // Consume everything already available at block start.
  while (st.next < st.timeline.size() && st.timeline[st.next].at <= now) {
    const Option& opt = st.timeline[st.next];
    if (opt.latency < st.current_latency) {
      st.current_latency = opt.latency;
      st.current_kind = opt.kind;
      st.current_uses_cg = opt.uses_cg;
    }
    ++st.next;
  }
}

void Ecu::begin_block(const std::vector<IsePlacement>& placements,
                      Cycles now) {
  if (state_.size() < lib_->num_kernels()) state_.resize(lib_->num_kernels());
  // Every kernel keeps only its monoCG knowledge (a loaded context may still
  // be resident); the timeline is rebuilt lazily on first execution. Steady
  // memos die with the block: a new installation changes the fabric without
  // necessarily passing through a mutation the epoch would catch for a
  // runtime that reuses a prior selection.
  for (KernelState& st : state_) {
    st.next = kNeverCycles;  // marker: needs rebuild
    st.steady_valid = false;
  }
  for (const auto& p : placements) {
    if (raw(p.kernel) >= state_.size()) state_.resize(raw(p.kernel) + 1);
    rebuild_kernel(p.kernel, state_[raw(p.kernel)], &p, now);
  }
  last_executed_ = kInvalidKernel;
}

Ecu::KernelState& Ecu::state_for(KernelId k, Cycles now) {
  if (raw(k) >= state_.size()) state_.resize(raw(k) + 1);
  KernelState& st = state_[raw(k)];
  if (!st.built || st.next == kNeverCycles) {
    rebuild_kernel(k, st, nullptr, now);  // preserves st.mono_ready
  }
  return st;
}

ExecOutcome Ecu::execute(KernelId k, Cycles now) {
  const Kernel& kernel = lib_->kernel(k);
  KernelState& st = state_for(k, now);

  // Advance the timeline: implementations only get better over the block.
  while (st.next < st.timeline.size() && st.timeline[st.next].at <= now) {
    const Option& opt = st.timeline[st.next];
    if (opt.latency < st.current_latency) {
      st.current_latency = opt.latency;
      st.current_kind = opt.kind;
      st.current_uses_cg = opt.uses_cg;
      if (trace_ != nullptr) {
        // Timestamped at the availability point, not the execution that
        // noticed it — the trace shows when the upgrade became possible.
        trace_->record({TraceEventKind::kEcuUpgrade, kTrackEcu, opt.at, 0,
                        raw(k), static_cast<std::uint32_t>(opt.kind),
                        static_cast<double>(opt.latency), 0.0});
      }
    }
    ++st.next;
  }

  Cycles latency = st.current_latency;
  ImplKind kind = st.current_kind;
  bool uses_cg = st.current_uses_cg;

  // (c): monoCG-Extension only when nothing of the selected/covered ISEs is
  // available yet (Fig. 7 priority). With every CG fabric quarantined the
  // ladder bottoms out at (d): plain RISC execution on the core — the
  // all-fabrics-dead machine still completes every kernel.
  if (kind == ImplKind::kRisc && config_.use_mono_cg && kernel.has_mono_cg() &&
      fabric_->usable_cg_fabrics() > 0) {
    const IseVariant& mono = lib_->ise(kernel.mono_cg);
    const DataPathId mono_dp = mono.data_paths.front();
    if (st.mono_ready <= now &&
        fabric_->available_instances(mono_dp, now) == 0) {
      st.mono_ready = kNeverCycles;  // evicted since we last used it
    }
    if (st.mono_ready > now && !st.mono_attempted) {
      const auto ready = fabric_->acquire_mono_cg(mono_dp, now);
      if (ready) st.mono_ready = *ready;
      st.mono_attempted = true;
      if (trace_ != nullptr) {
        trace_->record({TraceEventKind::kMonoCgAttempt, kTrackEcu, now, 0,
                        raw(k), ready.has_value() ? 1u : 0u,
                        ready ? static_cast<double>(*ready) : 0.0, 0.0});
      }
      if (counters_ != nullptr) {
        counters_->add(ready ? "ecu.mono_cg_acquired" : "ecu.mono_cg_denied");
      }
    }
    if (st.mono_ready <= now) {
      latency = mono.full_latency();
      kind = ImplKind::kMonoCg;
      uses_cg = true;
    }
  }

  // Context-switch penalty: executing on a CG fabric whose active context
  // belonged to a different kernel costs one 2-cycle switch.
  if (uses_cg && last_executed_ != k) {
    const Cycles switch_cost = CgFabricParams{}.context_switch_cycles;
    latency += switch_cost;
    stats_.context_switch_cycles += switch_cost;
  }
  last_executed_ = k;

  stats_.executions[static_cast<std::size_t>(kind)]++;
  stats_.cycles[static_cast<std::size_t>(kind)] += latency;
  stats_.saved_vs_risc +=
      kernel.sw_latency > latency ? kernel.sw_latency - latency : 0;

  if (observing_) {
    note_execution(st, k, kind, latency, now);
  }
  return ExecOutcome{latency, kind};
}

Cycles Ecu::execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                        std::size_t n, Cycles gap_total,
                        std::uint64_t* impl_executions, Cycles* impl_cycles,
                        Cycles* first_exec_start) {
  const Kernel& kernel = lib_->kernel(k);
  Cycles gap_consumed = 0;
  std::size_t i = 0;
  while (i < n) {
    cursor += events[i].gap_before;
    gap_consumed += events[i].gap_before;
    if (i == 0) *first_exec_start = cursor;
    const ExecOutcome out = execute(k, cursor);
    impl_executions[static_cast<std::size_t>(out.impl)]++;
    impl_cycles[static_cast<std::size_t>(out.impl)] += out.latency;
    cursor += out.latency;
    ++i;
    if (i >= n) break;
    // With a flight recorder / counters attached every execution must flow
    // through the full path — the per-execution instrumentation stream is
    // part of the contract.
    if (observing_) continue;

    // Steady-state probe. last_executed_ == k now, so subsequent executions
    // in this run never pay the context-switch penalty.
    KernelState& st = state_[raw(k)];
    if (!derive_steady(kernel, st, cursor - out.latency)) continue;

    // No better implementation (nor a pending monoCG flip) may arrive
    // before the run's last execution starts.
    const std::size_t m = n - i;
    const Cycles latency = st.steady_latency;
    const Cycles remaining_gap = gap_total - gap_consumed;
    const Cycles last_exec_start =
        cursor + remaining_gap + (static_cast<Cycles>(m) - 1) * latency;
    if (last_exec_start > st.steady_until) {
      continue;  // the decision changes mid-run — stay on the exact path
    }

    // Bulk commit: identical state and totals as m more execute() calls.
    const auto ki = static_cast<std::size_t>(st.steady_kind);
    stats_.executions[ki] += m;
    stats_.cycles[ki] += static_cast<Cycles>(m) * latency;
    if (st.sw_latency > latency) {
      stats_.saved_vs_risc +=
          static_cast<Cycles>(m) * (st.sw_latency - latency);
    }
    impl_executions[ki] += m;
    impl_cycles[ki] += static_cast<Cycles>(m) * latency;
    return cursor + remaining_gap + static_cast<Cycles>(m) * latency;
  }
  return cursor;
}

bool Ecu::derive_steady(const Kernel& kernel, KernelState& st, Cycles now) {
  // Horizon from the timeline: the memo holds strictly before the next
  // (unconsumed) availability point.
  Cycles until = kNeverCycles;
  if (st.next < st.timeline.size()) until = st.timeline[st.next].at - 1;

  ImplKind kind = st.current_kind;
  Cycles latency = st.current_latency;
  bool uses_cg = st.current_uses_cg;
  if (kind == ImplKind::kRisc && config_.use_mono_cg && kernel.has_mono_cg() &&
      fabric_->usable_cg_fabrics() > 0) {
    if (st.mono_ready <= now) {
      // monoCG decided the execution at `now`. At a fixed fabric state
      // availability is monotone in time, so the context stays usable for
      // the whole horizon (any fabric mutation bumps the state epoch and
      // kills the memo).
      const IseVariant& mono = lib_->ise(kernel.mono_cg);
      latency = mono.full_latency();
      kind = ImplKind::kMonoCg;
      uses_cg = true;
    } else if (st.mono_ready != kNeverCycles) {
      // A monoCG context arrives mid-block: the decision flips exactly at
      // mono_ready, so the RISC memo only holds strictly before it.
      until = std::min(until, st.mono_ready - 1);
    } else if (!st.mono_attempted) {
      return false;  // an acquisition attempt is still due
    }
    // else: acquisition failed for this block — the decision stays RISC.
  }

  st.steady_kind = kind;
  st.steady_latency = latency;
  st.steady_uses_cg = uses_cg;
  st.steady_until = until;
  st.steady_epoch = fabric_->state_epoch();
  st.steady_valid = true;
  return true;
}

Cycles Ecu::execute_events(const ExecEvent* events, const ExecRun* runs,
                           std::size_t num_runs, Cycles cursor,
                           std::uint64_t* impl_executions, Cycles* impl_cycles,
                           ObservationSink& obs) {
  const Cycles switch_cost = CgFabricParams{}.context_switch_cycles;
  for (std::size_t r = 0; r < num_runs; ++r) {
    const ExecRun& run = runs[r];
    const std::size_t kid = raw(run.kernel);
    const Cycles first_gap = run.first_gap;
    // Memo fast path: with an unchanged fabric epoch and the whole run
    // inside the memo's horizon, the per-event path provably makes the same
    // (kind, latency) decision for every execution — commit it in O(1).
    // The epoch is re-read per run: a slow-path run below may acquire a
    // monoCG context and thereby invalidate every older memo.
    if (!observing_ && kid < state_.size()) {
      KernelState& st = state_[kid];
      if (st.steady_valid && st.steady_epoch == fabric_->state_epoch()) {
        const auto m = static_cast<Cycles>(run.count);
        const Cycles latency = st.steady_latency;
        const Cycles sw_pen =
            st.steady_uses_cg && last_executed_ != run.kernel ? switch_cost : 0;
        const Cycles first_exec_start = cursor + first_gap;
        const Cycles last_exec_start =
            cursor + run.gap_total + sw_pen + (m - 1) * latency;
        if (last_exec_start <= st.steady_until) {
          const auto ki = static_cast<std::size_t>(st.steady_kind);
          const Cycles total = m * latency + sw_pen;
          stats_.executions[ki] += run.count;
          stats_.cycles[ki] += total;
          stats_.context_switch_cycles += sw_pen;
          // The run's first execution pays latency + sw_pen, the rest pay
          // latency — saved_vs_risc accounts them separately.
          const Cycles first_latency = latency + sw_pen;
          Cycles saved = 0;
          if (st.sw_latency > first_latency) saved += st.sw_latency - first_latency;
          if (m > 1 && st.sw_latency > latency) {
            saved += (m - 1) * (st.sw_latency - latency);
          }
          stats_.saved_vs_risc += saved;
          impl_executions[ki] += run.count;
          impl_cycles[ki] += total;
          last_executed_ = run.kernel;
          cursor += run.gap_total + total;
          obs.note_run(run, first_gap, first_exec_start, cursor);
          continue;
        }
      }
    }
    // Exact path; derives/refreshes the kernel's memo once steady.
    Cycles first_exec_start = 0;
    cursor = execute_run(run.kernel, cursor, events + run.first_event,
                         run.count, run.gap_total, impl_executions,
                         impl_cycles, &first_exec_start);
    obs.note_run(run, first_gap, first_exec_start, cursor);
  }
  return cursor;
}

void Ecu::note_execution(KernelState& st, KernelId k, ImplKind kind,
                         Cycles latency, Cycles now) {
  if (trace_ != nullptr &&
      st.traced_impl != static_cast<std::uint8_t>(kind)) {
    // One decision event per implementation *change*, not per execution —
    // the trace stays bounded while the counters below keep exact totals.
    st.traced_impl = static_cast<std::uint8_t>(kind);
    trace_->record({TraceEventKind::kEcuDecision, kTrackEcu, now, 0, raw(k),
                    static_cast<std::uint32_t>(kind),
                    static_cast<double>(latency), 0.0});
  }
  if (counters_ != nullptr) {
    counters_->add(kExecCounterNames[static_cast<std::size_t>(kind)]);
    counters_->observe("ecu.exec_latency_cycles",
                       static_cast<double>(latency));
  }
}

void Ecu::save_state(SnapshotWriter& w) const {
  for (auto e : stats_.executions) w.u64(e);
  for (auto c : stats_.cycles) w.u64(c);
  w.u64(stats_.saved_vs_risc);
  w.u64(stats_.context_switch_cycles);
  w.u32(raw(last_executed_));
  w.u64(state_.size());
  for (const KernelState& st : state_) {
    w.boolean(st.built);
    w.u64(st.mono_ready);
    w.u8(st.traced_impl);
  }
}

void Ecu::load_state(SnapshotReader& r) {
  EcuStats stats;
  for (auto& e : stats.executions) e = r.u64();
  for (auto& c : stats.cycles) c = r.u64();
  stats.saved_vs_risc = r.u64();
  stats.context_switch_cycles = r.u64();
  const KernelId last{r.u32()};
  const std::size_t n = r.length(1u << 20, "ECU kernel state table");
  std::vector<KernelState> state(n);
  for (KernelState& st : state) {
    st.built = r.boolean();
    st.next = kNeverCycles;  // needs-rebuild marker (see state_for)
    st.mono_ready = r.u64();
    st.traced_impl = r.u8();
  }
  stats_ = stats;
  last_executed_ = last;
  state_ = std::move(state);
}

void Ecu::reset() {
  for (KernelState& st : state_) {
    st.timeline.clear();  // keeps capacity for the next block's rebuild
    KernelState fresh;
    fresh.timeline = std::move(st.timeline);
    st = std::move(fresh);
  }
  stats_ = EcuStats{};
  last_executed_ = kInvalidKernel;
}

}  // namespace mrts
