#include "rts/ecu.h"

#include <algorithm>

#include "util/counters.h"
#include "util/trace.h"

namespace mrts {

namespace {
/// Counter names per ImplKind (same order as the enum).
constexpr std::array<const char*, kNumImplKinds> kExecCounterNames = {
    "ecu.executions.risc", "ecu.executions.mono_cg",
    "ecu.executions.intermediate", "ecu.executions.full_ise",
    "ecu.executions.covered_ise"};
}  // namespace

const char* to_string(ImplKind kind) {
  switch (kind) {
    case ImplKind::kRisc: return "RISC";
    case ImplKind::kMonoCg: return "monoCG";
    case ImplKind::kIntermediate: return "intermediate";
    case ImplKind::kFullIse: return "full-ISE";
    case ImplKind::kCoveredIse: return "covered-ISE";
  }
  return "?";
}

Ecu::Ecu(const IseLibrary& lib, FabricManager& fabric, Config config)
    : lib_(&lib), fabric_(&fabric), config_(config) {}

void Ecu::append_ise_options(const IseVariant& ise, bool is_selected,
                             const std::vector<Cycles>* installed_prefix,
                             std::vector<Option>& timeline) const {
  const std::size_t n = ise.num_data_paths();

  // Availability of each prefix level from the live fabric state: the r-th
  // occurrence of a data path in the prefix maps to the r-th placed instance
  // (sorted by ready time).
  std::unordered_map<std::uint32_t, std::vector<Cycles>> ready_cache;
  std::unordered_map<std::uint32_t, unsigned> occurrence;
  Cycles prefix = 0;
  bool uses_cg = false;
  for (std::size_t i = 0; i < n; ++i) {
    const DataPathId dp = ise.data_paths[i];
    auto it = ready_cache.find(raw(dp));
    if (it == ready_cache.end()) {
      it = ready_cache.emplace(raw(dp), fabric_->instance_ready_times(dp))
               .first;
    }
    const unsigned r = occurrence[raw(dp)]++;
    Cycles ready_live = kNeverCycles;
    if (r < it->second.size()) ready_live = it->second[r];

    Cycles ready = ready_live;
    if (installed_prefix != nullptr) {
      // The installer's own claim is authoritative for the selected ISE;
      // the live view can only improve it (shared instances ready earlier).
      ready = std::min(ready, (*installed_prefix)[i]);
    } else if (!config_.use_cross_coverage) {
      continue;
    }
    if (ready == kNeverCycles) break;  // this and later levels never arrive
    prefix = std::max(prefix, ready);
    uses_cg = uses_cg || lib_->data_paths()[dp].grain == Grain::kCoarse;

    const std::size_t level = i + 1;
    const bool full = level == n;
    if (!config_.use_intermediates && !full) continue;

    Option opt;
    opt.at = prefix;
    opt.latency = ise.latency_after[level];
    opt.kind = full ? (is_selected ? ImplKind::kFullIse : ImplKind::kCoveredIse)
                    : (is_selected ? ImplKind::kIntermediate
                                   : ImplKind::kCoveredIse);
    opt.uses_cg = uses_cg;
    timeline.push_back(opt);
  }
}

void Ecu::rebuild_kernel(KernelId k, KernelState& st, const IsePlacement* placed,
                         Cycles now) const {
  const Kernel& kernel = lib_->kernel(k);
  st.timeline.clear();
  st.next = 0;
  st.current_latency = kernel.sw_latency;
  st.current_kind = ImplKind::kRisc;
  st.current_uses_cg = false;
  st.mono_attempted = false;

  if (placed != nullptr && placed->ise != kInvalidIse) {
    append_ise_options(lib_->ise(placed->ise), /*is_selected=*/true,
                       &placed->prefix_ready, st.timeline);
  }
  if (config_.use_cross_coverage) {
    for (IseId other : kernel.ises) {
      if (placed != nullptr && other == placed->ise) continue;
      append_ise_options(lib_->ise(other), /*is_selected=*/false, nullptr,
                         st.timeline);
    }
  }
  std::sort(st.timeline.begin(), st.timeline.end(),
            [](const Option& a, const Option& b) { return a.at < b.at; });

  // Consume everything already available at block start.
  while (st.next < st.timeline.size() && st.timeline[st.next].at <= now) {
    const Option& opt = st.timeline[st.next];
    if (opt.latency < st.current_latency) {
      st.current_latency = opt.latency;
      st.current_kind = opt.kind;
      st.current_uses_cg = opt.uses_cg;
    }
    ++st.next;
  }
}

void Ecu::begin_block(const std::vector<IsePlacement>& placements,
                      Cycles now) {
  std::unordered_map<std::uint32_t, KernelState> next;
  for (const auto& p : placements) {
    KernelState st;
    if (auto it = state_.find(raw(p.kernel)); it != state_.end()) {
      st.mono_ready = it->second.mono_ready;  // context may still be resident
    }
    rebuild_kernel(p.kernel, st, &p, now);
    next.emplace(raw(p.kernel), std::move(st));
  }
  // Kernels that were not (re-)assigned keep only their monoCG knowledge;
  // their timeline is rebuilt lazily on first execution.
  for (auto& [kid, old] : state_) {
    if (next.count(kid)) continue;
    KernelState st;
    st.mono_ready = old.mono_ready;
    st.timeline.clear();
    st.next = kNeverCycles;  // marker: needs rebuild
    next.emplace(kid, std::move(st));
  }
  state_ = std::move(next);
  last_executed_ = kInvalidKernel;
}

Ecu::KernelState& Ecu::state_for(KernelId k, Cycles now) {
  auto [it, inserted] = state_.try_emplace(raw(k));
  KernelState& st = it->second;
  if (inserted || st.next == kNeverCycles) {
    const Cycles mono_ready = st.mono_ready;
    rebuild_kernel(k, st, nullptr, now);
    st.mono_ready = mono_ready;
  }
  return st;
}

ExecOutcome Ecu::execute(KernelId k, Cycles now) {
  const Kernel& kernel = lib_->kernel(k);
  KernelState& st = state_for(k, now);

  // Advance the timeline: implementations only get better over the block.
  while (st.next < st.timeline.size() && st.timeline[st.next].at <= now) {
    const Option& opt = st.timeline[st.next];
    if (opt.latency < st.current_latency) {
      st.current_latency = opt.latency;
      st.current_kind = opt.kind;
      st.current_uses_cg = opt.uses_cg;
      if (trace_ != nullptr) {
        // Timestamped at the availability point, not the execution that
        // noticed it — the trace shows when the upgrade became possible.
        trace_->record({TraceEventKind::kEcuUpgrade, kTrackEcu, opt.at, 0,
                        raw(k), static_cast<std::uint32_t>(opt.kind),
                        static_cast<double>(opt.latency), 0.0});
      }
    }
    ++st.next;
  }

  Cycles latency = st.current_latency;
  ImplKind kind = st.current_kind;
  bool uses_cg = st.current_uses_cg;

  // (c): monoCG-Extension only when nothing of the selected/covered ISEs is
  // available yet (Fig. 7 priority). With every CG fabric quarantined the
  // ladder bottoms out at (d): plain RISC execution on the core — the
  // all-fabrics-dead machine still completes every kernel.
  if (kind == ImplKind::kRisc && config_.use_mono_cg && kernel.has_mono_cg() &&
      fabric_->usable_cg_fabrics() > 0) {
    const IseVariant& mono = lib_->ise(kernel.mono_cg);
    const DataPathId mono_dp = mono.data_paths.front();
    if (st.mono_ready <= now &&
        fabric_->available_instances(mono_dp, now) == 0) {
      st.mono_ready = kNeverCycles;  // evicted since we last used it
    }
    if (st.mono_ready > now && !st.mono_attempted) {
      const auto ready = fabric_->acquire_mono_cg(mono_dp, now);
      if (ready) st.mono_ready = *ready;
      st.mono_attempted = true;
      if (trace_ != nullptr) {
        trace_->record({TraceEventKind::kMonoCgAttempt, kTrackEcu, now, 0,
                        raw(k), ready.has_value() ? 1u : 0u,
                        ready ? static_cast<double>(*ready) : 0.0, 0.0});
      }
      if (counters_ != nullptr) {
        counters_->add(ready ? "ecu.mono_cg_acquired" : "ecu.mono_cg_denied");
      }
    }
    if (st.mono_ready <= now) {
      latency = mono.full_latency();
      kind = ImplKind::kMonoCg;
      uses_cg = true;
    }
  }

  // Context-switch penalty: executing on a CG fabric whose active context
  // belonged to a different kernel costs one 2-cycle switch.
  if (uses_cg && last_executed_ != k) {
    const Cycles switch_cost = CgFabricParams{}.context_switch_cycles;
    latency += switch_cost;
    stats_.context_switch_cycles += switch_cost;
  }
  last_executed_ = k;

  stats_.executions[static_cast<std::size_t>(kind)]++;
  stats_.cycles[static_cast<std::size_t>(kind)] += latency;
  stats_.saved_vs_risc +=
      kernel.sw_latency > latency ? kernel.sw_latency - latency : 0;

  if (observing_) {
    note_execution(st, k, kind, latency, now);
  }
  return ExecOutcome{latency, kind};
}

void Ecu::note_execution(KernelState& st, KernelId k, ImplKind kind,
                         Cycles latency, Cycles now) {
  if (trace_ != nullptr &&
      st.traced_impl != static_cast<std::uint8_t>(kind)) {
    // One decision event per implementation *change*, not per execution —
    // the trace stays bounded while the counters below keep exact totals.
    st.traced_impl = static_cast<std::uint8_t>(kind);
    trace_->record({TraceEventKind::kEcuDecision, kTrackEcu, now, 0, raw(k),
                    static_cast<std::uint32_t>(kind),
                    static_cast<double>(latency), 0.0});
  }
  if (counters_ != nullptr) {
    counters_->add(kExecCounterNames[static_cast<std::size_t>(kind)]);
    counters_->observe("ecu.exec_latency_cycles",
                       static_cast<double>(latency));
  }
}

void Ecu::reset() {
  state_.clear();
  stats_ = EcuStats{};
  last_executed_ = kInvalidKernel;
}

}  // namespace mrts
