#include "rts/mpu.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/counters.h"
#include "util/snapshot_io.h"
#include "util/trace.h"

namespace mrts {

Mpu::Mpu(Config config) : config_(config) {}

TriggerInstruction Mpu::refine(const TriggerInstruction& programmed) const {
  if (!config_.enabled) return programmed;
  TriggerInstruction refined = programmed;
  for (auto& entry : refined.entries) {
    const auto it =
        forecasts_.find(key(programmed.functional_block, entry.kernel));
    if (it == forecasts_.end()) continue;
    const KernelForecast& f = it->second;
    entry.expected_executions = std::max(0.0, f.executions.prediction());
    entry.time_to_first =
        static_cast<Cycles>(std::max(0.0, f.time_to_first.prediction()));
    entry.time_between =
        static_cast<Cycles>(std::max(0.0, f.time_between.prediction()));
  }
  return refined;
}

void Mpu::observe(const BlockObservation& observed, Cycles now) {
  if (!config_.enabled) return;
  for (const auto& k : observed.kernels) {
    const std::uint64_t id = key(observed.functional_block, k.kernel);
    auto it = forecasts_.find(id);
    if (it != forecasts_.end()) {
      // Forecast error of this block instance, measured before the
      // back-propagation update consumes the observation.
      const double predicted = it->second.executions.prediction();
      if (trace_ != nullptr) {
        trace_->record({TraceEventKind::kMpuError, kTrackMpu, now, 0,
                        raw(observed.functional_block), raw(k.kernel),
                        predicted, k.executions});
      }
      if (counters_ != nullptr) {
        counters_->observe("mpu.exec_forecast_abs_error",
                           std::abs(predicted - k.executions));
      }
    }
    if (counters_ != nullptr) counters_->add("mpu.observations");
    if (it == forecasts_.end()) {
      KernelForecast f{Ewma(config_.alpha, k.executions),
                       Ewma(config_.alpha, static_cast<double>(k.time_to_first)),
                       Ewma(config_.alpha, static_cast<double>(k.time_between))};
      forecasts_.emplace(id, f);
    } else {
      it->second.executions.observe(k.executions);
      it->second.time_to_first.observe(static_cast<double>(k.time_to_first));
      it->second.time_between.observe(static_cast<double>(k.time_between));
    }
    ++observations_;
  }
}

std::optional<TriggerEntry> Mpu::forecast(FunctionalBlockId fb,
                                          KernelId k) const {
  const auto it = forecasts_.find(key(fb, k));
  if (it == forecasts_.end()) return std::nullopt;
  TriggerEntry entry;
  entry.kernel = k;
  entry.expected_executions = it->second.executions.prediction();
  entry.time_to_first =
      static_cast<Cycles>(std::max(0.0, it->second.time_to_first.prediction()));
  entry.time_between =
      static_cast<Cycles>(std::max(0.0, it->second.time_between.prediction()));
  return entry;
}

void Mpu::reset() {
  forecasts_.clear();
  observations_ = 0;
}

void Mpu::save_state(SnapshotWriter& w) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(forecasts_.size());
  for (const auto& [id, f] : forecasts_) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (std::uint64_t id : keys) {
    const KernelForecast& f = forecasts_.at(id);
    w.u64(id);
    f.executions.save_state(w);
    f.time_to_first.save_state(w);
    f.time_between.save_state(w);
  }
  w.u64(observations_);
}

void Mpu::load_state(SnapshotReader& r) {
  std::unordered_map<std::uint64_t, KernelForecast> forecasts;
  const std::size_t n = r.length(1u << 20, "MPU forecast table");
  forecasts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t id = r.u64();
    KernelForecast f;
    f.executions.load_state(r);
    f.time_to_first.load_state(r);
    f.time_between.load_state(r);
    forecasts.emplace(id, f);
  }
  observations_ = r.u64();
  forecasts_ = std::move(forecasts);
}

}  // namespace mrts
