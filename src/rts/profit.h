#pragma once
/// \file profit.h
/// The mRTS profit function (Section 4.1, Eqs. 1-4).
///
/// Eq. 1 — performance improvement factor of an ISE:
///     pif = sw_time*e / (reconfig_latency + hw_time*e)
///
/// Eq. 2 — performance improvement of the i-th intermediate ISE:
///     per_imp(i) = NoE(i) * (latency_RM - latency(ISE_i))
///
/// Eq. 3 — expected number of executions of the i-th intermediate ISE.
///   With recT(i) the (predicted) completion time of the i-th intermediate
///   ISE relative to the trigger, tf the time until the first kernel
///   execution and tb the average gap between consecutive executions:
///     recT(i+1) <= tf              ->  0
///     recT(i) <= tf <= recT(i+1)   ->  (recT(i+1) - tf)      / (latency(i) + tb)
///     recT(i) >= tf                ->  (recT(i+1) - recT(i)) / (latency(i) + tb)
///   (the published formula is typographically garbled; this reconstruction
///   follows the prose directly — see DESIGN.md).
///
/// Eq. 4 — total profit:
///     profit = sum_i per_imp(i)
///            + (latency_RM - latency(ISE_n)) * (e - NoE_RM - sum_i NoE(i))
///   where NoE_RM (Fig. 5) is the number of unaccelerated RISC-mode
///   executions before the first data path is ready; Eq. 4 as printed omits
///   it, which would credit slow-loading ISEs for executions that happen
///   without them (see the note in profit.cpp).

#include <vector>

#include "isa/ise.h"
#include "util/types.h"

namespace mrts {

/// Variant switches of the profit computation, used to ablate the
/// reconstruction decisions (see EXPERIMENTS.md "Known modelling deltas").
struct ProfitModel {
  /// Subtract the RISC-mode executions before the first data path is ready
  /// (the NoE_RM term of Fig. 5) from the full-ISE share. Eq. 4 as printed
  /// omits it; disabling reproduces the literal formula.
  bool account_risc_window = true;
  /// Include tb (average gap between executions) in the Eq. 3 denominators.
  bool include_tb = true;
};

/// Inputs to one profit evaluation.
struct ProfitInputs {
  const IseVariant* ise = nullptr;
  double expected_executions = 0.0;  ///< e from the trigger instruction
  Cycles time_to_first = 0;          ///< tf
  Cycles time_between = 0;           ///< tb
  /// Predicted completion time of each data-path instance *relative to the
  /// trigger*; size = ise->num_data_paths(). Monotonicity is not required —
  /// the prefix maximum is applied internally.
  std::vector<Cycles> ready_rel;
  ProfitModel model;
};

struct ProfitResult {
  double profit = 0.0;       ///< expected saved cycles (Eq. 4)
  double noe_sum = 0.0;      ///< sum of NoE(i) over intermediate ISEs
  std::vector<double> noe;   ///< NoE(i) for i = 1..n-1 (index 0 <-> ISE_1)
  double risc_executions = 0.0;  ///< NoE_RM: unaccelerated executions before
                                 ///< the first data path is ready (Fig. 5)
  double full_executions = 0.0;  ///< executions with the complete ISE
};

/// Evaluates Eqs. 2-4 for one candidate ISE.
ProfitResult compute_profit(const ProfitInputs& in);

/// Profit-only fast path for the selector inner loop: same arithmetic in the
/// same order as compute_profit (bit-identical result), but skips the NoE
/// breakdown so nothing is allocated.
double compute_profit_value(const ProfitInputs& in);

/// Eq. 1: performance improvement factor.
double performance_improvement_factor(Cycles sw_time, Cycles hw_time,
                                      Cycles reconfig_latency,
                                      double executions);

}  // namespace mrts
