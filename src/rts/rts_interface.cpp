#include "rts/rts_interface.h"

#include "sim/obs_accum.h"
#include "sim/schedule.h"

namespace mrts {

Cycles RuntimeSystem::execute_run(KernelId k, Cycles cursor,
                                  const ExecEvent* events, std::size_t n,
                                  Cycles gap_total,
                                  std::uint64_t* impl_executions,
                                  Cycles* impl_cycles,
                                  Cycles* first_exec_start) {
  (void)gap_total;
  for (std::size_t i = 0; i < n; ++i) {
    cursor += events[i].gap_before;
    if (i == 0) *first_exec_start = cursor;
    const ExecOutcome out = execute_kernel(k, cursor);
    impl_executions[static_cast<std::size_t>(out.impl)]++;
    impl_cycles[static_cast<std::size_t>(out.impl)] += out.latency;
    cursor += out.latency;
  }
  return cursor;
}

Cycles RuntimeSystem::execute_events(const ExecEvent* events,
                                     const ExecRun* runs, std::size_t num_runs,
                                     Cycles cursor,
                                     std::uint64_t* impl_executions,
                                     Cycles* impl_cycles,
                                     ObservationSink& obs) {
  for (std::size_t r = 0; r < num_runs; ++r) {
    const ExecRun& run = runs[r];
    Cycles first_exec_start = 0;
    cursor = execute_run(run.kernel, cursor, events + run.first_event,
                         run.count, run.gap_total, impl_executions,
                         impl_cycles, &first_exec_start);
    obs.note_run(run, run.first_gap, first_exec_start,
                 cursor);
  }
  return cursor;
}

}  // namespace mrts
