#include "rts/migration.h"

#include <algorithm>

#include "arch/fabric_manager.h"

namespace mrts {

namespace {

struct FreeSpace {
  unsigned free = 0;         ///< f: empty, non-quarantined PRCs
  unsigned largest_run = 0;  ///< r: longest contiguous run of them
};

FreeSpace scan_free_space(const FabricManager& fabric) {
  FreeSpace s;
  unsigned run = 0;
  for (unsigned i = 0; i < fabric.num_prcs(); ++i) {
    const bool free =
        !fabric.prc_quarantined(i) && fabric.fg_fabric().prc(i).empty();
    if (free) {
      ++s.free;
      ++run;
      s.largest_run = std::max(s.largest_run, run);
    } else {
      run = 0;
    }
  }
  return s;
}

DefragReport finish(DefragReport rep, const FabricManager& fabric) {
  rep.fragmentation_after = fg_fragmentation(fabric);
  return rep;
}

}  // namespace

double fg_fragmentation(const FabricManager& fabric) {
  const FreeSpace s = scan_free_space(fabric);
  if (s.free == 0) return 0.0;
  return 1.0 - static_cast<double>(s.largest_run) / s.free;
}

unsigned fg_compaction_opportunity(const FabricManager& fabric) {
  const FreeSpace s = scan_free_space(fabric);
  return s.free - s.largest_run;
}

double fg_fragmentation_floor(const FabricManager& fabric) {
  // Count survivors, then replay the scan as if they were packed into the
  // lowest non-quarantined slots: the first `occupied` such slots read as
  // full, the rest as free. Quarantined slots still break runs.
  unsigned occupied = 0;
  for (unsigned i = 0; i < fabric.num_prcs(); ++i) {
    if (!fabric.prc_quarantined(i) && !fabric.fg_fabric().prc(i).empty()) {
      ++occupied;
    }
  }
  unsigned rank = 0;
  unsigned free = 0;
  unsigned run = 0;
  unsigned largest_run = 0;
  for (unsigned i = 0; i < fabric.num_prcs(); ++i) {
    if (fabric.prc_quarantined(i) || rank++ < occupied) {
      run = 0;
      continue;
    }
    ++free;
    ++run;
    largest_run = std::max(largest_run, run);
  }
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_run) / free;
}

DefragReport DefragPolicy::compact(FabricManager& fabric, Cycles now) const {
  DefragReport rep;
  rep.fragmentation_before = fg_fragmentation(fabric);
  rep.ready_at = now;

  const unsigned n = fabric.num_prcs();
  unsigned lo = 0;
  int hi = static_cast<int>(n) - 1;
  unsigned consecutive_copy_failures = 0;
  while (true) {
    if (config_.max_migrations_per_pass != 0 &&
        rep.attempted >= config_.max_migrations_per_pass) {
      break;
    }
    while (lo < n && !(fabric.fg_fabric().prc(lo).empty() &&
                       !fabric.prc_quarantined(lo))) {
      ++lo;
    }
    while (hi >= 0 &&
           (fabric.fg_fabric().prc(static_cast<unsigned>(hi)).empty() ||
            fabric.prc_quarantined(static_cast<unsigned>(hi)))) {
      --hi;
    }
    if (hi < 0 || lo >= static_cast<unsigned>(hi)) break;

    const MigrationResult res =
        fabric.migrate_prc(static_cast<unsigned>(hi), lo, now);
    switch (res.status) {
      case MigrationStatus::kMigrated:
        ++rep.attempted;
        ++rep.migrated;
        rep.ready_at = std::max(rep.ready_at, res.ready_at);
        consecutive_copy_failures = 0;
        break;  // lo is now occupied, hi empty — the scans advance both
      case MigrationStatus::kCopyFailed:
        // The stream ran (and may have quarantined lo); retry the same
        // source against the next hole, but give up after two misses in a
        // row — the port already carries the failed streams' backlog.
        ++rep.attempted;
        if (++consecutive_copy_failures >= 2) return finish(rep, fabric);
        ++lo;
        break;
      case MigrationStatus::kTargetUnavailable:
        ++lo;  // e.g. arbitration refuses the slot; no stream was issued
        break;
      case MigrationStatus::kSourceQuarantined:
      case MigrationStatus::kNothingToMigrate:
        --hi;
        break;
    }
  }
  return finish(rep, fabric);
}

DefragReport DefragPolicy::recover(FabricManager& fabric, Cycles now) const {
  if (!config_.enabled ||
      fg_fragmentation(fabric) < config_.min_fragmentation) {
    DefragReport rep;
    rep.fragmentation_before = fg_fragmentation(fabric);
    rep.fragmentation_after = rep.fragmentation_before;
    rep.ready_at = now;
    return rep;
  }
  return compact(fabric, now);
}

}  // namespace mrts
