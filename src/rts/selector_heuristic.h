#pragma once
/// \file selector_heuristic.h
/// The mRTS ISE selection algorithm (Section 4.1, Fig. 6). Greedy heuristic
/// with complexity O(N*M) (N kernels, M ISEs per kernel):
///
///   Step-1: candidate list = all ISEs of all kernels in the trigger
///           instruction (non-fitting variants were already filtered at
///           compile time against the machine capacity).
///   Step-2: remove ISEs that (a) need more reconfigurable fabric than is
///           still available, or (b) are covered by data paths of already
///           selected ISEs (they come for free; the ECU finds them at run
///           time via its cross-ISE availability check).
///   Step-3: compute the profit (Eqs. 2-4) of every remaining candidate and
///           pick the maximum.
///   Step-4: add it to the output set, deduct its fabric demand, advance the
///           predicted reconfiguration-port backlog and drop all other ISEs
///           of the same kernel. Repeat from Step-2.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "isa/ise_library.h"
#include "isa/trigger.h"
#include "rts/profit.h"
#include "rts/profit_cache.h"
#include "rts/reconfig_plan.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
class CounterRegistry;

/// One selected ISE with its predicted installation schedule.
struct SelectedIse {
  KernelId kernel = kInvalidKernel;
  IseId ise = kInvalidIse;
  double profit = 0.0;
  /// Predicted absolute ready time of each data-path instance.
  std::vector<Cycles> instance_ready;
};

/// Result of one selection run (heuristic or optimal).
struct SelectionResult {
  /// Selected ISEs in selection order (= installation order).
  std::vector<SelectedIse> selected;
  /// Step-2b: (kernel, ISE) pairs that are fully covered by the selected
  /// data paths and therefore available for free.
  std::vector<std::pair<KernelId, IseId>> covered;
  /// Cost counters feeding the Section 5.4 overhead model.
  std::uint64_t profit_evaluations = 0;
  std::uint64_t candidates_scanned = 0;
  /// Counters of the first greedy round only. Selecting the first ISE is the
  /// only part that blocks the core; the remaining rounds run in parallel
  /// with the reconfiguration process (Section 5.4).
  std::uint64_t first_round_evaluations = 0;
  std::uint64_t first_round_scans = 0;
  /// Modelled execution time of the selection itself on the mRTS host
  /// (a dedicated CG-EDPE in the paper).
  Cycles overhead_cycles = 0;
  double total_profit = 0.0;

  const SelectedIse* find(KernelId k) const {
    for (const auto& s : selected) {
      if (s.kernel == k) return &s;
    }
    return nullptr;
  }
};

/// Cycle-cost model of the selector itself (Section 5.4): the measured
/// overhead is dominated by profit evaluations (one per candidate per
/// round) plus a linear scan of the candidate list.
struct SelectorCostModel {
  Cycles cycles_per_profit_eval = 40;
  Cycles cycles_per_scan = 4;
  Cycles fixed_overhead = 150;

  Cycles cost(std::uint64_t evals, std::uint64_t scans) const {
    return fixed_overhead + evals * cycles_per_profit_eval +
           scans * cycles_per_scan;
  }
};

/// Step-3 ranking policy.
enum class SelectionPolicy {
  /// The paper's Fig. 6: pick the candidate with the maximum absolute
  /// profit. Known weakness (the paper's own Fig. 9 analysis): it may give
  /// most of the fabric to one kernel where spreading would win.
  kMaxProfit,
  /// Pick the candidate with the maximum profit per fabric unit
  /// (RISPP-style "benefit per atom" ranking). Mitigates resource hogging
  /// at scarce PRC-only combinations, may under-use abundant fabric.
  kMaxProfitDensity,
};

class HeuristicSelector {
 public:
  explicit HeuristicSelector(const IseLibrary& lib,
                             SelectorCostModel cost = {},
                             SelectionPolicy policy = SelectionPolicy::kMaxProfit,
                             ProfitModel profit_model = {});

  /// Runs the Fig. 6 algorithm for the kernels forecast in \p ti. The
  /// \p planner carries the fabric snapshot (what is already loaded, port
  /// backlog, capacity); it is taken by value because selection consumes it.
  SelectionResult select(const TriggerInstruction& ti,
                         ReconfigPlanner planner) const;

  /// Like select(), but additionally appends a human-readable round-by-round
  /// account (candidates, profits, pruning reasons, winners) to \p trace —
  /// the "why did it pick that?" debugging aid.
  SelectionResult select_with_trace(const TriggerInstruction& ti,
                                    ReconfigPlanner planner,
                                    std::string& trace) const;

  /// Attaches the flight recorder: every profit evaluation and round winner
  /// is recorded as a timestamped event (null detaches; default off).
  void attach_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Attaches recorder + counter registry in one call; the registry receives
  /// the selector.cache.{hit,miss} deltas of every select() (needs an
  /// attached ProfitCache to have anything to report).
  void attach_observability(TraceRecorder* trace, CounterRegistry* counters) {
    trace_ = trace;
    counters_ = counters;
  }

  /// Attaches the profit memo (null detaches; default off). The cache must
  /// outlive the selector and follows the same no-sharing-across-threads
  /// rule; it is only consulted while tuning().memoize_profits is set.
  void attach_profit_cache(ProfitCache* cache) { cache_ = cache; }

  void set_tuning(SelectorTuning tuning) { tuning_ = tuning; }
  SelectorTuning tuning() const { return tuning_; }

 private:
  SelectionResult select_impl(const TriggerInstruction& ti,
                              ReconfigPlanner planner,
                              std::string* trace) const;

  const IseLibrary* lib_;
  SelectorCostModel cost_;
  SelectionPolicy policy_;
  ProfitModel profit_model_;
  SelectorTuning tuning_;
  TraceRecorder* trace_ = nullptr;
  CounterRegistry* counters_ = nullptr;
  ProfitCache* cache_ = nullptr;
};

/// Computes the profit of \p ise under trigger entry \p entry with the
/// hypothetical schedule from \p planner. Shared by both selectors.
ProfitResult evaluate_candidate(const IseLibrary& lib, IseId ise,
                                const TriggerEntry& entry,
                                const ReconfigPlanner& planner,
                                const ProfitModel& model = {});

/// Hot-path variant of evaluate_candidate: returns only the profit value,
/// serves it from \p cache when possible (nullable = always compute) and
/// reuses \p scratch instead of allocating. Bit-identical to
/// evaluate_candidate(...).profit by construction.
double evaluate_candidate_profit(const IseLibrary& lib, IseId ise,
                                 const TriggerEntry& entry,
                                 const ReconfigPlanner& planner,
                                 const ProfitModel& model, ProfitCache* cache,
                                 EvalScratch& scratch);

}  // namespace mrts
