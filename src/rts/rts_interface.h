#pragma once
/// \file rts_interface.h
/// Abstract interface every run-time system implements (mRTS and the
/// state-of-the-art baselines). The simulator drives it with three events:
/// a trigger instruction at the head of each functional block, one call per
/// kernel execution, and an end-of-block notification carrying the observed
/// execution statistics (which the MPU uses to update its forecasts).

#include <string>
#include <vector>

#include "isa/trigger.h"
#include "rts/selector_heuristic.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
class CounterRegistry;
class FaultModel;
struct ExecEvent;        // sim/schedule.h
struct ExecRun;          // sim/schedule.h
class ObservationSink;   // sim/obs_accum.h

/// Which implementation the Execution Control Unit used for one execution.
enum class ImplKind : std::uint8_t {
  kRisc = 0,         ///< core instruction set only
  kMonoCg,           ///< monoCG-Extension on a free CG fabric
  kIntermediate,     ///< partially reconfigured (intermediate) ISE
  kFullIse,          ///< the selected ISE, completely reconfigured
  kCoveredIse,       ///< another ISE of the kernel, covered by shared
                     ///< data paths that happen to be configured
};
inline constexpr std::size_t kNumImplKinds = 5;

const char* to_string(ImplKind kind);

/// Result of one kernel execution.
struct ExecOutcome {
  Cycles latency = 0;
  ImplKind impl = ImplKind::kRisc;
};

/// What a run-time system did in reaction to a trigger instruction.
struct SelectionOutcome {
  /// Cycles the core is blocked before the first kernel can run (the rest of
  /// the selection is hidden behind the reconfiguration process, Sec. 5.4).
  Cycles blocking_overhead = 0;
  /// Full selection for analysis/tests.
  SelectionResult selection;
};

/// Observed per-kernel statistics of one functional-block instance.
struct ObservedKernelStats {
  KernelId kernel = kInvalidKernel;
  double executions = 0.0;
  Cycles time_to_first = 0;
  Cycles time_between = 0;
};

struct BlockObservation {
  FunctionalBlockId functional_block = kInvalidFunctionalBlock;
  std::vector<ObservedKernelStats> kernels;
};

/// Offline profile of one functional block: the averaged trigger values over
/// a profiling run plus how often the block was invoked. The compile-time /
/// task-level baselines (Morpheus/4S-like, offline-optimal) consume this
/// instead of run-time information.
struct BlockProfile {
  FunctionalBlockId functional_block = kInvalidFunctionalBlock;
  TriggerInstruction average;
  double invocations = 0.0;
};

class RuntimeSystem {
 public:
  virtual ~RuntimeSystem() = default;

  virtual std::string name() const = 0;

  /// The core encountered the trigger instruction of a functional block.
  virtual SelectionOutcome on_trigger(const TriggerInstruction& programmed,
                                      Cycles now) = 0;

  /// The core is about to execute kernel \p k at cycle \p now; the RTS
  /// (its ECU) decides which implementation runs and returns its latency.
  virtual ExecOutcome execute_kernel(KernelId k, Cycles now) = 0;

  /// Batched form of execute_kernel for a run of \p n back-to-back
  /// executions of the same kernel \p k (the fast path of sim/fb_simulator).
  /// \p events points at the run's n events; event i spends its gap_before
  /// software cycles, then executes \p k. \p gap_total is the precomputed
  /// sum of the run's gap_before values. The per-implementation tallies of
  /// the run are added to \p impl_executions / \p impl_cycles (arrays of
  /// kNumImplKinds), \p first_exec_start receives the absolute start cycle
  /// of the run's first execution, and the cursor after the last execution
  /// is returned.
  ///
  /// The default implementation loops over execute_kernel, so any
  /// RuntimeSystem is exactly equivalent to the per-event path; the built-in
  /// systems override it with an O(1)-per-run bulk commit where provably
  /// identical (see Ecu::execute_run).
  virtual Cycles execute_run(KernelId k, Cycles cursor, const ExecEvent* events,
                             std::size_t n, Cycles gap_total,
                             std::uint64_t* impl_executions,
                             Cycles* impl_cycles, Cycles* first_exec_start);

  /// Whole-block batched execution: runs every event of a block (given as
  /// its run-compressed form, \p runs over \p events) starting at \p cursor
  /// and returns the cursor after the last execution. Every run is reported
  /// to \p obs (the caller's observation accumulator — an inline call, so
  /// the accumulation fuses into the execution loop); per-implementation
  /// tallies accumulate into \p impl_executions / \p impl_cycles as in
  /// execute_run. The default loops over execute_run (itself defaulting to
  /// execute_kernel), so every RuntimeSystem stays exactly equivalent to
  /// the per-event path; the built-in ECU-based systems override this with
  /// one non-virtual loop that memoizes steady per-kernel decisions (see
  /// Ecu::execute_events).
  virtual Cycles execute_events(const ExecEvent* events, const ExecRun* runs,
                                std::size_t num_runs, Cycles cursor,
                                std::uint64_t* impl_executions,
                                Cycles* impl_cycles, ObservationSink& obs);

  /// The functional block finished; \p observed carries the measured
  /// execution statistics for forecast refinement.
  virtual void on_block_end(const BlockObservation& observed, Cycles now) = 0;

  /// Power-on reset (clears fabric contents and learned state).
  virtual void reset() = 0;

  // --- Unified lifecycle API -----------------------------------------------
  // Every run-time system is driven through the same attach points, so the
  // CLI, the benches and the multi-task simulator never need the concrete
  // type: construct -> attach_observability -> attach_fault_model -> run.

  /// Attaches a flight recorder / counter registry (util/trace.h,
  /// util/counters.h) to every unit of this run-time system; either pointer
  /// may be null, both null detaches. Default: the RTS records nothing
  /// (e.g. the RISC-only baseline has no units to instrument).
  virtual void attach_observability(TraceRecorder* trace,
                                    CounterRegistry* counters) {
    (void)trace;
    (void)counters;
  }

  /// Attaches a deterministic fault injector to the RTS's reconfigurable
  /// fabric (nullptr detaches). Returns false when the RTS has no fabric to
  /// fault (the default — e.g. RISC-only). Throws std::logic_error if a
  /// different model is already attached to the fabric (see
  /// FabricManager::attach_fault_model).
  virtual bool attach_fault_model(FaultModel* model) {
    (void)model;
    return false;
  }
};

}  // namespace mrts
