#pragma once
/// \file rts_interface.h
/// Abstract interface every run-time system implements (mRTS and the
/// state-of-the-art baselines). The simulator drives it with three events:
/// a trigger instruction at the head of each functional block, one call per
/// kernel execution, and an end-of-block notification carrying the observed
/// execution statistics (which the MPU uses to update its forecasts).

#include <string>
#include <vector>

#include "isa/trigger.h"
#include "rts/selector_heuristic.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
class CounterRegistry;
class FaultModel;

/// Which implementation the Execution Control Unit used for one execution.
enum class ImplKind : std::uint8_t {
  kRisc = 0,         ///< core instruction set only
  kMonoCg,           ///< monoCG-Extension on a free CG fabric
  kIntermediate,     ///< partially reconfigured (intermediate) ISE
  kFullIse,          ///< the selected ISE, completely reconfigured
  kCoveredIse,       ///< another ISE of the kernel, covered by shared
                     ///< data paths that happen to be configured
};
inline constexpr std::size_t kNumImplKinds = 5;

const char* to_string(ImplKind kind);

/// Result of one kernel execution.
struct ExecOutcome {
  Cycles latency = 0;
  ImplKind impl = ImplKind::kRisc;
};

/// What a run-time system did in reaction to a trigger instruction.
struct SelectionOutcome {
  /// Cycles the core is blocked before the first kernel can run (the rest of
  /// the selection is hidden behind the reconfiguration process, Sec. 5.4).
  Cycles blocking_overhead = 0;
  /// Full selection for analysis/tests.
  SelectionResult selection;
};

/// Observed per-kernel statistics of one functional-block instance.
struct ObservedKernelStats {
  KernelId kernel = kInvalidKernel;
  double executions = 0.0;
  Cycles time_to_first = 0;
  Cycles time_between = 0;
};

struct BlockObservation {
  FunctionalBlockId functional_block = kInvalidFunctionalBlock;
  std::vector<ObservedKernelStats> kernels;
};

/// Offline profile of one functional block: the averaged trigger values over
/// a profiling run plus how often the block was invoked. The compile-time /
/// task-level baselines (Morpheus/4S-like, offline-optimal) consume this
/// instead of run-time information.
struct BlockProfile {
  FunctionalBlockId functional_block = kInvalidFunctionalBlock;
  TriggerInstruction average;
  double invocations = 0.0;
};

class RuntimeSystem {
 public:
  virtual ~RuntimeSystem() = default;

  virtual std::string name() const = 0;

  /// The core encountered the trigger instruction of a functional block.
  virtual SelectionOutcome on_trigger(const TriggerInstruction& programmed,
                                      Cycles now) = 0;

  /// The core is about to execute kernel \p k at cycle \p now; the RTS
  /// (its ECU) decides which implementation runs and returns its latency.
  virtual ExecOutcome execute_kernel(KernelId k, Cycles now) = 0;

  /// The functional block finished; \p observed carries the measured
  /// execution statistics for forecast refinement.
  virtual void on_block_end(const BlockObservation& observed, Cycles now) = 0;

  /// Power-on reset (clears fabric contents and learned state).
  virtual void reset() = 0;

  // --- Unified lifecycle API -----------------------------------------------
  // Every run-time system is driven through the same attach points, so the
  // CLI, the benches and the multi-task simulator never need the concrete
  // type: construct -> attach_observability -> attach_fault_model -> run.

  /// Attaches a flight recorder / counter registry (util/trace.h,
  /// util/counters.h) to every unit of this run-time system; either pointer
  /// may be null, both null detaches. Default: the RTS records nothing
  /// (e.g. the RISC-only baseline has no units to instrument).
  virtual void attach_observability(TraceRecorder* trace,
                                    CounterRegistry* counters) {
    (void)trace;
    (void)counters;
  }

  /// Attaches a deterministic fault injector to the RTS's reconfigurable
  /// fabric (nullptr detaches). Returns false when the RTS has no fabric to
  /// fault (the default — e.g. RISC-only). Throws std::logic_error if a
  /// different model is already attached to the fabric (see
  /// FabricManager::attach_fault_model).
  virtual bool attach_fault_model(FaultModel* model) {
    (void)model;
    return false;
  }
};

}  // namespace mrts
