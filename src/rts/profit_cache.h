#pragma once
/// \file profit_cache.h
/// Memoized Eq. 1-4 profit evaluations for the ISE-selection hot path.
///
/// Both selectors re-evaluate the same (ISE, forecast, fabric-state) points
/// many times per trigger: the branch-and-bound's root upper bounds are
/// recomputed along every all-"no ISE" DFS prefix, sibling subtrees collide
/// on identical port cursors and claim counts, and the greedy re-scores
/// untouched candidates after rounds that only reused instances. A profit
/// value is a pure function of
///
///   (ISE, ProfitModel, e/tf/tb forecast, plan() output)
///
/// and plan()'s output is itself a pure function of the planner state the
/// key captures below — so a cache hit returns the *bit-identical* double a
/// recomputation would produce. That exactness is the whole contract: with
/// the cache on, every selection, every counter and every committed fig CSV
/// must stay byte-identical (pinned by tests/test_profit_cache.cpp).
///
/// The cache is per-MRts-instance (one fabric, one library), never shared
/// across threads — the same ownership rule as every other mutable
/// simulation object. Entries are cleared at the start of each select()
/// call: keys embed the trigger cycle, so cross-trigger hits are impossible
/// anyway, and clearing makes memory use per select bounded and
/// deterministic.

#include <cstdint>
#include <unordered_map>

#include "isa/ise.h"
#include "isa/trigger.h"
#include "rts/profit.h"
#include "rts/reconfig_plan.h"
#include "util/types.h"

namespace mrts {

class CounterRegistry;
class TraceRecorder;

/// Hot-path switches of both selectors. The defaults are the optimized
/// configuration; baseline() reproduces the pre-optimization implementation
/// (planner copied per branch-and-bound node, no memoization, per-candidate
/// allocations) so the wall-clock bench can measure an honest interleaved
/// A/B in one binary. Both settings are pure optimizations: selections,
/// counters and CSV outputs are identical either way.
struct SelectorTuning {
  bool memoize_profits = true;     ///< consult the ProfitCache
  bool incremental_planner = true; ///< commit/rollback instead of copying
  static SelectorTuning baseline() { return {false, false}; }
};

class ProfitCache {
 public:
  /// Everything the profit double depends on, captured exactly (bit
  /// patterns, not rounded buckets — a lossy key would change selections).
  struct Key {
    std::uint64_t epoch = 0;   ///< FabricManager::state_epoch / kIdleEpoch
    Cycles now = 0;            ///< trigger cycle (ready_rel is relative)
    Cycles fg_cursor = 0;      ///< FG reconfiguration-port backlog
    Cycles cg_cursor = 0;
    Cycles uniform_reconfig = 0;
    std::uint64_t claims = 0;  ///< packed per-data-path claim counts
    std::uint64_t e_bits = 0;  ///< bit pattern of expected_executions
    Cycles tf = 0;
    Cycles tb = 0;
    std::uint32_t ise = 0;
    std::uint8_t model_bits = 0;  ///< ProfitModel flags
    bool operator==(const Key&) const = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  /// Builds the key for evaluating \p ise under \p entry on \p planner.
  /// Returns false when the point is not cacheable (more than 8 distinct
  /// data paths or a claim count above 255 — neither occurs in the paper's
  /// libraries; the caller then just computes).
  static bool make_key(Key& key, IseId ise, const IseVariant& variant,
                       const TriggerEntry& entry,
                       const ReconfigPlanner& planner,
                       const ProfitModel& model);

  /// Starts a select() scope: drops all entries (bucket storage is kept) and
  /// zeroes the per-select hit/miss tallies.
  void begin_select();

  /// Cached profit for \p key, or nullptr. Tallies one hit or one miss.
  const double* lookup(const Key& key);

  /// Tallies a miss for an evaluation the cache could not serve because
  /// make_key declined the point.
  void note_uncacheable() { ++select_misses_; ++total_misses_; }

  void insert(const Key& key, double profit) { map_.emplace(key, profit); }

  /// Per-select tallies (since begin_select) and lifetime totals (never
  /// reset; the wall-clock bench derives its hit rate from these).
  std::uint64_t select_hits() const { return select_hits_; }
  std::uint64_t select_misses() const { return select_misses_; }
  std::uint64_t total_hits() const { return total_hits_; }
  std::uint64_t total_misses() const { return total_misses_; }

  /// Ends a select() scope: publishes the per-select tallies as
  /// selector.cache.{hit,miss} counter deltas and one kSelectorCacheStats
  /// trace event (either sink may be null), then zeroes them. Flushing once
  /// per select — not once per evaluation — keeps the registry's map lookup
  /// out of the hot loop.
  void flush(CounterRegistry* counters, TraceRecorder* trace, Cycles now);

 private:
  std::unordered_map<Key, double, KeyHash> map_;
  std::uint64_t select_hits_ = 0;
  std::uint64_t select_misses_ = 0;
  std::uint64_t total_hits_ = 0;
  std::uint64_t total_misses_ = 0;
};

/// Scratch buffers for the allocation-free candidate evaluation; create one
/// per select() call and pass it through the inner loop.
struct EvalScratch {
  std::vector<Cycles> ready_abs;
  ProfitInputs inputs;
};

}  // namespace mrts
