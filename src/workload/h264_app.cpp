#include "workload/h264_app.h"

#include <algorithm>
#include <stdexcept>

#include "isa/ise_builder.h"
#include "workload/workload_gen.h"

namespace mrts {
namespace {

/// Kernel acceleration specs. Control-dominant kernels (CAVLC, LF_COND,
/// SCAN, IPRED) profit most from the FG fabric; data-dominant sub-word
/// kernels (SAD, MC, DCT, LF_FILTER) from the CG fabric. Shared data-path
/// names model hardware reuse between related kernels (SAD/SATD share the
/// absolute-difference tree, DCT/HT/IDCT share the butterfly adders, ...).
IseBuildSpec sad_spec() {
  IseBuildSpec s;
  s.kernel_name = "SAD";
  s.sw_latency = 520;
  s.control_fraction = 0.45;
  s.fg_control_speedup = 14.0;
  s.fg_data_speedup = 8.5;
  s.cg_control_speedup = 1.2;
  s.cg_data_speedup = 7.0;
  s.fg_data_path_names = {"sad_ctrl_fg", "absdiff_tree_fg", "sad_acc_fg"};
  s.cg_data_path_names = {"simd_absdiff_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 2.1;
  return s;
}

IseBuildSpec satd_spec() {
  IseBuildSpec s;
  s.kernel_name = "SATD";
  s.sw_latency = 890;
  s.control_fraction = 0.45;
  s.fg_control_speedup = 12.0;
  s.fg_data_speedup = 7.5;
  s.cg_control_speedup = 1.2;
  s.cg_data_speedup = 5.5;
  s.fg_data_path_names = {"satd_ctrl_fg", "absdiff_tree_fg", "hadamard_fg"};
  s.cg_data_path_names = {"butterfly_cg", "acc_reduce_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 2;
  s.mono_cg_speedup = 2.2;
  return s;
}

IseBuildSpec mc_hz4_spec() {
  IseBuildSpec s;
  s.kernel_name = "MC_HZ4";
  s.sw_latency = 680;
  s.control_fraction = 0.30;
  s.fg_control_speedup = 12.0;
  s.fg_data_speedup = 9.5;
  s.cg_control_speedup = 1.1;
  s.cg_data_speedup = 7.0;
  s.fg_data_path_names = {"mc_ctrl_fg", "sixtap_fg"};
  s.cg_data_path_names = {"sixtap_mac_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 2.2;
  return s;
}

IseBuildSpec ipred_spec() {
  IseBuildSpec s;
  s.kernel_name = "IPRED";
  s.sw_latency = 440;
  s.control_fraction = 0.60;
  s.fg_control_speedup = 15.0;
  s.fg_data_speedup = 6.0;
  s.cg_control_speedup = 1.3;
  s.cg_data_speedup = 3.0;
  s.fg_data_path_names = {"ipred_mode_fg", "edge_extend_fg"};
  s.cg_data_path_names = {"avg_plane_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 1.9;
  return s;
}

IseBuildSpec dct4_spec() {
  IseBuildSpec s;
  s.kernel_name = "DCT4";
  s.sw_latency = 390;
  s.control_fraction = 0.35;
  s.fg_control_speedup = 12.0;
  s.fg_data_speedup = 8.5;
  s.cg_control_speedup = 1.15;
  s.cg_data_speedup = 6.5;
  s.fg_data_path_names = {"dct_ctrl_fg", "transform_fg"};
  s.cg_data_path_names = {"butterfly_cg", "shift_add_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 2;
  s.mono_cg_speedup = 2.1;
  return s;
}

IseBuildSpec ht_spec() {
  IseBuildSpec s;
  s.kernel_name = "HT";
  s.sw_latency = 300;
  s.control_fraction = 0.35;
  s.fg_control_speedup = 10.0;
  s.fg_data_speedup = 7.5;
  s.cg_control_speedup = 1.2;
  s.cg_data_speedup = 5.5;
  s.fg_data_path_names = {"dct_ctrl_fg", "hadamard_fg"};
  s.cg_data_path_names = {"butterfly_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 2.2;
  return s;
}

IseBuildSpec quant_spec() {
  IseBuildSpec s;
  s.kernel_name = "QUANT";
  s.sw_latency = 420;
  s.control_fraction = 0.40;
  s.fg_control_speedup = 12.0;
  s.fg_data_speedup = 8.5;
  s.cg_control_speedup = 1.15;
  s.cg_data_speedup = 7.0;
  s.fg_data_path_names = {"quant_ctrl_fg", "mul_shift_fg"};
  s.cg_data_path_names = {"quant_mulshift_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 2.1;
  return s;
}

IseBuildSpec idct_spec() {
  // The inverse transform reuses the forward transform hardware: identical
  // data-path sets, so whichever of DCT4/IDCT is selected covers the other
  // for free (cross-ISE data-path sharing).
  IseBuildSpec s;
  s.kernel_name = "IDCT";
  s.sw_latency = 400;
  s.control_fraction = 0.35;
  s.fg_control_speedup = 12.0;
  s.fg_data_speedup = 8.5;
  s.cg_control_speedup = 1.15;
  s.cg_data_speedup = 6.5;
  s.fg_data_path_names = {"dct_ctrl_fg", "transform_fg"};
  s.cg_data_path_names = {"butterfly_cg", "shift_add_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 2;
  s.mono_cg_speedup = 2.1;
  return s;
}

IseBuildSpec cavlc_spec() {
  IseBuildSpec s;
  s.kernel_name = "CAVLC";
  s.sw_latency = 980;
  s.control_fraction = 0.80;
  s.fg_control_speedup = 15.0;
  s.fg_data_speedup = 5.0;
  s.cg_control_speedup = 1.3;
  s.cg_data_speedup = 2.2;
  s.fg_data_path_names = {"vlc_table_fg", "bitpack_fg", "runlevel_fg"};
  s.cg_data_path_names = {"coeff_scan_cg"};
  s.fg_control_dps = 2;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 1.8;
  return s;
}

IseBuildSpec scan_spec() {
  IseBuildSpec s;
  s.kernel_name = "SCAN";
  s.sw_latency = 260;
  s.control_fraction = 0.70;
  s.fg_control_speedup = 12.0;
  s.fg_data_speedup = 5.0;
  s.cg_control_speedup = 1.25;
  s.cg_data_speedup = 3.0;
  s.fg_data_path_names = {"runlevel_fg"};
  s.cg_data_path_names = {"coeff_scan_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 1.9;
  return s;
}

IseBuildSpec lf_cond_spec() {
  IseBuildSpec s;
  s.kernel_name = "LF_COND";
  s.sw_latency = 340;
  s.control_fraction = 0.90;
  s.fg_control_speedup = 14.0;
  s.fg_data_speedup = 5.0;
  s.cg_control_speedup = 1.25;
  s.cg_data_speedup = 2.0;
  s.fg_data_path_names = {"bs_decision_fg", "threshold_fg"};
  s.cg_data_path_names = {"cond_mask_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 1.9;
  return s;
}

IseBuildSpec lf_filter_spec() {
  IseBuildSpec s;
  s.kernel_name = "LF_FILTER";
  s.sw_latency = 560;
  s.control_fraction = 0.40;
  s.fg_control_speedup = 15.0;
  s.fg_data_speedup = 9.5;
  s.cg_control_speedup = 1.2;
  s.cg_data_speedup = 6.5;
  s.fg_data_path_names = {"lf_ctrl_fg", "filter_taps_fg"};
  s.cg_data_path_names = {"filter_mac_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 2.2;
  return s;
}

/// Gap cycles before each execution: a small fraction of the kernel's own
/// RISC latency (address computation, loop control and data movement of the
/// surrounding software).
Cycles gap_for(Cycles sw_latency) {
  return std::max<Cycles>(6, sw_latency / 40);
}

}  // namespace

std::vector<KernelId> H264Application::all_kernels() const {
  return {k_sad,  k_satd,  k_mc_hz4, k_ipred, k_dct4,    k_ht,
          k_quant, k_idct, k_cavlc,  k_scan,  k_lf_cond, k_lf_filter};
}

std::size_t H264Application::lf_filter_executions(unsigned frame) const {
  // LF is the third block of each frame.
  const std::size_t index = static_cast<std::size_t>(frame) * 3 + 2;
  if (index >= trace.blocks.size()) {
    throw std::out_of_range("H264Application::lf_filter_executions");
  }
  return trace.blocks[index].executions_of(k_lf_filter);
}

H264Application build_h264_application(const H264AppParams& params) {
  H264Application app;

  // --- kernels and ISE libraries ------------------------------------------
  app.k_sad = build_kernel_ises(app.library, sad_spec());
  app.k_satd = build_kernel_ises(app.library, satd_spec());
  app.k_mc_hz4 = build_kernel_ises(app.library, mc_hz4_spec());
  app.k_ipred = build_kernel_ises(app.library, ipred_spec());
  app.k_dct4 = build_kernel_ises(app.library, dct4_spec());
  app.k_ht = build_kernel_ises(app.library, ht_spec());
  app.k_quant = build_kernel_ises(app.library, quant_spec());
  app.k_idct = build_kernel_ises(app.library, idct_spec());
  app.k_cavlc = build_kernel_ises(app.library, cavlc_spec());
  app.k_scan = build_kernel_ises(app.library, scan_spec());
  app.k_lf_cond = build_kernel_ises(app.library, lf_cond_spec());
  app.k_lf_filter = build_kernel_ises(app.library, lf_filter_spec());

  // --- content-driven per-frame schedules ---------------------------------
  ContentParams content = params.content;
  content.frames = params.frames;
  content.seed = params.seed;
  const ContentModel video(content);

  Rng rng(params.seed ^ 0x5eedULL);
  const double scale = params.workload_scale;
  auto sw = [&app](KernelId k) { return app.library.kernel(k).sw_latency; };

  app.trace.name = "h264_encoder";
  app.trace.blocks.reserve(static_cast<std::size_t>(params.frames) * 3);

  // Nominal instances (mid content) provide the programmed triggers the
  // binary carries — the same forecast for every instance of a block.
  std::vector<TriggerInstruction> programmed(3);
  for (unsigned f = 0; f < params.frames; ++f) {
    // GOP structure: every 8th frame is intra coded — motion estimation
    // finds nothing, residual work spikes. Together with scene changes this
    // produces the abrupt per-frame execution-count swings of Fig. 2.
    const bool intra = f > 0 && f % 8 == 0;
    const double m = intra ? 0.06 : video.motion(f);
    const double d = intra ? std::min(1.0, video.detail(f) + 0.25)
                           : video.detail(f);

    // Motion Estimation: search effort scales with motion. SAD dominates
    // the block (the paper's "kernel that contributes most").
    const double m2 = m * m;
    const std::vector<KernelWork> me_work = {
        {app.k_sad, scale * (3.0 + 40.0 * m2 + 14.0 * m),
         gap_for(sw(app.k_sad)), 0.2},
        {app.k_satd, scale * (0.5 + 6.0 * m), gap_for(sw(app.k_satd)), 0.2},
        {app.k_mc_hz4, scale * (0.3 + 4.5 * m), gap_for(sw(app.k_mc_hz4)), 0.2},
        {app.k_ipred, scale * (1.0 + 3.5 * (1.0 - m)),
         gap_for(sw(app.k_ipred)), 0.2},
    };
    // Encoding Engine: residual/entropy work scales with detail; CAVLC is
    // the heavyweight.
    const std::vector<KernelWork> ee_work = {
        {app.k_dct4, scale * (3.5 + 2.5 * d), gap_for(sw(app.k_dct4)), 0.2},
        {app.k_ht, scale * 1.5, gap_for(sw(app.k_ht)), 0.2},
        {app.k_quant, scale * (3.5 + 2.0 * d), gap_for(sw(app.k_quant)), 0.2},
        {app.k_idct, scale * (3.5 + 2.0 * d), gap_for(sw(app.k_idct)), 0.2},
        {app.k_cavlc, scale * (7.0 + 11.0 * d), gap_for(sw(app.k_cavlc)), 0.2},
        {app.k_scan, scale * 3.0, gap_for(sw(app.k_scan)), 0.2},
    };
    // Loop Filter: number of filtered edges scales with detail (and a bit
    // with motion: more coded residual -> more boundary strength). The
    // filter data path dominates (Section 2 case study).
    const double lf_level = 0.7 * d + 0.3 * m;
    const std::vector<KernelWork> lf_work = {
        {app.k_lf_cond, scale * (4.0 + 10.0 * lf_level),
         gap_for(sw(app.k_lf_cond)), 0.2},
        {app.k_lf_filter, scale * (3.0 + 14.0 * lf_level + 10.0 * lf_level * lf_level),
         gap_for(sw(app.k_lf_filter)), 0.2},
    };

    const std::vector<std::vector<KernelWork>> works = {me_work, ee_work,
                                                        lf_work};
    const FunctionalBlockId fbs[3] = {app.fb_me, app.fb_ee, app.fb_lf};
    for (unsigned b = 0; b < 3; ++b) {
      FunctionalBlockInstance inst = make_block_instance(
          fbs[b], params.macroblocks, works[b], /*entry_gap=*/400,
          /*tail_gap=*/400, rng);
      if (f == 0) {
        // The offline profile the programmer embeds as trigger instructions.
        stamp_programmed_trigger(inst, app.library);
        programmed[b] = inst.programmed;
      } else {
        inst.programmed = programmed[b];
      }
      app.trace.blocks.push_back(std::move(inst));
    }
  }
  return app;
}

}  // namespace mrts
