#pragma once
/// \file workload_gen.h
/// Generic functional-block schedule generation: builds the interleaved
/// macroblock-loop execution pattern of a block instance from per-kernel
/// repetition counts, and derives the programmed trigger instruction the
/// application binary would carry.

#include <vector>

#include "isa/ise_library.h"
#include "sim/schedule.h"
#include "util/rng.h"
#include "util/types.h"

namespace mrts {

/// Work of one kernel inside the macroblock loop of a block instance.
struct KernelWork {
  KernelId kernel = kInvalidKernel;
  /// Average executions per macroblock (fractional values are carried as a
  /// running remainder so the total over the block matches the mean).
  double repetitions_per_mb = 0.0;
  /// Non-kernel software cycles before each execution.
  Cycles gap_cycles = 0;
  /// Relative jitter of the gap (0.2 = +-20%), applied deterministically.
  double gap_jitter = 0.2;
};

/// Builds the actual schedule of one block instance: the macroblock loop
/// executes every kernel's repetitions per macroblock, in the listed kernel
/// order, with per-execution gaps.
FunctionalBlockInstance make_block_instance(FunctionalBlockId fb,
                                            unsigned macroblocks,
                                            const std::vector<KernelWork>& work,
                                            Cycles entry_gap, Cycles tail_gap,
                                            Rng& rng);

/// Stamps the programmed trigger of \p instance from its own schedule and
/// RISC-mode latencies (what an offline profiling of a nominal input would
/// produce). Usually called once on a *nominal* instance and copied to all
/// instances of the block.
void stamp_programmed_trigger(FunctionalBlockInstance& instance,
                              const IseLibrary& lib);

}  // namespace mrts
