#pragma once
/// \file sdr_app.h
/// A second evaluation workload beyond the paper: a software-defined-radio
/// receiver. It exercises the same machinery (heterogeneous kernels,
/// per-burst workload variation, multi-grained ISE families) on a very
/// different application shape — long filter pipelines, an FFT butterfly
/// stage and a control-dominant Viterbi decoder:
///
///   * ChannelFilter block: FIR64, AGC_CORDIC, DECIMATE
///   * Demodulate block:    FFT_BFLY, EQUALIZE, SLICER
///   * Decode block:        VITERBI_ACS, DEINTERLEAVE, CRC32
///
/// Per-burst variation comes from a channel model (SNR and channel
/// occupancy as AR(1) processes): low SNR inflates the equalizer/Viterbi
/// work, occupancy scales everything.

#include <vector>

#include "isa/ise_library.h"
#include "sim/schedule.h"
#include "workload/content_model.h"

namespace mrts {

struct SdrAppParams {
  unsigned bursts = 16;
  /// Sample batches per burst (the "macroblocks" of this workload).
  unsigned batches = 300;
  std::uint64_t seed = 0x5D12;
  double workload_scale = 1.0;
};

struct SdrApplication {
  IseLibrary library;
  ApplicationTrace trace;

  FunctionalBlockId fb_filter{0};
  FunctionalBlockId fb_demod{1};
  FunctionalBlockId fb_decode{2};

  KernelId k_fir, k_agc, k_decimate;         // ChannelFilter
  KernelId k_fft, k_equalize, k_slicer;      // Demodulate
  KernelId k_viterbi, k_deinterleave, k_crc; // Decode

  std::vector<KernelId> all_kernels() const;
};

SdrApplication build_sdr_application(const SdrAppParams& params = {});

}  // namespace mrts
