#pragma once
/// \file content_model.h
/// Synthetic video-content model. The run-time variation the paper's whole
/// argument rests on (Fig. 2) comes from the input video: per-frame motion
/// intensity drives the motion-estimation kernels, per-frame spatial detail
/// drives transform/entropy/deblocking work. We model both as mean-reverting
/// AR(1) processes in [0,1] with occasional scene changes that re-randomize
/// the state — deterministic from the seed.

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mrts {

struct ContentParams {
  unsigned frames = 16;
  std::uint64_t seed = 1;

  double base_motion = 0.40;   ///< long-run mean of the motion process
  double motion_ar = 0.65;     ///< AR(1) coefficient
  double motion_noise = 0.18;  ///< innovation standard deviation

  double base_detail = 0.50;
  double detail_ar = 0.70;
  double detail_noise = 0.14;

  double scene_change_prob = 0.15;  ///< per frame
};

class ContentModel {
 public:
  explicit ContentModel(ContentParams params = {});

  unsigned frames() const { return static_cast<unsigned>(motion_.size()); }

  /// Motion intensity of \p frame, in [0, 1].
  double motion(unsigned frame) const;

  /// Spatial detail of \p frame, in [0, 1].
  double detail(unsigned frame) const;

  /// True if a scene change happened at \p frame.
  bool scene_change(unsigned frame) const;

 private:
  std::vector<double> motion_;
  std::vector<double> detail_;
  std::vector<bool> scene_change_;
};

}  // namespace mrts
