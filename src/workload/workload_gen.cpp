#include "workload/workload_gen.h"

#include <cmath>
#include <stdexcept>

#include "sim/app_simulator.h"

namespace mrts {

FunctionalBlockInstance make_block_instance(
    FunctionalBlockId fb, unsigned macroblocks,
    const std::vector<KernelWork>& work, Cycles entry_gap, Cycles tail_gap,
    Rng& rng) {
  if (macroblocks == 0) {
    throw std::invalid_argument("make_block_instance: zero macroblocks");
  }
  FunctionalBlockInstance instance;
  instance.functional_block = fb;
  instance.tail_gap = tail_gap;

  std::vector<double> remainder(work.size(), 0.0);
  bool first_event = true;
  for (unsigned mb = 0; mb < macroblocks; ++mb) {
    for (std::size_t w = 0; w < work.size(); ++w) {
      const KernelWork& kw = work[w];
      remainder[w] += kw.repetitions_per_mb;
      auto reps = static_cast<unsigned>(remainder[w]);
      remainder[w] -= reps;
      for (unsigned r = 0; r < reps; ++r) {
        ExecEvent ev;
        ev.kernel = kw.kernel;
        const double jitter =
            1.0 + kw.gap_jitter * (2.0 * rng.uniform01() - 1.0);
        ev.gap_before = static_cast<Cycles>(
            std::max(0.0, static_cast<double>(kw.gap_cycles) * jitter));
        if (first_event) {
          ev.gap_before += entry_gap;
          first_event = false;
        }
        instance.events.push_back(ev);
      }
    }
  }
  // Decode the run-compressed view once, at build time: the trace is shared
  // read-only across sweep points, so every run_block call replays the same
  // pre-decoded runs instead of re-scanning the event list.
  finalize_instance_runs(instance);
  return instance;
}

void stamp_programmed_trigger(FunctionalBlockInstance& instance,
                              const IseLibrary& lib) {
  instance.programmed =
      derive_trigger(instance, risc_latency_table(lib));
}

}  // namespace mrts
