#include "workload/content_model.h"

#include <algorithm>
#include <stdexcept>

namespace mrts {
namespace {

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

ContentModel::ContentModel(ContentParams params) {
  if (params.frames == 0) {
    throw std::invalid_argument("ContentModel: need at least one frame");
  }
  Rng rng(params.seed);
  motion_.reserve(params.frames);
  detail_.reserve(params.frames);
  scene_change_.reserve(params.frames);

  double m = params.base_motion;
  double d = params.base_detail;
  for (unsigned f = 0; f < params.frames; ++f) {
    const bool cut = f > 0 && rng.bernoulli(params.scene_change_prob);
    if (cut) {
      // A scene change behaves like an intra-coded frame: motion estimation
      // finds (almost) nothing while residual/entropy work spikes. This is
      // the abrupt workload shift the run-time system must react to.
      m = clamp01(rng.uniform(0.02, 0.25));
      d = clamp01(rng.uniform(0.55, 0.95));
    } else {
      m = clamp01(params.base_motion +
                  params.motion_ar * (m - params.base_motion) +
                  rng.gaussian(0.0, params.motion_noise));
      d = clamp01(params.base_detail +
                  params.detail_ar * (d - params.base_detail) +
                  rng.gaussian(0.0, params.detail_noise));
    }
    motion_.push_back(m);
    detail_.push_back(d);
    scene_change_.push_back(cut);
  }
}

double ContentModel::motion(unsigned frame) const {
  if (frame >= motion_.size()) {
    throw std::out_of_range("ContentModel::motion");
  }
  return motion_[frame];
}

double ContentModel::detail(unsigned frame) const {
  if (frame >= detail_.size()) {
    throw std::out_of_range("ContentModel::detail");
  }
  return detail_[frame];
}

bool ContentModel::scene_change(unsigned frame) const {
  if (frame >= scene_change_.size()) {
    throw std::out_of_range("ContentModel::scene_change");
  }
  return scene_change_[frame];
}

}  // namespace mrts
