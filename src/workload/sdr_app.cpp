#include "workload/sdr_app.h"

#include <algorithm>

#include "isa/ise_builder.h"
#include "workload/workload_gen.h"

namespace mrts {
namespace {

IseBuildSpec fir_spec() {
  IseBuildSpec s;
  s.kernel_name = "FIR64";
  s.sw_latency = 900;  // 64-tap MAC loop per sample batch
  s.control_fraction = 0.15;
  s.fg_control_speedup = 8.0;
  s.fg_data_speedup = 9.0;
  s.cg_control_speedup = 1.2;
  s.cg_data_speedup = 6.5;
  s.fg_data_path_names = {"fir_ctrl_fg", "fir_mac_fg", "fir_acc_fg"};
  s.cg_data_path_names = {"fir_mac_cg", "fir_acc_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 2;
  s.mono_cg_speedup = 2.1;
  return s;
}

IseBuildSpec agc_spec() {
  IseBuildSpec s;
  s.kernel_name = "AGC_CORDIC";
  s.sw_latency = 620;  // CORDIC rotations + gain control decisions
  s.control_fraction = 0.50;
  s.fg_control_speedup = 11.0;
  s.fg_data_speedup = 6.0;
  s.cg_control_speedup = 1.25;
  s.cg_data_speedup = 4.0;
  s.fg_data_path_names = {"cordic_ctrl_fg", "cordic_rot_fg"};
  s.cg_data_path_names = {"cordic_rot_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 1.8;
  return s;
}

IseBuildSpec decimate_spec() {
  IseBuildSpec s;
  s.kernel_name = "DECIMATE";
  s.sw_latency = 260;
  s.control_fraction = 0.30;
  s.fg_control_speedup = 7.0;
  s.fg_data_speedup = 6.0;
  s.cg_control_speedup = 1.2;
  s.cg_data_speedup = 5.0;
  s.fg_data_path_names = {"decim_fg"};
  s.cg_data_path_names = {"decim_cg"};
  s.mono_cg_speedup = 1.9;
  return s;
}

IseBuildSpec fft_spec() {
  IseBuildSpec s;
  s.kernel_name = "FFT_BFLY";
  s.sw_latency = 760;  // radix-2 butterfly column with twiddle multiplies
  s.control_fraction = 0.20;
  s.fg_control_speedup = 8.0;
  s.fg_data_speedup = 8.0;
  s.cg_control_speedup = 1.15;
  s.cg_data_speedup = 6.0;
  s.fg_data_path_names = {"fft_ctrl_fg", "fft_bfly_fg"};
  s.cg_data_path_names = {"fft_bfly_cg", "twiddle_mul_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 2;
  s.mono_cg_speedup = 2.0;
  return s;
}

IseBuildSpec equalize_spec() {
  IseBuildSpec s;
  s.kernel_name = "EQUALIZE";
  s.sw_latency = 540;
  s.control_fraction = 0.35;
  s.fg_control_speedup = 9.0;
  s.fg_data_speedup = 7.0;
  s.cg_control_speedup = 1.2;
  s.cg_data_speedup = 5.5;
  s.fg_data_path_names = {"eq_ctrl_fg", "eq_mac_fg"};
  s.cg_data_path_names = {"eq_mac_cg"};
  s.fg_control_dps = 1;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 1.9;
  return s;
}

IseBuildSpec slicer_spec() {
  IseBuildSpec s;
  s.kernel_name = "SLICER";
  s.sw_latency = 300;  // constellation decisions: bit-level compares
  s.control_fraction = 0.75;
  s.fg_control_speedup = 10.0;
  s.fg_data_speedup = 4.0;
  s.cg_control_speedup = 1.3;
  s.cg_data_speedup = 2.5;
  s.fg_data_path_names = {"slicer_fg"};
  s.cg_data_path_names = {"slicer_cg"};
  s.mono_cg_speedup = 1.6;
  return s;
}

IseBuildSpec viterbi_spec() {
  IseBuildSpec s;
  s.kernel_name = "VITERBI_ACS";
  s.sw_latency = 1200;  // add-compare-select over the trellis
  s.control_fraction = 0.65;
  s.fg_control_speedup = 13.0;
  s.fg_data_speedup = 5.0;
  s.cg_control_speedup = 1.3;
  s.cg_data_speedup = 3.0;
  s.fg_data_path_names = {"acs_cmp_fg", "acs_path_fg", "branch_metric_fg"};
  s.cg_data_path_names = {"branch_metric_cg"};
  s.fg_control_dps = 2;
  s.cg_data_dps = 1;
  s.mono_cg_speedup = 1.6;
  return s;
}

IseBuildSpec deinterleave_spec() {
  IseBuildSpec s;
  s.kernel_name = "DEINTERLEAVE";
  s.sw_latency = 340;
  s.control_fraction = 0.70;
  s.fg_control_speedup = 9.0;
  s.fg_data_speedup = 4.0;
  s.cg_control_speedup = 1.25;
  s.cg_data_speedup = 2.5;
  s.fg_data_path_names = {"deint_fg"};
  s.cg_data_path_names = {"deint_cg"};
  s.mono_cg_speedup = 1.7;
  return s;
}

IseBuildSpec crc_spec() {
  IseBuildSpec s;
  s.kernel_name = "CRC32";
  s.sw_latency = 280;  // bit-serial polynomial division
  s.control_fraction = 0.85;
  s.fg_control_speedup = 12.0;
  s.fg_data_speedup = 4.0;
  s.cg_control_speedup = 1.2;
  s.cg_data_speedup = 2.0;
  s.fg_data_path_names = {"crc_lfsr_fg"};
  s.cg_data_path_names = {"crc_table_cg"};
  s.mono_cg_speedup = 1.6;
  return s;
}

Cycles gap_for(Cycles sw_latency) {
  return std::max<Cycles>(8, sw_latency / 25);
}

}  // namespace

std::vector<KernelId> SdrApplication::all_kernels() const {
  return {k_fir,     k_agc,          k_decimate, k_fft,  k_equalize,
          k_slicer,  k_viterbi,      k_deinterleave, k_crc};
}

SdrApplication build_sdr_application(const SdrAppParams& params) {
  SdrApplication app;
  app.k_fir = build_kernel_ises(app.library, fir_spec());
  app.k_agc = build_kernel_ises(app.library, agc_spec());
  app.k_decimate = build_kernel_ises(app.library, decimate_spec());
  app.k_fft = build_kernel_ises(app.library, fft_spec());
  app.k_equalize = build_kernel_ises(app.library, equalize_spec());
  app.k_slicer = build_kernel_ises(app.library, slicer_spec());
  app.k_viterbi = build_kernel_ises(app.library, viterbi_spec());
  app.k_deinterleave = build_kernel_ises(app.library, deinterleave_spec());
  app.k_crc = build_kernel_ises(app.library, crc_spec());

  // Channel model: reuse the AR(1) content process — "motion" plays the
  // role of (inverse) SNR, "detail" the channel occupancy.
  ContentParams content;
  content.frames = params.bursts;
  content.seed = params.seed;
  content.base_motion = 0.45;   // mean noise level
  content.motion_noise = 0.2;
  content.scene_change_prob = 0.12;  // fading dips / band switches
  const ContentModel channel(content);

  Rng rng(params.seed ^ 0x5d12ULL);
  const double scale = params.workload_scale;
  auto sw = [&app](KernelId k) { return app.library.kernel(k).sw_latency; };

  app.trace.name = "sdr_receiver";
  app.trace.blocks.reserve(static_cast<std::size_t>(params.bursts) * 3);
  std::vector<TriggerInstruction> programmed(3);
  for (unsigned b = 0; b < params.bursts; ++b) {
    const double noise = channel.motion(b);      // 0 = clean channel
    const double occupancy = channel.detail(b);  // share of busy carriers

    const std::vector<KernelWork> filter_work = {
        {app.k_fir, scale * (6.0 + 4.0 * occupancy), gap_for(sw(app.k_fir)),
         0.15},
        {app.k_agc, scale * (1.0 + 3.0 * noise), gap_for(sw(app.k_agc)), 0.15},
        {app.k_decimate, scale * 2.0, gap_for(sw(app.k_decimate)), 0.15},
    };
    const std::vector<KernelWork> demod_work = {
        {app.k_fft, scale * (4.0 + 3.0 * occupancy), gap_for(sw(app.k_fft)),
         0.15},
        // A noisy channel needs more equalizer adaptation iterations.
        {app.k_equalize, scale * (2.0 + 6.0 * noise + 4.0 * noise * noise),
         gap_for(sw(app.k_equalize)), 0.15},
        {app.k_slicer, scale * (2.0 + 2.0 * occupancy),
         gap_for(sw(app.k_slicer)), 0.15},
    };
    const std::vector<KernelWork> decode_work = {
        // Viterbi work explodes with noise (more trellis survivors kept).
        {app.k_viterbi, scale * (3.0 + 7.0 * noise),
         gap_for(sw(app.k_viterbi)), 0.15},
        {app.k_deinterleave, scale * 2.0, gap_for(sw(app.k_deinterleave)),
         0.15},
        {app.k_crc, scale * 1.5, gap_for(sw(app.k_crc)), 0.15},
    };

    const std::vector<std::vector<KernelWork>> works = {
        filter_work, demod_work, decode_work};
    const FunctionalBlockId fbs[3] = {app.fb_filter, app.fb_demod,
                                      app.fb_decode};
    for (unsigned i = 0; i < 3; ++i) {
      FunctionalBlockInstance inst = make_block_instance(
          fbs[i], params.batches, works[i], /*entry_gap=*/300,
          /*tail_gap=*/300, rng);
      if (b == 0) {
        stamp_programmed_trigger(inst, app.library);
        programmed[i] = inst.programmed;
      } else {
        inst.programmed = programmed[i];
      }
      app.trace.blocks.push_back(std::move(inst));
    }
  }
  return app;
}

}  // namespace mrts
