#pragma once
/// \file deblocking_case_study.h
/// The Section 2 motivational case study: the H.264 Deblocking Filter with
/// exactly the three ISEs the paper discusses —
///
///   ISE-1: condition + filter data paths on the FG fabric (2 PRCs,
///          ~2 x 1.2 ms reconfiguration, fastest execution),
///   ISE-2: both data paths on the CG fabric (2 CG fabrics, ~0.3 us
///          reconfiguration, slowest accelerated execution),
///   ISE-3: condition on FG, filter on CG (multi-grained compromise).
///
/// Fig. 1 plots the performance improvement factor (Eq. 1) of the three over
/// the number of kernel executions; each dominates one region (CG for few
/// executions, MG in the middle, FG once its reconfiguration amortizes).

#include "isa/ise_library.h"
#include "util/types.h"

namespace mrts {

struct DeblockingCaseStudy {
  IseLibrary library;
  KernelId kernel;
  IseId ise1;  ///< FG-only
  IseId ise2;  ///< CG-only
  IseId ise3;  ///< multi-grained
};

DeblockingCaseStudy build_deblocking_case_study();

/// pif (Eq. 1) of one case-study ISE at the given execution count, using its
/// fully-configured latency and its worst-case reconfiguration time.
double case_study_pif(const DeblockingCaseStudy& cs, IseId ise,
                      double executions);

/// Execution-count crossover between two ISEs: smallest n >= 1 where `a`'s
/// pif is at least `b`'s (kNeverCycles-like large value if never).
double pif_crossover(const DeblockingCaseStudy& cs, IseId a, IseId b,
                     double max_executions = 1e7);

}  // namespace mrts
