#include "workload/deblocking_case_study.h"

#include "rts/profit.h"

namespace mrts {

DeblockingCaseStudy build_deblocking_case_study() {
  DeblockingCaseStudy cs;
  constexpr Cycles kSwLatency = 1000;
  cs.kernel = cs.library.add_kernel("DBF", kSwLatency);

  auto& table = cs.library.data_paths();
  DataPathDesc cond_fg;
  cond_fg.name = "dbf_cond_fg";
  cond_fg.grain = Grain::kFine;
  const DataPathId cond_fg_id = table.add(cond_fg);

  DataPathDesc filt_fg;
  filt_fg.name = "dbf_filter_fg";
  filt_fg.grain = Grain::kFine;
  const DataPathId filt_fg_id = table.add(filt_fg);

  DataPathDesc cond_cg;
  cond_cg.name = "dbf_cond_cg";
  cond_cg.grain = Grain::kCoarse;
  const DataPathId cond_cg_id = table.add(cond_cg);

  DataPathDesc filt_cg;
  filt_cg.name = "dbf_filter_cg";
  filt_cg.grain = Grain::kCoarse;
  const DataPathId filt_cg_id = table.add(filt_cg);

  // ISE-1: both data paths on the FG fabric. Bit-level condition logic and
  // the filter pipeline both run at full custom-logic speed.
  {
    IseVariant v;
    v.kernel = cs.kernel;
    v.name = "DBF.ISE-1";
    v.data_paths = {cond_fg_id, filt_fg_id};
    v.latency_after = {kSwLatency, 420, 100};
    cs.ise1 = cs.library.add_ise(std::move(v));
  }
  // ISE-2: both data paths on the CG fabric. Reconfigures in microseconds
  // but the bit-level condition part maps poorly to word-level ALUs.
  {
    IseVariant v;
    v.kernel = cs.kernel;
    v.name = "DBF.ISE-2";
    v.data_paths = {cond_cg_id, filt_cg_id};
    v.latency_after = {kSwLatency, 640, 360};
    cs.ise2 = cs.library.add_ise(std::move(v));
  }
  // ISE-3: condition on FG, filter on CG — the multi-grained compromise.
  // The CG filter data path arrives almost instantly (listed first).
  {
    IseVariant v;
    v.kernel = cs.kernel;
    v.name = "DBF.ISE-3";
    v.data_paths = {filt_cg_id, cond_fg_id};
    v.latency_after = {kSwLatency, 560, 170};
    cs.ise3 = cs.library.add_ise(std::move(v));
  }
  return cs;
}

double case_study_pif(const DeblockingCaseStudy& cs, IseId ise,
                      double executions) {
  const IseVariant& v = cs.library.ise(ise);
  const Cycles reconfig = v.worst_case_reconfig_cycles(cs.library.data_paths());
  return performance_improvement_factor(v.risc_latency(), v.full_latency(),
                                        reconfig, executions);
}

double pif_crossover(const DeblockingCaseStudy& cs, IseId a, IseId b,
                     double max_executions) {
  for (double n = 1.0; n <= max_executions; n *= 1.01) {
    if (case_study_pif(cs, a, n) >= case_study_pif(cs, b, n)) return n;
  }
  return max_executions;
}

}  // namespace mrts
