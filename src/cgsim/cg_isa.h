#pragma once
/// \file cg_isa.h
/// Instruction set of the coarse-grained fabric element (Section 5.1):
/// 80-bit instructions, up to 32 of them in the context memory, two 32x32
/// register files, single-cycle ALU ops, 2-cycle multiply, 10-cycle divide
/// and a zero-overhead loop instruction. Instructions encode to exactly
/// 10 bytes (80 bits); a context program is what the reconfiguration
/// controller streams into a CG fabric.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/cg_fabric.h"
#include "util/types.h"

namespace mrts::cgsim {

/// 64 architectural registers: r0..r31 map to register file A, r32..r63 to
/// register file B (two 32x32-bit files per CG fabric).
inline constexpr unsigned kNumCgRegisters = 64;

enum class CgOp : std::uint8_t {
  kNop,
  kHalt,
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kMul,   // 2 cycles
  kDiv,   // 10 cycles
  kMac,   // rd += rs1 * rs2 (2 cycles, multiplier path)
  kMin,
  kMax,
  kAbs,   // rd = |rs1|
  kAddi,
  kShli,
  kShri,
  kMovi,
  kLd,    // rd = mem32[rs1 + imm]
  kSt,    // mem32[rs1 + imm] = rs2
  kLoop,  // zero-overhead loop: repeat the next `aux` instructions imm times
};

/// One decoded 80-bit CG instruction.
struct CgInstr {
  CgOp op = CgOp::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
  std::uint16_t aux = 0;  ///< loop body length for kLoop

  /// Encodes to the 80-bit (10-byte) instruction word.
  std::array<std::uint8_t, 10> encode() const;
  static CgInstr decode(const std::array<std::uint8_t, 10>& word);

  friend bool operator==(const CgInstr&, const CgInstr&) = default;
};

/// A context program: at most kCgContextMemoryInstructions instructions.
struct CgContextProgram {
  std::string name;
  std::vector<CgInstr> code;

  /// Size in bytes when streamed into the context memory.
  std::size_t stream_bytes() const { return code.size() * 10; }

  /// Throws std::invalid_argument if the program exceeds the context memory
  /// or contains malformed loops.
  void validate() const;
};

Cycles cg_base_cycles(CgOp op, const CgFabricParams& params);

const char* cg_mnemonic(CgOp op);
CgOp cg_op_from_mnemonic(const std::string& text);

}  // namespace mrts::cgsim
