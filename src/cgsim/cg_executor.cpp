#include "cgsim/cg_executor.h"

#include <stdexcept>
#include <vector>

#include "util/fastpath.h"

namespace mrts::cgsim {
namespace {

std::int32_t s(std::uint32_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t u(std::int32_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

CgExecutor::CgExecutor(CgFabricParams params, ScratchpadParams mem_params)
    : params_(params), mem_(mem_params) {}

std::uint32_t CgExecutor::reg(unsigned index) const {
  if (index >= kNumCgRegisters) throw std::out_of_range("CgExecutor::reg");
  return regs_[index];
}

void CgExecutor::set_reg(unsigned index, std::uint32_t value) {
  if (index >= kNumCgRegisters) throw std::out_of_range("CgExecutor::set_reg");
  regs_[index] = value;
}

void CgExecutor::reset_registers() {
  for (auto& r : regs_) r = 0;
}

CgRunResult CgExecutor::run(const CgContextProgram& program,
                            std::uint64_t max_steps) {
  if (mrts::fastpath_enabled()) return run_cached(program, max_steps);
  return run_interpreted(program, max_steps);
}

CgRunResult CgExecutor::run_cached(const CgContextProgram& program,
                                   std::uint64_t max_steps) {
  if (cache_key_ != program.code) {
    program.validate();
    cache_ops_.clear();
    cache_ops_.reserve(program.code.size());
    for (const CgInstr& in : program.code) {
      CachedCgOp c;
      c.op = in.op;
      c.rd = in.rd;
      c.rs1 = in.rs1;
      c.rs2 = in.rs2;
      c.imm = in.imm;
      c.aux = in.aux;
      c.cost = cg_base_cycles(in.op, params_);
      cache_ops_.push_back(c);
    }
    cache_key_ = program.code;
  }

  CgRunResult result;

  struct LoopFrame {
    std::size_t body_start;
    std::size_t body_end;  // one past the last body instruction
    std::int32_t remaining;
  };
  LoopFrame loops[2];  // hardware loop stack is 2 deep
  std::size_t depth = 0;

  const CachedCgOp* code = cache_ops_.data();
  const std::size_t size = cache_ops_.size();
  std::size_t pc = 0;
  while (result.instructions < max_steps) {
    if (pc >= size) {
      result.halted = true;  // implicit halt: fixed-length context
      return result;
    }
    const CachedCgOp& in = code[pc];
    ++result.instructions;
    result.cycles += in.cost;

    std::size_t next_pc = pc + 1;
    switch (in.op) {
      case CgOp::kNop: break;
      case CgOp::kHalt:
        result.halted = true;
        return result;
      case CgOp::kAdd: regs_[in.rd] = regs_[in.rs1] + regs_[in.rs2]; break;
      case CgOp::kSub: regs_[in.rd] = regs_[in.rs1] - regs_[in.rs2]; break;
      case CgOp::kAnd: regs_[in.rd] = regs_[in.rs1] & regs_[in.rs2]; break;
      case CgOp::kOr: regs_[in.rd] = regs_[in.rs1] | regs_[in.rs2]; break;
      case CgOp::kXor: regs_[in.rd] = regs_[in.rs1] ^ regs_[in.rs2]; break;
      case CgOp::kShl:
        regs_[in.rd] = regs_[in.rs1] << (regs_[in.rs2] & 31);
        break;
      case CgOp::kShr:
        regs_[in.rd] = regs_[in.rs1] >> (regs_[in.rs2] & 31);
        break;
      case CgOp::kMul: regs_[in.rd] = regs_[in.rs1] * regs_[in.rs2]; break;
      case CgOp::kDiv:
        if (regs_[in.rs2] == 0) {
          throw std::runtime_error("cgsim: division by zero");
        }
        regs_[in.rd] = u(s(regs_[in.rs1]) / s(regs_[in.rs2]));
        break;
      case CgOp::kMac: regs_[in.rd] += regs_[in.rs1] * regs_[in.rs2]; break;
      case CgOp::kMin:
        regs_[in.rd] =
            s(regs_[in.rs1]) < s(regs_[in.rs2]) ? regs_[in.rs1] : regs_[in.rs2];
        break;
      case CgOp::kMax:
        regs_[in.rd] =
            s(regs_[in.rs1]) > s(regs_[in.rs2]) ? regs_[in.rs1] : regs_[in.rs2];
        break;
      case CgOp::kAbs:
        regs_[in.rd] =
            s(regs_[in.rs1]) < 0 ? u(-s(regs_[in.rs1])) : regs_[in.rs1];
        break;
      case CgOp::kAddi: regs_[in.rd] = regs_[in.rs1] + u(in.imm); break;
      case CgOp::kShli: regs_[in.rd] = regs_[in.rs1] << (in.imm & 31); break;
      case CgOp::kShri: regs_[in.rd] = regs_[in.rs1] >> (in.imm & 31); break;
      case CgOp::kMovi: regs_[in.rd] = u(in.imm); break;
      case CgOp::kLd:
        regs_[in.rd] = mem_.read32(regs_[in.rs1] + u(in.imm));
        break;
      case CgOp::kSt:
        mem_.write32(regs_[in.rs1] + u(in.imm), regs_[in.rs2]);
        break;
      case CgOp::kLoop:
        if (depth >= 2) {
          throw std::runtime_error("cgsim: hardware loop stack is 2 deep");
        }
        if (in.imm == 0) {
          next_pc = pc + 1 + in.aux;  // zero-trip loop: skip the body
        } else {
          loops[depth++] = {pc + 1, pc + 1 + in.aux, in.imm};
        }
        break;
    }

    // Zero-overhead loop back-edge (see run_interpreted).
    while (depth > 0 && next_pc == loops[depth - 1].body_end) {
      LoopFrame& frame = loops[depth - 1];
      if (--frame.remaining > 0) {
        next_pc = frame.body_start;
        break;
      }
      --depth;
    }
    pc = next_pc;
  }
  return result;
}

CgRunResult CgExecutor::run_interpreted(const CgContextProgram& program,
                                        std::uint64_t max_steps) {
  program.validate();
  CgRunResult result;

  struct LoopFrame {
    std::size_t body_start;
    std::size_t body_end;  // one past the last body instruction
    std::int32_t remaining;
  };
  std::vector<LoopFrame> loops;

  std::size_t pc = 0;
  while (result.instructions < max_steps) {
    if (pc >= program.code.size()) {
      // Falling off the end of the context terminates the kernel (implicit
      // halt: the context has a fixed length).
      result.halted = true;
      return result;
    }
    const CgInstr& in = program.code[pc];
    ++result.instructions;
    result.cycles += cg_base_cycles(in.op, params_);

    std::size_t next_pc = pc + 1;
    switch (in.op) {
      case CgOp::kNop: break;
      case CgOp::kHalt:
        result.halted = true;
        return result;
      case CgOp::kAdd: regs_[in.rd] = regs_[in.rs1] + regs_[in.rs2]; break;
      case CgOp::kSub: regs_[in.rd] = regs_[in.rs1] - regs_[in.rs2]; break;
      case CgOp::kAnd: regs_[in.rd] = regs_[in.rs1] & regs_[in.rs2]; break;
      case CgOp::kOr: regs_[in.rd] = regs_[in.rs1] | regs_[in.rs2]; break;
      case CgOp::kXor: regs_[in.rd] = regs_[in.rs1] ^ regs_[in.rs2]; break;
      case CgOp::kShl: regs_[in.rd] = regs_[in.rs1] << (regs_[in.rs2] & 31); break;
      case CgOp::kShr: regs_[in.rd] = regs_[in.rs1] >> (regs_[in.rs2] & 31); break;
      case CgOp::kMul: regs_[in.rd] = regs_[in.rs1] * regs_[in.rs2]; break;
      case CgOp::kDiv:
        if (regs_[in.rs2] == 0) {
          throw std::runtime_error("cgsim: division by zero");
        }
        regs_[in.rd] = u(s(regs_[in.rs1]) / s(regs_[in.rs2]));
        break;
      case CgOp::kMac:
        regs_[in.rd] += regs_[in.rs1] * regs_[in.rs2];
        break;
      case CgOp::kMin:
        regs_[in.rd] =
            s(regs_[in.rs1]) < s(regs_[in.rs2]) ? regs_[in.rs1] : regs_[in.rs2];
        break;
      case CgOp::kMax:
        regs_[in.rd] =
            s(regs_[in.rs1]) > s(regs_[in.rs2]) ? regs_[in.rs1] : regs_[in.rs2];
        break;
      case CgOp::kAbs:
        regs_[in.rd] =
            s(regs_[in.rs1]) < 0 ? u(-s(regs_[in.rs1])) : regs_[in.rs1];
        break;
      case CgOp::kAddi: regs_[in.rd] = regs_[in.rs1] + u(in.imm); break;
      case CgOp::kShli: regs_[in.rd] = regs_[in.rs1] << (in.imm & 31); break;
      case CgOp::kShri: regs_[in.rd] = regs_[in.rs1] >> (in.imm & 31); break;
      case CgOp::kMovi: regs_[in.rd] = u(in.imm); break;
      case CgOp::kLd:
        regs_[in.rd] = mem_.read32(regs_[in.rs1] + u(in.imm));
        break;
      case CgOp::kSt:
        mem_.write32(regs_[in.rs1] + u(in.imm), regs_[in.rs2]);
        break;
      case CgOp::kLoop:
        if (loops.size() >= 2) {
          throw std::runtime_error("cgsim: hardware loop stack is 2 deep");
        }
        if (in.imm == 0) {
          next_pc = pc + 1 + in.aux;  // zero-trip loop: skip the body
        } else {
          loops.push_back({pc + 1, pc + 1 + in.aux, in.imm});
        }
        break;
    }

    // Zero-overhead loop back-edge: reaching the body end re-enters the body
    // without spending a cycle.
    while (!loops.empty() && next_pc == loops.back().body_end) {
      LoopFrame& frame = loops.back();
      if (--frame.remaining > 0) {
        next_pc = frame.body_start;
        break;
      }
      loops.pop_back();
    }
    pc = next_pc;
  }
  return result;
}

}  // namespace mrts::cgsim
