#include "cgsim/cg_kernel_programs.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "cgsim/cg_assembler.h"
#include "util/rng.h"

namespace mrts::cgsim {
namespace {

/// SAD over 16 pixel pairs: words at 0x000 (a) and 0x100 (b), result r10.
const char* kSimdAbsdiff = R"(
    movi r1, 0
    movi r2, 256
    movi r10, 0
    loop 16
      ld   r3, [r1+0]
      ld   r4, [r2+0]
      sub  r3, r3, r4
      abs  r3, r3
      add  r10, r10, r3
      addi r1, r1, 4
      addi r2, r2, 4
    endl
    halt
)";

/// Four 4-point butterflies (one 4x4 transform stage), words at 0x200.
const char* kButterfly4 = R"(
    movi r1, 512
    loop 4
      ld   r2, [r1+0]
      ld   r3, [r1+4]
      ld   r4, [r1+8]
      ld   r5, [r1+12]
      add  r6, r2, r5
      add  r7, r3, r4
      sub  r8, r2, r5
      sub  r9, r3, r4
      add  r10, r6, r7
      sub  r11, r6, r7
      shli r12, r8, 1
      add  r12, r12, r9
      shli r13, r9, 1
      sub  r13, r8, r13
      st   [r1+0], r10
      st   [r1+4], r12
      st   [r1+8], r11
      st   [r1+12], r13
      addi r1, r1, 16
    endl
    halt
)";

/// Deblocking filter taps on 8 edges: 4 words per edge at 0x400
/// (p1 p0 q0 q1), filtered p0/q0 written back.
const char* kFilterMac = R"(
    movi r1, 1024
    movi r12, 4         ; clip bound
    movi r13, -4
    loop 8
      ld   r4, [r1+0]   ; p1
      ld   r5, [r1+4]   ; p0
      ld   r6, [r1+8]   ; q0
      ld   r7, [r1+12]  ; q1
      add  r8, r4, r5
      add  r8, r8, r6
      addi r8, r8, 2
      shri r8, r8, 2
      sub  r9, r8, r5
      min  r9, r9, r12
      max  r9, r9, r13
      add  r5, r5, r9
      st   [r1+4], r5
      add  r8, r7, r6
      add  r8, r8, r5
      addi r8, r8, 2
      shri r8, r8, 2
      sub  r9, r8, r6
      min  r9, r9, r12
      max  r9, r9, r13
      add  r6, r6, r9
      st   [r1+8], r6
      addi r1, r1, 16
    endl
    halt
)";

/// 6-tap interpolation via multiply-accumulate over 8 outputs; inputs are
/// words at 0x000, outputs at 0x300. The MAC path and zero-overhead loop are
/// exactly what the CG fabric is built for.
const char* kSixtapMac = R"(
    movi r1, 0          ; input words
    movi r2, 768        ; output
    movi r20, 1
    movi r21, -5
    movi r22, 20
    loop 8
      movi r10, 16      ; rounding bias
      ld   r3, [r1+0]
      mac  r10, r3, r20
      ld   r3, [r1+4]
      mac  r10, r3, r21
      ld   r3, [r1+8]
      mac  r10, r3, r22
      ld   r3, [r1+12]
      mac  r10, r3, r22
      ld   r3, [r1+16]
      mac  r10, r3, r21
      ld   r3, [r1+20]
      mac  r10, r3, r20
      shri r10, r10, 5
      st   [r2+0], r10
      addi r1, r1, 4
      addi r2, r2, 4
    endl
    halt
)";

/// Viterbi-style add-compare-select over 8 trellis states: metrics at 0x400,
/// branch metrics in registers, survivors written back.
const char* kAcsMin = R"(
    movi r1, 1024       ; path metrics (words)
    movi r20, 3         ; branch metric 0
    movi r21, 7         ; branch metric 1
    loop 8
      ld   r2, [r1+0]
      ld   r3, [r1+4]
      add  r2, r2, r20
      add  r3, r3, r21
      min  r4, r2, r3
      st   [r1+0], r4
      addi r1, r1, 4
    endl
    halt
)";

/// Quantization multiply-shift over 16 coefficients at 0x600.
const char* kQuantMulshift = R"(
    movi r1, 1536
    movi r4, 20
    loop 16
      ld   r2, [r1+0]
      abs  r3, r2
      mul  r3, r3, r4
      shri r3, r3, 14
      st   [r1+0], r3
      addi r1, r1, 4
    endl
    halt
)";

const std::map<std::string, const char*>& sources() {
  static const std::map<std::string, const char*> map = {
      {"simd_absdiff", kSimdAbsdiff},
      {"butterfly4", kButterfly4},
      {"filter_mac", kFilterMac},
      {"quant_mulshift", kQuantMulshift},
      {"sixtap_mac", kSixtapMac},
      {"acs_min", kAcsMin},
  };
  return map;
}

}  // namespace

std::vector<std::string> cg_kernel_program_names() {
  std::vector<std::string> names;
  names.reserve(sources().size());
  for (const auto& [name, src] : sources()) names.push_back(name);
  return names;
}

const CgContextProgram& cg_kernel_program(const std::string& name) {
  // Guarded: sweep workers may assemble concurrently. References stay valid
  // because std::map never relocates its nodes.
  static std::mutex mutex;
  static std::map<std::string, CgContextProgram> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(name);
  if (it == cache.end()) {
    const auto src = sources().find(name);
    if (src == sources().end()) {
      throw std::invalid_argument("cgsim: unknown kernel program " + name);
    }
    it = cache.emplace(name, cg_assemble(name, src->second)).first;
  }
  return it->second;
}

CgRunResult measure_cg_kernel(const std::string& name, std::uint64_t seed) {
  CgExecutor exec;
  Rng rng(seed);
  for (std::size_t i = 0; i < 512; ++i) {
    exec.memory().write32(
        4 * i, static_cast<std::uint32_t>(rng.uniform_int(0, 255)));
  }
  return exec.run(cg_kernel_program(name));
}

}  // namespace mrts::cgsim
