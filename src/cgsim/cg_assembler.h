#pragma once
/// \file cg_assembler.h
/// Text assembler for CG context programs. Syntax mirrors the riscsim
/// assembler except control flow: the only loop construct is the
/// zero-overhead `loop <count>` ... `endl` pair (nesting allowed as far as
/// the hardware loop stack goes, i.e. two levels):
///
///     movi r1, 0
///     loop 16
///       ld   r2, [r1+0]
///       mac  r10, r2, r2
///       addi r1, r1, 4
///     endl
///     halt

#include <string>

#include "cgsim/cg_isa.h"

namespace mrts::cgsim {

/// Assembles a context program; throws std::invalid_argument with line
/// information on syntax errors, unbalanced loops, or context-memory
/// overflow.
CgContextProgram cg_assemble(const std::string& name,
                             const std::string& source);

/// Renders a context program back to assembler text that cg_assemble()
/// accepts (loop bodies re-expanded to loop/endl pairs).
std::string cg_disassemble(const CgContextProgram& program);

}  // namespace mrts::cgsim
