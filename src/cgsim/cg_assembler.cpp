#include "cgsim/cg_assembler.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mrts::cgsim {
namespace {

[[noreturn]] void fail(unsigned line, const std::string& message) {
  throw std::invalid_argument("cgsim asm, line " + std::to_string(line) +
                              ": " + message);
}

std::string strip(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_operands(const std::string& text,
                                        unsigned line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      out.push_back(strip(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string last = strip(current);
  if (!last.empty()) out.push_back(last);
  for (const auto& tok : out) {
    if (tok.empty()) fail(line, "empty operand");
  }
  return out;
}

std::uint8_t parse_register(const std::string& tok, unsigned line) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) {
    fail(line, "expected register, got '" + tok + "'");
  }
  int value = 0;
  try {
    value = std::stoi(tok.substr(1));
  } catch (const std::exception&) {
    fail(line, "bad register '" + tok + "'");
  }
  if (value < 0 || value >= static_cast<int>(kNumCgRegisters)) {
    fail(line, "register out of range '" + tok + "'");
  }
  return static_cast<std::uint8_t>(value);
}

std::int32_t parse_imm(const std::string& tok, unsigned line) {
  try {
    return static_cast<std::int32_t>(std::stol(tok, nullptr, 0));
  } catch (const std::exception&) {
    fail(line, "bad immediate '" + tok + "'");
  }
}

std::pair<std::uint8_t, std::int32_t> parse_mem(const std::string& tok,
                                                unsigned line) {
  if (tok.size() < 4 || tok.front() != '[' || tok.back() != ']') {
    fail(line, "expected memory operand [rN+off], got '" + tok + "'");
  }
  const std::string inner = strip(tok.substr(1, tok.size() - 2));
  const std::size_t sep = inner.find_first_of("+-");
  if (sep == std::string::npos) return {parse_register(inner, line), 0};
  const std::string base = strip(inner.substr(0, sep));
  std::string off = strip(inner.substr(sep));
  if (off.size() > 1 && off[0] == '+') off = off.substr(1);
  return {parse_register(base, line), parse_imm(off, line)};
}

}  // namespace

CgContextProgram cg_assemble(const std::string& name,
                             const std::string& source) {
  CgContextProgram program;
  program.name = name;
  std::vector<std::pair<std::size_t, unsigned>> loop_stack;  // index, line

  std::istringstream stream(source);
  std::string raw_line;
  unsigned line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const std::size_t comment = raw_line.find_first_of(";#");
    const std::string text =
        strip(comment == std::string::npos ? raw_line
                                           : raw_line.substr(0, comment));
    if (text.empty()) continue;

    const std::size_t space = text.find_first_of(" \t");
    const std::string mnem =
        space == std::string::npos ? text : text.substr(0, space);
    const std::string rest =
        space == std::string::npos ? "" : strip(text.substr(space));

    if (mnem == "endl") {
      if (!rest.empty()) fail(line_no, "endl takes no operands");
      if (loop_stack.empty()) fail(line_no, "endl without loop");
      const auto [loop_index, loop_line] = loop_stack.back();
      loop_stack.pop_back();
      const std::size_t body =
          program.code.size() - loop_index - 1;
      if (body == 0) fail(line_no, "empty loop body");
      program.code[loop_index].aux = static_cast<std::uint16_t>(body);
      continue;
    }

    const CgOp op = cg_op_from_mnemonic(mnem);
    const std::vector<std::string> ops = split_operands(rest, line_no);
    CgInstr instr;
    instr.op = op;
    auto expect = [&](std::size_t n) {
      if (ops.size() != n) {
        fail(line_no, "expected " + std::to_string(n) + " operands for '" +
                          mnem + "', got " + std::to_string(ops.size()));
      }
    };

    switch (op) {
      case CgOp::kNop:
      case CgOp::kHalt:
        expect(0);
        break;
      case CgOp::kLoop:
        expect(1);
        instr.imm = parse_imm(ops[0], line_no);
        if (instr.imm < 0) fail(line_no, "negative loop count");
        loop_stack.emplace_back(program.code.size(), line_no);
        break;
      case CgOp::kAbs:
        expect(2);
        instr.rd = parse_register(ops[0], line_no);
        instr.rs1 = parse_register(ops[1], line_no);
        break;
      case CgOp::kMovi:
        expect(2);
        instr.rd = parse_register(ops[0], line_no);
        instr.imm = parse_imm(ops[1], line_no);
        break;
      case CgOp::kAddi:
      case CgOp::kShli:
      case CgOp::kShri:
        expect(3);
        instr.rd = parse_register(ops[0], line_no);
        instr.rs1 = parse_register(ops[1], line_no);
        instr.imm = parse_imm(ops[2], line_no);
        break;
      case CgOp::kLd: {
        expect(2);
        instr.rd = parse_register(ops[0], line_no);
        const auto [base, off] = parse_mem(ops[1], line_no);
        instr.rs1 = base;
        instr.imm = off;
        break;
      }
      case CgOp::kSt: {
        expect(2);
        const auto [base, off] = parse_mem(ops[0], line_no);
        instr.rs1 = base;
        instr.imm = off;
        instr.rs2 = parse_register(ops[1], line_no);
        break;
      }
      default:  // three-register ALU/MAC forms
        expect(3);
        instr.rd = parse_register(ops[0], line_no);
        instr.rs1 = parse_register(ops[1], line_no);
        instr.rs2 = parse_register(ops[2], line_no);
        break;
    }
    program.code.push_back(instr);
  }

  if (!loop_stack.empty()) {
    fail(loop_stack.back().second, "loop without endl");
  }
  program.validate();
  return program;
}

std::string cg_disassemble(const CgContextProgram& program) {
  std::ostringstream os;
  // Pending loop-body end positions (instruction index one past the body).
  std::vector<std::size_t> ends;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    while (!ends.empty() && ends.back() == i) {
      ends.pop_back();
      os << "endl\n";
    }
    const CgInstr& in = program.code[i];
    os << cg_mnemonic(in.op);
    switch (in.op) {
      case CgOp::kNop:
      case CgOp::kHalt:
        break;
      case CgOp::kLoop:
        os << ' ' << in.imm;
        ends.push_back(i + 1 + in.aux);
        break;
      case CgOp::kMovi:
        os << " r" << +in.rd << ", " << in.imm;
        break;
      case CgOp::kAbs:
        os << " r" << +in.rd << ", r" << +in.rs1;
        break;
      case CgOp::kAddi:
      case CgOp::kShli:
      case CgOp::kShri:
        os << " r" << +in.rd << ", r" << +in.rs1 << ", " << in.imm;
        break;
      case CgOp::kLd:
        os << " r" << +in.rd << ", [r" << +in.rs1 << "+" << in.imm << "]";
        break;
      case CgOp::kSt:
        os << " [r" << +in.rs1 << "+" << in.imm << "], r" << +in.rs2;
        break;
      default:
        os << " r" << +in.rd << ", r" << +in.rs1 << ", r" << +in.rs2;
        break;
    }
    os << '\n';
  }
  while (!ends.empty()) {
    ends.pop_back();
    os << "endl\n";
  }
  return os.str();
}

}  // namespace mrts::cgsim
