#pragma once
/// \file cg_executor.h
/// Cycle-counting interpreter for CG context programs. Timing follows the
/// Section 5.1 parameters (1-cycle ALU, 2-cycle multiply, 10-cycle divide,
/// zero-overhead loops); memory operations go through the fabric's 32-bit
/// load/store unit into its scratch pad.

#include <cstdint>

#include "arch/cg_fabric.h"
#include "arch/scratchpad.h"
#include "cgsim/cg_isa.h"
#include "util/types.h"

namespace mrts::cgsim {

struct CgRunResult {
  Cycles cycles = 0;
  std::uint64_t instructions = 0;  ///< dynamic count, loop iterations included
  bool halted = false;
};

class CgExecutor {
 public:
  explicit CgExecutor(CgFabricParams params = {},
                      ScratchpadParams mem_params = {});

  const CgFabricParams& params() const { return params_; }
  Scratchpad& memory() { return mem_; }
  const Scratchpad& memory() const { return mem_; }

  std::uint32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::uint32_t value);
  void reset_registers();

  /// Runs \p program until halt/end of context or \p max_steps dynamic
  /// instructions. Throws std::runtime_error on division by zero or a loop
  /// stack deeper than two (hardware limit).
  CgRunResult run(const CgContextProgram& program,
                  std::uint64_t max_steps = 10'000'000);

 private:
  CgFabricParams params_;
  Scratchpad mem_;
  std::uint32_t regs_[kNumCgRegisters] = {};
};

}  // namespace mrts::cgsim
