#pragma once
/// \file cg_executor.h
/// Cycle-counting interpreter for CG context programs. Timing follows the
/// Section 5.1 parameters (1-cycle ALU, 2-cycle multiply, 10-cycle divide,
/// zero-overhead loops); memory operations go through the fabric's 32-bit
/// load/store unit into its scratch pad.

#include <cstdint>

#include "arch/cg_fabric.h"
#include "arch/scratchpad.h"
#include "cgsim/cg_isa.h"
#include "util/types.h"

namespace mrts::cgsim {

struct CgRunResult {
  Cycles cycles = 0;
  std::uint64_t instructions = 0;  ///< dynamic count, loop iterations included
  bool halted = false;
};

class CgExecutor {
 public:
  explicit CgExecutor(CgFabricParams params = {},
                      ScratchpadParams mem_params = {});

  const CgFabricParams& params() const { return params_; }
  Scratchpad& memory() { return mem_; }
  const Scratchpad& memory() const { return mem_; }

  std::uint32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::uint32_t value);
  void reset_registers();

  /// Runs \p program until halt/end of context or \p max_steps dynamic
  /// instructions. Throws std::runtime_error on division by zero or a loop
  /// stack deeper than two (hardware limit).
  ///
  /// The executor keeps a one-entry decoded cache (context programs are at
  /// most 32 instructions): per-instruction cycle costs are resolved once
  /// and re-validated by element-wise comparison of the code vector on the
  /// next run. Results are identical to the plain interpreter, which stays
  /// reachable via util/fastpath.h as the oracle.
  CgRunResult run(const CgContextProgram& program,
                  std::uint64_t max_steps = 10'000'000);

  /// Drops the decoded-program cache (never required for correctness — the
  /// cache re-keys on the full code vector — but keeps A/B tests honest).
  void invalidate_program_cache() {
    cache_key_.clear();
    cache_ops_.clear();
  }

 private:
  /// One decoded instruction with its pre-resolved cycle cost.
  struct CachedCgOp {
    CgOp op = CgOp::kNop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;
    std::uint16_t aux = 0;
    Cycles cost = 0;
  };

  CgRunResult run_interpreted(const CgContextProgram& program,
                              std::uint64_t max_steps);
  CgRunResult run_cached(const CgContextProgram& program,
                         std::uint64_t max_steps);

  CgFabricParams params_;
  Scratchpad mem_;
  std::uint32_t regs_[kNumCgRegisters] = {};
  /// One-entry decoded cache: cache_key_ is a copy of the cached program's
  /// code (CgInstr comparison is element-wise — the struct has padding, so
  /// no memcmp), cache_ops_ the decoded form. Empty key = cold.
  std::vector<CgInstr> cache_key_;
  std::vector<CachedCgOp> cache_ops_;
};

}  // namespace mrts::cgsim
