#pragma once
/// \file cg_kernel_programs.h
/// CG context programs of the data-dominant kernel data paths, written in
/// the cgsim assembly dialect. Each fits the 32-instruction context memory;
/// running them on the CgExecutor grounds the CG-ISE/monoCG latencies of the
/// workload model in the Section 5.1 timing parameters.

#include <string>
#include <vector>

#include "cgsim/cg_executor.h"
#include "cgsim/cg_isa.h"

namespace mrts::cgsim {

/// Names: "simd_absdiff" (SAD inner loop), "butterfly4" (DCT/HT),
/// "filter_mac" (deblocking filter taps), "quant_mulshift".
std::vector<std::string> cg_kernel_program_names();

const CgContextProgram& cg_kernel_program(const std::string& name);

/// Runs \p name on a fresh executor with deterministic pseudo-random inputs.
CgRunResult measure_cg_kernel(const std::string& name, std::uint64_t seed = 11);

}  // namespace mrts::cgsim
