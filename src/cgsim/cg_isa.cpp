#include "cgsim/cg_isa.h"

#include <stdexcept>
#include <unordered_map>

namespace mrts::cgsim {

std::array<std::uint8_t, 10> CgInstr::encode() const {
  std::array<std::uint8_t, 10> w{};
  w[0] = static_cast<std::uint8_t>(op);
  w[1] = rd;
  w[2] = rs1;
  w[3] = rs2;
  const auto u = static_cast<std::uint32_t>(imm);
  w[4] = static_cast<std::uint8_t>(u);
  w[5] = static_cast<std::uint8_t>(u >> 8);
  w[6] = static_cast<std::uint8_t>(u >> 16);
  w[7] = static_cast<std::uint8_t>(u >> 24);
  w[8] = static_cast<std::uint8_t>(aux);
  w[9] = static_cast<std::uint8_t>(aux >> 8);
  return w;
}

CgInstr CgInstr::decode(const std::array<std::uint8_t, 10>& w) {
  CgInstr in;
  if (w[0] > static_cast<std::uint8_t>(CgOp::kLoop)) {
    throw std::invalid_argument("cgsim: bad opcode in instruction word");
  }
  in.op = static_cast<CgOp>(w[0]);
  in.rd = w[1];
  in.rs1 = w[2];
  in.rs2 = w[3];
  in.imm = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(w[4]) | (static_cast<std::uint32_t>(w[5]) << 8) |
      (static_cast<std::uint32_t>(w[6]) << 16) |
      (static_cast<std::uint32_t>(w[7]) << 24));
  in.aux = static_cast<std::uint16_t>(w[8] | (w[9] << 8));
  return in;
}

void CgContextProgram::validate() const {
  if (code.size() > kCgContextMemoryInstructions) {
    throw std::invalid_argument("cgsim: context program '" + name +
                                "' exceeds the 32-instruction context memory");
  }
  for (std::size_t i = 0; i < code.size(); ++i) {
    const CgInstr& in = code[i];
    if (in.rd >= kNumCgRegisters || in.rs1 >= kNumCgRegisters ||
        in.rs2 >= kNumCgRegisters) {
      throw std::invalid_argument("cgsim: register out of range in '" + name +
                                  "'");
    }
    if (in.op == CgOp::kLoop) {
      if (in.aux == 0 || i + 1 + in.aux > code.size()) {
        throw std::invalid_argument("cgsim: loop body out of range in '" +
                                    name + "'");
      }
      if (in.imm < 0) {
        throw std::invalid_argument("cgsim: negative loop count in '" + name +
                                    "'");
      }
    }
  }
}

Cycles cg_base_cycles(CgOp op, const CgFabricParams& params) {
  switch (op) {
    case CgOp::kMul:
    case CgOp::kMac: return params.mul_cycles;
    case CgOp::kDiv: return params.div_cycles;
    case CgOp::kLd:
    case CgOp::kSt: return params.load_store_cycles;
    case CgOp::kLoop: return 1;  // setup only; iterations are free (ZOL)
    default: return params.alu_op_cycles;
  }
}

const char* cg_mnemonic(CgOp op) {
  switch (op) {
    case CgOp::kNop: return "nop";
    case CgOp::kHalt: return "halt";
    case CgOp::kAdd: return "add";
    case CgOp::kSub: return "sub";
    case CgOp::kAnd: return "and";
    case CgOp::kOr: return "or";
    case CgOp::kXor: return "xor";
    case CgOp::kShl: return "shl";
    case CgOp::kShr: return "shr";
    case CgOp::kMul: return "mul";
    case CgOp::kDiv: return "div";
    case CgOp::kMac: return "mac";
    case CgOp::kMin: return "min";
    case CgOp::kMax: return "max";
    case CgOp::kAbs: return "abs";
    case CgOp::kAddi: return "addi";
    case CgOp::kShli: return "shli";
    case CgOp::kShri: return "shri";
    case CgOp::kMovi: return "movi";
    case CgOp::kLd: return "ld";
    case CgOp::kSt: return "st";
    case CgOp::kLoop: return "loop";
  }
  return "?";
}

CgOp cg_op_from_mnemonic(const std::string& text) {
  static const std::unordered_map<std::string, CgOp> table = [] {
    std::unordered_map<std::string, CgOp> t;
    for (int i = 0; i <= static_cast<int>(CgOp::kLoop); ++i) {
      const CgOp op = static_cast<CgOp>(i);
      t.emplace(cg_mnemonic(op), op);
    }
    return t;
  }();
  const auto it = table.find(text);
  if (it == table.end()) {
    throw std::invalid_argument("cgsim: unknown mnemonic '" + text + "'");
  }
  return it->second;
}

}  // namespace mrts::cgsim
