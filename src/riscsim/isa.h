#pragma once
/// \file isa.h
/// Instruction set of the core-processor model: a SPARC-V8-flavoured 32-bit
/// RISC subset (the paper's core is a LEON). The simulator is used to derive
/// RISC-mode kernel latencies from real micro-programs instead of inventing
/// them, and serves as the "cycle-accurate instruction-set simulator"
/// substrate of Section 5.1.

#include <cstdint>
#include <string>

#include "util/types.h"

namespace mrts::riscsim {

inline constexpr unsigned kNumRegisters = 32;

enum class Op : std::uint8_t {
  kNop,
  kHalt,
  // ALU, register-register
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSra,
  kMul,   // 4 cycles (LEON hardware multiplier)
  kDiv,   // 35 cycles (iterative divider)
  kCmpLt, // rd = (rs1 < rs2), signed
  kCmpEq, // rd = (rs1 == rs2)
  kMin,
  kMax,
  kAbs,   // rd = |rs1|
  // ALU, register-immediate
  kAddi,
  kSubi,
  kAndi,
  kOri,
  kSlli,
  kSrli,
  kMovi,  // rd = imm
  // memory (scratch pad)
  kLdw,   // rd = mem32[rs1 + imm]
  kStw,   // mem32[rs1 + imm] = rs2
  kLdb,   // rd = zext(mem8[rs1 + imm])
  kStb,   // mem8[rs1 + imm] = rs2 & 0xff
  // control flow
  kBeq,   // if (rs1 == rs2) pc = target
  kBne,
  kBlt,   // signed
  kBge,
  kJmp,   // pc = target
  // coprocessor / run-time-system interface (Section 4: the application
  // binary embeds trigger instructions and accelerated kernel calls)
  kWait,  // advance time by imm cycles (models non-kernel software)
  kTrig,  // deliver the encoded trigger at mem[imm..imm+target) to the RTS
  kKexec, // execute kernel imm through the ECU; latency comes from the RTS
};

/// One decoded instruction. `target` is an instruction index (filled by the
/// assembler from labels).
struct Instr {
  Op op = Op::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
  std::uint32_t target = 0;
};

/// Base execution cost of \p op in core cycles, excluding memory-port time
/// (added by the CPU from the scratch pad model) and branch penalties.
Cycles base_cycles(Op op);

/// True for instructions that read/write the scratch pad.
bool is_memory_op(Op op);

/// True for conditional/unconditional control transfers.
bool is_branch(Op op);

/// Mnemonic (lower case) of \p op, e.g. "add"; used by the assembler and
/// disassembler.
const char* mnemonic(Op op);

/// Parses a mnemonic; throws std::invalid_argument on unknown text.
Op op_from_mnemonic(const std::string& text);

/// True for the coprocessor-interface instructions (wait/trig/kexec).
bool is_coprocessor_op(Op op);

}  // namespace mrts::riscsim
