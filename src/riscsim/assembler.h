#pragma once
/// \file assembler.h
/// Two-pass text assembler for the core-processor model. Syntax (one
/// instruction per line, ';' or '#' starts a comment):
///
///   label:
///     movi  r1, 16          ; rd, imm
///     add   r2, r3, r4      ; rd, rs1, rs2
///     addi  r2, r2, -1      ; rd, rs1, imm
///     abs   r5, r6          ; rd, rs1
///     ldw   r7, [r8+12]     ; rd, [base+offset]
///     stw   [r8+12], r7     ; [base+offset], rs2
///     beq   r1, r2, label   ; rs1, rs2, label
///     jmp   label
///     halt

#include <string>
#include <vector>

#include "riscsim/isa.h"

namespace mrts::riscsim {

struct Program {
  std::vector<Instr> code;
  /// Source line of each instruction (diagnostics).
  std::vector<unsigned> lines;
  /// Process-unique identity of an *immutable* program (0 = none). The CPU's
  /// decoded basic-block cache (riscsim/cpu.h) keys on it: a nonzero id
  /// promises the code vector never changes afterwards. assemble() and the
  /// ISS bridge stamp it; hand-built programs keep 0 and bypass the cache
  /// (or stamp one via next_program_id() once construction is done).
  std::uint64_t id = 0;
};

/// Returns a fresh process-unique Program::id (atomic counter, starts at 1).
std::uint64_t next_program_id();

/// Assembles \p source; throws std::invalid_argument with line information
/// on any syntax error or unknown label.
Program assemble(const std::string& source);

/// Renders \p program back to text (labels become "L<index>:").
std::string disassemble(const Program& program);

}  // namespace mrts::riscsim
