#pragma once
/// \file cpu.h
/// Cycle-counting interpreter for the core-processor model. Timing follows a
/// simple single-issue in-order pipeline: every instruction pays its base
/// cost, memory operations add the scratch-pad port time, and taken branches
/// pay a one-cycle redirect penalty (LEON-style delay-slot effect folded into
/// the taken path).

#include <array>
#include <cstdint>
#include <vector>

#include "arch/scratchpad.h"
#include "riscsim/assembler.h"
#include "util/types.h"

namespace mrts::riscsim {

/// Number of distinct opcodes (kKexec is the last enumerator).
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Op::kKexec) + 1;

struct RunResult {
  Cycles cycles = 0;
  std::uint64_t instructions = 0;
  bool halted = false;  ///< false when the step limit was hit
  /// Dynamic execution count per opcode (profiling input for the ISE
  /// identification pass).
  std::array<std::uint64_t, kNumOpcodes> op_counts{};

  std::uint64_t count(Op op) const {
    return op_counts[static_cast<std::size_t>(op)];
  }
};

/// Host-side handler for the coprocessor-interface instructions. The `now`
/// argument is the absolute cycle count at which the instruction issues.
class Coprocessor {
 public:
  virtual ~Coprocessor() = default;
  /// `trig`: an encoded trigger instruction (isa/trigger.h binary format)
  /// was delivered; returns the cycles the core is stalled (the blocking
  /// part of the RTS selection).
  virtual Cycles trigger(const std::vector<std::uint8_t>& bytes,
                         Cycles now) = 0;
  /// `kexec`: kernel \p kernel_id executes; returns its latency in cycles.
  virtual Cycles kernel(std::uint32_t kernel_id, Cycles now) = 0;
};

class Cpu {
 public:
  explicit Cpu(ScratchpadParams mem_params = {});

  /// Attaches the handler for wait/trig/kexec instructions. Without one,
  /// `wait` still works (pure delay) but trig/kexec throw std::runtime_error.
  void attach_coprocessor(Coprocessor* coprocessor) {
    coprocessor_ = coprocessor;
  }

  /// Resets registers and the program counter (memory contents are kept so
  /// tests can pre-load inputs).
  void reset_registers();

  Scratchpad& memory() { return mem_; }
  const Scratchpad& memory() const { return mem_; }

  std::uint32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::uint32_t value);

  /// Executes \p program from instruction 0 until halt or \p max_steps.
  /// Throws std::runtime_error on division by zero or pc out of range.
  RunResult run(const Program& program, std::uint64_t max_steps = 10'000'000);

  /// Taken-branch penalty in cycles.
  static constexpr Cycles kBranchPenalty = 1;

 private:
  Scratchpad mem_;
  std::uint32_t regs_[kNumRegisters] = {};
  Coprocessor* coprocessor_ = nullptr;
};

}  // namespace mrts::riscsim
