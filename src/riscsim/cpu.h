#pragma once
/// \file cpu.h
/// Cycle-counting interpreter for the core-processor model. Timing follows a
/// simple single-issue in-order pipeline: every instruction pays its base
/// cost, memory operations add the scratch-pad port time, and taken branches
/// pay a one-cycle redirect penalty (LEON-style delay-slot effect folded into
/// the taken path).

#include <array>
#include <cstdint>
#include <vector>

#include "arch/scratchpad.h"
#include "riscsim/assembler.h"
#include "util/types.h"

namespace mrts::riscsim {

/// Number of distinct opcodes (kKexec is the last enumerator).
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Op::kKexec) + 1;

struct RunResult {
  Cycles cycles = 0;
  std::uint64_t instructions = 0;
  bool halted = false;  ///< false when the step limit was hit
  /// Dynamic execution count per opcode (profiling input for the ISE
  /// identification pass).
  std::array<std::uint64_t, kNumOpcodes> op_counts{};

  std::uint64_t count(Op op) const {
    return op_counts[static_cast<std::size_t>(op)];
  }
};

/// Host-side handler for the coprocessor-interface instructions. The `now`
/// argument is the absolute cycle count at which the instruction issues.
class Coprocessor {
 public:
  virtual ~Coprocessor() = default;
  /// `trig`: an encoded trigger instruction (isa/trigger.h binary format)
  /// was delivered; returns the cycles the core is stalled (the blocking
  /// part of the RTS selection).
  virtual Cycles trigger(const std::vector<std::uint8_t>& bytes,
                         Cycles now) = 0;
  /// `kexec`: kernel \p kernel_id executes; returns its latency in cycles.
  virtual Cycles kernel(std::uint32_t kernel_id, Cycles now) = 0;
};

class Cpu {
 public:
  explicit Cpu(ScratchpadParams mem_params = {});

  /// Attaches the handler for wait/trig/kexec instructions. Without one,
  /// `wait` still works (pure delay) but trig/kexec throw std::runtime_error.
  void attach_coprocessor(Coprocessor* coprocessor) {
    coprocessor_ = coprocessor;
  }

  /// Resets registers and the program counter (memory contents are kept so
  /// tests can pre-load inputs).
  void reset_registers();

  Scratchpad& memory() { return mem_; }
  const Scratchpad& memory() const { return mem_; }

  std::uint32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::uint32_t value);

  /// Executes \p program from instruction 0 until halt or \p max_steps.
  /// Throws std::runtime_error on division by zero or pc out of range.
  ///
  /// Programs with a nonzero id (assembled / ISS-bridge binaries, which are
  /// immutable by contract) run through a decoded basic-block cache:
  /// straight-line regions are decoded once into dense micro-op arrays with
  /// pre-resolved cycle costs and replayed in a tight loop. Cycle counts,
  /// op_counts, architectural state and thrown exceptions are identical to
  /// the plain interpreter (kept as the oracle; util/fastpath.h toggles).
  RunResult run(const Program& program, std::uint64_t max_steps = 10'000'000);

  /// Drops every decoded block. Needed only if code behind an already-run
  /// nonzero Program::id is mutated (which breaks the immutability contract;
  /// prefer re-stamping the program with next_program_id()).
  void invalidate_block_cache() { caches_.clear(); }

  /// Taken-branch penalty in cycles.
  static constexpr Cycles kBranchPenalty = 1;

 private:
  /// One decoded straight-line micro-op: a flat copy of the instruction plus
  /// its fully resolved cycle cost (base + scratch-pad port time for memory
  /// ops + the imm delay of `wait`). trig/kexec stay in-line with cost =
  /// base cycles; their dynamic coprocessor latency is added at replay.
  struct CachedOp {
    Op op = Op::kNop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;
    std::uint32_t target = 0;  ///< trig blob length (unused otherwise)
    Cycles cost = 0;
  };

  /// A decoded region: the straight-line body plus the control-flow
  /// terminator (branch/jmp/halt). has_term == false means the code runs off
  /// the end of the program (replay then raises the same pc-out-of-range
  /// error the interpreter would).
  struct CachedBlock {
    std::vector<CachedOp> body;
    Instr term{};
    Cycles term_cost = 0;
    std::uint32_t term_pc = 0;
    bool has_term = false;
  };

  /// Per-program block cache: blocks are discovered lazily at entry pcs
  /// (block starts = program entry, branch targets, fall-throughs).
  struct ProgramCache {
    std::uint64_t program_id = 0;
    std::vector<std::int32_t> block_by_pc;  ///< -1 = not decoded yet
    std::vector<CachedBlock> blocks;
  };

  RunResult run_interpreted(const Program& program, std::uint64_t max_steps);
  RunResult run_cached(const Program& program, std::uint64_t max_steps);
  ProgramCache& cache_for(const Program& program);
  const CachedBlock& block_at(ProgramCache& cache, const Program& program,
                              std::uint32_t entry) const;

  Scratchpad mem_;
  std::uint32_t regs_[kNumRegisters] = {};
  Coprocessor* coprocessor_ = nullptr;
  std::vector<ProgramCache> caches_;
};

}  // namespace mrts::riscsim
