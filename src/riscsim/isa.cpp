#include "riscsim/isa.h"

#include <stdexcept>
#include <unordered_map>

namespace mrts::riscsim {

Cycles base_cycles(Op op) {
  switch (op) {
    // The coprocessor ops charge their real cost through the hooks (wait
    // duration, RTS blocking, kernel latency); their base cost is zero.
    case Op::kWait:
    case Op::kTrig:
    case Op::kKexec: return 0;
    case Op::kMul: return 4;
    case Op::kDiv: return 35;
    case Op::kLdw:
    case Op::kStw:
    case Op::kLdb:
    case Op::kStb: return 1;  // + memory-port time
    default: return 1;
  }
}

bool is_memory_op(Op op) {
  return op == Op::kLdw || op == Op::kStw || op == Op::kLdb || op == Op::kStb;
}

bool is_branch(Op op) {
  return op == Op::kBeq || op == Op::kBne || op == Op::kBlt ||
         op == Op::kBge || op == Op::kJmp;
}

bool is_coprocessor_op(Op op) {
  return op == Op::kWait || op == Op::kTrig || op == Op::kKexec;
}

const char* mnemonic(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kCmpLt: return "cmplt";
    case Op::kCmpEq: return "cmpeq";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kAbs: return "abs";
    case Op::kAddi: return "addi";
    case Op::kSubi: return "subi";
    case Op::kAndi: return "andi";
    case Op::kOri: return "ori";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kMovi: return "movi";
    case Op::kLdw: return "ldw";
    case Op::kStw: return "stw";
    case Op::kLdb: return "ldb";
    case Op::kStb: return "stb";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kJmp: return "jmp";
    case Op::kWait: return "wait";
    case Op::kTrig: return "trig";
    case Op::kKexec: return "kexec";
  }
  return "?";
}

Op op_from_mnemonic(const std::string& text) {
  static const std::unordered_map<std::string, Op> table = [] {
    std::unordered_map<std::string, Op> t;
    for (int i = 0; i <= static_cast<int>(Op::kKexec); ++i) {
      const Op op = static_cast<Op>(i);
      t.emplace(mnemonic(op), op);
    }
    return t;
  }();
  const auto it = table.find(text);
  if (it == table.end()) {
    throw std::invalid_argument("riscsim: unknown mnemonic '" + text + "'");
  }
  return it->second;
}

}  // namespace mrts::riscsim
