#include "riscsim/assembler.h"

#include <atomic>
#include <cctype>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace mrts::riscsim {

std::uint64_t next_program_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace {

[[noreturn]] void fail(unsigned line, const std::string& message) {
  throw std::invalid_argument("riscsim asm, line " + std::to_string(line) +
                              ": " + message);
}

std::string strip(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

/// Splits "r1, r2, r3" / "[r8+12], r7" into comma-separated operand tokens.
std::vector<std::string> split_operands(const std::string& text,
                                        unsigned line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      out.push_back(strip(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string last = strip(current);
  if (!last.empty()) out.push_back(last);
  for (const auto& tok : out) {
    if (tok.empty()) fail(line, "empty operand");
  }
  return out;
}

std::uint8_t parse_register(const std::string& tok, unsigned line) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) {
    fail(line, "expected register, got '" + tok + "'");
  }
  int value = 0;
  try {
    value = std::stoi(tok.substr(1));
  } catch (const std::exception&) {
    fail(line, "bad register '" + tok + "'");
  }
  if (value < 0 || value >= static_cast<int>(kNumRegisters)) {
    fail(line, "register out of range '" + tok + "'");
  }
  return static_cast<std::uint8_t>(value);
}

std::int32_t parse_imm(const std::string& tok, unsigned line) {
  try {
    return static_cast<std::int32_t>(std::stol(tok, nullptr, 0));
  } catch (const std::exception&) {
    fail(line, "bad immediate '" + tok + "'");
  }
}

/// Parses "[rN+imm]" or "[rN]" into (base register, offset).
std::pair<std::uint8_t, std::int32_t> parse_mem(const std::string& tok,
                                                unsigned line) {
  if (tok.size() < 4 || tok.front() != '[' || tok.back() != ']') {
    fail(line, "expected memory operand [rN+off], got '" + tok + "'");
  }
  const std::string inner = strip(tok.substr(1, tok.size() - 2));
  const std::size_t plus = inner.find_first_of("+-");
  if (plus == std::string::npos) {
    return {parse_register(inner, line), 0};
  }
  const std::string base = strip(inner.substr(0, plus));
  std::string off = strip(inner.substr(plus));
  if (off.size() > 1 && off[0] == '+') off = off.substr(1);
  return {parse_register(base, line), parse_imm(off, line)};
}

}  // namespace

Program assemble(const std::string& source) {
  struct Pending {
    std::size_t instr_index;
    std::string label;
    unsigned line;
  };

  Program program;
  std::unordered_map<std::string, std::uint32_t> labels;
  std::vector<Pending> pending;

  std::istringstream stream(source);
  std::string raw_line;
  unsigned line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    // Strip comments.
    const std::size_t comment = raw_line.find_first_of(";#");
    std::string text =
        strip(comment == std::string::npos ? raw_line
                                           : raw_line.substr(0, comment));
    if (text.empty()) continue;

    // Labels (possibly followed by an instruction on the same line).
    while (true) {
      const std::size_t colon = text.find(':');
      if (colon == std::string::npos) break;
      const std::string label = strip(text.substr(0, colon));
      if (label.empty() || label.find(' ') != std::string::npos) {
        fail(line_no, "bad label '" + label + "'");
      }
      if (labels.count(label)) fail(line_no, "duplicate label '" + label + "'");
      labels[label] = static_cast<std::uint32_t>(program.code.size());
      text = strip(text.substr(colon + 1));
      if (text.empty()) break;
    }
    if (text.empty()) continue;

    // Mnemonic + operands.
    const std::size_t space = text.find_first_of(" \t");
    const std::string mnem =
        space == std::string::npos ? text : text.substr(0, space);
    const std::string rest =
        space == std::string::npos ? "" : strip(text.substr(space));
    Op op;
    try {
      op = op_from_mnemonic(mnem);
    } catch (const std::invalid_argument& e) {
      fail(line_no, e.what());
    }
    const std::vector<std::string> ops = split_operands(rest, line_no);

    Instr instr;
    instr.op = op;
    auto expect = [&](std::size_t n) {
      if (ops.size() != n) {
        fail(line_no, "expected " + std::to_string(n) + " operands for '" +
                          mnem + "', got " + std::to_string(ops.size()));
      }
    };

    switch (op) {
      case Op::kNop:
      case Op::kHalt:
        expect(0);
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kSll:
      case Op::kSrl:
      case Op::kSra:
      case Op::kMul:
      case Op::kDiv:
      case Op::kCmpLt:
      case Op::kCmpEq:
      case Op::kMin:
      case Op::kMax:
        expect(3);
        instr.rd = parse_register(ops[0], line_no);
        instr.rs1 = parse_register(ops[1], line_no);
        instr.rs2 = parse_register(ops[2], line_no);
        break;
      case Op::kAbs:
        expect(2);
        instr.rd = parse_register(ops[0], line_no);
        instr.rs1 = parse_register(ops[1], line_no);
        break;
      case Op::kAddi:
      case Op::kSubi:
      case Op::kAndi:
      case Op::kOri:
      case Op::kSlli:
      case Op::kSrli:
        expect(3);
        instr.rd = parse_register(ops[0], line_no);
        instr.rs1 = parse_register(ops[1], line_no);
        instr.imm = parse_imm(ops[2], line_no);
        break;
      case Op::kMovi:
        expect(2);
        instr.rd = parse_register(ops[0], line_no);
        instr.imm = parse_imm(ops[1], line_no);
        break;
      case Op::kLdw:
      case Op::kLdb: {
        expect(2);
        instr.rd = parse_register(ops[0], line_no);
        const auto [base, off] = parse_mem(ops[1], line_no);
        instr.rs1 = base;
        instr.imm = off;
        break;
      }
      case Op::kStw:
      case Op::kStb: {
        expect(2);
        const auto [base, off] = parse_mem(ops[0], line_no);
        instr.rs1 = base;
        instr.imm = off;
        instr.rs2 = parse_register(ops[1], line_no);
        break;
      }
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
        expect(3);
        instr.rs1 = parse_register(ops[0], line_no);
        instr.rs2 = parse_register(ops[1], line_no);
        pending.push_back({program.code.size(), ops[2], line_no});
        break;
      case Op::kJmp:
        expect(1);
        pending.push_back({program.code.size(), ops[0], line_no});
        break;
      case Op::kWait:
      case Op::kKexec:
        expect(1);
        instr.imm = parse_imm(ops[0], line_no);
        break;
      case Op::kTrig:
        expect(2);
        instr.imm = parse_imm(ops[0], line_no);
        instr.target =
            static_cast<std::uint32_t>(parse_imm(ops[1], line_no));
        break;
    }
    program.code.push_back(instr);
    program.lines.push_back(line_no);
  }

  for (const auto& p : pending) {
    const auto it = labels.find(p.label);
    if (it == labels.end()) fail(p.line, "unknown label '" + p.label + "'");
    program.code[p.instr_index].target = it->second;
  }
  program.id = next_program_id();
  return program;
}

std::string disassemble(const Program& program) {
  std::ostringstream os;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const Instr& in = program.code[i];
    os << "L" << i << ": " << mnemonic(in.op);
    switch (in.op) {
      case Op::kNop:
      case Op::kHalt:
        break;
      case Op::kMovi:
        os << " r" << +in.rd << ", " << in.imm;
        break;
      case Op::kAbs:
        os << " r" << +in.rd << ", r" << +in.rs1;
        break;
      case Op::kLdw:
      case Op::kLdb:
        os << " r" << +in.rd << ", [r" << +in.rs1 << "+" << in.imm << "]";
        break;
      case Op::kStw:
      case Op::kStb:
        os << " [r" << +in.rs1 << "+" << in.imm << "], r" << +in.rs2;
        break;
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
        os << " r" << +in.rs1 << ", r" << +in.rs2 << ", L" << in.target;
        break;
      case Op::kJmp:
        os << " L" << in.target;
        break;
      case Op::kWait:
      case Op::kKexec:
        os << " " << in.imm;
        break;
      case Op::kTrig:
        os << " " << in.imm << ", " << in.target;
        break;
      case Op::kAddi:
      case Op::kSubi:
      case Op::kAndi:
      case Op::kOri:
      case Op::kSlli:
      case Op::kSrli:
        os << " r" << +in.rd << ", r" << +in.rs1 << ", " << in.imm;
        break;
      default:
        os << " r" << +in.rd << ", r" << +in.rs1 << ", r" << +in.rs2;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mrts::riscsim
