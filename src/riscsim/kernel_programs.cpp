#include "riscsim/kernel_programs.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "util/rng.h"

namespace mrts::riscsim {
namespace {

/// 4x4 sum of absolute differences: two blocks at 0x000 and 0x100 (byte
/// samples, stride 16), result in r10.
const char* kSad4x4 = R"(
    movi r1, 0          ; src a
    movi r2, 256        ; src b
    movi r10, 0         ; sad
    movi r5, 0          ; row
    movi r6, 4          ; rows
row:
    movi r7, 0          ; col
    movi r8, 4          ; cols
col:
    ldb  r3, [r1+0]
    ldb  r4, [r2+0]
    sub  r3, r3, r4
    abs  r3, r3
    add  r10, r10, r3
    addi r1, r1, 1
    addi r2, r2, 1
    addi r7, r7, 1
    blt  r7, r8, col
    addi r1, r1, 12     ; stride 16 - 4
    addi r2, r2, 12
    addi r5, r5, 1
    blt  r5, r6, row
    halt
)";

/// One 4-point DCT butterfly row (H.264 integer transform), 4 words at
/// 0x200, coefficients written to 0x240.
const char* kDct4Row = R"(
    movi r1, 512
    ldw  r2, [r1+0]     ; p0
    ldw  r3, [r1+4]     ; p1
    ldw  r4, [r1+8]     ; p2
    ldw  r5, [r1+12]    ; p3
    add  r6, r2, r5     ; s0 = p0+p3
    add  r7, r3, r4     ; s1 = p1+p2
    sub  r8, r2, r5     ; d0 = p0-p3
    sub  r9, r3, r4     ; d1 = p1-p2
    add  r10, r6, r7    ; c0
    sub  r11, r6, r7    ; c2
    movi r12, 1
    sll  r13, r8, r12   ; 2*d0
    add  r13, r13, r9   ; c1 = 2*d0 + d1
    sll  r14, r9, r12
    sub  r14, r8, r14   ; c3 = d0 - 2*d1
    stw  [r1+64], r10
    stw  [r1+68], r13
    stw  [r1+72], r11
    stw  [r1+76], r14
    halt
)";

/// Quantization of 16 coefficients at 0x300 with multiplier/shift.
const char* kQuant16 = R"(
    movi r1, 768        ; coeffs
    movi r2, 0          ; i
    movi r3, 16
    movi r4, 20         ; quant multiplier
    movi r5, 14         ; shift... folded as immediate below
loop:
    ldw  r6, [r1+0]
    abs  r7, r6
    mul  r7, r7, r4
    srli r7, r7, 14
    cmplt r8, r6, r0    ; negative?
    beq  r8, r0, store
    sub  r7, r0, r7     ; restore sign
store:
    stw  [r1+0], r7
    addi r1, r1, 4
    addi r2, r2, 1
    blt  r2, r3, loop
    halt
)";

/// H.264-style edge filter on 4 pixel pairs (p1 p0 | q0 q1) at 0x400 with
/// clipping, conditional on |p0-q0| < alpha.
const char* kDeblockEdge = R"(
    movi r1, 1024       ; pixel base
    movi r2, 0          ; edge index
    movi r3, 4          ; edges
    movi r11, 40        ; alpha
    movi r12, 4         ; beta-ish clip
edge:
    ldb  r4, [r1+0]     ; p1
    ldb  r5, [r1+1]     ; p0
    ldb  r6, [r1+2]     ; q0
    ldb  r7, [r1+3]     ; q1
    sub  r8, r5, r6     ; p0-q0
    abs  r8, r8
    bge  r8, r11, next  ; filter only strong edges
    add  r9, r5, r6     ; p0+q0
    add  r9, r9, r4     ; +p1
    addi r9, r9, 2
    srli r9, r9, 2      ; (p1+p0+q0+2)>>2
    sub  r10, r9, r5    ; delta
    min  r10, r10, r12
    sub  r13, r0, r12
    max  r10, r10, r13  ; clip
    add  r5, r5, r10
    stb  [r1+1], r5
    add  r9, r6, r7
    add  r9, r9, r5
    addi r9, r9, 2
    srli r9, r9, 2
    sub  r10, r9, r6
    min  r10, r10, r12
    max  r10, r10, r13
    add  r6, r6, r10
    stb  [r1+2], r6
next:
    addi r1, r1, 4
    addi r2, r2, 1
    blt  r2, r3, edge
    halt
)";

/// Zig-zag reordering of 16 coefficients via an index table.
const char* kZigzag16 = R"(
    movi r1, 1280       ; src coeffs (words)
    movi r2, 1408       ; index table (bytes)
    movi r3, 1536       ; dst
    movi r4, 0
    movi r5, 16
loop:
    ldb  r6, [r2+0]     ; zig-zag index
    slli r6, r6, 2
    add  r7, r1, r6
    ldw  r8, [r7+0]
    stw  [r3+0], r8
    addi r2, r2, 1
    addi r3, r3, 4
    addi r4, r4, 1
    blt  r4, r5, loop
    halt
)";

/// 6-tap half-pel interpolation (H.264 MC) over 8 output pixels at 0x800:
/// out[i] = clip((in[i-2] - 5 in[i-1] + 20 in[i] + 20 in[i+1] - 5 in[i+2]
///                + in[i+3] + 16) >> 5).
const char* kMcSixtap = R"(
    movi r1, 2048       ; input pixels (bytes), offset +2 for the taps
    movi r2, 2112       ; output
    movi r3, 0          ; i
    movi r4, 8          ; outputs
    movi r14, 20
    movi r15, 5
loop:
    ldb  r5, [r1+0]     ; in[i-2]
    ldb  r6, [r1+1]
    ldb  r7, [r1+2]
    ldb  r8, [r1+3]
    ldb  r9, [r1+4]
    ldb  r10, [r1+5]
    mul  r6, r6, r15
    mul  r7, r7, r14
    mul  r8, r8, r14
    mul  r9, r9, r15
    add  r11, r5, r10
    add  r11, r11, r7
    add  r11, r11, r8
    sub  r11, r11, r6
    sub  r11, r11, r9
    addi r11, r11, 16
    srli r11, r11, 5
    movi r12, 255
    min  r11, r11, r12
    max  r11, r11, r0   ; clip to [0,255]
    stb  [r2+0], r11
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    blt  r3, r4, loop
    halt
)";

/// Intra 4x4 DC prediction: mean of 8 neighbour pixels at 0x900, fill the
/// 4x4 block at 0x940.
const char* kIntraDc = R"(
    movi r1, 2304       ; neighbours (bytes)
    movi r10, 0         ; sum
    movi r2, 0
    movi r3, 8
sum:
    ldb  r4, [r1+0]
    add  r10, r10, r4
    addi r1, r1, 1
    addi r2, r2, 1
    blt  r2, r3, sum
    addi r10, r10, 4
    srli r10, r10, 3    ; dc = (sum + 4) >> 3
    movi r1, 2368       ; block
    movi r2, 0
    movi r3, 16
fill:
    stb  [r1+0], r10
    addi r1, r1, 1
    addi r2, r2, 1
    blt  r2, r3, fill
    halt
)";

/// Exp-Golomb-style bit packing of 8 small values at 0xa00 into a bit buffer
/// register (the CAVLC-flavoured bit-twiddling workload).
const char* kBitpack = R"(
    movi r1, 2560       ; values (words)
    movi r10, 0          ; bit buffer
    movi r11, 0         ; bits used
    movi r2, 0
    movi r3, 8
loop:
    ldw  r4, [r1+0]
    andi r4, r4, 15     ; 4-bit symbols
    ; leading-one position by linear scan (bit-serial control work)
    movi r5, 0          ; length
    or   r6, r4, r0
scan:
    beq  r6, r0, emit
    srli r6, r6, 1
    addi r5, r5, 1
    jmp  scan
emit:
    addi r5, r5, 1      ; length+1 bits
    sll  r10, r10, r5
    or   r10, r10, r4
    add  r11, r11, r5
    addi r1, r1, 4
    addi r2, r2, 1
    blt  r2, r3, loop
    stw  [r1+64], r10
    stw  [r1+68], r11
    halt
)";

/// 4-point Hadamard butterfly (SATD inner step) on words at 0x700.
const char* kHadamard4 = R"(
    movi r1, 1792
    ldw  r2, [r1+0]
    ldw  r3, [r1+4]
    ldw  r4, [r1+8]
    ldw  r5, [r1+12]
    add  r6, r2, r3
    sub  r7, r2, r3
    add  r8, r4, r5
    sub  r9, r4, r5
    add  r10, r6, r8
    sub  r11, r6, r8
    add  r12, r7, r9
    sub  r13, r7, r9
    abs  r10, r10
    abs  r11, r11
    abs  r12, r12
    abs  r13, r13
    add  r10, r10, r11
    add  r12, r12, r13
    add  r10, r10, r12  ; satd partial
    stw  [r1+32], r10
    halt
)";

const std::map<std::string, const char*>& sources() {
  static const std::map<std::string, const char*> map = {
      {"sad_4x4", kSad4x4},       {"dct4_row", kDct4Row},
      {"quant_16", kQuant16},     {"deblock_edge", kDeblockEdge},
      {"zigzag_16", kZigzag16},   {"hadamard_4", kHadamard4},
      {"mc_sixtap", kMcSixtap},   {"intra_dc", kIntraDc},
      {"bitpack", kBitpack},
  };
  return map;
}

}  // namespace

std::vector<std::string> kernel_program_names() {
  std::vector<std::string> names;
  names.reserve(sources().size());
  for (const auto& [name, src] : sources()) names.push_back(name);
  return names;
}

const Program& kernel_program(const std::string& name) {
  // Guarded: sweep workers may assemble concurrently. References stay valid
  // because std::map never relocates its nodes.
  static std::mutex mutex;
  static std::map<std::string, Program> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(name);
  if (it == cache.end()) {
    const auto src = sources().find(name);
    if (src == sources().end()) {
      throw std::invalid_argument("riscsim: unknown kernel program " + name);
    }
    it = cache.emplace(name, assemble(src->second)).first;
  }
  return it->second;
}

RunResult measure_kernel(const std::string& name, std::uint64_t seed) {
  Cpu cpu;
  Rng rng(seed);
  // Deterministic pseudo-random inputs: pixel bytes everywhere, and a valid
  // zig-zag index table at 0x580 (1408).
  for (std::size_t addr = 0; addr < 4096; ++addr) {
    cpu.memory().write8(addr, static_cast<std::uint8_t>(rng.next_below(256)));
  }
  static constexpr std::uint8_t kZigzagOrder[16] = {
      0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15};
  for (std::size_t i = 0; i < 16; ++i) {
    cpu.memory().write8(1408 + i, kZigzagOrder[i]);
  }
  // Word arrays used by transform kernels: small signed residuals.
  for (std::size_t i = 0; i < 64; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.uniform_int(-64, 64));
    cpu.memory().write32(512 + 4 * i, v);
    cpu.memory().write32(768 + 4 * i, v);
    cpu.memory().write32(1280 + 4 * i, v);
    cpu.memory().write32(1792 + 4 * i, v);
  }
  return cpu.run(kernel_program(name));
}

}  // namespace mrts::riscsim
