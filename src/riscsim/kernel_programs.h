#pragma once
/// \file kernel_programs.h
/// H.264 kernel micro-programs for the core-processor model, written in the
/// riscsim assembly dialect. They ground the RISC-mode kernel latencies of
/// the workload model in measured instruction sequences rather than invented
/// constants: examples and tests run them on the Cpu and compare against the
/// latency table of the H.264 application model.

#include <string>
#include <vector>

#include "riscsim/assembler.h"
#include "riscsim/cpu.h"

namespace mrts::riscsim {

/// Names of all available kernel micro-programs:
/// "sad_4x4", "dct4_row", "quant_16", "deblock_edge", "zigzag_16",
/// "hadamard_4".
std::vector<std::string> kernel_program_names();

/// Assembled program by name; throws std::invalid_argument on unknown name.
const Program& kernel_program(const std::string& name);

/// Runs \p name on a fresh Cpu with deterministic pseudo-random input data
/// preloaded into the scratch pad, returning the measured cycle count.
RunResult measure_kernel(const std::string& name, std::uint64_t seed = 7);

}  // namespace mrts::riscsim
