#include "riscsim/cpu.h"

#include <stdexcept>

namespace mrts::riscsim {
namespace {

std::int32_t s(std::uint32_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t u(std::int32_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

Cpu::Cpu(ScratchpadParams mem_params) : mem_(mem_params) {}

void Cpu::reset_registers() {
  for (auto& r : regs_) r = 0;
}

std::uint32_t Cpu::reg(unsigned index) const {
  if (index >= kNumRegisters) throw std::out_of_range("Cpu::reg");
  return regs_[index];
}

void Cpu::set_reg(unsigned index, std::uint32_t value) {
  if (index >= kNumRegisters) throw std::out_of_range("Cpu::set_reg");
  regs_[index] = value;
  regs_[0] = 0;  // r0 is hard-wired to zero, SPARC %g0 style
}

RunResult Cpu::run(const Program& program, std::uint64_t max_steps) {
  RunResult result;
  std::uint32_t pc = 0;
  regs_[0] = 0;

  while (result.instructions < max_steps) {
    if (pc >= program.code.size()) {
      throw std::runtime_error("riscsim: pc out of range");
    }
    const Instr& in = program.code[pc];
    ++result.instructions;
    ++result.op_counts[static_cast<std::size_t>(in.op)];
    result.cycles += base_cycles(in.op);

    std::uint32_t next_pc = pc + 1;
    switch (in.op) {
      case Op::kNop: break;
      case Op::kHalt:
        result.halted = true;
        return result;
      case Op::kAdd: regs_[in.rd] = regs_[in.rs1] + regs_[in.rs2]; break;
      case Op::kSub: regs_[in.rd] = regs_[in.rs1] - regs_[in.rs2]; break;
      case Op::kAnd: regs_[in.rd] = regs_[in.rs1] & regs_[in.rs2]; break;
      case Op::kOr: regs_[in.rd] = regs_[in.rs1] | regs_[in.rs2]; break;
      case Op::kXor: regs_[in.rd] = regs_[in.rs1] ^ regs_[in.rs2]; break;
      case Op::kSll: regs_[in.rd] = regs_[in.rs1] << (regs_[in.rs2] & 31); break;
      case Op::kSrl: regs_[in.rd] = regs_[in.rs1] >> (regs_[in.rs2] & 31); break;
      case Op::kSra:
        regs_[in.rd] = u(s(regs_[in.rs1]) >> (regs_[in.rs2] & 31));
        break;
      case Op::kMul: regs_[in.rd] = regs_[in.rs1] * regs_[in.rs2]; break;
      case Op::kDiv:
        if (regs_[in.rs2] == 0) {
          throw std::runtime_error("riscsim: division by zero");
        }
        regs_[in.rd] = u(s(regs_[in.rs1]) / s(regs_[in.rs2]));
        break;
      case Op::kCmpLt:
        regs_[in.rd] = s(regs_[in.rs1]) < s(regs_[in.rs2]) ? 1 : 0;
        break;
      case Op::kCmpEq:
        regs_[in.rd] = regs_[in.rs1] == regs_[in.rs2] ? 1 : 0;
        break;
      case Op::kMin:
        regs_[in.rd] =
            s(regs_[in.rs1]) < s(regs_[in.rs2]) ? regs_[in.rs1] : regs_[in.rs2];
        break;
      case Op::kMax:
        regs_[in.rd] =
            s(regs_[in.rs1]) > s(regs_[in.rs2]) ? regs_[in.rs1] : regs_[in.rs2];
        break;
      case Op::kAbs:
        regs_[in.rd] = s(regs_[in.rs1]) < 0 ? u(-s(regs_[in.rs1])) : regs_[in.rs1];
        break;
      case Op::kAddi: regs_[in.rd] = regs_[in.rs1] + u(in.imm); break;
      case Op::kSubi: regs_[in.rd] = regs_[in.rs1] - u(in.imm); break;
      case Op::kAndi: regs_[in.rd] = regs_[in.rs1] & u(in.imm); break;
      case Op::kOri: regs_[in.rd] = regs_[in.rs1] | u(in.imm); break;
      case Op::kSlli: regs_[in.rd] = regs_[in.rs1] << (in.imm & 31); break;
      case Op::kSrli: regs_[in.rd] = regs_[in.rs1] >> (in.imm & 31); break;
      case Op::kMovi: regs_[in.rd] = u(in.imm); break;
      case Op::kLdw:
        regs_[in.rd] = mem_.read32(regs_[in.rs1] + u(in.imm));
        result.cycles += mem_.access_cycles(4);
        break;
      case Op::kStw:
        mem_.write32(regs_[in.rs1] + u(in.imm), regs_[in.rs2]);
        result.cycles += mem_.access_cycles(4);
        break;
      case Op::kLdb:
        regs_[in.rd] = mem_.read8(regs_[in.rs1] + u(in.imm));
        result.cycles += mem_.access_cycles(1);
        break;
      case Op::kStb:
        mem_.write8(regs_[in.rs1] + u(in.imm),
                    static_cast<std::uint8_t>(regs_[in.rs2]));
        result.cycles += mem_.access_cycles(1);
        break;
      case Op::kBeq:
        if (regs_[in.rs1] == regs_[in.rs2]) {
          next_pc = in.target;
          result.cycles += kBranchPenalty;
        }
        break;
      case Op::kBne:
        if (regs_[in.rs1] != regs_[in.rs2]) {
          next_pc = in.target;
          result.cycles += kBranchPenalty;
        }
        break;
      case Op::kBlt:
        if (s(regs_[in.rs1]) < s(regs_[in.rs2])) {
          next_pc = in.target;
          result.cycles += kBranchPenalty;
        }
        break;
      case Op::kBge:
        if (s(regs_[in.rs1]) >= s(regs_[in.rs2])) {
          next_pc = in.target;
          result.cycles += kBranchPenalty;
        }
        break;
      case Op::kJmp:
        next_pc = in.target;
        result.cycles += kBranchPenalty;
        break;
      case Op::kWait:
        result.cycles += static_cast<Cycles>(
            static_cast<std::uint32_t>(in.imm));
        break;
      case Op::kTrig: {
        if (coprocessor_ == nullptr) {
          throw std::runtime_error("riscsim: trig without a coprocessor");
        }
        const auto addr = static_cast<std::size_t>(
            static_cast<std::uint32_t>(in.imm));
        std::vector<std::uint8_t> bytes;
        bytes.reserve(in.target);
        for (std::uint32_t b = 0; b < in.target; ++b) {
          bytes.push_back(mem_.read8(addr + b));
        }
        result.cycles += coprocessor_->trigger(bytes, result.cycles);
        break;
      }
      case Op::kKexec:
        if (coprocessor_ == nullptr) {
          throw std::runtime_error("riscsim: kexec without a coprocessor");
        }
        result.cycles += coprocessor_->kernel(
            static_cast<std::uint32_t>(in.imm), result.cycles);
        break;
    }
    regs_[0] = 0;
    pc = next_pc;
  }
  return result;
}

}  // namespace mrts::riscsim
