#include "riscsim/cpu.h"

#include <stdexcept>

#include "util/fastpath.h"

namespace mrts::riscsim {
namespace {

std::int32_t s(std::uint32_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t u(std::int32_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

Cpu::Cpu(ScratchpadParams mem_params) : mem_(mem_params) {}

void Cpu::reset_registers() {
  for (auto& r : regs_) r = 0;
}

std::uint32_t Cpu::reg(unsigned index) const {
  if (index >= kNumRegisters) throw std::out_of_range("Cpu::reg");
  return regs_[index];
}

void Cpu::set_reg(unsigned index, std::uint32_t value) {
  if (index >= kNumRegisters) throw std::out_of_range("Cpu::set_reg");
  regs_[index] = value;
  regs_[0] = 0;  // r0 is hard-wired to zero, SPARC %g0 style
}

RunResult Cpu::run(const Program& program, std::uint64_t max_steps) {
  if (program.id != 0 && fastpath_enabled()) {
    return run_cached(program, max_steps);
  }
  return run_interpreted(program, max_steps);
}

RunResult Cpu::run_interpreted(const Program& program,
                               std::uint64_t max_steps) {
  RunResult result;
  std::uint32_t pc = 0;
  regs_[0] = 0;

  while (result.instructions < max_steps) {
    if (pc >= program.code.size()) {
      throw std::runtime_error("riscsim: pc out of range");
    }
    const Instr& in = program.code[pc];
    ++result.instructions;
    ++result.op_counts[static_cast<std::size_t>(in.op)];
    result.cycles += base_cycles(in.op);

    std::uint32_t next_pc = pc + 1;
    switch (in.op) {
      case Op::kNop: break;
      case Op::kHalt:
        result.halted = true;
        return result;
      case Op::kAdd: regs_[in.rd] = regs_[in.rs1] + regs_[in.rs2]; break;
      case Op::kSub: regs_[in.rd] = regs_[in.rs1] - regs_[in.rs2]; break;
      case Op::kAnd: regs_[in.rd] = regs_[in.rs1] & regs_[in.rs2]; break;
      case Op::kOr: regs_[in.rd] = regs_[in.rs1] | regs_[in.rs2]; break;
      case Op::kXor: regs_[in.rd] = regs_[in.rs1] ^ regs_[in.rs2]; break;
      case Op::kSll: regs_[in.rd] = regs_[in.rs1] << (regs_[in.rs2] & 31); break;
      case Op::kSrl: regs_[in.rd] = regs_[in.rs1] >> (regs_[in.rs2] & 31); break;
      case Op::kSra:
        regs_[in.rd] = u(s(regs_[in.rs1]) >> (regs_[in.rs2] & 31));
        break;
      case Op::kMul: regs_[in.rd] = regs_[in.rs1] * regs_[in.rs2]; break;
      case Op::kDiv:
        if (regs_[in.rs2] == 0) {
          throw std::runtime_error("riscsim: division by zero");
        }
        regs_[in.rd] = u(s(regs_[in.rs1]) / s(regs_[in.rs2]));
        break;
      case Op::kCmpLt:
        regs_[in.rd] = s(regs_[in.rs1]) < s(regs_[in.rs2]) ? 1 : 0;
        break;
      case Op::kCmpEq:
        regs_[in.rd] = regs_[in.rs1] == regs_[in.rs2] ? 1 : 0;
        break;
      case Op::kMin:
        regs_[in.rd] =
            s(regs_[in.rs1]) < s(regs_[in.rs2]) ? regs_[in.rs1] : regs_[in.rs2];
        break;
      case Op::kMax:
        regs_[in.rd] =
            s(regs_[in.rs1]) > s(regs_[in.rs2]) ? regs_[in.rs1] : regs_[in.rs2];
        break;
      case Op::kAbs:
        regs_[in.rd] = s(regs_[in.rs1]) < 0 ? u(-s(regs_[in.rs1])) : regs_[in.rs1];
        break;
      case Op::kAddi: regs_[in.rd] = regs_[in.rs1] + u(in.imm); break;
      case Op::kSubi: regs_[in.rd] = regs_[in.rs1] - u(in.imm); break;
      case Op::kAndi: regs_[in.rd] = regs_[in.rs1] & u(in.imm); break;
      case Op::kOri: regs_[in.rd] = regs_[in.rs1] | u(in.imm); break;
      case Op::kSlli: regs_[in.rd] = regs_[in.rs1] << (in.imm & 31); break;
      case Op::kSrli: regs_[in.rd] = regs_[in.rs1] >> (in.imm & 31); break;
      case Op::kMovi: regs_[in.rd] = u(in.imm); break;
      case Op::kLdw:
        regs_[in.rd] = mem_.read32(regs_[in.rs1] + u(in.imm));
        result.cycles += mem_.access_cycles(4);
        break;
      case Op::kStw:
        mem_.write32(regs_[in.rs1] + u(in.imm), regs_[in.rs2]);
        result.cycles += mem_.access_cycles(4);
        break;
      case Op::kLdb:
        regs_[in.rd] = mem_.read8(regs_[in.rs1] + u(in.imm));
        result.cycles += mem_.access_cycles(1);
        break;
      case Op::kStb:
        mem_.write8(regs_[in.rs1] + u(in.imm),
                    static_cast<std::uint8_t>(regs_[in.rs2]));
        result.cycles += mem_.access_cycles(1);
        break;
      case Op::kBeq:
        if (regs_[in.rs1] == regs_[in.rs2]) {
          next_pc = in.target;
          result.cycles += kBranchPenalty;
        }
        break;
      case Op::kBne:
        if (regs_[in.rs1] != regs_[in.rs2]) {
          next_pc = in.target;
          result.cycles += kBranchPenalty;
        }
        break;
      case Op::kBlt:
        if (s(regs_[in.rs1]) < s(regs_[in.rs2])) {
          next_pc = in.target;
          result.cycles += kBranchPenalty;
        }
        break;
      case Op::kBge:
        if (s(regs_[in.rs1]) >= s(regs_[in.rs2])) {
          next_pc = in.target;
          result.cycles += kBranchPenalty;
        }
        break;
      case Op::kJmp:
        next_pc = in.target;
        result.cycles += kBranchPenalty;
        break;
      case Op::kWait:
        result.cycles += static_cast<Cycles>(
            static_cast<std::uint32_t>(in.imm));
        break;
      case Op::kTrig: {
        if (coprocessor_ == nullptr) {
          throw std::runtime_error("riscsim: trig without a coprocessor");
        }
        const auto addr = static_cast<std::size_t>(
            static_cast<std::uint32_t>(in.imm));
        std::vector<std::uint8_t> bytes;
        bytes.reserve(in.target);
        for (std::uint32_t b = 0; b < in.target; ++b) {
          bytes.push_back(mem_.read8(addr + b));
        }
        result.cycles += coprocessor_->trigger(bytes, result.cycles);
        break;
      }
      case Op::kKexec:
        if (coprocessor_ == nullptr) {
          throw std::runtime_error("riscsim: kexec without a coprocessor");
        }
        result.cycles += coprocessor_->kernel(
            static_cast<std::uint32_t>(in.imm), result.cycles);
        break;
    }
    regs_[0] = 0;
    pc = next_pc;
  }
  return result;
}

Cpu::ProgramCache& Cpu::cache_for(const Program& program) {
  for (auto& cache : caches_) {
    if (cache.program_id == program.id) return cache;
  }
  // Unbounded growth guard: a Cpu normally runs a handful of programs.
  if (caches_.size() >= 64) caches_.clear();
  caches_.emplace_back();
  ProgramCache& cache = caches_.back();
  cache.program_id = program.id;
  cache.block_by_pc.assign(program.code.size(), -1);
  return cache;
}

const Cpu::CachedBlock& Cpu::block_at(ProgramCache& cache,
                                      const Program& program,
                                      std::uint32_t entry) const {
  const std::int32_t known = cache.block_by_pc[entry];
  if (known >= 0) return cache.blocks[static_cast<std::size_t>(known)];

  CachedBlock block;
  std::uint32_t pc = entry;
  while (pc < program.code.size()) {
    const Instr& in = program.code[pc];
    if (is_branch(in.op) || in.op == Op::kHalt) {
      block.term = in;
      block.term_cost = base_cycles(in.op);
      block.term_pc = pc;
      block.has_term = true;
      break;
    }
    CachedOp c;
    c.op = in.op;
    c.rd = in.rd;
    c.rs1 = in.rs1;
    c.rs2 = in.rs2;
    c.imm = in.imm;
    c.target = in.target;
    c.cost = base_cycles(in.op);
    switch (in.op) {
      case Op::kLdw:
      case Op::kStw:
        c.cost += mem_.access_cycles(4);
        break;
      case Op::kLdb:
      case Op::kStb:
        c.cost += mem_.access_cycles(1);
        break;
      case Op::kWait:
        c.cost += static_cast<Cycles>(static_cast<std::uint32_t>(in.imm));
        break;
      default:
        break;
    }
    block.body.push_back(c);
    ++pc;
  }
  cache.block_by_pc[entry] = static_cast<std::int32_t>(cache.blocks.size());
  cache.blocks.push_back(std::move(block));
  return cache.blocks.back();
}

RunResult Cpu::run_cached(const Program& program, std::uint64_t max_steps) {
  RunResult result;
  std::uint32_t pc = 0;
  regs_[0] = 0;
  ProgramCache& cache = cache_for(program);

  while (true) {
    if (result.instructions >= max_steps) return result;
    if (pc >= program.code.size()) {
      throw std::runtime_error("riscsim: pc out of range");
    }
    const CachedBlock& block = block_at(cache, program, pc);

    for (const CachedOp& c : block.body) {
      if (result.instructions >= max_steps) return result;
      ++result.instructions;
      ++result.op_counts[static_cast<std::size_t>(c.op)];
      result.cycles += c.cost;
      switch (c.op) {
        case Op::kNop: break;
        case Op::kAdd: regs_[c.rd] = regs_[c.rs1] + regs_[c.rs2]; break;
        case Op::kSub: regs_[c.rd] = regs_[c.rs1] - regs_[c.rs2]; break;
        case Op::kAnd: regs_[c.rd] = regs_[c.rs1] & regs_[c.rs2]; break;
        case Op::kOr: regs_[c.rd] = regs_[c.rs1] | regs_[c.rs2]; break;
        case Op::kXor: regs_[c.rd] = regs_[c.rs1] ^ regs_[c.rs2]; break;
        case Op::kSll:
          regs_[c.rd] = regs_[c.rs1] << (regs_[c.rs2] & 31);
          break;
        case Op::kSrl:
          regs_[c.rd] = regs_[c.rs1] >> (regs_[c.rs2] & 31);
          break;
        case Op::kSra:
          regs_[c.rd] = u(s(regs_[c.rs1]) >> (regs_[c.rs2] & 31));
          break;
        case Op::kMul: regs_[c.rd] = regs_[c.rs1] * regs_[c.rs2]; break;
        case Op::kDiv:
          if (regs_[c.rs2] == 0) {
            throw std::runtime_error("riscsim: division by zero");
          }
          regs_[c.rd] = u(s(regs_[c.rs1]) / s(regs_[c.rs2]));
          break;
        case Op::kCmpLt:
          regs_[c.rd] = s(regs_[c.rs1]) < s(regs_[c.rs2]) ? 1 : 0;
          break;
        case Op::kCmpEq:
          regs_[c.rd] = regs_[c.rs1] == regs_[c.rs2] ? 1 : 0;
          break;
        case Op::kMin:
          regs_[c.rd] = s(regs_[c.rs1]) < s(regs_[c.rs2]) ? regs_[c.rs1]
                                                          : regs_[c.rs2];
          break;
        case Op::kMax:
          regs_[c.rd] = s(regs_[c.rs1]) > s(regs_[c.rs2]) ? regs_[c.rs1]
                                                          : regs_[c.rs2];
          break;
        case Op::kAbs:
          regs_[c.rd] =
              s(regs_[c.rs1]) < 0 ? u(-s(regs_[c.rs1])) : regs_[c.rs1];
          break;
        case Op::kAddi: regs_[c.rd] = regs_[c.rs1] + u(c.imm); break;
        case Op::kSubi: regs_[c.rd] = regs_[c.rs1] - u(c.imm); break;
        case Op::kAndi: regs_[c.rd] = regs_[c.rs1] & u(c.imm); break;
        case Op::kOri: regs_[c.rd] = regs_[c.rs1] | u(c.imm); break;
        case Op::kSlli: regs_[c.rd] = regs_[c.rs1] << (c.imm & 31); break;
        case Op::kSrli: regs_[c.rd] = regs_[c.rs1] >> (c.imm & 31); break;
        case Op::kMovi: regs_[c.rd] = u(c.imm); break;
        case Op::kLdw:
          regs_[c.rd] = mem_.read32(regs_[c.rs1] + u(c.imm));
          break;
        case Op::kStw:
          mem_.write32(regs_[c.rs1] + u(c.imm), regs_[c.rs2]);
          break;
        case Op::kLdb:
          regs_[c.rd] = mem_.read8(regs_[c.rs1] + u(c.imm));
          break;
        case Op::kStb:
          mem_.write8(regs_[c.rs1] + u(c.imm),
                      static_cast<std::uint8_t>(regs_[c.rs2]));
          break;
        case Op::kWait: break;  // delay folded into c.cost at decode
        case Op::kTrig: {
          if (coprocessor_ == nullptr) {
            throw std::runtime_error("riscsim: trig without a coprocessor");
          }
          const auto addr =
              static_cast<std::size_t>(static_cast<std::uint32_t>(c.imm));
          std::vector<std::uint8_t> bytes;
          bytes.reserve(c.target);
          for (std::uint32_t b = 0; b < c.target; ++b) {
            bytes.push_back(mem_.read8(addr + b));
          }
          result.cycles += coprocessor_->trigger(bytes, result.cycles);
          break;
        }
        case Op::kKexec:
          if (coprocessor_ == nullptr) {
            throw std::runtime_error("riscsim: kexec without a coprocessor");
          }
          result.cycles += coprocessor_->kernel(
              static_cast<std::uint32_t>(c.imm), result.cycles);
          break;
        default: break;  // terminators never appear in a block body
      }
      regs_[0] = 0;
    }

    if (!block.has_term) {
      // Ran off the end of the code: the out-of-range check at the top of
      // the loop raises the interpreter's exact error (unless max_steps
      // strikes first, exactly as in the interpreter's fetch loop).
      pc = static_cast<std::uint32_t>(program.code.size());
      continue;
    }

    if (result.instructions >= max_steps) return result;
    const Instr& in = block.term;
    ++result.instructions;
    ++result.op_counts[static_cast<std::size_t>(in.op)];
    result.cycles += block.term_cost;
    if (in.op == Op::kHalt) {
      result.halted = true;
      return result;
    }
    std::uint32_t next_pc = block.term_pc + 1;
    bool taken = false;
    switch (in.op) {
      case Op::kBeq: taken = regs_[in.rs1] == regs_[in.rs2]; break;
      case Op::kBne: taken = regs_[in.rs1] != regs_[in.rs2]; break;
      case Op::kBlt: taken = s(regs_[in.rs1]) < s(regs_[in.rs2]); break;
      case Op::kBge: taken = s(regs_[in.rs1]) >= s(regs_[in.rs2]); break;
      case Op::kJmp: taken = true; break;
      default: break;
    }
    if (taken) {
      next_pc = in.target;
      result.cycles += kBranchPenalty;
    }
    regs_[0] = 0;
    pc = next_pc;
  }
}

}  // namespace mrts::riscsim
