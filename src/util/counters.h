#pragma once
/// \file counters.h
/// Named counter/histogram registry, the metrics half of the flight
/// recorder (util/trace.h). Components increment counters through an
/// optional `CounterRegistry*` that defaults to nullptr — the same
/// zero-overhead-when-off contract as tracing: one branch on a pointer per
/// site when detached.
///
/// Registries are per simulator instance / sweep point (never shared across
/// threads). Parallel sweeps keep one registry per point and merge the
/// snapshots afterwards **in submission order**: counter addition is
/// commutative, but histogram double-sums are not bitwise
/// order-independent, so the fixed merge order is what keeps sweep output
/// byte-identical at any worker count.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace mrts {

class SnapshotWriter;
class SnapshotReader;

/// Fixed-bucket log2 histogram plus exact count/sum/min/max. Buckets cover
/// value magnitudes [2^(i-1), 2^i); bucket 0 collects everything < 1
/// (including non-positive values).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Estimated value at quantile \p p in [0, 1] (p = 0.5 -> median).
  /// Nearest-rank target p * count is located by walking the cumulative
  /// bucket counts, then interpolated linearly inside the bucket's
  /// [2^(i-1), 2^i) range — exact when the target lands on a cumulative
  /// bucket boundary (returns the bucket's upper edge) — and finally
  /// clamped to the observed [min, max], which makes single-value
  /// distributions exact too. Returns 0 for an empty histogram.
  double percentile(double p) const;

  /// Bucket index a value falls into.
  static std::size_t bucket_of(double value);

  /// Adds \p other's observations into this histogram.
  void merge(const Histogram& other);

  /// Exact capture/restore (rts/snapshot.h): the running double sum is
  /// order-dependent, so the restored bit pattern must equal the live one.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Registry of named monotonic counters and histograms. Names are created on
/// first use; snapshots iterate in lexicographic name order (std::map), so
/// rendering a snapshot is deterministic.
class CounterRegistry {
 public:
  /// Increments counter \p name by \p delta (creating it at 0).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Records one observation into histogram \p name (creating it empty).
  void observe(std::string_view name, double value);

  /// Current value of counter \p name; 0 if it was never incremented.
  std::uint64_t counter(std::string_view name) const;

  /// Histogram \p name, or nullptr if it was never observed.
  const Histogram* histogram(std::string_view name) const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  bool empty() const { return counters_.empty() && histograms_.empty(); }
  void clear();

  /// Adds \p other's counters and histograms into this registry. Calling
  /// merge over per-point registries in submission order yields a
  /// deterministic aggregate independent of which worker ran which point.
  void merge(const CounterRegistry& other);

  /// Whole-registry capture/restore (rts/snapshot.h). load_state replaces
  /// the current contents; names round-trip in lexicographic order.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace mrts
