#include "util/rng.h"

#include <cmath>

#include "util/snapshot_io.h"

namespace mrts {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

void Rng::save_state(SnapshotWriter& w) const {
  for (std::uint64_t word : state_) w.u64(word);
  w.f64(spare_);
  w.boolean(has_spare_);
}

void Rng::load_state(SnapshotReader& r) {
  for (auto& word : state_) word = r.u64();
  spare_ = r.f64();
  has_spare_ = r.boolean();
}

}  // namespace mrts
