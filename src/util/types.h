#pragma once
/// \file types.h
/// Fundamental value types shared across the mRTS library.
///
/// The global time unit of the whole model is one cycle of the core/CG clock
/// domain (400 MHz, see Section 5.1 of the paper). The fine-grained fabric
/// runs at 100 MHz, i.e. one FG cycle equals kFgClockRatio core cycles.

#include <cstdint>
#include <limits>

namespace mrts {

/// Time / duration expressed in core-clock cycles (400 MHz domain).
using Cycles = std::uint64_t;

/// Signed cycle arithmetic helper (differences, error terms).
using CycleDelta = std::int64_t;

/// Core and coarse-grained fabric clock frequency [Hz].
inline constexpr double kCoreClockHz = 400.0e6;

/// Fine-grained (embedded FPGA) fabric clock frequency [Hz].
inline constexpr double kFgClockHz = 100.0e6;

/// Number of core cycles per FG-fabric cycle.
inline constexpr Cycles kFgClockRatio =
    static_cast<Cycles>(kCoreClockHz / kFgClockHz);

/// Reconfiguration bandwidth of the FG fabric [bytes per second]
/// (Section 5.1: 67584 KB/s).
inline constexpr double kFgReconfigBandwidthBytesPerSec = 67584.0 * 1024.0;

/// Sentinel for "never" / "not scheduled".
inline constexpr Cycles kNeverCycles = std::numeric_limits<Cycles>::max();

/// Convert a duration in milliseconds to core cycles.
constexpr Cycles ms_to_cycles(double ms) {
  return static_cast<Cycles>(ms * 1.0e-3 * kCoreClockHz + 0.5);
}

/// Convert a duration in microseconds to core cycles.
constexpr Cycles us_to_cycles(double us) {
  return static_cast<Cycles>(us * 1.0e-6 * kCoreClockHz + 0.5);
}

/// Convert core cycles to milliseconds.
constexpr double cycles_to_ms(Cycles c) {
  return static_cast<double>(c) / kCoreClockHz * 1.0e3;
}

/// Number of core cycles needed to stream \p bytes over the FG
/// reconfiguration port.
constexpr Cycles fg_reconfig_cycles_for_bytes(std::uint64_t bytes) {
  return static_cast<Cycles>(static_cast<double>(bytes) /
                                 kFgReconfigBandwidthBytesPerSec *
                                 kCoreClockHz +
                             0.5);
}

/// Strongly-typed identifiers. They are plain integers with distinct types so
/// that a kernel id cannot be accidentally passed where an ISE id is expected.
enum class KernelId : std::uint32_t {};
enum class IseId : std::uint32_t {};
enum class DataPathId : std::uint32_t {};
enum class FunctionalBlockId : std::uint32_t {};

constexpr std::uint32_t raw(KernelId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t raw(IseId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t raw(DataPathId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t raw(FunctionalBlockId id) { return static_cast<std::uint32_t>(id); }

/// Invalid-id sentinels.
inline constexpr KernelId kInvalidKernel{0xffffffffu};
inline constexpr IseId kInvalidIse{0xffffffffu};
inline constexpr DataPathId kInvalidDataPath{0xffffffffu};
inline constexpr FunctionalBlockId kInvalidFunctionalBlock{0xffffffffu};

/// Reconfigurable fabric grain of a data path.
enum class Grain : std::uint8_t {
  kCoarse,  ///< coarse-grained reconfigurable fabric (ALU array)
  kFine,    ///< fine-grained reconfigurable fabric (embedded FPGA / PRC)
};

/// Human-readable name of a grain.
constexpr const char* to_string(Grain g) {
  return g == Grain::kCoarse ? "CG" : "FG";
}

}  // namespace mrts
