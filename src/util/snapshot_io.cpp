#include "util/snapshot_io.h"

#include <array>

namespace mrts {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t snapshot_crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace mrts
