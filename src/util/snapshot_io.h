#pragma once
/// \file snapshot_io.h
/// Little-endian binary reader/writer pair for whole-runtime snapshots
/// (rts/snapshot.h, format `mrts.snapshot.v1`). Deliberately tiny and
/// dependency-free so every layer (util RNG / arch fabrics / rts units) can
/// expose `save_state` / `load_state` hooks without pulling rts headers.
///
/// Error contract: SnapshotReader never crashes on truncated or corrupt
/// bytes — every primitive read checks bounds first and throws
/// SnapshotError carrying the exact byte offset that failed, which the CLI
/// surfaces verbatim ("snapshot corrupt at offset N") with exit code 2.
/// Doubles round-trip through their IEEE-754 bit pattern (bit_cast), so a
/// restored run's floating-point state is bit-identical, not just close.

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mrts {

/// Malformed snapshot bytes: \p offset is the position (into the buffer
/// handed to SnapshotReader) where decoding failed.
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// Append-only little-endian encoder.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  /// Overwrites 4 bytes previously written at \p pos (size/CRC backpatch).
  void patch_u32(std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_[pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
  void patch_u64(std::size_t pos, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_[pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  std::size_t size() const { return bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a caller-owned buffer.
class SnapshotReader {
 public:
  SnapshotReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit SnapshotReader(const std::vector<std::uint8_t>& bytes)
      : SnapshotReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::size_t at = pos_;
    const std::uint8_t v = u8();
    if (v > 1) throw SnapshotError("snapshot bool out of range", at);
    return v != 0;
  }
  std::string str() {
    const std::size_t at = pos_;
    const std::uint64_t n = u64();
    if (n > remaining()) throw SnapshotError("snapshot string truncated", at);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// u64 length prefix validated against an element-count ceiling before any
  /// allocation; use for every vector/map so corrupt lengths fail cleanly.
  std::size_t length(std::uint64_t max_elements, const char* what) {
    const std::size_t at = pos_;
    const std::uint64_t n = u64();
    if (n > max_elements) {
      throw SnapshotError(std::string("snapshot ") + what + " length implausible",
                          at);
    }
    return static_cast<std::size_t>(n);
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

  /// Fails loudly when a section decoded fewer/more bytes than written —
  /// the snapshot layout drifted between writer and reader.
  void expect_end() const {
    if (!at_end()) throw SnapshotError("snapshot has trailing bytes", pos_);
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) {
      throw SnapshotError(std::string("snapshot truncated reading ") + what,
                          pos_);
    }
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over \p bytes.
std::uint32_t snapshot_crc32(const std::uint8_t* data, std::size_t size);

}  // namespace mrts
