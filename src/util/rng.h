#pragma once
/// \file rng.h
/// Deterministic pseudo-random number generation (xoshiro256**).
///
/// All stochastic behaviour of the workload models is driven through this
/// generator so that every experiment is bit-reproducible from a seed.

#include <cstdint>

namespace mrts {

class SnapshotWriter;
class SnapshotReader;

/// xoshiro256** 1.0 by Blackman & Vigna, seeded via splitmix64.
/// Deliberately self-contained (no <random> engine) so results are identical
/// across standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using rejection sampling; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box–Muller, cached spare).
  double gaussian();

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Creates an independent child stream (jump-free split via re-seeding).
  Rng split();

  /// Whole-generator state capture/restore (rts/snapshot.h): the four
  /// xoshiro words plus the Box–Muller spare, so a restored stream emits
  /// exactly the draws the uninterrupted one would have.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  std::uint64_t state_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mrts
