#pragma once
/// \file trace.h
/// Flight recorder for the run-time system: typed, sim-cycle-timestamped
/// events collected per simulator instance and exported after the run
/// (Chrome trace-event JSON for Perfetto/chrome://tracing, JSONL for
/// scripts). The paper's evaluation narrative (Figs. 1, 2, 7) is about
/// *when* things happen — reconfiguration completions, intermediate-ISE
/// upgrade points, monoCG bridging windows, MPU forecast drift — and this
/// layer makes those timelines inspectable instead of only end-of-run
/// aggregates.
///
/// Overhead contract: tracing is opt-in per component via a raw
/// `TraceRecorder*` that defaults to nullptr. Every instrumented site is
/// guarded by a single `if (trace_ != nullptr)` branch on that pointer, so a
/// simulation without an attached recorder pays one predicted-not-taken
/// branch per site and allocates nothing. Recorders are per simulator
/// instance (one per sweep point), never shared across threads — the same
/// sharing rule as every other mutable simulation object
/// (docs/ARCHITECTURE.md, "Parallel sweep engine").

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/counters.h"
#include "util/types.h"

namespace mrts {

class IseLibrary;

/// What happened. Kinds are stable identifiers: exporters write their
/// to_string() form, and trace-summary groups by it.
enum class TraceEventKind : std::uint8_t {
  kBlockBegin = 0,   ///< functional-block instance entered (arg0 = fb)
  kBlockEnd,         ///< block finished (arg0 = fb, duration = block cycles)
  kEcuDecision,      ///< ECU switched implementation for a kernel
                     ///< (arg0 = kernel, arg1 = ImplKind, v0 = latency)
  kEcuUpgrade,       ///< a better timeline option became available
                     ///< (arg0 = kernel, arg1 = ImplKind, v0 = latency)
  kMonoCgAttempt,    ///< ECU tried to realize a monoCG-Extension
                     ///< (arg0 = kernel, arg1 = 1 on success, v0 = ready)
  kSelectorEval,     ///< one profit evaluation (arg0 = kernel, arg1 = ise,
                     ///< v0 = profit)
  kSelectorPick,     ///< greedy round winner (arg0 = kernel, arg1 = ise,
                     ///< v0 = profit, v1 = round)
  kMpuError,         ///< forecast vs. observed executions per block instance
                     ///< (arg0 = fb, arg1 = kernel, v0 = predicted,
                     ///< v1 = observed)
  kReconfigStart,    ///< load scheduled on a port (arg0 = dp, arg1 = grain,
                     ///< duration = load cycles, track = container)
  kReconfigComplete, ///< load completion point (arg0 = dp, arg1 = grain)
  kReconfigCancel,   ///< pending loads evicted before start on one port
                     ///< (arg1 = grain of the port, v0 = count)
  kCgContextSwitch,  ///< CG context switch penalty paid (arg0 = dp,
                     ///< duration = switch cycles)
  kOccupancy,        ///< fabric occupancy sample after install
                     ///< (v0 = reserved PRCs, v1 = reserved CG fabrics)
  kFaultInject,      ///< injected fault detected (arg0 = dp, arg1 = grain,
                     ///< v0 = retry attempt for load faults, track = container)
  kReconfigRetry,    ///< failed load re-streamed after backoff (arg0 = dp,
                     ///< arg1 = retry number, duration = stream cycles)
  kQuarantine,       ///< container permanently disabled (arg0 = container
                     ///< index, arg1 = grain, track = container)
  kScrubRepair,      ///< scrubbing re-enqueued a repair load (arg0 = dp,
                     ///< arg1 = grain, v0 = repaired ready cycle)
  kSelectorCacheStats, ///< profit-cache tally of one select() call
                       ///< (v0 = hits, v1 = misses)
  kTenantEviction,     ///< a placement destroyed another tenant's data path
                       ///< (arg0 = victim owner, arg1 = grain, v0 = evicting
                       ///< tenant, track = container)
  kTenantQuotaHit,     ///< eviction redirected onto an over-quota /
                       ///< best-effort tenant's coldest container (arg0 =
                       ///< redirected-to owner, arg1 = grain, v0 = requester)
  kTenantAdmission,    ///< scheduler admission decision for one task
                       ///< (arg0 = task index, arg1 = 1 admitted / 0 bounced,
                       ///< tenant = the tenant acting)
  kTenantCompletion,   ///< one task's admission-to-completion span
                       ///< (arg0 = task index, at = admission cycle,
                       ///< duration = latency, v0 = blocks completed)
  kMigrationStart,     ///< live migration drained the source and began the
                       ///< context copy (arg0 = dp, arg1 = grain,
                       ///< v0 = source container, v1 = destination,
                       ///< track = source container)
  kMigrationComplete,  ///< migrated context ready on the destination
                       ///< (arg0 = dp, arg1 = grain, duration = copy span,
                       ///< v0 = source, v1 = destination, track = dest)
  kSnapshotSave,       ///< whole-runtime checkpoint serialized
                       ///< (arg0 = snapshot sequence number; recorded before
                       ///< the image is built, so the snapshot contains its
                       ///< own marker and a restored run's trace matches the
                       ///< uninterrupted one byte for byte)
  kSnapshotRestore,    ///< runtime state restored from a snapshot
                       ///< (arg0 = snapshot sequence number, v0 = bytes;
                       ///< diagnostic only — never recorded into the resumed
                       ///< run's own trace, see rts/snapshot.h)
  kCoreSlice,          ///< one CMP scheduling turn of a core (sim/cmp.h):
                       ///< track = kTrackCoreBase + core, at/duration = slice
                       ///< span, arg0 = core, arg1 = blocks executed,
                       ///< v0 = interconnect transfer cycles inside the
                       ///< slice, v1 = reconfig-port wait charged after it
  kCoreTransfer,       ///< per-slice operand traffic between a core and the
                       ///< shared fabric (arg0 = core, arg1 = transfers,
                       ///< duration = total transfer cycles, v0 = hop
                       ///< distance). Only emitted when the core sits more
                       ///< than one hop out, so single-core / zero-extra-hop
                       ///< traces stay byte-identical to run_multi_tenant.
};
inline constexpr std::size_t kNumTraceEventKinds = 28;

const char* to_string(TraceEventKind kind);
std::optional<TraceEventKind> trace_kind_from_string(std::string_view name);

/// Rendering track of an event (maps to a Chrome trace `tid`). One track per
/// RTS unit plus one per PRC and per CG fabric.
inline constexpr std::int32_t kTrackApp = 0;       ///< block begin/end
inline constexpr std::int32_t kTrackEcu = 1;       ///< ECU decisions
inline constexpr std::int32_t kTrackSelector = 2;  ///< selector rounds
inline constexpr std::int32_t kTrackMpu = 3;       ///< forecast errors
inline constexpr std::int32_t kTrackFgBase = 100;  ///< + PRC index
inline constexpr std::int32_t kTrackCgBase = 200;  ///< + CG fabric index
inline constexpr std::int32_t kTrackCoreBase = 300;  ///< + CMP core index

std::string track_name(std::int32_t track);

/// One recorded event. Fixed-size POD — recording is a vector push_back,
/// no strings or allocations per event; ids resolve to names at export time.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kBlockBegin;
  std::int32_t track = kTrackApp;
  Cycles at = 0;        ///< start timestamp in core cycles
  Cycles duration = 0;  ///< span length in cycles; 0 = instant event
  std::uint32_t arg0 = 0;
  std::uint32_t arg1 = 0;
  double v0 = 0.0;
  double v1 = 0.0;
  /// Tenant on whose behalf the event happened (a raw TenantId; 0 =
  /// unowned/single-app). Sites that know the acting tenant stamp it
  /// explicitly; everything else inherits the recorder's default tenant,
  /// so per-task recorders in multi-tenant runs attribute every event.
  std::uint32_t tenant = 0;
};

/// Per-simulator event sink. Not thread-safe by design: one recorder per
/// sweep point / simulator instance (see file header).
class TraceRecorder {
 public:
  /// Appends one event. Deliberately out of line: instrumented hot loops
  /// stay small (a pointer test + call on the traced path, just the test
  /// when detached) instead of inlining vector growth machinery per site.
  /// Events arriving with tenant == 0 are stamped with the default tenant.
  void record(const TraceEvent& event);

  /// Tenant attributed to events that are recorded without an explicit
  /// tenant stamp (tenant-bound MRts instances set this on attach).
  void set_default_tenant(std::uint32_t tenant) { default_tenant_ = tenant; }
  std::uint32_t default_tenant() const { return default_tenant_; }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Number of events of one kind (convenience for tests/summaries).
  std::size_t count(TraceEventKind kind) const;

 private:
  std::vector<TraceEvent> events_;
  std::uint32_t default_tenant_ = 0;
};

/// Sim-cycle timestamp -> microseconds for the Chrome `ts`/`dur` fields
/// (core clock 400 MHz: 1 cycle = 0.0025 us).
double trace_cycles_to_us(Cycles c);

/// Writes the events as Chrome trace-event JSON (the "JSON Object Format":
/// {"traceEvents":[...]}). Loads directly in Perfetto and chrome://tracing.
/// Spans become "X" complete events, instants "i", occupancy samples "C"
/// counter events; metadata events name the process and every track. \p lib
/// (optional) resolves kernel/ISE/data-path ids to their library names.
void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events,
                        const IseLibrary* lib = nullptr);

/// Writes one flat JSON object per line ("kind", "at", "dur", "track",
/// "arg0", "arg1", "v0", "v1", optional "label") for scripted analysis.
void write_trace_jsonl(std::ostream& os, const std::vector<TraceEvent>& events,
                       const IseLibrary* lib = nullptr);

/// File convenience wrappers; return false when the file cannot be opened.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const IseLibrary* lib = nullptr);
bool write_trace_jsonl_file(const std::string& path,
                            const std::vector<TraceEvent>& events,
                            const IseLibrary* lib = nullptr);

/// Parses one JSONL line produced by write_trace_jsonl (labels are ignored;
/// they are derived data). nullopt on malformed input.
std::optional<TraceEvent> parse_trace_jsonl_line(const std::string& line);

/// A whole JSONL trace read into memory — the reusable event stream behind
/// `mrts_cli trace-analyze` and the obs/ analysis engine. Reading stops at
/// the first malformed non-empty line (`bad_line`, 1-based, names it; 0 =
/// none). An empty stream, blank lines and a trailing newline are all fine
/// and yield zero events with ok() == true; a truncated last line (e.g. a
/// crash mid-write) is a parse error, never a crash.
struct ParsedTrace {
  std::vector<TraceEvent> events;
  std::size_t lines = 0;     ///< lines consumed, including blank ones
  std::size_t bad_line = 0;  ///< 1-based first malformed line; 0 = none
  bool ok() const { return bad_line == 0; }
};

ParsedTrace parse_trace_jsonl(std::istream& in);

/// Aggregate of a JSONL trace stream (the `mrts_cli trace-summary` verb).
struct TraceSummary {
  std::size_t total_events = 0;
  std::size_t parse_errors = 0;  ///< non-empty lines that failed to parse
  std::size_t first_bad_line = 0;  ///< 1-based; 0 = no parse errors
  std::size_t per_kind[kNumTraceEventKinds] = {};
  Cycles first_cycle = kNeverCycles;  ///< kNeverCycles when no events
  Cycles last_cycle = 0;              ///< end of the latest span
  /// Durations of all span events (duration > 0), for the p50/p90/p99 line
  /// of `trace-summary`.
  Histogram span_durations;
};

TraceSummary summarize_trace_jsonl(std::istream& in);

}  // namespace mrts
