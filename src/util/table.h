#pragma once
/// \file table.h
/// Fixed-width ASCII table printer used by benches and examples to print the
/// paper's tables/figure series in a readable form.

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace mrts {

/// Collects rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience row builder mirroring CsvWriter::write_values.
  template <typename... Ts>
  void add_values(const Ts&... values);

  /// Renders the table (header, separator, rows).
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p digits fraction digits.
std::string format_double(double v, int digits = 2);

/// Formats cycles as millions with 2 decimals, e.g. "12.34".
std::string format_mcycles(std::uint64_t cycles);

}  // namespace mrts

namespace mrts {
namespace detail {
inline std::string table_cell(const std::string& v) { return v; }
inline std::string table_cell(const char* v) { return v; }
inline std::string table_cell(double v) { return format_double(v, 3); }
inline std::string table_cell(float v) { return format_double(v, 3); }
template <typename T>
  requires std::is_integral_v<T>
inline std::string table_cell(T v) {
  return std::to_string(v);
}
}  // namespace detail

template <typename... Ts>
void TextTable::add_values(const Ts&... values) {
  std::vector<std::string> cells;
  cells.reserve(sizeof...(values));
  (cells.push_back(detail::table_cell(values)), ...);
  add_row(std::move(cells));
}

}  // namespace mrts
