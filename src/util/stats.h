#pragma once
/// \file stats.h
/// Small online-statistics helpers used by the monitoring unit and the
/// benchmark harnesses.

#include <cstddef>
#include <vector>

namespace mrts {

class SnapshotWriter;
class SnapshotReader;

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average. Used by the MPU's lightweight
/// error-back-propagation forecast update (see [12] in the paper): the new
/// prediction moves toward the observed value by a fraction alpha of the
/// observed prediction error.
class Ewma {
 public:
  /// \param alpha correction gain in (0, 1]; larger follows observations
  ///        faster.
  /// \param initial initial prediction before any observation.
  explicit Ewma(double alpha = 0.5, double initial = 0.0);

  /// Back-propagates the error between \p observed and the current prediction.
  void observe(double observed);

  double prediction() const { return value_; }
  double alpha() const { return alpha_; }
  std::size_t observations() const { return n_; }

  /// Resets to a fresh initial prediction.
  void reset(double initial);

  /// Exact state capture/restore (rts/snapshot.h): alpha, the prediction's
  /// IEEE bit pattern and the observation count.
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  double alpha_;
  double value_;
  std::size_t n_ = 0;
};

/// Geometric mean of a sequence of positive values (0 if empty).
double geometric_mean(const std::vector<double>& values);

/// Arithmetic mean (0 if empty).
double arithmetic_mean(const std::vector<double>& values);

}  // namespace mrts
