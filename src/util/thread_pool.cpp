#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace mrts {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

unsigned ThreadPool::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted futures must resolve.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

}  // namespace mrts
