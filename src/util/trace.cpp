#include "util/trace.h"

#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "isa/ise_library.h"

namespace mrts {
namespace {

constexpr std::array<const char*, kNumTraceEventKinds> kKindNames = {
    "block_begin",     "block_end",         "ecu_decision",
    "ecu_upgrade",     "mono_cg_attempt",   "selector_eval",
    "selector_pick",   "mpu_error",         "reconfig_start",
    "reconfig_complete", "reconfig_cancel", "cg_context_switch",
    "occupancy",
    // Fault-injection kinds use the dotted counter-style names so the
    // trace-summary table matches the counter names one-to-one.
    "fault.inject",    "reconfig.retry",    "prc.quarantined",
    "scrub.repair",    "selector.cache",
    // Multi-tenant arbitration kinds (dotted, matching their counters).
    "tenant.eviction", "tenant.quota_hit",
    // Scheduler admission/completion timestamps (dotted, matching their
    // counters) — the raw material of the per-tenant latency percentiles in
    // obs/run_report.h.
    "tenant.admitted", "tenant.completed",
    // Migration + checkpoint/restore kinds (dotted, matching their
    // counters): the robustness timeline of defragmentation passes and
    // crash-resilient runs.
    "migration.start", "migration.complete",
    "snapshot.save",   "snapshot.restore",
    // CMP scheduler kinds (sim/cmp.h): per-core slices and operand traffic
    // to the shared fabric over the interconnect.
    "core.slice",      "core.transfer",
};

/// Must match ImplKind in rts/rts_interface.h (util cannot include rts
/// headers without inverting the layering); tests/test_trace.cpp pins the
/// correspondence against to_string(ImplKind).
constexpr std::array<const char*, 5> kImplKindNames = {
    "RISC", "monoCG", "intermediate", "full-ISE", "covered-ISE"};

const char* impl_kind_name(std::uint32_t kind) {
  return kind < kImplKindNames.size() ? kImplKindNames[kind] : "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan literals
  char buf[64];
  // Same contract as CsvWriter::to_cell: integral doubles (exact up to
  // 2^53) emit every digit so large cycle counts survive a JSON round
  // trip; the rest keeps %.10g.
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0 /* 2^53 */) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  return buf;
}

std::string kernel_name(const IseLibrary* lib, std::uint32_t k) {
  if (lib != nullptr && k < lib->num_kernels()) {
    return lib->kernel(KernelId{k}).name;
  }
  return "kernel" + std::to_string(k);
}

std::string ise_name(const IseLibrary* lib, std::uint32_t id) {
  if (lib != nullptr && id < lib->num_ises()) return lib->ise(IseId{id}).name;
  return "ise" + std::to_string(id);
}

std::string dp_name(const IseLibrary* lib, std::uint32_t id) {
  if (lib != nullptr && id < lib->data_paths().size()) {
    return lib->data_paths()[DataPathId{id}].name;
  }
  return "dp" + std::to_string(id);
}

/// Human-readable event label for both exporters.
std::string event_label(const TraceEvent& e, const IseLibrary* lib) {
  switch (e.kind) {
    case TraceEventKind::kBlockBegin:
    case TraceEventKind::kBlockEnd:
      return "FB" + std::to_string(e.arg0);
    case TraceEventKind::kEcuDecision:
    case TraceEventKind::kEcuUpgrade:
      return kernel_name(lib, e.arg0) + ": " + impl_kind_name(e.arg1);
    case TraceEventKind::kMonoCgAttempt:
      return kernel_name(lib, e.arg0) +
             (e.arg1 != 0 ? ": monoCG acquired" : ": monoCG unavailable");
    case TraceEventKind::kSelectorEval:
    case TraceEventKind::kSelectorPick:
      return kernel_name(lib, e.arg0) + "/" + ise_name(lib, e.arg1);
    case TraceEventKind::kMpuError:
      return kernel_name(lib, e.arg1);
    case TraceEventKind::kReconfigStart:
    case TraceEventKind::kReconfigComplete:
    case TraceEventKind::kCgContextSwitch:
      return dp_name(lib, e.arg0);
    case TraceEventKind::kReconfigCancel:
      return "cancelled loads";
    case TraceEventKind::kOccupancy:
      return "fabric occupancy";
    case TraceEventKind::kFaultInject:
      return dp_name(lib, e.arg0) + ": fault injected";
    case TraceEventKind::kReconfigRetry:
      return dp_name(lib, e.arg0) + ": retry " + std::to_string(e.arg1);
    case TraceEventKind::kQuarantine:
      return (e.arg1 == static_cast<std::uint32_t>(Grain::kFine)
                  ? "PRC "
                  : "CG fabric ") +
             std::to_string(e.arg0) + " quarantined";
    case TraceEventKind::kScrubRepair:
      return dp_name(lib, e.arg0) + ": scrub repair";
    case TraceEventKind::kSelectorCacheStats:
      return "profit cache hits/misses";
    case TraceEventKind::kTenantEviction:
      return "tenant " + std::to_string(static_cast<std::uint64_t>(e.v0)) +
             " evicted tenant " + std::to_string(e.arg0);
    case TraceEventKind::kTenantQuotaHit:
      return "eviction redirected onto over-quota tenant " +
             std::to_string(e.arg0);
    case TraceEventKind::kTenantAdmission:
      return "task " + std::to_string(e.arg0) +
             (e.arg1 != 0 ? " admitted" : " bounced");
    case TraceEventKind::kTenantCompletion:
      return "task " + std::to_string(e.arg0) + " completed";
    case TraceEventKind::kMigrationStart:
    case TraceEventKind::kMigrationComplete: {
      const char* unit =
          e.arg1 == static_cast<std::uint32_t>(Grain::kFine) ? "PRC"
                                                             : "CG fabric";
      return dp_name(lib, e.arg0) + ": " + unit + " " +
             std::to_string(static_cast<std::uint64_t>(e.v0)) + " -> " +
             std::to_string(static_cast<std::uint64_t>(e.v1));
    }
    case TraceEventKind::kSnapshotSave:
      return "checkpoint #" + std::to_string(e.arg0) + " saved";
    case TraceEventKind::kSnapshotRestore:
      return "checkpoint #" + std::to_string(e.arg0) + " restored";
    case TraceEventKind::kCoreSlice:
      return "core " + std::to_string(e.arg0) + ": " +
             std::to_string(e.arg1) + " block(s)";
    case TraceEventKind::kCoreTransfer:
      return "core " + std::to_string(e.arg0) + ": " +
             std::to_string(e.arg1) + " transfer(s)";
  }
  return "?";
}

}  // namespace

const char* to_string(TraceEventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kKindNames.size() ? kKindNames[i] : "?";
}

std::optional<TraceEventKind> trace_kind_from_string(std::string_view name) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (name == kKindNames[i]) return static_cast<TraceEventKind>(i);
  }
  return std::nullopt;
}

std::string track_name(std::int32_t track) {
  switch (track) {
    case kTrackApp: return "application";
    case kTrackEcu: return "ECU decisions";
    case kTrackSelector: return "ISE selector";
    case kTrackMpu: return "MPU forecasts";
    default: break;
  }
  if (track >= kTrackCoreBase) {
    return "core " + std::to_string(track - kTrackCoreBase);
  }
  if (track >= kTrackCgBase) {
    return "CG fabric " + std::to_string(track - kTrackCgBase);
  }
  if (track >= kTrackFgBase) {
    return "PRC " + std::to_string(track - kTrackFgBase);
  }
  return "track " + std::to_string(track);
}

void TraceRecorder::record(const TraceEvent& event) {
  events_.push_back(event);
  if (event.tenant == 0 && default_tenant_ != 0) {
    events_.back().tenant = default_tenant_;
  }
}

std::size_t TraceRecorder::count(TraceEventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

double trace_cycles_to_us(Cycles c) {
  return static_cast<double>(c) / kCoreClockHz * 1.0e6;
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events,
                        const IseLibrary* lib) {
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"mRTS simulation\"}}";

  // Name every track that appears; sort index keeps the RTS tracks on top
  // and the fabric tracks grouped below.
  std::set<std::int32_t> tracks;
  for (const auto& e : events) tracks.insert(e.track);
  for (std::int32_t t : tracks) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"args\":{\"name\":\"" << json_escape(track_name(t)) << "\"}}";
    os << ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << t << ",\"args\":{\"sort_index\":" << t << "}}";
  }

  for (const auto& e : events) {
    const std::string label = json_escape(event_label(e, lib));
    const std::string ts = format_double(trace_cycles_to_us(e.at));
    os << ",\n";
    if (e.kind == TraceEventKind::kOccupancy) {
      // Counter track: Perfetto renders it as a stacked area chart.
      os << "{\"name\":\"" << label << "\",\"cat\":\"" << to_string(e.kind)
         << "\",\"ph\":\"C\",\"pid\":1,\"ts\":" << ts
         << ",\"args\":{\"reserved_prcs\":" << format_double(e.v0)
         << ",\"reserved_cg\":" << format_double(e.v1) << "}}";
      continue;
    }
    os << "{\"name\":\"" << label << "\",\"cat\":\"" << to_string(e.kind)
       << "\",\"pid\":1,\"tid\":" << e.track << ",\"ts\":" << ts;
    if (e.duration > 0) {
      os << ",\"ph\":\"X\",\"dur\":" << format_double(trace_cycles_to_us(e.duration));
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"args\":{\"at_cycles\":" << e.at << ",\"arg0\":" << e.arg0
       << ",\"arg1\":" << e.arg1 << ",\"tenant\":" << e.tenant
       << ",\"v0\":" << format_double(e.v0)
       << ",\"v1\":" << format_double(e.v1) << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_trace_jsonl(std::ostream& os, const std::vector<TraceEvent>& events,
                       const IseLibrary* lib) {
  for (const auto& e : events) {
    os << "{\"kind\":\"" << to_string(e.kind) << "\",\"at\":" << e.at
       << ",\"dur\":" << e.duration << ",\"track\":" << e.track
       << ",\"arg0\":" << e.arg0 << ",\"arg1\":" << e.arg1
       << ",\"tenant\":" << e.tenant
       << ",\"v0\":" << format_double(e.v0) << ",\"v1\":" << format_double(e.v1)
       << ",\"label\":\"" << json_escape(event_label(e, lib)) << "\"}\n";
  }
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const IseLibrary* lib) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, events, lib);
  return static_cast<bool>(os);
}

bool write_trace_jsonl_file(const std::string& path,
                            const std::vector<TraceEvent>& events,
                            const IseLibrary* lib) {
  std::ofstream os(path);
  if (!os) return false;
  write_trace_jsonl(os, events, lib);
  return static_cast<bool>(os);
}

namespace {

/// Extracts the raw token following `"key":` in a flat one-line JSON object;
/// nullopt when the key is absent.
std::optional<std::string> json_token(const std::string& line,
                                      const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = begin;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;  // skip escaped char
      ++end;
    }
    if (end >= line.size()) return std::nullopt;  // unterminated string
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(begin, end - begin);
}

}  // namespace

std::optional<TraceEvent> parse_trace_jsonl_line(const std::string& line) {
  // A truncated write can leave a prefix whose kind/at tokens still parse;
  // requiring the object's braces catches lines cut off mid-token.
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] != '{') return std::nullopt;
  const auto last = line.find_last_not_of(" \t\r");
  if (line[last] != '}') return std::nullopt;
  const auto kind_token = json_token(line, "kind");
  const auto at_token = json_token(line, "at");
  if (!kind_token || !at_token) return std::nullopt;
  const auto kind = trace_kind_from_string(*kind_token);
  if (!kind) return std::nullopt;

  TraceEvent e;
  e.kind = *kind;
  char* end = nullptr;
  e.at = std::strtoull(at_token->c_str(), &end, 10);
  if (end == at_token->c_str()) return std::nullopt;
  if (const auto t = json_token(line, "dur")) {
    e.duration = std::strtoull(t->c_str(), nullptr, 10);
  }
  if (const auto t = json_token(line, "track")) {
    e.track = static_cast<std::int32_t>(std::strtol(t->c_str(), nullptr, 10));
  }
  if (const auto t = json_token(line, "arg0")) {
    e.arg0 = static_cast<std::uint32_t>(std::strtoul(t->c_str(), nullptr, 10));
  }
  if (const auto t = json_token(line, "arg1")) {
    e.arg1 = static_cast<std::uint32_t>(std::strtoul(t->c_str(), nullptr, 10));
  }
  if (const auto t = json_token(line, "tenant")) {
    // Optional so traces written before the tenant field existed still parse.
    e.tenant = static_cast<std::uint32_t>(std::strtoul(t->c_str(), nullptr, 10));
  }
  if (const auto t = json_token(line, "v0")) {
    e.v0 = std::strtod(t->c_str(), nullptr);
  }
  if (const auto t = json_token(line, "v1")) {
    e.v1 = std::strtod(t->c_str(), nullptr);
  }
  return e;
}

ParsedTrace parse_trace_jsonl(std::istream& in) {
  ParsedTrace parsed;
  std::string line;
  while (std::getline(in, line)) {
    ++parsed.lines;
    if (line.empty()) continue;  // blank line / trailing newline
    auto event = parse_trace_jsonl_line(line);
    if (!event) {
      parsed.bad_line = parsed.lines;
      break;
    }
    parsed.events.push_back(*event);
  }
  return parsed;
}

TraceSummary summarize_trace_jsonl(std::istream& in) {
  TraceSummary summary;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto event = parse_trace_jsonl_line(line);
    if (!event) {
      ++summary.parse_errors;
      if (summary.first_bad_line == 0) summary.first_bad_line = line_number;
      continue;
    }
    ++summary.total_events;
    ++summary.per_kind[static_cast<std::size_t>(event->kind)];
    if (event->at < summary.first_cycle) summary.first_cycle = event->at;
    if (event->at + event->duration > summary.last_cycle) {
      summary.last_cycle = event->at + event->duration;
    }
    if (event->duration > 0) {
      summary.span_durations.observe(static_cast<double>(event->duration));
    }
  }
  return summary;
}

}  // namespace mrts
