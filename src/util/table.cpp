#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mrts {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(width[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string out = render_row(header_);
  std::string sep;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep += "|";
    sep.append(width[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string format_mcycles(std::uint64_t cycles) {
  return format_double(static_cast<double>(cycles) / 1.0e6, 2);
}

}  // namespace mrts
