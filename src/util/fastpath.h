#pragma once
/// \file fastpath.h
/// Process-wide toggle for the simulator fast paths: the decoded
/// basic-block caches of the riscsim/cgsim interpreters and the batched
/// (run-compressed) frame-execution path of sim/fb_simulator. Both paths
/// are pure optimizations — every cycle total, architectural state and
/// output byte is identical at any setting — so the toggle exists to keep
/// the plain interpreter / per-event loop alive as the oracle for A/B
/// tests (`--no-bb-cache` on the benches, MRTS_NO_BB_CACHE=1 in the
/// environment, or set_fastpath_enabled(false) from tests).

namespace mrts {

/// True when the fast paths are active. Defaults to true unless the
/// MRTS_NO_BB_CACHE environment variable is set to anything but "0"
/// (checked once, at first use).
bool fastpath_enabled();

/// Overrides the fast-path toggle for the whole process. Not synchronized
/// with concurrently running sweeps — flip it only between runs (tests and
/// bench flag parsing do this before any simulation starts).
void set_fastpath_enabled(bool enabled);

}  // namespace mrts
