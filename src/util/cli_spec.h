#pragma once
/// \file cli_spec.h
/// Declarative CLI flag tables shared by the tool binaries (mrts_cli,
/// mrts_serve, mrts_loadgen). Each binary defines one CliSpec — its verbs,
/// positionals and flags — and both its `--help` output *and* its parser's
/// flag lookup come from that single table, so the help text cannot drift
/// from what the parser accepts (the PR 9 bugfix: `run` had grown flags its
/// usage text never mentioned). tests/test_cli_spec.cpp pins the contract.
///
/// The table knows flag *names*, whether a flag takes a value, and the help
/// strings; value validation stays in the binaries' strict parsers (a flag
/// table has no business knowing what a probability looks like).

#include <string>
#include <string_view>
#include <vector>

namespace mrts {

struct CliFlag {
  std::string name;   ///< including dashes, e.g. "--trace"
  std::string value;  ///< value placeholder, e.g. "<file>"; "" = boolean flag
  std::string help;   ///< one-line description
};

struct CliVerb {
  std::string name;         ///< "" for verbless binaries
  std::string positionals;  ///< e.g. "<h264|sdr> [prcs] [cg] [frames]"
  std::string help;         ///< one-line description
  std::vector<CliFlag> flags;
};

class CliSpec {
 public:
  /// \p exit_note is the shared exit-code contract line printed at the end
  /// of every help text (stated once in docs/CLI.md, repeated by the tools).
  CliSpec(std::string binary, std::string summary, std::string exit_note);

  CliVerb& add_verb(std::string name, std::string positionals,
                    std::string help);

  const std::vector<CliVerb>& verbs() const { return verbs_; }
  /// Verb lookup by name; nullptr when unknown.
  const CliVerb* verb(std::string_view name) const;
  /// Flag lookup within a verb; nullptr when the verb does not accept it.
  static const CliFlag* flag(const CliVerb& verb, std::string_view name);

  /// Full `--help` text: usage lines for every verb, then per-verb flag
  /// tables, then the exit-code note.
  std::string help() const;
  /// One verb's help: its usage line plus its flag table.
  std::string verb_help(const CliVerb& verb) const;

  const std::string& binary() const { return binary_; }

 private:
  std::string usage_line(const CliVerb& verb) const;

  std::string binary_;
  std::string summary_;
  std::string exit_note_;
  std::vector<CliVerb> verbs_;
};

}  // namespace mrts
