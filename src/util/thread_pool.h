#pragma once
/// \file thread_pool.h
/// Fixed-size thread pool: a single FIFO queue drained by N worker threads
/// (no work stealing, so task pickup order is the submission order). Used by
/// the sweep runner (sim/sweep_runner.h) to fan independent simulation
/// points out over the host cores. Tasks must not touch shared mutable
/// state unless they synchronize it themselves; see docs/ARCHITECTURE.md
/// ("Parallel sweep engine") for the sharing rules the benches follow.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mrts {

class ThreadPool {
 public:
  /// Spawns \p num_threads workers (clamped to >= 1).
  explicit ThreadPool(unsigned num_threads);

  /// Signals shutdown, drains already-queued tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues \p f and returns a future carrying its result. An exception
  /// thrown by the task is captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Worker count to use when the caller does not specify one:
  /// hardware_concurrency, clamped to >= 1.
  static unsigned default_jobs();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mrts
