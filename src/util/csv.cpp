#include "util/csv.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mrts {

CsvWriter::CsvWriter(const std::string& path) : to_file_(true) {
  file_.open(path);
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::CsvWriter() = default;

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  emit(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  emit(cells);
}

std::string CsvWriter::str() const { return buffer_; }

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_cell(double v) {
  char buf[64];
  // Bare %.10g silently rounds integral cycle counts above ~2^33 (it keeps
  // only 10 significant digits). Integral doubles are exact up to 2^53 —
  // emit every digit for those; everything else keeps the historical %.10g
  // (committed CSV bytes depend on its rounding).
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < 9007199254740992.0 /* 2^53 */) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += escape(cells[i]);
  }
  line += '\n';
  if (to_file_) {
    file_ << line;
  } else {
    buffer_ += line;
  }
}

}  // namespace mrts
