#pragma once
/// \file csv.h
/// CSV emitter used by the benchmark harnesses to dump figure series that can
/// be re-plotted externally.

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

namespace mrts {

/// Writes rows of a CSV file with proper quoting. The writer owns the stream
/// and flushes on destruction.
class CsvWriter {
 public:
  /// Opens \p path for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Construct an in-memory writer (for tests); contents via str().
  CsvWriter();

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: converts arithmetic values with full precision.
  template <typename... Ts>
  void write_values(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    write_row(cells);
  }

  /// Contents so far (in-memory mode only; empty for file mode).
  std::string str() const;

  static std::string escape(const std::string& cell);
  static std::string to_cell(const std::string& v) { return v; }
  static std::string to_cell(const char* v) { return v; }
  static std::string to_cell(double v);
  static std::string to_cell(float v) { return to_cell(static_cast<double>(v)); }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

 private:
  void emit(const std::vector<std::string>& cells);

  std::ofstream file_;
  std::string buffer_;
  bool to_file_ = false;
};

}  // namespace mrts
