#include "util/cli_spec.h"

#include <sstream>

namespace mrts {

CliSpec::CliSpec(std::string binary, std::string summary,
                 std::string exit_note)
    : binary_(std::move(binary)),
      summary_(std::move(summary)),
      exit_note_(std::move(exit_note)) {}

CliVerb& CliSpec::add_verb(std::string name, std::string positionals,
                           std::string help) {
  CliVerb verb;
  verb.name = std::move(name);
  verb.positionals = std::move(positionals);
  verb.help = std::move(help);
  verbs_.push_back(std::move(verb));
  return verbs_.back();
}

const CliVerb* CliSpec::verb(std::string_view name) const {
  for (const CliVerb& v : verbs_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

const CliFlag* CliSpec::flag(const CliVerb& verb, std::string_view name) {
  for (const CliFlag& f : verb.flags) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string CliSpec::usage_line(const CliVerb& verb) const {
  std::string line = "  " + binary_;
  if (!verb.name.empty()) line += " " + verb.name;
  if (!verb.positionals.empty()) line += " " + verb.positionals;
  if (!verb.flags.empty()) line += " [flags]";
  return line;
}

std::string CliSpec::verb_help(const CliVerb& verb) const {
  std::ostringstream os;
  os << "usage:\n" << usage_line(verb) << '\n';
  if (!verb.help.empty()) os << "  " << verb.help << '\n';
  if (!verb.flags.empty()) {
    os << "flags:\n";
    std::size_t width = 0;
    for (const CliFlag& f : verb.flags) {
      const std::size_t n =
          f.name.size() + (f.value.empty() ? 0 : f.value.size() + 1);
      width = n > width ? n : width;
    }
    for (const CliFlag& f : verb.flags) {
      std::string head = f.name;
      if (!f.value.empty()) head += " " + f.value;
      os << "  " << head << std::string(width - head.size() + 2, ' ')
         << f.help << '\n';
    }
  }
  os << exit_note_ << '\n';
  return os.str();
}

std::string CliSpec::help() const {
  std::ostringstream os;
  os << binary_ << " - " << summary_ << "\n\nusage:\n";
  for (const CliVerb& v : verbs_) os << usage_line(v) << '\n';
  for (const CliVerb& v : verbs_) {
    if (v.flags.empty() && v.help.empty()) continue;
    os << '\n';
    if (!v.name.empty()) {
      os << v.name << ": " << v.help << '\n';
    } else if (!v.help.empty()) {
      os << v.help << '\n';
    }
    std::size_t width = 0;
    for (const CliFlag& f : v.flags) {
      const std::size_t n =
          f.name.size() + (f.value.empty() ? 0 : f.value.size() + 1);
      width = n > width ? n : width;
    }
    for (const CliFlag& f : v.flags) {
      std::string head = f.name;
      if (!f.value.empty()) head += " " + f.value;
      os << "  " << head << std::string(width - head.size() + 2, ' ')
         << f.help << '\n';
    }
  }
  os << '\n' << exit_note_ << '\n';
  return os.str();
}

}  // namespace mrts
