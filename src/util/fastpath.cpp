#include "util/fastpath.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mrts {
namespace {

bool initial_state() {
  const char* env = std::getenv("MRTS_NO_BB_CACHE");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") == 0;  // MRTS_NO_BB_CACHE=0 keeps it on
}

std::atomic<bool>& flag() {
  static std::atomic<bool> enabled{initial_state()};
  return enabled;
}

}  // namespace

bool fastpath_enabled() { return flag().load(std::memory_order_relaxed); }

void set_fastpath_enabled(bool enabled) {
  flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace mrts
