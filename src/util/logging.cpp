#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace mrts {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<unsigned> g_next_thread_tag{0};
}  // namespace

const std::string& log_thread_tag() {
  thread_local const std::string tag = [] {
    char buf[16];
    std::snprintf(buf, sizeof buf, "w%02u",
                  g_next_thread_tag.fetch_add(1, std::memory_order_relaxed));
    return std::string(buf);
  }();
  return tag;
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string format_log_line(std::int64_t unix_millis, const std::string& tag,
                            LogLevel level, const std::string& component,
                            const std::string& message) {
  const std::time_t secs = static_cast<std::time_t>(unix_millis / 1000);
  const int millis = static_cast<int>(unix_millis % 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);  // UTC: log lines compare across machines
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%d %H:%M:%S", &tm);
  std::string line;
  line.reserve(48 + tag.size() + component.size() + message.size());
  char head[64];
  std::snprintf(head, sizeof head, "[%s.%03d] [%s] [%s] ", stamp, millis,
                tag.c_str(), to_string(level));
  line += head;
  line += component;
  line += ": ";
  line += message;
  return line;
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::fprintf(
      stderr, "%s\n",
      format_log_line(millis, log_thread_tag(), level, component, message)
          .c_str());
}

}  // namespace mrts
