#include "util/logging.h"

#include <cstdio>

namespace mrts {
namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", to_string(level), component.c_str(),
               message.c_str());
}

}  // namespace mrts
