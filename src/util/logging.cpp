#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace mrts {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", to_string(level), component.c_str(),
               message.c_str());
}

}  // namespace mrts
