#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/snapshot_io.h"

namespace mrts {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Ewma::Ewma(double alpha, double initial) : alpha_(alpha), value_(initial) {
  if (alpha_ <= 0.0) alpha_ = 1e-6;
  if (alpha_ > 1.0) alpha_ = 1.0;
}

void Ewma::observe(double observed) {
  // prediction <- prediction + alpha * (observed - prediction)
  value_ += alpha_ * (observed - value_);
  ++n_;
}

void Ewma::reset(double initial) {
  value_ = initial;
  n_ = 0;
}

void Ewma::save_state(SnapshotWriter& w) const {
  w.f64(alpha_);
  w.f64(value_);
  w.u64(n_);
}

void Ewma::load_state(SnapshotReader& r) {
  alpha_ = r.f64();
  value_ = r.f64();
  n_ = static_cast<std::size_t>(r.u64());
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace mrts
