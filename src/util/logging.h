#pragma once
/// \file logging.h
/// Minimal leveled logger. Logging defaults to Warn so library users see
/// problems but simulations stay quiet; benches/examples raise it explicitly.

#include <cstdint>
#include <sstream>
#include <string>

namespace mrts {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded. The level is
/// atomic, so reading/setting it from any thread is safe.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Stable tag of the calling thread, "wNN": assigned from an atomic counter
/// on the thread's first log line and fixed for the thread's lifetime. With
/// the parallel sweep harness (sim/sweep_runner.h) this is what lets
/// interleaved stderr output be attributed to a worker.
const std::string& log_thread_tag();

/// Renders one log line — "[YYYY-MM-DD HH:MM:SS.mmm] [wNN] [LEVEL]
/// component: message" — from an explicit UTC wall-clock timestamp
/// (milliseconds since the Unix epoch) and thread tag. Split out from
/// log_message so tests can pin the format deterministically.
std::string format_log_line(std::int64_t unix_millis, const std::string& tag,
                            LogLevel level, const std::string& component,
                            const std::string& message);

/// Emits one formatted line to stderr, prefixed with the current UTC
/// wall-clock time and the calling thread's tag. Historical note: this used
/// to be documented as "not thread-safe — the simulator is single
/// threaded"; that no longer holds since the bench harness fans sweep
/// points out over a thread pool (sim/sweep_runner.h). The rule now is:
/// each line is written with a single fprintf, which POSIX stdio locks per
/// call, so concurrent lines never interleave *within* a line; their
/// relative order across threads is unspecified. Simulator objects
/// themselves are still single-threaded — only the logger and the level may
/// be touched from multiple sweep workers.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

const char* to_string(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) log_message(level_, component_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace mrts

#define MRTS_LOG(level, component) ::mrts::detail::LogLine(level, component)
#define MRTS_TRACE(component) MRTS_LOG(::mrts::LogLevel::kTrace, component)
#define MRTS_DEBUG(component) MRTS_LOG(::mrts::LogLevel::kDebug, component)
#define MRTS_INFO(component) MRTS_LOG(::mrts::LogLevel::kInfo, component)
#define MRTS_WARN(component) MRTS_LOG(::mrts::LogLevel::kWarn, component)
#define MRTS_ERROR(component) MRTS_LOG(::mrts::LogLevel::kError, component)
