#pragma once
/// \file logging.h
/// Minimal leveled logger. Logging defaults to Warn so library users see
/// problems but simulations stay quiet; benches/examples raise it explicitly.

#include <sstream>
#include <string>

namespace mrts {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr (thread-compatible, not thread-safe by
/// design — the simulator is single threaded).
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

const char* to_string(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) log_message(level_, component_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace mrts

#define MRTS_LOG(level, component) ::mrts::detail::LogLine(level, component)
#define MRTS_TRACE(component) MRTS_LOG(::mrts::LogLevel::kTrace, component)
#define MRTS_DEBUG(component) MRTS_LOG(::mrts::LogLevel::kDebug, component)
#define MRTS_INFO(component) MRTS_LOG(::mrts::LogLevel::kInfo, component)
#define MRTS_WARN(component) MRTS_LOG(::mrts::LogLevel::kWarn, component)
#define MRTS_ERROR(component) MRTS_LOG(::mrts::LogLevel::kError, component)
