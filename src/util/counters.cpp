#include "util/counters.h"

#include <algorithm>
#include <cmath>

#include "util/snapshot_io.h"

namespace mrts {

std::size_t Histogram::bucket_of(double value) {
  if (!(value >= 1.0)) return 0;  // < 1, non-positive and NaN
  const int exponent = std::ilogb(value);  // floor(log2(value)) for v >= 1
  const std::size_t bucket = static_cast<std::size_t>(exponent) + 1;
  return std::min(bucket, kBuckets - 1);
}

void Histogram::observe(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double n = static_cast<double>(buckets_[i]);
    if (n == 0.0) continue;
    if (target <= cumulative + n) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      const double fraction = std::max(0.0, (target - cumulative) / n);
      const double value = lo + (hi - lo) * fraction;
      return std::clamp(value, min_, max_);
    }
    cumulative += n;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void CounterRegistry::observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.observe(value);
}

std::uint64_t CounterRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

const Histogram* CounterRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void CounterRegistry::clear() {
  counters_.clear();
  histograms_.clear();
}

void Histogram::save_state(SnapshotWriter& w) const {
  w.u64(count_);
  w.f64(sum_);
  w.f64(min_);
  w.f64(max_);
  for (std::uint64_t b : buckets_) w.u64(b);
}

void Histogram::load_state(SnapshotReader& r) {
  count_ = r.u64();
  sum_ = r.f64();
  min_ = r.f64();
  max_ = r.f64();
  for (auto& b : buckets_) b = r.u64();
}

void CounterRegistry::save_state(SnapshotWriter& w) const {
  w.u64(counters_.size());
  for (const auto& [name, value] : counters_) {
    w.str(name);
    w.u64(value);
  }
  w.u64(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    w.str(name);
    histogram.save_state(w);
  }
}

void CounterRegistry::load_state(SnapshotReader& r) {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, Histogram, std::less<>> histograms;
  const std::size_t num_counters = r.length(1u << 20, "counter table");
  for (std::size_t i = 0; i < num_counters; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    counters.emplace(std::move(name), value);
  }
  const std::size_t num_histograms = r.length(1u << 20, "histogram table");
  for (std::size_t i = 0; i < num_histograms; ++i) {
    std::string name = r.str();
    Histogram h;
    h.load_state(r);
    histograms.emplace(std::move(name), h);
  }
  counters_ = std::move(counters);
  histograms_ = std::move(histograms);
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    add(name, value);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, histogram);
    } else {
      it->second.merge(histogram);
    }
  }
}

}  // namespace mrts
