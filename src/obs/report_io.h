#pragma once
/// \file report_io.h
/// RunReport serializers: JSON (machine-readable, the trace-analyze golden
/// format), CSV (one flat metric table for spreadsheets) and markdown (the
/// human-readable default on stdout). All three are deterministic byte
/// streams for a given report: fixed key order, fixed row order, and the
/// same double formatting contract as the JSONL trace writer (integral
/// doubles < 2^53 print every digit, others use %.10g).

#include <iosfwd>
#include <string>

#include "obs/run_report.h"

namespace mrts::obs {

void write_report_json(std::ostream& os, const RunReport& report);
void write_report_csv(std::ostream& os, const RunReport& report);
void write_report_markdown(std::ostream& os, const RunReport& report);

/// Writes \p report to \p path in the format its extension picks: ".json"
/// -> JSON, ".csv" -> CSV, anything else -> markdown. Returns false when
/// the file cannot be opened.
bool write_report_file(const std::string& path, const RunReport& report);

}  // namespace mrts::obs
