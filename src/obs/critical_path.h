#pragma once
/// \file critical_path.h
/// Reconfiguration critical paths: the chains of back-to-back loads each
/// reconfiguration port streamed, the per-hop latency distribution, and the
/// headline "is reconfiguration hidden?" number. A chain is a maximal run
/// of load spans on one port where each next load starts exactly when the
/// previous one finishes — i.e. the port never drained, so every hop's
/// latency was on the dependency path of the last load's availability.
///
/// hidden_fraction compares the fabric-side reconfiguration busy time R
/// (all load-span cycles) against the core-side stall S actually paid for
/// it (sum of kBlockEnd blocking overheads): 1 - min(S, R) / R. 1.0 means
/// every streamed cycle overlapped useful execution (fully hidden, also the
/// degenerate R = 0 case); 0.0 means the application waited out every load.

#include <vector>

#include "obs/analysis.h"
#include "util/counters.h"
#include "util/types.h"

namespace mrts::obs {

/// One maximal back-to-back load chain on a reconfiguration port.
struct ReconfigChain {
  Grain grain = Grain::kFine;  ///< which port streamed the chain
  Cycles begin = 0;
  Cycles end = 0;
  unsigned hops = 0;  ///< number of loads in the chain
  Cycles cycles() const { return end - begin; }
};

struct CriticalPathAnalysis {
  std::vector<ReconfigChain> chains;  ///< sorted by begin, then grain
  unsigned longest_chain_hops = 0;    ///< hops of the longest-cycles chain
  Cycles longest_chain_cycles = 0;
  Grain longest_chain_grain = Grain::kFine;
  Histogram hop_latency;     ///< duration of every load span
  Cycles reconfig_busy = 0;  ///< total load-span cycles across both ports
  Cycles core_stall = 0;     ///< total blocking overhead paid by the core
  double hidden_fraction = 1.0;
};

CriticalPathAnalysis analyze_critical_path(
    const std::vector<TraceEvent>& events, const TraceShape& shape);

}  // namespace mrts::obs
