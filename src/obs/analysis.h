#pragma once
/// \file analysis.h
/// Shared front end of the obs/ trace-analysis engine: the analysis
/// configuration, fabric-shape/cycle-span inference and the per-unit event
/// slices every analysis pass (occupancy, cycle accounting, critical path)
/// starts from. All outputs of this subsystem are deterministic functions of
/// the event vector — analyses sort their inputs internally, so the same
/// trace produces byte-identical reports regardless of how many sweep
/// workers recorded it.

#include <cstdint>
#include <string>
#include <vector>

#include "util/trace.h"
#include "util/types.h"

namespace mrts::obs {

/// Caller-provided analysis parameters. Zeros mean "infer from the trace":
/// occupancy samples (kOccupancy carries total_prcs/total_cg in arg0/arg1)
/// are the primary shape source, with the highest FG/CG track index seen as
/// the fallback, so saved JSONL traces analyze without the original config.
struct AnalysisConfig {
  unsigned num_prcs = 0;  ///< fine-grained containers (0 = infer)
  unsigned num_cg = 0;    ///< coarse-grained fabrics (0 = infer)
};

/// Fabric shape + cycle span the analyses operate over.
struct TraceShape {
  unsigned num_prcs = 0;
  unsigned num_cg = 0;
  Cycles span_begin = 0;  ///< earliest event timestamp (0 for empty traces)
  Cycles span_end = 0;    ///< latest span end (at + duration)
  Cycles span() const { return span_end - span_begin; }
};

TraceShape infer_shape(const std::vector<TraceEvent>& events,
                       const AnalysisConfig& config);

/// One scheduled load on a reconfiguration port, as seen on a unit's track.
/// `repair` marks loads re-enqueued by the scrubber (matched to the first
/// load-start at or after each kScrubRepair mark on the same track).
struct LoadSpan {
  Cycles begin = 0;
  Cycles end = 0;
  Grain grain = Grain::kFine;
  bool repair = false;
};

/// Per-unit event slice: everything an occupancy/accounting pass needs to
/// classify one container's time, pre-sorted by cycle.
struct UnitEvents {
  std::int32_t track = 0;
  std::vector<LoadSpan> loads;     ///< sorted by begin
  std::vector<Cycles> completes;   ///< kReconfigComplete times, sorted
  Cycles quarantined_at = kNeverCycles;  ///< kNeverCycles = never
};

/// Slices \p events into one UnitEvents per fabric unit: index [0,
/// shape.num_prcs) are the FG containers, [shape.num_prcs, num_prcs +
/// num_cg) the CG fabrics. Events on tracks outside the shape are ignored.
std::vector<UnitEvents> slice_unit_events(const std::vector<TraceEvent>& events,
                                          const TraceShape& shape);

/// Display name of unit \p index under \p shape ("fg3" / "cg1").
std::string unit_name(const TraceShape& shape, std::size_t index);

}  // namespace mrts::obs
