#pragma once
/// \file cycle_accounting.h
/// Where did the cycles go? Every row (the core, each tenant, each fabric
/// unit) splits the run's cycle span into five buckets that sum *exactly* to
/// the span — no unattributed cycles, pinned by test. This is the paper's
/// evaluation question made queryable: speedup comes from moving executions
/// onto the fabric while hiding reconfiguration, so the interesting numbers
/// are precisely "execute vs reconfig-stall vs idle".
///
/// Bucket semantics per row kind:
///  * core — execute is block time net of blocking overhead (kBlockEnd.v0,
///    the cycles the ECU stalled the application waiting on a load),
///    reconfig-stall is that overhead, gaps between blocks are arbiter-idle
///    (the scheduler had nothing admitted+released to run) and the lead-in/
///    tail of the span is pure-idle.
///  * tenant — same split restricted to the tenant's own blocks;
///    arbiter-idle is the time inside the tenant's active window spent not
///    running (other tenants holding the core), pure-idle the span outside
///    its window. Scrub-repair is a unit-side cost and stays 0 here.
///  * unit (fg*/cg*) — mapped from its occupancy timeline: ready ->
///    execute, loading -> reconfig-stall, repairing -> scrub-repair,
///    empty/quarantined -> pure-idle (arbiter-idle stays 0).
///  * CMP core (core<i>) — from the core.slice events of a run_cmp trace
///    (sim/cmp.h): execute is slice time net of interconnect transfers,
///    reconfig-stall is those transfer cycles (v0), gaps between slices are
///    arbiter-idle and the lead-in/tail pure-idle. Single-core traces have
///    no core.slice events and produce no rows, so legacy reports are
///    unchanged.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/occupancy.h"
#include "util/types.h"

namespace mrts::obs {

enum class CycleBucket : std::uint8_t {
  kExecute = 0,
  kReconfigStall,
  kScrubRepair,
  kArbiterIdle,
  kPureIdle,
};
inline constexpr std::size_t kNumCycleBuckets = 5;

const char* to_string(CycleBucket bucket);

/// One accounted row; buckets sum exactly to the accounting span.
struct AccountingRow {
  std::string key;  ///< "core", "tenant.<id>", "fg<i>", "cg<j>"
  std::array<Cycles, kNumCycleBuckets> cycles{};

  Cycles total() const {
    Cycles t = 0;
    for (const Cycles c : cycles) t += c;
    return t;
  }
  Cycles operator[](CycleBucket b) const {
    return cycles[static_cast<std::size_t>(b)];
  }
};

struct CycleAccounting {
  Cycles span_begin = 0;
  Cycles span_end = 0;
  Cycles span() const { return span_end - span_begin; }
  AccountingRow core;
  /// One row per distinct tenant id observed on block events, ascending.
  /// Single-app traces produce one row for tenant 0.
  std::vector<AccountingRow> tenants;
  /// One row per fabric unit, FG first ("fg0".."cgN"), from \p occupancy.
  std::vector<AccountingRow> units;
  /// One row per CMP core observed on core.slice events ("core<i>",
  /// ascending core index). Empty for single-core traces.
  std::vector<AccountingRow> cores;
};

/// Accounts \p events against the occupancy timelines (computed by the
/// caller so the pass over the trace is shared with analyze_occupancy).
CycleAccounting account_cycles(const std::vector<TraceEvent>& events,
                               const TraceShape& shape,
                               const OccupancyAnalysis& occupancy);

}  // namespace mrts::obs
