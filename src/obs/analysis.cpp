#include "obs/analysis.h"

#include <algorithm>

namespace mrts::obs {
namespace {

bool is_fg_track(std::int32_t track) {
  return track >= kTrackFgBase && track < kTrackCgBase;
}

bool is_cg_track(std::int32_t track) {
  return track >= kTrackCgBase && track < kTrackCoreBase;
}

}  // namespace

TraceShape infer_shape(const std::vector<TraceEvent>& events,
                       const AnalysisConfig& config) {
  TraceShape shape;
  shape.num_prcs = config.num_prcs;
  shape.num_cg = config.num_cg;
  bool any = false;
  unsigned sampled_prcs = 0;
  unsigned sampled_cg = 0;
  unsigned track_prcs = 0;
  unsigned track_cg = 0;
  for (const TraceEvent& e : events) {
    const Cycles end = e.at + e.duration;
    if (!any) {
      shape.span_begin = e.at;
      shape.span_end = end;
      any = true;
    } else {
      shape.span_begin = std::min(shape.span_begin, e.at);
      shape.span_end = std::max(shape.span_end, end);
    }
    if (e.kind == TraceEventKind::kOccupancy) {
      sampled_prcs = std::max(sampled_prcs, e.arg0);
      sampled_cg = std::max(sampled_cg, e.arg1);
    }
    if (is_fg_track(e.track)) {
      track_prcs = std::max(
          track_prcs, static_cast<unsigned>(e.track - kTrackFgBase) + 1);
    } else if (is_cg_track(e.track)) {
      track_cg =
          std::max(track_cg, static_cast<unsigned>(e.track - kTrackCgBase) + 1);
    }
  }
  if (shape.num_prcs == 0) {
    shape.num_prcs = sampled_prcs > 0 ? sampled_prcs : track_prcs;
  }
  if (shape.num_cg == 0) shape.num_cg = sampled_cg > 0 ? sampled_cg : track_cg;
  return shape;
}

std::vector<UnitEvents> slice_unit_events(const std::vector<TraceEvent>& events,
                                          const TraceShape& shape) {
  std::vector<UnitEvents> units(shape.num_prcs + shape.num_cg);
  for (std::size_t i = 0; i < units.size(); ++i) {
    const bool fg = i < shape.num_prcs;
    units[i].track =
        fg ? kTrackFgBase + static_cast<std::int32_t>(i)
           : kTrackCgBase + static_cast<std::int32_t>(i - shape.num_prcs);
  }
  // Scrub marks per unit, matched to load starts below.
  std::vector<std::vector<Cycles>> scrub_marks(units.size());
  auto unit_of = [&](std::int32_t track) -> std::size_t {
    if (is_fg_track(track)) {
      const auto i = static_cast<std::size_t>(track - kTrackFgBase);
      return i < shape.num_prcs ? i : units.size();
    }
    if (is_cg_track(track)) {
      const auto i = static_cast<std::size_t>(track - kTrackCgBase);
      return i < shape.num_cg ? shape.num_prcs + i : units.size();
    }
    return units.size();
  };
  for (const TraceEvent& e : events) {
    const std::size_t u = unit_of(e.track);
    if (u >= units.size()) continue;
    const Grain grain = u < shape.num_prcs ? Grain::kFine : Grain::kCoarse;
    switch (e.kind) {
      case TraceEventKind::kReconfigStart:
      case TraceEventKind::kReconfigRetry:
        units[u].loads.push_back({e.at, e.at + e.duration, grain, false});
        break;
      case TraceEventKind::kReconfigComplete:
        units[u].completes.push_back(e.at);
        break;
      case TraceEventKind::kQuarantine:
        units[u].quarantined_at = std::min(units[u].quarantined_at, e.at);
        break;
      case TraceEventKind::kScrubRepair:
        scrub_marks[u].push_back(e.at);
        break;
      default:
        break;
    }
  }
  for (std::size_t u = 0; u < units.size(); ++u) {
    auto& loads = units[u].loads;
    std::sort(loads.begin(), loads.end(),
              [](const LoadSpan& a, const LoadSpan& b) {
                return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
              });
    std::sort(units[u].completes.begin(), units[u].completes.end());
    // A scrub mark tags the first not-yet-tagged load starting at or after
    // it: the repair load is enqueued at scrub time but may start later if
    // the reconfiguration port is busy.
    std::sort(scrub_marks[u].begin(), scrub_marks[u].end());
    std::size_t next = 0;
    for (const Cycles mark : scrub_marks[u]) {
      while (next < loads.size() &&
             (loads[next].begin < mark || loads[next].repair)) {
        ++next;
      }
      if (next < loads.size()) loads[next].repair = true;
    }
  }
  return units;
}

std::string unit_name(const TraceShape& shape, std::size_t index) {
  if (index < shape.num_prcs) return "fg" + std::to_string(index);
  return "cg" + std::to_string(index - shape.num_prcs);
}

}  // namespace mrts::obs
