#pragma once
/// \file occupancy.h
/// Fabric occupancy timelines derived from a trace: what every PRC / CG
/// fabric was doing at every cycle of the run, reduced to per-unit interval
/// lists plus the aggregate metrics migration-style policies need —
/// utilization, a fragmentation index and a "compaction opportunity" count
/// (how many occupied FG containers would have to move, on average, to make
/// the free space contiguous — the trigger metric of Mestra-style
/// defragmentation, PAPERS.md).
///
/// Classification per unit, highest priority first:
///   quarantined (from kQuarantine onward) > loading/repairing (inside a
///   scheduled load span; scrub-tagged loads are "repairing") > ready (after
///   any kReconfigComplete) > empty. Scheduled load spans are taken at their
///   enqueue-time estimates, so loads later cancelled by a re-selection
///   still show as loading (the fabric reserved the port for them).

#include <string>
#include <vector>

#include "obs/analysis.h"
#include "util/types.h"

namespace mrts::obs {

/// What one unit was doing over one interval.
enum class UnitState : std::uint8_t {
  kEmpty = 0,    ///< no configuration loaded (or evicted and not reloaded)
  kLoading,      ///< a scheduled load span is streaming into the unit
  kRepairing,    ///< a scrub-initiated repair load is streaming
  kReady,        ///< holds a loaded configuration (serving executions)
  kQuarantined,  ///< permanently disabled by a fault diagnosis
};
inline constexpr std::size_t kNumUnitStates = 5;

const char* to_string(UnitState state);

/// Half-open interval [begin, end) of one unit in one state. Timelines are
/// gapless partitions of the trace span: consecutive intervals share a
/// boundary and states always differ across it.
struct UnitInterval {
  Cycles begin = 0;
  Cycles end = 0;
  UnitState state = UnitState::kEmpty;
};

/// One unit's full-span timeline plus its per-state cycle totals.
struct UnitTimeline {
  std::string name;  ///< "fg0".."cg1"
  Grain grain = Grain::kFine;
  std::vector<UnitInterval> intervals;
  Cycles state_cycles[kNumUnitStates] = {};  ///< sums to the trace span
  double utilization = 0.0;  ///< ready cycles / span (0 for an empty span)
};

struct OccupancyAnalysis {
  std::vector<UnitTimeline> units;  ///< FG units first, then CG
  /// Ready unit-cycles / (units * span); 0.0 when there are no units of the
  /// grain (never NaN).
  double fg_utilization = 0.0;
  double cg_utilization = 0.0;
  /// Time-weighted FG fragmentation: at each instant with f > 0 free PRCs
  /// whose largest contiguous free run is r, the fragmentation is 1 - r/f
  /// (0 = one solid free block, ->1 = free space fully scattered).
  double fragmentation_index = 0.0;
  /// Time-weighted mean of (f - r): how many scattered free PRCs a
  /// compaction pass could consolidate into the largest run. 0 when the
  /// free space is already contiguous.
  double compaction_opportunity = 0.0;
};

/// Builds per-unit timelines and the aggregate occupancy metrics for
/// \p events under \p shape. Deterministic for a given event vector.
OccupancyAnalysis analyze_occupancy(const std::vector<TraceEvent>& events,
                                    const TraceShape& shape);

}  // namespace mrts::obs
