#include "obs/cycle_accounting.h"

#include <algorithm>
#include <map>

namespace mrts::obs {

const char* to_string(CycleBucket bucket) {
  switch (bucket) {
    case CycleBucket::kExecute: return "execute";
    case CycleBucket::kReconfigStall: return "reconfig_stall";
    case CycleBucket::kScrubRepair: return "scrub_repair";
    case CycleBucket::kArbiterIdle: return "arbiter_idle";
    case CycleBucket::kPureIdle: return "pure_idle";
  }
  return "?";
}

namespace {

struct BlockSpan {
  Cycles at = 0;
  Cycles end = 0;
  Cycles stall = 0;  ///< blocking overhead inside the block (kBlockEnd.v0)
  std::uint32_t tenant = 0;
};

void set(AccountingRow& row, CycleBucket bucket, Cycles value) {
  row.cycles[static_cast<std::size_t>(bucket)] = value;
}

/// Fills one core/tenant-shaped row from a sorted, non-overlapping block
/// list: execute + reconfig-stall inside the blocks, arbiter-idle between
/// them, pure-idle outside the [first, last] window. Sums to the span by
/// construction (blocks time-share one core, so they never overlap).
void account_blocks(AccountingRow& row, const std::vector<BlockSpan>& blocks,
                    Cycles span_begin, Cycles span_end) {
  const Cycles span = span_end - span_begin;
  if (blocks.empty()) {
    set(row, CycleBucket::kPureIdle, span);
    return;
  }
  Cycles busy = 0;
  Cycles stall = 0;
  for (const BlockSpan& b : blocks) {
    busy += b.end - b.at;
    stall += b.stall;
  }
  const Cycles window = blocks.back().end - blocks.front().at;
  set(row, CycleBucket::kExecute, busy - stall);
  set(row, CycleBucket::kReconfigStall, stall);
  set(row, CycleBucket::kArbiterIdle, window - busy);
  set(row, CycleBucket::kPureIdle, span - window);
}

}  // namespace

CycleAccounting account_cycles(const std::vector<TraceEvent>& events,
                               const TraceShape& shape,
                               const OccupancyAnalysis& occupancy) {
  CycleAccounting acc;
  acc.span_begin = shape.span_begin;
  acc.span_end = shape.span_end;

  std::vector<BlockSpan> blocks;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kBlockEnd) continue;
    BlockSpan b;
    b.at = e.at;
    b.end = e.at + e.duration;
    b.stall = std::min(e.duration, static_cast<Cycles>(e.v0));
    b.tenant = e.tenant;
    blocks.push_back(b);
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const BlockSpan& a, const BlockSpan& b) { return a.at < b.at; });

  acc.core.key = "core";
  account_blocks(acc.core, blocks, acc.span_begin, acc.span_end);

  std::map<std::uint32_t, std::vector<BlockSpan>> by_tenant;
  for (const BlockSpan& b : blocks) by_tenant[b.tenant].push_back(b);
  for (const auto& [tenant, own] : by_tenant) {
    AccountingRow row;
    row.key = "tenant." + std::to_string(tenant);
    account_blocks(row, own, acc.span_begin, acc.span_end);
    acc.tenants.push_back(std::move(row));
  }

  // CMP per-core rows from core.slice spans: the slice's interconnect
  // transfer cycles (v0) play the role of the stall bucket.
  std::map<std::uint32_t, std::vector<BlockSpan>> by_core;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kCoreSlice) continue;
    BlockSpan b;
    b.at = e.at;
    b.end = e.at + e.duration;
    b.stall = std::min(e.duration, static_cast<Cycles>(e.v0));
    b.tenant = e.tenant;
    by_core[e.arg0].push_back(b);
  }
  for (auto& [core, slices] : by_core) {
    std::sort(slices.begin(), slices.end(),
              [](const BlockSpan& a, const BlockSpan& b) { return a.at < b.at; });
    AccountingRow row;
    row.key = "core" + std::to_string(core);
    account_blocks(row, slices, acc.span_begin, acc.span_end);
    acc.cores.push_back(std::move(row));
  }

  for (const UnitTimeline& tl : occupancy.units) {
    AccountingRow row;
    row.key = tl.name;
    set(row, CycleBucket::kExecute,
        tl.state_cycles[static_cast<std::size_t>(UnitState::kReady)]);
    set(row, CycleBucket::kReconfigStall,
        tl.state_cycles[static_cast<std::size_t>(UnitState::kLoading)]);
    set(row, CycleBucket::kScrubRepair,
        tl.state_cycles[static_cast<std::size_t>(UnitState::kRepairing)]);
    set(row, CycleBucket::kPureIdle,
        tl.state_cycles[static_cast<std::size_t>(UnitState::kEmpty)] +
            tl.state_cycles[static_cast<std::size_t>(
                UnitState::kQuarantined)]);
    acc.units.push_back(std::move(row));
  }
  return acc;
}

}  // namespace mrts::obs
