#include "obs/report_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace mrts::obs {
namespace {

/// Same contract as the JSONL trace writer: integral doubles (exact up to
/// 2^53) emit every digit, the rest keeps %.10g — deterministic bytes for
/// deterministic values.
std::string fmt(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0 /* 2^53 */) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  return buf;
}

void json_row(std::ostream& os, const AccountingRow& row, const char* label,
              const char* indent) {
  os << indent << "{\"" << label << "\":\"" << row.key << "\"";
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    os << ",\"" << to_string(static_cast<CycleBucket>(b))
       << "\":" << row.cycles[b];
  }
  os << ",\"total\":" << row.total() << "}";
}

void json_histogram(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.count() << ",\"mean\":" << fmt(h.mean())
     << ",\"p50\":" << fmt(h.percentile(0.50))
     << ",\"p90\":" << fmt(h.percentile(0.90))
     << ",\"p99\":" << fmt(h.percentile(0.99)) << ",\"min\":" << fmt(h.min())
     << ",\"max\":" << fmt(h.max()) << "}";
}

}  // namespace

void write_report_json(std::ostream& os, const RunReport& r) {
  os << "{\n";
  os << "  \"schema\": \"mrts.run_report.v1\",\n";
  os << "  \"events\": " << r.total_events << ",\n";
  os << "  \"shape\": {\"num_prcs\": " << r.shape.num_prcs
     << ", \"num_cg\": " << r.shape.num_cg << "},\n";
  os << "  \"span\": {\"begin\": " << r.shape.span_begin
     << ", \"end\": " << r.shape.span_end
     << ", \"cycles\": " << r.shape.span() << "},\n";

  os << "  \"accounting\": {\n";
  os << "    \"core\": ";
  json_row(os, r.accounting.core, "row", "");
  os << ",\n    \"tenants\": [";
  for (std::size_t i = 0; i < r.accounting.tenants.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    json_row(os, r.accounting.tenants[i], "row", "      ");
  }
  os << (r.accounting.tenants.empty() ? "" : "\n    ") << "],\n";
  os << "    \"units\": [";
  for (std::size_t i = 0; i < r.accounting.units.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    json_row(os, r.accounting.units[i], "row", "      ");
  }
  os << (r.accounting.units.empty() ? "" : "\n    ") << "]";
  // CMP per-core rows exist only for run_cmp traces; the key is omitted
  // entirely otherwise so single-core reports stay byte-identical.
  if (!r.accounting.cores.empty()) {
    os << ",\n    \"cores\": [";
    for (std::size_t i = 0; i < r.accounting.cores.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n");
      json_row(os, r.accounting.cores[i], "row", "      ");
    }
    os << "\n    ]";
  }
  os << "\n  },\n";

  os << "  \"occupancy\": {\n";
  os << "    \"fg_utilization\": " << fmt(r.occupancy.fg_utilization) << ",\n";
  os << "    \"cg_utilization\": " << fmt(r.occupancy.cg_utilization) << ",\n";
  os << "    \"fragmentation_index\": " << fmt(r.occupancy.fragmentation_index)
     << ",\n";
  os << "    \"compaction_opportunity\": "
     << fmt(r.occupancy.compaction_opportunity) << ",\n";
  os << "    \"units\": [";
  for (std::size_t i = 0; i < r.occupancy.units.size(); ++i) {
    const UnitTimeline& tl = r.occupancy.units[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "      {\"unit\":\"" << tl.name
       << "\",\"utilization\":" << fmt(tl.utilization)
       << ",\"intervals\":" << tl.intervals.size();
    for (std::size_t s = 0; s < kNumUnitStates; ++s) {
      os << ",\"" << to_string(static_cast<UnitState>(s))
         << "\":" << tl.state_cycles[s];
    }
    os << "}";
  }
  os << (r.occupancy.units.empty() ? "" : "\n    ") << "]\n";
  os << "  },\n";

  const CriticalPathAnalysis& cp = r.critical_path;
  os << "  \"critical_path\": {\n";
  os << "    \"chains\": " << cp.chains.size() << ",\n";
  os << "    \"longest_chain_hops\": " << cp.longest_chain_hops << ",\n";
  os << "    \"longest_chain_cycles\": " << cp.longest_chain_cycles << ",\n";
  os << "    \"longest_chain_grain\": \"" << to_string(cp.longest_chain_grain)
     << "\",\n";
  os << "    \"reconfig_busy_cycles\": " << cp.reconfig_busy << ",\n";
  os << "    \"core_stall_cycles\": " << cp.core_stall << ",\n";
  os << "    \"hidden_fraction\": " << fmt(cp.hidden_fraction) << ",\n";
  os << "    \"hop_latency\": ";
  json_histogram(os, cp.hop_latency);
  os << "\n  },\n";

  os << "  \"tenant_latency\": [";
  for (std::size_t i = 0; i < r.tenant_latency.size(); ++i) {
    const TenantLatency& t = r.tenant_latency[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"tenant\":" << t.tenant << ",\"admitted\":" << t.admitted
       << ",\"bounced\":" << t.bounced << ",\"completed\":" << t.completed
       << ",\"min\":" << t.min << ",\"p50\":" << t.p50 << ",\"p99\":" << t.p99
       << ",\"max\":" << t.max << "}";
  }
  os << (r.tenant_latency.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
}

void write_report_csv(std::ostream& os, const RunReport& r) {
  os << "section,row,metric,value\n";
  os << "run,trace,events," << r.total_events << "\n";
  os << "run,trace,span_begin," << r.shape.span_begin << "\n";
  os << "run,trace,span_end," << r.shape.span_end << "\n";
  os << "run,trace,span_cycles," << r.shape.span() << "\n";
  os << "run,fabric,num_prcs," << r.shape.num_prcs << "\n";
  os << "run,fabric,num_cg," << r.shape.num_cg << "\n";
  auto csv_row = [&os](const AccountingRow& row) {
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      os << "accounting," << row.key << ","
         << to_string(static_cast<CycleBucket>(b)) << "," << row.cycles[b]
         << "\n";
    }
    os << "accounting," << row.key << ",total," << row.total() << "\n";
  };
  csv_row(r.accounting.core);
  for (const AccountingRow& row : r.accounting.tenants) csv_row(row);
  for (const AccountingRow& row : r.accounting.units) csv_row(row);
  for (const AccountingRow& row : r.accounting.cores) csv_row(row);
  os << "occupancy,fabric,fg_utilization," << fmt(r.occupancy.fg_utilization)
     << "\n";
  os << "occupancy,fabric,cg_utilization," << fmt(r.occupancy.cg_utilization)
     << "\n";
  os << "occupancy,fabric,fragmentation_index,"
     << fmt(r.occupancy.fragmentation_index) << "\n";
  os << "occupancy,fabric,compaction_opportunity,"
     << fmt(r.occupancy.compaction_opportunity) << "\n";
  for (const UnitTimeline& tl : r.occupancy.units) {
    os << "occupancy," << tl.name << ",utilization," << fmt(tl.utilization)
       << "\n";
  }
  const CriticalPathAnalysis& cp = r.critical_path;
  os << "critical_path,reconfig,chains," << cp.chains.size() << "\n";
  os << "critical_path,reconfig,longest_chain_hops," << cp.longest_chain_hops
     << "\n";
  os << "critical_path,reconfig,longest_chain_cycles,"
     << cp.longest_chain_cycles << "\n";
  os << "critical_path,reconfig,reconfig_busy_cycles," << cp.reconfig_busy
     << "\n";
  os << "critical_path,reconfig,core_stall_cycles," << cp.core_stall << "\n";
  os << "critical_path,reconfig,hidden_fraction," << fmt(cp.hidden_fraction)
     << "\n";
  for (const TenantLatency& t : r.tenant_latency) {
    const std::string key = "tenant." + std::to_string(t.tenant);
    os << "latency," << key << ",admitted," << t.admitted << "\n";
    os << "latency," << key << ",bounced," << t.bounced << "\n";
    os << "latency," << key << ",completed," << t.completed << "\n";
    os << "latency," << key << ",p50," << t.p50 << "\n";
    os << "latency," << key << ",p99," << t.p99 << "\n";
  }
}

void write_report_markdown(std::ostream& os, const RunReport& r) {
  os << "# Run report\n\n";
  os << "- events: " << r.total_events << "\n";
  os << "- span: [" << r.shape.span_begin << ", " << r.shape.span_end
     << ") = " << r.shape.span() << " cycles\n";
  os << "- fabric: " << r.shape.num_prcs << " PRCs, " << r.shape.num_cg
     << " CG fabrics\n\n";

  os << "## Cycle accounting\n\n";
  os << "| row | execute | reconfig_stall | scrub_repair | arbiter_idle | "
        "pure_idle | total |\n";
  os << "|---|---|---|---|---|---|---|\n";
  auto md_row = [&os](const AccountingRow& row) {
    os << "| " << row.key;
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      os << " | " << row.cycles[b];
    }
    os << " | " << row.total() << " |\n";
  };
  md_row(r.accounting.core);
  for (const AccountingRow& row : r.accounting.tenants) md_row(row);
  for (const AccountingRow& row : r.accounting.units) md_row(row);
  for (const AccountingRow& row : r.accounting.cores) md_row(row);

  os << "\n## Occupancy\n\n";
  os << "- FG utilization: " << fmt(r.occupancy.fg_utilization) << "\n";
  os << "- CG utilization: " << fmt(r.occupancy.cg_utilization) << "\n";
  os << "- fragmentation index: " << fmt(r.occupancy.fragmentation_index)
     << "\n";
  os << "- compaction opportunity: "
     << fmt(r.occupancy.compaction_opportunity) << " PRCs\n";
  if (!r.occupancy.units.empty()) {
    os << "\n| unit | utilization | intervals | ready | loading | repairing "
          "| empty | quarantined |\n";
    os << "|---|---|---|---|---|---|---|---|\n";
    for (const UnitTimeline& tl : r.occupancy.units) {
      os << "| " << tl.name << " | " << fmt(tl.utilization) << " | "
         << tl.intervals.size() << " | "
         << tl.state_cycles[static_cast<std::size_t>(UnitState::kReady)]
         << " | "
         << tl.state_cycles[static_cast<std::size_t>(UnitState::kLoading)]
         << " | "
         << tl.state_cycles[static_cast<std::size_t>(UnitState::kRepairing)]
         << " | "
         << tl.state_cycles[static_cast<std::size_t>(UnitState::kEmpty)]
         << " | "
         << tl.state_cycles[static_cast<std::size_t>(UnitState::kQuarantined)]
         << " |\n";
    }
  }

  const CriticalPathAnalysis& cp = r.critical_path;
  os << "\n## Reconfiguration critical path\n\n";
  os << "- chains: " << cp.chains.size() << ", longest "
     << cp.longest_chain_hops << " hops / " << cp.longest_chain_cycles
     << " cycles (" << to_string(cp.longest_chain_grain) << " port)\n";
  os << "- reconfig busy: " << cp.reconfig_busy
     << " cycles, core stall paid: " << cp.core_stall << " cycles\n";
  os << "- hidden fraction: " << fmt(cp.hidden_fraction) << "\n";
  if (cp.hop_latency.count() > 0) {
    os << "- hop latency: p50 " << fmt(cp.hop_latency.percentile(0.50))
       << ", p90 " << fmt(cp.hop_latency.percentile(0.90)) << ", p99 "
       << fmt(cp.hop_latency.percentile(0.99)) << ", max "
       << fmt(cp.hop_latency.max()) << " cycles over "
       << cp.hop_latency.count() << " loads\n";
  }

  if (!r.tenant_latency.empty()) {
    os << "\n## Tenant latency (admission to completion)\n\n";
    os << "| tenant | admitted | bounced | completed | min | p50 | p99 | max "
          "|\n";
    os << "|---|---|---|---|---|---|---|---|\n";
    for (const TenantLatency& t : r.tenant_latency) {
      os << "| " << t.tenant << " | " << t.admitted << " | " << t.bounced
         << " | " << t.completed << " | " << t.min << " | " << t.p50 << " | "
         << t.p99 << " | " << t.max << " |\n";
    }
  }
}

bool write_report_file(const std::string& path, const RunReport& report) {
  std::ofstream os(path);
  if (!os) return false;
  const auto dot = path.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".json") {
    write_report_json(os, report);
  } else if (ext == ".csv") {
    write_report_csv(os, report);
  } else {
    write_report_markdown(os, report);
  }
  return os.good();
}

}  // namespace mrts::obs
