#pragma once
/// \file run_report.h
/// The RunReport: everything the analysis engine derives from one trace,
/// in one struct, serialized to JSON / CSV / markdown by obs/report_io.h
/// and surfaced by `mrts_cli trace-analyze` and `run --report`. A report is
/// a deterministic function of the event vector — same trace, same bytes.

#include <cstdint>
#include <vector>

#include "obs/analysis.h"
#include "obs/critical_path.h"
#include "obs/cycle_accounting.h"
#include "obs/occupancy.h"
#include "util/types.h"

namespace mrts::obs {

/// Per-tenant admission-to-completion latency, from the scheduler's
/// kTenantAdmission / kTenantCompletion events (run_multi_tenant stamps
/// them). Percentiles are exact nearest-rank over the completed tasks'
/// latencies — the numbers a future mrts_serve SLO check would gate on.
struct TenantLatency {
  std::uint32_t tenant = 0;
  std::size_t admitted = 0;   ///< admission decisions that let the task run
  std::size_t bounced = 0;    ///< admission decisions that rejected it
  std::size_t completed = 0;  ///< tasks with a completion event
  Cycles min = 0;
  Cycles p50 = 0;
  Cycles p99 = 0;
  Cycles max = 0;
};

struct RunReport {
  std::size_t total_events = 0;
  TraceShape shape;
  CycleAccounting accounting;
  OccupancyAnalysis occupancy;
  CriticalPathAnalysis critical_path;
  std::vector<TenantLatency> tenant_latency;  ///< ascending tenant id
};

/// Runs every analysis pass over \p events. \p config overrides the fabric
/// shape when the trace alone cannot pin it (see AnalysisConfig).
RunReport analyze_trace(const std::vector<TraceEvent>& events,
                        const AnalysisConfig& config = {});

}  // namespace mrts::obs
