#include "obs/critical_path.h"

#include <algorithm>

namespace mrts::obs {

CriticalPathAnalysis analyze_critical_path(
    const std::vector<TraceEvent>& events, const TraceShape& shape) {
  CriticalPathAnalysis cp;

  // Load spans grouped by port (grain), across all units of that grain.
  const std::vector<UnitEvents> units = slice_unit_events(events, shape);
  std::vector<LoadSpan> port[2];  // [0] = FG, [1] = CG
  for (const UnitEvents& unit : units) {
    for (const LoadSpan& load : unit.loads) {
      port[load.grain == Grain::kFine ? 0 : 1].push_back(load);
    }
  }
  for (auto& loads : port) {
    std::sort(loads.begin(), loads.end(),
              [](const LoadSpan& a, const LoadSpan& b) {
                return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
              });
    for (const LoadSpan& load : loads) {
      const Cycles dur = load.end - load.begin;
      cp.reconfig_busy += dur;
      cp.hop_latency.observe(static_cast<double>(dur));
    }
  }

  for (int p = 0; p < 2; ++p) {
    const Grain grain = p == 0 ? Grain::kFine : Grain::kCoarse;
    for (std::size_t i = 0; i < port[p].size();) {
      ReconfigChain chain;
      chain.grain = grain;
      chain.begin = port[p][i].begin;
      chain.end = port[p][i].end;
      chain.hops = 1;
      ++i;
      while (i < port[p].size() && port[p][i].begin == chain.end) {
        chain.end = port[p][i].end;
        ++chain.hops;
        ++i;
      }
      cp.chains.push_back(chain);
    }
  }
  std::sort(cp.chains.begin(), cp.chains.end(),
            [](const ReconfigChain& a, const ReconfigChain& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.grain == Grain::kFine && b.grain == Grain::kCoarse;
            });
  for (const ReconfigChain& chain : cp.chains) {
    if (chain.cycles() > cp.longest_chain_cycles ||
        (chain.cycles() == cp.longest_chain_cycles &&
         chain.hops > cp.longest_chain_hops)) {
      cp.longest_chain_cycles = chain.cycles();
      cp.longest_chain_hops = chain.hops;
      cp.longest_chain_grain = chain.grain;
    }
  }

  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kBlockEnd) continue;
    cp.core_stall += std::min(e.duration, static_cast<Cycles>(e.v0));
  }
  if (cp.reconfig_busy > 0) {
    cp.hidden_fraction =
        1.0 - static_cast<double>(std::min(cp.core_stall, cp.reconfig_busy)) /
                  static_cast<double>(cp.reconfig_busy);
  }
  return cp;
}

}  // namespace mrts::obs
