#include "obs/run_report.h"

#include <algorithm>
#include <map>

namespace mrts::obs {
namespace {

/// Exact nearest-rank percentile over a sorted sample.
Cycles nearest_rank(const std::vector<Cycles>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  return sorted[std::min(index, sorted.size()) - 1];
}

}  // namespace

RunReport analyze_trace(const std::vector<TraceEvent>& events,
                        const AnalysisConfig& config) {
  RunReport report;
  report.total_events = events.size();
  report.shape = infer_shape(events, config);
  report.occupancy = analyze_occupancy(events, report.shape);
  report.accounting = account_cycles(events, report.shape, report.occupancy);
  report.critical_path = analyze_critical_path(events, report.shape);

  struct Samples {
    std::size_t admitted = 0;
    std::size_t bounced = 0;
    std::vector<Cycles> latencies;
  };
  std::map<std::uint32_t, Samples> by_tenant;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kTenantAdmission) {
      Samples& s = by_tenant[e.tenant];
      if (e.arg1 != 0) {
        ++s.admitted;
      } else {
        ++s.bounced;
      }
    } else if (e.kind == TraceEventKind::kTenantCompletion) {
      by_tenant[e.tenant].latencies.push_back(e.duration);
    }
  }
  for (auto& [tenant, s] : by_tenant) {
    std::sort(s.latencies.begin(), s.latencies.end());
    TenantLatency lat;
    lat.tenant = tenant;
    lat.admitted = s.admitted;
    lat.bounced = s.bounced;
    lat.completed = s.latencies.size();
    if (!s.latencies.empty()) {
      lat.min = s.latencies.front();
      lat.max = s.latencies.back();
      lat.p50 = nearest_rank(s.latencies, 0.50);
      lat.p99 = nearest_rank(s.latencies, 0.99);
    }
    report.tenant_latency.push_back(lat);
  }
  return report;
}

}  // namespace mrts::obs
