#include "obs/occupancy.h"

#include <algorithm>

namespace mrts::obs {

const char* to_string(UnitState state) {
  switch (state) {
    case UnitState::kEmpty: return "empty";
    case UnitState::kLoading: return "loading";
    case UnitState::kRepairing: return "repairing";
    case UnitState::kReady: return "ready";
    case UnitState::kQuarantined: return "quarantined";
  }
  return "?";
}

namespace {

/// State of one unit at cycle \p t (start of an elementary segment).
UnitState state_at(const UnitEvents& unit, Cycles t) {
  if (t >= unit.quarantined_at) return UnitState::kQuarantined;
  for (const LoadSpan& load : unit.loads) {
    if (load.begin > t) break;  // sorted by begin
    if (t < load.end) return load.repair ? UnitState::kRepairing
                                         : UnitState::kLoading;
  }
  const auto it =
      std::upper_bound(unit.completes.begin(), unit.completes.end(), t);
  return it != unit.completes.begin() ? UnitState::kReady : UnitState::kEmpty;
}

UnitTimeline build_timeline(const UnitEvents& unit, const TraceShape& shape,
                            std::size_t index) {
  UnitTimeline tl;
  tl.name = unit_name(shape, index);
  tl.grain = index < shape.num_prcs ? Grain::kFine : Grain::kCoarse;
  if (shape.span() == 0) return tl;

  std::vector<Cycles> points;
  points.push_back(shape.span_begin);
  points.push_back(shape.span_end);
  for (const LoadSpan& load : unit.loads) {
    points.push_back(load.begin);
    points.push_back(load.end);
  }
  for (const Cycles c : unit.completes) points.push_back(c);
  if (unit.quarantined_at != kNeverCycles) {
    points.push_back(unit.quarantined_at);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const Cycles begin = std::max(points[i], shape.span_begin);
    const Cycles end = std::min(points[i + 1], shape.span_end);
    if (begin >= end) continue;  // outside the span (e.g. a late load end)
    const UnitState state = state_at(unit, begin);
    if (!tl.intervals.empty() && tl.intervals.back().state == state &&
        tl.intervals.back().end == begin) {
      tl.intervals.back().end = end;
    } else {
      tl.intervals.push_back({begin, end, state});
    }
  }
  for (const UnitInterval& iv : tl.intervals) {
    tl.state_cycles[static_cast<std::size_t>(iv.state)] += iv.end - iv.begin;
  }
  const Cycles ready = tl.state_cycles[static_cast<std::size_t>(
      UnitState::kReady)];
  tl.utilization = static_cast<double>(ready) /
                   static_cast<double>(shape.span());
  return tl;
}

double grain_utilization(const std::vector<UnitTimeline>& units, Grain grain,
                         Cycles span) {
  Cycles ready = 0;
  std::size_t n = 0;
  for (const UnitTimeline& tl : units) {
    if (tl.grain != grain) continue;
    ++n;
    ready += tl.state_cycles[static_cast<std::size_t>(UnitState::kReady)];
  }
  if (n == 0 || span == 0) return 0.0;
  return static_cast<double>(ready) / (static_cast<double>(n) *
                                       static_cast<double>(span));
}

}  // namespace

OccupancyAnalysis analyze_occupancy(const std::vector<TraceEvent>& events,
                                    const TraceShape& shape) {
  OccupancyAnalysis occ;
  const std::vector<UnitEvents> units = slice_unit_events(events, shape);
  occ.units.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    occ.units.push_back(build_timeline(units[i], shape, i));
  }
  occ.fg_utilization = grain_utilization(occ.units, Grain::kFine, shape.span());
  occ.cg_utilization =
      grain_utilization(occ.units, Grain::kCoarse, shape.span());

  // Fragmentation / compaction over the FG containers: sweep the union of
  // all FG interval boundaries and measure the free set's shape on each
  // elementary segment.
  if (shape.num_prcs > 0 && shape.span() > 0) {
    std::vector<Cycles> points{shape.span_begin, shape.span_end};
    for (std::size_t u = 0; u < shape.num_prcs; ++u) {
      for (const UnitInterval& iv : occ.units[u].intervals) {
        points.push_back(iv.begin);
      }
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    std::vector<std::size_t> cursor(shape.num_prcs, 0);
    double frag_weighted = 0.0;
    double compaction_weighted = 0.0;
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      const Cycles begin = points[i];
      const double len = static_cast<double>(points[i + 1] - begin);
      unsigned free_count = 0;
      unsigned largest_run = 0;
      unsigned run = 0;
      for (std::size_t u = 0; u < shape.num_prcs; ++u) {
        const auto& ivs = occ.units[u].intervals;
        while (cursor[u] < ivs.size() && ivs[cursor[u]].end <= begin) {
          ++cursor[u];
        }
        const bool free =
            cursor[u] < ivs.size() && ivs[cursor[u]].begin <= begin &&
            ivs[cursor[u]].state == UnitState::kEmpty;
        if (free) {
          ++free_count;
          ++run;
          largest_run = std::max(largest_run, run);
        } else {
          run = 0;
        }
      }
      if (free_count > 0) {
        frag_weighted += len * (1.0 - static_cast<double>(largest_run) /
                                          static_cast<double>(free_count));
        compaction_weighted +=
            len * static_cast<double>(free_count - largest_run);
      }
    }
    const double span = static_cast<double>(shape.span());
    occ.fragmentation_index = frag_weighted / span;
    occ.compaction_opportunity = compaction_weighted / span;
  }
  return occ;
}

}  // namespace mrts::obs
