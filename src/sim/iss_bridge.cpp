#include "sim/iss_bridge.h"

#include <stdexcept>

#include "isa/trigger.h"

namespace mrts {

IssApplication compile_trace_to_binary(const ApplicationTrace& trace,
                                       std::size_t blob_base) {
  IssApplication app;
  std::size_t cursor = blob_base;

  for (const auto& block : trace.blocks) {
    const std::vector<std::uint8_t> blob = encode_trigger(block.programmed);

    riscsim::Instr trig;
    trig.op = riscsim::Op::kTrig;
    trig.imm = static_cast<std::int32_t>(cursor);
    trig.target = static_cast<std::uint32_t>(blob.size());
    app.program.code.push_back(trig);

    app.data_segment.emplace_back(cursor, blob);
    cursor += blob.size();

    for (const auto& ev : block.events) {
      if (ev.gap_before > 0) {
        riscsim::Instr wait;
        wait.op = riscsim::Op::kWait;
        wait.imm = static_cast<std::int32_t>(ev.gap_before);
        app.program.code.push_back(wait);
      }
      riscsim::Instr kexec;
      kexec.op = riscsim::Op::kKexec;
      kexec.imm = static_cast<std::int32_t>(raw(ev.kernel));
      app.program.code.push_back(kexec);
    }
    if (block.tail_gap > 0) {
      riscsim::Instr tail;
      tail.op = riscsim::Op::kWait;
      tail.imm = static_cast<std::int32_t>(block.tail_gap);
      app.program.code.push_back(tail);
    }
  }
  riscsim::Instr halt;
  halt.op = riscsim::Op::kHalt;
  app.program.code.push_back(halt);
  app.program.lines.assign(app.program.code.size(), 0);
  app.program.id = riscsim::next_program_id();  // immutable from here on
  app.memory_bytes = cursor;
  return app;
}

RtsCoprocessor::RtsCoprocessor(RuntimeSystem& rts) : rts_(&rts) {}

void RtsCoprocessor::flush(Cycles now) {
  if (!in_block_) return;
  BlockObservation obs;
  obs.functional_block = block_;
  for (const auto& [kid, a] : acc_) {
    ObservedKernelStats stats;
    stats.kernel = KernelId{kid};
    stats.executions = a.executions;
    stats.time_to_first = a.first_start;
    stats.time_between =
        a.executions > 1.0
            ? static_cast<Cycles>(static_cast<double>(a.gap_sum) /
                                  (a.executions - 1.0))
            : Cycles{0};
    obs.kernels.push_back(stats);
  }
  rts_->on_block_end(obs, now);
  acc_.clear();
  in_block_ = false;
}

Cycles RtsCoprocessor::trigger(const std::vector<std::uint8_t>& bytes,
                               Cycles now) {
  flush(now);
  const TriggerInstruction ti = decode_trigger(bytes);
  block_ = ti.functional_block;
  block_start_ = now;
  in_block_ = true;
  const SelectionOutcome outcome = rts_->on_trigger(ti, now);
  return outcome.blocking_overhead;
}

Cycles RtsCoprocessor::kernel(std::uint32_t kernel_id, Cycles now) {
  if (!in_block_) {
    throw std::runtime_error(
        "RtsCoprocessor: kexec before any trigger instruction");
  }
  const ExecOutcome out = rts_->execute_kernel(KernelId{kernel_id}, now);
  Acc& a = acc_[kernel_id];
  const Cycles rel_start = now - block_start_;
  if (!a.seen) {
    a.first_start = rel_start;
    a.seen = true;
  } else {
    a.gap_sum += rel_start - a.last_end;
  }
  a.executions += 1.0;
  a.last_end = rel_start + out.latency;
  return out.latency;
}

void RtsCoprocessor::finish(Cycles now) { flush(now); }

IssRunResult run_binary(const IssApplication& app, RuntimeSystem& rts) {
  rts.reset();
  ScratchpadParams mem;
  mem.size_bytes = std::max<std::size_t>(64 * 1024, app.memory_bytes + 1024);
  riscsim::Cpu cpu(mem);
  for (const auto& [addr, bytes] : app.data_segment) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      cpu.memory().write8(addr + i, bytes[i]);
    }
  }
  RtsCoprocessor bridge(rts);
  cpu.attach_coprocessor(&bridge);
  const riscsim::RunResult run =
      cpu.run(app.program, app.program.code.size() + 16);
  bridge.finish(run.cycles);

  IssRunResult out;
  out.cycles = run.cycles;
  out.instructions = run.instructions;
  out.halted = run.halted;
  return out;
}

}  // namespace mrts
