#pragma once
/// \file multi_app.h
/// Multi-task simulation: several applications time-share the core processor
/// (round-robin at functional-block granularity) while their run-time
/// systems share one reconfigurable fabric. This is the "available fabric
/// shared among various tasks" scenario of Section 1: one task's
/// installation may evict another task's data paths, and each task's RTS
/// must re-select under whatever it finds when its turn comes.
///
/// Use MRts's shared-fabric constructor to bind every task's RTS to the
/// same FabricManager.

#include <array>
#include <string>
#include <vector>

#include "rts/rts_interface.h"
#include "sim/schedule.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;

/// One task: a run-time system instance plus its application trace.
struct Task {
  std::string name;
  RuntimeSystem* rts = nullptr;           ///< not owned
  const ApplicationTrace* trace = nullptr;  ///< not owned
  /// Scheduling weight: number of consecutive functional blocks the task
  /// executes per round-robin turn (>= 1). Higher weight = larger share of
  /// the core and fewer fabric-eviction boundaries.
  unsigned slice_blocks = 1;
  /// Optional flight recorder for this task's block begin/end events (not
  /// owned). Typically the same recorder attached to the task's RTS.
  TraceRecorder* recorder = nullptr;
};

struct TaskRunResult {
  std::string name;
  /// Core cycles spent executing this task's blocks (its share of the
  /// timeline).
  Cycles active_cycles = 0;
  /// Absolute cycle at which the task's last block finished.
  Cycles finished_at = 0;
  std::vector<Cycles> block_cycles;
  std::array<std::uint64_t, kNumImplKinds> impl_executions{};
};

struct TimeSlicedResult {
  Cycles total_cycles = 0;  ///< end of the last block of any task
  std::vector<TaskRunResult> tasks;
};

/// Runs all tasks to completion, weighted round-robin (slice_blocks
/// functional blocks per turn) on the single core. Tasks are NOT reset
/// (callers decide whether learned state carries over); the shared fabric
/// keeps whatever the interleaved installations left behind. Throws
/// std::invalid_argument on null task members or zero slice weights.
TimeSlicedResult run_time_sliced(const std::vector<Task>& tasks,
                                 Cycles start = 0);

}  // namespace mrts
