#pragma once
/// \file multi_app.h
/// Multi-task simulation: several applications time-share the core processor
/// while their run-time systems share one reconfigurable fabric. This is the
/// "available fabric shared among various tasks" scenario of Section 1: one
/// task's installation may evict another task's data paths, and each task's
/// RTS must re-select under whatever it finds when its turn comes.
///
/// Two entry points:
///  * run_time_sliced — the legacy weighted round-robin free-for-all
///    (unmanaged sharing via MRts's shared-fabric constructor);
///  * run_multi_tenant — the event-driven generalization: priorities,
///    releases, per-task deadlines and (optionally) a FabricArbiter doing
///    admission control and tenant-aware placement. With default task fields
///    and no arbiter it reproduces run_time_sliced exactly — run_time_sliced
///    is in fact a wrapper over it.

#include <array>
#include <string>
#include <vector>

#include "arch/tenant.h"
#include "rts/rts_interface.h"
#include "sim/schedule.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;
class FabricArbiter;

/// One task: a run-time system instance plus its application trace.
struct Task {
  std::string name;
  RuntimeSystem* rts = nullptr;           ///< not owned
  const ApplicationTrace* trace = nullptr;  ///< not owned
  /// Scheduling weight: number of consecutive functional blocks the task
  /// executes per turn (>= 1). Higher weight = larger share of the core and
  /// fewer fabric-eviction boundaries.
  unsigned slice_blocks = 1;
  /// Optional flight recorder for this task's block begin/end events (not
  /// owned). Typically the same recorder attached to the task's RTS.
  TraceRecorder* recorder = nullptr;
  /// Scheduling priority (run_multi_tenant only): higher runs first among
  /// released tasks. 0 (the default) keeps plain round-robin order.
  unsigned priority = 0;
  /// Absolute cycle before which the task may not run (0 = released at
  /// start). run_multi_tenant only.
  Cycles release = 0;
  /// Absolute completion deadline, reported (not enforced) in the result;
  /// 0 = none. Among equal priorities the earliest deadline runs first.
  Cycles deadline = 0;
  /// Tenant this task's RTS acts as on the shared fabric. Non-default values
  /// require an arbiter that knows the id (run_multi_tenant validates).
  TenantId tenant = kUnownedTenant;
};

struct TaskRunResult {
  std::string name;
  /// Core cycles spent executing this task's blocks (its share of the
  /// timeline).
  Cycles active_cycles = 0;
  /// Absolute cycle at which the task's last block finished.
  Cycles finished_at = 0;
  std::vector<Cycles> block_cycles;
  std::array<std::uint64_t, kNumImplKinds> impl_executions{};
};

struct TimeSlicedResult {
  Cycles total_cycles = 0;  ///< end of the last block of any task
  std::vector<TaskRunResult> tasks;
};

/// Per-task outcome of run_multi_tenant.
struct MultiTenantTaskResult {
  TaskRunResult run;
  TenantId tenant = kUnownedTenant;
  /// False when the arbiter bounced the task's tenant (reservation no longer
  /// fits the usable post-quarantine capacity): the task ran zero blocks.
  bool admitted = true;
  std::string admission_reason;  ///< why admission failed ("" when admitted)
  /// Absolute cycle the task became eligible to run (max of the run start
  /// and the task's release). finished_at - admitted_at is the
  /// admission-to-completion latency reported per tenant by trace-analyze.
  Cycles admitted_at = 0;
  /// finished_at <= deadline; vacuously true without a deadline or when the
  /// task was bounced before running.
  bool deadline_met = true;
};

struct MultiTenantResult {
  Cycles total_cycles = 0;  ///< end of the last block of any admitted task
  std::vector<MultiTenantTaskResult> tasks;
};

/// Resumable form of the run_multi_tenant scheduling loop: construction does
/// the validation and the up-front admission pass, each step() runs exactly
/// one scheduling turn (one slice of the picked task, or one idle jump to the
/// earliest release), and take_result() finalizes deadlines/completion events
/// and hands the result out. run_multi_tenant() is implemented as
/// "step until done" over one stream, so driving a stream turn-by-turn — as
/// the CMP scheduler (sim/cmp.h) does with one stream per core — produces the
/// identical block/event sequence by construction.
class TaskStream {
 public:
  /// Validates the tasks (throws std::invalid_argument with messages
  /// prefixed "<who>: ") and performs the admission pass at \p start.
  TaskStream(const std::vector<Task>& tasks, FabricArbiter* arbiter,
             Cycles start, const char* who = "run_multi_tenant");

  /// Outcome of one scheduling turn.
  struct Turn {
    bool ran = false;     ///< false: idle jump (or the stream just finished)
    std::size_t task = 0;  ///< picked task index (valid when ran)
    Cycles begin = 0;      ///< slice start (valid when ran)
    Cycles end = 0;        ///< slice end == cursor() after the turn
    unsigned blocks = 0;   ///< functional blocks executed this turn
    Cycles extra = 0;      ///< interconnect cycles charged within the slice
  };

  /// Runs one turn. \p extra_per_block is charged after every executed block
  /// (the CMP scheduler's per-core interconnect transfer cost; 0 — the
  /// single-core / zero-extra-hop case — leaves the legacy timeline
  /// untouched). No-op once done().
  Turn step(Cycles extra_per_block = 0);

  /// Charges \p cycles of wait at the current cursor to task \p task (the CMP
  /// scheduler's reconfiguration-port contention): advances the cursor and
  /// attributes the cycles to the task's active time and its latest block.
  void charge(std::size_t task, Cycles cycles);

  bool done() const { return done_; }
  Cycles cursor() const { return cursor_; }
  const Task& task(std::size_t i) const { return (*tasks_)[i]; }
  std::size_t num_tasks() const { return tasks_->size(); }

  /// Finalizes deadline_met / completion events and returns the result.
  /// Call exactly once, after done().
  MultiTenantResult take_result();

 private:
  const std::vector<Task>* tasks_;
  Cycles start_;
  Cycles cursor_;
  std::size_t last_;
  std::vector<std::size_t> next_block_;
  MultiTenantResult result_;
  bool done_ = false;
};

/// Runs all tasks to completion, weighted round-robin (slice_blocks
/// functional blocks per turn) on the single core. Tasks are NOT reset
/// (callers decide whether learned state carries over); the shared fabric
/// keeps whatever the interleaved installations left behind. Throws
/// std::invalid_argument on null task members or zero slice weights.
/// Equivalent to run_multi_tenant with default priority/release/deadline/
/// tenant fields and no arbiter (it is implemented as exactly that).
TimeSlicedResult run_time_sliced(const std::vector<Task>& tasks,
                                 Cycles start = 0);

/// Event-driven multi-tenant scheduler. Each turn, among the unfinished
/// tasks whose release has passed, it picks the highest priority, breaking
/// ties by earliest deadline (none = latest) and then by cyclic order after
/// the previously scheduled task — which, with all-default fields, is the
/// legacy round-robin. When no unfinished task is released the clock jumps
/// to the earliest release. With an \p arbiter, tasks whose tenant is not
/// (or no longer) admitted are bounced up front: they run zero blocks and
/// carry the arbiter's admission_reason.
///
/// Throws std::invalid_argument on null task members, zero slice weights, a
/// non-default tenant id without an arbiter, or a tenant id the arbiter does
/// not know.
MultiTenantResult run_multi_tenant(const std::vector<Task>& tasks,
                                   FabricArbiter* arbiter = nullptr,
                                   Cycles start = 0);

}  // namespace mrts
