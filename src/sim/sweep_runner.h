#pragma once
/// \file sweep_runner.h
/// Deterministic parallel sweep runner for the figure benches. A sweep is a
/// list of independent points (fabric combinations, config variants, seeded
/// workloads); each point's full simulation runs on its own simulator
/// instance in a pool worker, and results are merged back in submission
/// order, so the harness output (tables, CSV) is byte-identical to the
/// serial run regardless of worker count.
///
/// Sharing rules (audited; see docs/ARCHITECTURE.md):
///  * the point function receives only const access to shared inputs
///    (IseLibrary, DataPathTable, ApplicationTrace, profiles) — these are
///    immutable after construction and safe for concurrent readers;
///  * every mutable simulation object (MRts, baselines, FabricManager,
///    planners) must be constructed inside the point function, never shared;
///  * result slots are index-addressed, one per point, so no two workers
///    write the same location.

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace mrts {

class SweepRunner {
 public:
  /// \p jobs = worker count. 0 = one worker per hardware thread.
  /// jobs == 1 runs every point inline on the calling thread — the exact
  /// legacy serial path (no pool, no thread creation).
  explicit SweepRunner(unsigned jobs = 0);

  /// Resolved worker count (never 0).
  unsigned jobs() const { return jobs_; }

  /// Invokes fn(i) once for every i in [0, count); calls for distinct i may
  /// run concurrently. Blocks until all points finished. If points throw,
  /// the exception of the lowest-index failing point is rethrown after all
  /// workers completed — the same exception the serial run would surface.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn) const;

  /// Maps each point through \p fn; out[i] corresponds to points[i]
  /// (submission order) independent of which worker computed it.
  template <typename Point, typename Fn>
  auto map(const std::vector<Point>& points, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, const Point&>> {
    std::vector<std::invoke_result_t<Fn&, const Point&>> out(points.size());
    run_indexed(points.size(),
                [&](std::size_t i) { out[i] = fn(points[i]); });
    return out;
  }

 private:
  unsigned jobs_;
};

}  // namespace mrts
