#include "sim/multi_app.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/arbiter.h"
#include "sim/fb_simulator.h"
#include "util/trace.h"

namespace mrts {
namespace {

constexpr Cycles kNoDeadline = std::numeric_limits<Cycles>::max();

/// Scheduling key: higher priority first, then earlier deadline (none =
/// latest). The cyclic-order tiebreak lives in the scan order of the caller.
bool strictly_better(const Task& a, const Task& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  const Cycles da = a.deadline == 0 ? kNoDeadline : a.deadline;
  const Cycles db = b.deadline == 0 ? kNoDeadline : b.deadline;
  return da < db;
}

}  // namespace

TaskStream::TaskStream(const std::vector<Task>& tasks, FabricArbiter* arbiter,
                       Cycles start, const char* who)
    : tasks_(&tasks), start_(start), cursor_(start), last_(tasks.size() - 1) {
  const std::string prefix = std::string(who) + ": ";
  for (const Task& t : tasks) {
    if (t.rts == nullptr || t.trace == nullptr) {
      throw std::invalid_argument(prefix + "null task member");
    }
    if (t.slice_blocks == 0) {
      throw std::invalid_argument(prefix + "zero slice weight");
    }
    if (t.tenant != kUnownedTenant) {
      if (arbiter == nullptr) {
        throw std::invalid_argument(prefix + "task '" + t.name +
                                    "' names a tenant but no arbiter was "
                                    "given");
      }
      if (!arbiter->known(t.tenant)) {
        throw std::invalid_argument(prefix + "task '" + t.name +
                                    "' names an unknown tenant id");
      }
    }
  }

  result_.tasks.resize(tasks.size());
  next_block_.assign(tasks.size(), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    MultiTenantTaskResult& tr = result_.tasks[i];
    tr.run.name = tasks[i].name;
    tr.tenant = tasks[i].tenant;
    tr.admitted_at = std::max(start, tasks[i].release);
    // Admission control: a tenant whose reservation no longer fits the
    // usable (post-quarantine) capacity is bounced before running anything.
    if (tasks[i].tenant != kUnownedTenant &&
        !arbiter->admitted(tasks[i].tenant)) {
      tr.admitted = false;
      tr.admission_reason = arbiter->admission_reason(tasks[i].tenant);
      next_block_[i] = tasks[i].trace->blocks.size();  // nothing to run
    }
    if (tasks[i].recorder != nullptr) {
      // Bounce decisions are made up front at `start`; an admitted task's
      // decision point is when it becomes eligible (release-gated).
      tasks[i].recorder->record(
          {TraceEventKind::kTenantAdmission, kTrackApp,
           tr.admitted ? tr.admitted_at : start, 0,
           static_cast<std::uint32_t>(i), tr.admitted ? 1u : 0u, 0.0, 0.0,
           tasks[i].tenant});
    }
  }
  if (tasks.empty()) done_ = true;
}

TaskStream::Turn TaskStream::step(Cycles extra_per_block) {
  Turn turn;
  if (done_) return turn;
  const std::vector<Task>& tasks = *tasks_;

  // Earliest release among unfinished-but-unreleased tasks, in case the
  // core has to idle.
  Cycles next_release = kNoDeadline;
  std::size_t pick = tasks.size();
  for (std::size_t step = 1; step <= tasks.size(); ++step) {
    const std::size_t i = (last_ + step) % tasks.size();
    if (next_block_[i] >= tasks[i].trace->blocks.size()) continue;
    if (tasks[i].release > cursor_) {
      if (tasks[i].release < next_release) next_release = tasks[i].release;
      continue;
    }
    if (pick == tasks.size() || strictly_better(tasks[i], tasks[pick])) {
      pick = i;
    }
  }
  if (pick == tasks.size()) {
    if (next_release == kNoDeadline) {
      done_ = true;  // all tasks finished
    } else {
      cursor_ = next_release;  // idle until the next task is released
    }
    return turn;
  }

  turn.ran = true;
  turn.task = pick;
  turn.begin = cursor_;
  for (unsigned slice = 0; slice < tasks[pick].slice_blocks; ++slice) {
    if (next_block_[pick] >= tasks[pick].trace->blocks.size()) break;
    const FunctionalBlockInstance& block =
        tasks[pick].trace->blocks[next_block_[pick]++];
    const FbRunResult r =
        run_block(*tasks[pick].rts, block, cursor_, tasks[pick].recorder);
    cursor_ += r.cycles + extra_per_block;
    TaskRunResult& task_result = result_.tasks[pick].run;
    task_result.active_cycles += r.cycles + extra_per_block;
    task_result.finished_at = cursor_;
    task_result.block_cycles.push_back(r.cycles + extra_per_block);
    for (std::size_t k = 0; k < kNumImplKinds; ++k) {
      task_result.impl_executions[k] += r.impl_executions[k];
    }
    ++turn.blocks;
    turn.extra += extra_per_block;
  }
  last_ = pick;
  turn.end = cursor_;
  return turn;
}

void TaskStream::charge(std::size_t task, Cycles cycles) {
  if (cycles == 0) return;
  cursor_ += cycles;
  TaskRunResult& task_result = result_.tasks[task].run;
  task_result.active_cycles += cycles;
  task_result.finished_at = cursor_;
  if (!task_result.block_cycles.empty()) {
    task_result.block_cycles.back() += cycles;
  }
}

MultiTenantResult TaskStream::take_result() {
  const std::vector<Task>& tasks = *tasks_;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    MultiTenantTaskResult& tr = result_.tasks[i];
    if (tr.admitted && tasks[i].deadline != 0) {
      tr.deadline_met = tr.run.finished_at <= tasks[i].deadline;
    }
    // Admission-to-completion span, the raw material for trace-analyze's
    // per-tenant latency percentiles. Only tasks that actually ran blocks
    // have a completion point.
    if (tasks[i].recorder != nullptr && tr.admitted &&
        !tr.run.block_cycles.empty()) {
      tasks[i].recorder->record(
          {TraceEventKind::kTenantCompletion, kTrackApp, tr.admitted_at,
           tr.run.finished_at - tr.admitted_at, static_cast<std::uint32_t>(i),
           0, static_cast<double>(tr.run.block_cycles.size()), 0.0,
           tasks[i].tenant});
    }
  }
  result_.total_cycles = cursor_ - start_;
  return std::move(result_);
}

MultiTenantResult run_multi_tenant(const std::vector<Task>& tasks,
                                   FabricArbiter* arbiter, Cycles start) {
  TaskStream stream(tasks, arbiter, start, "run_multi_tenant");
  while (!stream.done()) stream.step();
  return stream.take_result();
}

TimeSlicedResult run_time_sliced(const std::vector<Task>& tasks,
                                 Cycles start) {
  for (const Task& t : tasks) {
    if (t.rts == nullptr || t.trace == nullptr) {
      throw std::invalid_argument("run_time_sliced: null task member");
    }
    if (t.slice_blocks == 0) {
      throw std::invalid_argument("run_time_sliced: zero slice weight");
    }
  }
  MultiTenantResult mt = run_multi_tenant(tasks, nullptr, start);
  TimeSlicedResult result;
  result.total_cycles = mt.total_cycles;
  result.tasks.reserve(mt.tasks.size());
  for (MultiTenantTaskResult& tr : mt.tasks) {
    result.tasks.push_back(std::move(tr.run));
  }
  return result;
}

}  // namespace mrts
