#include "sim/multi_app.h"

#include <stdexcept>

#include "sim/fb_simulator.h"

namespace mrts {

TimeSlicedResult run_time_sliced(const std::vector<Task>& tasks,
                                 Cycles start) {
  for (const Task& t : tasks) {
    if (t.rts == nullptr || t.trace == nullptr) {
      throw std::invalid_argument("run_time_sliced: null task member");
    }
    if (t.slice_blocks == 0) {
      throw std::invalid_argument("run_time_sliced: zero slice weight");
    }
  }

  TimeSlicedResult result;
  result.tasks.resize(tasks.size());
  std::vector<std::size_t> next_block(tasks.size(), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    result.tasks[i].name = tasks[i].name;
  }

  Cycles cursor = start;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      for (unsigned slice = 0; slice < tasks[i].slice_blocks; ++slice) {
        if (next_block[i] >= tasks[i].trace->blocks.size()) break;
        any_left = true;
        const FunctionalBlockInstance& block =
            tasks[i].trace->blocks[next_block[i]++];
        const FbRunResult r =
            run_block(*tasks[i].rts, block, cursor, tasks[i].recorder);
        cursor += r.cycles;
        TaskRunResult& task_result = result.tasks[i];
        task_result.active_cycles += r.cycles;
        task_result.finished_at = cursor;
        task_result.block_cycles.push_back(r.cycles);
        for (std::size_t k = 0; k < kNumImplKinds; ++k) {
          task_result.impl_executions[k] += r.impl_executions[k];
        }
      }
    }
  }
  result.total_cycles = cursor - start;
  return result;
}

}  // namespace mrts
