#pragma once
/// \file obs_accum.h
/// Per-kernel observation accumulator for the batched block-execution fast
/// path. RuntimeSystem::execute_events reports every run's cursors through
/// ObservationSink::note_run — a concrete inline call, so the ECU's memo
/// loop folds the accumulation into its single pass over the runs instead
/// of materializing a per-run side table for a second pass.
///
/// The accumulation reproduces the legacy per-event loop bit for bit: gaps
/// are summed in unsigned 64-bit (associative, any grouping gives the same
/// total) and executions are integer counts in a double (exact far beyond
/// any block size).

#include <cstdint>
#include <vector>

#include "sim/schedule.h"
#include "util/types.h"

namespace mrts {

class ObservationSink {
 public:
  /// Per-kernel accumulator state, indexed by raw kernel id in a flat
  /// thread_local scratch vector (no per-kernel map nodes).
  struct Acc {
    double executions = 0.0;
    Cycles first_start = 0;
    Cycles last_end = 0;
    Cycles gap_sum = 0;
    bool seen = false;
  };

  /// \p acc / \p touched are caller-owned scratch (touched must be empty;
  /// acc entries must be in their reset state). \p start is the block's
  /// start cycle — observations are block-relative.
  ObservationSink(Cycles start, std::vector<Acc>& acc,
                  std::vector<std::uint32_t>& touched)
      : start_(start), acc_(&acc), touched_(&touched) {}

  /// Accounts one executed run. \p first_gap is the run's first event's
  /// gap_before, \p first_exec_start the absolute start of the run's first
  /// execution and \p end_cursor the cursor after its last execution.
  void note_run(const ExecRun& run, Cycles first_gap, Cycles first_exec_start,
                Cycles end_cursor) {
    const std::uint32_t kid = raw(run.kernel);
    if (kid >= acc_->size()) acc_->resize(kid + 1);
    Acc& a = (*acc_)[kid];
    if (!a.seen) {
      a.first_start = first_exec_start - start_;
      a.seen = true;
      touched_->push_back(kid);
    } else {
      a.gap_sum += first_exec_start - start_ - a.last_end;
    }
    // Gaps *within* a run separate consecutive executions of the same
    // kernel, so they enter gap_sum directly.
    a.gap_sum += run.gap_total - first_gap;
    a.executions += static_cast<double>(run.count);
    a.last_end = end_cursor - start_;
  }

  Cycles start() const { return start_; }

 private:
  Cycles start_;
  std::vector<Acc>* acc_;
  std::vector<std::uint32_t>* touched_;
};

}  // namespace mrts
