#include "sim/sweep_runner.h"

#include <algorithm>
#include <exception>
#include <future>

#include "util/thread_pool.h"

namespace mrts {

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs == 0 ? ThreadPool::default_jobs() : jobs) {}

void SweepRunner::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;

  if (jobs_ == 1 || count == 1) {
    // Legacy serial path: no pool, exceptions propagate directly.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(count);
  {
    ThreadPool pool(std::min<std::size_t>(jobs_, count));
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(pool.submit([&fn, i]() { fn(i); }));
    }
    // Collect in submission order so the *lowest-index* failure wins,
    // matching what the serial loop would have thrown first.
    std::exception_ptr first_error;
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
}

}  // namespace mrts
