#pragma once
/// \file metrics.h
/// Derived metrics shared by the benches: speedups, fabric-combination
/// sweeps and their labels ("PRCs/CG fabrics" axes of Figs. 8-10).

#include <string>
#include <vector>

#include "sim/app_simulator.h"
#include "util/types.h"

namespace mrts {

/// One point of a fabric sweep: the machine has \p prcs PRCs and \p cg CG
/// fabrics.
struct FabricCombination {
  unsigned prcs = 0;
  unsigned cg = 0;

  bool risc_only() const { return prcs == 0 && cg == 0; }
  bool fg_only() const { return prcs > 0 && cg == 0; }
  bool cg_only() const { return prcs == 0 && cg > 0; }
  bool multi_grained() const { return prcs > 0 && cg > 0; }

  /// Axis label. Single-digit points keep the paper's figure form
  /// "<PRCs><CG>" ("00", "23", ...); when either value has more than one
  /// digit the concatenation is ambiguous ({11,1} and {1,11} would both
  /// read "111"), so those points use the explicit "<PRCs>x<CG>" form.
  std::string label() const {
    if (prcs < 10 && cg < 10) {
      return std::to_string(prcs) + std::to_string(cg);
    }
    return std::to_string(prcs) + "x" + std::to_string(cg);
  }
};

/// Cartesian sweep PRCs x CG fabrics (inclusive upper bounds), ordered as in
/// the figures: 00, 01, ..., 0C, 10, ..., PC.
std::vector<FabricCombination> fabric_sweep(unsigned max_prcs, unsigned max_cg);

/// speedup = baseline / value (e.g. RISC cycles / mRTS cycles).
double speedup(Cycles baseline, Cycles value);

/// Percentage difference of \p value above \p reference:
/// 100 * (value - reference) / reference.
double percent_difference(double reference, double value);

}  // namespace mrts
