#include "sim/app_simulator.h"

#include <map>

namespace mrts {

AppRunResult run_application(RuntimeSystem& rts, const ApplicationTrace& trace,
                             TraceRecorder* recorder) {
  AppRunProgress progress;
  run_application_portion(rts, trace, progress, recorder);
  return std::move(progress.partial);
}

bool run_application_portion(RuntimeSystem& rts, const ApplicationTrace& trace,
                             AppRunProgress& progress, TraceRecorder* recorder,
                             Cycles stop_at_cycle) {
  if (!progress.started()) {
    rts.reset();
    progress.partial = AppRunResult{};
    progress.partial.rts_name = rts.name();
    progress.partial.block_cycles.reserve(trace.blocks.size());
    progress.cursor = 0;
  }
  while (progress.next_block < trace.blocks.size()) {
    if (progress.cursor >= stop_at_cycle) return false;
    const FbRunResult fb =
        run_block(rts, trace.blocks[progress.next_block], progress.cursor,
                  recorder);
    progress.cursor += fb.cycles;
    progress.partial.block_cycles.push_back(fb.cycles);
    progress.partial.blocking_overhead += fb.blocking_overhead;
    for (std::size_t i = 0; i < kNumImplKinds; ++i) {
      progress.partial.impl_executions[i] += fb.impl_executions[i];
      progress.partial.impl_cycles[i] += fb.impl_cycles[i];
    }
    ++progress.next_block;
  }
  progress.partial.total_cycles = progress.cursor;
  return true;
}

std::vector<Cycles> risc_latency_table(const IseLibrary& lib) {
  std::vector<Cycles> table(lib.num_kernels(), 0);
  for (const auto& k : lib.kernels()) table[raw(k.id)] = k.sw_latency;
  return table;
}

std::vector<BlockProfile> profile_application(const ApplicationTrace& trace,
                                              const IseLibrary& lib) {
  const std::vector<Cycles> latency = risc_latency_table(lib);

  struct Acc {
    std::map<std::uint32_t, std::array<double, 3>> kernels;  // e, tf, tb sums
    std::map<std::uint32_t, double> counts;  // instances the kernel appears in
    double invocations = 0.0;
  };
  std::map<std::uint32_t, Acc> per_block;

  for (const auto& instance : trace.blocks) {
    const TriggerInstruction ti = derive_trigger(instance, latency);
    Acc& acc = per_block[raw(instance.functional_block)];
    acc.invocations += 1.0;
    for (const auto& entry : ti.entries) {
      auto& sums = acc.kernels[raw(entry.kernel)];
      sums[0] += entry.expected_executions;
      sums[1] += static_cast<double>(entry.time_to_first);
      sums[2] += static_cast<double>(entry.time_between);
      acc.counts[raw(entry.kernel)] += 1.0;
    }
  }

  std::vector<BlockProfile> profile;
  profile.reserve(per_block.size());
  for (const auto& [fb, acc] : per_block) {
    BlockProfile bp;
    bp.functional_block = FunctionalBlockId{fb};
    bp.invocations = acc.invocations;
    bp.average.functional_block = bp.functional_block;
    for (const auto& [kid, sums] : acc.kernels) {
      const double n = acc.counts.at(kid);
      TriggerEntry entry;
      entry.kernel = KernelId{kid};
      entry.expected_executions = sums[0] / n;
      entry.time_to_first = static_cast<Cycles>(sums[1] / n);
      entry.time_between = static_cast<Cycles>(sums[2] / n);
      bp.average.entries.push_back(entry);
    }
    profile.push_back(std::move(bp));
  }
  return profile;
}

}  // namespace mrts
