#include "sim/machine.h"

#include <stdexcept>

namespace mrts {

Machine::Machine(const IseLibrary& lib, MachineConfig config)
    : lib_(&lib),
      config_(std::move(config)),
      interconnect_(config_.interconnect) {
  if (config_.cores == 0) {
    throw std::invalid_argument("Machine: zero cores");
  }
  if (config_.tenancy != Tenancy::kPrivate) {
    fabric_ = std::make_unique<FabricManager>(config_.cg_fabrics, config_.prcs,
                                              &lib_->data_paths());
    if (config_.tenancy == Tenancy::kArbitrated) {
      arbiter_ = std::make_unique<FabricArbiter>(*fabric_);
    }
  }
}

// Out of line so the unique_ptr members destroy in declaration-reverse
// order with complete types: RTS instances first, then the arbiter (which
// detaches from the fabric), then the fabric.
Machine::~Machine() = default;

FabricManager& Machine::fabric() {
  if (fabric_ == nullptr) {
    throw std::logic_error("Machine: private-tenancy machines have no shared "
                           "fabric");
  }
  return *fabric_;
}

FabricArbiter& Machine::arbiter() {
  if (arbiter_ == nullptr) {
    throw std::logic_error("Machine: no arbiter (tenancy is not arbitrated)");
  }
  return *arbiter_;
}

FabricArbiter::Registration Machine::register_tenant(std::string name,
                                                     TenantPolicy policy) {
  return arbiter().register_tenant(std::move(name), std::move(policy));
}

RuntimeSystem& Machine::add_rts() { return add_rts(config_.rts); }

RuntimeSystem& Machine::add_rts(const MRtsConfig& config) {
  switch (config_.tenancy) {
    case Tenancy::kPrivate:
      owned_.push_back(std::make_unique<MRts>(*lib_, config_.cg_fabrics,
                                              config_.prcs, config));
      break;
    case Tenancy::kShared:
      owned_.push_back(std::make_unique<MRts>(*lib_, *fabric_, config));
      break;
    case Tenancy::kArbitrated:
      throw std::logic_error(
          "Machine: arbitrated machines build tenant-bound instances — use "
          "add_rts(tenant)");
  }
  return *owned_.back();
}

RuntimeSystem& Machine::add_rts(TenantId tenant) {
  return add_rts(tenant, config_.rts);
}

RuntimeSystem& Machine::add_rts(TenantId tenant, const MRtsConfig& config) {
  owned_.push_back(make_rts(tenant, config));
  return *owned_.back();
}

std::unique_ptr<MRts> Machine::make_rts(TenantId tenant,
                                        const MRtsConfig& config) {
  return std::make_unique<MRts>(*lib_, arbiter().binding(tenant), config);
}

void Machine::attach_observability(TraceRecorder* trace,
                                   CounterRegistry* counters) {
  for (const auto& rts : owned_) {
    rts->attach_observability(trace, counters);
  }
}

bool Machine::attach_fault_model(FaultModel* model) {
  bool any = false;
  for (const auto& rts : owned_) {
    any = rts->attach_fault_model(model) || any;
  }
  return any;
}

}  // namespace mrts
