#pragma once
/// \file arbiter.h
/// FabricArbiter: the policy engine behind the FabricArbitration hook
/// (arch/tenant.h). It turns a shared FabricManager into a multi-tenant
/// service: tasks register tenants with a share policy — *reserved* (hard
/// partition), *weighted* (soft quota with owner-aware eviction) or
/// *best-effort* — and the fabric consults the arbiter at every placement:
///
///  * accessibility: reserved tenants are confined to their partition and
///    nobody else may place into (or evict from) it; pool tenants share the
///    unpartitioned containers;
///  * eviction preference: when weights differ, evictions redirect onto
///    over-quota tenants' coldest containers; best-effort tenants are
///    preferred victims for entitled tenants. With all-equal weights and no
///    reservations the arbiter reports no preference at all, so the fabric's
///    native policy applies and the legacy `run_time_sliced` free-for-all is
///    reproduced bit-exactly (the equality gate in tests/test_arbiter.cpp);
///  * admission control: a reserved tenant whose partition no longer fits
///    the usable (post-quarantine) capacity is bounced — admitted() is
///    re-validated live, so quarantines after registration revoke admission.
///
/// The arbiter attaches itself to the fabric on construction and detaches
/// in its destructor; like the fabric it must not be shared across threads.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/fabric_manager.h"
#include "arch/tenant.h"
#include "util/types.h"

namespace mrts {

/// Per-tenant arbitration statistics (all cumulative since registration).
struct TenantStats {
  std::uint64_t evictions_caused = 0;    ///< foreign data paths it destroyed
  std::uint64_t evictions_suffered = 0;  ///< its data paths destroyed by others
  std::uint64_t quota_redirects = 0;     ///< evictions redirected onto it
  std::uint64_t quarantines_suffered = 0;  ///< its containers lost to faults
};

class FabricArbiter final : public FabricArbitration {
 public:
  /// Attaches itself as \p fabric's arbitration hook. Throws
  /// std::logic_error when the fabric already has a different hook.
  /// \p fabric must outlive this object.
  explicit FabricArbiter(FabricManager& fabric);
  ~FabricArbiter() override;

  FabricArbiter(const FabricArbiter&) = delete;
  FabricArbiter& operator=(const FabricArbiter&) = delete;

  struct Registration {
    TenantId id = kUnownedTenant;
    bool admitted = false;
    std::string reason;  ///< why admission failed (empty when admitted)
  };

  /// Registers a tenant. Reserved tenants get their partition assigned from
  /// the lowest-index unpartitioned, non-quarantined containers; when the
  /// usable capacity cannot fit the reservation the tenant is registered
  /// but not admitted (Registration::reason says why). Throws
  /// std::invalid_argument on a zero weight for a weighted tenant.
  Registration register_tenant(std::string name, TenantPolicy policy);

  /// Binding for MRts's tenant-bound constructor. The fabric pointer is
  /// null when \p id is unknown or the tenant is not (or no longer)
  /// admitted — constructing an MRts from it then throws, which is the
  /// admission bounce.
  TenantBinding binding(TenantId id) const;

  /// Retires a tenant slot once its job is done (the serving layer calls
  /// this after every completed/cancelled job so a resident arbiter survives
  /// unbounded tenant churn). A reserved tenant's partition containers
  /// return to the shared pool, the tenant stops counting toward the
  /// weighted-quota arithmetic, and admitted(id) becomes false; the id is
  /// never reused. Data paths the tenant still owns on the fabric stay
  /// installed — a released owner is treated like a best-effort tenant by
  /// prefer_evict, so leftovers are reclaimed first. Unknown or already
  /// released ids are ignored (idempotent).
  void release_tenant(TenantId id);

  /// True when release_tenant(id) was called for a known tenant.
  bool released(TenantId id) const;

  /// Live admission status: registration succeeded *and* a reserved
  /// tenant's partition still fits the usable post-quarantine capacity.
  bool admitted(TenantId id) const;
  /// Human-readable reason for !admitted(id) ("" when admitted).
  std::string admission_reason(TenantId id) const;

  bool known(TenantId id) const { return index_of(id) < tenants_.size(); }
  std::size_t num_tenants() const { return tenants_.size(); }
  const std::string& tenant_name(TenantId id) const;
  const TenantPolicy& policy(TenantId id) const;
  const TenantStats& stats(TenantId id) const;

  /// Partition containers assigned to a reserved tenant (ascending; empty
  /// for pool tenants).
  std::vector<unsigned> partition_prcs(TenantId id) const;
  std::vector<unsigned> partition_cg(TenantId id) const;

  const FabricManager& fabric() const { return *fabric_; }

  // --- FabricArbitration (called back by the FabricManager) ---------------
  bool may_place(TenantId tenant, Grain grain, unsigned index) const override;
  bool prefer_evict(TenantId tenant, TenantId owner,
                    Grain grain) const override;
  unsigned visible_prcs(TenantId tenant) const override;
  unsigned visible_cg(TenantId tenant) const override;
  void note_eviction(TenantId tenant, TenantId owner, Grain grain,
                     Cycles at) override;
  void note_quota_redirect(TenantId tenant, TenantId owner, Grain grain,
                           Cycles at) override;
  void note_quarantine(TenantId owner, Grain grain, Cycles at) override;

 private:
  struct Tenant {
    std::string name;
    TenantPolicy policy;
    bool registered_ok = true;  ///< registration-time admission
    bool released_slot = false;  ///< retired via release_tenant()
    std::string reject_reason;
    TenantStats stats;
  };

  /// Tenant ids are 1-based (0 = kUnownedTenant); returns tenants_.size()
  /// for unknown ids.
  std::size_t index_of(TenantId id) const {
    return id == kUnownedTenant ? tenants_.size()
                                : static_cast<std::size_t>(id) - 1;
  }
  const Tenant* find(TenantId id) const {
    const std::size_t i = index_of(id);
    return i < tenants_.size() ? &tenants_[i] : nullptr;
  }
  Tenant* find(TenantId id) {
    const std::size_t i = index_of(id);
    return i < tenants_.size() ? &tenants_[i] : nullptr;
  }

  /// Non-quarantined unpartitioned containers (the shared pool).
  unsigned pool_capacity(Grain grain) const;
  /// Sum of weights over all weighted tenants.
  std::uint64_t total_weight() const;
  /// Is \p owner (a weighted tenant) holding more than its soft quota?
  bool over_quota(const Tenant& owner, TenantId owner_id, Grain grain) const;

  FabricManager* fabric_;
  std::vector<Tenant> tenants_;
  std::vector<TenantId> prc_partition_;  ///< kUnownedTenant = pool
  std::vector<TenantId> cg_partition_;
  /// All live weighted tenants share one weight: quota preference is off and
  /// the fabric's native eviction order applies (the legacy degenerate
  /// case). Maintained incrementally (weight -> live tenant count) so a
  /// resident server's unbounded register/release churn stays O(log n) per
  /// tenant instead of O(tenants) rescans.
  bool equal_weights_ = true;
  std::map<unsigned, std::size_t> live_weight_counts_;
  std::uint64_t total_weight_ = 0;
};

/// Jain's fairness index of \p xs: (Σx)² / (n·Σx²) in [1/n, 1]; 1.0 for an
/// empty or all-zero vector.
double jain_fairness_index(const std::vector<double>& xs);

}  // namespace mrts
