#pragma once
/// \file app_simulator.h
/// Whole-application simulation: runs a trace block by block against a
/// run-time system and aggregates the metrics the evaluation figures need.
/// Also hosts the deterministic profiling pass the offline baselines use.

#include <array>
#include <string>
#include <vector>

#include "isa/ise_library.h"
#include "rts/rts_interface.h"
#include "sim/fb_simulator.h"
#include "sim/schedule.h"
#include "util/types.h"

namespace mrts {

struct AppRunResult {
  std::string rts_name;
  Cycles total_cycles = 0;
  Cycles blocking_overhead = 0;
  std::vector<Cycles> block_cycles;  ///< per block instance, trace order
  std::array<std::uint64_t, kNumImplKinds> impl_executions{};
  std::array<Cycles, kNumImplKinds> impl_cycles{};

  double impl_fraction(ImplKind kind) const {
    std::uint64_t total = 0;
    for (auto e : impl_executions) total += e;
    if (total == 0) return 0.0;
    return static_cast<double>(
               impl_executions[static_cast<std::size_t>(kind)]) /
           static_cast<double>(total);
  }
};

/// Runs the whole trace. The RTS is reset() first so results are
/// independent of earlier runs. \p recorder (optional) receives block
/// begin/end events; attach the same recorder to the RTS itself (e.g.
/// MRts::attach_observability) to interleave its internal events.
AppRunResult run_application(RuntimeSystem& rts, const ApplicationTrace& trace,
                             TraceRecorder* recorder = nullptr);

/// Mid-run position of a resumable application run (rts/snapshot.h): the
/// next block to execute, the cycle cursor and the aggregates of the blocks
/// already executed. Default-constructed = fresh run.
struct AppRunProgress {
  std::size_t next_block = 0;
  Cycles cursor = 0;
  AppRunResult partial;

  bool started() const { return next_block > 0 || !partial.block_cycles.empty(); }
};

/// Resumable variant of run_application: executes blocks from
/// \p progress.next_block until the trace ends or — checked at each block
/// boundary — \p progress.cursor has reached \p stop_at_cycle. A fresh
/// progress resets the RTS first; a resumed one (from a snapshot) must not,
/// so it continues exactly where the checkpointed run stopped. Returns true
/// when the whole trace has run (progress.partial is then the final result,
/// bit-identical to run_application's).
bool run_application_portion(RuntimeSystem& rts, const ApplicationTrace& trace,
                             AppRunProgress& progress,
                             TraceRecorder* recorder = nullptr,
                             Cycles stop_at_cycle = kNeverCycles);

/// Deterministic profiling pass (corresponds to the offline profiling the
/// paper's trigger instructions and static baselines rely on): derives the
/// RISC-mode trigger values of every block instance and averages them per
/// functional block.
std::vector<BlockProfile> profile_application(const ApplicationTrace& trace,
                                              const IseLibrary& lib);

/// RISC-mode latency lookup table indexed by raw kernel id.
std::vector<Cycles> risc_latency_table(const IseLibrary& lib);

}  // namespace mrts
