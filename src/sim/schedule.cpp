#include "sim/schedule.h"

#include <map>
#include <stdexcept>

namespace mrts {

void decode_runs(const std::vector<ExecEvent>& events,
                 std::vector<ExecRun>& runs) {
  runs.clear();
  for (std::size_t i = 0; i < events.size();) {
    ExecRun run;
    run.kernel = events[i].kernel;
    run.first_event = static_cast<std::uint32_t>(i);
    run.first_gap = events[i].gap_before;
    do {
      run.gap_total += events[i].gap_before;
      ++i;
    } while (i < events.size() && events[i].kernel == run.kernel);
    run.count = static_cast<std::uint32_t>(i) - run.first_event;
    runs.push_back(run);
  }
}

void finalize_instance_runs(FunctionalBlockInstance& instance) {
  decode_runs(instance.events, instance.runs);
}

TriggerInstruction derive_trigger(
    const FunctionalBlockInstance& instance,
    const std::vector<Cycles>& risc_latency_by_kernel) {
  struct Acc {
    double executions = 0.0;
    Cycles first_start = 0;
    Cycles last_end = 0;
    Cycles gap_sum = 0;  // idle cycles between consecutive executions
    bool seen = false;
  };
  std::map<std::uint32_t, Acc> acc;  // ordered: deterministic entry order

  Cycles cursor = 0;
  for (const auto& ev : instance.events) {
    cursor += ev.gap_before;
    const auto kid = raw(ev.kernel);
    if (kid >= risc_latency_by_kernel.size()) {
      throw std::invalid_argument("derive_trigger: kernel without latency");
    }
    Acc& a = acc[kid];
    if (!a.seen) {
      a.first_start = cursor;
      a.seen = true;
    } else {
      a.gap_sum += cursor - a.last_end;
    }
    a.executions += 1.0;
    cursor += risc_latency_by_kernel[kid];
    a.last_end = cursor;
  }

  TriggerInstruction ti;
  ti.functional_block = instance.functional_block;
  for (const auto& [kid, a] : acc) {
    TriggerEntry entry;
    entry.kernel = KernelId{kid};
    entry.expected_executions = a.executions;
    entry.time_to_first = a.first_start;
    entry.time_between =
        a.executions > 1.0
            ? static_cast<Cycles>(static_cast<double>(a.gap_sum) /
                                  (a.executions - 1.0))
            : Cycles{0};
    ti.entries.push_back(entry);
  }
  return ti;
}

}  // namespace mrts
