#pragma once
/// \file cmp.h
/// Chip-multiprocessor simulation: N RISC cores, each running its own task
/// stream with its own RTS instances, contending for one shared PRC/CG pool
/// over the modeled interconnect (arch/interconnect.h). This generalizes
/// run_multi_tenant (sim/multi_app.h) from one core to N by driving one
/// TaskStream per core turn-by-turn in global-time order:
///
///   * each scheduling turn advances the unfinished core whose local clock is
///     earliest (ties break to the lowest core index), so mutations of the
///     shared fabric — installations, evictions, arbitration — interleave in
///     timestamp order exactly as they would on the single reconfiguration
///     port of the pooled fabric;
///   * every functional block charges its operand traffic to the shared pool
///     through the interconnect: transfers_per_block transfers, each costing
///     core_extra_cycles(core) on top of the flat link cost already folded
///     into the block timings (so the canonical distance-1 topology adds
///     exactly zero);
///   * fabric-mutating slices (state-epoch change) contend for the single
///     reconfiguration port: after such a slice the port stays busy until
///     the fabric's streamed-load backlog drains (fg_port_free_at), and the
///     next core whose mutating slice begins inside that window pays the
///     overlap as port-wait cycles.
///
/// Degenerate-case contract (pinned by tests/test_cmp.cpp): one core at hop
/// distance 1 reproduces run_multi_tenant bit-exactly — same results, same
/// trace events (modulo the purely additive core.slice markers).

#include <vector>

#include "arch/interconnect.h"
#include "sim/multi_app.h"

namespace mrts {

class FabricManager;

/// One core of the CMP: its task stream plus the scheduling start offset of
/// its local clock.
struct CmpCore {
  std::vector<Task> tasks;
  Cycles start = 0;
};

struct CmpParams {
  /// Operand transfers between the core and the shared fabric charged per
  /// executed functional block. Each costs core_extra_cycles(core), i.e.
  /// zero at hop distance 1.
  unsigned transfers_per_block = 2;
  /// Fabric whose state epoch detects reconfiguring slices for the
  /// port-contention model; null disables contention accounting (e.g. when
  /// cores run on private fabrics).
  const FabricManager* fabric = nullptr;
};

/// Per-core outcome: the core's multi-tenant result plus the CMP-specific
/// charges broken out.
struct CmpCoreResult {
  MultiTenantResult run;
  /// Total interconnect transfer cycles charged to this core's blocks
  /// (already included in run's cycle totals).
  Cycles interconnect_cycles = 0;
  /// Reconfiguration-port wait charged to this core (already included).
  Cycles port_wait_cycles = 0;
  /// Scheduling turns in which this core's slice mutated the shared fabric.
  std::uint64_t reconfig_slices = 0;
};

struct CmpResult {
  /// Makespan: latest local completion time across cores, minus the earliest
  /// start.
  Cycles total_cycles = 0;
  std::vector<CmpCoreResult> cores;
};

/// Runs every core's task stream to completion over the shared fabric.
/// Validation mirrors run_multi_tenant (std::invalid_argument, messages
/// prefixed "run_cmp: "); an empty core list yields an empty result.
/// With one core whose hop distance is 1 the result (and each task
/// recorder's event stream, minus core.slice/core.transfer events) is
/// bit-identical to run_multi_tenant(cores[0].tasks, arbiter,
/// cores[0].start).
CmpResult run_cmp(const std::vector<CmpCore>& cores,
                  const Interconnect& interconnect,
                  FabricArbiter* arbiter = nullptr,
                  const CmpParams& params = {});

}  // namespace mrts
