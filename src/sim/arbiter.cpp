#include "sim/arbiter.h"

#include <stdexcept>

namespace mrts {

FabricArbiter::FabricArbiter(FabricManager& fabric) : fabric_(&fabric) {
  prc_partition_.assign(fabric.num_prcs(), kUnownedTenant);
  cg_partition_.assign(fabric.num_cg_fabrics(), kUnownedTenant);
  fabric_->attach_arbitration(this);
}

FabricArbiter::~FabricArbiter() { fabric_->attach_arbitration(nullptr); }

FabricArbiter::Registration FabricArbiter::register_tenant(
    std::string name, TenantPolicy policy) {
  if (policy.share == TenantShare::kWeighted && policy.weight == 0) {
    throw std::invalid_argument(
        "FabricArbiter::register_tenant: weighted tenant needs weight >= 1");
  }
  tenants_.push_back(Tenant{std::move(name), policy, true, false, "", {}});
  const TenantId id = static_cast<TenantId>(tenants_.size());
  Tenant& tenant = tenants_.back();

  if (policy.share == TenantShare::kReserved) {
    // Assign the partition from the lowest-index unpartitioned usable
    // containers; on failure roll the partial assignment back and register
    // the tenant as not admitted.
    std::vector<unsigned> taken_prcs;
    std::vector<unsigned> taken_cg;
    for (unsigned i = 0;
         i < prc_partition_.size() && taken_prcs.size() < policy.reserved_prcs;
         ++i) {
      if (prc_partition_[i] == kUnownedTenant &&
          !fabric_->prc_quarantined(i)) {
        prc_partition_[i] = id;
        taken_prcs.push_back(i);
      }
    }
    for (unsigned i = 0;
         i < cg_partition_.size() && taken_cg.size() < policy.reserved_cg;
         ++i) {
      if (cg_partition_[i] == kUnownedTenant && !fabric_->cg_quarantined(i)) {
        cg_partition_[i] = id;
        taken_cg.push_back(i);
      }
    }
    if (taken_prcs.size() < policy.reserved_prcs ||
        taken_cg.size() < policy.reserved_cg) {
      for (unsigned i : taken_prcs) prc_partition_[i] = kUnownedTenant;
      for (unsigned i : taken_cg) cg_partition_[i] = kUnownedTenant;
      tenant.registered_ok = false;
      tenant.reject_reason =
          "reservation exceeds usable capacity (" +
          std::to_string(policy.reserved_prcs) + " PRCs, " +
          std::to_string(policy.reserved_cg) + " CG fabrics requested)";
    }
  }

  if (policy.share == TenantShare::kWeighted) {
    ++live_weight_counts_[policy.weight];
    total_weight_ += policy.weight;
    equal_weights_ = live_weight_counts_.size() <= 1;
  }

  Registration reg;
  reg.id = id;
  reg.admitted = tenant.registered_ok;
  reg.reason = tenant.reject_reason;
  return reg;
}

void FabricArbiter::release_tenant(TenantId id) {
  Tenant* t = find(id);
  if (t == nullptr || t->released_slot) return;
  t->released_slot = true;
  // Reserved partitions return to the shared pool; any data paths the tenant
  // still has installed there become pool-reclaimable immediately.
  if (t->policy.share == TenantShare::kReserved) {
    for (TenantId& owner : prc_partition_) {
      if (owner == id) owner = kUnownedTenant;
    }
    for (TenantId& owner : cg_partition_) {
      if (owner == id) owner = kUnownedTenant;
    }
  }
  if (t->policy.share == TenantShare::kWeighted) {
    const auto it = live_weight_counts_.find(t->policy.weight);
    if (it != live_weight_counts_.end() && --it->second == 0) {
      live_weight_counts_.erase(it);
    }
    total_weight_ -= t->policy.weight;
    equal_weights_ = live_weight_counts_.size() <= 1;
  }
}

bool FabricArbiter::released(TenantId id) const {
  const Tenant* t = find(id);
  return t != nullptr && t->released_slot;
}

TenantBinding FabricArbiter::binding(TenantId id) const {
  if (!admitted(id)) return TenantBinding{};
  return TenantBinding{fabric_, id};
}

bool FabricArbiter::admitted(TenantId id) const {
  const Tenant* t = find(id);
  if (t == nullptr || !t->registered_ok || t->released_slot) return false;
  if (t->policy.share != TenantShare::kReserved) return true;
  // Quarantines after registration shrink the partition; the reservation
  // must still fit the usable capacity.
  unsigned usable_prcs = 0;
  for (unsigned i = 0; i < prc_partition_.size(); ++i) {
    if (prc_partition_[i] == id && !fabric_->prc_quarantined(i)) ++usable_prcs;
  }
  unsigned usable_cg = 0;
  for (unsigned i = 0; i < cg_partition_.size(); ++i) {
    if (cg_partition_[i] == id && !fabric_->cg_quarantined(i)) ++usable_cg;
  }
  return usable_prcs >= t->policy.reserved_prcs &&
         usable_cg >= t->policy.reserved_cg;
}

std::string FabricArbiter::admission_reason(TenantId id) const {
  const Tenant* t = find(id);
  if (t == nullptr) return "unknown tenant";
  if (t->released_slot) return "tenant slot released";
  if (!t->registered_ok) return t->reject_reason;
  if (!admitted(id)) {
    return "quarantined capacity no longer fits the reservation";
  }
  return "";
}

const std::string& FabricArbiter::tenant_name(TenantId id) const {
  const Tenant* t = find(id);
  if (t == nullptr) {
    throw std::out_of_range("FabricArbiter::tenant_name: unknown tenant");
  }
  return t->name;
}

const TenantPolicy& FabricArbiter::policy(TenantId id) const {
  const Tenant* t = find(id);
  if (t == nullptr) {
    throw std::out_of_range("FabricArbiter::policy: unknown tenant");
  }
  return t->policy;
}

const TenantStats& FabricArbiter::stats(TenantId id) const {
  const Tenant* t = find(id);
  if (t == nullptr) {
    throw std::out_of_range("FabricArbiter::stats: unknown tenant");
  }
  return t->stats;
}

std::vector<unsigned> FabricArbiter::partition_prcs(TenantId id) const {
  std::vector<unsigned> out;
  for (unsigned i = 0; i < prc_partition_.size(); ++i) {
    if (prc_partition_[i] == id) out.push_back(i);
  }
  return out;
}

std::vector<unsigned> FabricArbiter::partition_cg(TenantId id) const {
  std::vector<unsigned> out;
  for (unsigned i = 0; i < cg_partition_.size(); ++i) {
    if (cg_partition_[i] == id) out.push_back(i);
  }
  return out;
}

bool FabricArbiter::may_place(TenantId tenant, Grain grain,
                              unsigned index) const {
  const auto& partition =
      grain == Grain::kFine ? prc_partition_ : cg_partition_;
  if (index >= partition.size()) return false;
  const Tenant* t = find(tenant);
  if (t != nullptr && t->policy.share == TenantShare::kReserved) {
    return partition[index] == tenant;
  }
  // Pool tenants (weighted/best-effort) and unmanaged users share the
  // unpartitioned containers.
  return partition[index] == kUnownedTenant;
}

bool FabricArbiter::prefer_evict(TenantId tenant, TenantId owner,
                                 Grain grain) const {
  const Tenant* o = find(owner);
  if (o == nullptr) return false;  // unmanaged owner: native order
  const Tenant* t = find(tenant);
  const TenantShare requester_share =
      t != nullptr ? t->policy.share : TenantShare::kBestEffort;
  // A released tenant's leftover data paths have no live entitlement:
  // reclaim them like best-effort holdings.
  if (o->released_slot) return requester_share != TenantShare::kBestEffort;
  switch (o->policy.share) {
    case TenantShare::kBestEffort:
      // Entitled tenants reclaim from best-effort ones first; between
      // best-effort peers there is no hierarchy.
      return requester_share != TenantShare::kBestEffort;
    case TenantShare::kWeighted:
      // Quota preference only exists when weights actually differ: with
      // all-equal weights every tenant has the same entitlement and the
      // fabric's native victim order applies (the legacy degenerate case).
      return !equal_weights_ && over_quota(*o, owner, grain);
    case TenantShare::kReserved:
      // Unreachable via placement (partitions are inaccessible to others),
      // and never preferred.
      return false;
  }
  return false;
}

unsigned FabricArbiter::pool_capacity(Grain grain) const {
  const auto& partition =
      grain == Grain::kFine ? prc_partition_ : cg_partition_;
  unsigned n = 0;
  for (unsigned i = 0; i < partition.size(); ++i) {
    if (partition[i] != kUnownedTenant) continue;
    const bool quarantined = grain == Grain::kFine
                                 ? fabric_->prc_quarantined(i)
                                 : fabric_->cg_quarantined(i);
    if (!quarantined) ++n;
  }
  return n;
}

std::uint64_t FabricArbiter::total_weight() const { return total_weight_; }

bool FabricArbiter::over_quota(const Tenant& owner, TenantId owner_id,
                               Grain grain) const {
  const std::uint64_t sum = total_weight();
  if (sum == 0) return false;
  const unsigned owned = grain == Grain::kFine ? fabric_->owned_prcs(owner_id)
                                               : fabric_->owned_cg(owner_id);
  // owned / pool > weight / sum, in integers.
  return static_cast<std::uint64_t>(owned) * sum >
         static_cast<std::uint64_t>(pool_capacity(grain)) *
             owner.policy.weight;
}

unsigned FabricArbiter::visible_prcs(TenantId tenant) const {
  const Tenant* t = find(tenant);
  if (t != nullptr && t->policy.share == TenantShare::kReserved) {
    unsigned n = 0;
    for (unsigned i = 0; i < prc_partition_.size(); ++i) {
      if (prc_partition_[i] == tenant && !fabric_->prc_quarantined(i)) ++n;
    }
    return n;
  }
  // Soft quotas bias eviction, not planning: pool tenants may plan with the
  // whole pool.
  return pool_capacity(Grain::kFine);
}

unsigned FabricArbiter::visible_cg(TenantId tenant) const {
  const Tenant* t = find(tenant);
  if (t != nullptr && t->policy.share == TenantShare::kReserved) {
    unsigned n = 0;
    for (unsigned i = 0; i < cg_partition_.size(); ++i) {
      if (cg_partition_[i] == tenant && !fabric_->cg_quarantined(i)) ++n;
    }
    return n;
  }
  return pool_capacity(Grain::kCoarse);
}

void FabricArbiter::note_eviction(TenantId tenant, TenantId owner, Grain grain,
                                  Cycles at) {
  (void)grain;
  (void)at;
  if (Tenant* t = find(tenant)) ++t->stats.evictions_caused;
  if (Tenant* o = find(owner)) ++o->stats.evictions_suffered;
}

void FabricArbiter::note_quota_redirect(TenantId tenant, TenantId owner,
                                        Grain grain, Cycles at) {
  (void)tenant;
  (void)grain;
  (void)at;
  if (Tenant* o = find(owner)) ++o->stats.quota_redirects;
}

void FabricArbiter::note_quarantine(TenantId owner, Grain grain, Cycles at) {
  (void)grain;
  (void)at;
  if (Tenant* o = find(owner)) ++o->stats.quarantines_suffered;
}

double jain_fairness_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace mrts
