#include "sim/metrics.h"

namespace mrts {

std::vector<FabricCombination> fabric_sweep(unsigned max_prcs,
                                            unsigned max_cg) {
  std::vector<FabricCombination> out;
  out.reserve(static_cast<std::size_t>(max_prcs + 1) * (max_cg + 1));
  for (unsigned p = 0; p <= max_prcs; ++p) {
    for (unsigned c = 0; c <= max_cg; ++c) {
      out.push_back({p, c});
    }
  }
  return out;
}

double speedup(Cycles baseline, Cycles value) {
  if (value == 0) return 0.0;
  return static_cast<double>(baseline) / static_cast<double>(value);
}

double percent_difference(double reference, double value) {
  if (reference == 0.0) return 0.0;
  return 100.0 * (value - reference) / reference;
}

}  // namespace mrts
