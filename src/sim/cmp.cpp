#include "sim/cmp.h"

#include <limits>

#include "arch/fabric_manager.h"
#include "util/trace.h"

namespace mrts {

CmpResult run_cmp(const std::vector<CmpCore>& cores,
                  const Interconnect& interconnect, FabricArbiter* arbiter,
                  const CmpParams& params) {
  CmpResult result;
  if (cores.empty()) return result;

  // Validation + admission happen per core at construction, in core order:
  // with one core this is exactly run_multi_tenant's up-front pass.
  std::vector<TaskStream> streams;
  streams.reserve(cores.size());
  for (const CmpCore& core : cores) {
    streams.emplace_back(core.tasks, arbiter, core.start, "run_cmp");
  }

  std::vector<Cycles> extra_per_block(cores.size());
  for (std::size_t c = 0; c < cores.size(); ++c) {
    extra_per_block[c] =
        static_cast<Cycles>(params.transfers_per_block) *
        interconnect.core_extra_cycles(static_cast<unsigned>(c));
  }

  result.cores.resize(cores.size());

  // Single reconfiguration port of the pooled fabric: when the port drains
  // after the latest fabric-mutating slice (the fabric's own streamed-load
  // backlog, fg_port_free_at) and which core ran it. A later core whose
  // mutating slice begins inside that window waits out the overlap.
  Cycles port_busy_until = 0;
  std::size_t port_owner = cores.size();

  for (;;) {
    // Advance the unfinished core whose local clock is earliest, so shared-
    // fabric mutations interleave in global timestamp order.
    std::size_t pick = cores.size();
    for (std::size_t c = 0; c < cores.size(); ++c) {
      if (streams[c].done()) continue;
      if (pick == cores.size() || streams[c].cursor() < streams[pick].cursor()) {
        pick = c;
      }
    }
    if (pick == cores.size()) break;

    TaskStream& stream = streams[pick];
    const std::uint64_t epoch_before =
        params.fabric != nullptr ? params.fabric->state_epoch() : 0;
    const TaskStream::Turn turn = stream.step(extra_per_block[pick]);
    if (!turn.ran) continue;

    CmpCoreResult& core_result = result.cores[pick];
    core_result.interconnect_cycles += turn.extra;

    Cycles wait = 0;
    const bool mutated = params.fabric != nullptr &&
                         params.fabric->state_epoch() != epoch_before;
    if (mutated) {
      ++core_result.reconfig_slices;
      if (port_owner != cores.size() && port_owner != pick &&
          turn.begin < port_busy_until) {
        wait = port_busy_until - turn.begin;
        stream.charge(turn.task, wait);
        core_result.port_wait_cycles += wait;
      }
      port_busy_until = params.fabric->fg_port_free_at(turn.begin);
      port_owner = pick;
    }

    const Task& task = stream.task(turn.task);
    if (task.recorder != nullptr) {
      const auto core_idx = static_cast<std::uint32_t>(pick);
      const std::int32_t track =
          kTrackCoreBase + static_cast<std::int32_t>(pick);
      task.recorder->record({TraceEventKind::kCoreSlice, track, turn.begin,
                             stream.cursor() - turn.begin, core_idx,
                             turn.blocks, static_cast<double>(turn.extra),
                             static_cast<double>(wait), task.tenant});
      if (turn.extra > 0) {
        task.recorder->record(
            {TraceEventKind::kCoreTransfer, track, turn.begin, turn.extra,
             core_idx, params.transfers_per_block * turn.blocks,
             static_cast<double>(
                 interconnect.core_distance(static_cast<unsigned>(pick))),
             0.0, task.tenant});
      }
    }
  }

  Cycles earliest_start = std::numeric_limits<Cycles>::max();
  Cycles latest_end = 0;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    result.cores[c].run = streams[c].take_result();
    earliest_start = std::min(earliest_start, cores[c].start);
    latest_end =
        std::max(latest_end, cores[c].start + result.cores[c].run.total_cycles);
  }
  result.total_cycles = latest_end - earliest_start;
  return result;
}

}  // namespace mrts
