#include "sim/fb_simulator.h"

#include <algorithm>
#include <map>

#include "sim/obs_accum.h"
#include "util/fastpath.h"
#include "util/trace.h"

namespace mrts {
namespace {

/// Per-kernel observation accumulator (shared by both loop flavors).
struct Acc {
  double executions = 0.0;
  Cycles first_start = 0;
  Cycles last_end = 0;
  Cycles gap_sum = 0;
  bool seen = false;
};

/// Legacy per-event loop: one virtual execute_kernel call per event, map
/// accumulator. Kept verbatim as the oracle for the batched fast path
/// (util/fastpath.h toggles between them; outputs are bit-identical).
Cycles run_events_legacy(RuntimeSystem& rts,
                         const FunctionalBlockInstance& instance, Cycles start,
                         Cycles cursor, FbRunResult& result) {
  std::map<std::uint32_t, Acc> acc;
  for (const auto& ev : instance.events) {
    cursor += ev.gap_before;
    const Cycles exec_start = cursor;
    const ExecOutcome outcome = rts.execute_kernel(ev.kernel, cursor);
    cursor += outcome.latency;

    result.impl_executions[static_cast<std::size_t>(outcome.impl)]++;
    result.impl_cycles[static_cast<std::size_t>(outcome.impl)] +=
        outcome.latency;

    Acc& a = acc[raw(ev.kernel)];
    if (!a.seen) {
      a.first_start = exec_start - start;
      a.seen = true;
    } else {
      a.gap_sum += exec_start - start - a.last_end;
    }
    a.executions += 1.0;
    a.last_end = cursor - start;
  }
  for (const auto& [kid, a] : acc) {
    ObservedKernelStats stats;
    stats.kernel = KernelId{kid};
    stats.executions = a.executions;
    stats.time_to_first = a.first_start;
    stats.time_between =
        a.executions > 1.0
            ? static_cast<Cycles>(static_cast<double>(a.gap_sum) /
                                  (a.executions - 1.0))
            : Cycles{0};
    result.observed.kernels.push_back(stats);
  }
  return cursor;
}

/// Batched fast path: dispatches pre-decoded same-kernel runs through
/// RuntimeSystem::execute_run and accumulates observations in flat
/// (structure-of-arrays) scratch indexed by raw kernel id — no per-kernel
/// map nodes, no per-event virtual dispatch. The scratch is thread_local so
/// concurrent sweep points (--jobs > 1) never share it.
Cycles run_events_batched(RuntimeSystem& rts,
                          const FunctionalBlockInstance& instance, Cycles start,
                          Cycles cursor, FbRunResult& result) {
  const std::vector<ExecRun>* runs = &instance.runs;
  thread_local std::vector<ExecRun> scratch_runs;
  const bool runs_valid =
      !instance.runs.empty() &&
      static_cast<std::size_t>(instance.runs.back().first_event) +
              instance.runs.back().count ==
          instance.events.size();
  if (!runs_valid) {
    // Hand-built instance that was never finalized: decode into scratch.
    decode_runs(instance.events, scratch_runs);
    runs = &scratch_runs;
  }

  thread_local std::vector<ObservationSink::Acc> acc;  // by raw kernel id
  thread_local std::vector<std::uint32_t> touched;
  touched.clear();

  // One virtual call executes the whole block (see Ecu::execute_events);
  // the sink's inline note_run fuses the per-kernel accumulation into the
  // execution loop itself.
  ObservationSink sink(start, acc, touched);
  cursor = rts.execute_events(instance.events.data(), runs->data(),
                              runs->size(), cursor,
                              result.impl_executions.data(),
                              result.impl_cycles.data(), sink);

  // Ascending kernel id, matching the std::map emission order of the legacy
  // loop — the MPU feedback (and thus every downstream byte) is identical.
  std::sort(touched.begin(), touched.end());
  for (const std::uint32_t kid : touched) {
    ObservationSink::Acc& a = acc[kid];
    ObservedKernelStats stats;
    stats.kernel = KernelId{kid};
    stats.executions = a.executions;
    stats.time_to_first = a.first_start;
    stats.time_between =
        a.executions > 1.0
            ? static_cast<Cycles>(static_cast<double>(a.gap_sum) /
                                  (a.executions - 1.0))
            : Cycles{0};
    result.observed.kernels.push_back(stats);
    a = ObservationSink::Acc{};  // reset for the next block on this thread
  }
  return cursor;
}

}  // namespace

FbRunResult run_block(RuntimeSystem& rts,
                      const FunctionalBlockInstance& instance, Cycles start,
                      TraceRecorder* recorder) {
  FbRunResult result;

  if (recorder != nullptr) {
    recorder->record({TraceEventKind::kBlockBegin, kTrackApp, start, 0,
                      raw(instance.functional_block), 0, 0.0, 0.0});
  }

  Cycles cursor = start;
  result.selection = rts.on_trigger(instance.programmed, cursor);
  result.blocking_overhead = result.selection.blocking_overhead;
  cursor += result.blocking_overhead;

  result.observed.functional_block = instance.functional_block;
  cursor = fastpath_enabled()
               ? run_events_batched(rts, instance, start, cursor, result)
               : run_events_legacy(rts, instance, start, cursor, result);
  cursor += instance.tail_gap;

  rts.on_block_end(result.observed, cursor);
  result.cycles = cursor - start;
  if (recorder != nullptr) {
    // Span event covering the whole block instance.
    recorder->record({TraceEventKind::kBlockEnd, kTrackApp, start,
                      result.cycles, raw(instance.functional_block), 0,
                      static_cast<double>(result.blocking_overhead), 0.0});
  }
  return result;
}

}  // namespace mrts
