#include "sim/fb_simulator.h"

#include <map>

#include "util/trace.h"

namespace mrts {

FbRunResult run_block(RuntimeSystem& rts,
                      const FunctionalBlockInstance& instance, Cycles start,
                      TraceRecorder* recorder) {
  FbRunResult result;

  if (recorder != nullptr) {
    recorder->record({TraceEventKind::kBlockBegin, kTrackApp, start, 0,
                      raw(instance.functional_block), 0, 0.0, 0.0});
  }

  Cycles cursor = start;
  result.selection = rts.on_trigger(instance.programmed, cursor);
  result.blocking_overhead = result.selection.blocking_overhead;
  cursor += result.blocking_overhead;

  struct Acc {
    double executions = 0.0;
    Cycles first_start = 0;
    Cycles last_end = 0;
    Cycles gap_sum = 0;
    bool seen = false;
  };
  std::map<std::uint32_t, Acc> acc;

  for (const auto& ev : instance.events) {
    cursor += ev.gap_before;
    const Cycles exec_start = cursor;
    const ExecOutcome outcome = rts.execute_kernel(ev.kernel, cursor);
    cursor += outcome.latency;

    result.impl_executions[static_cast<std::size_t>(outcome.impl)]++;
    result.impl_cycles[static_cast<std::size_t>(outcome.impl)] +=
        outcome.latency;

    Acc& a = acc[raw(ev.kernel)];
    if (!a.seen) {
      a.first_start = exec_start - start;
      a.seen = true;
    } else {
      a.gap_sum += exec_start - start - a.last_end;
    }
    a.executions += 1.0;
    a.last_end = cursor - start;
  }
  cursor += instance.tail_gap;

  result.observed.functional_block = instance.functional_block;
  for (const auto& [kid, a] : acc) {
    ObservedKernelStats stats;
    stats.kernel = KernelId{kid};
    stats.executions = a.executions;
    stats.time_to_first = a.first_start;
    stats.time_between =
        a.executions > 1.0
            ? static_cast<Cycles>(static_cast<double>(a.gap_sum) /
                                  (a.executions - 1.0))
            : Cycles{0};
    result.observed.kernels.push_back(stats);
  }

  rts.on_block_end(result.observed, cursor);
  result.cycles = cursor - start;
  if (recorder != nullptr) {
    // Span event covering the whole block instance.
    recorder->record({TraceEventKind::kBlockEnd, kTrackApp, start,
                      result.cycles, raw(instance.functional_block), 0,
                      static_cast<double>(result.blocking_overhead), 0.0});
  }
  return result;
}

}  // namespace mrts
