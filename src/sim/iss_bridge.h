#pragma once
/// \file iss_bridge.h
/// End-to-end fidelity: the application as a *binary on the core processor*.
/// A trace is compiled into a riscsim program whose instruction stream
/// matches the paper's Fig. 4 setup — the binary carries encoded trigger
/// instructions ahead of each functional block and `kexec` coprocessor
/// instructions for the kernel invocations; non-kernel software is `wait`
/// delays. Running it on the Cpu with an RtsCoprocessor attached drives a
/// real run-time system through the actual instruction-fetch path.
///
/// Property: for any trace and RTS, the binary execution is cycle-exact
/// with the abstract simulator (`run_application`) up to the single final
/// `halt` instruction — tested in tests/test_iss_bridge.cpp.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "riscsim/cpu.h"
#include "rts/rts_interface.h"
#include "sim/schedule.h"
#include "util/types.h"

namespace mrts {

/// A compiled application binary plus its data segment (the encoded trigger
/// blobs the `trig` instructions reference).
struct IssApplication {
  riscsim::Program program;
  /// (scratch-pad address, bytes) pairs to preload.
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> data_segment;
  /// Scratch-pad bytes needed to hold the data segment.
  std::size_t memory_bytes = 0;
};

/// Compiles \p trace into a core binary. Trigger blobs are laid out from
/// \p blob_base upward.
IssApplication compile_trace_to_binary(const ApplicationTrace& trace,
                                       std::size_t blob_base = 0);

/// Bridges the Cpu's coprocessor-interface instructions to a RuntimeSystem:
/// `trig` becomes on_trigger (returning its blocking overhead), `kexec`
/// becomes execute_kernel (returning the ECU-chosen latency), and block
/// observations are accumulated and delivered exactly like the abstract
/// simulator does.
class RtsCoprocessor final : public riscsim::Coprocessor {
 public:
  explicit RtsCoprocessor(RuntimeSystem& rts);

  Cycles trigger(const std::vector<std::uint8_t>& bytes, Cycles now) override;
  Cycles kernel(std::uint32_t kernel_id, Cycles now) override;

  /// Flushes the last block's observation (call after the program halts).
  void finish(Cycles now);

 private:
  struct Acc {
    double executions = 0.0;
    Cycles first_start = 0;
    Cycles last_end = 0;
    Cycles gap_sum = 0;
    bool seen = false;
  };

  void flush(Cycles now);

  RuntimeSystem* rts_;
  bool in_block_ = false;
  FunctionalBlockId block_ = kInvalidFunctionalBlock;
  Cycles block_start_ = 0;
  std::map<std::uint32_t, Acc> acc_;
};

struct IssRunResult {
  Cycles cycles = 0;
  std::uint64_t instructions = 0;
  bool halted = false;
};

/// Convenience driver: preloads the data segment, attaches the bridge, runs
/// the binary to completion and delivers the final block observation.
/// The RTS is reset() first, mirroring run_application().
IssRunResult run_binary(const IssApplication& app, RuntimeSystem& rts);

}  // namespace mrts
