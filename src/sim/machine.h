#pragma once
/// \file machine.h
/// Unified machine construction: one place that declares the simulated
/// topology (cores, PRCs, CG fabrics, interconnect, tenancy) and owns the
/// lifecycle of the objects realizing it — fabric, arbiter, RTS instances,
/// observability/fault attachment ordering. Before this existed every entry
/// point (mrts_cli verbs, the figure benches, ServeCore) hand-wired its own
/// FabricManager + FabricArbiter + MRts combination with its own attach
/// ordering; they now all declare a MachineConfig and ask the Machine for
/// runtime systems.
///
/// Bit-exactness contract: the Machine performs exactly the construction
/// sequence of the legacy call sites —
///   * kPrivate: each add_rts() is `MRts(lib, cg, prcs, config)`, a private
///     fabric per instance (the single-app benches and `mrts_cli run`);
///   * kShared: one machine-owned FabricManager, each add_rts() is
///     `MRts(lib, fabric, config)` (the unmanaged run_time_sliced mode);
///   * kArbitrated: machine-owned FabricManager + FabricArbiter; tenants
///     register through the machine and each add_rts(tenant) is
///     `MRts(lib, arbiter.binding(tenant), config)` (run-multi, fig12,
///     ServeCore, the CMP layer).
/// attach_observability / attach_fault_model fan out over the owned
/// instances in creation order, which is precisely the order the migrated
/// call sites attached in (first attachment claims a shared fabric's event
/// stream — see MRts::attach_observability).

#include <memory>
#include <string>
#include <vector>

#include "arch/interconnect.h"
#include "rts/mrts.h"
#include "sim/arbiter.h"

namespace mrts {

/// How the machine's RTS instances relate to the reconfigurable fabric.
enum class Tenancy {
  kPrivate,     ///< every RTS owns a private fabric (single-app)
  kShared,      ///< one fabric, unmanaged free-for-all sharing
  kArbitrated,  ///< one fabric behind a FabricArbiter (multi-tenant / CMP)
};

struct MachineConfig {
  unsigned cores = 1;  ///< RISC cores (CMP scale-out; 1 = the paper machine)
  unsigned prcs = 4;
  unsigned cg_fabrics = 2;
  Tenancy tenancy = Tenancy::kPrivate;
  /// Core <-> fabric / intra-fabric timing topology. The default (all cores
  /// at hop distance 1) adds zero cycles over the legacy flat model.
  InterconnectParams interconnect;
  /// RTS configuration used by add_rts()/make_rts() overloads that do not
  /// pass their own.
  MRtsConfig rts;
};

/// Owns the machine topology and every machine-built RTS instance. Not
/// copyable; like the objects it owns, a Machine must not be shared across
/// threads (one Machine per sweep point).
class Machine {
 public:
  /// \p lib must outlive the machine. Throws std::invalid_argument on a
  /// zero-core topology or invalid interconnect distances.
  Machine(const IseLibrary& lib, MachineConfig config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  const IseLibrary& library() const { return *lib_; }
  const Interconnect& interconnect() const { return interconnect_; }

  /// The shared fabric (kShared/kArbitrated only; throws std::logic_error
  /// for kPrivate machines, whose fabrics live inside their MRts instances).
  FabricManager& fabric();
  /// The arbiter (kArbitrated only; throws std::logic_error otherwise).
  FabricArbiter& arbiter();

  /// Registers a tenant on the arbitrated fabric (kArbitrated only; throws
  /// std::logic_error otherwise). Exactly FabricArbiter::register_tenant.
  FabricArbiter::Registration register_tenant(std::string name,
                                              TenantPolicy policy);

  /// Builds a machine-owned RTS instance wired according to the tenancy
  /// (see the file header for the exact constructions). The no-argument /
  /// tenant-only forms use config().rts. The tenant overloads require
  /// kArbitrated (std::logic_error otherwise) and throw
  /// std::invalid_argument for a non-admitted tenant (the admission
  /// bounce, unchanged from constructing MRts off a dead binding).
  RuntimeSystem& add_rts();
  RuntimeSystem& add_rts(const MRtsConfig& config);
  RuntimeSystem& add_rts(TenantId tenant);
  RuntimeSystem& add_rts(TenantId tenant, const MRtsConfig& config);

  /// Caller-owned variant for high-churn users (the serving layer builds and
  /// destroys one instance per job): same wiring as add_rts(tenant, config)
  /// but the machine keeps no reference. kArbitrated only.
  std::unique_ptr<MRts> make_rts(TenantId tenant, const MRtsConfig& config);

  std::size_t num_rts() const { return owned_.size(); }
  RuntimeSystem& rts(std::size_t i) { return *owned_[i]; }
  /// Concrete access for stats/tests (machine-built instances are MRts).
  MRts& mrts(std::size_t i) { return *owned_[i]; }

  /// Unified lifecycle: fans out over the owned instances in creation
  /// order. Call after all add_rts() calls, before running (the same
  /// construct -> attach -> run sequence every legacy call site used).
  void attach_observability(TraceRecorder* trace, CounterRegistry* counters);
  /// Returns true when any owned instance accepted the model.
  bool attach_fault_model(FaultModel* model);

 private:
  const IseLibrary* lib_;
  MachineConfig config_;
  Interconnect interconnect_;
  std::unique_ptr<FabricManager> fabric_;  ///< kShared/kArbitrated
  std::unique_ptr<FabricArbiter> arbiter_;  ///< kArbitrated
  std::vector<std::unique_ptr<MRts>> owned_;
};

}  // namespace mrts
