#pragma once
/// \file schedule.h
/// Application traces. A trace is the sequence of functional-block instances
/// the core processor executes; each instance carries the programmed trigger
/// instruction (the static forecast embedded in the binary) and the *actual*
/// interleaved kernel-execution schedule of that instance (which varies with
/// the input data — this variation is what the run-time system adapts to).

#include <string>
#include <vector>

#include "isa/trigger.h"
#include "util/types.h"

namespace mrts {

/// One kernel execution in program order: \p gap_before is the number of
/// non-kernel (plain software) cycles the core spends before starting it.
struct ExecEvent {
  KernelId kernel = kInvalidKernel;
  Cycles gap_before = 0;
};

/// One dynamic instance of a functional block.
struct FunctionalBlockInstance {
  FunctionalBlockId functional_block = kInvalidFunctionalBlock;
  /// Forecast embedded in the binary (from offline profiling); the same for
  /// every instance of the block.
  TriggerInstruction programmed;
  /// Actual execution schedule of this instance.
  std::vector<ExecEvent> events;
  /// Non-kernel cycles after the last kernel execution.
  Cycles tail_gap = 0;

  std::size_t executions_of(KernelId k) const {
    std::size_t n = 0;
    for (const auto& e : events) {
      if (e.kernel == k) ++n;
    }
    return n;
  }
};

struct ApplicationTrace {
  std::string name;
  std::vector<FunctionalBlockInstance> blocks;

  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.events.size();
    return n;
  }
};

/// Derives the programmed trigger instruction of a block instance from its
/// schedule, assuming RISC-mode execution latencies (this is exactly what an
/// offline profiling run would measure): e = execution count, tf = cycles
/// from block start to the first execution start, tb = average gap between
/// the end of one execution and the start of the next of the same kernel.
TriggerInstruction derive_trigger(
    const FunctionalBlockInstance& instance,
    const std::vector<Cycles>& risc_latency_by_kernel);

}  // namespace mrts
