#pragma once
/// \file schedule.h
/// Application traces. A trace is the sequence of functional-block instances
/// the core processor executes; each instance carries the programmed trigger
/// instruction (the static forecast embedded in the binary) and the *actual*
/// interleaved kernel-execution schedule of that instance (which varies with
/// the input data — this variation is what the run-time system adapts to).

#include <string>
#include <vector>

#include "isa/trigger.h"
#include "util/types.h"

namespace mrts {

/// One kernel execution in program order: \p gap_before is the number of
/// non-kernel (plain software) cycles the core spends before starting it.
struct ExecEvent {
  KernelId kernel = kInvalidKernel;
  Cycles gap_before = 0;
};

/// A maximal run of consecutive executions of the same kernel, decoded once
/// from an instance's event list (finalize_instance_runs). The batched
/// frame-execution fast path dispatches whole runs through
/// RuntimeSystem::execute_run instead of one virtual call per event.
struct ExecRun {
  KernelId kernel = kInvalidKernel;
  std::uint32_t first_event = 0;  ///< index of the run's first event
  std::uint32_t count = 0;        ///< number of consecutive events
  Cycles gap_total = 0;           ///< sum of gap_before over the run's events
  /// gap_before of the first event, copied here so the steady-state fast
  /// path never has to touch the (much larger) event array.
  Cycles first_gap = 0;
};

/// One dynamic instance of a functional block.
struct FunctionalBlockInstance {
  FunctionalBlockId functional_block = kInvalidFunctionalBlock;
  /// Forecast embedded in the binary (from offline profiling); the same for
  /// every instance of the block.
  TriggerInstruction programmed;
  /// Actual execution schedule of this instance.
  std::vector<ExecEvent> events;
  /// Run-compressed view of \p events (derived; see finalize_instance_runs).
  /// Empty = not decoded yet; run_block then derives it on the fly. Mutating
  /// \p events invalidates this — call finalize_instance_runs again (or
  /// clear it) afterwards.
  std::vector<ExecRun> runs;
  /// Non-kernel cycles after the last kernel execution.
  Cycles tail_gap = 0;

  std::size_t executions_of(KernelId k) const {
    std::size_t n = 0;
    for (const auto& e : events) {
      if (e.kernel == k) ++n;
    }
    return n;
  }
};

struct ApplicationTrace {
  std::string name;
  std::vector<FunctionalBlockInstance> blocks;

  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.events.size();
    return n;
  }
};

/// Decodes \p events into maximal same-kernel runs, appending to \p runs
/// (cleared first). Exposed so run_block can derive runs into a scratch
/// buffer for hand-built instances that were never finalized.
void decode_runs(const std::vector<ExecEvent>& events,
                 std::vector<ExecRun>& runs);

/// Decodes the instance's event list into its run-compressed form (stored in
/// instance.runs). Workload builders call this once per instance so the
/// shared, read-only trace carries the decoded runs into every sweep point.
void finalize_instance_runs(FunctionalBlockInstance& instance);

/// Derives the programmed trigger instruction of a block instance from its
/// schedule, assuming RISC-mode execution latencies (this is exactly what an
/// offline profiling run would measure): e = execution count, tf = cycles
/// from block start to the first execution start, tb = average gap between
/// the end of one execution and the start of the next of the same kernel.
TriggerInstruction derive_trigger(
    const FunctionalBlockInstance& instance,
    const std::vector<Cycles>& risc_latency_by_kernel);

}  // namespace mrts
