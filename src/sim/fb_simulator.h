#pragma once
/// \file fb_simulator.h
/// Simulates one functional-block instance against a run-time system. The
/// core is single threaded: kernel executions and the surrounding software
/// run back to back, while reconfiguration proceeds concurrently on the
/// wall clock (the FabricManager inside the RTS tracks absolute cycles).

#include <array>

#include "rts/rts_interface.h"
#include "sim/schedule.h"
#include "util/types.h"

namespace mrts {

class TraceRecorder;

struct FbRunResult {
  Cycles cycles = 0;               ///< total block duration
  Cycles blocking_overhead = 0;    ///< RTS selection stall at block entry
  std::array<std::uint64_t, kNumImplKinds> impl_executions{};
  std::array<Cycles, kNumImplKinds> impl_cycles{};
  BlockObservation observed;       ///< measured stats (fed back to the MPU)
  SelectionOutcome selection;
};

/// Runs \p instance starting at absolute cycle \p start. Calls on_trigger,
/// then executes every event, then reports the observation via on_block_end.
/// \p recorder (optional) receives a block-begin instant and a block-end
/// span event; RTS-internal events are recorded by whatever recorder the
/// RTS itself has attached (usually the same one).
FbRunResult run_block(RuntimeSystem& rts, const FunctionalBlockInstance& instance,
                      Cycles start, TraceRecorder* recorder = nullptr);

}  // namespace mrts
