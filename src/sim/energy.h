#pragma once
/// \file energy.h
/// First-order energy model (beyond the paper, which evaluates performance
/// only). Dynamic energy is charged per executed cycle with per-resource
/// rates, reconfiguration energy per transferred byte, and leakage per cycle
/// of wall-clock runtime. Default rates are plausible 90 nm numbers (LEON
/// core ~160 mW at 400 MHz -> 0.4 nJ/cycle; embedded-FPGA execution is the
/// most expensive, the CG ALU array in between); they are parameters, not
/// claims.

#include "arch/fabric_manager.h"
#include "sim/app_simulator.h"

namespace mrts {

struct EnergyParams {
  // Dynamic execution energy [nJ per cycle spent in the implementation].
  double core_nj_per_cycle = 0.40;   ///< RISC-mode execution + gap code
  double accel_nj_per_cycle = 0.70;  ///< ISE execution on FG/CG data paths
  double mono_nj_per_cycle = 0.55;   ///< monoCG-Extension on one CG fabric

  // Reconfiguration energy [nJ per transferred byte].
  double fg_reconfig_nj_per_byte = 1.2;
  double cg_reconfig_nj_per_byte = 0.5;

  // Static (leakage) power of the whole chip [nJ per runtime cycle].
  double leakage_nj_per_cycle = 0.15;
};

struct EnergyBreakdown {
  double execution_mj = 0.0;
  double reconfiguration_mj = 0.0;
  double leakage_mj = 0.0;

  double total_mj() const {
    return execution_mj + reconfiguration_mj + leakage_mj;
  }
  /// Energy-delay product [mJ * Mcycles]; lower is better.
  double edp(Cycles runtime_cycles) const {
    return total_mj() * static_cast<double>(runtime_cycles) / 1e6;
  }
};

/// Estimates the energy of one application run. \p run supplies the cycle
/// distribution over implementation kinds, \p reconfig the transfer
/// volumes (query the RTS's FabricManager after the run).
EnergyBreakdown estimate_energy(const AppRunResult& run,
                                const ReconfigStats& reconfig,
                                const EnergyParams& params = {});

}  // namespace mrts
