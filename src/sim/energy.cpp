#include "sim/energy.h"

namespace mrts {

EnergyBreakdown estimate_energy(const AppRunResult& run,
                                const ReconfigStats& reconfig,
                                const EnergyParams& params) {
  const auto cycles_of = [&run](ImplKind kind) {
    return static_cast<double>(
        run.impl_cycles[static_cast<std::size_t>(kind)]);
  };

  double kernel_cycles = 0.0;
  for (auto c : run.impl_cycles) kernel_cycles += static_cast<double>(c);
  // Everything outside kernel executions (gaps, trigger handling, selection
  // stalls) runs on the core.
  const double other_cycles =
      static_cast<double>(run.total_cycles) > kernel_cycles
          ? static_cast<double>(run.total_cycles) - kernel_cycles
          : 0.0;

  EnergyBreakdown out;
  const double execution_nj =
      (cycles_of(ImplKind::kRisc) + other_cycles) * params.core_nj_per_cycle +
      (cycles_of(ImplKind::kIntermediate) + cycles_of(ImplKind::kFullIse) +
       cycles_of(ImplKind::kCoveredIse)) *
          params.accel_nj_per_cycle +
      cycles_of(ImplKind::kMonoCg) * params.mono_nj_per_cycle;
  const double reconfig_nj =
      static_cast<double>(reconfig.fg_bytes) * params.fg_reconfig_nj_per_byte +
      static_cast<double>(reconfig.cg_bytes) * params.cg_reconfig_nj_per_byte;
  const double leakage_nj =
      static_cast<double>(run.total_cycles) * params.leakage_nj_per_cycle;

  out.execution_mj = execution_nj * 1e-6;
  out.reconfiguration_mj = reconfig_nj * 1e-6;
  out.leakage_mj = leakage_nj * 1e-6;
  return out;
}

}  // namespace mrts
