# Smoke test for the flight-recorder CLI path, run as a ctest via
# `cmake -P` (no external JSON tools needed): a traced `mrts_cli run` must
# exit 0 and emit a Chrome trace containing the load/decision/feedback
# events, `trace-summary` must accept the JSONL flavour, and trailing
# arguments must be rejected with the usage exit code 1.
#
# Inputs: -DMRTS_CLI=<path to mrts_cli> -DWORK_DIR=<scratch dir>

if(NOT DEFINED MRTS_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DMRTS_CLI=... -DWORK_DIR=... -P trace_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace_json "${WORK_DIR}/trace_smoke.json")
set(trace_jsonl "${WORK_DIR}/trace_smoke.jsonl")

# 1. Traced run writes Chrome trace-event JSON.
execute_process(
  COMMAND "${MRTS_CLI}" run h264 2 2 2 --trace "${trace_json}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced run exited ${rc}, expected 0")
endif()

file(READ "${trace_json}" json)
foreach(needle
    "{\"traceEvents\":["   # Chrome JSON object format
    "\"ph\":\"X\""         # span events
    "\"ph\":\"M\""         # track metadata
    "reconfig_start"       # fabric loads
    "ecu_decision"         # ECU implementation switches
    "mpu_error")           # MPU forecast feedback
  string(FIND "${json}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace JSON is missing '${needle}'")
  endif()
endforeach()

# 2. JSONL flavour round-trips through trace-summary.
execute_process(
  COMMAND "${MRTS_CLI}" run h264 2 2 2 --trace "${trace_jsonl}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "JSONL traced run exited ${rc}, expected 0")
endif()
execute_process(
  COMMAND "${MRTS_CLI}" trace-summary "${trace_jsonl}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE summary)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace-summary exited ${rc}, expected 0")
endif()
string(FIND "${summary}" "reconfig_start" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "trace-summary output is missing reconfig_start")
endif()

# 3. Exit-code contract: trailing arguments are usage errors (1), malformed
#    trace input is an input error (2).
execute_process(
  COMMAND "${MRTS_CLI}" run h264 2 2 2 unexpected-trailing-arg
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "trailing argument exited ${rc}, expected usage error 1")
endif()
file(WRITE "${WORK_DIR}/trace_smoke_bad.jsonl" "this is not json\n")
execute_process(
  COMMAND "${MRTS_CLI}" trace-summary "${WORK_DIR}/trace_smoke_bad.jsonl"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "malformed trace exited ${rc}, expected input error 2")
endif()

message(STATUS "trace smoke OK: ${trace_json}")
