# CMP smoke for the run-cmp verb, run as a ctest via `cmake -P`: the CMP
# scheduler must be deterministic (identical stdout run-to-run), must honour
# the degenerate-case contract (one core at hop distance 1 completes in
# exactly the cycles run-multi reports for the same workload), must charge
# transfer cycles on non-flat topologies, and must hold the 0/1/2 exit-code
# contract for malformed invocations.
#
# Inputs: -DMRTS_CLI=<path to mrts_cli> -DWORK_DIR=<scratch dir>

if(NOT DEFINED MRTS_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DMRTS_CLI=... -DWORK_DIR=... -P cmp_smoke.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli out_var expected_rc)
  execute_process(
    COMMAND "${MRTS_CLI}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL expected_rc)
    message(FATAL_ERROR "'${ARGN}' exited ${rc}, expected ${expected_rc}:\n${out}${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# --- 1. Determinism: the same invocation twice is byte-identical. -----------
run_cli(first 0 run-cmp 4 4 2 6 A=weighted:3 B=reserved:1+1@2)
run_cli(second 0 run-cmp 4 4 2 6 A=weighted:3 B=reserved:1+1@2)
if(NOT first STREQUAL second)
  message(FATAL_ERROR "run-cmp is not deterministic across runs")
endif()

# --- 2. Degenerate case: one core at distance 1 = run-multi's cycles. -------
run_cli(cmp1 0 run-cmp 1 4 2 6 A=weighted:2)
run_cli(multi 0 run-multi 4 2 6 A=weighted:2)
string(REGEX MATCH "makespan ([0-9.]+) Mcycles" _ "${cmp1}")
set(cmp_mcycles "${CMAKE_MATCH_1}")
string(REGEX MATCH "total ([0-9.]+) Mcycles" _ "${multi}")
set(multi_mcycles "${CMAKE_MATCH_1}")
if(NOT cmp_mcycles OR NOT cmp_mcycles STREQUAL multi_mcycles)
  message(FATAL_ERROR "one-core run-cmp makespan '${cmp_mcycles}' != "
                      "run-multi total '${multi_mcycles}'")
endif()
if(NOT cmp1 MATCHES "port wait")
  message(FATAL_ERROR "run-cmp table is missing the port-wait column:\n${cmp1}")
endif()

# --- 3. Topology: a hop stride charges transfer cycles; flat does not. ------
run_cli(flat 0 run-cmp 3 4 2 6)
run_cli(chain 0 run-cmp 3 4 2 6 --hop-stride 2)
if(NOT chain MATCHES "\\| 5 +\\|")
  message(FATAL_ERROR "stride-2 chain does not place core 2 at 5 hops:\n${chain}")
endif()
string(REGEX MATCHALL "\\| 0 +\\| 0 +\\|" flat_zero "${flat}")
list(LENGTH flat_zero flat_zero_rows)
if(flat_zero_rows EQUAL 0)
  message(FATAL_ERROR "flat topology charged transfer cycles:\n${flat}")
endif()

# --- 4. Exit-code contract. -------------------------------------------------
run_cli(_ 2 run-cmp 2 4 2 6 A=weighted:1 B=weighted:1 C=weighted:1) # specs > cores
run_cli(_ 2 run-cmp 2 4 2 6 A=bogus)        # malformed policy: input error
run_cli(_ 2 run-cmp 0 4 2 6)                # zero cores: input error
run_cli(_ 1 run-cmp 2 4 2 6 --hop-stride)   # missing flag value: usage error
run_cli(_ 1 run-cmp 2 4 2 6 --unknown-flag) # unknown flag: usage error
run_cli(_ 1 run-cmp 2 4)                    # too few positionals: usage error

message(STATUS "cmp smoke OK: deterministic, degenerate-exact, 0/1/2 contract holds")
