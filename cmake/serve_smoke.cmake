# Serve-smoke, run as a ctest via `cmake -P`: mrts_serve + mrts_loadgen
# end to end over a real AF_UNIX socket.
#
#   1. Churn leg: 40 connect/submit/poll/disconnect cycles with cancel and
#      hard-drop cycles mixed in — the shutdown summary must account every
#      session and fd (leaked=0) and the drain must leave nothing queued.
#   2. Replay leg: a no-drop run records live-served reports
#      (--save-reports) and the server's job log; `mrts_serve --replay`
#      of that log must reproduce the reports byte-identically.
#   3. Exit-code contract: --help is 0, usage errors are 1, input errors
#      (unreadable/garbage job logs) are 2, for both binaries.
#
# The server runs in the background, so the two live legs go through
# `sh -c` (the serving layer is POSIX-only anyway); `timeout` bounds each
# leg so a wedged server fails fast instead of hanging ctest.
#
# Inputs: -DMRTS_SERVE=<path> -DMRTS_LOADGEN=<path> -DWORK_DIR=<scratch dir>

if(NOT DEFINED MRTS_SERVE OR NOT DEFINED MRTS_LOADGEN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DMRTS_SERVE=... -DMRTS_LOADGEN=... "
                      "-DWORK_DIR=... -P serve_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- 1. Churn: drops and cancels must not leak sessions or fds. -------------
execute_process(
  COMMAND timeout 120 sh -ec "\
'${MRTS_SERVE}' --socket '${WORK_DIR}/churn.sock' --exit-after 40 \
    --job-log '${WORK_DIR}/churn.joblog' > '${WORK_DIR}/churn_summary.txt' & \
srv=$!; \
'${MRTS_LOADGEN}' --socket '${WORK_DIR}/churn.sock' --cycles 40 \
    --jobs-per-cycle 2 --seed 7 --cancel-every 5 --drop-every 7 --quiet; \
wait $srv"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "churn leg exited ${rc}:\n${out}${err}")
endif()

file(READ "${WORK_DIR}/churn_summary.txt" summary)
if(NOT summary MATCHES "sessions opened=40 closed=40 leaked=0")
  message(FATAL_ERROR "churn leg leaked sessions:\n${summary}")
endif()
if(NOT summary MATCHES "fds opened=40 closed=40 leaked=0")
  message(FATAL_ERROR "churn leg leaked fds:\n${summary}")
endif()
if(NOT summary MATCHES "queued_left=0")
  message(FATAL_ERROR "churn drain left queued jobs:\n${summary}")
endif()

# --- 2. Replay: live-served reports == job-log replay, byte for byte. -------
# No --drop-every here: a hard-dropped client's jobs still run server-side
# and appear in the replay, but the client was gone before recording them.
execute_process(
  COMMAND timeout 120 sh -ec "\
'${MRTS_SERVE}' --socket '${WORK_DIR}/replay.sock' --exit-after 20 \
    --job-log '${WORK_DIR}/replay.joblog' --quiet & \
srv=$!; \
'${MRTS_LOADGEN}' --socket '${WORK_DIR}/replay.sock' --cycles 20 \
    --jobs-per-cycle 2 --seed 11 \
    --save-reports '${WORK_DIR}/live.reports' --quiet; \
wait $srv"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "replay leg exited ${rc}:\n${out}${err}")
endif()

execute_process(
  COMMAND "${MRTS_SERVE}" --replay "${WORK_DIR}/replay.joblog"
          --out "${WORK_DIR}/replayed.reports"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "replay exited ${rc}: ${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORK_DIR}/live.reports" "${WORK_DIR}/replayed.reports"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "live-served reports and job-log replay differ — the "
                      "serving determinism contract (docs/SERVING.md) broke")
endif()

# --- 3. Exit-code contract: 0 --help, 1 usage, 2 input errors. --------------
function(expect_exit label expected)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL ${expected})
    message(FATAL_ERROR "${label}: exited ${rc}, expected ${expected}")
  endif()
endfunction()

expect_exit("mrts_serve --help" 0 "${MRTS_SERVE}" --help)
expect_exit("mrts_loadgen --help" 0 "${MRTS_LOADGEN}" --help)
expect_exit("mrts_serve unknown flag" 1 "${MRTS_SERVE}" --no-such-flag)
expect_exit("mrts_serve without --socket" 1 "${MRTS_SERVE}")
expect_exit("mrts_loadgen without --cycles" 1
            "${MRTS_LOADGEN}" --socket "${WORK_DIR}/churn.sock")
expect_exit("mrts_serve --replay missing file" 2
            "${MRTS_SERVE}" --replay "${WORK_DIR}/does_not_exist.joblog")
file(WRITE "${WORK_DIR}/garbage.joblog" "this is not a job log\n")
expect_exit("mrts_serve --replay garbage" 2
            "${MRTS_SERVE}" --replay "${WORK_DIR}/garbage.joblog")

message(STATUS "serve smoke OK: zero leaks, replay byte-identical")
