# Exit-code contract of `mrts_cli select` trigger-spec parsing, run as a
# ctest via `cmake -P`: well-formed KERNEL=e[,tf,tb] specs must select
# (exit 0); partially-parsing or non-finite numbers must be input errors
# (exit 2) instead of being silently truncated the way a bare strtod
# would parse "1.5x" as 1.5 or "" as 0.
#
# Inputs: -DMRTS_CLI=<path to mrts_cli> -DWORK_DIR=<scratch dir>

if(NOT DEFINED MRTS_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DMRTS_CLI=... -DWORK_DIR=... -P select_parse_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(lib "${WORK_DIR}/select_parse_lib.txt")
file(WRITE "${lib}" "# minimal library for CLI parse tests
datapath dp0 FG units=1 bitstream=83047
kernel   sad sw=520
ise      sad_v1 kernel=sad dps=dp0 lat=520,100
")

function(expect_select rc_want)
  execute_process(
    COMMAND "${MRTS_CLI}" select "${lib}" 2 2 ${ARGN}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL ${rc_want})
    message(FATAL_ERROR "select ${ARGN}: exited ${rc}, expected ${rc_want}")
  endif()
endfunction()

# Well-formed specs select fine.
expect_select(0 "sad=120")
expect_select(0 "sad=120.5")
expect_select(0 "sad=120,400,90")

# Trailing garbage after a number used to be silently dropped by strtod.
expect_select(2 "sad=1.5x")
expect_select(2 "sad=120,400x")
expect_select(2 "sad=120,400,90,7")

# Non-finite / empty / negative values are input errors, not zero.
expect_select(2 "sad=inf")
expect_select(2 "sad=nan")
expect_select(2 "sad=")
expect_select(2 "sad=-3")
expect_select(2 "sad=120,-1")

message(STATUS "select parse smoke OK")
