# Smoke test for the trace-analysis CLI paths, run as a ctest via
# `cmake -P` (no external JSON tools needed):
#  * `run --report` writes a markdown run report alongside the trace;
#  * `trace-analyze` renders the same trace to stdout (markdown), to a JSON
#    file (--out), and is byte-deterministic across invocations;
#  * the cycle-accounting table carries every row with a matching total;
#  * parser hardening: empty files and trailing newlines are zero-event
#    successes, truncated/garbage lines are input errors (exit 2) naming the
#    bad line, and a missing file is an input error too;
#  * `run-multi` prints bounced tenants sorted by name;
#  * `trace-summary` surfaces the span-duration percentiles.
#
# Inputs: -DMRTS_CLI=<path to mrts_cli> -DWORK_DIR=<scratch dir>

if(NOT DEFINED MRTS_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DMRTS_CLI=... -DWORK_DIR=... -P analysis_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace "${WORK_DIR}/analysis_smoke.jsonl")
set(report_md "${WORK_DIR}/analysis_smoke_report.md")
set(report_json "${WORK_DIR}/analysis_smoke_report.json")

# 1. Traced run with --report writes both artifacts.
execute_process(
  COMMAND "${MRTS_CLI}" run h264 2 2 2 --trace "${trace}" --report "${report_md}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run --report exited ${rc}, expected 0")
endif()
file(READ "${report_md}" md)
foreach(needle "# Run report" "## Cycle accounting" "| core |" "## Occupancy"
        "## Reconfiguration critical path")
  string(FIND "${md}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "run report is missing '${needle}'")
  endif()
endforeach()

# 2. trace-analyze renders the saved trace: markdown to stdout, JSON via
#    --out, and both runs of the same input are byte-identical.
execute_process(
  COMMAND "${MRTS_CLI}" trace-analyze "${trace}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE stdout_md)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace-analyze exited ${rc}, expected 0")
endif()
string(FIND "${stdout_md}" "| core |" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "trace-analyze stdout is missing the core accounting row")
endif()
execute_process(
  COMMAND "${MRTS_CLI}" trace-analyze "${trace}" --out "${report_json}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace-analyze --out exited ${rc}, expected 0")
endif()
file(READ "${report_json}" json_a)
string(FIND "${json_a}" "\"schema\": \"mrts.run_report.v1\"" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "trace-analyze JSON is missing the schema marker")
endif()
execute_process(
  COMMAND "${MRTS_CLI}" trace-analyze "${trace}" --out "${report_json}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
file(READ "${report_json}" json_b)
if(NOT json_a STREQUAL json_b)
  message(FATAL_ERROR "trace-analyze JSON is not deterministic")
endif()

# 3. Parser hardening. Empty file: zero-event success.
file(WRITE "${WORK_DIR}/empty.jsonl" "")
execute_process(
  COMMAND "${MRTS_CLI}" trace-analyze "${WORK_DIR}/empty.jsonl"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "empty trace exited ${rc}, expected 0")
endif()
# Truncated last line: input error naming the line.
file(READ "${trace}" good)
string(SUBSTRING "${good}" 0 120 truncated)
file(WRITE "${WORK_DIR}/truncated.jsonl" "${truncated}")
execute_process(
  COMMAND "${MRTS_CLI}" trace-analyze "${WORK_DIR}/truncated.jsonl"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "truncated trace exited ${rc}, expected input error 2")
endif()
string(FIND "${err}" "line" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "truncated-trace error does not name the bad line: ${err}")
endif()
# Missing file: input error.
execute_process(
  COMMAND "${MRTS_CLI}" trace-analyze "${WORK_DIR}/no_such_file.jsonl"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "missing trace exited ${rc}, expected input error 2")
endif()
# Usage error: trailing argument after --out value.
execute_process(
  COMMAND "${MRTS_CLI}" trace-analyze "${trace}" --out "${report_json}" extra
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "trailing argument exited ${rc}, expected usage error 1")
endif()

# 4. run-multi bounced tenants print sorted by name (zeta registered first,
#    alpha second: the diagnostics must list alpha before zeta).
execute_process(
  COMMAND "${MRTS_CLI}" run-multi 2 1 3 zeta=reserved:9+9 alpha=reserved:8+8
          video=weighted:2
  RESULT_VARIABLE rc OUTPUT_VARIABLE multi)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run-multi exited ${rc}, expected 0")
endif()
string(FIND "${multi}" "alpha" alpha_pos)
string(FIND "${multi}" "zeta" zeta_pos)
if(alpha_pos EQUAL -1 OR zeta_pos EQUAL -1)
  message(FATAL_ERROR "run-multi output is missing a bounced tenant")
endif()
if(alpha_pos GREATER zeta_pos)
  message(FATAL_ERROR "bounced tenants are not sorted by name")
endif()

# 5. trace-summary surfaces the span-duration percentiles.
execute_process(
  COMMAND "${MRTS_CLI}" trace-summary "${trace}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE summary)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace-summary exited ${rc}, expected 0")
endif()
string(FIND "${summary}" "span durations:" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "trace-summary output is missing the percentile line")
endif()

message(STATUS "analysis smoke OK: ${report_json}")
