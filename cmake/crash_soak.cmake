# Crash-soak for checkpoint/restore, run as a ctest via `cmake -P`: a run
# that is interrupted (checkpoint at a cycle boundary — the moment a kill
# would land) and resumed in a *fresh* process must be byte-identical to the
# uninterrupted golden run: same stdout, same trace JSONL, same run report.
# Both legs execute in separate scratch directories with identical relative
# output paths, so any divergence shows up as a file diff, not a path diff.
# Malformed snapshots must be input errors (exit 2), never crashes.
#
# Inputs: -DMRTS_CLI=<path to mrts_cli> -DWORK_DIR=<scratch dir>

if(NOT DEFINED MRTS_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DMRTS_CLI=... -DWORK_DIR=... -P crash_soak.cmake")
endif()

# One faulty observed workload for every leg: faults make the state worth
# checkpointing (RNG cursor, quarantines, fault counters must all resume).
set(app h264 4 1 3 --fault-rate 0.05 --fault-seed 7 --max-retries 1
    --trace run.jsonl --report report.csv)

function(run_leg dir out_var)
  file(MAKE_DIRECTORY "${WORK_DIR}/${dir}")
  execute_process(
    COMMAND "${MRTS_CLI}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}/${dir}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "'${ARGN}' in ${dir} exited ${rc}:\n${out}${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

function(expect_identical label a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  "${WORK_DIR}/${a}" "${WORK_DIR}/${b}" RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: ${a} and ${b} differ — the restored run "
                        "is not bit-identical to the golden run")
  endif()
endfunction()

# --- 1. Golden: the uninterrupted run. --------------------------------------
run_leg(golden golden_stdout run ${app})

# --- 2. Kill + restore: checkpoint mid-run, resume in a fresh process. ------
run_leg(resumed ckpt_stdout checkpoint ${app} --at-cycle 1000000
        --out run.snapshot)
run_leg(resumed restore_stdout restore run.snapshot)

if(NOT restore_stdout STREQUAL golden_stdout)
  file(WRITE "${WORK_DIR}/golden_stdout.txt" "${golden_stdout}")
  file(WRITE "${WORK_DIR}/restore_stdout.txt" "${restore_stdout}")
  message(FATAL_ERROR "restored stdout differs from the golden run "
                      "(see golden_stdout.txt / restore_stdout.txt)")
endif()
expect_identical("trace" golden/run.jsonl resumed/run.jsonl)
expect_identical("report" golden/report.csv resumed/report.csv)

# --- 3. Periodic checkpoints: run --checkpoint-every, restore the last one. -
set(periodic ${app} --checkpoint-every 2000000 --checkpoint ckpt.snapshot)
run_leg(periodic periodic_stdout run ${periodic})
if(NOT periodic_stdout MATCHES "checkpoint stream: [1-9]")
  message(FATAL_ERROR "periodic run wrote no checkpoints:\n${periodic_stdout}")
endif()
file(COPY "${WORK_DIR}/periodic/ckpt.snapshot"
     DESTINATION "${WORK_DIR}/periodic_resumed")
run_leg(periodic_resumed periodic_restore_stdout restore ckpt.snapshot)
if(NOT periodic_restore_stdout STREQUAL periodic_stdout)
  file(WRITE "${WORK_DIR}/periodic_stdout.txt" "${periodic_stdout}")
  file(WRITE "${WORK_DIR}/periodic_restore_stdout.txt"
       "${periodic_restore_stdout}")
  message(FATAL_ERROR "restore of the last periodic checkpoint diverged "
                      "(see periodic_stdout.txt / periodic_restore_stdout.txt)")
endif()
expect_identical("periodic trace" periodic/run.jsonl periodic_resumed/run.jsonl)
expect_identical("periodic report" periodic/report.csv
                 periodic_resumed/report.csv)

# --- 4. Exit-code contract: broken snapshots are input errors (2). ----------
file(WRITE "${WORK_DIR}/garbage.snapshot" "this is not an mrts snapshot\n")
execute_process(
  COMMAND "${MRTS_CLI}" restore "${WORK_DIR}/garbage.snapshot"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "garbage snapshot exited ${rc}, expected input error 2")
endif()
if(NOT err MATCHES "offset")
  message(FATAL_ERROR "garbage snapshot error does not name the failing "
                      "byte offset: ${err}")
endif()
execute_process(
  COMMAND "${MRTS_CLI}" restore "${WORK_DIR}/does_not_exist.snapshot"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "missing snapshot exited ${rc}, expected input error 2")
endif()
# Checkpointing past the end of the run: nothing left to save.
execute_process(
  COMMAND "${MRTS_CLI}" checkpoint h264 2 1 2 --at-cycle 999999999999
          --out "${WORK_DIR}/late.snapshot"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--at-cycle past run end exited ${rc}, expected 2")
endif()

message(STATUS "crash soak OK: restored runs are bit-identical")
