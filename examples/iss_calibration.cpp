// Grounding the latency tables: runs the H.264 kernel micro-programs on the
// core-processor instruction-set simulator (riscsim) and the CG context
// programs on the CG-fabric executor (cgsim), printing the measured cycle
// counts next to the workload model's latency table. This is the "inputs of
// the cycle-accurate simulator" step of Section 5.1 — in the paper those
// numbers come from place-and-route and ASIC synthesis; here they come from
// executing real instruction sequences under the published timing parameters.
//
// Usage: ./build/examples/iss_calibration

#include <cstdio>

#include "cgsim/cg_kernel_programs.h"
#include "isa/ise_identify.h"
#include "riscsim/kernel_programs.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/h264_app.h"

using namespace mrts;

int main() {
  // --- RISC-mode micro-programs ---------------------------------------------
  TextTable risc_table(
      {"micro-program", "instructions", "cycles", "CPI", "work items"});
  struct Item {
    const char* program;
    unsigned work_items;  // e.g. pixels or coefficients processed
  };
  const Item items[] = {
      {"sad_4x4", 16},     {"dct4_row", 4},    {"quant_16", 16},
      {"deblock_edge", 4}, {"zigzag_16", 16},  {"hadamard_4", 4},
  };
  for (const auto& item : items) {
    const auto r = riscsim::measure_kernel(item.program);
    risc_table.add_values(
        item.program, r.instructions, r.cycles,
        static_cast<double>(r.cycles) / static_cast<double>(r.instructions),
        item.work_items);
  }
  std::printf("Core processor (LEON-like, 400 MHz) micro-program "
              "measurements:\n%s",
              risc_table.render().c_str());

  // --- CG context programs --------------------------------------------------
  TextTable cg_table({"context program", "instructions (dyn)", "cycles",
                      "context bytes", "stream time [us]"});
  for (const auto& name : cgsim::cg_kernel_program_names()) {
    const auto& program = cgsim::cg_kernel_program(name);
    const auto r = cgsim::measure_cg_kernel(name);
    // Streaming into the context memory costs 2 cycles per 80-bit
    // instruction (Section 5.1).
    const double stream_us =
        static_cast<double>(program.code.size()) * 2.0 / kCoreClockHz * 1e6;
    cg_table.add_values(name, r.instructions, r.cycles,
                        program.stream_bytes(), format_double(stream_us, 3));
  }
  std::printf("\nCG fabric (400 MHz, 80-bit instructions, zero-overhead "
              "loops) context-program measurements:\n%s",
              cg_table.render().c_str());

  // --- relate to the workload model's latency table -------------------------
  const H264Application app = build_h264_application({});
  TextTable model({"kernel", "model RISC latency", "note"});
  struct Pair {
    const char* kernel;
    const char* note;
  };
  const Pair pairs[] = {
      {"SAD", "≈ sad_4x4 per 4x4 sub-block x 16 sub-blocks / search step"},
      {"DCT4", "≈ dct4_row x 8 rows+cols per 4x4 block batch"},
      {"QUANT", "≈ quant_16 x blocks per macroblock partition"},
      {"LF_FILTER", "≈ deblock_edge x edges per filtering call"},
      {"SCAN", "≈ zigzag_16 per coded block"},
      {"SATD", "≈ hadamard_4 x 2 stages x rows + SAD tree"},
  };
  for (const auto& p : pairs) {
    const Kernel& k = app.library.kernel(app.library.find_kernel(p.kernel));
    model.add_values(p.kernel, k.sw_latency, p.note);
  }
  std::printf("\nWorkload-model latency table (per kernel execution):\n%s",
              model.render().c_str());
  std::printf("\nThe model's few-hundred-cycle kernel latencies correspond "
              "to small batches of the measured micro-programs; the CG "
              "programs process a work item in ~6-10 cycles vs ~20-40 on the "
              "core, matching the CG-ISE speedups of the ISE library.\n");

  // --- automatic ISE identification ----------------------------------------
  // Closing the loop: profile each micro-program and derive an ISE build
  // specification (the toy version of the paper's compile-time tool chain).
  TextTable ident({"micro-program", "sw cycles", "ctrl fraction",
                   "FG ctrl speedup", "CG data speedup", "variants"});
  for (const auto& item : items) {
    riscsim::Cpu cpu;
    Rng rng(7);
    for (std::size_t addr = 0; addr < 2048; ++addr) {
      cpu.memory().write8(addr,
                          static_cast<std::uint8_t>(rng.next_below(256)));
    }
    const IseBuildSpec spec = identify_ise_spec(
        item.program, riscsim::kernel_program(item.program), cpu);
    IseLibrary lib;
    const KernelId k = build_kernel_ises(lib, spec);
    ident.add_values(item.program, spec.sw_latency,
                     format_double(spec.control_fraction, 2),
                     format_double(spec.fg_control_speedup, 1),
                     format_double(spec.cg_data_speedup, 1),
                     lib.kernel(k).ises.size());
  }
  std::printf("\nAutomatically identified ISE specifications (profile -> "
              "IseBuildSpec -> variant family):\n%s",
              ident.render().c_str());
  return 0;
}
