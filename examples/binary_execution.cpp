// The application as a binary on the core processor (paper Fig. 4): the
// H.264 trace is compiled into a riscsim program — encoded trigger
// instructions in the data segment, `trig`/`kexec`/`wait` in the text
// segment — and executed instruction by instruction on the core ISS with
// mRTS attached as the coprocessor. The result is cycle-exact with the
// abstract simulator.
//
// Usage: ./build/examples/binary_execution

#include <cstdio>

#include "riscsim/assembler.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/iss_bridge.h"
#include "workload/h264_app.h"

using namespace mrts;

int main() {
  H264AppParams params;
  params.frames = 4;
  params.macroblocks = 200;
  const H264Application app = build_h264_application(params);

  const IssApplication binary = compile_trace_to_binary(app.trace);
  std::printf("Compiled %u frames into a core binary: %zu instructions, "
              "%zu trigger blobs (%zu data-segment bytes).\n",
              params.frames, binary.program.code.size(),
              binary.data_segment.size(), binary.memory_bytes);

  // First instructions of the binary, as the core sees them:
  riscsim::Program head;
  head.code.assign(binary.program.code.begin(),
                   binary.program.code.begin() + 6);
  std::printf("\nText segment (first instructions):\n%s",
              riscsim::disassemble(head).c_str());

  MRts binary_rts(app.library, 2, 2);
  const IssRunResult iss = run_binary(binary, binary_rts);

  MRts abstract_rts(app.library, 2, 2);
  const Cycles abstract = run_application(abstract_rts, app.trace).total_cycles;

  std::printf("\nBinary execution:   %llu cycles (%llu instructions)\n"
              "Abstract simulator: %llu cycles\n"
              "Difference:         %lld cycle(s) — the final halt.\n",
              static_cast<unsigned long long>(iss.cycles),
              static_cast<unsigned long long>(iss.instructions),
              static_cast<unsigned long long>(abstract),
              static_cast<long long>(iss.cycles) -
                  static_cast<long long>(abstract));
  return 0;
}
