// Runs the full H.264 encoder workload (Section 5's evaluation application)
// against every run-time system in the library and prints a per-system and
// per-frame summary — a compact, human-readable version of the Fig. 8
// experiment for one fabric combination.
//
// Usage: ./build/examples/h264_encoder [PRCs] [CG fabrics] [frames]
//        defaults: 2 PRCs, 2 CG fabrics, 8 frames

#include <cstdio>
#include <cstdlib>

#include "baselines/morpheus4s_rts.h"
#include "baselines/offline_optimal_rts.h"
#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "util/table.h"
#include "workload/h264_app.h"

using namespace mrts;

int main(int argc, char** argv) {
  const unsigned prcs = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;
  const unsigned cg = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;
  const unsigned frames =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 8;

  H264AppParams params;
  params.frames = frames;
  const H264Application app = build_h264_application(params);
  const auto profile = profile_application(app.trace, app.library);

  std::printf("H.264 encoder, %u frames, CIF (%u macroblocks), %u PRCs + %u "
              "CG fabrics\n",
              frames, params.macroblocks, prcs, cg);

  RiscOnlyRts risc(app.library);
  MRts mrts_rts(app.library, cg, prcs);
  RisppRts rispp(app.library, cg, prcs);
  Morpheus4sRts morpheus(app.library, cg, prcs, profile);
  OfflineOptimalRts offline(app.library, cg, prcs, profile);

  const AppRunResult risc_run = run_application(risc, app.trace);

  TextTable table({"run-time system", "Mcycles", "speedup", "RISC execs",
                   "monoCG", "intermediate", "full-ISE", "covered"});
  auto report = [&](RuntimeSystem& rts) {
    const AppRunResult r = run_application(rts, app.trace);
    table.add_values(
        r.rts_name, format_mcycles(r.total_cycles),
        speedup(risc_run.total_cycles, r.total_cycles),
        r.impl_executions[static_cast<std::size_t>(ImplKind::kRisc)],
        r.impl_executions[static_cast<std::size_t>(ImplKind::kMonoCg)],
        r.impl_executions[static_cast<std::size_t>(ImplKind::kIntermediate)],
        r.impl_executions[static_cast<std::size_t>(ImplKind::kFullIse)],
        r.impl_executions[static_cast<std::size_t>(ImplKind::kCoveredIse)]);
    return r;
  };

  report(risc);
  const AppRunResult mrts_run = report(mrts_rts);
  report(rispp);
  report(morpheus);
  report(offline);
  std::printf("\n%s", table.render().c_str());

  // Per-frame view: the three blocks of each frame under mRTS.
  TextTable frames_table({"frame", "ME [Mcyc]", "EE [Mcyc]", "LF [Mcyc]"});
  for (unsigned f = 0; f < frames; ++f) {
    frames_table.add_values(
        f + 1, format_mcycles(mrts_run.block_cycles[f * 3 + 0]),
        format_mcycles(mrts_run.block_cycles[f * 3 + 1]),
        format_mcycles(mrts_run.block_cycles[f * 3 + 2]));
  }
  std::printf("\nPer-frame functional-block times under mRTS:\n%s",
              frames_table.render().c_str());

  const MRtsRunStats& stats = mrts_rts.run_stats();
  std::printf("\nmRTS selections: %llu total (%llu MG, %llu FG, %llu CG), "
              "%llu data-path instances reused across blocks.\n",
              static_cast<unsigned long long>(stats.selected_ises),
              static_cast<unsigned long long>(stats.selected_mg_ises),
              static_cast<unsigned long long>(stats.selected_fg_ises),
              static_cast<unsigned long long>(stats.selected_cg_ises),
              static_cast<unsigned long long>(stats.reused_instances));
  return 0;
}
