// Two tasks sharing one reconfigurable processor — the "available fabric
// shared among various tasks" scenario of Section 1, which compile-time
// selection schemes cannot handle. An H.264 encoder and an AES-like crypto
// task time-share the core (round-robin, one functional block per slice);
// each task's own MRts instance is bound to the SAME FabricManager, so one
// task's installation evicts the other's data paths and every selection
// runs against whatever the fabric currently holds.
//
// Usage: ./build/examples/multi_task_sharing

#include <cstdio>

#include "baselines/risc_only_rts.h"
#include "isa/ise_builder.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "sim/multi_app.h"
#include "util/table.h"
#include "workload/workload_gen.h"

using namespace mrts;

namespace {

/// The crypto task: an AES-like round kernel, 10 work batches.
void add_crypto_task(IseLibrary& library, ApplicationTrace& trace,
                     unsigned batches) {
  IseBuildSpec aes;
  aes.kernel_name = "AES_ROUND";
  aes.sw_latency = 1400;
  aes.control_fraction = 0.55;
  aes.fg_control_speedup = 14.0;
  aes.cg_data_speedup = 4.5;
  aes.fg_data_path_names = {"sbox_fg", "shiftrows_fg"};
  aes.cg_data_path_names = {"mixcol_mac_cg"};
  aes.fg_control_dps = 1;
  aes.cg_data_dps = 1;
  const KernelId kernel = build_kernel_ises(library, aes);

  Rng rng(99);
  trace.name = "crypto";
  for (unsigned b = 0; b < batches; ++b) {
    FunctionalBlockInstance inst = make_block_instance(
        FunctionalBlockId{10}, /*macroblocks=*/800,
        {{kernel, 4.0, 40, 0.15}}, /*entry_gap=*/500, /*tail_gap=*/500, rng);
    stamp_programmed_trigger(inst, library);
    trace.blocks.push_back(std::move(inst));
  }
}

/// The "video" task in the same library: a deblocking-like filter kernel.
void add_video_task(IseLibrary& library, ApplicationTrace& trace,
                    unsigned frames) {
  IseBuildSpec lf;
  lf.kernel_name = "FILTER";
  lf.sw_latency = 560;
  lf.control_fraction = 0.40;
  lf.fg_data_path_names = {"filt_ctrl_fg", "filt_taps_fg"};
  lf.cg_data_path_names = {"filt_mac_cg"};
  lf.fg_control_dps = 1;
  lf.cg_data_dps = 1;
  const KernelId filter = build_kernel_ises(library, lf);

  IseBuildSpec cond;
  cond.kernel_name = "COND";
  cond.sw_latency = 340;
  cond.control_fraction = 0.9;
  cond.fg_data_path_names = {"cond_bs_fg"};
  cond.cg_data_path_names = {"cond_mask_cg"};
  const KernelId condition = build_kernel_ises(library, cond);

  Rng rng(7);
  trace.name = "video";
  for (unsigned f = 0; f < frames; ++f) {
    // Per-frame workload variation, as in the H.264 model.
    const double level = 0.4 + 0.3 * ((f * 2654435761u) % 100) / 100.0;
    FunctionalBlockInstance inst = make_block_instance(
        FunctionalBlockId{0}, /*macroblocks=*/396,
        {{condition, 4.0 + 8.0 * level, 13, 0.15},
         {filter, 6.0 + 12.0 * level, 22, 0.15}},
        400, 400, rng);
    stamp_programmed_trigger(inst, library);
    trace.blocks.push_back(std::move(inst));
  }
}

Cycles risc_cycles(const IseLibrary& library, const ApplicationTrace& trace) {
  RiscOnlyRts rts(library);
  return run_application(rts, trace).total_cycles;
}

}  // namespace

int main() {
  // Both tasks' ISE libraries live in one combined library (one data-path
  // namespace = one physical fabric).
  IseLibrary library;
  ApplicationTrace video;
  ApplicationTrace crypto;
  add_video_task(library, video, /*frames=*/10);
  add_crypto_task(library, crypto, /*batches=*/10);

  const Cycles video_risc = risc_cycles(library, video);
  const Cycles crypto_risc = risc_cycles(library, crypto);

  // --- each task alone on the 2 PRC + 2 CG fabric --------------------------
  MRts alone_video(library, 2, 2);
  const Cycles video_alone = run_application(alone_video, video).total_cycles;
  MRts alone_crypto(library, 2, 2);
  const Cycles crypto_alone =
      run_application(alone_crypto, crypto).total_cycles;

  // --- both tasks sharing the fabric ----------------------------------------
  FabricManager shared(2, 2, &library.data_paths());
  MRts rts_video(library, shared);
  MRts rts_crypto(library, shared);
  const TimeSlicedResult shared_run = run_time_sliced(
      {{"video", &rts_video, &video}, {"crypto", &rts_crypto, &crypto}});

  TextTable table({"task", "RISC [Mcyc]", "alone [Mcyc]", "alone speedup",
                   "shared [Mcyc]", "shared speedup"});
  table.add_values("video", format_mcycles(video_risc),
                   format_mcycles(video_alone),
                   speedup(video_risc, video_alone),
                   format_mcycles(shared_run.tasks[0].active_cycles),
                   speedup(video_risc, shared_run.tasks[0].active_cycles));
  table.add_values("crypto", format_mcycles(crypto_risc),
                   format_mcycles(crypto_alone),
                   speedup(crypto_risc, crypto_alone),
                   format_mcycles(shared_run.tasks[1].active_cycles),
                   speedup(crypto_risc, shared_run.tasks[1].active_cycles));
  std::printf("Two tasks on one 2 PRC + 2 CG reconfigurable processor "
              "(round-robin per functional block):\n%s",
              table.render().c_str());

  const Cycles risc_total = video_risc + crypto_risc;
  std::printf("\nCombined timeline: %s Mcycles vs %s Mcycles all-RISC "
              "(%.2fx).\n",
              format_mcycles(shared_run.total_cycles).c_str(),
              format_mcycles(risc_total).c_str(),
              speedup(risc_total, shared_run.total_cycles));
  std::printf("Sharing costs each task some speedup (the other task's "
              "installations evict data paths and occupy the FG "
              "reconfiguration port), but both stay well above RISC mode — "
              "the run-time selection adapts to whatever fabric is left.\n");
  return 0;
}
