// Extending the library with a custom kernel: an AES-like block cipher
// round. Shows how the ISE builder's two-part latency model produces the
// area/performance trade-off of Section 2 for *any* kernel, how to inspect
// the profit (Eqs. 2-4) of each variant for a given execution forecast, and
// where the CG -> MG -> FG dominance crossovers fall (a custom Fig. 1).
//
// Usage: ./build/examples/custom_kernel

#include <cstdio>

#include "isa/ise_builder.h"
#include "rts/profit.h"
#include "rts/reconfig_plan.h"
#include "rts/selector_heuristic.h"
#include "util/table.h"

using namespace mrts;

int main() {
  IseLibrary library;

  IseBuildSpec aes;
  aes.kernel_name = "AES_ROUND";
  aes.sw_latency = 1400;
  // S-box lookups and bit permutations are control-dominant (FG territory);
  // MixColumns-style GF multiplies are word-level arithmetic (CG territory).
  aes.control_fraction = 0.55;
  aes.fg_control_speedup = 14.0;
  aes.fg_data_speedup = 6.0;
  aes.cg_control_speedup = 1.2;
  aes.cg_data_speedup = 4.5;
  aes.fg_data_path_names = {"sbox_fg", "shiftrows_fg", "keyxor_fg"};
  aes.cg_data_path_names = {"mixcol_mac_cg", "gf_mul_cg"};
  aes.fg_control_dps = 2;
  aes.cg_data_dps = 2;
  aes.mono_cg_speedup = 1.6;
  const KernelId kernel = build_kernel_ises(library, aes);

  // --- variant inventory ----------------------------------------------------
  TextTable inventory(
      {"variant", "PRCs", "CG", "full latency", "speedup", "reconfig [ms]"});
  for (IseId id : library.kernel(kernel).ises) {
    const IseVariant& v = library.ise(id);
    inventory.add_values(
        v.name, v.fg_units, v.cg_units, v.full_latency(),
        static_cast<double>(v.risc_latency()) /
            static_cast<double>(v.full_latency()),
        format_double(
            cycles_to_ms(v.worst_case_reconfig_cycles(library.data_paths())),
            3));
  }
  std::printf("AES_ROUND ISE variants (RISC latency 1400 cycles):\n%s",
              inventory.render().c_str());

  // --- profit of each variant for different execution forecasts ------------
  TextTable profits({"variant", "e=100", "e=1000", "e=10000", "e=100000"});
  for (IseId id : library.kernel(kernel).ises) {
    const IseVariant& v = library.ise(id);
    std::vector<std::string> row = {v.name};
    for (double e : {100.0, 1000.0, 10'000.0, 100'000.0}) {
      ReconfigPlanner planner(library.data_paths(), 4, 3, 0);
      TriggerEntry entry{kernel, e, 200, 150};
      const ProfitResult pr = evaluate_candidate(library, id, entry, planner);
      row.push_back(format_double(pr.profit / 1000.0, 0) + "k");
    }
    profits.add_row(row);
  }
  std::printf("\nExpected profit (Eq. 4, saved kcycles) on an idle 4 PRC + 3 "
              "CG machine:\n%s",
              profits.render().c_str());

  // --- which variant would the selector pick as e grows? -------------------
  const HeuristicSelector selector(library);
  TextTable picks({"expected executions", "selected variant", "kind"});
  for (double e : {50.0, 300.0, 1500.0, 6000.0, 40'000.0, 300'000.0}) {
    TriggerInstruction ti;
    ti.functional_block = FunctionalBlockId{0};
    ti.entries.push_back({kernel, e, 200, 150});
    ReconfigPlanner planner(library.data_paths(), 4, 3, 0);
    const SelectionResult result = selector.select(ti, planner);
    if (result.selected.empty()) {
      picks.add_values(static_cast<std::uint64_t>(e), "(none — cannot amortize)",
                       "-");
      continue;
    }
    const IseVariant& v = library.ise(result.selected[0].ise);
    picks.add_values(static_cast<std::uint64_t>(e), v.name,
                     v.is_multi_grained() ? "MG"
                     : v.is_fg_only()     ? "FG"
                                          : "CG");
  }
  std::printf("\nSelector choice as the execution forecast grows (the "
              "Section 2 dominance regions):\n%s",
              picks.render().c_str());
  return 0;
}
