// The second workload: a software-defined-radio receiver. Demonstrates that
// the run-time system is application-agnostic — the same selection/ECU
// machinery accelerates a receiver whose bottleneck wanders between the
// equalizer (noisy channel) and the FIR front end (busy band), and exports
// the ISE library in the text interchange format.
//
// Usage: ./build/examples/sdr_receiver [bursts]

#include <cstdio>
#include <cstdlib>

#include "baselines/risc_only_rts.h"
#include "isa/library_io.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/energy.h"
#include "sim/metrics.h"
#include "util/table.h"
#include "workload/sdr_app.h"

using namespace mrts;

int main(int argc, char** argv) {
  SdrAppParams params;
  if (argc > 1) params.bursts = static_cast<unsigned>(std::atoi(argv[1]));
  const SdrApplication app = build_sdr_application(params);

  std::printf("SDR receiver: %u bursts x %u sample batches, %zu kernels, "
              "%zu ISE variants\n",
              params.bursts, params.batches, app.library.num_kernels(),
              app.library.num_ises());

  RiscOnlyRts risc(app.library);
  const AppRunResult risc_run = run_application(risc, app.trace);

  TextTable table({"fabric", "Mcycles", "speedup", "energy [mJ]"});
  for (const auto& combo : {FabricCombination{0, 0}, FabricCombination{1, 1},
                            FabricCombination{2, 2}, FabricCombination{3, 3}}) {
    if (combo.risc_only()) {
      const EnergyBreakdown e = estimate_energy(risc_run, ReconfigStats{});
      table.add_values("RISC mode", format_mcycles(risc_run.total_cycles), 1.0,
                       format_double(e.total_mj(), 2));
      continue;
    }
    MRts rts(app.library, combo.cg, combo.prcs);
    const AppRunResult run = run_application(rts, app.trace);
    const EnergyBreakdown e =
        estimate_energy(run, rts.fabric().reconfig_stats());
    table.add_values(std::to_string(combo.prcs) + " PRC + " +
                         std::to_string(combo.cg) + " CG",
                     format_mcycles(run.total_cycles),
                     speedup(risc_run.total_cycles, run.total_cycles),
                     format_double(e.total_mj(), 2));
  }
  std::printf("\nmRTS on the receiver:\n%s", table.render().c_str());

  // Per-burst adaptivity: which kernel dominated the decode block?
  MRts rts(app.library, 2, 2);
  const AppRunResult run = run_application(rts, app.trace);
  std::printf("\nDecode-block time per burst under mRTS (noisy bursts are "
              "Viterbi-bound):\n  ");
  for (unsigned b = 0; b < params.bursts; ++b) {
    std::printf("%s ", format_mcycles(run.block_cycles[b * 3 + 2]).c_str());
  }
  std::printf("Mcycles\n");

  // Export the library in the interchange format.
  const std::string path = "sdr_ise_library.txt";
  save_library(app.library, path);
  std::printf("\nISE library exported to %s (%zu bytes; reload with "
              "mrts::load_library).\n",
              path.c_str(), serialize_library(app.library).size());
  return 0;
}
