// Quickstart: the minimal end-to-end use of the mRTS library.
//
//  1. Describe a kernel and let the ISE builder generate its compile-time
//     ISE variants (FG / CG / multi-grained + monoCG-Extension).
//  2. Create the run-time system for a machine with 2 PRCs and 1 CG fabric.
//  3. Fire a trigger instruction (the forecast of the upcoming functional
//     block) and watch the selection.
//  4. Execute the kernel a few times and watch the Execution Control Unit
//     switch from RISC mode to monoCG to intermediate to the full ISE as
//     the reconfiguration proceeds.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "isa/ise_builder.h"
#include "rts/mrts.h"

using namespace mrts;

int main() {
  // --- 1. A kernel with an ISE family --------------------------------------
  IseLibrary library;
  IseBuildSpec spec;
  spec.kernel_name = "FIR16";       // a 16-tap FIR filter kernel
  spec.sw_latency = 800;            // cycles per execution on the core
  spec.control_fraction = 0.35;     // 35% bit-level control, 65% arithmetic
  spec.fg_data_path_names = {"fir_ctrl_fg", "fir_mac_fg"};
  spec.cg_data_path_names = {"fir_mac_cg"};
  spec.fg_control_dps = 1;
  spec.cg_data_dps = 1;
  const KernelId fir = build_kernel_ises(library, spec);

  std::printf("ISE variants of %s:\n", library.kernel(fir).name.c_str());
  for (IseId id : library.kernel(fir).ises) {
    const IseVariant& v = library.ise(id);
    std::printf("  %-12s %u PRC + %u CG, full latency %llu cycles (%.1fx)\n",
                v.name.c_str(), v.fg_units, v.cg_units,
                static_cast<unsigned long long>(v.full_latency()),
                static_cast<double>(v.risc_latency()) /
                    static_cast<double>(v.full_latency()));
  }

  // --- 2. The run-time system bound to a 2-PRC / 1-CG machine --------------
  MRts rts(library, /*num_cg_fabrics=*/1, /*num_prcs=*/2);

  // --- 3. Trigger instruction: ~5000 executions expected -------------------
  TriggerInstruction trigger;
  trigger.functional_block = FunctionalBlockId{0};
  trigger.entries.push_back({fir, /*e=*/5000.0, /*tf=*/500, /*tb=*/120});

  const SelectionOutcome outcome = rts.on_trigger(trigger, /*now=*/0);
  for (const auto& sel : outcome.selection.selected) {
    std::printf("\nSelected: %s (expected profit %.0f saved cycles)\n",
                library.ise(sel.ise).name.c_str(), sel.profit);
  }
  std::printf("Selection blocked the core for %llu cycles.\n",
              static_cast<unsigned long long>(outcome.blocking_overhead));

  // --- 4. Execute while the fabric reconfigures -----------------------------
  std::printf("\n%-12s %-14s %s\n", "cycle", "implementation", "latency");
  for (Cycles t : {Cycles{500},      Cycles{5'000},     Cycles{100'000},
                   Cycles{500'000},  Cycles{700'000},   Cycles{1'200'000}}) {
    const ExecOutcome exec = rts.execute_kernel(fir, t);
    std::printf("%-12llu %-14s %llu cycles\n",
                static_cast<unsigned long long>(t), to_string(exec.impl),
                static_cast<unsigned long long>(exec.latency));
  }

  const EcuStats& stats = rts.ecu().stats();
  std::printf("\nSaved %llu cycles vs RISC-mode execution so far.\n",
              static_cast<unsigned long long>(stats.saved_vs_risc));
  return 0;
}
