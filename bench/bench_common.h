#pragma once
/// \file bench_common.h
/// Shared helpers for the figure-regeneration benches. Every bench binary
/// reproduces one table/figure of the paper's evaluation section: it runs
/// the full simulation, prints the figure's rows/series as an ASCII table
/// and dumps a CSV (<bench>.csv) for external plotting.

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "baselines/morpheus4s_rts.h"
#include "baselines/offline_optimal_rts.h"
#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/sweep_runner.h"
#include "util/counters.h"
#include "util/csv.h"
#include "util/fastpath.h"
#include "util/table.h"
#include "util/trace.h"
#include "workload/h264_app.h"

namespace mrts::bench {

/// Evaluation workload of Section 5: the H.264 encoder model at CIF size.
/// MRTS_BENCH_FRAMES overrides the frame count (smaller = faster smoke run).
inline H264AppParams eval_params() {
  H264AppParams params;
  params.frames = 16;
  params.macroblocks = 396;
  if (const char* env = std::getenv("MRTS_BENCH_FRAMES")) {
    const int frames = std::atoi(env);
    if (frames > 0) params.frames = static_cast<unsigned>(frames);
  }
  return params;
}

struct EvalContext {
  H264Application app;
  std::vector<BlockProfile> profile;
  Cycles risc_cycles = 0;

  explicit EvalContext(const H264AppParams& params = eval_params())
      : app(build_h264_application(params)),
        profile(profile_application(app.trace, app.library)) {
    RiscOnlyRts risc(app.library);
    risc_cycles = run_application(risc, app.trace).total_cycles;
  }

  /// \p recorder / \p counters (optional) attach a flight recorder to the
  /// freshly built MRts. Both must be per sweep point — never pass the same
  /// instances to concurrently running points.
  AppRunResult run_mrts(unsigned cg, unsigned prcs, MRtsConfig config = {},
                        TraceRecorder* recorder = nullptr,
                        CounterRegistry* counters = nullptr) const {
    // One single-core private-fabric machine per sweep point: the Machine
    // performs exactly the legacy `MRts(lib, cg, prcs, config)` construction
    // and the attach-before-run ordering (sim/machine.h).
    MachineConfig mc;
    mc.prcs = prcs;
    mc.cg_fabrics = cg;
    Machine machine(app.library, mc);
    RuntimeSystem& base = machine.add_rts(config);
    if (recorder != nullptr || counters != nullptr) {
      machine.attach_observability(recorder, counters);
    }
    return run_application(base, app.trace, recorder);
  }

  AppRunResult run_rispp(unsigned cg, unsigned prcs) const {
    RisppRts rts(app.library, cg, prcs);
    return run_application(rts, app.trace);
  }

  AppRunResult run_morpheus(unsigned cg, unsigned prcs) const {
    Morpheus4sRts rts(app.library, cg, prcs, profile);
    return run_application(rts, app.trace);
  }

  AppRunResult run_offline_optimal(unsigned cg, unsigned prcs) const {
    OfflineOptimalRts rts(app.library, cg, prcs, profile);
    return run_application(rts, app.trace);
  }
};

/// Parses and strips a `--jobs N` / `--jobs=N` flag from the command line.
/// Must run *before* benchmark::Initialize (google-benchmark rejects flags
/// it does not know). Returns the sweep worker count: 0 means "one worker
/// per hardware thread" (SweepRunner resolves it); `--jobs 1` is the exact
/// legacy serial path. The MRTS_BENCH_JOBS environment variable supplies
/// the default when the flag is absent.
inline unsigned parse_jobs(int* argc, char** argv) {
  unsigned jobs = 0;
  if (const char* env = std::getenv("MRTS_BENCH_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) jobs = static_cast<unsigned>(v);
  }
  int out = 1;  // argv[0] always kept
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 && i + 1 < *argc) {
      const int v = std::atoi(argv[++i]);
      if (v > 0) jobs = static_cast<unsigned>(v);
      continue;
    }
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      const int v = std::atoi(arg + 7);
      if (v > 0) jobs = static_cast<unsigned>(v);
      continue;
    }
    if (std::strcmp(arg, "--no-bb-cache") == 0) {
      // A/B switch for the simulator fast paths (decoded basic-block
      // caches + batched frame execution): force the plain interpreter /
      // per-event oracle. Output bytes must be identical either way.
      set_fastpath_enabled(false);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return jobs;
}

/// Fault-injection knobs shared by the benches (arch/fault_model.h). The
/// defaults are fault-free so the committed figure CSVs stay byte-identical
/// unless a fault rate is explicitly requested.
struct FaultFlags {
  double rate = 0.0;
  std::uint64_t seed = 42;
  unsigned max_retries = 3;

  /// The FaultModelConfig this flag set denotes (all-zero when rate == 0).
  FaultModelConfig config() const {
    if (rate <= 0.0) return FaultModelConfig{};
    return FaultModelConfig::uniform(rate, seed, max_retries);
  }
};

namespace detail {

/// Strict full-token parsers, mirroring the mrts_cli contract: malformed
/// values (negative/NaN rates, signed or overflowing seeds) are input
/// errors — exit code 2, never silently clamped.
inline bool parse_probability_token(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;  // NaN fails every comparison
  *out = v;
  return true;
}

inline bool parse_u64_token(const char* s, std::uint64_t* out) {
  if (s[0] == '\0' || s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

[[noreturn]] inline void fault_flag_error(const char* flag, const char* value,
                                          const char* expected) {
  std::fprintf(stderr, "error: invalid %s '%s' (expected %s)\n", flag, value,
               expected);
  std::exit(2);
}

}  // namespace detail

/// Parses and strips `--fault-rate P`, `--fault-seed N` and
/// `--max-retries N` flags (each also accepts the `--flag=value` form).
/// Must run before benchmark::Initialize, like parse_jobs. Invalid values
/// terminate with exit code 2 (documented input-error contract — the sweep
/// must not run with a silently clamped fault configuration).
/// MRTS_BENCH_FAULT_RATE / _FAULT_SEED / _MAX_RETRIES env variables supply
/// defaults when the flags are absent and follow the same strict contract.
inline FaultFlags parse_fault_flags(int* argc, char** argv) {
  FaultFlags flags;
  if (const char* env = std::getenv("MRTS_BENCH_FAULT_RATE")) {
    if (!detail::parse_probability_token(env, &flags.rate)) {
      detail::fault_flag_error("MRTS_BENCH_FAULT_RATE", env,
                               "a probability in [0,1]");
    }
  }
  if (const char* env = std::getenv("MRTS_BENCH_FAULT_SEED")) {
    if (!detail::parse_u64_token(env, &flags.seed)) {
      detail::fault_flag_error("MRTS_BENCH_FAULT_SEED", env,
                               "an unsigned 64-bit integer");
    }
  }
  if (const char* env = std::getenv("MRTS_BENCH_MAX_RETRIES")) {
    std::uint64_t v = 0;
    if (!detail::parse_u64_token(env, &v) || v > 1000) {
      detail::fault_flag_error("MRTS_BENCH_MAX_RETRIES", env,
                               "an integer in [0,1000]");
    }
    flags.max_retries = static_cast<unsigned>(v);
  }
  int out = 1;  // argv[0] always kept
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    auto match = [&](const char* name) {
      const std::size_t len = std::strlen(name);
      if (std::strcmp(arg, name) == 0 && i + 1 < *argc) {
        value = argv[++i];
        return true;
      }
      if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        value = arg + len + 1;
        return true;
      }
      return false;
    };
    if (match("--fault-rate")) {
      if (!detail::parse_probability_token(value, &flags.rate)) {
        detail::fault_flag_error("--fault-rate", value,
                                 "a probability in [0,1]");
      }
      continue;
    }
    if (match("--fault-seed")) {
      if (!detail::parse_u64_token(value, &flags.seed)) {
        detail::fault_flag_error("--fault-seed", value,
                                 "an unsigned 64-bit integer");
      }
      continue;
    }
    if (match("--max-retries")) {
      std::uint64_t v = 0;
      if (!detail::parse_u64_token(value, &v) || v > 1000) {
        detail::fault_flag_error("--max-retries", value,
                                 "an integer in [0,1000]");
      }
      flags.max_retries = static_cast<unsigned>(v);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return flags;
}

/// Parses and strips a `--trace-dir DIR` / `--trace-dir=DIR` flag (must run
/// before benchmark::Initialize, like parse_jobs). When set, the bench
/// writes one Chrome trace per mRTS sweep point into DIR. Empty string =
/// tracing off (the default; traced runs pay the recording overhead, so the
/// timing figures should normally run untraced). MRTS_BENCH_TRACE_DIR
/// supplies the default when the flag is absent.
inline std::string parse_trace_dir(int* argc, char** argv) {
  std::string dir;
  if (const char* env = std::getenv("MRTS_BENCH_TRACE_DIR")) dir = env;
  int out = 1;  // argv[0] always kept
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace-dir") == 0 && i + 1 < *argc) {
      dir = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
      dir = arg + 12;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
  return dir;
}

/// Writes one sweep point's events as Chrome trace JSON into \p dir
/// (created on demand). Concurrent sweep points may call this — each point
/// writes a distinct \p filename, so there is no shared state. Returns the
/// written path, or an empty string on failure.
inline std::string write_point_trace(const std::string& dir,
                                     const std::string& filename,
                                     const std::vector<TraceEvent>& events,
                                     const IseLibrary* lib) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = (std::filesystem::path(dir) / filename).string();
  if (!write_chrome_trace_file(path, events, lib)) {
    std::fprintf(stderr, "warning: cannot write trace '%s'\n", path.c_str());
    return {};
  }
  return path;
}

/// Renders a merged counter registry (a compact per-sweep summary).
inline void print_counter_summary(const char* what,
                                  const CounterRegistry& counters) {
  if (counters.empty()) return;
  TextTable table({"counter", "value"});
  for (const auto& [name, value] : counters.counters()) {
    table.add_values(name, value);
  }
  for (const auto& [name, h] : counters.histograms()) {
    table.add_values(name + " (mean)", format_double(h.mean(), 2));
  }
  std::printf("\n%s — merged mRTS counters (submission order):\n%s", what,
              table.render().c_str());
}

/// Runs \p run_sweep (which is expected to drive a SweepRunner with \p jobs
/// workers) and prints the sweep's wall-clock and worker count, so the
/// --jobs speedup is visible in the harness output.
template <typename Fn>
void timed_sweep(const char* what, unsigned jobs, Fn&& run_sweep) {
  const SweepRunner runner(jobs);
  const auto t0 = std::chrono::steady_clock::now();
  run_sweep(runner);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  std::printf("[sweep] %s: %u worker(s), %.3f s wall-clock\n", what,
              runner.jobs(), seconds);
}

}  // namespace mrts::bench
