#pragma once
/// \file bench_common.h
/// Shared helpers for the figure-regeneration benches. Every bench binary
/// reproduces one table/figure of the paper's evaluation section: it runs
/// the full simulation, prints the figure's rows/series as an ASCII table
/// and dumps a CSV (<bench>.csv) for external plotting.

#include <memory>
#include <string>

#include "baselines/morpheus4s_rts.h"
#include "baselines/offline_optimal_rts.h"
#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/h264_app.h"

namespace mrts::bench {

/// Evaluation workload of Section 5: the H.264 encoder model at CIF size.
/// MRTS_BENCH_FRAMES overrides the frame count (smaller = faster smoke run).
inline H264AppParams eval_params() {
  H264AppParams params;
  params.frames = 16;
  params.macroblocks = 396;
  if (const char* env = std::getenv("MRTS_BENCH_FRAMES")) {
    const int frames = std::atoi(env);
    if (frames > 0) params.frames = static_cast<unsigned>(frames);
  }
  return params;
}

struct EvalContext {
  H264Application app;
  std::vector<BlockProfile> profile;
  Cycles risc_cycles = 0;

  explicit EvalContext(const H264AppParams& params = eval_params())
      : app(build_h264_application(params)),
        profile(profile_application(app.trace, app.library)) {
    RiscOnlyRts risc(app.library);
    risc_cycles = run_application(risc, app.trace).total_cycles;
  }

  AppRunResult run_mrts(unsigned cg, unsigned prcs,
                        MRtsConfig config = {}) const {
    MRts rts(app.library, cg, prcs, config);
    return run_application(rts, app.trace);
  }

  AppRunResult run_rispp(unsigned cg, unsigned prcs) const {
    RisppRts rts(app.library, cg, prcs);
    return run_application(rts, app.trace);
  }

  AppRunResult run_morpheus(unsigned cg, unsigned prcs) const {
    Morpheus4sRts rts(app.library, cg, prcs, profile);
    return run_application(rts, app.trace);
  }

  AppRunResult run_offline_optimal(unsigned cg, unsigned prcs) const {
    OfflineOptimalRts rts(app.library, cg, prcs, profile);
    return run_application(rts, app.trace);
  }
};

}  // namespace mrts::bench
