// Fig. 13 (companion figure): fabric utilization and core stall breakdown
// versus fabric size. Every point of the Fig. 8 grid (PRCs 0..4 x CG fabrics
// 0..3) runs the H.264 encoder under mRTS with the flight recorder attached,
// then feeds the trace through the obs/ analysis engine: the five-bucket
// cycle accounting of the core (execute / reconfig-stall / scrub-repair /
// arbiter-idle / pure-idle, summing exactly to the run span), the per-grain
// fabric utilization, the FG fragmentation index + compaction opportunity,
// and the "is reconfiguration hidden?" fraction.
//
// Unlike the timing figures this bench always records (the analysis needs
// the trace), so its cycle numbers are the same as fig8's mRTS column — the
// recorder changes no simulation outcome, only observes it (pinned by the
// TracedRunEqualsUntracedRun tests). The sweep fans out over a SweepRunner
// (--jobs N); per-point recorders are never shared and results merge in
// submission order, so the table/CSV are byte-identical at any --jobs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "obs/report_io.h"
#include "obs/run_report.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

struct Row {
  Cycles mrts = 0;
  Cycles buckets[obs::kNumCycleBuckets] = {};
  double fg_utilization = 0.0;
  double cg_utilization = 0.0;
  double fragmentation = 0.0;
  double compaction = 0.0;
  double hidden_fraction = 1.0;
};

std::map<std::string, Row>& rows() {
  static std::map<std::string, Row> r;
  return r;
}

const std::vector<FabricCombination>& sweep_points() {
  static const std::vector<FabricCombination> points = fabric_sweep(4, 3);
  return points;
}

/// One independent sweep point: a traced mRTS run analyzed in-process. The
/// recorder and the report are point-local, so concurrent workers share only
/// the read-only EvalContext.
Row run_point(const FabricCombination& combo) {
  const EvalContext& ctx = context();
  TraceRecorder recorder;
  Row row;
  row.mrts = ctx.run_mrts(combo.cg, combo.prcs, MRtsConfig{}, &recorder)
                 .total_cycles;
  obs::AnalysisConfig config;
  config.num_prcs = combo.prcs;
  config.num_cg = combo.cg;
  const obs::RunReport report = obs::analyze_trace(recorder.events(), config);
  for (std::size_t b = 0; b < obs::kNumCycleBuckets; ++b) {
    row.buckets[b] = report.accounting.core.cycles[b];
  }
  row.fg_utilization = report.occupancy.fg_utilization;
  row.cg_utilization = report.occupancy.cg_utilization;
  row.fragmentation = report.occupancy.fragmentation_index;
  row.compaction = report.occupancy.compaction_opportunity;
  row.hidden_fraction = report.critical_path.hidden_fraction;
  return row;
}

void run_sweep(unsigned jobs) {
  (void)context();  // build the shared workload once, before the fan-out
  timed_sweep("Fig. 13", jobs, [](const SweepRunner& runner) {
    const auto& points = sweep_points();
    const std::vector<Row> results = runner.map(points, run_point);
    for (std::size_t i = 0; i < points.size(); ++i) {
      rows()[points[i].label()] = results[i];  // submission order
    }
  });
}

/// Reporting stub: the heavy work happened in run_sweep(); this publishes
/// the point's analysis metrics under the BM_Fig13/<label> names.
void BM_Fig13_Combination(benchmark::State& state) {
  const auto prcs = static_cast<unsigned>(state.range(0));
  const auto cg = static_cast<unsigned>(state.range(1));
  const Row& row = rows()[FabricCombination{prcs, cg}.label()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(row.mrts);
  }
  state.counters["mrts_Mcycles"] = static_cast<double>(row.mrts) / 1e6;
  state.counters["fg_utilization"] = row.fg_utilization;
  state.counters["cg_utilization"] = row.cg_utilization;
  state.counters["hidden_fraction"] = row.hidden_fraction;
}

void register_benchmarks() {
  for (const FabricCombination& combo : sweep_points()) {
    benchmark::RegisterBenchmark(("BM_Fig13/" + combo.label()).c_str(),
                                 BM_Fig13_Combination)
        ->Args({static_cast<long>(combo.prcs), static_cast<long>(combo.cg)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_figure() {
  TextTable table({"PRCs/CG", "mRTS [Mcyc]", "Execute %", "Stall %",
                   "FG util", "CG util", "Frag", "Hidden"});
  CsvWriter csv("fig13_utilization_breakdown.csv");
  csv.write_header({"prcs", "cg", "mrts_cycles", "execute_cycles",
                    "reconfig_stall_cycles", "scrub_repair_cycles",
                    "arbiter_idle_cycles", "pure_idle_cycles",
                    "fg_utilization", "cg_utilization", "fragmentation_index",
                    "compaction_opportunity", "hidden_fraction"});

  for (const FabricCombination& combo : sweep_points()) {
    const Row& row = rows()[combo.label()];
    Cycles span = 0;
    for (const Cycles c : row.buckets) span += c;
    const double denom = span > 0 ? static_cast<double>(span) : 1.0;
    const auto execute =
        row.buckets[static_cast<std::size_t>(obs::CycleBucket::kExecute)];
    const auto stall = row.buckets[static_cast<std::size_t>(
        obs::CycleBucket::kReconfigStall)];
    table.add_values(combo.label(), format_mcycles(row.mrts),
                     format_double(100.0 * static_cast<double>(execute) / denom, 1),
                     format_double(100.0 * static_cast<double>(stall) / denom, 1),
                     format_double(row.fg_utilization, 3),
                     format_double(row.cg_utilization, 3),
                     format_double(row.fragmentation, 3),
                     format_double(row.hidden_fraction, 3));
    csv.write_values(
        combo.prcs, combo.cg, row.mrts,
        row.buckets[static_cast<std::size_t>(obs::CycleBucket::kExecute)],
        row.buckets[static_cast<std::size_t>(
            obs::CycleBucket::kReconfigStall)],
        row.buckets[static_cast<std::size_t>(obs::CycleBucket::kScrubRepair)],
        row.buckets[static_cast<std::size_t>(obs::CycleBucket::kArbiterIdle)],
        row.buckets[static_cast<std::size_t>(obs::CycleBucket::kPureIdle)],
        row.fg_utilization, row.cg_utilization, row.fragmentation,
        row.compaction, row.hidden_fraction);
  }
  std::printf("\nFig. 13 — fabric utilization and core stall breakdown "
              "(written to fig13_utilization_breakdown.csv)\n%s",
              table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
