// Reproduces Fig. 1: performance improvement factor (Eq. 1) of the three
// H.264 Deblocking Filter ISEs of the Section 2 case study over the number
// of kernel executions. The paper's qualitative result: three dominance
// regions — ISE-2 (CG) for few executions, ISE-3 (MG) in the middle, ISE-1
// (FG) once its 2 x 1.2 ms reconfiguration amortizes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "util/csv.h"
#include "util/fastpath.h"
#include "util/table.h"
#include "workload/deblocking_case_study.h"

namespace {

using namespace mrts;

void BM_Fig1_PifSeries(benchmark::State& state) {
  const DeblockingCaseStudy cs = build_deblocking_case_study();
  double checksum = 0.0;
  for (auto _ : state) {
    for (double n = 0.0; n <= 10'000.0; n += 250.0) {
      checksum += case_study_pif(cs, cs.ise1, n) +
                  case_study_pif(cs, cs.ise2, n) +
                  case_study_pif(cs, cs.ise3, n);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["mg_over_cg_crossover"] = pif_crossover(cs, cs.ise3, cs.ise2);
  state.counters["fg_over_mg_crossover"] = pif_crossover(cs, cs.ise1, cs.ise3);
}
BENCHMARK(BM_Fig1_PifSeries);

void print_figure() {
  const DeblockingCaseStudy cs = build_deblocking_case_study();
  TextTable table({"executions", "pif ISE-1 (FG)", "pif ISE-2 (CG)",
                   "pif ISE-3 (MG)", "best"});
  CsvWriter csv("fig1_pif.csv");
  csv.write_header({"executions", "pif_ise1_fg", "pif_ise2_cg", "pif_ise3_mg"});
  for (double n = 0.0; n <= 10'000.0; n += 500.0) {
    const double p1 = case_study_pif(cs, cs.ise1, n);
    const double p2 = case_study_pif(cs, cs.ise2, n);
    const double p3 = case_study_pif(cs, cs.ise3, n);
    const char* best = "-";
    if (n > 0) {
      best = (p1 >= p2 && p1 >= p3) ? "ISE-1"
             : (p2 >= p1 && p2 >= p3) ? "ISE-2"
                                      : "ISE-3";
    }
    table.add_values(static_cast<std::uint64_t>(n), p1, p2, p3, best);
    csv.write_values(n, p1, p2, p3);
  }
  std::printf("\nFig. 1 — pif of the three Deblocking Filter ISEs "
              "(written to fig1_pif.csv)\n%s",
              table.render().c_str());
  std::printf("Crossovers: ISE-3 overtakes ISE-2 at ~%.0f executions, "
              "ISE-1 overtakes ISE-3 at ~%.0f executions.\n",
              pif_crossover(cs, cs.ise3, cs.ise2),
              pif_crossover(cs, cs.ise1, cs.ise3));
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --no-bb-cache before Google Benchmark sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-bb-cache") == 0) {
      mrts::set_fastpath_enabled(false);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[out] = nullptr;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
