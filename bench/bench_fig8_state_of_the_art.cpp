// Reproduces Fig. 8: execution time of the whole H.264 encoder under the
// RISPP-like, offline-optimal, Morpheus/4S-like and mRTS schemes over fabric
// combinations (PRCs 0..4 x CG fabrics 0..3; combination "00" is RISC mode),
// plus the speedup-of-mRTS lines. Paper shape: mRTS is fastest everywhere;
// vs RISPP-like up to ~1.8x (avg ~1.3x), vs Morpheus+4S up to ~2.3x (avg
// ~1.78x), vs offline-optimal up to ~2.2x (avg ~1.45x); ties at single-grain
// corners.
//
// The 20-point sweep fans out over a SweepRunner (--jobs N, default: one
// worker per hardware thread); every point builds its own simulator stack
// from the shared read-only EvalContext, and results merge in submission
// order, so the table/CSV below are byte-identical to `--jobs 1`. The
// registered per-combination benchmarks report the precomputed rows.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

/// --trace-dir destination; empty = tracing off. Set once in main() before
/// the sweep fans out, read-only afterwards.
std::string& trace_dir() {
  static std::string dir;
  return dir;
}

/// Fault-injection flags (--fault-rate/--fault-seed/--max-retries); the
/// default is fault-free, which keeps the committed CSV byte-identical.
/// Faults apply to the mRTS runs only — the baselines stay clean so the
/// figure isolates how mRTS itself degrades. Set once in main() before the
/// sweep fans out, read-only afterwards.
FaultFlags& fault_flags() {
  static FaultFlags flags;
  return flags;
}

struct Row {
  Cycles rispp = 0;
  Cycles offline = 0;
  Cycles morpheus = 0;
  Cycles mrts = 0;
};

/// Row plus the point's mRTS counter snapshot (empty when untraced). The
/// snapshots merge after the sweep in submission order — see counters.h for
/// why that fixed order keeps the output deterministic at any --jobs.
struct PointResult {
  Row row;
  CounterRegistry counters;
};

std::map<std::string, Row>& rows() {
  static std::map<std::string, Row> r;
  return r;
}

const std::vector<FabricCombination>& sweep_points() {
  static const std::vector<FabricCombination> points = fabric_sweep(4, 3);
  return points;
}

/// One independent sweep point: four full-application runs, each on its own
/// freshly constructed RTS + fabric (EvalContext is shared read-only). With
/// --trace-dir, the mRTS run records into a per-point recorder/registry
/// (never shared across workers) and writes fig8_<label>.json — a distinct
/// file per point, so concurrent workers never collide.
PointResult run_point(const FabricCombination& combo) {
  const EvalContext& ctx = context();
  PointResult result;
  result.row.rispp = ctx.run_rispp(combo.cg, combo.prcs).total_cycles;
  result.row.offline =
      ctx.run_offline_optimal(combo.cg, combo.prcs).total_cycles;
  result.row.morpheus = ctx.run_morpheus(combo.cg, combo.prcs).total_cycles;
  MRtsConfig mrts_config;
  mrts_config.fault = fault_flags().config();
  if (trace_dir().empty()) {
    result.row.mrts =
        ctx.run_mrts(combo.cg, combo.prcs, mrts_config).total_cycles;
  } else {
    TraceRecorder recorder;
    result.row.mrts = ctx.run_mrts(combo.cg, combo.prcs, mrts_config,
                                   &recorder, &result.counters)
                          .total_cycles;
    write_point_trace(trace_dir(), "fig8_" + combo.label() + ".json",
                      recorder.events(), &context().app.library);
  }
  return result;
}

void run_sweep(unsigned jobs) {
  (void)context();  // build the shared workload once, before the fan-out
  timed_sweep("Fig. 8", jobs, [](const SweepRunner& runner) {
    const auto& points = sweep_points();
    const std::vector<PointResult> results = runner.map(points, run_point);
    CounterRegistry merged;
    for (std::size_t i = 0; i < points.size(); ++i) {
      rows()[points[i].label()] = results[i].row;
      merged.merge(results[i].counters);  // submission order = deterministic
    }
    if (!trace_dir().empty()) {
      print_counter_summary("Fig. 8", merged);
      std::printf("[trace] wrote %zu per-point traces to %s\n",
                  points.size(), trace_dir().c_str());
    }
  });
}

/// Reporting stub: the heavy work happened in run_sweep(); this publishes
/// the point's counters under the familiar BM_Fig8/<label> names.
void BM_Fig8_Combination(benchmark::State& state) {
  const auto prcs = static_cast<unsigned>(state.range(0));
  const auto cg = static_cast<unsigned>(state.range(1));
  const Row& row = rows()[FabricCombination{prcs, cg}.label()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(row.mrts);
  }
  state.counters["mrts_Mcycles"] = static_cast<double>(row.mrts) / 1e6;
  state.counters["speedup_vs_rispp"] = speedup(row.rispp, row.mrts);
  state.counters["speedup_vs_offline"] = speedup(row.offline, row.mrts);
  state.counters["speedup_vs_morpheus"] = speedup(row.morpheus, row.mrts);
}

void register_benchmarks() {
  for (const FabricCombination& combo : sweep_points()) {
    benchmark::RegisterBenchmark(("BM_Fig8/" + combo.label()).c_str(),
                                 BM_Fig8_Combination)
        ->Args({static_cast<long>(combo.prcs), static_cast<long>(combo.cg)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_figure() {
  TextTable table({"PRCs/CG", "RISPP-like [Mcyc]", "Offline-opt [Mcyc]",
                   "Morpheus+4S [Mcyc]", "mRTS [Mcyc]", "vs RISPP",
                   "vs Offline", "vs Morpheus"});
  CsvWriter csv("fig8_state_of_the_art.csv");
  csv.write_header({"prcs", "cg", "rispp_cycles", "offline_cycles",
                    "morpheus_cycles", "mrts_cycles", "speedup_vs_rispp",
                    "speedup_vs_offline", "speedup_vs_morpheus"});

  RunningStats vs_rispp;
  RunningStats vs_offline;
  RunningStats vs_morpheus;
  for (const FabricCombination& combo : sweep_points()) {
    const Row& row = rows()[combo.label()];
    const double s_rispp = speedup(row.rispp, row.mrts);
    const double s_offline = speedup(row.offline, row.mrts);
    const double s_morpheus = speedup(row.morpheus, row.mrts);
    if (!combo.risc_only()) {
      vs_rispp.add(s_rispp);
      vs_offline.add(s_offline);
      vs_morpheus.add(s_morpheus);
    }
    table.add_values(combo.label(), format_mcycles(row.rispp),
                     format_mcycles(row.offline),
                     format_mcycles(row.morpheus), format_mcycles(row.mrts),
                     s_rispp, s_offline, s_morpheus);
    csv.write_values(combo.prcs, combo.cg, row.rispp, row.offline,
                     row.morpheus, row.mrts, s_rispp, s_offline, s_morpheus);
  }
  std::printf("\nFig. 8 — comparison with state-of-the-art approaches "
              "(written to fig8_state_of_the_art.csv)\n%s",
              table.render().c_str());
  std::printf(
      "mRTS speedup vs RISPP-like:    avg %.2fx, max %.2fx  (paper: avg "
      "~1.3x, up to 1.8x)\n"
      "mRTS speedup vs Offline-opt:   avg %.2fx, max %.2fx  (paper: avg "
      "~1.45x, up to 2.2x)\n"
      "mRTS speedup vs Morpheus+4S:   avg %.2fx, max %.2fx  (paper: avg "
      "~1.78x, up to 2.3x)\n",
      vs_rispp.mean(), vs_rispp.max(), vs_offline.mean(), vs_offline.max(),
      vs_morpheus.mean(), vs_morpheus.max());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  trace_dir() = parse_trace_dir(&argc, argv);
  fault_flags() = parse_fault_flags(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
