// Reproduces Fig. 2: per-frame execution counts of the Deblocking Filter
// kernel over 16 frames. The paper's point: the count (and therefore the
// performance-wise best ISE) changes from frame to frame with the content,
// which is what motivates run-time (rather than compile-time) selection.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "rts/mrts.h"
#include "sim/fb_simulator.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/deblocking_case_study.h"
#include "workload/h264_app.h"

namespace {

using namespace mrts;
using mrts::bench::parse_trace_dir;
using mrts::bench::write_point_trace;

std::string& trace_dir() {
  static std::string dir;
  return dir;
}

H264AppParams fig2_params() {
  H264AppParams params;
  params.frames = 16;
  params.macroblocks = 396;
  return params;
}

void BM_Fig2_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const H264Application app = build_h264_application(fig2_params());
    benchmark::DoNotOptimize(app.trace.blocks.size());
  }
}
BENCHMARK(BM_Fig2_TraceGeneration)->Unit(benchmark::kMillisecond);

void print_figure() {
  const H264Application app = build_h264_application(fig2_params());
  const DeblockingCaseStudy cs = build_deblocking_case_study();

  // What mRTS on a 2 PRC + 2 CG machine actually selects for the
  // Deblocking Filter kernel of each frame (run block-by-block so the
  // per-trigger selections are visible).
  MRts rts(app.library, 2, 2);
  TraceRecorder recorder;
  CounterRegistry counters;
  const bool traced = !trace_dir().empty();
  RuntimeSystem& base = rts;  // observability attaches via the base API
  if (traced) base.attach_observability(&recorder, &counters);
  std::vector<std::string> selected_per_frame;
  {
    Cycles cursor = 0;
    unsigned frame = 0;
    for (const auto& block : app.trace.blocks) {
      const FbRunResult r =
          run_block(rts, block, cursor, traced ? &recorder : nullptr);
      cursor += r.cycles;
      if (block.functional_block == app.fb_lf) {
        std::string name = "(none/covered)";
        for (const auto& sel : r.selection.selection.selected) {
          if (sel.kernel == app.k_lf_filter) {
            name = app.library.ise(sel.ise).name;
          }
        }
        selected_per_frame.push_back(name);
        ++frame;
      }
    }
  }

  TextTable table({"frame", "LF_FILTER executions", "best case-study ISE",
                   "mRTS selection (2 PRC + 2 CG)"});
  CsvWriter csv("fig2_execution_behavior.csv");
  csv.write_header(
      {"frame", "lf_filter_executions", "best_ise", "mrts_selection"});

  std::size_t lo = SIZE_MAX;
  std::size_t hi = 0;
  for (unsigned f = 0; f < 16; ++f) {
    const std::size_t e = app.lf_filter_executions(f);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
    // Which of the Section 2 ISEs would be best at this execution count?
    const auto n = static_cast<double>(e);
    const double p1 = case_study_pif(cs, cs.ise1, n);
    const double p2 = case_study_pif(cs, cs.ise2, n);
    const double p3 = case_study_pif(cs, cs.ise3, n);
    const char* best = (p1 >= p2 && p1 >= p3) ? "ISE-1 (FG)"
                       : (p2 >= p1 && p2 >= p3) ? "ISE-2 (CG)"
                                                : "ISE-3 (MG)";
    table.add_values(f + 1, e, best, selected_per_frame[f]);
    csv.write_values(f + 1, e, best, selected_per_frame[f]);
  }
  std::printf("\nFig. 2 — execution behaviour of the H.264 Deblocking Filter "
              "(written to fig2_execution_behavior.csv)\n%s",
              table.render().c_str());
  std::printf("Swing across frames: min %zu, max %zu (%.1fx) — the best "
              "case-study ISE does not stay the best. (On the real machine "
              "the selection stabilizes on the MG variant: once loaded it is "
              "reused for free, so the profit of switching rarely wins.)\n",
              lo, hi, static_cast<double>(hi) / static_cast<double>(lo));
  if (traced) {
    const std::string path = write_point_trace(
        trace_dir(), "fig2_mrts.json", recorder.events(), &app.library);
    if (!path.empty()) {
      std::printf("[trace] wrote %zu events to %s\n", recorder.size(),
                  path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  (void)mrts::bench::parse_jobs(&argc, argv);  // strips --no-bb-cache too
  trace_dir() = parse_trace_dir(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
