// Fig. 14 (extension beyond the paper): migration-based defragmentation
// recovery. The paper's machine never loses capacity; this harness runs a
// synthetic working set on one FG fabric under the full fault model at a 10%
// rate (load CRC failures, scrub upsets, permanent quarantines) and compares
// two modes:
//
//   baseline  — failed loads and failed scrub repairs leave their PRC empty
//               (arch/fabric_manager.cpp evicts the victim before streaming
//               and on repair failure), so holes open mid-fabric and persist
//               until the next working-set refresh; the fragmentation index
//               (obs/occupancy's 1 - r/f, evaluated live by rts/migration.h)
//               climbs between refreshes.
//   defrag    — every window the DefragPolicy compacts the surviving
//               configurations with live migrations
//               (FabricManager::migrate_prc — real drain + copy streams on
//               the reconfiguration port), folding the free space back into
//               one contiguous run.
//
// Expected shape (pinned by the committed fig14_defrag_recovery.csv): every
// compaction pass strictly decreases the fragmentation index or bottoms out
// at its quarantine-topology floor (fg_fragmentation_floor); every pass
// drains its copy streams inside its own window; and the defrag machine
// keeps within 10% of the baseline's mean throughput — i.e. recovering the
// fragmentation index is close to free.
//
// Each mode owns its fabric and fault model (seeded identically), so each is
// deterministic in isolation; the timelines diverge once the first migration
// copy consumes a fault draw, exactly as two separately-provisioned machines
// would. The two modes fan out over a SweepRunner (--jobs N) and results
// merge in submission order, so the table and CSV are byte-identical to
// `--jobs 1`.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/fabric_manager.h"
#include "arch/fault_model.h"
#include "bench_common.h"
#include "isa/ise_builder.h"
#include "rts/migration.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

constexpr unsigned kPrcs = 24;
constexpr unsigned kCgFabrics = 1;  // unused by the FG scenario, minimum 1
/// Two disjoint phase working sets (the paper's phased applications): each
/// refresh swaps the whole set, so every refresh streams ~2*kSetKernels
/// loads over the previous set's PRCs — at a 10% CRC-failure rate that
/// scatters fresh holes through the middle of the fabric. A static working
/// set would only ever reload its own holes in place and never fragment.
constexpr unsigned kSetKernels = 11;  // per set, 2 FG data paths each
constexpr unsigned kKernels = 2 * kSetKernels;
constexpr unsigned kWindows = 32;
/// One window per scrub interval (FaultModelConfig default), so every window
/// starts with exactly one scrub epoch.
constexpr Cycles kWindowCycles = 2'000'000;
constexpr std::uint64_t kBitstreamBytes = 8192;  // ~48k cycles per FG load
constexpr double kFaultRate = 0.10;
constexpr std::uint64_t kFaultSeed = 14;
constexpr unsigned kExecsPerKernel = 64;  ///< executions per ready kernel
/// The working set refreshes (reinstalls every surviving kernel) every this
/// many windows; between refreshes, holes punched by failed loads and failed
/// scrub repairs persist — that persistence is what the baseline measures.
constexpr unsigned kPhaseWindows = 4;

/// One synthetic FG-only library: kKernels kernels, each accelerated by a
/// two-PRC full variant (small bitstreams keep the loads well inside a
/// window).
struct Scenario {
  IseLibrary lib;
  std::vector<KernelId> kernels;
  std::vector<IsePlacementRequest> full;  ///< per kernel, its 2-PRC variant

  Scenario() {
    for (unsigned k = 0; k < kKernels; ++k) {
      IseBuildSpec spec;
      spec.kernel_name = "k" + std::to_string(k);
      spec.sw_latency = 900;
      spec.control_fraction = 0.6;
      spec.fg_data_path_names = {spec.kernel_name + "_ctrl",
                                 spec.kernel_name + "_dp"};
      spec.build_mg_variants = false;
      spec.mono_cg_speedup = 0.0;
      spec.fg_bitstream_bytes = kBitstreamBytes;
      kernels.push_back(build_kernel_ises(lib, spec));
    }
    for (KernelId k : kernels) {
      const Kernel& kernel = lib.kernel(k);
      IsePlacementRequest req;
      for (IseId id : kernel.ises) {
        const IseVariant& v = lib.ise(id);
        if (v.is_fg_only() && v.num_data_paths() == 2) {
          req.ise = id;
          req.kernel = k;
          req.data_paths = v.data_paths;
        }
      }
      full.push_back(std::move(req));
    }
  }
};

const Scenario& scenario() {
  static const Scenario s;
  return s;
}

struct WindowRow {
  unsigned window = 0;
  unsigned usable_prcs = 0;
  unsigned installed_kernels = 0;
  double frag_before = 0.0;
  double frag_after = 0.0;
  double frag_floor = 0.0;  ///< irreducible given the quarantine topology
  unsigned migrations = 0;
  std::uint64_t executions = 0;
  double throughput = 0.0;  ///< executions per Mcycle
};

struct ModeResult {
  std::vector<WindowRow> rows;
  unsigned total_migrations = 0;
  bool monotone = true;  ///< every compacting pass strictly reduced 1 - r/f
  /// Every compaction's copy streams drained inside their own window, so a
  /// pass never carries a throughput penalty into the next window.
  bool copies_bounded = true;
};

/// One mode's full 16-window simulation. Owns fabric, fault model and
/// policy; only the immutable Scenario is shared across concurrently
/// running modes.
ModeResult run_mode(bool defrag) {
  const Scenario& sc = scenario();
  FabricManager fabric(kCgFabrics, kPrcs, &sc.lib.data_paths());
  // max_retries = 0: a single CRC failure abandons the load, so ~10% of
  // streams leave their PRC empty — the hole source the defrag mode exists
  // to clean up (retries would repair most holes in place and the harness
  // would measure nothing).
  FaultModel fault(
      FaultModelConfig::uniform(kFaultRate, kFaultSeed, /*max_retries=*/0));
  fabric.attach_fault_model(&fault);
  DefragConfig config;
  config.enabled = true;
  config.min_fragmentation = 0.25;
  const DefragPolicy policy(config);

  ModeResult result;
  std::vector<IsePlacementRequest> selection;
  for (unsigned w = 0; w < kWindows; ++w) {
    const Cycles t0 = static_cast<Cycles>(w) * kWindowCycles;
    const Cycles t1 = t0 + kWindowCycles;
    WindowRow row;
    row.window = w;

    // One scrub epoch: upsets may quarantine a PRC (permanent) or stream a
    // repair whose own CRC failure leaves the PRC empty for this round.
    fabric.scrub(t0);

    // Phase change: swap to the other working set, as many of its kernels
    // as the post-quarantine capacity fits. Every data path of the new set
    // streams in over the old set's PRCs; ~10% of those streams fail and
    // leave their PRC empty mid-fabric until the next phase change.
    if (w % kPhaseWindows == 0) {
      const unsigned set = (w / kPhaseWindows) % 2;
      selection.clear();
      // Claim the whole usable fabric: every PRC the new set does not reuse
      // is evicted as a victim, so the free space after the refresh is
      // exactly the failed-load holes (stale residents of the old set would
      // otherwise soak up the slack and mask them).
      unsigned budget = fabric.usage().usable_prcs();
      for (unsigned k = 0; k < kSetKernels && budget >= 2; ++k) {
        selection.push_back(sc.full[set * kSetKernels + k]);
        budget -= 2;
      }
      fabric.install(selection, t0);
    }
    row.usable_prcs = fabric.usage().usable_prcs();
    row.installed_kernels = static_cast<unsigned>(selection.size());

    row.frag_before = fg_fragmentation(fabric);
    if (defrag) {
      const DefragReport rep = policy.recover(fabric, t0);
      row.frag_after = rep.fragmentation_after;
      row.frag_floor = fg_fragmentation_floor(fabric);
      row.migrations = rep.migrated;
      result.total_migrations += rep.migrated;
      // A compacting pass must strictly reduce the index unless it already
      // bottomed out: a quarantined PRC between the packed free slots makes
      // part of the index irreducible (fg_fragmentation_floor).
      if (rep.migrated > 0 &&
          !(rep.fragmentation_after < rep.fragmentation_before ||
            rep.fragmentation_after <= row.frag_floor + 1e-9)) {
        result.monotone = false;
      }
      if (rep.migrated > 0 && rep.ready_at > t1) result.copies_bounded = false;
    } else {
      row.frag_after = row.frag_before;
      row.frag_floor = fg_fragmentation_floor(fabric);
    }

    // Throughput: a kernel contributes its executions only when every
    // data-path instance of its variant is usable by the window's end —
    // lost configurations and still-draining streams (including migration
    // copies) cost the window.
    for (const IsePlacementRequest& req : selection) {
      bool ready = true;
      for (DataPathId dp : req.data_paths) {
        if (fabric.available_instances(dp, t1) == 0) ready = false;
      }
      if (ready) row.executions += kExecsPerKernel;
    }
    row.throughput = static_cast<double>(row.executions) /
                     (static_cast<double>(kWindowCycles) / 1e6);
    result.rows.push_back(row);
  }
  return result;
}

const std::vector<std::string>& modes() {
  static const std::vector<std::string> m = {"baseline", "defrag"};
  return m;
}

std::vector<ModeResult>& results() {
  static std::vector<ModeResult> r;
  return r;
}

void run_sweep(unsigned jobs) {
  (void)scenario();  // build the shared library once, before the fan-out
  timed_sweep("Defrag recovery", jobs, [](const SweepRunner& runner) {
    results() = runner.map(modes(), [](const std::string& mode) {
      return run_mode(mode == "defrag");
    });
  });
}

/// Reporting stub publishing each mode's headline numbers.
void BM_Fig14_Defrag(benchmark::State& state) {
  const ModeResult& r = results()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.rows.size());
  }
  double frag_sum = 0.0;
  for (const WindowRow& row : r.rows) frag_sum += row.frag_after;
  state.counters["mean_fragmentation"] =
      frag_sum / static_cast<double>(r.rows.size());
  state.counters["migrations"] = static_cast<double>(r.total_migrations);
  state.counters["final_throughput_per_Mcyc"] = r.rows.back().throughput;
}

void register_benchmarks() {
  for (std::size_t i = 0; i < modes().size(); ++i) {
    benchmark::RegisterBenchmark(("BM_Fig14_Defrag/" + modes()[i]).c_str(),
                                 BM_Fig14_Defrag)
        ->Args({static_cast<long>(i)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_figure() {
  TextTable table({"mode", "window", "usable", "kernels", "frag before",
                   "frag after", "frag floor", "migrations",
                   "throughput [/Mcyc]"});
  CsvWriter csv("fig14_defrag_recovery.csv");
  csv.write_header({"mode", "window", "usable_prcs", "installed_kernels",
                    "frag_before", "frag_after", "frag_floor", "migrations",
                    "executions", "throughput_per_mcyc"});
  for (std::size_t m = 0; m < modes().size(); ++m) {
    for (const WindowRow& row : results()[m].rows) {
      table.add_values(modes()[m], row.window, row.usable_prcs,
                       row.installed_kernels, format_double(row.frag_before, 4),
                       format_double(row.frag_after, 4),
                       format_double(row.frag_floor, 4), row.migrations,
                       format_double(row.throughput, 1));
      csv.write_values(modes()[m], row.window, row.usable_prcs,
                       row.installed_kernels, format_double(row.frag_before, 4),
                       format_double(row.frag_after, 4),
                       format_double(row.frag_floor, 4), row.migrations,
                       row.executions, format_double(row.throughput, 1));
    }
  }
  const ModeResult& base = results()[0];
  const ModeResult& defrag = results()[1];
  const auto mean_throughput = [](const ModeResult& r) {
    double sum = 0.0;
    for (const WindowRow& row : r.rows) sum += row.throughput;
    return sum / static_cast<double>(r.rows.size());
  };
  const double mean_base = mean_throughput(base);
  const double mean_defrag = mean_throughput(defrag);
  std::printf("\nFig. 14 — defragmentation recovery on %u PRCs "
              "(fault rate %.2f, seed %llu, written to "
              "fig14_defrag_recovery.csv)\n%s",
              kPrcs, kFaultRate,
              static_cast<unsigned long long>(kFaultSeed),
              table.render().c_str());
  std::printf("defrag mode: %u migration(s); mean throughput %.1f "
              "(baseline %.1f) executions/Mcyc\n",
              defrag.total_migrations, mean_defrag, mean_base);

  // Hard acceptance checks — a regression here must fail the smoke test,
  // not just skew a CSV nobody diffs.
  if (defrag.total_migrations == 0) {
    std::fprintf(stderr, "FAILED: defrag mode never migrated\n");
    std::exit(3);
  }
  if (!defrag.monotone) {
    std::fprintf(stderr, "FAILED: a compaction pass did not strictly reduce "
                         "the fragmentation index (nor reach its floor)\n");
    std::exit(3);
  }
  // Migration copies drain on the reconfiguration port; recovery means every
  // pass finishes its streams inside its own window, so no compaction cost
  // leaks into the next window's throughput.
  if (!defrag.copies_bounded) {
    std::fprintf(stderr, "FAILED: a compaction pass was still draining its "
                         "copy streams past the end of its window\n");
    std::exit(3);
  }
  // The two fault timelines diverge once migration streams consume draws,
  // so the modes are compared on their means: defragmentation is close to
  // free when the defrag machine keeps >= 90% of the baseline throughput.
  if (mean_defrag < 0.9 * mean_base) {
    std::fprintf(stderr,
                 "FAILED: defrag mode throughput fell more than 10%% below "
                 "the baseline (%.1f vs %.1f executions/Mcyc)\n",
                 mean_defrag, mean_base);
    std::exit(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
