// Fig. 12 (extension beyond the paper): multi-tenant fairness. The paper
// stops at the Section 1 observation that the fabric is "shared among
// various tasks"; this harness measures what the FabricArbiter
// (sim/arbiter.h) makes of that sharing. It sweeps the tenant count n from
// 2 to 16 on a fixed 4 PRC + 2 CG fabric under three arbitration scenarios:
//
//  * equal  — every tenant weighted with weight 1: the degenerate case that
//    reproduces the legacy run_time_sliced free-for-all bit-exactly;
//  * skewed — weights cycle 1,2,3,4: soft quotas bias evictions onto
//    over-quota tenants, trading aggregate throughput for entitlement;
//  * mixed  — tenant 0 holds a reserved 1+1 partition at priority 2, odd
//    tenants are weighted (weight 2, priority 1), the rest run best-effort:
//    hard isolation + quota + scavengers on one fabric.
//
// Each point reports aggregate throughput (blocks per Mcycle of the shared
// timeline) and the Jain fairness index over per-tenant throughput. The
// workload is synthetic (one kernel per tenant, fixed block count) and
// deliberately independent of MRTS_BENCH_FRAMES, so the committed CSV is
// reproducible under any smoke-test environment.
//
// The sweep fans out over a SweepRunner (--jobs N); every point builds its
// own fabric, arbiter and MRts instances, and results merge in submission
// order, so the table and fig12_multitenant_fairness.csv are byte-identical
// to `--jobs 1` at any worker count.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "isa/ise_builder.h"
#include "sim/machine.h"
#include "sim/multi_app.h"
#include "workload/workload_gen.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

/// The fabric under test: the mid-size 4 PRC + 2 CG machine (Fig. 8's
/// best-scaling column).
constexpr unsigned kPrcs = 4;
constexpr unsigned kCgFabrics = 2;
/// Functional blocks per tenant (fixed: the figure's axis is the tenant
/// count, not the trace length).
constexpr unsigned kBlocksPerTenant = 8;

const std::vector<const char*>& scenarios() {
  static const std::vector<const char*> s = {"equal", "skewed", "mixed"};
  return s;
}

const std::vector<unsigned>& tenant_counts() {
  static const std::vector<unsigned> n = {2, 4, 6, 8, 10, 12, 14, 16};
  return n;
}

/// One sweep point: a scenario at one tenant count.
struct PointKey {
  std::string scenario;
  unsigned tenants = 0;
};

TenantPolicy policy_for(const std::string& scenario, unsigned index) {
  TenantPolicy policy;
  if (scenario == "equal") {
    policy.share = TenantShare::kWeighted;
    policy.weight = 1;
  } else if (scenario == "skewed") {
    policy.share = TenantShare::kWeighted;
    policy.weight = 1 + index % 4;
  } else {  // mixed
    if (index == 0) {
      policy.share = TenantShare::kReserved;
      policy.reserved_prcs = 1;
      policy.reserved_cg = 1;
      policy.priority = 2;
    } else if (index % 2 == 1) {
      policy.share = TenantShare::kWeighted;
      policy.weight = 2;
      policy.priority = 1;
    } else {
      policy.share = TenantShare::kBestEffort;
    }
  }
  return policy;
}

struct PointResult {
  Cycles total_cycles = 0;
  std::uint64_t blocks = 0;
  double aggregate_throughput = 0.0;  ///< blocks per Mcycle of the timeline
  double jain_fairness = 1.0;
  std::uint64_t evictions = 0;
  std::uint64_t quota_redirects = 0;
  unsigned bounced = 0;
};

/// One independent sweep point: builds its own combined library, traces,
/// fabric, arbiter and one MRts per tenant, then runs the multi-tenant
/// scheduler to completion.
PointResult run_point(const PointKey& key) {
  // One synthetic kernel per tenant, all in one combined library so every
  // MRts shares the fabric's data-path table.
  IseLibrary combined;
  std::vector<KernelId> kernels;
  for (unsigned i = 0; i < key.tenants; ++i) {
    const std::string name = "T" + std::to_string(i);
    IseBuildSpec spec;
    spec.kernel_name = name;
    spec.sw_latency = 700;
    spec.control_fraction = 0.4;
    spec.fg_data_path_names = {name + "_ctrl_fg", name + "_dp_fg"};
    spec.cg_data_path_names = {name + "_mac_cg"};
    spec.fg_control_dps = 1;
    spec.cg_data_dps = 1;
    kernels.push_back(build_kernel_ises(combined, spec));
  }
  std::vector<ApplicationTrace> traces(key.tenants);
  for (unsigned i = 0; i < key.tenants; ++i) {
    Rng rng(1000 + i);
    for (unsigned b = 0; b < kBlocksPerTenant; ++b) {
      FunctionalBlockInstance inst = make_block_instance(
          FunctionalBlockId{0}, /*macroblocks=*/400,
          {{kernels[i], 8.0, 25, 0.1}}, /*entry_gap=*/200, /*tail_gap=*/200,
          rng);
      stamp_programmed_trigger(inst, combined);
      traces[i].blocks.push_back(std::move(inst));
    }
  }

  // One arbitrated machine per point (sim/machine.h): the machine owns the
  // shared fabric + arbiter and builds the tenant-bound MRts instances,
  // replacing the hand-wired FabricManager/FabricArbiter/MRts construction.
  MachineConfig mc;
  mc.prcs = kPrcs;
  mc.cg_fabrics = kCgFabrics;
  mc.tenancy = Tenancy::kArbitrated;
  Machine machine(combined, mc);
  FabricArbiter& arbiter = machine.arbiter();
  std::vector<FabricArbiter::Registration> regs;
  std::vector<Task> tasks;
  PointResult result;
  for (unsigned i = 0; i < key.tenants; ++i) {
    const TenantPolicy policy = policy_for(key.scenario, i);
    regs.push_back(
        machine.register_tenant("T" + std::to_string(i), policy));
    if (!regs.back().admitted) {
      ++result.bounced;
      continue;
    }
    Task task;
    task.name = "T" + std::to_string(i);
    task.rts = &machine.add_rts(regs[i].id);
    task.trace = &traces[i];
    task.priority = policy.priority;
    task.tenant = regs[i].id;
    tasks.push_back(std::move(task));
  }
  const MultiTenantResult run = run_multi_tenant(tasks, &arbiter);

  std::vector<double> throughputs;
  for (const MultiTenantTaskResult& tr : run.tasks) {
    result.blocks += tr.run.block_cycles.size();
    throughputs.push_back(
        tr.run.active_cycles == 0
            ? 0.0
            : static_cast<double>(tr.run.block_cycles.size()) * 1e6 /
                  static_cast<double>(tr.run.active_cycles));
  }
  for (unsigned i = 0; i < key.tenants; ++i) {
    if (!regs[i].admitted) continue;
    const TenantStats& stats = arbiter.stats(regs[i].id);
    result.evictions += stats.evictions_caused;
    result.quota_redirects += stats.quota_redirects;
  }
  result.total_cycles = run.total_cycles;
  result.aggregate_throughput =
      run.total_cycles == 0 ? 0.0
                            : static_cast<double>(result.blocks) * 1e6 /
                                  static_cast<double>(run.total_cycles);
  result.jain_fairness = jain_fairness_index(throughputs);
  return result;
}

std::vector<PointKey>& point_keys() {
  static std::vector<PointKey> keys = [] {
    std::vector<PointKey> k;
    for (const char* scenario : scenarios()) {
      for (unsigned n : tenant_counts()) k.push_back({scenario, n});
    }
    return k;
  }();
  return keys;
}

std::vector<PointResult>& point_results() {
  static std::vector<PointResult> r;
  return r;
}

void run_sweep(unsigned jobs) {
  timed_sweep("Multi-tenant sweep", jobs, [](const SweepRunner& runner) {
    point_results() = runner.map(point_keys(), run_point);
  });
}

/// Reporting stub: the heavy work happened in run_sweep(); this publishes
/// each point's throughput/fairness under BM_MultiTenant/<scenario>/<n>.
void BM_MultiTenant_Point(benchmark::State& state) {
  const PointResult& point = point_results()[static_cast<std::size_t>(
      state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(point.total_cycles);
  }
  state.counters["total_Mcycles"] =
      static_cast<double>(point.total_cycles) / 1e6;
  state.counters["blocks_per_Mcyc"] = point.aggregate_throughput;
  state.counters["jain_fairness"] = point.jain_fairness;
}

void register_benchmarks() {
  for (std::size_t i = 0; i < point_keys().size(); ++i) {
    const PointKey& key = point_keys()[i];
    benchmark::RegisterBenchmark(
        ("BM_MultiTenant/" + key.scenario + "/tenants_" +
         std::to_string(key.tenants))
            .c_str(),
        BM_MultiTenant_Point)
        ->Args({static_cast<long>(i)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_figure() {
  TextTable table({"scenario", "tenants", "total [Mcyc]", "blocks/Mcyc",
                   "Jain fairness", "evictions", "quota redirects",
                   "bounced"});
  CsvWriter csv("fig12_multitenant_fairness.csv");
  csv.write_header({"scenario", "tenants", "total_cycles", "blocks",
                    "blocks_per_mcycle", "jain_fairness", "evictions",
                    "quota_redirects", "bounced"});
  for (std::size_t i = 0; i < point_keys().size(); ++i) {
    const PointKey& key = point_keys()[i];
    const PointResult& p = point_results()[i];
    table.add_values(key.scenario, key.tenants, format_mcycles(p.total_cycles),
                     format_double(p.aggregate_throughput, 3),
                     format_double(p.jain_fairness, 4), p.evictions,
                     p.quota_redirects, p.bounced);
    csv.write_values(key.scenario, key.tenants, p.total_cycles, p.blocks,
                     format_double(p.aggregate_throughput, 4),
                     format_double(p.jain_fairness, 4), p.evictions,
                     p.quota_redirects, p.bounced);
  }
  std::printf("\nFig. 12 — multi-tenant fairness on %u PRCs + %u CG, %u "
              "blocks/tenant (written to fig12_multitenant_fairness.csv)\n%s",
              kPrcs, kCgFabrics, kBlocksPerTenant, table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
