// Ablation study of the mRTS design choices called out in Section 4 (these
// go beyond the paper's own evaluation): monoCG-Extensions, intermediate
// ISEs, cross-ISE data-path sharing in the ECU, the MPU's error
// back-propagation, and the selection-overhead charging. Each variant runs
// the full workload on a 2-PRC / 2-CG machine.
//
// The variant sweep fans out over a SweepRunner (--jobs N); each variant
// runs on a private MRts instance and results merge in submission order, so
// the output is byte-identical to `--jobs 1`.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

struct Variant {
  const char* name;
  MRtsConfig config;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full mRTS", MRtsConfig{}});
  {
    MRtsConfig c;
    c.ecu.use_mono_cg = false;
    out.push_back({"no monoCG-Extension", c});
  }
  {
    MRtsConfig c;
    c.ecu.use_intermediates = false;
    out.push_back({"no intermediate ISEs", c});
  }
  {
    MRtsConfig c;
    c.ecu.use_cross_coverage = false;
    out.push_back({"no cross-ISE sharing", c});
  }
  {
    MRtsConfig c;
    c.ecu.use_intermediates = false;
    c.ecu.use_cross_coverage = false;
    c.ecu.use_mono_cg = false;
    out.push_back({"full-ISE-only ECU", c});
  }
  {
    MRtsConfig c;
    c.mpu.enabled = false;
    out.push_back({"no MPU (programmed forecasts)", c});
  }
  {
    MRtsConfig c;
    c.mpu.alpha = 1.0;
    out.push_back({"MPU alpha=1.0 (last value)", c});
  }
  {
    MRtsConfig c;
    c.charge_selection_overhead = false;
    out.push_back({"zero-overhead selection (ideal)", c});
  }
  {
    MRtsConfig c;
    c.use_optimal_selector = true;
    c.charge_selection_overhead = false;
    out.push_back({"optimal run-time selector", c});
  }
  {
    MRtsConfig c;
    c.selector_policy = SelectionPolicy::kMaxProfitDensity;
    out.push_back({"profit-density selection policy", c});
  }
  {
    MRtsConfig c;
    c.enable_lookahead = true;
    out.push_back({"cross-block lookahead prefetch", c});
  }
  {
    MRtsConfig c;
    c.profit_model.account_risc_window = false;
    out.push_back({"Eq.4 as printed (no NoE_RM term)", c});
  }
  {
    MRtsConfig c;
    c.profit_model.include_tb = false;
    out.push_back({"profit without tb term", c});
  }
  return out;
}

std::map<std::string, Cycles>& results() {
  static std::map<std::string, Cycles> r;
  return r;
}

void run_sweep(unsigned jobs) {
  (void)context();
  timed_sweep("Ablations", jobs, [](const SweepRunner& runner) {
    const std::vector<Variant> points = variants();
    const std::vector<Cycles> cycles =
        runner.map(points, [](const Variant& v) {
          return context().run_mrts(2, 2, v.config).total_cycles;
        });
    for (std::size_t i = 0; i < points.size(); ++i) {
      results()[points[i].name] = cycles[i];
    }
  });
}

/// Reporting stub over the precomputed sweep results.
void BM_Ablation(benchmark::State& state, std::string name) {
  const EvalContext& ctx = context();
  const Cycles cycles = results()[name];
  for (auto _ : state) {
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["speedup_vs_risc"] = speedup(ctx.risc_cycles, cycles);
}

void register_benchmarks() {
  for (const auto& v : variants()) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Ablation/") + v.name).c_str(), BM_Ablation,
        std::string(v.name))
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  const EvalContext& ctx = context();
  const Cycles full = results()["full mRTS"];
  TextTable table(
      {"variant", "Mcycles", "speedup vs RISC", "slowdown vs full mRTS"});
  CsvWriter csv("ablations.csv");
  csv.write_header({"variant", "cycles", "speedup_vs_risc",
                    "slowdown_vs_full"});
  for (const auto& v : variants()) {
    const Cycles cycles = results()[v.name];
    // >1 means the variant is slower than full mRTS.
    const double slowdown = speedup(cycles, full);
    table.add_values(v.name, format_mcycles(cycles),
                     speedup(ctx.risc_cycles, cycles),
                     format_double(slowdown, 3) + "x");
    csv.write_values(v.name, cycles, speedup(ctx.risc_cycles, cycles),
                     slowdown);
  }
  std::printf("\nAblations — mRTS design choices on 2 PRCs + 2 CG fabrics\n%s",
              table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
