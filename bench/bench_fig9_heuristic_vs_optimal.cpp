// Reproduces Fig. 9: percentage difference between the performance achieved
// with the run-time optimal (branch & bound) ISE selection and the Fig. 6
// heuristic, over PRCs 0..6 x CG fabrics 0..3. Paper shape: the heuristic
// stays within ~3% whenever at least one CG fabric is available; the worst
// case (~11%) occurs at PRC-only combinations where the optimal distributes
// the PRCs over two kernels while the greedy gives most of them to one.
//
// The 27-point sweep (the RISC-only corner has nothing to select) fans out
// over a SweepRunner (--jobs N); each point runs its three simulations on
// private simulator instances and results merge in submission order, so the
// output is byte-identical to `--jobs 1`.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

struct Diffs {
  double heuristic = 0.0;  ///< max-profit heuristic vs optimal
  double density = 0.0;    ///< profit-density policy vs optimal
};

std::map<std::string, Diffs>& diffs() {
  static std::map<std::string, Diffs> d;
  return d;
}

const std::vector<FabricCombination>& sweep_points() {
  static const std::vector<FabricCombination> points = []() {
    std::vector<FabricCombination> out;
    for (const FabricCombination& c : fabric_sweep(6, 3)) {
      if (!c.risc_only()) out.push_back(c);  // RISC mode: nothing to select
    }
    return out;
  }();
  return points;
}

Diffs run_point(const FabricCombination& combo) {
  const EvalContext& ctx = context();
  MRtsConfig heuristic_cfg;
  heuristic_cfg.charge_selection_overhead = false;  // isolate selection
  const Cycles heuristic =
      ctx.run_mrts(combo.cg, combo.prcs, heuristic_cfg).total_cycles;
  MRtsConfig optimal_cfg;
  optimal_cfg.use_optimal_selector = true;
  optimal_cfg.charge_selection_overhead = false;
  const Cycles optimal =
      ctx.run_mrts(combo.cg, combo.prcs, optimal_cfg).total_cycles;
  MRtsConfig density_cfg;
  density_cfg.selector_policy = SelectionPolicy::kMaxProfitDensity;
  density_cfg.charge_selection_overhead = false;
  const Cycles density =
      ctx.run_mrts(combo.cg, combo.prcs, density_cfg).total_cycles;

  Diffs d;
  d.heuristic = percent_difference(static_cast<double>(optimal),
                                   static_cast<double>(heuristic));
  d.density = percent_difference(static_cast<double>(optimal),
                                 static_cast<double>(density));
  return d;
}

void run_sweep(unsigned jobs) {
  (void)context();
  timed_sweep("Fig. 9", jobs, [](const SweepRunner& runner) {
    const auto& points = sweep_points();
    const std::vector<Diffs> results = runner.map(points, run_point);
    for (std::size_t i = 0; i < points.size(); ++i) {
      diffs()[points[i].label()] = results[i];
    }
  });
}

/// Reporting stub over the precomputed sweep results.
void BM_Fig9_Combination(benchmark::State& state) {
  const auto prcs = static_cast<unsigned>(state.range(0));
  const auto cg = static_cast<unsigned>(state.range(1));
  const Diffs& d = diffs()[FabricCombination{prcs, cg}.label()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.heuristic);
  }
  state.counters["percent_difference"] = d.heuristic;
}

void register_benchmarks() {
  for (const FabricCombination& combo : sweep_points()) {
    benchmark::RegisterBenchmark(("BM_Fig9/" + combo.label()).c_str(),
                                 BM_Fig9_Combination)
        ->Args({static_cast<long>(combo.prcs), static_cast<long>(combo.cg)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_figure() {
  TextTable table({"PRCs", "CG=0", "CG=1", "CG=2", "CG=3"});
  CsvWriter csv("fig9_heuristic_vs_optimal.csv");
  csv.write_header({"prcs", "cg", "percent_difference"});
  double worst = 0.0;
  std::string worst_at = "-";
  RunningStats with_cg;
  for (unsigned prcs = 0; prcs <= 6; ++prcs) {
    std::vector<std::string> cells = {std::to_string(prcs)};
    for (unsigned cg = 0; cg <= 3; ++cg) {
      if (prcs == 0 && cg == 0) {
        cells.push_back("-");
        continue;
      }
      const double diff =
          diffs()[FabricCombination{prcs, cg}.label()].heuristic;
      cells.push_back(format_double(diff, 2) + "%");
      csv.write_values(prcs, cg, diff);
      if (diff > worst) {
        worst = diff;
        worst_at = FabricCombination{prcs, cg}.label();
      }
      if (cg >= 1) with_cg.add(diff);
    }
    table.add_row(cells);
  }
  std::printf("\nFig. 9 — heuristic ISE selection vs run-time optimal, "
              "%% performance difference (written to "
              "fig9_heuristic_vs_optimal.csv)\n%s",
              table.render().c_str());
  std::printf("With >=1 CG fabric: avg %.2f%%, max %.2f%% (paper: ~<=3%%). "
              "Worst case overall: %.2f%% at combination %s (paper: ~11%% at "
              "4 PRCs).\n",
              with_cg.mean(), with_cg.max(), worst, worst_at.c_str());

  // The documented mitigation: the profit-density ranking policy removes
  // most of the PRC-only resource hogging.
  RunningStats density_cg0;
  RunningStats maxprofit_cg0;
  for (unsigned prcs = 1; prcs <= 6; ++prcs) {
    const Diffs& d = diffs()[FabricCombination{prcs, 0}.label()];
    density_cg0.add(d.density);
    maxprofit_cg0.add(d.heuristic);
  }
  std::printf("PRC-only column with the profit-density policy (extension): "
              "avg %.2f%% / max %.2f%% vs %.2f%% / %.2f%% for the paper's "
              "max-profit rule.\n",
              density_cg0.mean(), density_cg0.max(), maxprofit_cg0.mean(),
              maxprofit_cg0.max());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
