// Reproduces Fig. 9: percentage difference between the performance achieved
// with the run-time optimal (branch & bound) ISE selection and the Fig. 6
// heuristic, over PRCs 0..6 x CG fabrics 0..3. Paper shape: the heuristic
// stays within ~3% whenever at least one CG fabric is available; the worst
// case (~11%) occurs at PRC-only combinations where the optimal distributes
// the PRCs over two kernels while the greedy gives most of them to one.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

std::map<std::string, double>& differences() {
  static std::map<std::string, double> d;
  return d;
}

std::map<std::string, double>& density_differences() {
  static std::map<std::string, double> d;
  return d;
}

void BM_Fig9_Combination(benchmark::State& state) {
  const auto prcs = static_cast<unsigned>(state.range(0));
  const auto cg = static_cast<unsigned>(state.range(1));
  const EvalContext& ctx = context();
  double diff = 0.0;
  for (auto _ : state) {
    MRtsConfig heuristic_cfg;
    heuristic_cfg.charge_selection_overhead = false;  // isolate selection
    const Cycles heuristic = ctx.run_mrts(cg, prcs, heuristic_cfg).total_cycles;
    MRtsConfig optimal_cfg;
    optimal_cfg.use_optimal_selector = true;
    optimal_cfg.charge_selection_overhead = false;
    const Cycles optimal = ctx.run_mrts(cg, prcs, optimal_cfg).total_cycles;
    diff = percent_difference(static_cast<double>(optimal),
                              static_cast<double>(heuristic));

    MRtsConfig density_cfg;
    density_cfg.selector_policy = SelectionPolicy::kMaxProfitDensity;
    density_cfg.charge_selection_overhead = false;
    const Cycles density = ctx.run_mrts(cg, prcs, density_cfg).total_cycles;
    density_differences()[FabricCombination{prcs, cg}.label()] =
        percent_difference(static_cast<double>(optimal),
                           static_cast<double>(density));
  }
  differences()[FabricCombination{prcs, cg}.label()] = diff;
  state.counters["percent_difference"] = diff;
}

void register_benchmarks() {
  for (unsigned prcs = 0; prcs <= 6; ++prcs) {
    for (unsigned cg = 0; cg <= 3; ++cg) {
      if (prcs == 0 && cg == 0) continue;  // RISC mode: nothing to select
      benchmark::RegisterBenchmark(
          ("BM_Fig9/" + FabricCombination{prcs, cg}.label()).c_str(),
          BM_Fig9_Combination)
          ->Args({static_cast<long>(prcs), static_cast<long>(cg)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_figure() {
  TextTable table({"PRCs", "CG=0", "CG=1", "CG=2", "CG=3"});
  CsvWriter csv("fig9_heuristic_vs_optimal.csv");
  csv.write_header({"prcs", "cg", "percent_difference"});
  double worst = 0.0;
  std::string worst_at = "-";
  RunningStats with_cg;
  for (unsigned prcs = 0; prcs <= 6; ++prcs) {
    std::vector<std::string> cells = {std::to_string(prcs)};
    for (unsigned cg = 0; cg <= 3; ++cg) {
      if (prcs == 0 && cg == 0) {
        cells.push_back("-");
        continue;
      }
      const double diff = differences()[FabricCombination{prcs, cg}.label()];
      cells.push_back(format_double(diff, 2) + "%");
      csv.write_values(prcs, cg, diff);
      if (diff > worst) {
        worst = diff;
        worst_at = FabricCombination{prcs, cg}.label();
      }
      if (cg >= 1) with_cg.add(diff);
    }
    table.add_row(cells);
  }
  std::printf("\nFig. 9 — heuristic ISE selection vs run-time optimal, "
              "%% performance difference (written to "
              "fig9_heuristic_vs_optimal.csv)\n%s",
              table.render().c_str());
  std::printf("With >=1 CG fabric: avg %.2f%%, max %.2f%% (paper: ~<=3%%). "
              "Worst case overall: %.2f%% at combination %s (paper: ~11%% at "
              "4 PRCs).\n",
              with_cg.mean(), with_cg.max(), worst, worst_at.c_str());

  // The documented mitigation: the profit-density ranking policy removes
  // most of the PRC-only resource hogging.
  RunningStats density_cg0;
  RunningStats maxprofit_cg0;
  for (unsigned prcs = 1; prcs <= 6; ++prcs) {
    density_cg0.add(density_differences()[FabricCombination{prcs, 0}.label()]);
    maxprofit_cg0.add(differences()[FabricCombination{prcs, 0}.label()]);
  }
  std::printf("PRC-only column with the profit-density policy (extension): "
              "avg %.2f%% / max %.2f%% vs %.2f%% / %.2f%% for the paper's "
              "max-profit rule.\n",
              density_cg0.mean(), density_cg0.max(), maxprofit_cg0.mean(),
              maxprofit_cg0.max());
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
