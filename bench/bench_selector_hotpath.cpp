// Wall-clock microbenchmark of the ISE-selection hot path — the repo's
// perf-trajectory harness (docs/BENCHMARKS.md). Unlike every fig bench, this
// one measures *seconds*, not simulated cycles: it times raw
// HeuristicSelector::select() and OptimalSelector::select() calls over the
// fig8/fig9 fabric grid (PRCs 0..6 x CG 0..3, RISC-only corner excluded),
// interleaving the tuned configuration (profit memoization + incremental
// planner, the shipping defaults) with SelectorTuning::baseline() (the
// pre-optimization implementation kept alive for exactly this A/B) in the
// same process, on byte-identical inputs.
//
// Per grid point the fabric is warmed realistically: the H.264 trigger
// sequence is replayed with select()+install() between snapshots, so the
// timed planners carry genuine port backlogs and reusable instances. Every
// snapshot first cross-checks that tuned and baseline return identical
// SelectionResults — the optimizations must never change a selection — and
// then contributes interleaved timing samples.
//
// Output: BENCH_selector.json (median ns per select() per variant, speedup,
// profit-cache hit rate, operator-new allocations per select). Timings are
// machine-dependent by nature; the JSON is a perf-tracking artifact, not a
// determinism-checked figure.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <new>
#include <vector>

#include "bench_common.h"

// Allocation probe: counts every global operator new in this binary. The
// bench is strictly single-threaded (timing would be meaningless otherwise),
// so a plain counter suffices.
namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mrts;
using namespace mrts::bench;
using Clock = std::chrono::steady_clock;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

/// One timed decision point: a trigger plus the planner snapshot a real
/// on_trigger() would hand the selector at that moment.
struct Snapshot {
  TriggerInstruction trigger;
  ReconfigPlanner planner;
};

/// Replays the application's trigger sequence on a fresh fabric of the given
/// size, collecting a planner snapshot per trigger and evolving the fabric
/// with the selected installation in between (exactly MRts::on_trigger's
/// select -> install sequence, minus the execution model).
std::vector<Snapshot> collect_snapshots(unsigned prcs, unsigned cg,
                                        std::size_t max_snapshots) {
  const EvalContext& ctx = context();
  const IseLibrary& lib = ctx.app.library;
  FabricManager fabric(cg, prcs, &lib.data_paths());
  HeuristicSelector evolve(lib);
  std::vector<Snapshot> out;
  Cycles now = 0;
  for (const FunctionalBlockInstance& block : ctx.app.trace.blocks) {
    if (out.size() >= max_snapshots) break;
    ReconfigPlanner planner(lib.data_paths(), fabric, now);
    out.push_back({block.programmed, planner});
    const SelectionResult sel = evolve.select(block.programmed, planner);
    std::vector<IsePlacementRequest> requests;
    requests.reserve(sel.selected.size());
    for (const auto& s : sel.selected) {
      requests.push_back({s.ise, s.kernel, lib.ise(s.ise).data_paths});
    }
    fabric.install(requests, now);
    // Advance roughly one block length so later snapshots see drained ports
    // and earlier ones see them busy — both regimes matter.
    now += 150'000;
  }
  return out;
}

bool same_selection(const SelectionResult& a, const SelectionResult& b) {
  if (a.selected.size() != b.selected.size()) return false;
  for (std::size_t i = 0; i < a.selected.size(); ++i) {
    const SelectedIse& x = a.selected[i];
    const SelectedIse& y = b.selected[i];
    if (x.kernel != y.kernel || x.ise != y.ise || x.profit != y.profit ||
        x.instance_ready != y.instance_ready) {
      return false;
    }
  }
  return a.covered == b.covered &&
         a.profit_evaluations == b.profit_evaluations &&
         a.candidates_scanned == b.candidates_scanned &&
         a.first_round_evaluations == b.first_round_evaluations &&
         a.first_round_scans == b.first_round_scans &&
         a.overhead_cycles == b.overhead_cycles &&
         a.total_profit == b.total_profit;
}

/// Accumulated measurements of one selector variant.
struct VariantStats {
  std::vector<double> ns;         ///< per-call samples, interleaved A/B
  std::uint64_t allocs = 0;       ///< operator-new count over counted calls
  std::uint64_t counted_calls = 0;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  return v[mid];
}

struct HotpathReport {
  VariantStats base, tuned;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  double speedup() const {
    const double t = median(tuned.ns);
    return t > 0.0 ? median(base.ns) / t : 0.0;
  }
  double hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total != 0 ? static_cast<double>(cache_hits) /
                            static_cast<double>(total)
                      : 0.0;
  }
  double allocs_per_select(const VariantStats& v) const {
    return v.counted_calls != 0 ? static_cast<double>(v.allocs) /
                                      static_cast<double>(v.counted_calls)
                                : 0.0;
  }
};

/// Times one (baseline, tuned) selector pair over the snapshots,
/// interleaving the two on every repetition so clock drift and cache warmth
/// affect both sides equally.
template <typename Selector>
void measure_pair(const Selector& base, const Selector& tuned,
                  const std::vector<Snapshot>& snapshots, unsigned reps,
                  HotpathReport& report) {
  for (const Snapshot& snap : snapshots) {
    // Correctness gate (also counts allocations per variant, untimed).
    const std::uint64_t a0 = g_alloc_count;
    const SelectionResult expect = base.select(snap.trigger, snap.planner);
    report.base.allocs += g_alloc_count - a0;
    ++report.base.counted_calls;
    const std::uint64_t a1 = g_alloc_count;
    const SelectionResult got = tuned.select(snap.trigger, snap.planner);
    report.tuned.allocs += g_alloc_count - a1;
    ++report.tuned.counted_calls;
    if (!same_selection(expect, got)) {
      std::fprintf(stderr,
                   "FATAL: tuned selector diverged from baseline (PRC budget "
                   "%u, CG %u, cycle %llu)\n",
                   snap.planner.free_prcs(), snap.planner.free_cg(),
                   static_cast<unsigned long long>(snap.planner.now()));
      std::exit(1);
    }
    for (unsigned r = 0; r < reps; ++r) {
      const auto b0 = Clock::now();
      const SelectionResult rb = base.select(snap.trigger, snap.planner);
      const auto b1 = Clock::now();
      benchmark::DoNotOptimize(&rb);
      const auto t0 = Clock::now();
      const SelectionResult rt = tuned.select(snap.trigger, snap.planner);
      const auto t1 = Clock::now();
      benchmark::DoNotOptimize(&rt);
      report.base.ns.push_back(
          std::chrono::duration<double, std::nano>(b1 - b0).count());
      report.tuned.ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
  }
}

HotpathReport g_heuristic;
HotpathReport g_optimal;

void run_grid(unsigned reps, std::size_t max_snapshots) {
  const IseLibrary& lib = context().app.library;

  HeuristicSelector h_base(lib);
  h_base.set_tuning(SelectorTuning::baseline());
  HeuristicSelector h_tuned(lib);
  ProfitCache h_cache;
  h_tuned.attach_profit_cache(&h_cache);

  OptimalSelector o_base(lib);
  o_base.set_tuning(SelectorTuning::baseline());
  OptimalSelector o_tuned(lib);
  ProfitCache o_cache;
  o_tuned.attach_profit_cache(&o_cache);

  for (const FabricCombination& combo : fabric_sweep(6, 3)) {
    if (combo.risc_only()) continue;  // nothing to select
    const std::vector<Snapshot> snapshots =
        collect_snapshots(combo.prcs, combo.cg, max_snapshots);
    measure_pair(h_base, h_tuned, snapshots, reps, g_heuristic);
    measure_pair(o_base, o_tuned, snapshots, reps, g_optimal);
  }
  g_heuristic.cache_hits = h_cache.total_hits();
  g_heuristic.cache_misses = h_cache.total_misses();
  g_optimal.cache_hits = o_cache.total_hits();
  g_optimal.cache_misses = o_cache.total_misses();
}

void write_json(unsigned frames, unsigned reps) {
  std::FILE* f = std::fopen("BENCH_selector.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_selector.json\n");
    return;
  }
  const auto variant = [f](const char* name, const HotpathReport& r) {
    std::fprintf(
        f,
        "  \"%s\": {\n"
        "    \"baseline_ns_median\": %.1f,\n"
        "    \"tuned_ns_median\": %.1f,\n"
        "    \"speedup\": %.2f,\n"
        "    \"cache_hit_rate\": %.4f,\n"
        "    \"cache_hits\": %llu,\n"
        "    \"cache_misses\": %llu,\n"
        "    \"allocs_per_select_baseline\": %.1f,\n"
        "    \"allocs_per_select_tuned\": %.1f,\n"
        "    \"samples\": %zu\n"
        "  }",
        name, median(r.base.ns), median(r.tuned.ns), r.speedup(),
        r.hit_rate(), static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses),
        r.allocs_per_select(r.base), r.allocs_per_select(r.tuned),
        r.tuned.ns.size());
  };
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"mrts-selector-hotpath-v1\",\n"
               "  \"grid\": \"PRC 0..6 x CG 0..3, RISC-only corner "
               "excluded\",\n"
               "  \"frames\": %u,\n"
               "  \"reps\": %u,\n",
               frames, reps);
  variant("optimal", g_optimal);
  std::fprintf(f, ",\n");
  variant("heuristic", g_heuristic);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

void print_report() {
  TextTable table({"selector", "baseline ns", "tuned ns", "speedup",
                   "hit rate", "allocs base", "allocs tuned"});
  const auto row = [&table](const char* name, const HotpathReport& r) {
    table.add_values(name, format_double(median(r.base.ns), 0),
                     format_double(median(r.tuned.ns), 0),
                     format_double(r.speedup(), 2) + "x",
                     format_double(100.0 * r.hit_rate(), 1) + "%",
                     format_double(r.allocs_per_select(r.base), 1),
                     format_double(r.allocs_per_select(r.tuned), 1));
  };
  row("optimal", g_optimal);
  row("heuristic", g_heuristic);
  std::printf("\nSelector hot path — median wall-clock per select() over the "
              "fig9 grid, interleaved A/B vs SelectorTuning::baseline() "
              "(written to BENCH_selector.json)\n%s",
              table.render().c_str());
}

/// Reporting stubs so the result lands in the google-benchmark output too.
void BM_SelectorHotpath(benchmark::State& state) {
  const HotpathReport& r = state.range(0) == 0 ? g_optimal : g_heuristic;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&r);
  }
  state.counters["speedup"] = r.speedup();
  state.counters["tuned_ns_median"] = median(r.tuned.ns);
  state.counters["cache_hit_rate"] = r.hit_rate();
}

void register_benchmarks() {
  benchmark::RegisterBenchmark("BM_SelectorHotpath/optimal",
                               BM_SelectorHotpath)
      ->Args({0})
      ->Iterations(1);
  benchmark::RegisterBenchmark("BM_SelectorHotpath/heuristic",
                               BM_SelectorHotpath)
      ->Args({1})
      ->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted for interface parity with the other benches; this bench is
  // deliberately single-threaded (parallel timing samples would be noise).
  (void)parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  const unsigned frames = eval_params().frames;
  // Smoke runs (MRTS_BENCH_FRAMES=2 in CI) shrink both the warm-up depth and
  // the repetition count; the committed JSON comes from a full run.
  const unsigned reps = frames >= 8 ? 9 : 3;
  const std::size_t max_snapshots = frames >= 8 ? 10 : 4;
  run_grid(reps, max_snapshots);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_report();
  write_json(frames, reps);
  return 0;
}
