// bench_serve_latency — the serving-layer perf artifact (BENCH_serve.json).
//
// Drives ServeCore directly (no sockets: the AF_UNIX shell adds OS noise,
// the core is where jobs queue and run) with the same deterministic job mix
// mrts_loadgen generates: seeded pseudo-random share policies, weights,
// classes and block counts, including oversized reservations that bounce.
// Records, per mix, the admission-to-completion latency distribution in
// *simulated cycles* (p50/p99/mean — deterministic, the committable
// trajectory) plus wall-clock jobs/second of the whole submit+run+poll loop
// (machine-dependent context, like the other BENCH_*.json artifacts).
//
// Schema `mrts-serve-bench-v1` is documented in docs/BENCHMARKS.md.
//
// MRTS_BENCH_FRAMES=<n> shrinks the job count for the CI smoke run; the
// committed BENCH_serve.json comes from the full-size default. Flags
// (e.g. --benchmark_min_time, passed by the shared smoke harness) are
// accepted and ignored — the bench always runs its fixed workload.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "serve/serve_core.h"
#include "serve/wire.h"
#include "util/rng.h"

namespace {

using namespace mrts;
using namespace mrts::serve;

/// The loadgen job mix (tools/mrts_loadgen.cpp make_job), reproduced here
/// so the bench measures the same distribution the churn tool drives.
SubmitFrame make_job(Rng& rng, const ServeConfig& shape, std::uint64_t index) {
  SubmitFrame job;
  job.name = "bench" + std::to_string(index);
  const std::uint64_t mix = rng.next_u64() % 10;
  if (mix < 6) {
    job.share = static_cast<std::uint8_t>(WireShare::kWeighted);
    job.weight = 1 + static_cast<std::uint32_t>(rng.next_u64() % 4);
  } else if (mix < 8) {
    job.share = static_cast<std::uint8_t>(WireShare::kBestEffort);
  } else {
    job.share = static_cast<std::uint8_t>(WireShare::kReserved);
    job.reserved_prcs =
        1 + static_cast<std::uint32_t>(rng.next_u64() % (shape.prcs + 1));
    job.reserved_cg = static_cast<std::uint32_t>(rng.next_u64() % 2);
  }
  job.priority = static_cast<std::uint32_t>(rng.next_u64() % 3);
  job.job_class = static_cast<std::uint32_t>(rng.next_u64() % shape.job_classes);
  job.blocks = 1 + static_cast<std::uint32_t>(rng.next_u64() % 2);
  job.seed = rng.next_u64();
  return job;
}

std::uint64_t percentile(std::vector<std::uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

struct MixResult {
  std::string name;
  std::uint64_t jobs = 0;
  std::uint64_t done = 0;
  std::uint64_t bounced = 0;
  std::uint64_t p50_cycles = 0;
  std::uint64_t p99_cycles = 0;
  double mean_cycles = 0.0;
  double wall_s = 0.0;
  double jobs_per_s = 0.0;
};

/// One measured configuration: \p batch jobs are submitted before each
/// drain, so queueing delay (earlier jobs' spans) lands in the latency of
/// later jobs exactly as it does on the live server between poll rounds.
MixResult run_mix(const std::string& name, std::uint64_t jobs,
                  std::uint64_t batch, std::uint64_t seed) {
  const ServeConfig config;  // the documented mrts_serve defaults
  ServeCore core(config);
  Rng rng(seed);

  MixResult result;
  result.name = name;
  result.jobs = jobs;

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t submitted = 0;
  while (submitted < jobs) {
    const std::uint64_t round = std::min(batch, jobs - submitted);
    for (std::uint64_t i = 0; i < round; ++i) {
      core.submit(1, make_job(rng, config, submitted + i));
    }
    submitted += round;
    core.run_all();
  }
  // Deliver every report, as a polling client would.
  std::vector<std::uint64_t> latencies;
  for (std::uint64_t id = 1; id <= core.jobs_created(); ++id) {
    JobStatusFrame status;
    if (!core.status(id, &status)) continue;
    switch (static_cast<WireJobState>(status.state)) {
      case WireJobState::kDone:
        ++result.done;
        latencies.push_back(status.latency_cycles);
        break;
      case WireJobState::kBounced:
        ++result.bounced;
        break;
      default:
        break;
    }
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  std::sort(latencies.begin(), latencies.end());
  result.p50_cycles = percentile(latencies, 0.50);
  result.p99_cycles = percentile(latencies, 0.99);
  double total = 0.0;
  for (std::uint64_t cycles : latencies) {
    total += static_cast<double>(cycles);
  }
  result.mean_cycles =
      latencies.empty() ? 0.0 : total / static_cast<double>(latencies.size());
  result.wall_s = wall.count();
  result.jobs_per_s =
      wall.count() > 0.0 ? static_cast<double>(jobs) / wall.count() : 0.0;
  return result;
}

void write_json(const std::vector<MixResult>& mixes, std::uint64_t jobs) {
  std::ofstream out("BENCH_serve.json");
  out << "{\n";
  out << "  \"schema\": \"mrts-serve-bench-v1\",\n";
  out << "  \"jobs_per_mix\": " << jobs << ",\n";
  out << "  \"latency_unit\": \"simulated cycles, admission to completion\",\n";
  out << "  \"mixes\": {\n";
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const MixResult& m = mixes[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    \"%s\": {\n"
                  "      \"done\": %llu,\n"
                  "      \"bounced\": %llu,\n"
                  "      \"p50_cycles\": %llu,\n"
                  "      \"p99_cycles\": %llu,\n"
                  "      \"mean_cycles\": %.1f,\n"
                  "      \"wall_s\": %.3f,\n"
                  "      \"jobs_per_s\": %.1f\n"
                  "    }%s\n",
                  m.name.c_str(), static_cast<unsigned long long>(m.done),
                  static_cast<unsigned long long>(m.bounced),
                  static_cast<unsigned long long>(m.p50_cycles),
                  static_cast<unsigned long long>(m.p99_cycles),
                  m.mean_cycles, m.wall_s, m.jobs_per_s,
                  i + 1 == mixes.size() ? "" : ",");
    out << buffer;
  }
  out << "  }\n}\n";
}

}  // namespace

int main() {
  std::uint64_t jobs = 200;
  if (const char* frames = std::getenv("MRTS_BENCH_FRAMES")) {
    // The shared CI-smoke shrink knob: scale the job count the same way the
    // figure benches scale their frame counts (full size is 16 "frames").
    const std::uint64_t n = std::strtoull(frames, nullptr, 10);
    if (n > 0 && n < 16) jobs = std::max<std::uint64_t>(4, jobs * n / 16);
  }

  // Three mixes: a pure FIFO single-submit stream (latency floor), the
  // loadgen churn batch (queueing under a burst of 8), and a deep burst.
  const std::vector<MixResult> mixes = {
      run_mix("single", jobs, 1, 2026),
      run_mix("burst8", jobs, 8, 2026),
      run_mix("burst32", jobs, 32, 2026),
  };

  std::printf("%-10s %8s %8s %12s %12s %12s %10s\n", "mix", "done", "bounced",
              "p50_cycles", "p99_cycles", "mean_cycles", "jobs/s");
  for (const MixResult& m : mixes) {
    std::printf("%-10s %8llu %8llu %12llu %12llu %12.1f %10.1f\n",
                m.name.c_str(), static_cast<unsigned long long>(m.done),
                static_cast<unsigned long long>(m.bounced),
                static_cast<unsigned long long>(m.p50_cycles),
                static_cast<unsigned long long>(m.p99_cycles), m.mean_cycles,
                m.jobs_per_s);
  }
  write_json(mixes, jobs);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}
