// Reproduces Fig. 10: application speedup of mRTS over RISC-mode execution
// for fabric combinations PRCs 0..3 x CG 0..3, grouped into FG-only,
// CG-only and multi-grained sets, with the average line. Paper shape:
// FG-only combinations reach ~1.8-2.2x; multi-grained combinations are the
// clear winners (paper: >5x) because mRTS starts employing MG-ISEs and the
// monoCG-Extension; 1 PRC + 1 CG beats 3 PRCs-only and 3 CGs-only.
//
// The 16-point sweep fans out over a SweepRunner (--jobs N); each point
// builds a private MRts instance and results merge in submission order, so
// the output is byte-identical to `--jobs 1`.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

struct Point {
  double speedup = 0.0;
  double mono_fraction = 0.0;
  double mg_selected = 0.0;
};

std::map<std::string, Point>& points() {
  static std::map<std::string, Point> p;
  return p;
}

const std::vector<FabricCombination>& sweep_points() {
  static const std::vector<FabricCombination> p = fabric_sweep(3, 3);
  return p;
}

Point run_point(const FabricCombination& combo) {
  const EvalContext& ctx = context();
  MRts rts(ctx.app.library, combo.cg, combo.prcs);
  const AppRunResult r = run_application(rts, ctx.app.trace);
  Point point;
  point.speedup = speedup(ctx.risc_cycles, r.total_cycles);
  point.mono_fraction = r.impl_fraction(ImplKind::kMonoCg);
  point.mg_selected = static_cast<double>(rts.run_stats().selected_mg_ises);
  return point;
}

void run_sweep(unsigned jobs) {
  (void)context();
  timed_sweep("Fig. 10", jobs, [](const SweepRunner& runner) {
    const auto& combos = sweep_points();
    const std::vector<Point> results = runner.map(combos, run_point);
    for (std::size_t i = 0; i < combos.size(); ++i) {
      points()[combos[i].label()] = results[i];
    }
  });
}

/// Reporting stub over the precomputed sweep results.
void BM_Fig10_Combination(benchmark::State& state) {
  const auto prcs = static_cast<unsigned>(state.range(0));
  const auto cg = static_cast<unsigned>(state.range(1));
  const Point& point = points()[FabricCombination{prcs, cg}.label()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(point.speedup);
  }
  state.counters["speedup_vs_risc"] = point.speedup;
}

void register_benchmarks() {
  for (const FabricCombination& combo : sweep_points()) {
    benchmark::RegisterBenchmark(("BM_Fig10/" + combo.label()).c_str(),
                                 BM_Fig10_Combination)
        ->Args({static_cast<long>(combo.prcs), static_cast<long>(combo.cg)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_figure() {
  TextTable table({"PRCs/CG", "group", "speedup vs RISC", "monoCG exec frac",
                   "MG-ISEs selected"});
  CsvWriter csv("fig10_speedup_vs_risc.csv");
  csv.write_header(
      {"prcs", "cg", "group", "speedup", "mono_fraction", "mg_selected"});

  RunningStats all;
  RunningStats fg_only;
  RunningStats cg_only;
  RunningStats mg;
  for (const FabricCombination& combo : sweep_points()) {
    const Point& p = points()[combo.label()];
    const char* group = combo.risc_only() ? "RISC"
                        : combo.fg_only() ? "FG-only"
                        : combo.cg_only() ? "CG-only"
                                          : "MG";
    if (combo.fg_only()) fg_only.add(p.speedup);
    if (combo.cg_only()) cg_only.add(p.speedup);
    if (combo.multi_grained()) mg.add(p.speedup);
    if (!combo.risc_only()) all.add(p.speedup);
    table.add_values(combo.label(), group, p.speedup, p.mono_fraction,
                     static_cast<std::uint64_t>(p.mg_selected));
    csv.write_values(combo.prcs, combo.cg, group, p.speedup, p.mono_fraction,
                     p.mg_selected);
  }
  std::printf("\nFig. 10 — mRTS speedup vs RISC mode (written to "
              "fig10_speedup_vs_risc.csv)\n%s",
              table.render().c_str());
  std::printf(
      "Group averages: FG-only %.2fx (paper: 1.8-2.2x), CG-only %.2fx, "
      "multi-grained %.2fx / max %.2fx (paper: >5x), overall avg %.2fx.\n"
      "Key check — 1 PRC + 1 CG (%.2fx) vs 3 PRCs-only (%.2fx) and 3 "
      "CGs-only (%.2fx).\n",
      fg_only.mean(), cg_only.mean(), mg.mean(), mg.max(), all.mean(),
      points()["11"].speedup, points()["30"].speedup, points()["03"].speedup);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
