// Fig. 15 (extension beyond the paper): CMP scale-out. The paper evaluates
// a single RISC core in front of the reconfigurable fabric; this harness
// asks how the mRTS stack behaves when N cores share one 4 PRC + 2 CG pool
// through the modeled interconnect (sim/cmp.h). It sweeps the core count
// from 1 to 64 under two topologies:
//
//  * flat  — every core at hop distance 1 (the legacy uniform-cost model):
//    scaling is limited only by reconfiguration-port serialization;
//  * chain — cores on a linear chain (core i at distance 1+i), so far
//    cores additionally pay per-block operand-transfer cycles that grow
//    with their distance from the fabric pool.
//
// Each point reports makespan, throughput speedup over the 1-core point of
// the same topology, the Jain fairness index over per-core throughput, and
// the aggregate interconnect/port-wait cycle totals. The workload is
// synthetic (one weighted:1 tenant per core, fixed block count) and
// deliberately independent of MRTS_BENCH_FRAMES, so the committed CSV is
// reproducible under any smoke-test environment.
//
// The sweep fans out over a SweepRunner (--jobs N); every point builds its
// own library, machine and task streams, and results merge in submission
// order, so the table and fig15_cmp_scaling.csv are byte-identical to
// `--jobs 1` at any worker count.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "isa/ise_builder.h"
#include "sim/cmp.h"
#include "sim/machine.h"
#include "workload/workload_gen.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

/// The shared pool under test: the mid-size 4 PRC + 2 CG machine (the same
/// fabric Fig. 12 arbitrates between tenants).
constexpr unsigned kPrcs = 4;
constexpr unsigned kCgFabrics = 2;
/// Functional blocks per core (fixed: the figure's axis is the core count,
/// not the trace length).
constexpr unsigned kBlocksPerCore = 8;

const std::vector<const char*>& topologies() {
  static const std::vector<const char*> t = {"flat", "chain"};
  return t;
}

const std::vector<unsigned>& core_counts() {
  static const std::vector<unsigned> n = {1, 2, 4, 8, 16, 32, 64};
  return n;
}

/// One sweep point: a topology at one core count.
struct PointKey {
  std::string topology;
  unsigned cores = 0;
};

struct PointResult {
  Cycles total_cycles = 0;
  std::uint64_t blocks = 0;
  double aggregate_throughput = 0.0;  ///< blocks per Mcycle of the makespan
  double jain_fairness = 1.0;
  Cycles interconnect_cycles = 0;
  Cycles port_wait_cycles = 0;
};

/// One independent sweep point: builds its own combined library, traces and
/// arbitrated machine, then runs the CMP scheduler to completion.
PointResult run_point(const PointKey& key) {
  // One synthetic kernel per core, all in one combined library so every
  // core's MRts shares the fabric's data-path table.
  IseLibrary combined;
  std::vector<KernelId> kernels;
  for (unsigned i = 0; i < key.cores; ++i) {
    const std::string name = "C" + std::to_string(i);
    IseBuildSpec spec;
    spec.kernel_name = name;
    spec.sw_latency = 700;
    spec.control_fraction = 0.4;
    spec.fg_data_path_names = {name + "_ctrl_fg", name + "_dp_fg"};
    spec.cg_data_path_names = {name + "_mac_cg"};
    spec.fg_control_dps = 1;
    spec.cg_data_dps = 1;
    kernels.push_back(build_kernel_ises(combined, spec));
  }
  std::vector<ApplicationTrace> traces(key.cores);
  for (unsigned i = 0; i < key.cores; ++i) {
    Rng rng(1000 + i);
    for (unsigned b = 0; b < kBlocksPerCore; ++b) {
      FunctionalBlockInstance inst = make_block_instance(
          FunctionalBlockId{0}, /*macroblocks=*/400,
          {{kernels[i], 8.0, 25, 0.1}}, /*entry_gap=*/200, /*tail_gap=*/200,
          rng);
      stamp_programmed_trigger(inst, combined);
      traces[i].blocks.push_back(std::move(inst));
    }
  }

  MachineConfig mc;
  mc.cores = key.cores;
  mc.prcs = kPrcs;
  mc.cg_fabrics = kCgFabrics;
  mc.tenancy = Tenancy::kArbitrated;
  mc.interconnect = InterconnectParams::linear_chain(
      key.cores, key.topology == "chain" ? 1 : 0);
  Machine machine(combined, mc);
  std::vector<CmpCore> cmp_cores(key.cores);
  for (unsigned i = 0; i < key.cores; ++i) {
    TenantPolicy policy;
    policy.share = TenantShare::kWeighted;
    policy.weight = 1;
    const FabricArbiter::Registration reg =
        machine.register_tenant("C" + std::to_string(i), policy);
    Task task;
    task.name = "C" + std::to_string(i);
    task.rts = &machine.add_rts(reg.id);
    task.trace = &traces[i];
    task.tenant = reg.id;
    cmp_cores[i].tasks.push_back(std::move(task));
  }
  CmpParams params;
  params.fabric = &machine.fabric();
  const CmpResult run =
      run_cmp(cmp_cores, machine.interconnect(), &machine.arbiter(), params);

  PointResult result;
  std::vector<double> throughputs;
  for (const CmpCoreResult& cr : run.cores) {
    const TaskRunResult& tr = cr.run.tasks[0].run;
    result.blocks += tr.block_cycles.size();
    result.interconnect_cycles += cr.interconnect_cycles;
    result.port_wait_cycles += cr.port_wait_cycles;
    throughputs.push_back(
        tr.active_cycles == 0
            ? 0.0
            : static_cast<double>(tr.block_cycles.size()) * 1e6 /
                  static_cast<double>(tr.active_cycles));
  }
  result.total_cycles = run.total_cycles;
  result.aggregate_throughput =
      run.total_cycles == 0 ? 0.0
                            : static_cast<double>(result.blocks) * 1e6 /
                                  static_cast<double>(run.total_cycles);
  result.jain_fairness = jain_fairness_index(throughputs);
  return result;
}

std::vector<PointKey>& point_keys() {
  static std::vector<PointKey> keys = [] {
    std::vector<PointKey> k;
    for (const char* topology : topologies()) {
      for (unsigned n : core_counts()) k.push_back({topology, n});
    }
    return k;
  }();
  return keys;
}

std::vector<PointResult>& point_results() {
  static std::vector<PointResult> r;
  return r;
}

/// Throughput speedup over the 1-core point of the same topology (the
/// canonical scaling curve: ideal = the core count).
double speedup_for(std::size_t index) {
  const PointKey& key = point_keys()[index];
  for (std::size_t i = 0; i < point_keys().size(); ++i) {
    const PointKey& base = point_keys()[i];
    if (base.topology == key.topology && base.cores == 1) {
      const double baseline = point_results()[i].aggregate_throughput;
      return baseline == 0.0
                 ? 0.0
                 : point_results()[index].aggregate_throughput / baseline;
    }
  }
  return 0.0;
}

void run_sweep(unsigned jobs) {
  timed_sweep("CMP scale-out sweep", jobs, [](const SweepRunner& runner) {
    point_results() = runner.map(point_keys(), run_point);
  });
}

/// Reporting stub: the heavy work happened in run_sweep(); this publishes
/// each point's speedup/fairness under BM_CmpScaling/<topology>/<n>.
void BM_CmpScaling_Point(benchmark::State& state) {
  const std::size_t index = static_cast<std::size_t>(state.range(0));
  const PointResult& point = point_results()[index];
  for (auto _ : state) {
    benchmark::DoNotOptimize(point.total_cycles);
  }
  state.counters["total_Mcycles"] =
      static_cast<double>(point.total_cycles) / 1e6;
  state.counters["speedup"] = speedup_for(index);
  state.counters["jain_fairness"] = point.jain_fairness;
}

void register_benchmarks() {
  for (std::size_t i = 0; i < point_keys().size(); ++i) {
    const PointKey& key = point_keys()[i];
    benchmark::RegisterBenchmark(
        ("BM_CmpScaling/" + key.topology + "/cores_" +
         std::to_string(key.cores))
            .c_str(),
        BM_CmpScaling_Point)
        ->Args({static_cast<long>(i)})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_figure() {
  TextTable table({"topology", "cores", "total [Mcyc]", "blocks/Mcyc",
                   "speedup", "Jain fairness", "xfer cyc", "port wait"});
  CsvWriter csv("fig15_cmp_scaling.csv");
  csv.write_header({"topology", "cores", "total_cycles", "blocks",
                    "blocks_per_mcycle", "speedup", "jain_fairness",
                    "interconnect_cycles", "port_wait_cycles"});
  for (std::size_t i = 0; i < point_keys().size(); ++i) {
    const PointKey& key = point_keys()[i];
    const PointResult& p = point_results()[i];
    const double speedup = speedup_for(i);
    table.add_values(key.topology, key.cores, format_mcycles(p.total_cycles),
                     format_double(p.aggregate_throughput, 3),
                     format_double(speedup, 3),
                     format_double(p.jain_fairness, 4), p.interconnect_cycles,
                     p.port_wait_cycles);
    csv.write_values(key.topology, key.cores, p.total_cycles, p.blocks,
                     format_double(p.aggregate_throughput, 4),
                     format_double(speedup, 4),
                     format_double(p.jain_fairness, 4), p.interconnect_cycles,
                     p.port_wait_cycles);
  }
  std::printf("\nFig. 15 — CMP scale-out on %u PRCs + %u CG, %u blocks/core "
              "(written to fig15_cmp_scaling.csv)\n%s",
              kPrcs, kCgFabrics, kBlocksPerCore, table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
