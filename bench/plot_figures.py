#!/usr/bin/env python3
"""Plot the CSV series emitted by the bench binaries.

Usage: run the benches first (they write fig*.csv into the working
directory), then:

    python3 bench/plot_figures.py [output_dir]

Requires matplotlib; produces one PNG per available figure CSV.
"""

import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    return rows


def plot_fig1(rows, out, plt):
    xs = [float(r["executions"]) for r in rows]
    plt.figure(figsize=(7, 4))
    plt.plot(xs, [float(r["pif_ise1_fg"]) for r in rows], label="ISE-1 (FG)")
    plt.plot(xs, [float(r["pif_ise2_cg"]) for r in rows], label="ISE-2 (CG)")
    plt.plot(xs, [float(r["pif_ise3_mg"]) for r in rows], label="ISE-3 (MG)")
    plt.xlabel("number of executions")
    plt.ylabel("performance improvement factor (Eq. 1)")
    plt.title("Fig. 1 — pif of the Deblocking Filter ISEs")
    plt.legend()
    plt.grid(alpha=0.3)
    plt.savefig(out, dpi=150, bbox_inches="tight")


def plot_fig2(rows, out, plt):
    plt.figure(figsize=(7, 4))
    plt.bar([int(r["frame"]) for r in rows],
            [int(r["lf_filter_executions"]) for r in rows])
    plt.xlabel("frame")
    plt.ylabel("LF_FILTER executions")
    plt.title("Fig. 2 — execution behaviour over frames")
    plt.grid(alpha=0.3, axis="y")
    plt.savefig(out, dpi=150, bbox_inches="tight")


def plot_fig8(rows, out, plt):
    labels = [r["prcs"] + r["cg"] for r in rows]
    xs = range(len(rows))
    width = 0.2
    plt.figure(figsize=(12, 5))
    for i, (col, name) in enumerate([
            ("rispp_cycles", "RISPP-like"),
            ("offline_cycles", "Offline-optimal"),
            ("morpheus_cycles", "Morpheus+4S"),
            ("mrts_cycles", "mRTS")]):
        plt.bar([x + (i - 1.5) * width for x in xs],
                [float(r[col]) / 1e6 for r in rows], width, label=name)
    plt.xticks(list(xs), labels)
    plt.xlabel("PRCs / CG fabrics")
    plt.ylabel("execution time [Mcycles]")
    plt.title("Fig. 8 — comparison with state of the art")
    plt.legend()
    plt.grid(alpha=0.3, axis="y")
    plt.savefig(out, dpi=150, bbox_inches="tight")


def plot_fig9(rows, out, plt):
    plt.figure(figsize=(7, 4))
    for cg in sorted({r["cg"] for r in rows}):
        series = [r for r in rows if r["cg"] == cg]
        plt.plot([int(r["prcs"]) for r in series],
                 [float(r["percent_difference"]) for r in series],
                 marker="o", label=f"CG={cg}")
    plt.xlabel("PRCs")
    plt.ylabel("% difference vs optimal")
    plt.title("Fig. 9 — heuristic vs run-time optimal")
    plt.legend()
    plt.grid(alpha=0.3)
    plt.savefig(out, dpi=150, bbox_inches="tight")


def plot_fig10(rows, out, plt):
    labels = [r["prcs"] + r["cg"] for r in rows]
    colors = {"RISC": "gray", "FG-only": "tab:blue", "CG-only": "tab:orange",
              "MG": "tab:green"}
    plt.figure(figsize=(10, 4.5))
    plt.bar(labels, [float(r["speedup"]) for r in rows],
            color=[colors.get(r["group"], "black") for r in rows])
    plt.xlabel("PRCs / CG fabrics")
    plt.ylabel("speedup vs RISC mode")
    plt.title("Fig. 10 — mRTS speedup vs RISC mode")
    plt.grid(alpha=0.3, axis="y")
    handles = [plt.Rectangle((0, 0), 1, 1, color=c) for c in colors.values()]
    plt.legend(handles, colors.keys())
    plt.savefig(out, dpi=150, bbox_inches="tight")


def main():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("plot_figures.py requires matplotlib")

    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    os.makedirs(out_dir, exist_ok=True)
    jobs = [
        ("fig1_pif.csv", plot_fig1, "fig1_pif.png"),
        ("fig2_execution_behavior.csv", plot_fig2, "fig2.png"),
        ("fig8_state_of_the_art.csv", plot_fig8, "fig8.png"),
        ("fig9_heuristic_vs_optimal.csv", plot_fig9, "fig9.png"),
        ("fig10_speedup_vs_risc.csv", plot_fig10, "fig10.png"),
    ]
    plotted = 0
    for csv_name, fn, png_name in jobs:
        if not os.path.exists(csv_name):
            print(f"skip {csv_name} (not found; run the bench first)")
            continue
        fn(read_csv(csv_name), os.path.join(out_dir, png_name), plt)
        print(f"wrote {os.path.join(out_dir, png_name)}")
        plotted += 1
    if plotted == 0:
        sys.exit("no CSV inputs found")


if __name__ == "__main__":
    main()
