// Reproduces the Section 5.4 overhead analysis: the mRTS ISE selection takes
// on average less than 3000 cycles per kernel, about 1.9% of the average
// functional-block execution time, and only the first selection of a block
// blocks the core (the rest is hidden behind the reconfiguration process).
// Also measures the *host* wall-clock cost of a selection, i.e. how fast the
// library itself is.
//
// The Section 4.1 scaling sweep (kernel count x data-path shape) fans out
// over a SweepRunner (--jobs N): each point builds its own synthetic
// library, selector and planner, and results merge in submission order, so
// the table/CSV are byte-identical to `--jobs 1`. The two host wall-clock
// micro-benchmarks stay serial — they time the calling thread.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "isa/ise_builder.h"
#include "rts/reconfig_plan.h"
#include "rts/selector_heuristic.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

/// Wall-clock cost of one heuristic selection on the host machine.
void BM_Overhead_HeuristicSelection(benchmark::State& state) {
  const EvalContext& ctx = context();
  const HeuristicSelector selector(ctx.app.library);
  const TriggerInstruction& ti = ctx.app.trace.blocks[1].programmed;  // EE
  for (auto _ : state) {
    ReconfigPlanner planner(ctx.app.library.data_paths(), 2, 2, 0);
    const SelectionResult r = selector.select(ti, planner);
    benchmark::DoNotOptimize(r.total_profit);
  }
}
BENCHMARK(BM_Overhead_HeuristicSelection);

/// Wall-clock cost of one optimal (branch & bound) selection — the paper's
/// argument why the optimal algorithm is infeasible at run time.
void BM_Overhead_OptimalSelection(benchmark::State& state) {
  const EvalContext& ctx = context();
  const OptimalSelector selector(ctx.app.library);
  const TriggerInstruction& ti = ctx.app.trace.blocks[1].programmed;
  for (auto _ : state) {
    ReconfigPlanner planner(ctx.app.library.data_paths(), 2, 2, 0);
    const SelectionResult r = selector.select(ti, planner);
    benchmark::DoNotOptimize(r.total_profit);
  }
}
BENCHMARK(BM_Overhead_OptimalSelection);

void print_table() {
  const EvalContext& ctx = context();
  MRts rts(ctx.app.library, 2, 2);
  const AppRunResult run = run_application(rts, ctx.app.trace);
  const MRtsRunStats& stats = rts.run_stats();

  const double blocks = static_cast<double>(run.block_cycles.size());
  const double kernels_selected =
      std::max<double>(1.0, static_cast<double>(stats.selected_ises));
  const double cycles_per_kernel =
      static_cast<double>(stats.total_selection_cycles) / kernels_selected;
  double avg_block = 0.0;
  for (Cycles c : run.block_cycles) avg_block += static_cast<double>(c);
  avg_block /= blocks;
  const double per_block_selection =
      static_cast<double>(stats.total_selection_cycles) / blocks;
  const double percent_of_block = 100.0 * per_block_selection / avg_block;
  const double blocking_percent =
      100.0 * static_cast<double>(run.blocking_overhead) /
      static_cast<double>(run.total_cycles);
  const double hidden =
      100.0 - 100.0 * static_cast<double>(stats.total_blocking_cycles) /
                  std::max<double>(1.0,
                                   static_cast<double>(
                                       stats.total_selection_cycles));

  TextTable table({"metric", "measured", "paper"});
  table.add_values("selection cycles per kernel",
                   format_double(cycles_per_kernel, 0), "< 3000");
  table.add_values("selection time / avg FB time",
                   format_double(percent_of_block, 2) + "%", "~1.9%");
  table.add_values("core-blocking share of total runtime",
                   format_double(blocking_percent, 3) + "%", "negligible");
  table.add_values("selection work hidden behind reconfiguration",
                   format_double(hidden, 1) + "%",
                   "all but the first selection");
  table.add_values("profit evaluations per trigger",
                   format_double(static_cast<double>(stats.profit_evaluations) /
                                     std::max<double>(1.0, blocks),
                                 1),
                   "-");
  std::printf("\nSection 5.4 — mRTS implementation overhead (2 PRCs, 2 CG "
              "fabrics)\n%s",
              table.render().c_str());

  CsvWriter csv("overhead.csv");
  csv.write_header({"cycles_per_kernel", "percent_of_block",
                    "blocking_percent", "hidden_percent"});
  csv.write_values(cycles_per_kernel, percent_of_block, blocking_percent,
                   hidden);
}

/// Builds a synthetic library with \p kernels kernels of ~\p variants ISE
/// variants each (large data-path families, like the paper's "up to 60 ISEs
/// for a single kernel").
IseLibrary scaling_library(unsigned kernels, unsigned fg_dps, unsigned cg_dps) {
  IseLibrary lib;
  for (unsigned k = 0; k < kernels; ++k) {
    IseBuildSpec spec;
    spec.kernel_name = "K" + std::to_string(k);
    spec.sw_latency = 600 + 50 * k;
    spec.control_fraction = 0.3 + 0.05 * static_cast<double>(k % 8);
    for (unsigned d = 0; d < fg_dps; ++d) {
      spec.fg_data_path_names.push_back(spec.kernel_name + "_fg" +
                                        std::to_string(d));
    }
    for (unsigned d = 0; d < cg_dps; ++d) {
      spec.cg_data_path_names.push_back(spec.kernel_name + "_cg" +
                                        std::to_string(d));
    }
    spec.fg_control_dps = fg_dps;  // every FG prefix forms an MG variant
    spec.cg_data_dps = cg_dps;
    build_kernel_ises(lib, spec);
  }
  return lib;
}

/// One point of the Section 4.1 scaling sweep.
struct ScalingPoint {
  unsigned kernels = 0;
  unsigned fg_dps = 0;
  unsigned cg_dps = 0;
};

struct ScalingResult {
  unsigned variants = 0;
  std::uint64_t profit_evaluations = 0;
  Cycles overhead_cycles = 0;
};

std::vector<ScalingPoint> scaling_points() {
  std::vector<ScalingPoint> points;
  for (unsigned kernels : {2u, 4u, 8u}) {
    for (auto [fg, cg] :
         {std::pair<unsigned, unsigned>{2, 1}, {4, 2}, {5, 4}}) {
      points.push_back({kernels, fg, cg});
    }
  }
  return points;
}

/// Fully independent: builds its own library, selector and planner.
ScalingResult run_scaling_point(const ScalingPoint& p) {
  const IseLibrary lib = scaling_library(p.kernels, p.fg_dps, p.cg_dps);
  ScalingResult out;
  out.variants = static_cast<unsigned>(lib.kernel(KernelId{0}).ises.size());
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  for (const auto& kernel : lib.kernels()) {
    ti.entries.push_back({kernel.id, 3000.0, 400, 200});
  }
  const HeuristicSelector selector(lib);
  ReconfigPlanner planner(lib.data_paths(), 6, 4, 0);
  const SelectionResult r = selector.select(ti, planner);
  out.profit_evaluations = r.profit_evaluations;
  out.overhead_cycles = r.overhead_cycles;
  return out;
}

/// The O(N*M) complexity claim of Section 4.1: selection work (profit
/// evaluations and the modelled cycle cost) must grow linearly in both the
/// kernel count N and the per-kernel variant count M.
void print_scaling_table(unsigned jobs) {
  const std::vector<ScalingPoint> points = scaling_points();
  std::vector<ScalingResult> results;
  timed_sweep("Scaling", jobs, [&](const SweepRunner& runner) {
    results = runner.map(points, run_scaling_point);
  });

  TextTable table({"kernels N", "variants M", "candidates N*M",
                   "profit evals", "modelled cycles", "cycles/kernel"});
  CsvWriter csv("overhead_scaling.csv");
  csv.write_header({"kernels", "variants", "candidates", "profit_evals",
                    "modelled_cycles"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    const ScalingResult& r = results[i];
    table.add_values(p.kernels, r.variants, p.kernels * r.variants,
                     r.profit_evaluations, r.overhead_cycles,
                     format_double(static_cast<double>(r.overhead_cycles) /
                                       p.kernels,
                                   0));
    csv.write_values(p.kernels, r.variants, p.kernels * r.variants,
                     r.profit_evaluations, r.overhead_cycles);
  }
  std::printf("\nSelection-cost scaling (Section 4.1's O(N*M); written to "
              "overhead_scaling.csv)\n%s",
              table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  print_table();
  print_scaling_table(jobs);
  return 0;
}
